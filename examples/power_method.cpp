// Domain example 5: the power method — the algorithm the paper's SpMV
// section points at ("the normalization of the output vector performed by
// the power method", §IV-C). Each iteration multiplies a sparse matrix by a
// vector and renormalizes; the global norm uses the hierarchical allreduce
// from dcuda/collectives.h. This is the tightly synchronized worst case for
// overlap — and precisely the shape Krylov-subspace solvers have.
//
// Single-node decomposition: the matrix rows are split across the device's
// ranks; everyone shares the device-resident vector (overlapping windows),
// so the multiply needs no data movement, only the notification-based
// synchronization and the norm reduction.

#include <cmath>
#include <cstdio>

#include "apps/spmv.h"
#include "cluster/cluster.h"
#include "dcuda/collectives.h"

using namespace dcuda;

namespace {

constexpr int kRanks = 16;
constexpr int kN = kRanks * 24;  // matrix dimension
constexpr int kIterations = 12;

}  // namespace

int main() {
  Cluster cluster({.machine = sim::machine_config(1), .ranks_per_device = kRanks});

  // A symmetric-ish sparse matrix with a known dominant structure: the
  // deterministic CSR patch generator plus a strong diagonal.
  apps::spmv::Config mcfg;
  mcfg.n_dev = kN;
  mcfg.density = 0.02;
  apps::spmv::CsrPatch a = apps::spmv::make_patch(mcfg, 0, 0);

  auto x = cluster.device(0).alloc<double>(kN);   // current vector (shared)
  auto y = cluster.device(0).alloc<double>(kN);   // multiply target (shared)
  for (int i = 0; i < kN; ++i) x[static_cast<size_t>(i)] = 1.0;
  std::fill(y.begin(), y.end(), 0.0);

  double lambda_estimate = 0.0;

  const sim::Dur elapsed = cluster.run([&](Context& ctx) -> sim::Proc<void> {
    const int r = ctx.device_rank;
    const int rows = kN / kRanks;
    const int r0 = r * rows;
    Window wy = co_await win_create(ctx, kCommWorld, y);
    Collectives coll = co_await Collectives::create(ctx, 2);

    std::vector<double> reduce_buf(2, 0.0);
    for (int it = 0; it < kIterations; ++it) {
      // y = A x over this rank's rows (diagonal boost makes it dominant).
      std::int64_t nnz = 0;
      for (int row = r0; row < r0 + rows; ++row) {
        double acc = 4.0 * x[static_cast<size_t>(row)];
        for (std::int32_t k = a.row_ptr[static_cast<size_t>(row)];
             k < a.row_ptr[static_cast<size_t>(row) + 1]; ++k) {
          acc += a.val[static_cast<size_t>(k)] *
                 x[static_cast<size_t>(a.col[static_cast<size_t>(k)])];
          ++nnz;
        }
        y[static_cast<size_t>(row)] = acc;
      }
      co_await ctx.charge_compute(static_cast<double>(nnz) * 2.0 + rows * 2.0);
      co_await ctx.charge_memory(static_cast<double>(nnz) * 20.0 + rows * 16.0);

      // Signal "my rows of y are final" to everyone via the barrier (the
      // paper's tightly synchronized step), then compute the global norm
      // with the hierarchical allreduce.
      co_await barrier(ctx, kCommWorld);
      double local = 0.0;
      for (int row = r0; row < r0 + rows; ++row) {
        local += y[static_cast<size_t>(row)] * y[static_cast<size_t>(row)];
      }
      reduce_buf[0] = local;
      reduce_buf[1] = 1.0;
      co_await coll.allreduce_sum(ctx, reduce_buf.data(), 2, 100 + it * 4);
      const double norm = std::sqrt(reduce_buf[0]);

      // x = y / norm over this rank's rows; Rayleigh-style estimate.
      for (int row = r0; row < r0 + rows; ++row) {
        x[static_cast<size_t>(row)] = y[static_cast<size_t>(row)] / norm;
      }
      co_await ctx.charge_memory(rows * 16.0);
      if (r == 0) lambda_estimate = norm;
      co_await barrier(ctx, kCommWorld);
    }

    co_await coll.destroy(ctx);
    co_await win_free(ctx, wy);
  });

  // Serial verification of the same iteration.
  std::vector<double> xs(static_cast<size_t>(kN), 1.0), ys(static_cast<size_t>(kN));
  double lambda_ref = 0.0;
  for (int it = 0; it < kIterations; ++it) {
    for (int row = 0; row < kN; ++row) {
      double acc = 4.0 * xs[static_cast<size_t>(row)];
      for (std::int32_t k = a.row_ptr[static_cast<size_t>(row)];
           k < a.row_ptr[static_cast<size_t>(row) + 1]; ++k) {
        acc += a.val[static_cast<size_t>(k)] * xs[static_cast<size_t>(a.col[static_cast<size_t>(k)])];
      }
      ys[static_cast<size_t>(row)] = acc;
    }
    double norm = 0.0;
    for (double v : ys) norm += v * v;
    norm = std::sqrt(norm);
    for (int row = 0; row < kN; ++row) xs[static_cast<size_t>(row)] = ys[static_cast<size_t>(row)] / norm;
    lambda_ref = norm;
  }

  std::printf("Power method: %dx%d sparse matrix, %d ranks, %d iterations\n", kN, kN,
              kRanks, kIterations);
  std::printf("simulated time: %.1f us\n", sim::to_micros(elapsed));
  std::printf("dominant eigenvalue estimate: %.6f (serial: %.6f)\n", lambda_estimate,
              lambda_ref);
  const bool ok = std::abs(lambda_estimate - lambda_ref) < 1e-6 * lambda_ref;
  std::printf("validation: %s\n", ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
