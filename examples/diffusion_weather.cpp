// Domain example 1: atmospheric horizontal diffusion (the COSMO-derived
// workload that motivates the paper's stencil evaluation). Runs the full
// four-stencil chain on a 4-node simulated cluster with both programming
// models, validates them against each other and the serial reference, and
// reports the overlap benefit.

#include <cstdio>

#include "apps/stencil.h"

int main() {
  using namespace dcuda;
  apps::stencil::Config cfg;
  cfg.isize = 64;
  cfg.jlocal = 2;
  cfg.ksize = 8;
  cfg.iterations = 10;

  const int nodes = 4;
  const int rpd = 32;

  std::printf("Horizontal diffusion, %dx%dx%d grid points per device, %d nodes, "
              "%d ranks per device, %d iterations\n",
              cfg.isize, rpd * cfg.jlocal, cfg.ksize, nodes, rpd, cfg.iterations);

  apps::stencil::Result dc, mc;
  {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = rpd});
    dc = apps::stencil::run_dcuda(c, cfg);
  }
  {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = rpd});
    mc = apps::stencil::run_mpi_cuda(c, cfg);
  }
  const double ref = apps::stencil::reference_checksum(cfg, nodes, rpd);

  std::printf("  dCUDA:    %8.3f ms   checksum %.6f\n", sim::to_millis(dc.elapsed),
              dc.checksum);
  std::printf("  MPI-CUDA: %8.3f ms   checksum %.6f\n", sim::to_millis(mc.elapsed),
              mc.checksum);
  std::printf("  serial reference checksum: %.6f\n", ref);

  const bool ok = std::abs(dc.checksum - ref) < 1e-6 && std::abs(mc.checksum - ref) < 1e-6;
  std::printf("  validation: %s\n", ok ? "OK" : "FAIL");
  std::printf("  dCUDA speedup over MPI-CUDA: %.2fx (hardware supported overlap)\n",
              sim::to_millis(mc.elapsed) / sim::to_millis(dc.elapsed));
  return ok ? 0 : 1;
}
