// Quickstart: the paper's Fig. 2 program, nearly line for line — a 2-D
// 5-point stencil over a 1-D domain decomposition in j, exchanging one halo
// line per iteration with the left and right neighbor rank via notified
// puts into double-buffered windows.
//
// Run:  ./quickstart
// The program builds a 2-node simulated cluster with 4 ranks per device,
// runs 5 stencil steps, validates against a serial computation, and prints
// the simulated execution time.

#include <cstdio>
#include <vector>

#include "cluster/cluster.h"

using namespace dcuda;

namespace {

constexpr int kJstride = 32;      // i-extent of one line
constexpr int kRowsPerRank = 8;   // j-lines per rank
constexpr int kSteps = 5;
constexpr int kRanksPerDevice = 4;
constexpr int kNodes = 2;

// The per-rank dCUDA program (the body of the single kernel).
sim::Proc<void> stencil_rank(Context& ctx, std::span<double> in,
                             std::span<double> out) {
  // dcuda_comm_size / dcuda_comm_rank
  const int size = comm_size(ctx, kCommWorld);
  const int rank = comm_rank(ctx, kCommWorld);
  const std::size_t len = kRowsPerRank * kJstride;

  // dcuda_win_create: windows over in/out including the two halo lines.
  Window win = co_await win_create(ctx, kCommWorld, in);
  Window wout = co_await win_create(ctx, kCommWorld, out);

  const bool lsend = rank - 1 >= 0;
  const bool rsend = rank + 1 < size;
  const int tag = 0;

  for (int step = 0; step < kSteps; ++step) {
    // Apply the 5-point stencil on the rank's rows (halo rows 0 and
    // kRowsPerRank+1 were filled by the neighbors' previous puts).
    for (std::size_t idx = kJstride; idx < kJstride + len; ++idx) {
      const int i = static_cast<int>(idx % kJstride);
      const double left = i > 0 ? in[idx - 1] : 0.0;
      const double right = i + 1 < kJstride ? in[idx + 1] : 0.0;
      out[idx] = -4.0 * in[idx] + left + right + in[idx + kJstride] + in[idx - kJstride];
    }
    co_await ctx.block->compute_flops(6.0 * static_cast<double>(len));

    // dcuda_put_notify: move the boundary rows into the neighbor windows
    // (typed span API: offsets and lengths count doubles).
    if (lsend) {
      co_await put_notify(ctx, wout, rank - 1, len + kJstride,
                          out.subspan(kJstride, kJstride), tag);
    }
    if (rsend) {
      co_await put_notify(ctx, wout, rank + 1, 0, out.subspan(len, kJstride), tag);
    }
    // dcuda_wait_notifications: wait for the neighbors' halos.
    co_await wait_notifications(ctx, wout, kAnySource, tag,
                                (lsend ? 1 : 0) + (rsend ? 1 : 0));
    std::swap(in, out);
    std::swap(win, wout);
  }

  co_await win_free(ctx, win);
  co_await win_free(ctx, wout);
}

}  // namespace

int main() {
  Cluster cluster({.machine = sim::machine_config(kNodes), .ranks_per_device = kRanksPerDevice});
  const int ranks = kNodes * kRanksPerDevice;
  const int total_rows = ranks * kRowsPerRank;
  const std::size_t len = kRowsPerRank * kJstride;

  // Allocate per-rank arrays (domain + one halo line on each side) in the
  // owning device's memory, and set up the initial condition including the
  // pre-filled halos.
  auto initial = [&](int i, int jg) -> double {
    if (jg < 0 || jg >= total_rows) return 0.0;
    return 0.01 * jg + 0.5 * i;
  };
  std::vector<std::span<double>> in(ranks), out(ranks);
  for (int r = 0; r < ranks; ++r) {
    auto& dev = cluster.device(r / kRanksPerDevice);
    in[r] = dev.alloc<double>(len + 2 * kJstride);
    out[r] = dev.alloc<double>(len + 2 * kJstride);
    for (int j = -1; j <= kRowsPerRank; ++j) {
      for (int i = 0; i < kJstride; ++i) {
        in[r][(j + 1) * kJstride + i] = initial(i, r * kRowsPerRank + j);
      }
    }
    std::fill(out[r].begin(), out[r].end(), 0.0);
  }

  const sim::Dur elapsed = cluster.run([&](Context& ctx) -> sim::Proc<void> {
    const int r = ctx.world_rank;
    co_await stencil_rank(ctx, in[r], out[r]);
  });

  // Serial validation.
  std::vector<double> ref((total_rows + 2) * kJstride, 0.0);
  std::vector<double> nxt(ref.size(), 0.0);
  for (int j = -1; j <= total_rows; ++j)
    for (int i = 0; i < kJstride; ++i) ref[(j + 1) * kJstride + i] = initial(i, j);
  for (int s = 0; s < kSteps; ++s) {
    for (int j = 0; j < total_rows; ++j)
      for (int i = 0; i < kJstride; ++i) {
        const std::size_t idx = static_cast<std::size_t>(j + 1) * kJstride + i;
        const double left = i > 0 ? ref[idx - 1] : 0.0;
        const double right = i + 1 < kJstride ? ref[idx + 1] : 0.0;
        nxt[idx] = -4.0 * ref[idx] + left + right + ref[idx + kJstride] + ref[idx - kJstride];
      }
    std::swap(ref, nxt);
  }
  double max_err = 0.0;
  for (int r = 0; r < ranks; ++r) {
    std::span<double> result = kSteps % 2 == 1 ? out[r] : in[r];
    for (std::size_t k = kJstride; k < kJstride + len; ++k) {
      const int j = r * kRowsPerRank + static_cast<int>(k / kJstride) - 1;
      const int i = static_cast<int>(k % kJstride);
      const double want = ref[static_cast<std::size_t>(j + 1) * kJstride + i];
      max_err = std::max(max_err, std::abs(result[k] - want));
    }
  }

  std::printf("dCUDA quickstart: %d ranks on %d simulated nodes, %d stencil steps\n",
              ranks, kNodes, kSteps);
  std::printf("simulated kernel time: %.1f us\n", sim::to_micros(elapsed));
  std::printf("validation vs serial reference: max |err| = %.2e  [%s]\n", max_err,
              max_err < 1e-12 ? "OK" : "FAIL");
  return max_err < 1e-12 ? 0 : 1;
}
