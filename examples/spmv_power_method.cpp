// Domain example 3: sparse matrix-vector multiplication — the building
// block of the power method the paper mentions as the worst case for
// overlap (every multiply is followed by a synchronized normalization,
// emulated here by the global barrier). Exercises the manual binary-tree
// broadcast/reduce collectives built from notified puts.

#include <cstdio>

#include "apps/spmv.h"

int main() {
  using namespace dcuda;
  apps::spmv::Config cfg;
  cfg.n_dev = 512;
  cfg.density = 0.01;
  cfg.iterations = 5;

  const int nodes = 4;  // 2x2 decomposition
  const int rpd = 32;

  std::printf("SpMV: %d nodes (2x2 grid), %dx%d patch per device, %.1f%% density, "
              "%d iterations + barrier\n",
              nodes, cfg.n_dev, cfg.n_dev, cfg.density * 100.0, cfg.iterations);

  apps::spmv::Result dc, mc;
  {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = rpd});
    dc = apps::spmv::run_dcuda(c, cfg);
  }
  {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = rpd});
    mc = apps::spmv::run_mpi_cuda(c, cfg);
  }
  const double ref = apps::spmv::reference_checksum(cfg, nodes);

  std::printf("  dCUDA:    %8.3f ms   checksum %.6f\n", sim::to_millis(dc.elapsed),
              dc.checksum);
  std::printf("  MPI-CUDA: %8.3f ms   checksum %.6f\n", sim::to_millis(mc.elapsed),
              mc.checksum);
  std::printf("  serial reference checksum: %.6f\n", ref);

  const bool ok = std::abs(dc.checksum - ref) < 1e-6 * (std::abs(ref) + 1.0) &&
                  std::abs(mc.checksum - ref) < 1e-6 * (std::abs(ref) + 1.0);
  std::printf("  validation: %s\n", ok ? "OK" : "FAIL");
  std::printf("  note: tight synchronization leaves little room for overlap "
              "(paper SIV-C)\n");
  return ok ? 0 : 1;
}
