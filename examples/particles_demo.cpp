// Domain example 2: short-range particle simulation (plasma-style
// particle-in-cell decomposition). Demonstrates dynamic workloads on the
// dCUDA model: cell-list forces, Verlet integration, particle migration
// between ranks and across nodes — all driven from device-side code with
// notified remote memory access.

#include <cstdio>

#include "apps/particles.h"

int main() {
  using namespace dcuda;
  apps::particles::Config cfg;
  cfg.cells_per_node = 16;
  cfg.particles_per_cell = 50;
  cfg.iterations = 40;
  cfg.dt = 0.02;

  const int nodes = 3;
  std::printf("Particle simulation: %d nodes, %d cells/node, %d particles/cell, "
              "%d iterations\n",
              nodes, cfg.cells_per_node, cfg.particles_per_cell, cfg.iterations);

  apps::particles::Result dc, mc;
  {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = cfg.cells_per_node});
    dc = apps::particles::run_dcuda(c, cfg);
  }
  {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = cfg.cells_per_node});
    mc = apps::particles::run_mpi_cuda(c, cfg);
  }
  apps::particles::Result ref = apps::particles::reference(cfg, nodes);

  std::printf("  dCUDA:    %8.3f ms   %lld particles, checksum %.6f\n",
              sim::to_millis(dc.elapsed), static_cast<long long>(dc.total_particles),
              dc.checksum);
  std::printf("  MPI-CUDA: %8.3f ms   %lld particles, checksum %.6f\n",
              sim::to_millis(mc.elapsed), static_cast<long long>(mc.total_particles),
              mc.checksum);
  std::printf("  serial reference:       %lld particles, checksum %.6f\n",
              static_cast<long long>(ref.total_particles), ref.checksum);

  const bool ok = dc.total_particles == ref.total_particles &&
                  mc.total_particles == ref.total_particles &&
                  std::abs(dc.checksum - ref.checksum) < 1e-6 &&
                  std::abs(mc.checksum - ref.checksum) < 1e-6;
  std::printf("  validation (conservation + trajectories): %s\n", ok ? "OK" : "FAIL");
  return ok ? 0 : 1;
}
