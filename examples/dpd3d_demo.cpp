// Domain example: 3-D short-range DPD particle simulation on a near-cubic
// rank grid with a 27-direction halo exchange (faces, edges and corners),
// particle migration, and a skewed-density scenario whose dense blob drifts
// across the domain. The dCUDA variant overlaps the 26 small notified puts
// per rank with force computation; the MPI-CUDA baseline alternates
// fork-join kernels with two-sided exchanges. Both run the same physics in
// the same floating-point order, so their results are bitwise identical to
// each other and to the serial reference.

#include <cmath>
#include <cstdio>

#include "apps/dpd3d.h"

namespace {

bool run_scenario(const char* label, dcuda::apps::dpd3d::Config cfg, int nodes) {
  using namespace dcuda;
  apps::dpd3d::Result dc, mc;
  {
    Cluster c({.machine = sim::machine_config(nodes),
               .ranks_per_device = cfg.cells_per_node});
    dc = apps::dpd3d::run_dcuda(c, cfg);
  }
  {
    Cluster c({.machine = sim::machine_config(nodes),
               .ranks_per_device = cfg.cells_per_node});
    mc = apps::dpd3d::run_mpi_cuda(c, cfg);
  }
  const apps::dpd3d::Result ref = apps::dpd3d::reference(cfg, nodes);

  std::printf("%s density\n", label);
  std::printf("  dCUDA:    %8.3f ms   %lld particles, checksum %.12f, peak cell %d\n",
              sim::to_millis(dc.elapsed),
              static_cast<long long>(dc.total_particles), dc.checksum,
              dc.max_cell_count);
  std::printf("  MPI-CUDA: %8.3f ms   %lld particles, checksum %.12f, peak cell %d\n",
              sim::to_millis(mc.elapsed),
              static_cast<long long>(mc.total_particles), mc.checksum,
              mc.max_cell_count);
  std::printf("  serial reference:       %lld particles, checksum %.12f\n",
              static_cast<long long>(ref.total_particles), ref.checksum);

  // The three variants share one physics core and one deterministic exchange
  // order, so equality here is exact, not approximate.
  const bool ok = dc.total_particles == ref.total_particles &&
                  mc.total_particles == ref.total_particles &&
                  dc.checksum == ref.checksum && mc.checksum == ref.checksum &&
                  dc.halo_violations == 0 && mc.halo_violations == 0 &&
                  dc.halo_received_total == ref.halo_received_total &&
                  mc.halo_received_total == ref.halo_received_total;
  std::printf("  validation (conservation + bitwise trajectories + halo oracle): %s\n",
              ok ? "OK" : "FAIL");
  return ok;
}

}  // namespace

int main() {
  using namespace dcuda;
  apps::dpd3d::Config cfg;
  cfg.cells_per_node = 8;
  cfg.particles_per_cell = 16;
  cfg.iterations = 20;
  cfg.dt = 0.02;

  const int nodes = 3;  // 3 x 8 ranks -> exact 4 x 3 x 2 grid
  std::printf("3-D DPD simulation: %d nodes, %d cells/node, %d particles/cell, "
              "%d iterations\n",
              nodes, cfg.cells_per_node, cfg.particles_per_cell, cfg.iterations);

  bool ok = run_scenario("uniform", cfg, nodes);

  apps::dpd3d::Config skew = cfg;
  skew.density = apps::dpd3d::Density::kSkewed;
  skew.skew_drift = 0.8;
  ok = run_scenario("skewed", skew, nodes) && ok;

  // Work-adoption rebalance must not change the physics, only the schedule.
  apps::dpd3d::Result rb;
  {
    apps::dpd3d::Config rcfg = skew;
    rcfg.rebalance = true;
    Cluster c({.machine = sim::machine_config(nodes),
               .ranks_per_device = rcfg.cells_per_node});
    rb = apps::dpd3d::run_dcuda(c, rcfg);
  }
  const apps::dpd3d::Result sref = apps::dpd3d::reference(skew, nodes);
  const bool rb_ok =
      rb.checksum == sref.checksum && rb.total_particles == sref.total_particles;
  std::printf("rebalance: %lld work tickets, physics unchanged: %s\n",
              static_cast<long long>(rb.work_tickets), rb_ok ? "OK" : "FAIL");

  return ok && rb_ok ? 0 : 1;
}
