// Domain example 4: hybrid host+device execution with host ranks (the §V
// extension). A pipeline where device ranks produce partial results and a
// host rank per node post-processes and reduces them — all through one
// uniform notified-RMA programming model, no separate host/device
// communication layers.

#include <cstdio>
#include <numeric>

#include "cluster/cluster.h"
#include "dcuda/collectives.h"

using namespace dcuda;

namespace {

constexpr int kNodes = 2;
constexpr int kDeviceRanks = 4;
constexpr int kHostRanks = 1;
constexpr int kChunks = 8;       // work chunks per device rank
constexpr int kChunkElems = 64;

}  // namespace

int main() {
  Cluster cluster({.machine = sim::machine_config(kNodes), .ranks_per_device = kDeviceRanks, .host_ranks = kHostRanks});
  const int rpn = cluster.ranks_per_node();

  // Per-node staging area the device ranks stream results into: one slot
  // per (device rank, chunk), owned by the node's host rank.
  std::vector<std::vector<double>> staging(static_cast<size_t>(kNodes));
  for (auto& s : staging)
    s.assign(static_cast<size_t>(kDeviceRanks) * kChunks * kChunkElems, 0.0);
  std::vector<double> node_sums(static_cast<size_t>(kNodes), 0.0);

  auto device_fn = [&](Context& ctx) -> sim::Proc<void> {
    auto& stage = staging[static_cast<size_t>(ctx.node->node())];
    Window w = co_await win_create(ctx, kCommWorld, std::span<double>(stage));
    const int host_rank = ctx.node->node() * rpn + kDeviceRanks;
    std::vector<double> chunk(kChunkElems);
    for (int cidx = 0; cidx < kChunks; ++cidx) {
      // "Compute" a chunk (deterministic payload + simulated flops).
      for (int e = 0; e < kChunkElems; ++e) {
        chunk[static_cast<size_t>(e)] = ctx.device_rank + 0.001 * (cidx * kChunkElems + e);
      }
      co_await ctx.charge_compute(2.0e5);
      const std::size_t slot =
          (static_cast<size_t>(ctx.device_rank) * kChunks + static_cast<size_t>(cidx)) *
          kChunkElems;
      co_await put_notify(ctx, w, host_rank, slot,
                          std::span<const double>(chunk), /*tag=*/cidx);
      co_await flush(ctx);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  };

  auto host_fn = [&](Context& ctx) -> sim::Proc<void> {
    auto& stage = staging[static_cast<size_t>(ctx.node->node())];
    Window w = co_await win_create(ctx, kCommWorld, std::span<double>(stage));
    // Consume chunks as they arrive, in chunk order across producers.
    for (int cidx = 0; cidx < kChunks; ++cidx) {
      co_await wait_notifications(ctx, w, kAnySource, cidx, kDeviceRanks);
      // Post-process: accumulate the freshly arrived chunk row.
      for (int r = 0; r < kDeviceRanks; ++r) {
        const std::size_t slot =
            (static_cast<size_t>(r) * kChunks + static_cast<size_t>(cidx)) * kChunkElems;
        for (int e = 0; e < kChunkElems; ++e) {
          node_sums[static_cast<size_t>(ctx.node->node())] += stage[slot + e];
        }
      }
      co_await ctx.charge_compute(5.0e4);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  };

  const sim::Dur elapsed = cluster.run(device_fn, host_fn);

  // Validation: closed-form expected sum.
  double expect_per_node = 0.0;
  for (int r = 0; r < kDeviceRanks; ++r)
    for (int i = 0; i < kChunks * kChunkElems; ++i) expect_per_node += r + 0.001 * i;

  std::printf("Hybrid host+device pipeline: %d nodes x (%d device + %d host ranks)\n",
              kNodes, kDeviceRanks, kHostRanks);
  std::printf("simulated time: %.1f us\n", sim::to_micros(elapsed));
  bool ok = true;
  for (int n = 0; n < kNodes; ++n) {
    const bool match = std::abs(node_sums[static_cast<size_t>(n)] - expect_per_node) < 1e-6;
    ok = ok && match;
    std::printf("  node %d host-rank reduction: %.3f (expected %.3f) [%s]\n", n,
                node_sums[static_cast<size_t>(n)], expect_per_node,
                match ? "OK" : "FAIL");
  }
  return ok ? 0 : 1;
}
