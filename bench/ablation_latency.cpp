// Ablation: network latency sensitivity. The paper's introduction argues
// that dCUDA's latency hiding makes programs "less network latency
// sensitive", potentially motivating throughput-oriented network designs.
// We sweep the wire latency for the stencil workload at 4 nodes: the
// MPI-CUDA variant pays every extra microsecond on its critical path; the
// dCUDA variant absorbs it with spare parallelism until the exchange time
// exceeds the compute time.

#include "apps/stencil.h"
#include "bench/common.h"

int main() {
  using namespace dcuda;
  bench::header("Ablation", "network latency sensitivity (paper SI)");
  apps::stencil::Config cfg;
  cfg.iterations = bench::iterations(15);
  const double scale = 100.0 / cfg.iterations;
  bench::row({"wire_latency_us", "dcuda_ms", "mpi_cuda_ms", "dcuda_slowdown",
              "mpi_cuda_slowdown"});
  double base_d = 0.0, base_m = 0.0;
  for (double lat_us : {1.4, 5.0, 10.0, 20.0, 40.0}) {
    sim::MachineConfig mc = bench::machine(4);
    mc.net.latency = sim::micros(lat_us);
    double d, m;
    {
      Cluster c({.machine = mc});
      d = sim::to_millis(apps::stencil::run_dcuda(c, cfg).elapsed) * scale;
    }
    {
      Cluster c({.machine = mc});
      m = sim::to_millis(apps::stencil::run_mpi_cuda(c, cfg).elapsed) * scale;
    }
    if (base_d == 0.0) {
      base_d = d;
      base_m = m;
    }
    bench::row({bench::fmt(lat_us, "%.1f"), bench::fmt(d), bench::fmt(m),
                bench::fmt(d / base_d, "%.2fx"), bench::fmt(m / base_m, "%.2fx")});
  }
  return 0;
}
