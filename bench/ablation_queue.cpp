// Ablation: queue design (§III-C). The sequence-number + credit scheme
// needs one PCIe transaction per enqueue plus an occasional tail read; a
// naive design would pay a head-pointer read per enqueue. We count actual
// simulated PCIe transactions per enqueue for several ring sizes and
// consumer speeds.

#include "bench/common.h"
#include "pcie/pcie.h"
#include "queue/circular_queue.h"

namespace dcuda {
namespace {

struct QueueStats {
  double txns_per_enqueue = 0.0;
  double tail_reads_per_enqueue = 0.0;
};

QueueStats run_queue(int ring, int n, sim::Dur consumer_delay) {
  sim::Simulation s;
  pcie::PcieLink link(s, sim::PcieConfig{});
  queue::Transport t;
  t.write = [&link](double bytes, std::function<void()> commit) -> sim::Proc<void> {
    co_await link.post_write(pcie::Dir::kDeviceToHost, bytes, std::move(commit));
  };
  t.read_tail = [&link](double bytes) -> sim::Proc<void> {
    co_await link.mapped_read(pcie::Dir::kHostToDevice, bytes);
  };
  queue::CircularQueue<int> q(s, ring, std::move(t));
  auto producer = [&]() -> sim::Proc<void> {
    for (int i = 0; i < n; ++i) co_await q.enqueue(i);
  };
  auto consumer = [&]() -> sim::Proc<void> {
    for (int i = 0; i < n; ++i) {
      (void)co_await q.dequeue();
      co_await s.delay(consumer_delay);
    }
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  QueueStats st;
  const double total_txns = static_cast<double>(link.transactions(pcie::Dir::kDeviceToHost) +
                                                link.transactions(pcie::Dir::kHostToDevice));
  st.txns_per_enqueue = total_txns / n;
  st.tail_reads_per_enqueue = static_cast<double>(q.tail_reads()) / n;
  return st;
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  bench::header("Ablation", "queue design: PCIe transactions per enqueue (paper SIII-C)");
  const int n = 4096;
  bench::row({"ring_entries", "consumer", "txns_per_enqueue", "tail_reads_per_enqueue"});
  for (int ring : {4, 16, 64, 256}) {
    for (auto [delay, name] : {std::pair{0.0, "fast"}, std::pair{sim::micros(3.0), "slow"}}) {
      auto st = run_queue(ring, n, delay);
      bench::row({bench::fmt(ring, "%.0f"), name, bench::fmt(st.txns_per_enqueue, "%.3f"),
                  bench::fmt(st.tail_reads_per_enqueue, "%.3f")});
    }
  }
  std::printf("# amortized cost approaches 1 transaction/enqueue as the ring grows —\n");
  std::printf("# a head-pointer design would pay 2 transactions per enqueue regardless.\n");
  return 0;
}
