#pragma once

// Shared driver for the overlap microbenchmarks (Figures 7 and 8): on 8
// nodes, every rank alternates a compute phase (N workload units) with a
// 1 kB halo exchange with its two neighbor ranks. Runtime switches disable
// either phase; perfect overlap means time(full) == max(time(compute),
// time(exchange)).

#include "bench/common.h"
#include "dcuda/dcuda.h"

namespace dcuda::bench {

enum class Workload { kNewton, kMemcopy };

struct OverlapPoint {
  double full_ms = 0.0;
  double compute_ms = 0.0;
  double exchange_ms = 0.0;
};

// One workload unit per rank and compute iteration:
//  kNewton — 16384 double-precision divisions (Newton-Raphson square root,
//            compute bound);
//  kMemcopy — a 16 kB memory-to-memory copy (bandwidth bound).
inline sim::Proc<void> workload_unit(gpu::BlockCtx& blk, Workload w) {
  if (w == Workload::kNewton) {
    co_await blk.compute_flops(16384.0 * 10.0);
  } else {
    co_await blk.mem_traffic(2.0 * 16.0 * 1024.0);
  }
}

inline double run_overlap(int nodes, Workload w, int units_per_exchange,
                          bool compute, bool exchange, int rounds,
                          const char* trace_label = nullptr) {
  Cluster c({.machine = machine(nodes)});
  if (trace_label != nullptr && trace_sink().enabled()) c.tracer().enable();
  const int rpd = c.ranks_per_device();
  // Distinct halo buffers per rank so that intra-device puts move data too
  // (each exchange really transfers 1 kB per direction).
  constexpr std::size_t kHalo = 1024;
  std::vector<std::span<std::byte>> src(static_cast<size_t>(nodes * rpd));
  std::vector<std::span<std::byte>> dst(static_cast<size_t>(nodes * rpd));
  for (int n = 0; n < nodes; ++n) {
    for (int r = 0; r < rpd; ++r) {
      src[static_cast<size_t>(n * rpd + r)] = c.device(n).alloc<std::byte>(kHalo);
      dst[static_cast<size_t>(n * rpd + r)] = c.device(n).alloc<std::byte>(2 * kHalo);
    }
  }
  const double elapsed = c.run([&](Context& ctx) -> sim::Proc<void> {
    const int g = ctx.world_rank;
    const int size = ctx.world_size;
    Window win = co_await win_create(ctx, kCommWorld, dst[static_cast<size_t>(g)]);
    const bool has_l = g > 0, has_r = g + 1 < size;
    for (int it = 0; it < rounds; ++it) {
      if (compute) {
        for (int u = 0; u < units_per_exchange; ++u) {
          co_await workload_unit(*ctx.block, w);
        }
      }
      if (exchange) {
        auto mine = src[static_cast<size_t>(g)];
        if (has_l) co_await put_notify(ctx, win, g - 1, kHalo, kHalo, mine.data(), 0);
        if (has_r) co_await put_notify(ctx, win, g + 1, 0, kHalo, mine.data(), 0);
        co_await wait_notifications(ctx, win, kAnySource, 0,
                                    (has_l ? 1 : 0) + (has_r ? 1 : 0));
      }
    }
    co_await win_free(ctx, win);
  });
  if (c.tracer().enabled()) trace_sink().add(trace_label, c.tracer());
  return sim::to_millis(elapsed);
}

// trace_prefix, when set, snapshots the three runs of this point for
// --trace/--summary as "<prefix>/full", "<prefix>/compute", "<prefix>/exchange".
inline OverlapPoint overlap_point(int nodes, Workload w, int units, int rounds,
                                  const std::string& trace_prefix = {}) {
  const bool tr = !trace_prefix.empty();
  const std::string full = trace_prefix + "/full";
  const std::string comp = trace_prefix + "/compute";
  const std::string exch = trace_prefix + "/exchange";
  OverlapPoint p;
  p.full_ms =
      run_overlap(nodes, w, units, true, true, rounds, tr ? full.c_str() : nullptr);
  p.compute_ms =
      run_overlap(nodes, w, units, true, false, rounds, tr ? comp.c_str() : nullptr);
  p.exchange_ms =
      run_overlap(nodes, w, 0, false, true, rounds, tr ? exch.c_str() : nullptr);
  return p;
}

}  // namespace dcuda::bench
