// Ablation: host-staged vs direct (GPUDirect-read) device-to-device
// transfers across message sizes — the mechanism behind the CUDA-aware MPI
// staging threshold (paper §IV-C, stencil and SpMV discussions). Direct
// transfers win below the threshold (no staging startup); staged transfers
// win for large messages (Kepler peer reads are capped well below the
// network rate).

#include "bench/common.h"
#include "mpi/mpi.h"

namespace dcuda {
namespace {

double transfer_ms(std::size_t bytes, bool force_direct) {
  sim::MachineConfig mc = bench::machine(2);
  if (force_direct) mc.mpi.device_staging_threshold = 1ull << 40;
  Cluster c({.machine = mc, .ranks_per_device = 1});
  auto src = c.device(0).alloc<std::byte>(bytes);
  auto dst = c.device(1).alloc<std::byte>(bytes);
  auto& sim = c.sim();
  auto tx = [&]() -> sim::Proc<void> {
    co_await c.mpi(0).send(1, 0, c.device(0).ref(src));
  };
  auto rx = [&]() -> sim::Proc<void> {
    co_await c.mpi(1).recv(0, 0, c.device(1).ref(dst));
  };
  sim.spawn(tx(), "tx");
  sim.spawn(rx(), "rx");
  sim.run();
  return sim::to_millis(sim.now());
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  bench::header("Ablation", "host-staged vs direct device-to-device transfers");
  bench::row({"size_kb", "staged_ms", "direct_ms", "staged_MB/s", "direct_MB/s"});
  for (std::size_t kb : {4, 16, 32, 64, 128, 256, 512, 1024, 4096}) {
    const double st = transfer_ms(kb * 1024, false);
    const double di = transfer_ms(kb * 1024, true);
    bench::row({bench::fmt(static_cast<double>(kb), "%.0f"), bench::fmt(st), bench::fmt(di),
                bench::fmt(static_cast<double>(kb) / 1024.0 / (st / 1e3), "%.0f"),
                bench::fmt(static_cast<double>(kb) / 1024.0 / (di / 1e3), "%.0f")});
  }
  return 0;
}
