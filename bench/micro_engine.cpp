// Wall-clock microbenchmark of the simulation engine itself (events/sec).
//
// Unlike the simulated-time figure benches, this binary measures *real* time:
// how fast the event engine schedules, orders, dispatches, and cancels
// events. It exercises only the public sim:: API, so the same source builds
// against any engine revision — scripts/bench_perf.sh uses it to record
// before/after numbers into BENCH_engine.json.
//
// Output is a single JSON object on stdout; human-readable rates go to
// stderr. Scenario sizes scale with DCUDA_MICRO_SCALE (default 1).

#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "sim/channel.h"
#include "sim/env_config.h"
#include "sim/proc.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/trigger.h"
#include "sim/units.h"

namespace dcuda {
namespace {

using Clock = std::chrono::steady_clock;

struct Result {
  const char* name;
  std::uint64_t events = 0;
  double seconds = 0.0;
  double events_per_sec() const { return seconds > 0 ? events / seconds : 0.0; }
};

int scale() {
  const int v = sim::env_int("DCUDA_MICRO_SCALE", 1);
  return v > 0 ? v : 1;
}

// Worker threads for the sharded scenarios (docs/PERF.md, "Parallel
// engine"); bench_perf.sh runs the binary once with DCUDA_THREADS=1 and
// once with several threads to record the parallel speedup.
int engine_threads() {
  const int v = sim::env_int("DCUDA_THREADS", 1);
  return v > 0 ? v : 1;
}

// The paper's wire latency, the lookahead the fabric registers.
constexpr double kWireLat = 1.4e-6;

// Runs `body` (which builds a Simulation, populates it, runs it, and returns
// the event count) `reps` times and wall-clocks the whole thing.
template <typename Body>
Result scenario(const char* name, int reps, Body body) {
  Result r{name};
  const auto t0 = Clock::now();
  for (int i = 0; i < reps; ++i) r.events += body();
  r.seconds = std::chrono::duration<double>(Clock::now() - t0).count();
  std::fprintf(stderr, "%-18s %10" PRIu64 " events  %8.3f s  %12.0f ev/s\n",
               name, r.events, r.seconds, r.events_per_sec());
  return r;
}

// A deep heap: N one-shot callbacks pre-scheduled at random times, drained
// in one run. Dominated by heap push/pop and callback dispatch.
std::uint64_t timer_churn(int n) {
  sim::Simulation s;
  sim::Rng rng(17);
  std::uint64_t acc = 0;
  for (int i = 0; i < n; ++i) {
    s.schedule(rng.uniform(0.0, 1.0), [&acc] { ++acc; });
  }
  s.run();
  return s.events_processed() + (acc == 0 ? 1 : 0);
}

// A shallow heap in steady state: k independent callback chains, each
// rescheduling itself from inside the callback. Measures per-event constant
// overhead with a warm pool.
std::uint64_t self_chain(int chains, int steps) {
  sim::Simulation s;
  struct Chain {
    sim::Simulation* s;
    int left;
    double period;
    void fire() {
      if (--left > 0) s->schedule(period, [this] { fire(); });
    }
  };
  std::vector<Chain> cs;
  cs.reserve(static_cast<size_t>(chains));
  for (int i = 0; i < chains; ++i) {
    cs.push_back(Chain{&s, steps, 1e-6 * (1.0 + 0.01 * i)});
  }
  for (auto& c : cs) s.schedule(c.period, [&c] { c.fire(); });
  s.run();
  return s.events_processed();
}

// The schedule_resume hot path: coroutines that repeatedly co_await a delay.
std::uint64_t resume_chain(int procs, int steps) {
  sim::Simulation s;
  auto worker = [](sim::Simulation& sim, int n, double d) -> sim::Proc<void> {
    for (int i = 0; i < n; ++i) co_await sim.delay(d);
  };
  for (int p = 0; p < procs; ++p) {
    s.spawn(worker(s, steps, 1e-6 * (1.0 + 0.01 * p)), "w");
  }
  s.run();
  return s.events_processed();
}

// Trigger handoff between two coroutines (the mailbox/queue wake-up path).
std::uint64_t ping_pong(int rounds) {
  sim::Simulation s;
  sim::Trigger ping(s), pong(s);
  auto a = [&]() -> sim::Proc<void> {
    for (int i = 0; i < rounds; ++i) {
      ping.notify_all();
      co_await pong.wait();
    }
  };
  auto b = [&]() -> sim::Proc<void> {
    for (int i = 0; i < rounds; ++i) {
      co_await ping.wait();
      pong.notify_all();
    }
  };
  s.spawn(b(), "b");
  s.spawn(a(), "a");
  s.run();
  return s.events_processed();
}

// Cancellable events: arm N timeouts, cancel every other one before it
// fires (the SharedResource::reschedule pattern).
std::uint64_t cancel_churn(int n) {
  sim::Simulation s;
  sim::Rng rng(5);
  std::vector<sim::EventToken> tokens;
  tokens.reserve(static_cast<size_t>(n));
  std::uint64_t acc = 0;
  for (int i = 0; i < n; ++i) {
    tokens.push_back(
        s.schedule_cancellable(rng.uniform(0.0, 1.0), [&acc] { ++acc; }));
  }
  for (int i = 0; i < n; i += 2) tokens[static_cast<size_t>(i)].cancel();
  s.run();
  return s.events_processed() + static_cast<std::uint64_t>(n) / 2;
}

// Processor-sharing churn: every arrival/completion cancels and re-arms the
// resource's completion event.
std::uint64_t resource_churn(int jobs) {
  sim::Simulation s;
  sim::SharedResource res(s, 100.0, 10.0);
  auto job = [](sim::Simulation& sim, sim::SharedResource& r, double delay,
                double work) -> sim::Proc<void> {
    co_await sim.delay(delay);
    co_await r.use(work);
  };
  sim::Rng rng(7);
  for (int i = 0; i < jobs; ++i) {
    s.spawn(job(s, res, rng.uniform(0.0, 1.0), rng.uniform(1.0, 5.0)), "j");
  }
  s.run();
  return s.events_processed();
}

// FIFO semaphore handoff under contention.
std::uint64_t fifo_contention(int users) {
  sim::Simulation s;
  sim::FifoResource res(s, 2);
  auto user = [](sim::Simulation& sim, sim::FifoResource& r) -> sim::Proc<void> {
    co_await r.acquire();
    co_await sim.delay(1e-6);
    r.release();
  };
  for (int i = 0; i < users; ++i) s.spawn(user(s, res), "u");
  s.run();
  return s.events_processed();
}

// Sharded engine, window-protocol overhead: N shards each draining an
// independent pre-scheduled heap. No cross-shard traffic — measures the
// cost of window rounds (min scan, merge, barrier) on embarrassingly
// parallel work, the best case for multi-threaded speedup. The horizon is
// chosen so a window covers ~20 events per shard (fabric-heavy workloads
// sit in that range); a sparse horizon would measure empty window rounds
// instead of event dispatch.
std::uint64_t sharded_churn(int shards, int per_shard, int threads) {
  sim::Simulation s;
  s.configure_shards(shards);
  s.register_lookahead(kWireLat);
  s.set_executor(0, threads);
  sim::Rng rng(23);
  // windows advance ~one lookahead at a time when events are dense, so
  // events-per-window-per-shard ~= per_shard * lookahead / horizon
  const double horizon = kWireLat * per_shard / 20.0;
  for (int d = 0; d < shards; ++d) {
    for (int i = 0; i < per_shard; ++i) {
      s.schedule_on(d, rng.uniform(0.0, horizon), [] {});
    }
  }
  s.run();
  return s.events_processed();
}

// Sharded engine, cross-shard staging/merge path: messengers hop around a
// ring of shards, each hop delayed by exactly the lookahead — every event
// crosses a shard boundary, the worst case for the window protocol.
std::uint64_t cross_shard(int shards, int msgs, int rounds, int threads) {
  sim::Simulation s;
  s.configure_shards(shards);
  s.register_lookahead(kWireLat);
  s.set_executor(0, threads);
  struct Hop {
    sim::Simulation* s;
    int shards;
    int left;
    void fire(int at) {
      if (--left <= 0) return;
      const int next = (at + 1) % shards;
      s->schedule_on(next, kWireLat, [this, next] { fire(next); });
    }
  };
  std::vector<Hop> hops(static_cast<size_t>(msgs), Hop{&s, shards, rounds});
  for (int i = 0; i < msgs; ++i) {
    const int at = i % shards;
    s.schedule_on(at, 1e-9 * i, [h = &hops[static_cast<size_t>(i)], at] {
      h->fire(at);
    });
  }
  s.run();
  return s.events_processed();
}

// Channel streaming: per-message delivery events carrying a payload.
std::uint64_t channel_stream(int msgs) {
  sim::Simulation s;
  sim::Channel<int> ch(s, sim::micros(1), sim::gbs(1.0));
  auto rx = [&]() -> sim::Proc<void> {
    for (int i = 0; i < msgs; ++i) (void)co_await ch.rx().pop();
  };
  s.spawn(rx(), "rx");
  for (int i = 0; i < msgs; ++i) ch.send(i, 256.0);
  s.run();
  return s.events_processed();
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  const int k = scale();
  std::vector<Result> results;
  results.push_back(scenario("timer_churn", 4 * k, [] { return timer_churn(1 << 17); }));
  results.push_back(scenario("self_chain", 4 * k, [] { return self_chain(64, 4096); }));
  results.push_back(scenario("resume_chain", 4 * k, [] { return resume_chain(64, 4096); }));
  results.push_back(scenario("ping_pong", 4 * k, [] { return ping_pong(40000); }));
  results.push_back(scenario("cancel_churn", 4 * k, [] { return cancel_churn(1 << 17); }));
  results.push_back(scenario("resource_churn", 2 * k, [] { return resource_churn(4096); }));
  results.push_back(scenario("fifo_contention", 4 * k, [] { return fifo_contention(8192); }));
  results.push_back(scenario("channel_stream", 4 * k, [] { return channel_stream(32768); }));
  const int nt = engine_threads();
  results.push_back(scenario("sharded_churn", 2 * k,
                             [nt] { return sharded_churn(8, 1 << 14, nt); }));
  results.push_back(scenario("cross_shard", 2 * k,
                             [nt] { return cross_shard(8, 64, 4096, nt); }));

  std::uint64_t total_events = 0;
  double total_seconds = 0.0;
  std::printf("{\n  \"scenarios\": {\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    total_events += r.events;
    total_seconds += r.seconds;
    std::printf("    \"%s\": {\"events\": %" PRIu64
                ", \"seconds\": %.6f, \"events_per_sec\": %.0f}%s\n",
                r.name, r.events, r.seconds, r.events_per_sec(),
                i + 1 < results.size() ? "," : "");
  }
  std::printf("  },\n");
  std::printf("  \"total_events\": %" PRIu64 ",\n", total_events);
  std::printf("  \"total_seconds\": %.6f,\n", total_seconds);
  std::printf("  \"events_per_sec\": %.0f\n}\n",
              total_seconds > 0 ? total_events / total_seconds : 0.0);
  return 0;
}
