// Gang-scheduler policy bench (docs/CLUSTER.md): one 16-node multi-tenant
// fabric, a seeded open-arrival workload of real dCUDA jobs (stencil /
// particles / spmv shapes, mixed gang sizes), run once per scheduling
// policy. Emits a JSON record with per-policy makespan, utilization and
// wait-time percentiles; scripts/bench_perf.sh writes it to
// BENCH_cluster.json and gates on backfill utilization >= 1.15x FIFO.
//
// Every run is checked by the sim::InvariantObserver cluster oracles (no
// lost jobs, no overlapping allocations, node conservation) — any firing
// is a hard failure.
//
// Flags / env:
//   --transcript      print each policy's scheduler transcript instead of
//                     the JSON record (check_determinism.sh, cluster pass)
//   --seed <n>        workload seed (default 27, the reference workload: a
//                     bursty mix whose arrival order puts wide gangs ahead
//                     of short narrow jobs — the adversarial case for FIFO)
//   DCUDA_SCHED       run only this policy (fifo | backfill | fairshare)
//   DCUDA_JOBS        workload size (default 24)

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/scheduler.h"
#include "cluster/workload.h"
#include "sim/env_config.h"
#include "sim/invariants.h"

namespace {

constexpr int kNodes = 16;

struct PolicyResult {
  std::string name;
  double makespan = 0.0;
  double utilization = 0.0;
  double wait_mean = 0.0;
  double wait_p50 = 0.0;
  double wait_p95 = 0.0;
  int jobs = 0;
};

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const size_t i = static_cast<size_t>(p * static_cast<double>(v.size() - 1));
  return v[i];
}

dcuda::cluster::WorkloadConfig workload_config(int num_jobs,
                                               std::uint64_t seed) {
  dcuda::cluster::WorkloadConfig wl;
  wl.num_jobs = num_jobs;
  wl.seed = seed;
  // Bursty arrivals: the whole workload lands inside the first wide job's
  // runtime, so the policies actually differ — FIFO idles nodes behind a
  // blocked wide head, EASY backfills them (the BENCH_cluster gate).
  wl.mean_interarrival = 1e-5;
  wl.wide_fraction = 0.35;
  wl.wide_duration_factor = 2.0;
  wl.min_iterations = 2;
  wl.max_iterations = 5;
  wl.ranks_per_device = 2;
  wl.bytes_per_msg = 16384;
  return wl;
}

PolicyResult run_policy(dcuda::cluster::Policy policy, int num_jobs,
                        std::uint64_t seed, bool transcript) {
  using namespace dcuda;
  sim::MachineConfig m;
  m.num_nodes = kNodes;
  sim::apply_env(m);
  Cluster c(ClusterSpec{}.with_machine(m).with_ranks_per_device(2)
                .with_multi_tenant());
  sim::InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  cluster::SchedulerConfig sc;
  sc.policy = policy;
  sc.placement = cluster::Placement::kStrided;
  cluster::Scheduler sched(c, sc);
  for (cluster::JobSpec& spec :
       cluster::generate_workload(workload_config(num_jobs, seed), kNodes)) {
    sched.submit(std::move(spec));
  }
  sched.run();
  obs.finalize();
  if (!obs.ok()) {
    std::fprintf(stderr, "FAIL: cluster oracle violations under %s:\n%s",
                 cluster::to_string(policy), obs.report().c_str());
    std::exit(1);
  }
  if (sched.completed_jobs() != num_jobs) {
    std::fprintf(stderr, "FAIL: %d/%d jobs completed under %s\n",
                 sched.completed_jobs(), num_jobs,
                 cluster::to_string(policy));
    std::exit(1);
  }
  if (transcript) {
    std::printf("== policy %s ==\n", cluster::to_string(policy));
    for (const std::string& l : sched.transcript()) {
      std::printf("%s\n", l.c_str());
    }
  }
  PolicyResult r;
  r.name = cluster::to_string(policy);
  r.makespan = sched.makespan();
  r.utilization = sched.utilization();
  r.jobs = sched.completed_jobs();
  const std::vector<double> waits = sched.wait_times();
  double sum = 0.0;
  for (double w : waits) sum += w;
  r.wait_mean = waits.empty() ? 0.0 : sum / static_cast<double>(waits.size());
  r.wait_p50 = percentile(waits, 0.50);
  r.wait_p95 = percentile(waits, 0.95);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bool transcript = false;
  std::uint64_t seed = 27;  // the reference workload (see header comment)
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--transcript") == 0) transcript = true;
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 0);
    }
  }
  const dcuda::sim::ClusterEnv env = dcuda::sim::cluster_env();
  const int num_jobs = env.jobs.value_or(24);

  std::vector<dcuda::cluster::Policy> policies;
  if (env.sched_set) {
    switch (env.sched) {
      case dcuda::sim::SchedPolicyEnv::kFifo:
        policies.push_back(dcuda::cluster::Policy::kFifo);
        break;
      case dcuda::sim::SchedPolicyEnv::kBackfill:
        policies.push_back(dcuda::cluster::Policy::kBackfill);
        break;
      case dcuda::sim::SchedPolicyEnv::kFairShare:
        policies.push_back(dcuda::cluster::Policy::kFairShare);
        break;
    }
  } else {
    policies = {dcuda::cluster::Policy::kFifo,
                dcuda::cluster::Policy::kBackfill,
                dcuda::cluster::Policy::kFairShare};
  }

  std::vector<PolicyResult> results;
  for (dcuda::cluster::Policy p : policies) {
    results.push_back(run_policy(p, num_jobs, seed, transcript));
  }
  if (transcript) return 0;

  std::printf("{\n  \"schema\": \"dcuda-bench-cluster-v1\",\n");
  std::printf("  \"nodes\": %d,\n  \"jobs\": %d,\n  \"policies\": {", kNodes,
              num_jobs);
  for (size_t i = 0; i < results.size(); ++i) {
    const PolicyResult& r = results[i];
    std::printf(
        "%s\n    \"%s\": {\"makespan\": %.9f, \"utilization\": %.6f, "
        "\"wait_mean\": %.9f, \"wait_p50\": %.9f, \"wait_p95\": %.9f, "
        "\"jobs\": %d}",
        i == 0 ? "" : ",", r.name.c_str(), r.makespan, r.utilization,
        r.wait_mean, r.wait_p50, r.wait_p95, r.jobs);
  }
  std::printf("\n  }\n}\n");
  return 0;
}
