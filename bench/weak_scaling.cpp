// Weak scaling of the sharded parallel engine (docs/PERF.md, "Parallel
// engine"): stencil and SpMV runs at 16 and 64 nodes with constant
// per-node work. The interesting number is simulated milliseconds per
// iteration — under weak scaling it must stay nearly flat as the cluster
// grows, since every node computes the same patch and only talks to its
// neighbours. A blow-up here means the engine (or the machine model)
// serializes something that should scale.
//
// Output: a human table on stdout by default; with --json, a single JSON
// object (scripts/bench_perf.sh embeds it into BENCH_engine.json under
// "weak_scaling" and gates on the 64-vs-16-node flatness ratios).
//
// Env: DCUDA_WEAK_NODES=<n> appends one extra cluster size (the 256-node
//      run documented in EXPERIMENTS.md); DCUDA_THREADS/DCUDA_SHARDS pick
//      the executor layout as everywhere else (results are identical for
//      every setting — only wall-clock time changes).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "apps/spmv.h"
#include "apps/stencil.h"
#include "bench/common.h"

namespace {

// Small per-node problem: weak scaling is about node count, not patch
// size, and the 64-node run must stay tractable in a CI container.
constexpr int kRanksPerDevice = 4;

struct Point {
  int nodes = 0;
  double stencil_ms = 0.0;
  double spmv_ms = 0.0;
};

Point measure(int nodes, int iters) {
  using namespace dcuda;
  Point p;
  p.nodes = nodes;
  {
    apps::stencil::Config cfg;
    cfg.isize = 16;
    cfg.jlocal = 2;
    cfg.ksize = 4;
    cfg.iterations = iters;
    Cluster c({.machine = bench::machine(nodes), .ranks_per_device = kRanksPerDevice});
    p.stencil_ms = sim::to_millis(apps::stencil::run_dcuda(c, cfg).elapsed);
  }
  {
    apps::spmv::Config cfg;
    cfg.n_dev = 64;  // divisible by ranks-per-device
    cfg.density = 0.02;
    cfg.iterations = iters;
    Cluster c({.machine = bench::machine(nodes), .ranks_per_device = kRanksPerDevice});
    p.spmv_ms = sim::to_millis(apps::spmv::run_dcuda(c, cfg).elapsed);
  }
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcuda;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const int iters = bench::iterations(4);
  std::vector<int> sizes = {16, 64};
  if (const int n = sim::env_int("DCUDA_WEAK_NODES", 0); n > 0) {
    sizes.push_back(n);
  }
  std::vector<Point> pts;
  pts.reserve(sizes.size());
  for (int n : sizes) pts.push_back(measure(n, iters));
  const Point& base = pts.front();
  const Point& big = pts[1];

  if (json) {
    std::printf("{\n  \"iterations\": %d,\n  \"ranks_per_device\": %d,\n",
                iters, kRanksPerDevice);
    std::printf("  \"points\": [\n");
    for (size_t i = 0; i < pts.size(); ++i) {
      std::printf("    {\"nodes\": %d, \"stencil_ms\": %.6f, \"spmv_ms\": %.6f}%s\n",
                  pts[i].nodes, pts[i].stencil_ms, pts[i].spmv_ms,
                  i + 1 < pts.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"stencil_flatness_64v16\": %.4f,\n",
                big.stencil_ms / base.stencil_ms);
    std::printf("  \"spmv_flatness_64v16\": %.4f\n}\n",
                big.spmv_ms / base.spmv_ms);
    return 0;
  }

  bench::header("Weak scaling", "sharded engine, constant per-node work");
  bench::row({"nodes", "stencil_ms", "spmv_ms"});
  for (const Point& p : pts) {
    bench::row({bench::fmt(p.nodes, "%.0f"), bench::fmt(p.stencil_ms),
                bench::fmt(p.spmv_ms)});
  }
  std::printf("# flatness 64 vs 16 nodes: stencil %.3fx, spmv %.3fx\n",
              big.stencil_ms / base.stencil_ms, big.spmv_ms / base.spmv_ms);
  return 0;
}
