// Figure 7: overlap of computation and communication for a compute-bound
// workload (Newton-Raphson square root). Paper shape: good — but not
// perfect — overlap: full ~ max(compute, exchange) plus a little, because
// the notification matcher itself is compute-heavy (§IV-B).

#include "bench/overlap.h"

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Figure 7", "overlap for square root calculation (Newton-Raphson)");
  const int rounds = bench::iterations(40);
  bench::row({"newton_iters_per_exchange", "compute_and_exchange_ms", "compute_only_ms",
              "halo_exchange_ms"});
  for (int units : {0, 1, 2, 4, 8, 16, 32}) {
    // Trace the 8-units point: compute and exchange are comparable there, so
    // the overlap story is clearest.
    auto p = bench::overlap_point(8, bench::Workload::kNewton, units, rounds,
                                  units == 8 ? "newton x8" : "");
    bench::row({bench::fmt(units, "%.0f"), bench::fmt(p.full_ms), bench::fmt(p.compute_ms),
                bench::fmt(p.exchange_ms)});
  }
  bench::trace_sink().finish();
  return 0;
}
