// Ablation: cost of the device-side notification matcher. The paper blames
// the imperfect overlap of compute-bound workloads on the matcher being
// "relatively compute heavy" (§IV-B). Idealizing it to zero cost closes
// that gap; the memory-bound workload is unaffected (its overlap was
// already perfect).

#include "bench/common.h"
#include "bench/overlap.h"

namespace dcuda {
namespace {

double overhead_at_crossover(bench::Workload w, bool charge, int rounds) {
  // Units near the compute/exchange crossover for each workload.
  const int units = w == bench::Workload::kNewton ? 2 : 4;
  sim::MachineConfig cfg = bench::machine(8);
  cfg.runtime.charge_matching_cost = charge;
  // run_overlap builds its own cluster; replicate with the config knob.
  auto run = [&](bool compute, bool exchange) {
    Cluster c({.machine = cfg});
    const int rpd = c.ranks_per_device();
    std::vector<std::span<std::byte>> dst(static_cast<size_t>(8 * rpd));
    std::vector<std::span<std::byte>> src(static_cast<size_t>(8 * rpd));
    for (int n = 0; n < 8; ++n)
      for (int r = 0; r < rpd; ++r) {
        dst[static_cast<size_t>(n * rpd + r)] = c.device(n).alloc<std::byte>(2048);
        src[static_cast<size_t>(n * rpd + r)] = c.device(n).alloc<std::byte>(1024);
      }
    const double t = c.run([&](Context& ctx) -> sim::Proc<void> {
      const int g = ctx.world_rank;
      Window win = co_await win_create(ctx, kCommWorld, dst[static_cast<size_t>(g)]);
      const bool hl = g > 0, hr = g + 1 < ctx.world_size;
      for (int it = 0; it < rounds; ++it) {
        if (compute) {
          for (int u = 0; u < units; ++u) co_await bench::workload_unit(*ctx.block, w);
        }
        if (exchange) {
          auto mine = src[static_cast<size_t>(g)];
          if (hl) co_await put_notify(ctx, win, g - 1, 1024, 1024, mine.data(), 0);
          if (hr) co_await put_notify(ctx, win, g + 1, 0, 1024, mine.data(), 0);
          co_await wait_notifications(ctx, win, kAnySource, 0, (hl ? 1 : 0) + (hr ? 1 : 0));
        }
      }
      co_await win_free(ctx, win);
    });
    return sim::to_millis(t);
  };
  const double full = run(true, true);
  const double comp = run(true, false);
  const double exch = run(false, true);
  return full - std::max(comp, exch);  // overhead over perfect overlap
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  bench::header("Ablation", "notification-matching cost vs idealized matcher (paper SIV-B)");
  const int rounds = bench::iterations(40);
  bench::row({"workload", "overhead_ms_with_matching_cost", "overhead_ms_idealized"});
  for (auto [w, name] : {std::pair{bench::Workload::kNewton, "newton"},
                         std::pair{bench::Workload::kMemcopy, "memcopy"}}) {
    const double with_cost = overhead_at_crossover(w, true, rounds);
    const double ideal = overhead_at_crossover(w, false, rounds);
    bench::row({name, bench::fmt(with_cost), bench::fmt(ideal)});
  }
  return 0;
}
