// Fig. 9-style study in 3-D: the DPD particle simulation with the
// 27-direction halo exchange under uniform and skewed particle densities.
//
// Sections (default mode):
//   * weak scaling, uniform density: constant cells and particles per node;
//     26 small messages per rank per iteration are the eager-path workload.
//   * weak scaling, skewed density: same particle total concentrated in a
//     drifting Gaussian blob — the dynamic load-imbalance regime. The
//     imbalance column is the mean over iterations of max/mean pair scans.
//   * strong scaling: fixed 24-cell domain spread over 1..3 nodes.
//   * eager ablation: skewed run with the eager/aggregation path off vs on
//     (sim::RmaConfig::eager_threshold); the halo payloads are small enough
//     to ride the eager path.
//   * rails ablation: skewed run on 1 vs 2 NIC rails.
//   * rebalance ablation: skewed run with work-adoption off vs on; the
//     ticket count and the physics checksum (bitwise unchanged) are shown.
//
// Extra modes:
//   --json          one JSON line for scripts/bench_perf.sh: skewed-density
//                   dCUDA vs MPI-CUDA comparison (gate: speedup >= 1.2).
//   --fingerprint   deterministic one-line fingerprint of the skewed
//                   schedule (golden file tests/golden/dpd3d_skew.golden and
//                   the check_determinism.sh dpd3d battery).
//   --eager         apply eager_threshold=2048 to every run (the eager lane
//                   of the determinism battery).
//
// Knobs: DCUDA_BENCH_ITERS (iterations), DCUDA_DPD3D_PPC (particles per
// cell), plus the cluster-wide DCUDA_* schedule knobs via bench::machine.

#include <cstdio>
#include <cstring>
#include <numeric>

#include "apps/dpd3d.h"
#include "bench/common.h"
#include "sim/env_config.h"

namespace {

using dcuda::apps::dpd3d::Config;
using dcuda::apps::dpd3d::Density;
using dcuda::apps::dpd3d::Result;

struct Options {
  bool json = false;
  bool fingerprint = false;
  bool eager = false;
};

Config base_config() {
  Config cfg;
  cfg.cells_per_node = 8;
  cfg.particles_per_cell =
      static_cast<int>(dcuda::sim::env_int("DCUDA_DPD3D_PPC", 16));
  cfg.iterations = dcuda::bench::iterations(10);
  cfg.dt = 0.02;
  return cfg;
}

Result run(int nodes, const Config& cfg, bool dcuda_variant, bool eager) {
  using namespace dcuda;
  sim::MachineConfig machine = bench::machine(nodes);
  if (eager) machine.rma.eager_threshold = 2048;
  Cluster c({.machine = machine, .ranks_per_device = cfg.cells_per_node});
  return dcuda_variant ? apps::dpd3d::run_dcuda(c, cfg)
                       : apps::dpd3d::run_mpi_cuda(c, cfg);
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

Config skewed_config() {
  Config cfg = base_config();
  cfg.density = Density::kSkewed;
  cfg.skew_drift = 0.8;
  cfg.record_load = true;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dcuda;
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--json")) opt.json = true;
    if (!std::strcmp(argv[i], "--fingerprint")) opt.fingerprint = true;
    if (!std::strcmp(argv[i], "--eager")) opt.eager = true;
  }

  if (opt.json) {
    // Gate scenario: skewed density on 4 nodes. The dCUDA side runs with
    // work-adoption rebalance on — the dCUDA-only capability under test
    // (notified-put tickets shift pair-scan cost off the blob rank, bitwise
    // physics-invariant) — against the plain fork-join MPI-CUDA baseline,
    // and must win by >= 1.2x (scripts/bench_perf.sh writes the outcome to
    // BENCH_dpd3d.json). bitwise_match compares the physics checksums, so a
    // speedup bought with a wrong answer fails the gate outright.
    const Config cfg = skewed_config();
    Config dcfg = cfg;
    dcfg.rebalance = true;
    const int nodes = 4;
    const Result d = run(nodes, dcfg, true, opt.eager);
    const Result m = run(nodes, cfg, false, opt.eager);
    std::printf(
        "{\"bench\":\"fig_dpd3d\",\"scenario\":\"skewed\",\"nodes\":%d,"
        "\"ranks\":%d,\"iterations\":%d,\"dcuda_ms\":%.3f,\"mpi_cuda_ms\":%.3f,"
        "\"speedup\":%.3f,\"imbalance\":%.3f,\"tickets\":%lld,"
        "\"bitwise_match\":%s}\n",
        nodes, nodes * cfg.cells_per_node, cfg.iterations,
        sim::to_millis(d.elapsed), sim::to_millis(m.elapsed),
        sim::to_millis(m.elapsed) / sim::to_millis(d.elapsed),
        mean(d.iter_imbalance), static_cast<long long>(d.work_tickets),
        d.checksum == m.checksum && d.total_particles == m.total_particles
            ? "true"
            : "false");
    return 0;
  }

  if (opt.fingerprint) {
    // One deterministic line capturing both the physics (bitwise checksum,
    // conservation, halo totals) and the schedule (elapsed virtual nanos,
    // ticket count with rebalance on). Golden: tests/golden/dpd3d_skew.golden.
    Config cfg = skewed_config();
    cfg.rebalance = true;
    const int nodes = 3;
    const Result d = run(nodes, cfg, true, opt.eager);
    std::printf(
        "dpd3d skew fingerprint nodes=%d ranks=%d iters=%d elapsed_ns=%.0f "
        "particles=%lld checksum=%.17g mom=%.17g,%.17g,%.17g peak=%d "
        "halo=%lld violations=%lld tickets=%lld imbalance=%.6f\n",
        nodes, nodes * cfg.cells_per_node, cfg.iterations,
        sim::to_nanos(d.elapsed), static_cast<long long>(d.total_particles),
        d.checksum, d.momentum_x, d.momentum_y, d.momentum_z, d.max_cell_count,
        static_cast<long long>(d.halo_received_total),
        static_cast<long long>(d.halo_violations),
        static_cast<long long>(d.work_tickets), mean(d.iter_imbalance));
    return 0;
  }

  bench::trace_sink().parse_args(argc, argv);
  bench::header("DPD 3-D", "27-direction halo exchange, uniform vs skewed density");
  const Config uni = base_config();
  const double scale = 100.0 / uni.iterations;  // report per-100-iteration ms

  std::printf("# weak scaling, uniform density (%d cells/node, %d particles/cell)\n",
              uni.cells_per_node, uni.particles_per_cell);
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "halo_exchange_ms"});
  for (int nodes : {1, 2, 3, 4}) {
    const bool trace = nodes == 4 && bench::trace_sink().enabled();
    Result d, m, h;
    {
      sim::MachineConfig machine = bench::machine(nodes);
      if (opt.eager) machine.rma.eager_threshold = 2048;
      Cluster c({.machine = machine, .ranks_per_device = uni.cells_per_node});
      if (trace) c.tracer().enable();
      d = apps::dpd3d::run_dcuda(c, uni);
      if (trace) bench::trace_sink().add("dCUDA 4 nodes", c.tracer());
    }
    m = run(nodes, uni, false, opt.eager);
    {
      Config hx = uni;
      hx.compute = false;
      h = run(nodes, hx, false, opt.eager);
    }
    bench::row({bench::fmt(nodes, "%.0f"),
                bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(sim::to_millis(h.elapsed) * scale)});
  }

  const Config skew = skewed_config();
  std::printf("# weak scaling, skewed density (drifting blob, drift=%.2f)\n",
              skew.skew_drift);
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "imbalance"});
  for (int nodes : {1, 2, 3, 4}) {
    const Result d = run(nodes, skew, true, opt.eager);
    const Result m = run(nodes, skew, false, opt.eager);
    bench::row({bench::fmt(nodes, "%.0f"),
                bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(mean(d.iter_imbalance))});
  }

  std::printf("# strong scaling, fixed 24-cell skewed domain\n");
  bench::row({"nodes", "cells_node", "dcuda_ms", "mpi_cuda_ms"});
  for (int nodes : {1, 2, 3}) {
    Config cfg = skew;
    cfg.cells_per_node = 24 / nodes;
    cfg.record_load = false;
    const Result d = run(nodes, cfg, true, opt.eager);
    const Result m = run(nodes, cfg, false, opt.eager);
    bench::row({bench::fmt(nodes, "%.0f"), bench::fmt(cfg.cells_per_node, "%.0f"),
                bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale)});
  }

  std::printf("# eager ablation, skewed, 3 nodes (halo puts are eager-path food)\n");
  bench::row({"eager_threshold", "dcuda_ms"});
  for (int threshold : {0, 2048}) {
    sim::MachineConfig machine = bench::machine(3);
    machine.rma.eager_threshold = static_cast<std::size_t>(threshold);
    Cluster c({.machine = machine, .ranks_per_device = skew.cells_per_node});
    const Result d = apps::dpd3d::run_dcuda(c, skew);
    bench::row({bench::fmt(threshold, "%.0f"),
                bench::fmt(sim::to_millis(d.elapsed) * scale)});
  }

  std::printf("# rails ablation, skewed, 3 nodes\n");
  bench::row({"rails", "dcuda_ms"});
  for (int rails : {1, 2}) {
    sim::MachineConfig machine = bench::machine(3);
    if (opt.eager) machine.rma.eager_threshold = 2048;
    machine.net.topo.rails = rails;
    Cluster c({.machine = machine, .ranks_per_device = skew.cells_per_node});
    const Result d = apps::dpd3d::run_dcuda(c, skew);
    bench::row({bench::fmt(rails, "%.0f"),
                bench::fmt(sim::to_millis(d.elapsed) * scale)});
  }

  std::printf("# rebalance ablation, skewed, 3 nodes (physics bitwise unchanged)\n");
  bench::row({"rebalance", "dcuda_ms", "tickets", "checksum"});
  for (int rb : {0, 1}) {
    Config cfg = skew;
    cfg.rebalance = rb != 0;
    const Result d = run(3, cfg, true, opt.eager);
    bench::row({bench::fmt(rb, "%.0f"),
                bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(static_cast<double>(d.work_tickets), "%.0f"),
                bench::fmt(d.checksum, "%.9f")});
  }

  bench::trace_sink().finish();
  return 0;
}
