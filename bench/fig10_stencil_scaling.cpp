// Figure 10: weak scaling of the stencil program (COSMO-style horizontal
// diffusion; constant grid per device). Series: dCUDA, MPI-CUDA, and the
// halo-exchange time measured by the MPI-CUDA variant.
//
// Paper shape: similar single-node performance; in multi-node runs the
// MPI-CUDA scaling cost roughly equals the halo exchange time while dCUDA
// overlaps it completely (perfect load balance).

#include "apps/stencil.h"
#include "bench/common.h"

int main() {
  using namespace dcuda;
  bench::header("Figure 10", "weak scaling of the stencil program");
  apps::stencil::Config cfg;
  cfg.iterations = bench::iterations(20);
  const double scale = 100.0 / cfg.iterations;
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "halo_exchange_ms"});
  for (int nodes : {1, 2, 3, 4, 6, 8}) {
    apps::stencil::Result d, m, h;
    {
      Cluster c(bench::machine(nodes));
      d = apps::stencil::run_dcuda(c, cfg);
    }
    {
      Cluster c(bench::machine(nodes));
      m = apps::stencil::run_mpi_cuda(c, cfg);
    }
    {
      apps::stencil::Config hx = cfg;
      hx.compute = false;
      Cluster c(bench::machine(nodes));
      h = apps::stencil::run_mpi_cuda(c, hx);
    }
    bench::row({bench::fmt(nodes, "%.0f"), bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(sim::to_millis(h.elapsed) * scale)});
  }
  return 0;
}
