// Figure 10: weak scaling of the stencil program (COSMO-style horizontal
// diffusion; constant grid per device). Series: dCUDA, MPI-CUDA, and the
// halo-exchange time measured by the MPI-CUDA variant.
//
// Paper shape: similar single-node performance; in multi-node runs the
// MPI-CUDA scaling cost roughly equals the halo exchange time while dCUDA
// overlaps it completely (perfect load balance).

#include "apps/stencil.h"
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Figure 10", "weak scaling of the stencil program");
  apps::stencil::Config cfg;
  cfg.iterations = bench::iterations(20);
  const double scale = 100.0 / cfg.iterations;
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "halo_exchange_ms"});
  for (int nodes : {1, 2, 3, 4, 6, 8}) {
    // Trace the largest run: dCUDA's fully hidden halo exchange vs the
    // MPI-CUDA serialization is the paper's headline claim.
    const bool trace = nodes == 8 && bench::trace_sink().enabled();
    apps::stencil::Result d, m, h;
    {
      Cluster c({.machine = bench::machine(nodes)});
      if (trace) c.tracer().enable();
      d = apps::stencil::run_dcuda(c, cfg);
      if (trace) bench::trace_sink().add("dCUDA 8 nodes", c.tracer());
    }
    {
      Cluster c({.machine = bench::machine(nodes)});
      if (trace) c.tracer().enable();
      m = apps::stencil::run_mpi_cuda(c, cfg);
      if (trace) bench::trace_sink().add("MPI-CUDA 8 nodes", c.tracer());
    }
    {
      apps::stencil::Config hx = cfg;
      hx.compute = false;
      Cluster c({.machine = bench::machine(nodes)});
      h = apps::stencil::run_mpi_cuda(c, hx);
    }
    bench::row({bench::fmt(nodes, "%.0f"), bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(sim::to_millis(h.elapsed) * scale)});
  }
  bench::trace_sink().finish();
  return 0;
}
