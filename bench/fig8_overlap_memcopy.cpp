// Figure 8: overlap of computation and communication for a memory
// bandwidth-bound workload (memory-to-memory copy). Paper shape: perfect
// overlap — full == max(compute, exchange) throughout.

#include "bench/overlap.h"

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Figure 8", "overlap for memory-to-memory copy");
  const int rounds = bench::iterations(40);
  bench::row({"copy_iters_per_exchange", "compute_and_exchange_ms", "compute_only_ms",
              "halo_exchange_ms"});
  for (int units : {0, 1, 2, 4, 8, 16, 32}) {
    auto p = bench::overlap_point(8, bench::Workload::kMemcopy, units, rounds,
                                  units == 8 ? "memcopy x8" : "");
    bench::row({bench::fmt(units, "%.0f"), bench::fmt(p.full_ms), bench::fmt(p.compute_ms),
                bench::fmt(p.exchange_ms)});
  }
  bench::trace_sink().finish();
  return 0;
}
