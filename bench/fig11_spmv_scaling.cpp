// Figure 11: weak scaling of sparse matrix-vector multiplication (square
// 2-D decomposition: 1, 4, 9 nodes; one barrier per iteration). Series:
// dCUDA, MPI-CUDA, and the communication time measured by the MPI-CUDA
// variant (compute disabled).
//
// Paper shape: tight synchronization leaves no room for overlap — both
// variants scale with the communication time; MPI-CUDA slightly ahead at
// small node counts, dCUDA catching up at larger ones.

#include "apps/spmv.h"
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Figure 11", "weak scaling of the sparse matrix-vector example");
  apps::spmv::Config cfg;
  cfg.iterations = bench::iterations(20);
  const double scale = 100.0 / cfg.iterations;
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "communication_ms"});
  for (int nodes : {1, 4, 9}) {
    // Trace the largest run: the per-iteration barrier should leave both
    // variants with visibly serialized communication.
    const bool trace = nodes == 9 && bench::trace_sink().enabled();
    apps::spmv::Result d, m, h;
    {
      Cluster c({.machine = bench::machine(nodes)});
      if (trace) c.tracer().enable();
      d = apps::spmv::run_dcuda(c, cfg);
      if (trace) bench::trace_sink().add("dCUDA 9 nodes", c.tracer());
    }
    {
      Cluster c({.machine = bench::machine(nodes)});
      if (trace) c.tracer().enable();
      m = apps::spmv::run_mpi_cuda(c, cfg);
      if (trace) bench::trace_sink().add("MPI-CUDA 9 nodes", c.tracer());
    }
    {
      apps::spmv::Config hx = cfg;
      hx.compute = false;
      Cluster c({.machine = bench::machine(nodes)});
      h = apps::spmv::run_mpi_cuda(c, hx);
    }
    bench::row({bench::fmt(nodes, "%.0f"), bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(sim::to_millis(h.elapsed) * scale)});
  }
  bench::trace_sink().finish();
  return 0;
}
