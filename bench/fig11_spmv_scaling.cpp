// Figure 11: weak scaling of sparse matrix-vector multiplication (square
// 2-D decomposition: 1, 4, 9 nodes; one barrier per iteration). Series:
// dCUDA, MPI-CUDA, and the communication time measured by the MPI-CUDA
// variant (compute disabled).
//
// Paper shape: tight synchronization leaves no room for overlap — both
// variants scale with the communication time; MPI-CUDA slightly ahead at
// small node counts, dCUDA catching up at larger ones.

#include "apps/spmv.h"
#include "bench/common.h"

int main() {
  using namespace dcuda;
  bench::header("Figure 11", "weak scaling of the sparse matrix-vector example");
  apps::spmv::Config cfg;
  cfg.iterations = bench::iterations(20);
  const double scale = 100.0 / cfg.iterations;
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "communication_ms"});
  for (int nodes : {1, 4, 9}) {
    apps::spmv::Result d, m, h;
    {
      Cluster c(bench::machine(nodes));
      d = apps::spmv::run_dcuda(c, cfg);
    }
    {
      Cluster c(bench::machine(nodes));
      m = apps::spmv::run_mpi_cuda(c, cfg);
    }
    {
      apps::spmv::Config hx = cfg;
      hx.compute = false;
      Cluster c(bench::machine(nodes));
      h = apps::spmv::run_mpi_cuda(c, hx);
    }
    bench::row({bench::fmt(nodes, "%.0f"), bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(sim::to_millis(h.elapsed) * scale)});
  }
  return 0;
}
