// Host-side microbenchmarks (google-benchmark, real wall-clock): the
// simulator and runtime data structures themselves. These guard the
// "simulation throughput" that makes the figure reproductions tractable
// (~1M simulated events per second).

#include <benchmark/benchmark.h>

#include "queue/circular_queue.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "runtime/protocol.h"

namespace dcuda {
namespace {

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    const int n = static_cast<int>(state.range(0));
    int fired = 0;
    sim::Rng rng(1);
    for (int i = 0; i < n; ++i) {
      s.schedule(rng.next_double(), [&fired] { ++fired; });
    }
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1000)->Arg(100000);

void BM_CoroutinePingPong(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    sim::Trigger ping(s), pong(s);
    int rounds = static_cast<int>(state.range(0));
    int count = 0;
    auto a = [&]() -> sim::Proc<void> {
      for (int i = 0; i < rounds; ++i) {
        ping.notify_all();
        co_await pong.wait();
        ++count;
      }
    };
    auto b = [&]() -> sim::Proc<void> {
      for (int i = 0; i < rounds; ++i) {
        co_await ping.wait();
        pong.notify_all();
      }
    };
    s.spawn(b(), "b");
    s.spawn(a(), "a");
    s.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CoroutinePingPong)->Arg(1000);

void BM_SharedResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    sim::SharedResource res(s, 100.0, 10.0);
    const int n = static_cast<int>(state.range(0));
    auto job = [](sim::Simulation& sim, sim::SharedResource& r, double work,
                  double delay) -> sim::Proc<void> {
      co_await sim.delay(delay);
      co_await r.use(work);
    };
    sim::Rng rng(7);
    for (int i = 0; i < n; ++i) {
      s.spawn(job(s, res, rng.uniform(1.0, 5.0), rng.uniform(0.0, 1.0)), "j");
    }
    s.run();
    benchmark::DoNotOptimize(res.work_done());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SharedResourceChurn)->Arg(1000);

void BM_CircularQueueLocal(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation s;
    queue::CircularQueue<rt::Command> q(s, 16, queue::local_transport(s));
    const int n = static_cast<int>(state.range(0));
    auto producer = [&]() -> sim::Proc<void> {
      rt::Command c;
      for (int i = 0; i < n; ++i) co_await q.enqueue(c);
    };
    auto consumer = [&]() -> sim::Proc<void> {
      for (int i = 0; i < n; ++i) (void)co_await q.dequeue();
    };
    s.spawn(producer(), "p");
    s.spawn(consumer(), "c");
    s.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CircularQueueLocal)->Arg(10000);

void BM_NotificationMatchScan(benchmark::State& state) {
  // The matcher's host-side analogue: scan a pending deque for (win, src,
  // tag) with wildcards, erase matches, keep mismatches.
  const int n = static_cast<int>(state.range(0));
  sim::Rng rng(3);
  std::vector<rt::Notification> base(static_cast<size_t>(n));
  for (auto& x : base) {
    x.win_device_id = static_cast<int>(rng.next_below(4));
    x.source = static_cast<int>(rng.next_below(16));
    x.tag = static_cast<int>(rng.next_below(8));
  }
  for (auto _ : state) {
    std::deque<rt::Notification> pending(base.begin(), base.end());
    int matched = 0;
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->win_device_id == 2 && it->tag == 3) {
        it = pending.erase(it);
        ++matched;
      } else {
        ++it;
      }
    }
    benchmark::DoNotOptimize(matched);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NotificationMatchScan)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace dcuda

BENCHMARK_MAIN();
