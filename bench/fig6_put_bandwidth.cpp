// Figure 6: put-bandwidth of shared and distributed memory ranks as a
// function of the packet size, measured with a notified-put ping-pong.
// Also reports the empty-packet latencies quoted in §IV-B (paper: 7.8 us
// shared, 9.2 us distributed; bandwidth plateaus ~1.06 GB/s shared and
// ~5.3 GB/s distributed).

#include "bench/common.h"
#include "dcuda/dcuda.h"

namespace dcuda {
namespace {

struct PingPong {
  double latency_us = 0.0;
  double bandwidth_mbs = 0.0;
};

// Ping-pong between rank 0 and the last rank: same device when nodes == 1,
// network otherwise. Setup cost is removed by subtracting a zero-iteration
// run (the paper's methodology).
PingPong pingpong(int nodes, std::size_t bytes, int iters,
                  const char* trace_label = nullptr, bool eager = false) {
  auto run_once = [&](int iterations, bool trace) {
    sim::MachineConfig m = bench::machine(nodes);
    if (eager) {
      // Single-message latency view of the fast path: threshold above the
      // packet, batch of one so every put flushes immediately (no window).
      m.rma.eager_threshold = 512;
      m.rma.max_batch = 1;
    }
    Cluster c({.machine = m, .ranks_per_device = nodes == 1 ? 2 : 1});
    if (trace) c.tracer().enable();
    auto m0 = c.device(0).alloc<std::byte>(bytes + 1);
    auto m1 = c.device(nodes - 1).alloc<std::byte>(bytes + 1);
    c.run([&, iterations](Context& ctx) -> sim::Proc<void> {
      auto mine = ctx.world_rank == 0 ? m0 : m1;
      const int peer = ctx.world_size - 1 - ctx.world_rank;
      Window w = co_await win_create(ctx, kCommWorld, mine);
      for (int i = 0; i < iterations; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, peer, 0, bytes, mine.data(), 0);
          co_await wait_notifications(ctx, w, peer, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, peer, 0, 1);
          co_await put_notify(ctx, w, peer, 0, bytes, mine.data(), 0);
        }
      }
      co_await win_free(ctx, w);
    });
    if (c.tracer().enabled()) bench::trace_sink().add(trace_label, c.tracer());
    return c.sim().now();
  };
  const bool trace = trace_label != nullptr && bench::trace_sink().enabled();
  const double setup = run_once(0, false);
  const double total = run_once(iters, trace) - setup;
  PingPong r;
  r.latency_us = sim::to_micros(total / (2.0 * iters));
  r.bandwidth_mbs = static_cast<double>(bytes) / (total / (2.0 * iters)) / sim::kMBs;
  return r;
}

}  // namespace
}  // namespace dcuda

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Figure 6", "put-bandwidth of shared and distributed memory ranks");
  const int iters = bench::iterations(50);

  const PingPong lat_sh = pingpong(1, 0, iters);
  const PingPong lat_di = pingpong(2, 0, iters);
  std::printf("# empty-packet latency: shared %.1f us (paper 7.8), distributed %.1f us (paper 9.2)\n",
              lat_sh.latency_us, lat_di.latency_us);

  // Small-packet latency with the eager fast path (one inline packet per
  // put instead of the meta+payload rendezvous; sim::RmaConfig, batch = 1).
  const PingPong sm_rv = pingpong(2, 256, iters);
  const PingPong sm_ea = pingpong(2, 256, iters, nullptr, /*eager=*/true);
  std::printf("# 256 B distributed latency: rendezvous %.1f us, eager %.1f us\n",
              sm_rv.latency_us, sm_ea.latency_us);

  bench::row({"packet_kb", "distributed_MB/s", "shared_MB/s"});
  for (std::size_t kb : {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}) {
    // Trace the 1 MB point — deep in the bandwidth plateau for both series.
    const bool rep = kb == 1024;
    const PingPong di =
        pingpong(2, kb * 1024, iters, rep ? "distributed 1MB" : nullptr);
    const PingPong sh = pingpong(1, kb * 1024, iters, rep ? "shared 1MB" : nullptr);
    bench::row({bench::fmt(static_cast<double>(kb), "%.0f"),
                bench::fmt(di.bandwidth_mbs, "%.1f"), bench::fmt(sh.bandwidth_mbs, "%.1f")});
  }
  bench::trace_sink().finish();
  return 0;
}
