// Micro-benchmark of the small-message notified-put protocol: message rate
// with the eager/aggregated fast path (sim::RmaConfig) on versus off.
//
// Workload: every rank on node 0 streams `iters` notified puts of a fixed
// size to its peer rank on node 1; peers match every notification. Several
// origin ranks run concurrently so the per-rank device issue cost is not
// the shared bottleneck — the host pipeline and the fabric are, which is
// where the eager path saves work (one aggregated packet instead of a
// meta+payload rendezvous pair per put, one batched notification commit
// per packet instead of one enqueue per put).
//
// The rate is messages per second of *simulated* time; setup cost is
// removed by subtracting a zero-iteration run (the fig6 methodology).
// Output is a single JSON object on stdout (scripts/bench_perf.sh assembles
// it into BENCH_comm.json); human-readable rates go to stderr. The paper's
// acceptance bar — >= 1.5x rate for packets <= 512 B — is exported as
// "min_small_speedup" so the harness can gate on it.

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "dcuda/dcuda.h"

namespace dcuda {
namespace {

constexpr int kNodes = 2;
constexpr int kOrigins = 4;   // ranks per device; node 0 sends, node 1 receives
constexpr int kSlots = 16;    // recv-window slots reused round-robin
constexpr std::size_t kEagerThreshold = 512;
constexpr int kMaxBatch = 8;

struct Series {
  std::size_t bytes = 0;
  double rate_off = 0.0;  // msgs / simulated second
  double rate_on = 0.0;
  double speedup() const { return rate_off > 0.0 ? rate_on / rate_off : 0.0; }
};

double stream_once(std::size_t bytes, int iters, bool eager) {
  sim::MachineConfig m = bench::machine(kNodes);
  if (eager) {
    m.rma.eager_threshold = kEagerThreshold;
    m.rma.max_batch = kMaxBatch;
  }
  Cluster c({.machine = m, .ranks_per_device = kOrigins});
  std::vector<std::span<std::byte>> win(static_cast<size_t>(kNodes * kOrigins));
  for (int g = 0; g < kNodes * kOrigins; ++g) {
    win[static_cast<size_t>(g)] =
        c.device(g / kOrigins).alloc<std::byte>(kSlots * (bytes + 1) + 1);
  }
  c.run([&, iters](Context& ctx) -> sim::Proc<void> {
    const int g = ctx.world_rank;
    Window w = co_await win_create(ctx, kCommWorld, win[static_cast<size_t>(g)]);
    if (g < kOrigins) {  // node 0: origin
      const int peer = g + kOrigins;
      for (int i = 0; i < iters; ++i) {
        const std::size_t slot = static_cast<size_t>(i % kSlots) * (bytes + 1);
        co_await put_notify(ctx, w, peer, slot, bytes,
                            win[static_cast<size_t>(g)].data(), /*tag=*/0);
      }
      co_await flush(ctx);
    } else {  // node 1: target
      const int peer = g - kOrigins;
      co_await wait_notifications(ctx, w, peer, 0, iters);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  return c.sim().now();
}

Series measure(std::size_t bytes, int iters) {
  Series s;
  s.bytes = bytes;
  const double off = stream_once(bytes, iters, false) - stream_once(bytes, 0, false);
  const double on = stream_once(bytes, iters, true) - stream_once(bytes, 0, true);
  const double msgs = static_cast<double>(kOrigins) * iters;
  s.rate_off = msgs / off;
  s.rate_on = msgs / on;
  std::fprintf(stderr,
               "%6zu B   off %12.0f msg/s   on %12.0f msg/s   speedup %5.2fx\n",
               bytes, s.rate_off, s.rate_on, s.speedup());
  return s;
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  // Floor of 32 puts per rank: the rate is a steady-state metric, and very
  // short streams are dominated by the one aggregation-window wait on the
  // final partial batch rather than by the per-message protocol cost.
  const int iters = std::max(32, bench::iterations(64));
  std::fprintf(stderr, "# micro_comm: notified-put message rate, eager+agg on vs off\n");
  std::fprintf(stderr, "# %d origin ranks, %d puts each, threshold %zu B, batch %d\n",
               kOrigins, iters, kEagerThreshold, kMaxBatch);

  std::vector<Series> series;
  // <= 512 B: the eager sizes the acceptance bar covers; 2048 B stays on the
  // rendezvous path in both runs (parity reference).
  for (std::size_t bytes : {std::size_t{64}, std::size_t{128}, std::size_t{256},
                            std::size_t{512}, std::size_t{2048}}) {
    series.push_back(measure(bytes, iters));
  }

  double min_small = -1.0;
  for (const Series& s : series) {
    if (s.bytes <= kEagerThreshold) {
      if (min_small < 0.0 || s.speedup() < min_small) min_small = s.speedup();
    }
  }

  std::printf("{\n");
  std::printf("  \"schema\": \"dcuda-bench-comm-v1\",\n");
  std::printf("  \"config\": {\"nodes\": %d, \"origin_ranks\": %d, \"puts_per_rank\": %d, "
              "\"eager_threshold\": %zu, \"max_batch\": %d},\n",
              kNodes, kOrigins, iters, kEagerThreshold, kMaxBatch);
  std::printf("  \"sizes\": [\n");
  for (size_t i = 0; i < series.size(); ++i) {
    const Series& s = series[i];
    std::printf("    {\"bytes\": %zu, \"rate_off_msgs_per_s\": %.0f, "
                "\"rate_on_msgs_per_s\": %.0f, \"speedup\": %.3f}%s\n",
                s.bytes, s.rate_off, s.rate_on, s.speedup(),
                i + 1 < series.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"min_small_speedup\": %.3f\n}\n", min_small);
  return 0;
}
