// Ablation: over-subscription factor vs achieved overlap (the Little's-law
// argument of §II). With one block per SM there is no spare parallelism to
// hide communication latency; with 16 blocks per SM (the paper's launch
// configuration) waiting blocks are fully absorbed by runnable ones.
//
// Metric: overlap efficiency = (compute + exchange - full) / min(compute,
// exchange); 1.0 = perfect overlap, 0.0 = fully serialized.

#include "bench/common.h"
#include "dcuda/dcuda.h"

namespace dcuda {
namespace {

struct Times {
  double full, compute, exchange;
};

Times run(int blocks_per_sm, bool compute, bool exchange, int rounds, int units) {
  // Workload per rank is fixed; the rank count scales with the
  // over-subscription factor, and so does the device's total work — this is
  // over-decomposition of the same problem into more, smaller ranks.
  sim::MachineConfig cfg = bench::machine(2);
  const int rpd = cfg.device.num_sms * blocks_per_sm;
  const int total_units = 16 * cfg.device.num_sms * 16;  // constant per device
  const int units_per_rank = std::max(1, total_units / rpd) * units;
  Cluster c({.machine = cfg, .ranks_per_device = rpd});
  std::vector<std::span<std::byte>> dst(static_cast<size_t>(2 * rpd));
  for (int n = 0; n < 2; ++n)
    for (int r = 0; r < rpd; ++r)
      dst[static_cast<size_t>(n * rpd + r)] = c.device(n).alloc<std::byte>(2048);
  const double elapsed = c.run([&](Context& ctx) -> sim::Proc<void> {
    const int g = ctx.world_rank;
    const int size = ctx.world_size;
    Window w = co_await win_create(ctx, kCommWorld, dst[static_cast<size_t>(g)]);
    const bool hl = g > 0, hr = g + 1 < size;
    for (int it = 0; it < rounds; ++it) {
      if (compute) {
        co_await ctx.block->compute_flops(1024.0 * 10.0 * units_per_rank);
      }
      if (exchange) {
        if (hl) co_await put_notify(ctx, w, g - 1, 1024, 1024, dst[static_cast<size_t>(g)].data(), 0);
        if (hr) co_await put_notify(ctx, w, g + 1, 0, 1024, dst[static_cast<size_t>(g)].data(), 0);
        co_await wait_notifications(ctx, w, kAnySource, 0, (hl ? 1 : 0) + (hr ? 1 : 0));
      }
    }
    co_await win_free(ctx, w);
  });
  return Times{sim::to_millis(elapsed), 0, 0};
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  bench::header("Ablation", "over-subscription factor vs overlap (Little's law, paper SII)");
  const int rounds = bench::iterations(30);
  bench::row({"blocks_per_sm", "full_ms", "compute_ms", "exchange_ms", "overlap_efficiency"});
  for (int b : {1, 2, 4, 8, 16}) {
    const double full = run(b, true, true, rounds, 1).full;
    const double comp = run(b, true, false, rounds, 1).full;
    const double exch = run(b, false, true, rounds, 1).full;
    const double eff = (comp + exch - full) / std::min(comp, exch);
    bench::row({bench::fmt(b, "%.0f"), bench::fmt(full), bench::fmt(comp),
                bench::fmt(exch), bench::fmt(eff, "%.2f")});
  }
  return 0;
}
