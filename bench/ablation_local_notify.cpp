// Backend comparison: the paper's host event loop (§III-A) versus the
// device-initiated backend (§III-D outlook; docs/BACKENDS.md). Under
// RuntimeBackend::kHostLoop even device-local notifications loop through
// the host to keep the ordering logic in one place; kDeviceInitiated
// delivers them on the device's notification board and rings a device→NIC
// doorbell for remote puts — the improvement the paper's "Notification
// System" discussion anticipates from hardware support.
//
// Output: the figure table on stdout by default; with --json, a single
// machine-readable record (scripts/bench_perf.sh writes it to
// BENCH_backend.json and gates on "speedup" >= 3x).

#include <cstring>

#include "bench/common.h"
#include "dcuda/dcuda.h"

namespace dcuda {
namespace {

// Half-roundtrip notified-put latency between two ranks: same-device when
// `nodes` is 1 (the latency hardware notification support attacks), across
// the fabric when 2 (doorbell'd puts, board delivery at the target).
double pingpong_latency_us(sim::RuntimeBackend backend, int nodes, int iters) {
  sim::MachineConfig mc = bench::machine(nodes);
  mc.backend = backend;
  const int rpd = nodes == 1 ? 2 : 1;
  auto run = [&](int n) {
    Cluster c({.machine = mc, .ranks_per_device = rpd});
    std::vector<std::span<std::byte>> mem;
    for (int d = 0; d < nodes; ++d) mem.push_back(c.device(d).alloc<std::byte>(256));
    c.run([&, n](Context& ctx) -> sim::Proc<void> {
      Window w = co_await win_create(
          ctx, kCommWorld, mem[static_cast<size_t>(ctx.world_rank / rpd)]);
      for (int i = 0; i < n; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, 1, 0, 0, nullptr, 0);
          co_await wait_notifications(ctx, w, 1, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, 0, 0, 1);
          co_await put_notify(ctx, w, 0, 0, 0, nullptr, 0);
        }
      }
      co_await win_free(ctx, w);
    });
    return c.sim().now();
  };
  const double setup = run(0);
  return sim::to_micros((run(iters) - setup) / (2.0 * iters));
}

}  // namespace
}  // namespace dcuda

int main(int argc, char** argv) {
  using namespace dcuda;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json = true;
  }
  const int iters = bench::iterations(50);
  const double host_local =
      pingpong_latency_us(sim::RuntimeBackend::kHostLoop, 1, iters);
  const double dev_local =
      pingpong_latency_us(sim::RuntimeBackend::kDeviceInitiated, 1, iters);
  const double host_remote =
      pingpong_latency_us(sim::RuntimeBackend::kHostLoop, 2, iters);
  const double dev_remote =
      pingpong_latency_us(sim::RuntimeBackend::kDeviceInitiated, 2, iters);
  const double speedup = host_local / dev_local;

  if (json) {
    std::printf("{\n");
    std::printf("  \"schema\": \"dcuda-bench-backend-v1\",\n");
    std::printf("  \"iters\": %d,\n", iters);
    std::printf("  \"local_latency_us\": {\"host_loop\": %.3f, "
                "\"device_initiated\": %.3f},\n", host_local, dev_local);
    std::printf("  \"remote_latency_us\": {\"host_loop\": %.3f, "
                "\"device_initiated\": %.3f},\n", host_remote, dev_remote);
    std::printf("  \"remote_speedup\": %.3f,\n", host_remote / dev_remote);
    std::printf("  \"speedup\": %.3f\n}\n", speedup);
    return 0;
  }
  bench::header("Ablation",
                "runtime backends: host event loop vs device-initiated");
  bench::row({"backend", "local_halfroundtrip_us", "remote_halfroundtrip_us"});
  bench::row({"host_loop (paper SIII-A)", bench::fmt(host_local, "%.2f"),
              bench::fmt(host_remote, "%.2f")});
  bench::row({"device_initiated (paper SIII-D)", bench::fmt(dev_local, "%.2f"),
              bench::fmt(dev_remote, "%.2f")});
  std::printf("# notified-put speedup from hardware support: %.1fx local, "
              "%.1fx remote\n", speedup, host_remote / dev_remote);
  return 0;
}
