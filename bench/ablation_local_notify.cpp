// Ablation: the paper loops even device-local notifications through the
// host (§III-A) to keep the ordering logic in one place. A device-side
// delivery path (what hardware-supported notifications could provide,
// §III-D) cuts the shared-memory ping-pong latency dramatically — the
// improvement the paper's "Notification System" discussion anticipates.

#include "bench/common.h"
#include "dcuda/dcuda.h"

namespace dcuda {
namespace {

double pingpong_latency_us(bool via_host, int iters) {
  sim::MachineConfig mc = bench::machine(1);
  mc.runtime.local_notifications_via_host = via_host;
  auto run = [&](int n) {
    Cluster c(mc, 2);
    auto mem = c.device(0).alloc<std::byte>(256);
    c.run([&, n](Context& ctx) -> sim::Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld, mem);
      for (int i = 0; i < n; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, 1, 0, 0, nullptr, 0);
          co_await wait_notifications(ctx, w, 1, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, 0, 0, 1);
          co_await put_notify(ctx, w, 0, 0, 0, nullptr, 0);
        }
      }
      co_await win_free(ctx, w);
    });
    return c.sim().now();
  };
  const double setup = run(0);
  return sim::to_micros((run(iters) - setup) / (2.0 * iters));
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  bench::header("Ablation", "device-local notifications: host loop-through vs device-side");
  const int iters = bench::iterations(50);
  const double host = pingpong_latency_us(true, iters);
  const double dev = pingpong_latency_us(false, iters);
  bench::row({"path", "halfroundtrip_latency_us"});
  bench::row({"via_host (paper SIII-A)", bench::fmt(host, "%.2f")});
  bench::row({"device_side (paper SIII-D proposal)", bench::fmt(dev, "%.2f")});
  std::printf("# speedup from hardware notification support: %.1fx\n", host / dev);
  return 0;
}
