// Ablation: vertical layers vs the CUDA-aware staging threshold (paper
// §IV-C, stencil discussion). The MPI-CUDA variant packs each halo into one
// message of k x 1 kB; once that message crosses the 20 kB staging
// threshold, host staging lifts its bandwidth. The dCUDA variant always
// sends k separate 1 kB messages. "Introducing additional vertical layers
// improves the relative performance of the MPI-CUDA variant."

#include "apps/stencil.h"
#include "bench/common.h"

int main() {
  using namespace dcuda;
  bench::header("Ablation", "vertical layers vs staging threshold (paper SIV-C)");
  bench::row({"k_layers", "packed_halo_kb", "dcuda_ms", "mpi_cuda_ms",
              "dcuda_over_mpicuda"});
  for (int k : {8, 16, 32, 64}) {
    apps::stencil::Config cfg;
    cfg.ksize = k;
    cfg.jlocal = 1;  // keep per-device work constant-ish across k
    cfg.iterations = bench::iterations(10);
    const double scale = 100.0 / cfg.iterations;
    double d, m;
    {
      Cluster c({.machine = bench::machine(4)});
      d = sim::to_millis(apps::stencil::run_dcuda(c, cfg).elapsed) * scale;
    }
    {
      Cluster c({.machine = bench::machine(4)});
      m = sim::to_millis(apps::stencil::run_mpi_cuda(c, cfg).elapsed) * scale;
    }
    bench::row({bench::fmt(k, "%.0f"), bench::fmt(k * 1.0, "%.0f"), bench::fmt(d),
                bench::fmt(m), bench::fmt(d / m, "%.2f")});
  }
  return 0;
}
