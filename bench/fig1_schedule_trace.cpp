// Figure 1 (conceptual): block scheduling for MPI-CUDA versus dCUDA,
// rendered as an ASCII Gantt chart from the simulator's tracer. Two
// dual-core devices, two blocks per core, alternating compute and exchange
// phases. MPI-CUDA serializes compute and communication (visible idle gaps
// on every lane); dCUDA interleaves them (lanes stay busy).

#include <iostream>

#include "apps/stencil.h"
#include "bench/common.h"

namespace dcuda {
namespace {

sim::MachineConfig fig1_machine() {
  sim::MachineConfig cfg = bench::machine(2);
  cfg.device.num_sms = 2;            // "dual-core device"
  cfg.device.max_blocks_per_sm = 2;  // two blocks per core
  return cfg;
}

void run_variant(bool use_dcuda) {
  Cluster c({.machine = fig1_machine(), .ranks_per_device = 4});
  c.tracer().enable();
  apps::stencil::Config cfg;
  cfg.isize = 512;
  cfg.jlocal = 8;
  cfg.ksize = 8;
  cfg.iterations = 3;
  if (use_dcuda) {
    apps::stencil::run_dcuda(c, cfg);
  } else {
    apps::stencil::run_mpi_cuda(c, cfg);
  }
  std::printf("\n== %s ==  (c compute, m memory, w wait, . idle)\n",
              use_dcuda ? "dCUDA" : "MPI-CUDA (traditional)");
  c.tracer().render_ascii(std::cout, 100);
  bench::trace_sink().add(use_dcuda ? "dCUDA" : "MPI-CUDA", c.tracer());
}

}  // namespace
}  // namespace dcuda

int main(int argc, char** argv) {
  dcuda::bench::trace_sink().parse_args(argc, argv);
  dcuda::bench::header("Figure 1", "block scheduling for MPI-CUDA and dCUDA");
  dcuda::run_variant(false);
  dcuda::run_variant(true);
  dcuda::bench::trace_sink().finish();
  return 0;
}
