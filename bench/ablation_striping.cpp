// Ablation: multi-rail path striping vs a single NIC rail under congestion
// (net/rail.h, net/topology.h, docs/TOPOLOGY.md).
//
// Scenario: an 8-node two-level fat tree (arity 4, interior links at twice
// the NIC rate — the rail-optimized fabric shape) carrying bulk streams of
// 64 kB messages.
//
//  * pairwise — every node of leaf 0 streams to its counterpart on leaf 1.
//    A single rail leaves each flow injection-bound at the NIC rate while
//    the interior fabric has headroom; striping across 2 rails doubles the
//    injection bandwidth and the ECMP spread keeps the shared uplinks
//    below capacity. This is the gated metric: striping must be >= 1.3x
//    (scripts/bench_perf.sh, BENCH_net.json "striping_speedup").
//  * incast k — k senders converge on one receiver. The receiver's egress
//    link caps the aggregate, so the striping gain degrades from ~2x at
//    k=1 toward 1x once the hot spot saturates: the degradation curve
//    EXPERIMENTS.md tabulates.
//
// Output is a single JSON object on stdout; human-readable rows go to
// stderr. Simulated time is deterministic — one run per cell.

#include <algorithm>
#include <cstdio>
#include <limits>

#include "bench/common.h"
#include "net/fabric.h"
#include "net/topology.h"
#include "sim/simulation.h"

namespace dcuda {
namespace {

constexpr int kNodes = 8;
constexpr double kMsgBytes = 64.0 * 1024.0;

net::TopoConfig rail_fabric(int rails) {
  net::TopoConfig tc;
  tc.kind = net::TopologyKind::kFatTree;
  tc.fat_tree_arity = 4;
  tc.rails = rails;
  // Rail-optimized interior: switch-to-switch links run at twice the NIC
  // rate, so a single rail is injection-bound and striping has headroom.
  tc.link_bandwidth = sim::gbs(12.0);
  return tc;
}

// Makespan of `msgs` 64 kB messages per sender, all injected at t=0.
// senders stream to (sender + 4) in pairwise mode; to node 4 in incast mode.
double makespan(int rails, int senders, bool incast, int msgs) {
  sim::Simulation sim;
  sim::NetConfig nc;
  nc.topo = rail_fabric(rails);
  net::Fabric fabric(sim, kNodes, nc);
  for (int s = 0; s < senders; ++s) {
    sim.schedule(0.0, [&fabric, s, incast, msgs]() {
      for (int i = 0; i < msgs; ++i) {
        net::Packet p;
        p.src = s;
        p.dst = incast ? 4 : s + 4;
        p.bytes = kMsgBytes;
        fabric.send(std::move(p),
                    std::numeric_limits<sim::Rate>::infinity());
      }
    });
  }
  sim.run();
  // Drain the mailboxes so the run's resources die cleanly.
  for (int d = 0; d < kNodes; ++d) {
    for (int ch = 0; ch < net::kNumChannels; ++ch) {
      while (fabric.rx(d, ch).try_pop()) {}
    }
  }
  return sim.now();
}

}  // namespace
}  // namespace dcuda

int main() {
  using namespace dcuda;
  // Steady-state floor: very short streams are dominated by the multi-hop
  // pipeline fill, not by injection bandwidth.
  const int msgs = std::max(32, bench::iterations(64));
  std::fprintf(stderr,
               "# ablation_striping: rail striping vs single rail, fat tree "
               "arity 4, %d x 64 kB msgs/sender\n", msgs);

  const double pair1 = makespan(1, 4, /*incast=*/false, msgs);
  const double pair2 = makespan(2, 4, /*incast=*/false, msgs);
  const double striping_speedup = pair1 / pair2;
  std::fprintf(stderr, "pairwise   1 rail %8.1f us   2 rails %8.1f us   "
               "speedup %.2fx\n", pair1 * 1e6, pair2 * 1e6, striping_speedup);

  struct Cell { int fanin; double t1, t2; };
  Cell curve[] = {{1, 0, 0}, {2, 0, 0}, {4, 0, 0}};
  for (Cell& c : curve) {
    c.t1 = makespan(1, c.fanin, /*incast=*/true, msgs);
    c.t2 = makespan(2, c.fanin, /*incast=*/true, msgs);
    std::fprintf(stderr, "incast %d   1 rail %8.1f us   2 rails %8.1f us   "
                 "speedup %.2fx\n", c.fanin, c.t1 * 1e6, c.t2 * 1e6,
                 c.t1 / c.t2);
  }

  std::printf("{\n");
  std::printf("  \"schema\": \"dcuda-bench-net-v1\",\n");
  std::printf("  \"config\": {\"nodes\": %d, \"topology\": \"fattree\", "
              "\"arity\": 4, \"link_bandwidth_gbs\": 12.0, "
              "\"msg_bytes\": 65536, \"msgs_per_sender\": %d},\n",
              kNodes, msgs);
  std::printf("  \"pairwise\": {\"time_1rail_us\": %.3f, "
              "\"time_2rail_us\": %.3f},\n", pair1 * 1e6, pair2 * 1e6);
  std::printf("  \"incast\": [\n");
  for (size_t i = 0; i < 3; ++i) {
    std::printf("    {\"fanin\": %d, \"time_1rail_us\": %.3f, "
                "\"time_2rail_us\": %.3f, \"speedup\": %.3f}%s\n",
                curve[i].fanin, curve[i].t1 * 1e6, curve[i].t2 * 1e6,
                curve[i].t1 / curve[i].t2, i < 2 ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"striping_speedup\": %.3f\n}\n", striping_speedup);
  return 0;
}
