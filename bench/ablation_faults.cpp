// Ablation: notified-put bandwidth over a lossy fabric as a function of the
// packet drop rate (0 / 0.1% / 1% / 5%), Fig. 6 methodology (distributed
// ping-pong between two nodes). Shows the go-back-N recovery protocol
// degrading gracefully: each rung reports the achieved bandwidth next to
// the recovery effort (retransmissions, timer expiries, suppressed
// duplicates) that bought it. The lossless rung runs the historical
// perfectly-reliable wire path (net/fault.h disabled) and must match fig6.

#include "bench/common.h"
#include "dcuda/dcuda.h"
#include "net/fabric.h"

namespace dcuda {
namespace {

struct LossyPoint {
  double bandwidth_mbs = 0.0;
  net::Fabric::FaultStats stats;
};

// Fig. 6 distributed ping-pong with a fault profile: drop_prob plus a light
// mix of the other classes scaled to it, seeded so every rung replays.
LossyPoint pingpong(std::size_t bytes, int iters, double drop) {
  auto run_once = [&](int iterations, net::Fabric::FaultStats* stats) {
    sim::MachineConfig m = bench::machine(2);
    m.fault.drop_prob = drop;
    m.fault.dup_prob = drop / 2.0;
    m.fault.delay_prob = drop / 2.0;
    Cluster c({.machine = m, .ranks_per_device = 1});
    auto m0 = c.device(0).alloc<std::byte>(bytes + 1);
    auto m1 = c.device(1).alloc<std::byte>(bytes + 1);
    c.run([&, iterations](Context& ctx) -> sim::Proc<void> {
      auto mine = ctx.world_rank == 0 ? m0 : m1;
      const int peer = 1 - ctx.world_rank;
      Window w = co_await win_create(ctx, kCommWorld, mine);
      for (int i = 0; i < iterations; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, peer, 0, bytes, mine.data(), 0);
          co_await wait_notifications(ctx, w, peer, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, peer, 0, 1);
          co_await put_notify(ctx, w, peer, 0, bytes, mine.data(), 0);
        }
      }
      co_await win_free(ctx, w);
    });
    if (stats != nullptr) *stats = c.fabric().fault_stats();
    return c.sim().now();
  };
  LossyPoint r;
  const double setup = run_once(0, nullptr);
  const double total = run_once(iters, &r.stats) - setup;
  r.bandwidth_mbs = static_cast<double>(bytes) / (total / (2.0 * iters)) / sim::kMBs;
  return r;
}

}  // namespace
}  // namespace dcuda

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Ablation: lossy fabric",
                "distributed put-bandwidth vs packet drop rate (go-back-N recovery)");
  const int iters = bench::iterations(50);
  constexpr std::size_t kBytes = 64 * 1024;  // bandwidth-bound fig6 point

  bench::row({"drop_rate", "bandwidth_MB/s", "vs_lossless", "retransmits",
              "timeouts", "dup_suppressed", "acks_lost"});
  double base = 0.0;
  for (double drop : {0.0, 0.001, 0.01, 0.05}) {
    const LossyPoint p = pingpong(kBytes, iters, drop);
    if (drop == 0.0) base = p.bandwidth_mbs;
    bench::row({bench::fmt(drop, "%.3f"), bench::fmt(p.bandwidth_mbs, "%.1f"),
                bench::fmt(base > 0.0 ? p.bandwidth_mbs / base : 1.0, "%.2f"),
                bench::fmt(static_cast<double>(p.stats.retransmits), "%.0f"),
                bench::fmt(static_cast<double>(p.stats.timeouts), "%.0f"),
                bench::fmt(static_cast<double>(p.stats.dup_suppressed), "%.0f"),
                bench::fmt(static_cast<double>(p.stats.acks_lost), "%.0f")});
  }
  bench::trace_sink().finish();
  return 0;
}
