#pragma once

// Shared helpers for the figure-reproduction benchmarks. Every binary
// prints the series the corresponding paper figure plots. Simulated time is
// deterministic, so a single run per configuration replaces the paper's
// median-of-30 methodology (documented in EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "sim/units.h"

namespace dcuda::bench {

// Iteration scale: benches default to fewer main-loop iterations than the
// paper's 100 and report per-100-iteration numbers. DCUDA_BENCH_ITERS=100
// reproduces the full runs.
inline int iterations(int dflt = 20) {
  if (const char* s = std::getenv("DCUDA_BENCH_ITERS")) return std::atoi(s);
  return dflt;
}

inline sim::MachineConfig machine(int nodes) {
  sim::MachineConfig cfg;
  cfg.num_nodes = nodes;
  return cfg;
}

inline void header(const char* fig, const char* title) {
  std::printf("# %s: %s\n", fig, title);
  std::printf("# simulated K80 cluster (13 SMs, 208 blocks in flight, 6 GB/s network)\n");
}

inline void row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? "\t" : "", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

}  // namespace dcuda::bench
