#pragma once

// Shared helpers for the figure-reproduction benchmarks. Every binary
// prints the series the corresponding paper figure plots. Simulated time is
// deterministic, so a single run per configuration replaces the paper's
// median-of-30 methodology (documented in EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "sim/stats.h"
#include "sim/trace_export.h"
#include "sim/units.h"

namespace dcuda::bench {

// Iteration scale: benches default to fewer main-loop iterations than the
// paper's 100 and report per-100-iteration numbers. DCUDA_BENCH_ITERS=100
// reproduces the full runs.
inline int iterations(int dflt = 20) {
  if (const char* s = std::getenv("DCUDA_BENCH_ITERS")) return std::atoi(s);
  return dflt;
}

inline sim::MachineConfig machine(int nodes) {
  sim::MachineConfig cfg;
  cfg.num_nodes = nodes;
  // DCUDA_PERTURB_SEED=<uint64> reruns the benchmark under a seeded schedule
  // perturbation (docs/TESTING.md). check_determinism.sh uses this to verify
  // seed-replay stability; unset or 0 keeps the canonical schedule.
  if (const char* s = std::getenv("DCUDA_PERTURB_SEED")) {
    cfg.perturb_seed = std::strtoull(s, nullptr, 0);
  }
  // DCUDA_FAULT_DROP / _DUP / _CORRUPT / _DELAY / _LINKDOWN=<probability>
  // arm the lossy fabric with go-back-N recovery (net/fault.h). The faulty
  // pass of check_determinism.sh combines DCUDA_FAULT_DROP with
  // DCUDA_PERTURB_SEED to verify a lossy run replays bit-identically.
  auto prob = [](const char* name, double* out) {
    if (const char* s = std::getenv(name)) *out = std::atof(s);
  };
  prob("DCUDA_FAULT_DROP", &cfg.fault.drop_prob);
  prob("DCUDA_FAULT_DUP", &cfg.fault.dup_prob);
  prob("DCUDA_FAULT_CORRUPT", &cfg.fault.corrupt_prob);
  prob("DCUDA_FAULT_DELAY", &cfg.fault.delay_prob);
  prob("DCUDA_FAULT_LINKDOWN", &cfg.fault.link_down_prob);
  // DCUDA_SHARDS=<n> / DCUDA_THREADS=<n> configure the parallel event
  // engine (docs/PERF.md, "Parallel engine"): executor-group count (0 =
  // auto, one group per node shard) and worker-thread count. Results are
  // byte-identical for every setting — only wall-clock time changes —
  // which check_determinism.sh verifies.
  if (const char* s = std::getenv("DCUDA_SHARDS")) {
    cfg.shards = std::atoi(s);
  }
  if (const char* s = std::getenv("DCUDA_THREADS")) {
    cfg.threads = std::atoi(s);
  }
  // DCUDA_TOPOLOGY=flat|fattree|torus selects the interconnect topology and
  // DCUDA_RAILS=<n> the NIC rail count (net/topology.h, docs/TOPOLOGY.md).
  // Unset keeps the flat single-rail default — the historical per-pair pipe
  // with its byte-identical event schedule. DCUDA_ROUTE=ecmp|adaptive picks
  // the route-selection mode on multi-path topologies (default ecmp). The
  // topology pass of check_determinism.sh combines DCUDA_TOPOLOGY=fattree
  // DCUDA_RAILS=2 with the engine knobs to verify executor invariance on
  // multi-hop routes.
  if (const char* s = std::getenv("DCUDA_TOPOLOGY")) {
    const std::string v = s;
    if (v == "fattree" || v == "fat_tree" || v == "fat-tree") {
      cfg.net.topo.kind = net::TopologyKind::kFatTree;
    } else if (v == "torus" || v == "torus3d") {
      cfg.net.topo.kind = net::TopologyKind::kTorus3D;
    } else if (v == "flat" || v.empty()) {
      cfg.net.topo.kind = net::TopologyKind::kFlat;
    } else {
      std::fprintf(stderr, "error: unknown DCUDA_TOPOLOGY '%s' "
                   "(use flat, fattree, or torus)\n", s);
      std::exit(2);
    }
  }
  if (const char* s = std::getenv("DCUDA_RAILS")) {
    cfg.net.topo.rails = std::atoi(s);
    if (cfg.net.topo.rails < 1) {
      std::fprintf(stderr, "error: DCUDA_RAILS must be >= 1\n");
      std::exit(2);
    }
  }
  if (const char* s = std::getenv("DCUDA_ROUTE")) {
    const std::string v = s;
    if (v == "adaptive") {
      cfg.net.topo.route = net::RouteMode::kAdaptive;
    } else if (v == "ecmp" || v.empty()) {
      cfg.net.topo.route = net::RouteMode::kEcmp;
    } else {
      std::fprintf(stderr, "error: unknown DCUDA_ROUTE '%s' "
                   "(use ecmp or adaptive)\n", s);
      std::exit(2);
    }
  }
  // DCUDA_BACKEND=host|device selects the runtime backend (docs/BACKENDS.md)
  // for every benchmark: host (default, also host_loop/0) is the paper's
  // host event loop; device (also device_initiated/1) is the GPU/NIC-
  // initiated backend. docs/FIGURES.md lists the dual-mode run lines.
  if (const char* s = std::getenv("DCUDA_BACKEND")) {
    const std::string v = s;
    if (v == "device" || v == "device_initiated" || v == "1") {
      cfg.backend = sim::RuntimeBackend::kDeviceInitiated;
    } else if (v == "host" || v == "host_loop" || v == "0" || v.empty()) {
      cfg.backend = sim::RuntimeBackend::kHostLoop;
    } else {
      std::fprintf(stderr, "error: unknown DCUDA_BACKEND '%s' "
                   "(use host or device)\n", s);
      std::exit(2);
    }
  }
  return cfg;
}

inline void header(const char* fig, const char* title) {
  std::printf("# %s: %s\n", fig, title);
  std::printf("# simulated K80 cluster (13 SMs, 208 blocks in flight, 6 GB/s network)\n");
}

inline void row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? "\t" : "", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

// Formats a distribution as p50/p90/p99/max cells. Takes a sorted-once
// sim::Summary so repeated percentile queries don't re-sort the samples.
inline std::vector<std::string> pct_cells(const sim::Summary& s,
                                          const char* f = "%.3f") {
  return {fmt(s.percentile(0.50), f), fmt(s.percentile(0.90), f),
          fmt(s.percentile(0.99), f), fmt(s.max(), f)};
}

// -- Trace export (--trace / --summary) --------------------------------
//
// Every fig* benchmark accepts
//   --trace out.json   write a Chrome trace_event file (Perfetto-loadable)
//   --summary          print a per-variant metric table (overlap %, wait
//                      histogram, counters) after the figure's series
// Benchmarks register one tracer snapshot per variant via trace_add(); the
// exporter gives each variant its own process group in the trace so e.g.
// MPI-CUDA and dCUDA lanes sit side by side (docs/OBSERVABILITY.md).
class TraceSink {
 public:
  // Consumes --trace FILE and --summary; leaves other args untouched.
  void parse_args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--trace" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (a == "--summary") {
        summary_ = true;
      }
    }
  }

  // True when a benchmark should run with tracing enabled.
  bool enabled() const { return !path_.empty() || summary_; }

  // Snapshot a variant's tracer (copied: the Cluster that owns it usually
  // dies before export).
  void add(std::string label, const sim::Tracer& t) {
    snaps_.emplace_back(std::move(label), t);
  }

  // Writes the merged Chrome trace and/or prints the metric tables.
  void finish() {
    if (!enabled() || snaps_.empty()) return;
    if (summary_) {
      for (const auto& [label, tracer] : snaps_) {
        std::printf("\n");
        sim::write_summary(std::cout, tracer, label);
      }
    }
    if (!path_.empty()) {
      std::vector<sim::TracerGroup> groups;
      groups.reserve(snaps_.size());
      for (const auto& [label, tracer] : snaps_) {
        groups.push_back(sim::TracerGroup{&tracer, label});
      }
      if (sim::export_chrome_file(path_, groups)) {
        std::fprintf(stderr, "wrote %s (load at https://ui.perfetto.dev)\n",
                     path_.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      }
    }
  }

 private:
  std::string path_;
  bool summary_ = false;
  std::vector<std::pair<std::string, sim::Tracer>> snaps_;
};

inline TraceSink& trace_sink() {
  static TraceSink sink;
  return sink;
}

}  // namespace dcuda::bench
