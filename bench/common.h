#pragma once

// Shared helpers for the figure-reproduction benchmarks. Every binary
// prints the series the corresponding paper figure plots. Simulated time is
// deterministic, so a single run per configuration replaces the paper's
// median-of-30 methodology (documented in EXPERIMENTS.md).

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "sim/env_config.h"
#include "sim/stats.h"
#include "sim/trace_export.h"
#include "sim/units.h"

namespace dcuda::bench {

// Iteration scale: benches default to fewer main-loop iterations than the
// paper's 100 and report per-100-iteration numbers. DCUDA_BENCH_ITERS=100
// reproduces the full runs.
inline int iterations(int dflt = 20) {
  return sim::env_int("DCUDA_BENCH_ITERS", dflt);
}

// Benchmark machine: the DCUDA_* knobs (perturbation seed, fault ladder,
// executor shards/threads, topology/rails/route, runtime backend) all come
// from sim::apply_env — the single DCUDA_* parser (src/sim/env_config.cc).
// Any invalid value hard-exits with the valid-values list, so a benchmark
// can never run with a partially-applied config.
inline sim::MachineConfig machine(int nodes) {
  sim::MachineConfig cfg;
  cfg.num_nodes = nodes;
  sim::apply_env(cfg);
  return cfg;
}

inline void header(const char* fig, const char* title) {
  std::printf("# %s: %s\n", fig, title);
  std::printf("# simulated K80 cluster (13 SMs, 208 blocks in flight, 6 GB/s network)\n");
}

inline void row(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? "\t" : "", cells[i].c_str());
  }
  std::printf("\n");
}

inline std::string fmt(double v, const char* f = "%.3f") {
  char buf[64];
  std::snprintf(buf, sizeof(buf), f, v);
  return buf;
}

// Formats a distribution as p50/p90/p99/max cells. Takes a sorted-once
// sim::Summary so repeated percentile queries don't re-sort the samples.
inline std::vector<std::string> pct_cells(const sim::Summary& s,
                                          const char* f = "%.3f") {
  return {fmt(s.percentile(0.50), f), fmt(s.percentile(0.90), f),
          fmt(s.percentile(0.99), f), fmt(s.max(), f)};
}

// -- Trace export (--trace / --summary) --------------------------------
//
// Every fig* benchmark accepts
//   --trace out.json   write a Chrome trace_event file (Perfetto-loadable)
//   --summary          print a per-variant metric table (overlap %, wait
//                      histogram, counters) after the figure's series
// Benchmarks register one tracer snapshot per variant via trace_add(); the
// exporter gives each variant its own process group in the trace so e.g.
// MPI-CUDA and dCUDA lanes sit side by side (docs/OBSERVABILITY.md).
class TraceSink {
 public:
  // Consumes --trace FILE and --summary; leaves other args untouched.
  void parse_args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--trace" && i + 1 < argc) {
        path_ = argv[++i];
      } else if (a == "--summary") {
        summary_ = true;
      }
    }
  }

  // True when a benchmark should run with tracing enabled.
  bool enabled() const { return !path_.empty() || summary_; }

  // Snapshot a variant's tracer (copied: the Cluster that owns it usually
  // dies before export).
  void add(std::string label, const sim::Tracer& t) {
    snaps_.emplace_back(std::move(label), t);
  }

  // Writes the merged Chrome trace and/or prints the metric tables.
  void finish() {
    if (!enabled() || snaps_.empty()) return;
    if (summary_) {
      for (const auto& [label, tracer] : snaps_) {
        std::printf("\n");
        sim::write_summary(std::cout, tracer, label);
      }
    }
    if (!path_.empty()) {
      std::vector<sim::TracerGroup> groups;
      groups.reserve(snaps_.size());
      for (const auto& [label, tracer] : snaps_) {
        groups.push_back(sim::TracerGroup{&tracer, label});
      }
      if (sim::export_chrome_file(path_, groups)) {
        std::fprintf(stderr, "wrote %s (load at https://ui.perfetto.dev)\n",
                     path_.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", path_.c_str());
      }
    }
  }

 private:
  std::string path_;
  bool summary_ = false;
  std::vector<std::pair<std::string, sim::Tracer>> snaps_;
};

inline TraceSink& trace_sink() {
  static TraceSink sink;
  return sink;
}

}  // namespace dcuda::bench
