// Figure 9: weak scaling of the particle simulation (constant cells and
// particles per node; reduced cutoff interactions -> memory bound). Series:
// dCUDA, MPI-CUDA, and the halo-exchange time measured by the MPI-CUDA
// variant (runtime switch: exchange only).
//
// Paper shape: both variants similar up to ~3 nodes; beyond that MPI-CUDA's
// scaling cost tracks the halo-exchange time while dCUDA hides part of it
// (not all — the simulation develops load imbalance).

#include "apps/particles.h"
#include "bench/common.h"

int main(int argc, char** argv) {
  using namespace dcuda;
  bench::trace_sink().parse_args(argc, argv);
  bench::header("Figure 9", "weak scaling of the particle simulation");
  apps::particles::Config cfg;
  cfg.iterations = bench::iterations(20);
  // The paper reduces the cutoff below the cell width so that few particles
  // interact and the simulation becomes memory-bound / communication
  // sensitive (§IV-C).
  cfg.cutoff = 0.25;
  cfg.particles_per_cell = 60;
  const double scale = 100.0 / cfg.iterations;  // report per-100-iteration ms
  bench::row({"nodes", "dcuda_ms", "mpi_cuda_ms", "halo_exchange_ms"});
  for (int nodes : {1, 2, 3, 4, 6, 8}) {
    // Trace the largest run: overlap (or its absence) is most visible there.
    const bool trace = nodes == 8 && bench::trace_sink().enabled();
    apps::particles::Result d, m, h;
    {
      Cluster c({.machine = bench::machine(nodes), .ranks_per_device = cfg.cells_per_node});
      if (trace) c.tracer().enable();
      d = apps::particles::run_dcuda(c, cfg);
      if (trace) bench::trace_sink().add("dCUDA 8 nodes", c.tracer());
    }
    {
      Cluster c({.machine = bench::machine(nodes), .ranks_per_device = cfg.cells_per_node});
      if (trace) c.tracer().enable();
      m = apps::particles::run_mpi_cuda(c, cfg);
      if (trace) bench::trace_sink().add("MPI-CUDA 8 nodes", c.tracer());
    }
    {
      apps::particles::Config hx = cfg;
      hx.compute = false;
      Cluster c({.machine = bench::machine(nodes), .ranks_per_device = cfg.cells_per_node});
      h = apps::particles::run_mpi_cuda(c, hx);
    }
    bench::row({bench::fmt(nodes, "%.0f"), bench::fmt(sim::to_millis(d.elapsed) * scale),
                bench::fmt(sim::to_millis(m.elapsed) * scale),
                bench::fmt(sim::to_millis(h.elapsed) * scale)});
  }
  bench::trace_sink().finish();
  return 0;
}
