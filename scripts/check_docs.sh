#!/usr/bin/env bash
# Docs/benchmark consistency check: every figure and ablation benchmark in
# bench/ must have a "bench/<name>" entry in docs/FIGURES.md. Runs as a
# tier-1 test (see tests/CMakeLists.txt); run manually from the repo root:
#   scripts/check_docs.sh [repo-root]
set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
FIGURES="$ROOT/docs/FIGURES.md"

if [ ! -f "$FIGURES" ]; then
  echo "FAIL: $FIGURES does not exist" >&2
  exit 1
fi

missing=0
for src in "$ROOT"/bench/fig*.cpp "$ROOT"/bench/ablation_*.cpp \
           "$ROOT"/bench/micro_*.cpp; do
  [ -f "$src" ] || continue
  name="$(basename "$src" .cpp)"
  if ! grep -q "bench/$name" "$FIGURES"; then
    echo "FAIL: bench/$name has no entry in docs/FIGURES.md" >&2
    missing=$((missing + 1))
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "docs check failed: $missing undocumented benchmark(s)" >&2
  echo "add the missing stories to docs/FIGURES.md" >&2
  exit 1
fi

echo "docs check passed: every benchmark is documented in docs/FIGURES.md"
