#!/usr/bin/env bash
# Docs consistency checks (tier-1, see tests/CMakeLists.txt):
#  1. every figure/ablation/micro benchmark in bench/ has a "bench/<name>"
#     entry in docs/FIGURES.md;
#  2. every sim::MachineConfig field (src/sim/config.h) is documented in
#     docs/API.md;
#  3. every DCUDA_* environment variable referenced by sources or scripts
#     is documented somewhere under docs/ (or README/EXPERIMENTS/ROADMAP).
# Run manually from the repo root: scripts/check_docs.sh [repo-root]
set -euo pipefail

ROOT="${1:-$(cd "$(dirname "$0")/.." && pwd)}"
FIGURES="$ROOT/docs/FIGURES.md"
API="$ROOT/docs/API.md"
CONFIG="$ROOT/src/sim/config.h"

if [ ! -f "$FIGURES" ]; then
  echo "FAIL: $FIGURES does not exist" >&2
  exit 1
fi

missing=0
for src in "$ROOT"/bench/fig*.cpp "$ROOT"/bench/ablation_*.cpp \
           "$ROOT"/bench/micro_*.cpp; do
  [ -f "$src" ] || continue
  name="$(basename "$src" .cpp)"
  if ! grep -q "bench/$name" "$FIGURES"; then
    echo "FAIL: bench/$name has no entry in docs/FIGURES.md" >&2
    missing=$((missing + 1))
  fi
done

# -- MachineConfig field coverage (config/docs drift) ----------------------
# Field names are the identifiers of member declarations inside
# `struct MachineConfig { ... };` (comments and member functions excluded).
if [ ! -f "$API" ] || [ ! -f "$CONFIG" ]; then
  echo "FAIL: docs/API.md or src/sim/config.h missing" >&2
  exit 1
fi
fields="$(awk '/^struct MachineConfig \{/,/^\};/' "$CONFIG" \
  | sed 's://.*::' \
  | grep -E '^[[:space:]]+[A-Za-z_][A-Za-z0-9_:<>]*[[:space:]]+[a-z_][a-z0-9_]*([[:space:]]*=.*)?;' \
  | sed -E 's/.*[[:space:]]([a-z_][a-z0-9_]*)([[:space:]]*=.*)?;.*/\1/' \
  | grep -vE '^return$' | sort -u)"
if [ -z "$fields" ]; then
  echo "FAIL: could not parse MachineConfig fields from $CONFIG" >&2
  exit 1
fi
for f in $fields; do
  if ! grep -qw "$f" "$API"; then
    echo "FAIL: MachineConfig field '$f' is not documented in docs/API.md" >&2
    missing=$((missing + 1))
  fi
done

# -- DCUDA_* environment variable coverage ---------------------------------
# Sources reference env vars as string literals ("DCUDA_FAULT_DROP"),
# scripts by name; each must be documented in the markdown set below.
env_vars="$( (grep -rhoE '"DCUDA_[A-Z0-9_]+"' \
                "$ROOT/src" "$ROOT/tests" "$ROOT/bench" 2>/dev/null \
                | tr -d '"';
              grep -rhoE 'DCUDA_[A-Z0-9_]+' "$ROOT/scripts" 2>/dev/null) \
             | sort -u)"
doc_files=("$ROOT"/docs/*.md "$ROOT/README.md" "$ROOT/EXPERIMENTS.md" \
           "$ROOT/ROADMAP.md")
for v in $env_vars; do
  if ! grep -qw "$v" "${doc_files[@]}" 2>/dev/null; then
    echo "FAIL: env var '$v' is not documented (docs/, README, EXPERIMENTS)" >&2
    missing=$((missing + 1))
  fi
done

if [ "$missing" -ne 0 ]; then
  echo "docs check failed: $missing undocumented item(s)" >&2
  echo "update docs/FIGURES.md, docs/API.md, or the env-var docs" >&2
  exit 1
fi

echo "docs check passed: benchmarks, MachineConfig fields, and DCUDA_* env vars are documented"
