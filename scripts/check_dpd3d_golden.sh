#!/usr/bin/env bash
# Golden-file regression gate for the dpd3d skewed-density schedule: the
# one-line fingerprint of bench/fig_dpd3d --fingerprint (bitwise physics
# checksum, halo totals, rebalance ticket count and the virtual elapsed
# time) must be byte-identical to tests/golden/dpd3d_skew.golden under the
# default (unperturbed) schedule. Regenerate with
#
#   env -u DCUDA_PERTURB_SEED -u DCUDA_BENCH_ITERS -u DCUDA_DPD3D_PPC \
#     build/bench/fig_dpd3d --fingerprint > tests/golden/dpd3d_skew.golden
#
# only when the schedule change is intentional (docs/TESTING.md).
#
# Usage: scripts/check_dpd3d_golden.sh [build-dir] [golden-file]
set -euo pipefail

BUILD="${1:-build}"
GOLDEN="${2:-tests/golden/dpd3d_skew.golden}"
BIN="$BUILD/bench/fig_dpd3d"

[ -x "$BIN" ] || { echo "error: $BIN not built" >&2; exit 1; }
[ -f "$GOLDEN" ] || { echo "error: $GOLDEN missing" >&2; exit 1; }

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The golden run is the canonical schedule: keep perturbation and scale
# environment out of it.
env -u DCUDA_PERTURB_SEED -u DCUDA_BENCH_ITERS -u DCUDA_DPD3D_PPC \
    "$BIN" --fingerprint > "$tmp"

if cmp -s "$tmp" "$GOLDEN"; then
  echo "OK   dpd3d skew fingerprint matches $GOLDEN"
else
  echo "FAIL dpd3d skew fingerprint drifted from $GOLDEN" >&2
  diff "$GOLDEN" "$tmp" >&2 || true
  exit 1
fi
