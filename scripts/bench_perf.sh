#!/usr/bin/env bash
# Wall-clock perf harness for the simulation engine (docs/PERF.md).
#
# Runs bench/micro_engine (engine events/sec, real time) and wall-clocks
# every fig* figure bench, then writes the combined record to a JSON file.
# Pass a previous run's JSON as BASELINE to embed it under "baseline" —
# that is how BENCH_engine.json carries before/after engine numbers.
#
# Also runs bench/micro_comm (simulated-time message rate of the eager/
# aggregated notified-put fast path, on vs off) and writes its record next
# to the engine one as BENCH_comm.json, failing if the small-message
# speedup drops below the 1.5x acceptance bar (docs/PERF.md).
#
# Runs bench/ablation_striping (rail striping vs a single NIC rail on a
# congested fat tree, docs/TOPOLOGY.md) and writes BENCH_net.json, failing
# if the pairwise striping speedup drops below 1.3x.
#
# And runs bench/ablation_local_notify --json (notified-put ping-pong
# latency, host-loop vs device-initiated backend, docs/BACKENDS.md) and
# writes BENCH_backend.json, failing if the device-initiated backend's
# local notified-put latency improvement drops below 3x.
#
# The parallel-engine lane (docs/PERF.md, "Parallel engine") runs the
# sharded micro_engine scenarios and the fig10 figure bench twice — with
# one worker thread and with DCUDA_BENCH_THREADS workers — and records the
# wall-clock speedup under "parallel". The >= 2x speedup acceptance bar is
# enforced only when the machine has at least 4 cores; on smaller hosts the
# record says so and the gate is skipped (a 1-core container cannot exhibit
# parallel speedup, only protocol overhead).
#
# Usage: scripts/bench_perf.sh [build-dir] [out.json] [baseline.json]
#   build-dir     defaults to ./build
#   out.json      defaults to ./BENCH_engine.json (comm record goes to
#                 the same directory as out.json, named BENCH_comm.json)
#   baseline.json optional previous record to embed for comparison
# Env:
#   DCUDA_BENCH_ITERS    fig-bench main-loop iterations (default 10)
#   DCUDA_MICRO_SCALE    micro_engine repetition multiplier (default 1)
#   DCUDA_BENCH_THREADS  parallel-lane worker count (default min(nproc, 8))
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_engine.json}"
BASELINE="${3:-}"
export DCUDA_BENCH_ITERS="${DCUDA_BENCH_ITERS:-10}"

command -v jq > /dev/null || { echo "error: jq required" >&2; exit 1; }
[ -x "$BUILD/bench/micro_engine" ] || {
  echo "error: $BUILD/bench/micro_engine not built" >&2
  exit 1
}

echo "== micro_engine (wall clock, 1 worker thread) ==" >&2
micro_json="$(DCUDA_THREADS=1 "$BUILD/bench/micro_engine")"

fig_json="{}"
for b in "$BUILD"/bench/fig*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name (iters=$DCUDA_BENCH_ITERS) ==" >&2
  t0="$(date +%s.%N)"
  "$b" > /dev/null
  t1="$(date +%s.%N)"
  sec="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')"
  echo "   $sec s" >&2
  fig_json="$(jq --arg n "$name" --argjson s "$sec" '. + {($n): $s}' <<< "$fig_json")"
done

# -- Parallel-engine lane (docs/PERF.md, "Parallel engine") ---------------
CORES="$(nproc 2> /dev/null || echo 1)"
PAR="${DCUDA_BENCH_THREADS:-$(( CORES < 8 ? CORES : 8 ))}"
[ "$PAR" -ge 2 ] || PAR=2
echo "== micro_engine (wall clock, $PAR worker threads; $CORES cores) ==" >&2
micro_par_json="$(DCUDA_THREADS="$PAR" "$BUILD/bench/micro_engine")"

wall() {  # wall <binary> [env...] — prints elapsed seconds
  local t0 t1
  t0="$(date +%s.%N)"
  "$@" > /dev/null
  t1="$(date +%s.%N)"
  awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }'
}
echo "== fig10_stencil_scaling wall clock, 1 vs $PAR threads ==" >&2
fig10_serial="$(wall env DCUDA_THREADS=1 "$BUILD/bench/fig10_stencil_scaling")"
fig10_par="$(wall env DCUDA_THREADS="$PAR" "$BUILD/bench/fig10_stencil_scaling")"
echo "   serial ${fig10_serial}s  parallel ${fig10_par}s" >&2

parallel_json="$(jq -n \
  --argjson cores "$CORES" --argjson threads "$PAR" \
  --argjson serial "$micro_json" --argjson par "$micro_par_json" \
  --argjson f10s "$fig10_serial" --argjson f10p "$fig10_par" \
  '{cores: $cores, worker_threads: $threads,
    sharded_churn: {serial_events_per_sec: $serial.scenarios.sharded_churn.events_per_sec,
                    parallel_events_per_sec: $par.scenarios.sharded_churn.events_per_sec,
                    speedup: ($par.scenarios.sharded_churn.events_per_sec /
                              $serial.scenarios.sharded_churn.events_per_sec)},
    cross_shard: {serial_events_per_sec: $serial.scenarios.cross_shard.events_per_sec,
                  parallel_events_per_sec: $par.scenarios.cross_shard.events_per_sec,
                  speedup: ($par.scenarios.cross_shard.events_per_sec /
                            $serial.scenarios.cross_shard.events_per_sec)},
    fig10_stencil_scaling: {serial_seconds: $f10s, parallel_seconds: $f10p,
                            speedup: ($f10s / $f10p)}}')"

if [ "$CORES" -ge 4 ]; then
  pspeed="$(jq -r '.sharded_churn.speedup' <<< "$parallel_json")"
  ok="$(awk -v s="$pspeed" 'BEGIN { print (s >= 2.0) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: sharded_churn parallel speedup ${pspeed}x < 2x at $PAR threads" >&2
    exit 1
  fi
  echo "   parallel speedup ${pspeed}x (bar: 2x at >= 4 cores)" >&2
  parallel_json="$(jq '. + {gate: "enforced (>= 2x sharded_churn)"}' <<< "$parallel_json")"
else
  echo "   $CORES core(s): 2x speedup gate skipped (needs >= 4 cores)" >&2
  parallel_json="$(jq '. + {gate: "skipped: fewer than 4 cores"}' <<< "$parallel_json")"
fi

# -- Weak scaling (simulated time, deterministic) -------------------------
# 16 vs 64 nodes at constant per-node work: the simulated per-iteration
# time must stay nearly flat. 2x is a loose bar — the deterministic model
# sits far below it; crossing it means a serialization bug.
weak_json="null"
if [ -x "$BUILD/bench/weak_scaling" ]; then
  echo "== weak_scaling (16 vs 64 nodes, simulated) ==" >&2
  weak_json="$("$BUILD/bench/weak_scaling" --json)"
  flat="$(jq -r '.stencil_flatness_64v16' <<< "$weak_json")"
  ok="$(awk -v f="$flat" 'BEGIN { print (f <= 2.0) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: stencil 64-node weak-scaling blow-up ${flat}x > 2x" >&2
    exit 1
  fi
  echo "   stencil flatness ${flat}x, spmv $(jq -r '.spmv_flatness_64v16' <<< "$weak_json")x (bar: <= 2x)" >&2
fi

record="$(jq -n \
  --argjson iters "$DCUDA_BENCH_ITERS" \
  --argjson micro "$micro_json" \
  --argjson figs "$fig_json" \
  --argjson par "$parallel_json" \
  --argjson weak "$weak_json" \
  '{schema: "dcuda-bench-engine-v2", fig_bench_iters: $iters,
    micro_engine: $micro, fig_bench_seconds: $figs, parallel: $par,
    weak_scaling: $weak}')"

if [ -n "$BASELINE" ] && [ -f "$BASELINE" ]; then
  # Keep only the baseline's own measurements (strip nested baselines).
  record="$(jq --argjson base "$(jq 'del(.baseline, .speedup)' "$BASELINE")" \
    '. + {baseline: $base}' <<< "$record")"
  record="$(jq '. + {speedup: {events_per_sec:
    (.micro_engine.events_per_sec / .baseline.micro_engine.events_per_sec)}}' \
    <<< "$record")"
fi

printf '%s\n' "$record" > "$OUT"
echo "wrote $OUT" >&2

# -- Communication-protocol record (simulated time, deterministic) --------
COMM_OUT="$(dirname "$OUT")/BENCH_comm.json"
if [ -x "$BUILD/bench/micro_comm" ]; then
  echo "== micro_comm (eager/aggregated put fast path) ==" >&2
  comm_json="$("$BUILD/bench/micro_comm")"
  printf '%s\n' "$comm_json" > "$COMM_OUT"
  echo "wrote $COMM_OUT" >&2
  speedup="$(jq -r '.min_small_speedup' <<< "$comm_json")"
  ok="$(awk -v s="$speedup" 'BEGIN { print (s >= 1.5) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: small-message eager speedup $speedup < 1.5x" >&2
    exit 1
  fi
  echo "   small-message speedup ${speedup}x (bar: 1.5x)" >&2
else
  echo "warning: $BUILD/bench/micro_comm not built, skipping BENCH_comm.json" >&2
fi

# -- Topology/rail record (simulated time, deterministic) ------------------
NET_OUT="$(dirname "$OUT")/BENCH_net.json"
if [ -x "$BUILD/bench/ablation_striping" ]; then
  echo "== ablation_striping (rail striping vs single rail, fat tree) ==" >&2
  net_json="$("$BUILD/bench/ablation_striping")"
  printf '%s\n' "$net_json" > "$NET_OUT"
  echo "wrote $NET_OUT" >&2
  nspeed="$(jq -r '.striping_speedup' <<< "$net_json")"
  ok="$(awk -v s="$nspeed" 'BEGIN { print (s >= 1.3) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: rail-striping congestion speedup $nspeed < 1.3x" >&2
    exit 1
  fi
  echo "   striping speedup ${nspeed}x (bar: 1.3x)" >&2
else
  echo "warning: $BUILD/bench/ablation_striping not built, skipping BENCH_net.json" >&2
fi

# -- Runtime-backend record (simulated time, deterministic) ----------------
BACKEND_OUT="$(dirname "$OUT")/BENCH_backend.json"
if [ -x "$BUILD/bench/ablation_local_notify" ]; then
  echo "== ablation_local_notify (host-loop vs device-initiated backend) ==" >&2
  backend_json="$("$BUILD/bench/ablation_local_notify" --json)"
  printf '%s\n' "$backend_json" > "$BACKEND_OUT"
  echo "wrote $BACKEND_OUT" >&2
  bspeed="$(jq -r '.speedup' <<< "$backend_json")"
  ok="$(awk -v s="$bspeed" 'BEGIN { print (s >= 3.0) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: device-initiated notified-put speedup $bspeed < 3x" >&2
    exit 1
  fi
  echo "   notified-put speedup ${bspeed}x (bar: 3x)" >&2
else
  echo "warning: $BUILD/bench/ablation_local_notify not built, skipping BENCH_backend.json" >&2
fi

# -- 3-D DPD overlap record (simulated time, deterministic) ----------------
# bench/fig_dpd3d --json: the skewed-density DPD scenario on 4 nodes, dCUDA
# with work-adoption rebalance vs the plain MPI-CUDA fork-join baseline
# (docs/FIGURES.md "fig_dpd3d"). Gate: the overlapped notified-put variant,
# using its dCUDA-only ticket rebalance to shorten the blob rank's critical
# path, must hold >= 1.2x over the baseline under dynamic load imbalance,
# and the two variants' physics must match bitwise — a speedup bought with
# a wrong answer fails outright.
DPD3D_OUT="$(dirname "$OUT")/BENCH_dpd3d.json"
if [ -x "$BUILD/bench/fig_dpd3d" ]; then
  echo "== fig_dpd3d --json (skewed-density overlap, 4 nodes) ==" >&2
  dpd3d_json="$("$BUILD/bench/fig_dpd3d" --json)"
  printf '%s\n' "$dpd3d_json" > "$DPD3D_OUT"
  echo "wrote $DPD3D_OUT" >&2
  dspeed="$(jq -r '.speedup' <<< "$dpd3d_json")"
  dmatch="$(jq -r '.bitwise_match' <<< "$dpd3d_json")"
  if [ "$dmatch" != "true" ]; then
    echo "FAIL: dpd3d dCUDA and MPI-CUDA results diverged (bitwise_match=$dmatch)" >&2
    exit 1
  fi
  ok="$(awk -v s="$dspeed" 'BEGIN { print (s >= 1.2) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: dpd3d skewed-density dCUDA speedup $dspeed < 1.2x" >&2
    exit 1
  fi
  echo "   dpd3d skewed speedup ${dspeed}x (bar: 1.2x)" >&2
else
  echo "warning: $BUILD/bench/fig_dpd3d not built, skipping BENCH_dpd3d.json" >&2
fi

# -- Gang-scheduler record (simulated time, deterministic) -----------------
# bench/cluster_traffic: a 16-node multi-tenant fabric under a seeded
# open-arrival workload, once per policy (docs/CLUSTER.md). Gate: EASY
# backfill must recover >= 1.15x FIFO's machine utilization — below that
# the backfill pass has stopped sliding narrow jobs into the head's shadow.
CLUSTER_OUT="$(dirname "$OUT")/BENCH_cluster.json"
if [ -x "$BUILD/bench/cluster_traffic" ]; then
  echo "== cluster_traffic (gang-scheduling policies, 16 nodes) ==" >&2
  cluster_json="$("$BUILD/bench/cluster_traffic")"
  printf '%s\n' "$cluster_json" > "$CLUSTER_OUT"
  echo "wrote $CLUSTER_OUT" >&2
  fifo_util="$(jq -r '.policies.fifo.utilization' <<< "$cluster_json")"
  bf_util="$(jq -r '.policies.backfill.utilization' <<< "$cluster_json")"
  ratio="$(awk -v f="$fifo_util" -v b="$bf_util" 'BEGIN { printf "%.3f", b / f }')"
  ok="$(awk -v f="$fifo_util" -v b="$bf_util" 'BEGIN { print (b >= 1.15 * f) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: backfill utilization $bf_util < 1.15x fifo $fifo_util (ratio ${ratio}x)" >&2
    exit 1
  fi
  echo "   backfill/fifo utilization ${ratio}x (bar: 1.15x)" >&2
else
  echo "warning: $BUILD/bench/cluster_traffic not built, skipping BENCH_cluster.json" >&2
fi
