#!/usr/bin/env bash
# Wall-clock perf harness for the simulation engine (docs/PERF.md).
#
# Runs bench/micro_engine (engine events/sec, real time) and wall-clocks
# every fig* figure bench, then writes the combined record to a JSON file.
# Pass a previous run's JSON as BASELINE to embed it under "baseline" —
# that is how BENCH_engine.json carries before/after engine numbers.
#
# Also runs bench/micro_comm (simulated-time message rate of the eager/
# aggregated notified-put fast path, on vs off) and writes its record next
# to the engine one as BENCH_comm.json, failing if the small-message
# speedup drops below the 1.5x acceptance bar (docs/PERF.md).
#
# And runs bench/ablation_local_notify --json (notified-put ping-pong
# latency, host-loop vs device-initiated backend, docs/BACKENDS.md) and
# writes BENCH_backend.json, failing if the device-initiated backend's
# local notified-put latency improvement drops below 3x.
#
# Usage: scripts/bench_perf.sh [build-dir] [out.json] [baseline.json]
#   build-dir     defaults to ./build
#   out.json      defaults to ./BENCH_engine.json (comm record goes to
#                 the same directory as out.json, named BENCH_comm.json)
#   baseline.json optional previous record to embed for comparison
# Env:
#   DCUDA_BENCH_ITERS   fig-bench main-loop iterations (default 10)
#   DCUDA_MICRO_SCALE   micro_engine repetition multiplier (default 1)
set -euo pipefail

BUILD="${1:-build}"
OUT="${2:-BENCH_engine.json}"
BASELINE="${3:-}"
export DCUDA_BENCH_ITERS="${DCUDA_BENCH_ITERS:-10}"

command -v jq > /dev/null || { echo "error: jq required" >&2; exit 1; }
[ -x "$BUILD/bench/micro_engine" ] || {
  echo "error: $BUILD/bench/micro_engine not built" >&2
  exit 1
}

echo "== micro_engine (wall clock) ==" >&2
micro_json="$("$BUILD/bench/micro_engine")"

fig_json="{}"
for b in "$BUILD"/bench/fig*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name (iters=$DCUDA_BENCH_ITERS) ==" >&2
  t0="$(date +%s.%N)"
  "$b" > /dev/null
  t1="$(date +%s.%N)"
  sec="$(awk -v a="$t0" -v b="$t1" 'BEGIN { printf "%.3f", b - a }')"
  echo "   $sec s" >&2
  fig_json="$(jq --arg n "$name" --argjson s "$sec" '. + {($n): $s}' <<< "$fig_json")"
done

record="$(jq -n \
  --argjson iters "$DCUDA_BENCH_ITERS" \
  --argjson micro "$micro_json" \
  --argjson figs "$fig_json" \
  '{schema: "dcuda-bench-engine-v1", fig_bench_iters: $iters,
    micro_engine: $micro, fig_bench_seconds: $figs}')"

if [ -n "$BASELINE" ] && [ -f "$BASELINE" ]; then
  # Keep only the baseline's own measurements (strip nested baselines).
  record="$(jq --argjson base "$(jq 'del(.baseline, .speedup)' "$BASELINE")" \
    '. + {baseline: $base}' <<< "$record")"
  record="$(jq '. + {speedup: {events_per_sec:
    (.micro_engine.events_per_sec / .baseline.micro_engine.events_per_sec)}}' \
    <<< "$record")"
fi

printf '%s\n' "$record" > "$OUT"
echo "wrote $OUT" >&2

# -- Communication-protocol record (simulated time, deterministic) --------
COMM_OUT="$(dirname "$OUT")/BENCH_comm.json"
if [ -x "$BUILD/bench/micro_comm" ]; then
  echo "== micro_comm (eager/aggregated put fast path) ==" >&2
  comm_json="$("$BUILD/bench/micro_comm")"
  printf '%s\n' "$comm_json" > "$COMM_OUT"
  echo "wrote $COMM_OUT" >&2
  speedup="$(jq -r '.min_small_speedup' <<< "$comm_json")"
  ok="$(awk -v s="$speedup" 'BEGIN { print (s >= 1.5) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: small-message eager speedup $speedup < 1.5x" >&2
    exit 1
  fi
  echo "   small-message speedup ${speedup}x (bar: 1.5x)" >&2
else
  echo "warning: $BUILD/bench/micro_comm not built, skipping BENCH_comm.json" >&2
fi

# -- Runtime-backend record (simulated time, deterministic) ----------------
BACKEND_OUT="$(dirname "$OUT")/BENCH_backend.json"
if [ -x "$BUILD/bench/ablation_local_notify" ]; then
  echo "== ablation_local_notify (host-loop vs device-initiated backend) ==" >&2
  backend_json="$("$BUILD/bench/ablation_local_notify" --json)"
  printf '%s\n' "$backend_json" > "$BACKEND_OUT"
  echo "wrote $BACKEND_OUT" >&2
  bspeed="$(jq -r '.speedup' <<< "$backend_json")"
  ok="$(awk -v s="$bspeed" 'BEGIN { print (s >= 3.0) ? 1 : 0 }')"
  if [ "$ok" -ne 1 ]; then
    echo "FAIL: device-initiated notified-put speedup $bspeed < 3x" >&2
    exit 1
  fi
  echo "   notified-put speedup ${bspeed}x (bar: 3x)" >&2
else
  echo "warning: $BUILD/bench/ablation_local_notify not built, skipping BENCH_backend.json" >&2
fi
