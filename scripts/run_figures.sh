#!/usr/bin/env bash
# Regenerates every figure and ablation of EXPERIMENTS.md into results/.
# Usage: scripts/run_figures.sh [build-dir] [iters]
#   build-dir  defaults to ./build
#   iters      main-loop iterations per run (DCUDA_BENCH_ITERS); 100
#              reproduces the paper's full-length runs.
set -euo pipefail

BUILD="${1:-build}"
export DCUDA_BENCH_ITERS="${2:-20}"

mkdir -p results
for b in "$BUILD"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "== $name (iters=$DCUDA_BENCH_ITERS) =="
  "$b" | tee "results/$name.txt"
  echo
done
echo "results written to results/"
