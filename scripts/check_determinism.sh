#!/usr/bin/env bash
# Determinism gate: the engine must produce bit-identical output across runs.
#
# Three properties, all byte-compared on stdout (docs/TESTING.md):
#  1. Default-schedule stability: fig6 (put latency/bandwidth) and fig10
#     (stencil scaling) run twice must match.
#  2. Seed stability: the same benchmarks under a perturbed schedule
#     (DCUDA_PERTURB_SEED) must replay bit-identically — a perturbation is a
#     pure function of its seed, never of hidden state.
#  3. Faulty-seed stability: the same seed with a lossy fabric armed
#     (DCUDA_FAULT_DROP; net/fault.h go-back-N recovery) must also replay
#     bit-identically — fault coins come from the same seeded streams.
#  4. Executor invariance (docs/PERF.md, "Parallel engine"): the sharded
#     engine run with DCUDA_SHARDS=4 executor groups and DCUDA_THREADS=2
#     worker threads must be byte-identical to the serial run — for the
#     clean, perturbed, and faulty schedules alike. The window protocol's
#     ordering is a function of the logical schedule only, never of the
#     executor layout.
#  5. Cluster pass (docs/CLUSTER.md): the gang scheduler's lifecycle
#     transcript (bench/cluster_traffic --transcript, all three policies on
#     one multi-tenant fabric) must be bit-identical across runs and under
#     the 4-group/2-thread executor — job placement, backfill decisions and
#     completion order are functions of the logical schedule only.
#  6. dpd3d pass (docs/TESTING.md): the skewed-density DPD schedule
#     fingerprint (bench/fig_dpd3d --fingerprint: bitwise physics checksum,
#     halo totals, rebalance tickets, virtual elapsed time) must be stable
#     across runs and byte-identical between the serial and the
#     4-group/2-thread executors — for the clean schedule, a perturbed
#     schedule, and with the eager/aggregation protocol switched on
#     (--eager), which reroutes every small halo/ticket put through the
#     batching path without being allowed to change any result.
#  7. Topology pass (docs/TOPOLOGY.md): the same benchmarks on a fat tree
#     with 2 NIC rails (DCUDA_TOPOLOGY=fattree DCUDA_RAILS=2) must be
#     stable across runs AND byte-identical between the serial and the
#     4-group/2-thread executors — multi-hop routes shrink the engine's
#     lookahead to the per-hop latency and the rail mux resequences at the
#     receiver, neither of which may depend on the executor layout.
#
# Wired into ctest as `determinism_fig_benches`.
#
# Usage: scripts/check_determinism.sh [build-dir]
# Env:   DCUDA_BENCH_ITERS   main-loop iterations (default 5, keeps ctest fast)
#        DCUDA_PERTURB_SEED  seed for the perturbed pass (default 3735928559)
#        DCUDA_FAULT_DROP    drop rate for the faulty pass (default 0.01)
set -euo pipefail

BUILD="${1:-build}"
export DCUDA_BENCH_ITERS="${DCUDA_BENCH_ITERS:-5}"
PERTURB_SEED="${DCUDA_PERTURB_SEED:-3735928559}"
FAULT_DROP="${DCUDA_FAULT_DROP:-0.01}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

status=0
compare() {  # compare <label> <file1> <file2>
  if cmp -s "$2" "$3"; then
    echo "OK   $1"
  else
    echo "FAIL $1" >&2
    diff "$2" "$3" >&2 || true
    status=1
  fi
}

for name in fig6_put_bandwidth fig10_stencil_scaling; do
  bin="$BUILD/bench/$name"
  [ -x "$bin" ] || { echo "error: $bin not built" >&2; exit 1; }
  "$bin" > "$tmp/$name.run1"
  "$bin" > "$tmp/$name.run2"
  compare "$name: two runs bit-identical" "$tmp/$name.run1" "$tmp/$name.run2"
  DCUDA_PERTURB_SEED="$PERTURB_SEED" "$bin" > "$tmp/$name.seed1"
  DCUDA_PERTURB_SEED="$PERTURB_SEED" "$bin" > "$tmp/$name.seed2"
  compare "$name: perturbed seed $PERTURB_SEED replays bit-identically" \
          "$tmp/$name.seed1" "$tmp/$name.seed2"
  DCUDA_PERTURB_SEED="$PERTURB_SEED" DCUDA_FAULT_DROP="$FAULT_DROP" \
      "$bin" > "$tmp/$name.fault1"
  DCUDA_PERTURB_SEED="$PERTURB_SEED" DCUDA_FAULT_DROP="$FAULT_DROP" \
      "$bin" > "$tmp/$name.fault2"
  compare "$name: faulty seed (drop=$FAULT_DROP) replays bit-identically" \
          "$tmp/$name.fault1" "$tmp/$name.fault2"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 "$bin" > "$tmp/$name.par"
  compare "$name: shards=4 threads=2 matches serial (clean)" \
          "$tmp/$name.run1" "$tmp/$name.par"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 DCUDA_PERTURB_SEED="$PERTURB_SEED" \
      "$bin" > "$tmp/$name.par_seed"
  compare "$name: shards=4 threads=2 matches serial (perturbed)" \
          "$tmp/$name.seed1" "$tmp/$name.par_seed"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 DCUDA_PERTURB_SEED="$PERTURB_SEED" \
      DCUDA_FAULT_DROP="$FAULT_DROP" "$bin" > "$tmp/$name.par_fault"
  compare "$name: shards=4 threads=2 matches serial (faulty)" \
          "$tmp/$name.fault1" "$tmp/$name.par_fault"
  DCUDA_TOPOLOGY=fattree DCUDA_RAILS=2 "$bin" > "$tmp/$name.topo1"
  DCUDA_TOPOLOGY=fattree DCUDA_RAILS=2 "$bin" > "$tmp/$name.topo2"
  compare "$name: fattree+2rails two runs bit-identical" \
          "$tmp/$name.topo1" "$tmp/$name.topo2"
  DCUDA_TOPOLOGY=fattree DCUDA_RAILS=2 DCUDA_SHARDS=4 DCUDA_THREADS=2 \
      "$bin" > "$tmp/$name.topo_par"
  compare "$name: fattree+2rails shards=4 threads=2 matches serial" \
          "$tmp/$name.topo1" "$tmp/$name.topo_par"
done

# -- dpd3d pass (docs/TESTING.md) ------------------------------------------
dbin="$BUILD/bench/fig_dpd3d"
if [ -x "$dbin" ]; then
  "$dbin" --fingerprint > "$tmp/dpd3d.run1"
  "$dbin" --fingerprint > "$tmp/dpd3d.run2"
  compare "fig_dpd3d: skew fingerprint bit-identical across runs" \
          "$tmp/dpd3d.run1" "$tmp/dpd3d.run2"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 "$dbin" --fingerprint > "$tmp/dpd3d.par"
  compare "fig_dpd3d: shards=4 threads=2 matches serial (clean)" \
          "$tmp/dpd3d.run1" "$tmp/dpd3d.par"
  DCUDA_PERTURB_SEED="$PERTURB_SEED" "$dbin" --fingerprint > "$tmp/dpd3d.seed1"
  DCUDA_PERTURB_SEED="$PERTURB_SEED" "$dbin" --fingerprint > "$tmp/dpd3d.seed2"
  compare "fig_dpd3d: perturbed seed $PERTURB_SEED replays bit-identically" \
          "$tmp/dpd3d.seed1" "$tmp/dpd3d.seed2"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 DCUDA_PERTURB_SEED="$PERTURB_SEED" \
      "$dbin" --fingerprint > "$tmp/dpd3d.par_seed"
  compare "fig_dpd3d: shards=4 threads=2 matches serial (perturbed)" \
          "$tmp/dpd3d.seed1" "$tmp/dpd3d.par_seed"
  "$dbin" --fingerprint --eager > "$tmp/dpd3d.eager1"
  "$dbin" --fingerprint --eager > "$tmp/dpd3d.eager2"
  compare "fig_dpd3d: eager-on fingerprint bit-identical across runs" \
          "$tmp/dpd3d.eager1" "$tmp/dpd3d.eager2"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 "$dbin" --fingerprint --eager \
      > "$tmp/dpd3d.eager_par"
  compare "fig_dpd3d: shards=4 threads=2 matches serial (eager on)" \
          "$tmp/dpd3d.eager1" "$tmp/dpd3d.eager_par"
  # The eager path may change the schedule (elapsed time) but never the
  # physics: the checksum field must agree between eager off and on.
  if [ "$(grep -o 'checksum=[^ ]*' "$tmp/dpd3d.run1")" = \
       "$(grep -o 'checksum=[^ ]*' "$tmp/dpd3d.eager1")" ]; then
    echo "OK   fig_dpd3d: eager on/off physics checksum identical"
  else
    echo "FAIL fig_dpd3d: eager protocol changed the physics checksum" >&2
    status=1
  fi
else
  echo "warning: $dbin not built, skipping dpd3d pass" >&2
fi

# -- Cluster pass (docs/CLUSTER.md) ----------------------------------------
cbin="$BUILD/bench/cluster_traffic"
if [ -x "$cbin" ]; then
  "$cbin" --transcript > "$tmp/cluster.run1"
  "$cbin" --transcript > "$tmp/cluster.run2"
  compare "cluster_traffic: transcripts bit-identical across runs" \
          "$tmp/cluster.run1" "$tmp/cluster.run2"
  DCUDA_SHARDS=4 DCUDA_THREADS=2 "$cbin" --transcript > "$tmp/cluster.par"
  compare "cluster_traffic: shards=4 threads=2 matches serial" \
          "$tmp/cluster.run1" "$tmp/cluster.par"
else
  echo "warning: $cbin not built, skipping cluster pass" >&2
fi
exit $status
