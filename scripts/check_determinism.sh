#!/usr/bin/env bash
# Determinism gate: the engine must produce bit-identical output across runs.
# Runs fig6 (put latency/bandwidth) and fig10 (stencil scaling) twice each
# and diffs stdout byte-for-byte. Wired into ctest as `determinism_fig_benches`.
#
# Usage: scripts/check_determinism.sh [build-dir]
# Env:   DCUDA_BENCH_ITERS  main-loop iterations (default 5, keeps ctest fast)
set -euo pipefail

BUILD="${1:-build}"
export DCUDA_BENCH_ITERS="${DCUDA_BENCH_ITERS:-5}"

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

status=0
for name in fig6_put_bandwidth fig10_stencil_scaling; do
  bin="$BUILD/bench/$name"
  [ -x "$bin" ] || { echo "error: $bin not built" >&2; exit 1; }
  "$bin" > "$tmp/$name.run1"
  "$bin" > "$tmp/$name.run2"
  if cmp -s "$tmp/$name.run1" "$tmp/$name.run2"; then
    echo "OK   $name: two runs bit-identical"
  else
    echo "FAIL $name: runs differ" >&2
    diff "$tmp/$name.run1" "$tmp/$name.run2" >&2 || true
    status=1
  fi
done
exit $status
