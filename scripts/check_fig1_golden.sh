#!/usr/bin/env bash
# Golden-file regression gate for the Figure 1 schedule trace: the ASCII
# Gantt chart and the --summary metric tables must be byte-identical to
# tests/golden/fig1_schedule.golden under the default (unperturbed)
# schedule. Any engine change that shifts the canonical event interleaving
# shows up here as a diff; regenerate with
#
#   env -u DCUDA_PERTURB_SEED build/bench/fig1_schedule_trace --summary \
#     > tests/golden/fig1_schedule.golden
#
# only when the schedule change is intentional (docs/TESTING.md).
#
# Usage: scripts/check_fig1_golden.sh [build-dir] [golden-file]
set -euo pipefail

BUILD="${1:-build}"
GOLDEN="${2:-tests/golden/fig1_schedule.golden}"
BIN="$BUILD/bench/fig1_schedule_trace"

[ -x "$BIN" ] || { echo "error: $BIN not built" >&2; exit 1; }
[ -f "$GOLDEN" ] || { echo "error: $GOLDEN missing" >&2; exit 1; }

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

# The golden run is the canonical schedule: make sure no perturbation or
# iteration-scale environment leaks in.
env -u DCUDA_PERTURB_SEED -u DCUDA_BENCH_ITERS "$BIN" --summary > "$tmp"

if cmp -s "$tmp" "$GOLDEN"; then
  echo "OK   fig1 schedule trace matches $GOLDEN"
else
  echo "FAIL fig1 schedule trace drifted from $GOLDEN" >&2
  diff "$GOLDEN" "$tmp" >&2 || true
  exit 1
fi
