// Tests for the SpMV mini-application: numerical agreement with the serial
// reference, tree-collective correctness, and the worst-case overlap
// behaviour the paper reports.

#include <gtest/gtest.h>

#include "apps/spmv.h"

namespace dcuda::apps::spmv {
namespace {

Config tiny_config(int rpd) {
  Config cfg;
  cfg.n_dev = rpd * 8;  // 8 rows per rank
  cfg.density = 0.05;
  cfg.iterations = 2;
  return cfg;
}

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

TEST(SpmvApp, PatchGenerationDeterministic) {
  Config cfg = tiny_config(4);
  CsrPatch a = make_patch(cfg, 1, 2);
  CsrPatch b = make_patch(cfg, 1, 2);
  EXPECT_EQ(a.col, b.col);
  EXPECT_EQ(a.val, b.val);
  CsrPatch c = make_patch(cfg, 2, 1);
  EXPECT_NE(a.val, c.val);
  EXPECT_EQ(a.row_ptr.back(), static_cast<std::int32_t>(a.col.size()));
}

TEST(SpmvApp, DcudaMatchesReferenceSingleNode) {
  Config cfg = tiny_config(4);
  Cluster c({.machine = machine(1), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 1), 1e-9 * std::abs(r.checksum) + 1e-9);
}

TEST(SpmvApp, DcudaMatchesReferenceFourNodes) {
  Config cfg = tiny_config(4);
  Cluster c({.machine = machine(4), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 4), 1e-9 * std::abs(r.checksum) + 1e-9);
}

TEST(SpmvApp, DcudaMatchesReferenceNineNodes) {
  Config cfg = tiny_config(2);
  Cluster c({.machine = machine(9), .ranks_per_device = 2});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 9), 1e-9 * std::abs(r.checksum) + 1e-9);
}

TEST(SpmvApp, MpiCudaMatchesReferenceSingleNode) {
  Config cfg = tiny_config(4);
  Cluster c({.machine = machine(1), .ranks_per_device = 4});
  Result r = run_mpi_cuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 1), 1e-9 * std::abs(r.checksum) + 1e-9);
}

TEST(SpmvApp, MpiCudaMatchesReferenceFourNodes) {
  Config cfg = tiny_config(4);
  Cluster c({.machine = machine(4), .ranks_per_device = 4});
  Result r = run_mpi_cuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 4), 1e-9 * std::abs(r.checksum) + 1e-9);
}

TEST(SpmvApp, MpiCudaMatchesReferenceNineNodes) {
  Config cfg = tiny_config(2);
  Cluster c({.machine = machine(9), .ranks_per_device = 2});
  Result r = run_mpi_cuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 9), 1e-9 * std::abs(r.checksum) + 1e-9);
}

TEST(SpmvApp, VariantsAgree) {
  Config cfg = tiny_config(4);
  Cluster c1({.machine = machine(4), .ranks_per_device = 4});
  Cluster c2({.machine = machine(4), .ranks_per_device = 4});
  Result a = run_dcuda(c1, cfg);
  Result b = run_mpi_cuda(c2, cfg);
  EXPECT_NEAR(a.checksum, b.checksum, 1e-9 * std::abs(a.checksum) + 1e-9);
}

TEST(SpmvApp, TightSynchronizationLimitsOverlap) {
  // The paper's point: with a barrier after every multiply, dCUDA gains
  // little — it should be in the same ballpark as MPI-CUDA (within 2x),
  // not dramatically faster.
  Config cfg = tiny_config(8);
  cfg.iterations = 4;
  Cluster c1({.machine = machine(4), .ranks_per_device = 8});
  Cluster c2({.machine = machine(4), .ranks_per_device = 8});
  const double d = run_dcuda(c1, cfg).elapsed;
  const double m = run_mpi_cuda(c2, cfg).elapsed;
  // At this toy size the per-operation host costs dominate dCUDA; the paper
  // likewise shows dCUDA behind at small node counts. Same ballpark only —
  // the realistic-size comparison is bench/fig11_spmv_scaling.
  EXPECT_LT(d / m, 3.5);
  EXPECT_GT(d / m, 0.5);
}

}  // namespace
}  // namespace dcuda::apps::spmv
