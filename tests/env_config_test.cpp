// Parser battery for the centralized DCUDA_* environment layer
// (src/sim/env_config.cc): valid spellings land in the config, invalid
// values return the documented "invalid NAME='v' (expected ...)" message,
// and unset variables keep defaults. Drives the try_* layer so nothing
// exits; the hard-exit wrappers share the same parse paths.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "sim/env_config.h"

namespace dcuda::sim {
namespace {

// Clears every variable the module reads, and restores the environment on
// scope exit so tests can't leak settings into each other.
class EnvSandbox {
 public:
  EnvSandbox() {
    for (const char* name : kVars) {
      const char* v = std::getenv(name);
      saved_.emplace_back(name,
                          v != nullptr ? std::optional<std::string>(v)
                                       : std::nullopt);
      ::unsetenv(name);
    }
  }
  ~EnvSandbox() {
    for (const auto& [name, value] : saved_) {
      if (value.has_value()) {
        ::setenv(name, value->c_str(), 1);
      } else {
        ::unsetenv(name);
      }
    }
  }
  void set(const char* name, const char* value) { ::setenv(name, value, 1); }

 private:
  static constexpr const char* kVars[] = {
      "DCUDA_PERTURB_SEED", "DCUDA_FAULT_DROP",   "DCUDA_FAULT_DUP",
      "DCUDA_FAULT_CORRUPT", "DCUDA_FAULT_DELAY", "DCUDA_FAULT_LINKDOWN",
      "DCUDA_SHARDS",        "DCUDA_THREADS",     "DCUDA_TOPOLOGY",
      "DCUDA_RAILS",         "DCUDA_ROUTE",       "DCUDA_BACKEND",
      "DCUDA_SCHED",         "DCUDA_JOBS",
  };
  std::vector<std::pair<const char*, std::optional<std::string>>> saved_;
};

TEST(EnvConfig, UnsetKeepsDefaults) {
  EnvSandbox env;
  MachineConfig cfg;
  EXPECT_EQ(try_apply_env(cfg), std::nullopt);
  EXPECT_EQ(cfg.perturb_seed, 0u);
  EXPECT_EQ(cfg.fault.drop_prob, 0.0);
  ClusterEnv ce;
  EXPECT_EQ(try_cluster_env(ce), std::nullopt);
  EXPECT_FALSE(ce.sched_set);
  EXPECT_FALSE(ce.jobs.has_value());
}

TEST(EnvConfig, MachineKnobsParse) {
  EnvSandbox env;
  env.set("DCUDA_PERTURB_SEED", "0x58001");
  env.set("DCUDA_FAULT_DROP", "0.25");
  env.set("DCUDA_SHARDS", "4");
  env.set("DCUDA_THREADS", "2");
  env.set("DCUDA_TOPOLOGY", "fattree");
  env.set("DCUDA_RAILS", "2");
  env.set("DCUDA_ROUTE", "adaptive");
  MachineConfig cfg;
  ASSERT_EQ(try_apply_env(cfg), std::nullopt);
  EXPECT_EQ(cfg.perturb_seed, 0x58001u);
  EXPECT_EQ(cfg.fault.drop_prob, 0.25);
  EXPECT_EQ(cfg.shards, 4);
  EXPECT_EQ(cfg.threads, 2);
  EXPECT_EQ(cfg.net.topo.kind, net::TopologyKind::kFatTree);
  EXPECT_EQ(cfg.net.topo.rails, 2);
  EXPECT_EQ(cfg.net.topo.route, net::RouteMode::kAdaptive);
}

TEST(EnvConfig, InvalidMachineValueReportsExpectedFormat) {
  EnvSandbox env;
  env.set("DCUDA_SHARDS", "many");
  MachineConfig cfg;
  const auto err = try_apply_env(cfg);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "invalid DCUDA_SHARDS='many' (expected an integer >= 0)");
}

TEST(EnvConfig, TrailingJunkAndNegativesAreErrors) {
  EnvSandbox env;
  MachineConfig cfg;
  env.set("DCUDA_THREADS", "2x");
  EXPECT_TRUE(try_apply_env(cfg).has_value());
  env.set("DCUDA_THREADS", "0");
  EXPECT_TRUE(try_apply_env(cfg).has_value());
  env.set("DCUDA_THREADS", "2");
  env.set("DCUDA_PERTURB_SEED", "-1");
  EXPECT_TRUE(try_apply_env(cfg).has_value());
  env.set("DCUDA_PERTURB_SEED", "1");
  env.set("DCUDA_FAULT_DROP", "1.5");
  const auto err = try_apply_env(cfg);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err,
            "invalid DCUDA_FAULT_DROP='1.5' "
            "(expected a probability in [0, 1])");
}

TEST(EnvConfig, InvalidTopologyListsValidValues) {
  EnvSandbox env;
  env.set("DCUDA_TOPOLOGY", "hypercube");
  MachineConfig cfg;
  const auto err = try_apply_env(cfg);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err,
            "invalid DCUDA_TOPOLOGY='hypercube' "
            "(use flat, fattree, or torus)");
}

TEST(EnvConfig, SchedAcceptsEverySpelling) {
  EnvSandbox env;
  const std::pair<const char*, SchedPolicyEnv> cases[] = {
      {"fifo", SchedPolicyEnv::kFifo},
      {"backfill", SchedPolicyEnv::kBackfill},
      {"fairshare", SchedPolicyEnv::kFairShare},
      {"fair_share", SchedPolicyEnv::kFairShare},
      {"fair-share", SchedPolicyEnv::kFairShare},
  };
  for (const auto& [spelling, want] : cases) {
    env.set("DCUDA_SCHED", spelling);
    ClusterEnv ce;
    ASSERT_EQ(try_cluster_env(ce), std::nullopt) << spelling;
    EXPECT_TRUE(ce.sched_set);
    EXPECT_EQ(ce.sched, want) << spelling;
  }
}

TEST(EnvConfig, InvalidSchedListsValidValues) {
  EnvSandbox env;
  env.set("DCUDA_SCHED", "sjf");
  ClusterEnv ce;
  const auto err = try_cluster_env(ce);
  ASSERT_TRUE(err.has_value());
  EXPECT_EQ(*err, "invalid DCUDA_SCHED='sjf' (use fifo, backfill, or fairshare)");
}

TEST(EnvConfig, JobsParsesAndRejectsNonPositive) {
  EnvSandbox env;
  env.set("DCUDA_JOBS", "48");
  ClusterEnv ce;
  ASSERT_EQ(try_cluster_env(ce), std::nullopt);
  EXPECT_EQ(ce.jobs, std::optional<int>(48));
  env.set("DCUDA_JOBS", "0");
  ClusterEnv bad0;
  EXPECT_EQ(try_cluster_env(bad0),
            std::optional<std::string>(
                "invalid DCUDA_JOBS='0' (expected an integer >= 1)"));
  env.set("DCUDA_JOBS", "");
  ClusterEnv bad_empty;
  EXPECT_TRUE(try_cluster_env(bad_empty).has_value());
}

TEST(EnvConfig, TypedAccessorsParseStrictly) {
  EnvSandbox env;
  int iv = 0;
  EXPECT_EQ(try_env_int("DCUDA_JOBS", 7, &iv), std::nullopt);
  EXPECT_EQ(iv, 7);  // unset -> default
  env.set("DCUDA_JOBS", "12");
  EXPECT_EQ(try_env_int("DCUDA_JOBS", 7, &iv), std::nullopt);
  EXPECT_EQ(iv, 12);
  env.set("DCUDA_JOBS", "12.5");
  EXPECT_TRUE(try_env_int("DCUDA_JOBS", 7, &iv).has_value());
  std::uint64_t uv = 0;
  env.set("DCUDA_PERTURB_SEED", "0xdead");
  EXPECT_EQ(try_env_u64("DCUDA_PERTURB_SEED", 0, &uv), std::nullopt);
  EXPECT_EQ(uv, 0xdeadu);
}

}  // namespace
}  // namespace dcuda::sim
