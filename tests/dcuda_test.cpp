// Integration tests for the dCUDA device-side library and host runtime:
// window management, notified put/get over shared and distributed memory,
// notification matching with wildcards, flush, barrier, logging, and the
// latency calibration the paper reports.

#include <gtest/gtest.h>

#include <vector>

#include "cluster/cluster.h"
#include "sim/units.h"

namespace dcuda {
namespace {

using sim::micros;
using sim::Proc;

sim::MachineConfig small_machine(int nodes) {
  sim::MachineConfig cfg;
  cfg.num_nodes = nodes;
  return cfg;
}

// Most tests use few ranks per device to keep them readable.
constexpr int kFewRanks = 4;

TEST(DcudaInit, RankIdentities) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = kFewRanks});
  std::vector<int> world_ranks, device_ranks;
  c.run([&](Context& ctx) -> Proc<void> {
    world_ranks.push_back(comm_rank(ctx, kCommWorld));
    device_ranks.push_back(comm_rank(ctx, kCommDevice));
    EXPECT_EQ(comm_size(ctx, kCommWorld), 8);
    EXPECT_EQ(comm_size(ctx, kCommDevice), kFewRanks);
    co_return;
  });
  EXPECT_EQ(world_ranks.size(), 8u);
  std::sort(world_ranks.begin(), world_ranks.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(world_ranks[static_cast<size_t>(i)], i);
  std::sort(device_ranks.begin(), device_ranks.end());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(device_ranks[static_cast<size_t>(i)], i / 2);
}

TEST(DcudaWindow, CreateAndFreeCollective) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = kFewRanks});
  std::vector<std::span<double>> bufs;
  for (int n = 0; n < 2; ++n) {
    for (int r = 0; r < kFewRanks; ++r) bufs.push_back(c.device(n).alloc<double>(64));
  }
  int created = 0;
  c.run([&](Context& ctx) -> Proc<void> {
    auto& buf = bufs[static_cast<size_t>(ctx.world_rank)];
    Window w = co_await win_create(ctx, kCommWorld, buf);
    EXPECT_TRUE(w.valid());
    EXPECT_GE(w.global_id, 0);
    ++created;
    co_await win_free(ctx, w);
    EXPECT_FALSE(w.valid());
  });
  EXPECT_EQ(created, 8);
}

TEST(DcudaWindow, IdTranslationWithDivergentLocalIds) {
  // Ranks create different numbers of device-communicator windows before a
  // world window, so device-side ids diverge; the block manager's hash map
  // must still translate them to one consistent global id (§III-B).
  Cluster c({.machine = small_machine(2), .ranks_per_device = 2});
  std::vector<std::span<double>> bufs;
  for (int n = 0; n < 2; ++n)
    for (int r = 0; r < 2; ++r) bufs.push_back(c.device(n).alloc<double>(16));
  std::vector<int> global_ids(4, -99);
  c.run([&](Context& ctx) -> Proc<void> {
    auto& buf = bufs[static_cast<size_t>(ctx.world_rank)];
    // Node 0's ranks burn extra device-window ids first (device-communicator
    // collectives involve all ranks of one device, a strict subset of the
    // world — exactly the id-divergence case of §III-B).
    std::vector<Window> extra;
    const int extras = ctx.node->node() == 0 ? 2 : 0;
    for (int i = 0; i < extras; ++i) {
      extra.push_back(co_await win_create(ctx, kCommDevice, buf));
    }
    Window w = co_await win_create(ctx, kCommWorld, buf);
    global_ids[static_cast<size_t>(ctx.world_rank)] = w.global_id;
    // Exercise the translation: neighbor exchange through the window.
    const int peer = ctx.world_rank ^ 1;
    double v = 100.0 + ctx.world_rank;
    co_await put_notify(ctx, w, peer, 0, sizeof(double), &v, 0);
    co_await wait_notifications(ctx, w, kAnySource, 0, 1);
    EXPECT_DOUBLE_EQ(buf[0], 100.0 + peer);
    for (auto& e : extra) co_await win_free(ctx, e);
    co_await win_free(ctx, w);
  });
  for (int r = 1; r < 4; ++r) EXPECT_EQ(global_ids[static_cast<size_t>(r)], global_ids[0]);
}

TEST(DcudaPut, DistributedMemoryMovesData) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 1});
  auto a = c.device(0).alloc<int>(32);
  auto b = c.device(1).alloc<int>(32);
  for (int i = 0; i < 32; ++i) {
    a[static_cast<size_t>(i)] = i;
    b[static_cast<size_t>(i)] = -1;
  }
  c.run([&](Context& ctx) -> Proc<void> {
    auto buf = ctx.world_rank == 0 ? a : b;
    Window w = co_await win_create(ctx, kCommWorld, buf);
    if (ctx.world_rank == 0) {
      co_await put_notify(ctx, w, 1, 0, 32 * sizeof(int), a.data(), 7);
    } else {
      co_await wait_notifications(ctx, w, 0, 7, 1);
      for (int i = 0; i < 32; ++i) EXPECT_EQ(b[static_cast<size_t>(i)], i);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaPut, SharedMemoryRanksSameDevice) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<int>(64);  // two ranks, 32 ints each
  for (auto& x : mem) x = 0;
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<int> mine = mem.subspan(static_cast<size_t>(ctx.world_rank) * 32, 32);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {
      int vals[4] = {9, 8, 7, 6};
      co_await put_notify(ctx, w, 1, 0, sizeof(vals), vals, 1);
    } else {
      co_await wait_notifications(ctx, w, 0, 1, 1);
      EXPECT_EQ(mine[0], 9);
      EXPECT_EQ(mine[3], 6);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaPut, OverlappingWindowsSkipCopy) {
  // Shared-memory ranks register overlapping windows; a put whose source and
  // target addresses coincide moves no data (§III-A) but still notifies.
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<double>(100);
  c.run([&](Context& ctx) -> Proc<void> {
    // Both ranks register the *same* range.
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 0) {
      mem[5] = 42.0;
      co_await put_notify(ctx, w, 1, 5 * sizeof(double), sizeof(double), &mem[5], 3);
    } else {
      co_await wait_notifications(ctx, w, 0, 3, 1);
      EXPECT_DOUBLE_EQ(mem[5], 42.0);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaGet, ReadsRemoteWindow) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 1});
  auto a = c.device(0).alloc<int>(16);
  auto b = c.device(1).alloc<int>(16);
  for (int i = 0; i < 16; ++i) b[static_cast<size_t>(i)] = 1000 + i;
  std::vector<int> landing(16, 0);
  c.run([&](Context& ctx) -> Proc<void> {
    auto buf = ctx.world_rank == 0 ? a : b;
    Window w = co_await win_create(ctx, kCommWorld, buf);
    if (ctx.world_rank == 0) {
      co_await get_notify(ctx, w, 1, 4 * sizeof(int), 8 * sizeof(int), a.data(), 5);
      // get_notify signals the origin when the data arrived.
      co_await wait_notifications(ctx, w, 1, 5, 1);
      for (int i = 0; i < 8; ++i) EXPECT_EQ(a[static_cast<size_t>(i)], 1004 + i);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  (void)landing;
}

TEST(DcudaGet, SharedMemoryGet) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<int>(8);
  for (int i = 0; i < 8; ++i) mem[static_cast<size_t>(i)] = i * 11;
  std::vector<int> out(4, 0);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 1) {
      co_await get_notify(ctx, w, 0, 0, 4 * sizeof(int), out.data(), 2);
      co_await wait_notifications(ctx, w, 0, 2, 1);
      EXPECT_EQ(out[3], 33);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

TEST(DcudaNotifications, TagFiltering) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<int>(8);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 0) {
      int v = 1;
      co_await put_notify(ctx, w, 1, 0, sizeof(int), &v, /*tag=*/10);
      co_await put_notify(ctx, w, 1, 0, sizeof(int), &v, /*tag=*/20);
      co_await put_notify(ctx, w, 1, 0, sizeof(int), &v, /*tag=*/10);
    } else {
      // Wait for tag 20 first: the two tag-10 notifications must be kept.
      co_await wait_notifications(ctx, w, kAnySource, 20, 1);
      co_await wait_notifications(ctx, w, kAnySource, 10, 2);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaNotifications, SourceFiltering) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 3});
  auto mem = c.device(0).alloc<int>(16);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank != 2) {
      int v = ctx.world_rank;
      co_await put_notify(ctx, w, 2, 0, sizeof(int), &v, 0);
    } else {
      // Match specifically rank 1 first, then rank 0.
      co_await wait_notifications(ctx, w, 1, 0, 1);
      co_await wait_notifications(ctx, w, 0, 0, 1);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaNotifications, WindowFiltering) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto m1 = c.device(0).alloc<int>(8);
  auto m2 = c.device(0).alloc<int>(8);
  c.run([&](Context& ctx) -> Proc<void> {
    Window wa = co_await win_create(ctx, kCommWorld, m1);
    Window wb = co_await win_create(ctx, kCommWorld, m2);
    if (ctx.world_rank == 0) {
      int v = 5;
      co_await put_notify(ctx, wa, 1, 0, sizeof(int), &v, 0);
      co_await put_notify(ctx, wb, 1, 0, sizeof(int), &v, 0);
    } else {
      co_await wait_notifications(ctx, wb, kAnySource, 0, 1);  // wb first
      co_await wait_notifications(ctx, wa, kAnySource, 0, 1);
    }
    co_await win_free(ctx, wb);
    co_await win_free(ctx, wa);
  });
}

TEST(DcudaNotifications, WildcardMatchesAnything) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 3});
  auto mem = c.device(0).alloc<int>(16);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank != 0) {
      int v = 1;
      co_await put_notify(ctx, w, 0, 0, sizeof(int), &v, 100 + ctx.world_rank);
    } else {
      co_await wait_notifications(ctx, kAnyWindow, kAnySource, kAnyTag, 2);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaNotifications, TestReturnsZeroWithoutArrivals) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<int>(8);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    const int got = co_await test_notifications(ctx, w.device_id, kAnySource, kAnyTag, 4);
    EXPECT_EQ(got, 0);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

TEST(DcudaNotifications, TestConsumesAvailableMatches) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<int>(8);
  int consumed = -1;
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 0) {
      int v = 2;
      for (int i = 0; i < 3; ++i) co_await put_notify(ctx, w, 1, 0, sizeof(int), &v, 9);
      co_await barrier(ctx, kCommWorld);
    } else {
      co_await barrier(ctx, kCommWorld);  // all three notifications sent
      // Barrier does not guarantee notification delivery; wait for one, then
      // the other two must be testable shortly after.
      co_await wait_notifications(ctx, w, kAnySource, 9, 1);
      int total = 0;
      while (total < 2) total += co_await test_notifications(ctx, w.device_id, 0, 9, 2);
      consumed = total;
    }
    co_await win_free(ctx, w);
  });
  EXPECT_EQ(consumed, 2);
}

TEST(DcudaFlush, WaitsForAllPendingOps) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 1});
  auto a = c.device(0).alloc<int>(1024);
  auto b = c.device(1).alloc<int>(1024);
  for (int i = 0; i < 1024; ++i) a[static_cast<size_t>(i)] = i;
  c.run([&](Context& ctx) -> Proc<void> {
    auto buf = ctx.world_rank == 0 ? a : b;
    Window w = co_await win_create(ctx, kCommWorld, buf);
    if (ctx.world_rank == 0) {
      for (int k = 0; k < 4; ++k) {
        co_await put(ctx, w, 1, static_cast<size_t>(k) * 256 * sizeof(int),
                     256 * sizeof(int), a.data() + k * 256);
      }
      co_await flush(ctx);
      // After flush, all four puts are complete: signal via notified put.
      co_await put_notify(ctx, w, 1, 0, 0, nullptr, 99);
    } else {
      co_await wait_notifications(ctx, w, 0, 99, 1);
      for (int i = 0; i < 1024; ++i) EXPECT_EQ(b[static_cast<size_t>(i)], i);
    }
    co_await win_free(ctx, w);
  });
}

TEST(DcudaBarrier, WorldBarrierSpansNodes) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 2});
  sim::Time max_entry = 0.0;
  std::vector<sim::Time> exits;
  c.run([&](Context& ctx) -> Proc<void> {
    co_await ctx.sim().delay(micros(10.0 * ctx.world_rank));
    max_entry = std::max(max_entry, ctx.sim().now());
    co_await barrier(ctx, kCommWorld);
    exits.push_back(ctx.sim().now());
  });
  ASSERT_EQ(exits.size(), 4u);
  for (auto t : exits) EXPECT_GE(t, max_entry);
}

TEST(DcudaBarrier, DeviceBarrierIsLocal) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 2});
  std::vector<sim::Time> exits(4, -1.0);
  c.run([&](Context& ctx) -> Proc<void> {
    // Node 1 ranks enter much later; node 0's device barrier must not wait
    // for them.
    if (ctx.node->node() == 1) co_await ctx.sim().delay(micros(500));
    co_await barrier(ctx, kCommDevice);
    exits[static_cast<size_t>(ctx.world_rank)] = ctx.sim().now();
  });
  EXPECT_LT(exits[0], micros(400));
  EXPECT_LT(exits[1], micros(400));
  EXPECT_GT(exits[2], micros(400));
}

TEST(DcudaLog, ReachesHostLog) {
  Cluster c({.machine = small_machine(1), .ranks_per_device = 2});
  c.run([&](Context& ctx) -> Proc<void> {
    co_await log(ctx, "iteration", 40 + ctx.world_rank);
  });
  const auto& lines = c.node(0).log_lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("iteration"), std::string::npos);
}

TEST(DcudaCalibration, EmptyPacketLatencies) {
  // The paper measures 7.8us (shared) and 9.2us (distributed) for an empty
  // notified put (§IV-B). The model must land in that regime.
  auto pingpong = [](int nodes, int rpd) {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = rpd});
    auto m0 = c.device(0).alloc<std::byte>(64);
    auto m1 = c.device(nodes - 1).alloc<std::byte>(64);
    const int iters = 50;
    sim::Dur elapsed = c.run([&](Context& ctx) -> Proc<void> {
      auto mine = ctx.world_rank == 0 ? m0 : m1;
      const int peer = ctx.world_size - 1 - ctx.world_rank;
      Window w = co_await win_create(ctx, kCommWorld, mine);
      for (int i = 0; i < iters; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, peer, 0, 0, nullptr, 0);
          co_await wait_notifications(ctx, w, peer, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, peer, 0, 1);
          co_await put_notify(ctx, w, peer, 0, 0, nullptr, 0);
        }
      }
      co_await win_free(ctx, w);
    });
    (void)elapsed;
    return c.sim().now();
  };
  // Subtract setup by running zero iterations? Simpler: time two runs with
  // different iteration counts... here we accept setup noise and check bands.
  const double shared_total = pingpong(1, 2);
  const double distributed_total = pingpong(2, 1);
  const double shared_lat = shared_total / (2.0 * 50);
  const double dist_lat = distributed_total / (2.0 * 50);
  // Generous bands around the paper's 7.8us / 9.2us.
  EXPECT_GT(shared_lat, micros(4));
  EXPECT_LT(shared_lat, micros(12));
  EXPECT_GT(dist_lat, micros(6));
  EXPECT_LT(dist_lat, micros(14));
  EXPECT_GT(dist_lat, shared_lat);
}

TEST(DcudaStencilListing, PaperExampleSemantics) {
  // The Fig. 2 program: 2D 5-point stencil, 1-rank-per-j-slab decomposition,
  // halo exchange via notified puts into neighbor windows, double buffering
  // with window swap. Validated against a serial reference.
  constexpr int jstride = 8;   // i-dimension extent
  constexpr int rows_per_rank = 4;
  constexpr int ranks = 4;     // 2 nodes x 2 ranks
  constexpr int steps = 3;
  const int total_rows = rows_per_rank * ranks;

  // Serial reference on the global grid (with zero boundary).
  auto idx = [&](int i, int j) { return j * jstride + i; };
  std::vector<double> ref_in(static_cast<size_t>(jstride * total_rows));
  for (int j = 0; j < total_rows; ++j)
    for (int i = 0; i < jstride; ++i)
      ref_in[static_cast<size_t>(idx(i, j))] = i + 0.1 * j;
  std::vector<double> ref_out(ref_in.size(), 0.0);
  auto at = [&](std::vector<double>& v, int i, int j) -> double {
    if (i < 0 || i >= jstride || j < 0 || j >= total_rows) return 0.0;
    return v[static_cast<size_t>(idx(i, j))];
  };
  for (int s = 0; s < steps; ++s) {
    for (int j = 0; j < total_rows; ++j)
      for (int i = 0; i < jstride; ++i)
        ref_out[static_cast<size_t>(idx(i, j))] =
            -4.0 * at(ref_in, i, j) + at(ref_in, i + 1, j) + at(ref_in, i - 1, j) +
            at(ref_in, i, j + 1) + at(ref_in, i, j - 1);
    std::swap(ref_in, ref_out);
  }

  Cluster c({.machine = small_machine(2), .ranks_per_device = 2});
  const size_t len = static_cast<size_t>(rows_per_rank * jstride);
  // Per rank: halo row below + domain + halo row above.
  struct RankMem {
    std::span<double> in, out;
  };
  std::vector<RankMem> mem(ranks);
  for (int r = 0; r < ranks; ++r) {
    auto& dev = c.device(r / 2);
    mem[static_cast<size_t>(r)].in = dev.alloc<double>(len + 2 * jstride);
    mem[static_cast<size_t>(r)].out = dev.alloc<double>(len + 2 * jstride);
    for (auto& x : mem[static_cast<size_t>(r)].in) x = 0.0;
    for (auto& x : mem[static_cast<size_t>(r)].out) x = 0.0;
    for (int j = 0; j < rows_per_rank; ++j)
      for (int i = 0; i < jstride; ++i)
        mem[static_cast<size_t>(r)].in[static_cast<size_t>((j + 1) * jstride + i)] =
            i + 0.1 * (r * rows_per_rank + j);
    // Boilerplate halo pre-initialization (the listing exchanges *after*
    // each compute phase, so the first iteration reads pre-filled halos).
    for (int i = 0; i < jstride; ++i) {
      const int below = r * rows_per_rank - 1;
      const int above = (r + 1) * rows_per_rank;
      mem[static_cast<size_t>(r)].in[static_cast<size_t>(i)] =
          below >= 0 ? i + 0.1 * below : 0.0;
      mem[static_cast<size_t>(r)].in[static_cast<size_t>((rows_per_rank + 1) * jstride + i)] =
          above < total_rows ? i + 0.1 * above : 0.0;
    }
  }

  c.run([&](Context& ctx) -> Proc<void> {
    const int rank = comm_rank(ctx, kCommWorld);
    const int size = comm_size(ctx, kCommWorld);
    auto in = mem[static_cast<size_t>(rank)].in;
    auto out = mem[static_cast<size_t>(rank)].out;
    Window win = co_await win_create(ctx, kCommWorld, in);
    Window wout = co_await win_create(ctx, kCommWorld, out);
    const bool lsend = rank - 1 >= 0;
    const bool rsend = rank + 1 < size;
    const int tag = 0;

    for (int s = 0; s < steps; ++s) {
      // Apply the stencil on the rank's rows (i-boundary is zero padded).
      for (int j = 1; j <= rows_per_rank; ++j) {
        for (int i = 0; i < jstride; ++i) {
          const auto get_v = [&](int ii, int jj) -> double {
            if (ii < 0 || ii >= jstride) return 0.0;
            return in[static_cast<size_t>(jj * jstride + ii)];
          };
          out[static_cast<size_t>(j * jstride + i)] =
              -4.0 * get_v(i, j) + get_v(i + 1, j) + get_v(i - 1, j) +
              get_v(i, j + 1) + get_v(i, j - 1);
        }
      }
      co_await ctx.block->compute_flops(9.0 * len);

      if (lsend) {
        co_await put_notify(ctx, wout, rank - 1,
                            (len + jstride) * sizeof(double), jstride * sizeof(double),
                            &out[jstride], tag);
      }
      if (rsend) {
        co_await put_notify(ctx, wout, rank + 1, 0, jstride * sizeof(double),
                            &out[len], tag);
      }
      co_await wait_notifications(ctx, wout, kAnySource, tag,
                                  (lsend ? 1 : 0) + (rsend ? 1 : 0));
      std::swap(in, out);
      std::swap(win, wout);
    }
    co_await win_free(ctx, win);
    co_await win_free(ctx, wout);
  });

  // Compare interior values to the serial reference.
  for (int r = 0; r < ranks; ++r) {
    // After `steps` swaps the result lives in `in` if steps is odd.
    auto result = steps % 2 == 1 ? mem[static_cast<size_t>(r)].out
                                 : mem[static_cast<size_t>(r)].in;
    // NB: swap() above swapped local spans, not the underlying storage; the
    // final data is in the span last written, which is `in` after odd swaps
    // when viewed from outside. Check both and require one to match.
    auto matches = [&](std::span<double> v) {
      for (int j = 0; j < rows_per_rank; ++j)
        for (int i = 0; i < jstride; ++i) {
          const double expect = ref_in[static_cast<size_t>(idx(i, r * rows_per_rank + j))];
          if (std::abs(v[static_cast<size_t>((j + 1) * jstride + i)] - expect) > 1e-9)
            return false;
        }
      return true;
    };
    EXPECT_TRUE(matches(mem[static_cast<size_t>(r)].in) ||
                matches(mem[static_cast<size_t>(r)].out))
        << "rank " << r;
    (void)result;
  }
}

TEST(DcudaExtensions, Put2dMovesRectangle) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 1});
  constexpr int stride = 16;
  auto a = c.device(0).alloc<double>(stride * 8);
  auto b = c.device(1).alloc<double>(stride * 8);
  for (int j = 0; j < 8; ++j)
    for (int i = 0; i < stride; ++i) {
      a[static_cast<size_t>(j * stride + i)] = j * 100.0 + i;
      b[static_cast<size_t>(j * stride + i)] = -1.0;
    }
  c.run([&](Context& ctx) -> Proc<void> {
    auto buf = ctx.world_rank == 0 ? a : b;
    Window w = co_await win_create(ctx, kCommWorld, buf);
    if (ctx.world_rank == 0) {
      // 4x4 sub-block starting at (i=2, j=1) to the same place remotely.
      const size_t origin = (1 * stride + 2) * sizeof(double);
      co_await put_2d_notify(ctx, w, 1, origin, 4 * sizeof(double), 4,
                             stride * sizeof(double), &a[1 * stride + 2],
                             stride * sizeof(double), 0);
    } else {
      co_await wait_notifications(ctx, w, 0, 0, 1);
      co_await flush(ctx);
      for (int j = 1; j < 5; ++j)
        for (int i = 2; i < 6; ++i)
          EXPECT_DOUBLE_EQ(b[static_cast<size_t>(j * stride + i)], j * 100.0 + i);
      // Outside the rectangle untouched.
      EXPECT_DOUBLE_EQ(b[0], -1.0);
      EXPECT_DOUBLE_EQ(b[static_cast<size_t>(6 * stride + 2)], -1.0);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

TEST(DcudaExtensions, PutNotifyAllReachesEveryLocalRank) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 3});
  auto target_mem = c.device(1).alloc<int>(3 * 8);
  auto src_mem = c.device(0).alloc<int>(8);
  for (int i = 0; i < 8; ++i) src_mem[static_cast<size_t>(i)] = 7 * i;
  int notified = 0;
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<int> mine =
        ctx.node->node() == 0
            ? std::span<int>(src_mem)
            : target_mem.subspan(static_cast<size_t>(ctx.device_rank) * 8, 8);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {
      co_await put_notify_all(ctx, w, /*target=*/3, 0, 8 * sizeof(int),
                              src_mem.data(), 4);
    }
    if (ctx.node->node() == 1) {
      co_await wait_notifications(ctx, w, 0, 4, 1);
      ++notified;
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  EXPECT_EQ(notified, 3);
  EXPECT_EQ(target_mem[7], 49);  // rank 3 == local rank 0 got the payload
}

TEST(DcudaExtensions, BcastNotifyDistributesRootBuffer) {
  Cluster c({.machine = small_machine(2), .ranks_per_device = 2});
  std::vector<std::span<double>> bufs;
  for (int n = 0; n < 2; ++n)
    for (int r = 0; r < 2; ++r) bufs.push_back(c.device(n).alloc<double>(32));
  for (auto& b : bufs)
    for (auto& x : b) x = 0.0;
  for (auto& x : bufs[0]) x = 3.25;  // root payload
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = bufs[static_cast<size_t>(ctx.world_rank)];
    Window w = co_await win_create(ctx, kCommWorld, mine);
    co_await bcast_notify(ctx, w, kCommWorld, /*root=*/0, 0, 32 * sizeof(double),
                          mine.data(), 77);
    EXPECT_DOUBLE_EQ(mine[31], 3.25);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  for (auto& b : bufs) EXPECT_DOUBLE_EQ(b[0], 3.25);
}

TEST(DcudaAblation, DeviceLocalNotificationsFaster) {
  auto pingpong_time = [](bool via_host) {
    sim::MachineConfig cfg;
    cfg.num_nodes = 1;
    cfg.runtime.local_notifications_via_host = via_host;
    Cluster c({.machine = cfg, .ranks_per_device = 2});
    auto mem = c.device(0).alloc<std::byte>(128);
    c.run([&](Context& ctx) -> Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld, mem);
      for (int i = 0; i < 20; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, 1, 0, 0, nullptr, 0);
          co_await wait_notifications(ctx, w, 1, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, 0, 0, 1);
          co_await put_notify(ctx, w, 0, 0, 0, nullptr, 0);
        }
      }
      co_await win_free(ctx, w);
    });
    return c.sim().now();
  };
  EXPECT_LT(pingpong_time(false), pingpong_time(true));
}

}  // namespace
}  // namespace dcuda
