// Sharded parallel event engine (docs/PERF.md, "Parallel engine").
//
// The engine partitions the simulation into one shard per node and advances
// all shards under a conservative time-window protocol whose lookahead is
// the smallest registered cross-shard link latency. These tests pin down the
// two properties everything else rests on:
//
//   1. Termination and window mechanics on the raw sim:: API — drained
//      queues end run() even when limit is infinite, run_until stops at its
//      limit across window boundaries, multi-shard runs without a
//      registered lookahead are rejected.
//   2. Executor invariance — a full Cluster workload produces
//      byte-identical results (checksum, elapsed simulated time, event
//      count, fabric fault counters) for every executor-group and
//      worker-thread count, under clean, perturbed, and lossy schedules.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/stencil.h"
#include "cluster/cluster.h"
#include "net/fault.h"
#include "net/topology.h"
#include "sim/invariants.h"
#include "sim/simulation.h"

namespace dcuda {
namespace {

constexpr double kLat = 1.4e-6;  // the fabric's wire latency / lookahead

// -- Raw engine: window protocol mechanics ------------------------------

TEST(EngineWindows, DrainedRunTerminates) {
  // Regression: with every queue empty the min next-event time is +inf,
  // and run()'s limit is +inf too — the window loop must break, not spin.
  sim::Simulation s;
  s.configure_shards(4);
  s.register_lookahead(kLat);
  int fired = 0;
  for (int d = 0; d < 4; ++d) s.schedule_on(d, 1e-6 * (d + 1), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 4);
  s.run();  // second run with nothing scheduled must return immediately
  EXPECT_EQ(fired, 4);
}

TEST(EngineWindows, RunUntilStopsAtLimitAcrossWindows) {
  sim::Simulation s;
  s.configure_shards(2);
  s.register_lookahead(kLat);
  std::vector<double> fired;
  for (int i = 0; i < 10; ++i) {
    s.schedule_on(i % 2, 1e-6 * (i + 1), [&fired, i] {
      fired.push_back(1e-6 * (i + 1));
    });
  }
  s.run_until(5.5e-6);  // events at 1..5 us fire, 6..10 us stay pending
  EXPECT_EQ(fired.size(), 5u);
  s.run_until(20e-6);
  EXPECT_EQ(fired.size(), 10u);
  s.run();  // drained; must terminate
  EXPECT_EQ(fired.size(), 10u);
}

TEST(EngineWindows, MultiShardRunWithoutLookaheadThrows) {
  sim::Simulation s;
  s.configure_shards(2);
  s.schedule_on(1, 1.0, [] {});
  EXPECT_THROW(s.run(), std::logic_error);
}

TEST(EngineWindows, SingleShardNeedsNoLookahead) {
  sim::Simulation s;  // classic engine: one shard, no lookahead required
  int fired = 0;
  s.schedule(1.0, [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
}

// Cross-shard ring traffic where every hop is exactly the lookahead — the
// tightest legal schedule. The firing order within each shard must be a
// pure function of the logical schedule, so the per-shard observation logs
// are byte-identical for every executor configuration.
std::vector<std::string> ring_logs(int groups, int threads) {
  constexpr int kShards = 4;
  constexpr int kMsgs = 8;
  constexpr int kHops = 64;
  sim::Simulation s;
  s.configure_shards(kShards);
  s.register_lookahead(kLat);
  s.set_executor(groups, threads);
  std::vector<std::ostringstream> log(kShards);
  struct Hop {
    sim::Simulation* s;
    std::vector<std::ostringstream>* log;
    int id;
    int left;
    void fire(int at) {
      (*log)[static_cast<size_t>(at)]
          << id << '@' << static_cast<long long>(s->now() * 1e9) << ' ';
      if (--left <= 0) return;
      const int next = (at + 1) % kShards;
      s->schedule_on(next, kLat, [this, next] { fire(next); });
    }
  };
  std::vector<Hop> hops;
  hops.reserve(kMsgs);
  for (int i = 0; i < kMsgs; ++i) hops.push_back(Hop{&s, &log, i, kHops});
  for (int i = 0; i < kMsgs; ++i) {
    const int at = i % kShards;
    s.schedule_on(at, 1e-9 * (i + 1),
                  [h = &hops[static_cast<size_t>(i)], at] { h->fire(at); });
  }
  s.run();
  std::vector<std::string> out;
  out.reserve(kShards);
  for (auto& os : log) out.push_back(os.str());
  return out;
}

TEST(EngineWindows, CrossShardOrderIsExecutorInvariant) {
  const std::vector<std::string> serial = ring_logs(1, 1);
  ASSERT_FALSE(serial[0].empty());
  EXPECT_EQ(ring_logs(0, 1), serial);  // one group per shard, serial
  EXPECT_EQ(ring_logs(2, 2), serial);  // two groups, two workers
  EXPECT_EQ(ring_logs(0, 4), serial);  // four groups, four workers
}

// -- Cluster: full-stack executor invariance ----------------------------

struct Fingerprint {
  double checksum = 0.0;
  double elapsed = 0.0;
  std::size_t events = 0;
  std::string faults;
  std::string obs;
  bool operator==(const Fingerprint& o) const {
    return checksum == o.checksum && elapsed == o.elapsed &&
           events == o.events && faults == o.faults && obs == o.obs;
  }
};

Fingerprint run_stencil(int groups, int threads, std::uint64_t perturb,
                        double drop, net::TopoConfig topo = {}) {
  sim::MachineConfig m;
  m.num_nodes = 4;
  m.shards = groups;
  m.threads = threads;
  m.perturb_seed = perturb;
  m.fault.drop_prob = drop;
  if (drop > 0.0) m.fault.dup_prob = 0.005;
  m.net.topo = topo;
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 4;
  Cluster c({.machine = m, .ranks_per_device = 4});
  sim::InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  apps::stencil::Result res = apps::stencil::run_dcuda(c, cfg);
  obs.finalize();
  Fingerprint fp;
  fp.checksum = res.checksum;
  fp.elapsed = res.elapsed;
  fp.events = c.sim().events_processed();
  const net::Fabric::FaultStats& fs = c.fabric().fault_stats();
  std::ostringstream os;
  os << fs.originals << ' ' << fs.drops << ' ' << fs.dups << ' '
     << fs.retransmits << ' ' << fs.timeouts << ' ' << fs.acks_sent;
  fp.faults = os.str();
  EXPECT_TRUE(obs.violations().empty())
      << obs.violations().size() << " oracle violations, first: "
      << obs.violations().front();
  fp.obs = obs.report();
  return fp;
}

TEST(ClusterParallel, CleanRunIsExecutorInvariant) {
  const Fingerprint serial = run_stencil(1, 1, 0, 0.0);
  EXPECT_TRUE(run_stencil(0, 1, 0, 0.0) == serial);
  EXPECT_TRUE(run_stencil(0, 4, 0, 0.0) == serial);
  EXPECT_TRUE(run_stencil(2, 2, 0, 0.0) == serial);
}

TEST(ClusterParallel, PerturbedRunIsExecutorInvariant) {
  const Fingerprint serial = run_stencil(1, 1, 0xfeedface, 0.0);
  EXPECT_TRUE(run_stencil(0, 4, 0xfeedface, 0.0) == serial);
}

TEST(ClusterParallel, FaultyRunIsExecutorInvariant) {
  const Fingerprint serial = run_stencil(1, 1, 7, 0.01);
  EXPECT_TRUE(run_stencil(0, 4, 7, 0.01) == serial);
  EXPECT_TRUE(run_stencil(2, 2, 7, 0.01) == serial);
}

TEST(ClusterParallel, MultiHopTopologyRunIsExecutorInvariant) {
  // Fat tree with 2 NIC rails: hop events cross shards at the (shorter)
  // per-hop lookahead and the rail mux resequences at the receiver — the
  // full workload fingerprint must still be executor-invariant
  // (docs/TOPOLOGY.md; the topology pass of check_determinism.sh runs the
  // same comparison over a fig benchmark).
  net::TopoConfig topo;
  topo.kind = net::TopologyKind::kFatTree;
  topo.fat_tree_arity = 2;  // 4 nodes -> 2 leaves, cross-leaf ECMP width 2
  topo.rails = 2;
  const Fingerprint serial = run_stencil(1, 1, 0, 0.0, topo);
  EXPECT_TRUE(run_stencil(0, 4, 0, 0.0, topo) == serial);
  EXPECT_TRUE(run_stencil(2, 2, 0, 0.0, topo) == serial);
}

TEST(ClusterParallel, FaultyTorusRunIsExecutorInvariant) {
  // Go-back-N recovery over multi-hop torus routes, serial vs threaded.
  net::TopoConfig topo;
  topo.kind = net::TopologyKind::kTorus3D;
  const Fingerprint serial = run_stencil(1, 1, 7, 0.01, topo);
  EXPECT_TRUE(run_stencil(0, 4, 7, 0.01, topo) == serial);
}

TEST(ClusterParallel, ThreadCountDoesNotChangeEventCount) {
  // events_processed() sums per-shard counters; any divergence between
  // executor settings would surface here even if results happened to agree.
  const Fingerprint a = run_stencil(1, 1, 3, 0.0);
  const Fingerprint b = run_stencil(0, 2, 3, 0.0);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.elapsed, b.elapsed);
}

}  // namespace
}  // namespace dcuda
