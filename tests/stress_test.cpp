// Stress and fuzz tests: randomized communication patterns checked against
// shadow bookkeeping, high-volume traffic through the queues, and larger
// end-to-end integration runs.

#include <gtest/gtest.h>

#include <map>

#include "cluster/cluster.h"
#include "sim/random.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

// Random point-to-point notified puts. Each rank owns a mailbox window with
// one slot per peer; senders write a sequence-stamped record; receivers
// verify sender identity and strictly increasing sequence numbers per
// origin (non-overtaking), and global counts at the end.
TEST(StressFuzz, RandomNotifiedPutsKeepOrderAndCounts) {
  constexpr int kNodes = 3, kRpd = 4;
  constexpr int kWorld = kNodes * kRpd;
  constexpr int kMsgsPerRank = 25;
  Cluster c({.machine = machine(kNodes), .ranks_per_device = kRpd});

  struct Slot {
    double seq;
    double src;
  };
  std::vector<std::span<Slot>> mailbox(kWorld);
  for (int n = 0; n < kNodes; ++n) {
    for (int r = 0; r < kRpd; ++r) {
      mailbox[static_cast<size_t>(n * kRpd + r)] = c.device(n).alloc<Slot>(kWorld);
    }
  }
  std::vector<std::vector<int>> sent_to(kWorld, std::vector<int>(kWorld, 0));

  c.run([&](Context& ctx) -> Proc<void> {
    const int me = ctx.world_rank;
    Window w = co_await win_create(ctx, kCommWorld, mailbox[static_cast<size_t>(me)]);
    sim::Rng rng(1234u + static_cast<unsigned>(me));
    Slot out{0, static_cast<double>(me)};
    for (int i = 0; i < kMsgsPerRank; ++i) {
      const int target = static_cast<int>(rng.next_below(kWorld));
      if (target == me) continue;
      out.seq = i + 1;
      co_await put_notify(ctx, w, target, static_cast<size_t>(me) * sizeof(Slot),
                          sizeof(Slot), &out, /*tag=*/me);
      co_await flush(ctx);  // out is reused: pin the payload
      sent_to[static_cast<size_t>(me)][static_cast<size_t>(target)]++;
      // Consume anything that arrived meanwhile.
      for (;;) {
        const int got = co_await test_notifications(ctx, w.device_id, kAnySource,
                                                    kAnyTag, 1 << 20);
        if (got == 0) break;
      }
      co_await ctx.sim().delay(sim::micros(rng.uniform(0.0, 3.0)));
    }
    co_await barrier(ctx, kCommWorld);  // all sends delivered before teardown
    (void)co_await test_notifications(ctx, w.device_id, kAnySource, kAnyTag, 1 << 20);
    co_await win_free(ctx, w);
    co_return;
  });

  // Validate final mailbox contents: the slot for origin o at rank t holds
  // o's identity and its LAST sequence number sent to t.
  for (int t = 0; t < kWorld; ++t) {
    for (int o = 0; o < kWorld; ++o) {
      if (o == t) continue;
      if (sent_to[static_cast<size_t>(o)][static_cast<size_t>(t)] == 0) continue;
      const Slot& s = mailbox[static_cast<size_t>(t)][static_cast<size_t>(o)];
      EXPECT_DOUBLE_EQ(s.src, static_cast<double>(o)) << "t=" << t << " o=" << o;
      EXPECT_GT(s.seq, 0.0);
    }
  }
}

// Hammer one rank with notifications from everyone, with mixed tags; the
// matcher must neither lose nor duplicate under queue-full backpressure.
TEST(StressFuzz, NotificationFloodWithBackpressure) {
  sim::MachineConfig cfg = machine(2);
  cfg.runtime.notification_queue_entries = 4;  // brutal backpressure
  constexpr int kRpd = 5;
  Cluster c({.machine = cfg, .ranks_per_device = kRpd});
  auto mem = c.device(0).alloc<std::byte>(64);
  const int world = 2 * kRpd;
  constexpr int kPerSender = 30;
  int matched_total = -1;
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank != 0) {
      for (int i = 0; i < kPerSender; ++i) {
        co_await put_notify(ctx, w, 0, 0, 0, nullptr, /*tag=*/i % 3);
      }
      co_await flush(ctx);
    } else {
      int got = 0;
      // Tag-selective consumption while the flood is in progress.
      for (int tag = 0; tag < 3; ++tag) {
        const int expect = (world - 1) * (kPerSender / 3);
        co_await wait_notifications(ctx, w, kAnySource, tag, expect);
        got += expect;
      }
      matched_total = got;
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  EXPECT_EQ(matched_total, (world - 1) * kPerSender);
}

// Larger integration run: full machine configuration (208 ranks/device) at
// 2 nodes, a few stencil-like rounds — exercises occupancy, queue credit
// churn and the host worker under production-scale rank counts.
TEST(StressScale, FullRankCountSmoke) {
  Cluster c({.machine = machine(2)});  // 208 ranks per device
  ASSERT_EQ(c.world_size(), 416);
  auto m0 = c.device(0).alloc<double>(416);
  auto m1 = c.device(1).alloc<double>(416);
  int completions = 0;
  c.run([&](Context& ctx) -> Proc<void> {
    auto mem = ctx.node->node() == 0 ? m0 : m1;
    Window w = co_await win_create(ctx, kCommWorld, mem);
    const int right = (ctx.world_rank + 1) % ctx.world_size;
    for (int it = 0; it < 3; ++it) {
      double v = ctx.world_rank + it * 1000.0;
      co_await put_notify(ctx, w, right,
                          static_cast<size_t>(ctx.world_rank) * sizeof(double),
                          sizeof(double), &v, it);
      co_await flush(ctx);
      const int left = (ctx.world_rank + ctx.world_size - 1) % ctx.world_size;
      co_await wait_notifications(ctx, w, left, it, 1);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
    ++completions;
  });
  EXPECT_EQ(completions, 416);
}

// Repeated window create/free churn across communicators.
TEST(StressScale, WindowChurn) {
  Cluster c({.machine = machine(2), .ranks_per_device = 6});
  auto m0 = c.device(0).alloc<double>(128);
  auto m1 = c.device(1).alloc<double>(128);
  c.run([&](Context& ctx) -> Proc<void> {
    auto mem = ctx.node->node() == 0 ? m0 : m1;
    for (int round = 0; round < 10; ++round) {
      Window ww = co_await win_create(ctx, kCommWorld, mem);
      Window wd = co_await win_create(ctx, kCommDevice, mem);
      const int peer = ctx.world_rank ^ 1;
      if (peer < ctx.world_size && peer / 6 == ctx.world_rank / 6) {
        co_await put_notify(ctx, ww, peer, 0, 0, nullptr, round);
        co_await wait_notifications(ctx, ww, peer, round, 1);
      }
      co_await win_free(ctx, wd);
      co_await win_free(ctx, ww);
    }
  });
  SUCCEED();
}

}  // namespace
}  // namespace dcuda
