// Parameterized tests for the shared-memory-aware collectives (§V):
// hierarchical reduce/bcast/allreduce across node counts, ranks per device,
// roots, and payload sizes; pipelining safety across back-to-back calls.

#include <gtest/gtest.h>

#include <tuple>

#include "cluster/cluster.h"
#include "dcuda/collectives.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

class ReduceSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>> {};

TEST_P(ReduceSweep, SumArrivesAtRoot) {
  const auto [nodes, rpd, root, elems] = GetParam();
  const int world = nodes * rpd;
  if (root >= world) GTEST_SKIP();
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  std::vector<std::vector<double>> data(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    data[static_cast<size_t>(g)].resize(static_cast<size_t>(elems));
    for (int e = 0; e < elems; ++e)
      data[static_cast<size_t>(g)][static_cast<size_t>(e)] = g * 100.0 + e;
  }
  c.run([&](Context& ctx) -> Proc<void> {
    Collectives coll = co_await Collectives::create(ctx, static_cast<size_t>(elems));
    co_await coll.reduce_sum(ctx, root, data[static_cast<size_t>(ctx.world_rank)].data(),
                             static_cast<size_t>(elems), 4);
    co_await barrier(ctx, kCommWorld);
    co_await coll.destroy(ctx);
  });
  for (int e = 0; e < elems; ++e) {
    double want = 0;
    for (int g = 0; g < world; ++g) want += g * 100.0 + e;
    EXPECT_DOUBLE_EQ(data[static_cast<size_t>(root)][static_cast<size_t>(e)], want)
        << "elem " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReduceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 4),
                                            ::testing::Values(1, 2, 5),
                                            ::testing::Values(0, 3),
                                            ::testing::Values(1, 17)));

class BcastSweepColl
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BcastSweepColl, PayloadReachesEveryRank) {
  const auto [nodes, rpd, root] = GetParam();
  const int world = nodes * rpd;
  if (root >= world) GTEST_SKIP();
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  std::vector<std::vector<double>> data(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    data[static_cast<size_t>(g)].assign(8, g == root ? 3.5 : 0.0);
  }
  c.run([&](Context& ctx) -> Proc<void> {
    Collectives coll = co_await Collectives::create(ctx, 8);
    co_await coll.bcast(ctx, root, data[static_cast<size_t>(ctx.world_rank)].data(), 8, 6);
    co_await barrier(ctx, kCommWorld);
    co_await coll.destroy(ctx);
  });
  for (int g = 0; g < world; ++g) {
    EXPECT_DOUBLE_EQ(data[static_cast<size_t>(g)][7], 3.5) << "rank " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BcastSweepColl,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(0, 2, 5)));

class AllreduceSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AllreduceSweep, EveryRankHoldsTheSum) {
  const auto [nodes, rpd] = GetParam();
  const int world = nodes * rpd;
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  std::vector<std::vector<double>> data(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) data[static_cast<size_t>(g)].assign(4, g + 1.0);
  c.run([&](Context& ctx) -> Proc<void> {
    Collectives coll = co_await Collectives::create(ctx, 4);
    co_await coll.allreduce_sum(ctx, data[static_cast<size_t>(ctx.world_rank)].data(), 4, 8);
    co_await coll.destroy(ctx);
  });
  const double want = world * (world + 1) / 2.0;
  for (int g = 0; g < world; ++g) {
    EXPECT_DOUBLE_EQ(data[static_cast<size_t>(g)][0], want) << "rank " << g;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, AllreduceSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 2, 4)));

TEST(CollectivesPipelining, BackToBackReductionsStaySafe) {
  // The ack protocol must prevent a fast leaf's next payload from
  // overwriting a scratch slot before the parent consumed it.
  const int nodes = 2, rpd = 4;
  const int world = nodes * rpd;
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  std::vector<std::vector<double>> data(static_cast<size_t>(world));
  std::vector<double> sums;
  for (int g = 0; g < world; ++g) data[static_cast<size_t>(g)].assign(2, 0.0);
  c.run([&](Context& ctx) -> Proc<void> {
    Collectives coll = co_await Collectives::create(ctx, 2);
    for (int round = 0; round < 6; ++round) {
      auto& mine = data[static_cast<size_t>(ctx.world_rank)];
      mine[0] = ctx.world_rank + round * 1000.0;
      mine[1] = 1.0;
      co_await coll.reduce_sum(ctx, 0, mine.data(), 2, 10 + round * 4);
      if (ctx.world_rank == 0) {
        const double want = world * (world - 1) / 2.0 + world * round * 1000.0;
        EXPECT_DOUBLE_EQ(mine[0], want) << "round " << round;
        EXPECT_DOUBLE_EQ(mine[1], static_cast<double>(world));
      }
    }
    co_await barrier(ctx, kCommWorld);
    co_await coll.destroy(ctx);
  });
}

TEST(CollectivesHierarchy, CrossDeviceTrafficIsPerDeviceNotPerRank) {
  // With 8 ranks per device, the hierarchical reduction must cross the
  // network once per device pair — not once per rank.
  const int nodes = 2, rpd = 8;
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  std::vector<std::vector<double>> data(static_cast<size_t>(nodes * rpd));
  for (auto& d : data) d.assign(64, 1.0);
  c.run([&](Context& ctx) -> Proc<void> {
    Collectives coll = co_await Collectives::create(ctx, 64);
    co_await coll.reduce_sum(ctx, 0, data[static_cast<size_t>(ctx.world_rank)].data(), 64, 4);
    co_await barrier(ctx, kCommWorld);
    co_await coll.destroy(ctx);
  });
  // Wire payload ~ one 512-byte message + envelopes/acks/barrier control,
  // far below the 16 messages a flat tree would send.
  EXPECT_LT(c.fabric().bytes_sent(1), 4096.0);
}

}  // namespace
}  // namespace dcuda
