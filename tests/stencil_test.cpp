// Tests for the horizontal-diffusion mini-application: numerical agreement
// of both programming-model variants with the serial reference, and the
// qualitative performance relationship the paper reports (Fig. 10).

#include <gtest/gtest.h>

#include "apps/stencil.h"

namespace dcuda::apps::stencil {
namespace {

Config tiny_config() {
  Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 4;
  return cfg;
}

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

TEST(StencilApp, DcudaMatchesReferenceSingleNode) {
  Config cfg = tiny_config();
  Cluster c({.machine = machine(1), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 1, 4), 1e-9);
}

TEST(StencilApp, DcudaMatchesReferenceMultiNode) {
  Config cfg = tiny_config();
  Cluster c({.machine = machine(3), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 3, 4), 1e-9);
}

TEST(StencilApp, MpiCudaMatchesReferenceSingleNode) {
  Config cfg = tiny_config();
  Cluster c({.machine = machine(1), .ranks_per_device = 4});
  Result r = run_mpi_cuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 1, 4), 1e-9);
}

TEST(StencilApp, MpiCudaMatchesReferenceMultiNode) {
  Config cfg = tiny_config();
  Cluster c({.machine = machine(3), .ranks_per_device = 4});
  Result r = run_mpi_cuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 3, 4), 1e-9);
}

TEST(StencilApp, VariantsAgreeWithEachOther) {
  Config cfg = tiny_config();
  cfg.iterations = 5;  // odd: exercises the buffer-parity bookkeeping
  Cluster c1({.machine = machine(2), .ranks_per_device = 4});
  Cluster c2({.machine = machine(2), .ranks_per_device = 4});
  Result a = run_dcuda(c1, cfg);
  Result b = run_mpi_cuda(c2, cfg);
  EXPECT_NEAR(a.checksum, b.checksum, 1e-9);
}

TEST(StencilApp, OddIterationCountMatchesReference) {
  Config cfg = tiny_config();
  cfg.iterations = 3;
  Cluster c({.machine = machine(2), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 2, 4), 1e-9);
}

TEST(StencilApp, SingleRankPerDeviceWorks) {
  Config cfg = tiny_config();
  Cluster c({.machine = machine(2), .ranks_per_device = 1});
  Result r = run_dcuda(c, cfg);
  EXPECT_NEAR(r.checksum, reference_checksum(cfg, 2, 1), 1e-9);
}

TEST(StencilApp, RuntimeSwitchesProduceShorterRuns) {
  // The §IV-B methodology: compute-only and exchange-only runs must both be
  // no slower than the full run.
  Config cfg = tiny_config();
  cfg.iterations = 6;
  auto timed = [&](bool compute, bool exchange) {
    Config c2 = cfg;
    c2.compute = compute;
    c2.exchange = exchange;
    Cluster c({.machine = machine(2), .ranks_per_device = 4});
    return run_dcuda(c, c2).elapsed;
  };
  const double full = timed(true, true);
  const double compute_only = timed(true, false);
  const double exchange_only = timed(false, true);
  EXPECT_LE(compute_only, full * 1.05);
  EXPECT_LE(exchange_only, full * 1.05);
  EXPECT_GT(full, 0.0);
}

TEST(StencilApp, DcudaWireTrafficOnlyAtDeviceBoundaries) {
  // All intra-device halos are zero-copy notifications; only the two device
  // boundary lines travel the network per exchange.
  Config cfg = tiny_config();
  Cluster c({.machine = machine(2), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  // Upper bound: iterations * 4 directed line-exchanges * line bytes * k
  // plus envelopes/meta/barrier traffic — far below one full array.
  const double line = static_cast<double>(cfg.isize) * sizeof(double) * cfg.ksize;
  EXPECT_LT(static_cast<double>(r.bytes_on_wire), cfg.iterations * 4 * line * 3.0);
  EXPECT_GT(r.bytes_on_wire, 0u);
}

TEST(StencilApp, MultiNodeDcudaHidesHaloCost) {
  // Fig. 10's qualitative claim at small scale: going from 1 to 2 nodes,
  // the dCUDA per-node time grows less than the MPI-CUDA per-node time
  // (dCUDA overlaps the halo exchange it newly pays for).
  Config cfg;
  cfg.isize = 64;
  cfg.jlocal = 2;
  cfg.ksize = 8;
  cfg.iterations = 12;
  auto run_pair = [&](int nodes) {
    Cluster cd({.machine = machine(nodes), .ranks_per_device = 32});
    Cluster cm({.machine = machine(nodes), .ranks_per_device = 32});
    return std::pair<double, double>{run_dcuda(cd, cfg).elapsed,
                                     run_mpi_cuda(cm, cfg).elapsed};
  };
  auto [d1, m1] = run_pair(1);
  auto [d2, m2] = run_pair(2);
  const double dcuda_growth = d2 - d1;
  const double mpicuda_growth = m2 - m1;
  EXPECT_LT(dcuda_growth, mpicuda_growth);
}

}  // namespace
}  // namespace dcuda::apps::stencil
