// Parameterized end-to-end sweeps: every mini-application validated across
// node counts, ranks-per-device and iteration counts, plus protocol
// boundary cases (eager limit, staging threshold, device communicator).

#include <gtest/gtest.h>

#include <tuple>

#include "apps/particles.h"
#include "apps/spmv.h"
#include "apps/stencil.h"
#include "cluster/cluster.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

// ----------------------------------------------------------- stencil ------

class StencilSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(StencilSweep, MatchesReference) {
  const auto [nodes, rpd, iterations, use_dcuda] = GetParam();
  apps::stencil::Config cfg;
  cfg.isize = 8;
  cfg.jlocal = 2;
  cfg.ksize = 2;
  cfg.iterations = iterations;
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  const auto r = use_dcuda ? apps::stencil::run_dcuda(c, cfg)
                           : apps::stencil::run_mpi_cuda(c, cfg);
  EXPECT_NEAR(r.checksum, apps::stencil::reference_checksum(cfg, nodes, rpd), 1e-9)
      << "nodes=" << nodes << " rpd=" << rpd << " it=" << iterations;
}

INSTANTIATE_TEST_SUITE_P(Grid, StencilSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(1, 3),
                                            ::testing::Values(1, 2, 6),
                                            ::testing::Bool()));

// ---------------------------------------------------------- particles -----

class ParticlesSweep
    : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(ParticlesSweep, MatchesReference) {
  const auto [nodes, cells, use_dcuda] = GetParam();
  apps::particles::Config cfg;
  cfg.cells_per_node = cells;
  cfg.particles_per_cell = 8;
  cfg.iterations = 8;
  cfg.dt = 0.02;
  Cluster c({.machine = machine(nodes), .ranks_per_device = cells});
  const auto r = use_dcuda ? apps::particles::run_dcuda(c, cfg)
                           : apps::particles::run_mpi_cuda(c, cfg);
  const auto ref = apps::particles::reference(cfg, nodes);
  EXPECT_EQ(r.total_particles, ref.total_particles);
  EXPECT_NEAR(r.checksum, ref.checksum, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Cells, ParticlesSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(2, 5),
                                            ::testing::Bool()));

TEST(ParticlesReducedCutoff, StillMatchesReference) {
  // The Fig. 9 configuration: cutoff well below the cell width.
  apps::particles::Config cfg;
  cfg.cells_per_node = 3;
  cfg.particles_per_cell = 10;
  cfg.iterations = 10;
  cfg.cutoff = 0.25;
  Cluster c({.machine = machine(2), .ranks_per_device = 3});
  const auto r = apps::particles::run_dcuda(c, cfg);
  const auto ref = apps::particles::reference(cfg, 2);
  EXPECT_EQ(r.total_particles, ref.total_particles);
  EXPECT_NEAR(r.checksum, ref.checksum, 1e-9);
}

// --------------------------------------------------------------- spmv -----

class SpmvSweep : public ::testing::TestWithParam<std::tuple<int, int, bool>> {};

TEST_P(SpmvSweep, MatchesReference) {
  const auto [nodes, rpd, use_dcuda] = GetParam();
  apps::spmv::Config cfg;
  cfg.n_dev = rpd * 6;
  cfg.density = 0.1;
  cfg.iterations = 2;
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  const auto r = use_dcuda ? apps::spmv::run_dcuda(c, cfg)
                           : apps::spmv::run_mpi_cuda(c, cfg);
  const double ref = apps::spmv::reference_checksum(cfg, nodes);
  EXPECT_NEAR(r.checksum, ref, 1e-9 * (std::abs(ref) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Grids, SpmvSweep,
                         ::testing::Combine(::testing::Values(1, 4, 9),
                                            ::testing::Values(1, 4),
                                            ::testing::Bool()));

// -------------------------------------------------- protocol boundaries ---

class EagerBoundary : public ::testing::TestWithParam<int> {};

TEST_P(EagerBoundary, PutSizesAroundEagerLimit) {
  // Put payloads straddling the MPI eager limit (8 kB): -1, exact, +1.
  const int delta = GetParam();
  const std::size_t bytes = 8 * 1024 + static_cast<std::size_t>(delta);
  Cluster c({.machine = machine(2), .ranks_per_device = 1});
  auto src = c.device(0).alloc<std::byte>(bytes);
  auto dst = c.device(1).alloc<std::byte>(bytes);
  for (std::size_t i = 0; i < bytes; ++i) src[i] = static_cast<std::byte>(i * 13);
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = ctx.world_rank == 0 ? src : dst;
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {
      co_await put_notify(ctx, w, 1, 0, bytes, src.data(), 0);
    } else {
      co_await wait_notifications(ctx, w, 0, 0, 1);
      EXPECT_EQ(dst[bytes - 1], static_cast<std::byte>((bytes - 1) * 13));
    }
    co_await win_free(ctx, w);
  });
}

INSTANTIATE_TEST_SUITE_P(AroundLimit, EagerBoundary, ::testing::Values(-1, 0, 1, 4096));

class StagingBoundary : public ::testing::TestWithParam<int> {};

TEST_P(StagingBoundary, PutSizesAroundStagingThreshold) {
  const int delta = GetParam();
  const std::size_t bytes = 20 * 1024 + static_cast<std::size_t>(delta);
  Cluster c({.machine = machine(2), .ranks_per_device = 1});
  auto src = c.device(0).alloc<std::byte>(bytes);
  auto dst = c.device(1).alloc<std::byte>(bytes);
  for (std::size_t i = 0; i < bytes; ++i) src[i] = static_cast<std::byte>(i * 7);
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = ctx.world_rank == 0 ? src : dst;
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {
      co_await put_notify(ctx, w, 1, 0, bytes, src.data(), 0);
    } else {
      co_await wait_notifications(ctx, w, 0, 0, 1);
      co_await flush(ctx);
      EXPECT_EQ(dst[0], static_cast<std::byte>(0));
      EXPECT_EQ(dst[bytes - 1], static_cast<std::byte>((bytes - 1) * 7));
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

INSTANTIATE_TEST_SUITE_P(AroundThreshold, StagingBoundary,
                         ::testing::Values(-1, 0, 1, 100 * 1024));

// ------------------------------------------------- device communicator ----

TEST(DeviceComm, WindowsAndBarriersStayLocal) {
  Cluster c({.machine = machine(2), .ranks_per_device = 3});
  auto m0 = c.device(0).alloc<double>(32);
  auto m1 = c.device(1).alloc<double>(32);
  c.run([&](Context& ctx) -> Proc<void> {
    auto mem = ctx.node->node() == 0 ? m0 : m1;
    // Device-communicator window: collective over this device's ranks only.
    Window w = co_await win_create(ctx, kCommDevice, mem);
    const int dr = comm_rank(ctx, kCommDevice);
    const int ds = comm_size(ctx, kCommDevice);
    EXPECT_EQ(ds, 3);
    // Ring of notified puts within the device (world-rank addressing).
    const int base = ctx.node->node() * 3;
    const int peer = base + (dr + 1) % ds;
    double v = 100.0 * ctx.node->node() + dr;
    co_await put_notify(ctx, w, peer, static_cast<size_t>(dr) * sizeof(double),
                        sizeof(double), &v, 1);
    co_await wait_notifications(ctx, w, kAnySource, 1, 1);
    co_await barrier(ctx, kCommDevice);
    co_await win_free(ctx, w);
  });
  // Each device saw only its own ranks' values.
  EXPECT_DOUBLE_EQ(m0[0], 0.0);
  EXPECT_DOUBLE_EQ(m1[1], 101.0);
}

// --------------------------------------------------------- gpu sweeps -----

class OccupancySweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OccupancySweep, FormulaMatchesLimits) {
  const auto [threads, regs] = GetParam();
  sim::Simulation s;
  gpu::Device dev(s, 0, sim::DeviceConfig{});
  const int per_sm = dev.occupancy_blocks_per_sm(gpu::LaunchConfig{1, threads, regs});
  const auto& c = dev.config();
  if (per_sm > 0) {
    EXPECT_LE(per_sm * threads, c.max_threads_per_sm);
    EXPECT_LE(per_sm * threads * regs, c.regs_per_sm);
    EXPECT_LE(per_sm, c.max_blocks_per_sm);
    // One more block would violate a limit (unless the block cap binds).
    if (per_sm < c.max_blocks_per_sm) {
      EXPECT_TRUE((per_sm + 1) * threads > c.max_threads_per_sm ||
                  (per_sm + 1) * threads * regs > c.regs_per_sm);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, OccupancySweep,
                         ::testing::Combine(::testing::Values(32, 128, 256, 1024),
                                            ::testing::Values(16, 26, 64, 128)));

}  // namespace
}  // namespace dcuda
