// Unit tests for the GPU device model: occupancy, block scheduling,
// fork-join launch semantics, resource sharing, no-preemption consequences.

#include <gtest/gtest.h>

#include <vector>

#include "gpu/device.h"
#include "sim/simulation.h"
#include "sim/trigger.h"
#include "sim/units.h"

namespace dcuda::gpu {
namespace {

using sim::micros;
using sim::Proc;
using sim::Simulation;

sim::DeviceConfig small_cfg() {
  sim::DeviceConfig c;
  c.num_sms = 2;
  c.max_blocks_per_sm = 4;
  c.max_threads_per_sm = 2048;
  c.regs_per_sm = 65536;
  c.sm_flops = 100.0;  // 100 flops/s: easy arithmetic
  c.blocks_to_saturate_sm = 2.0;
  c.mem_bandwidth = 1000.0;  // 1000 B/s
  c.per_block_mem_bandwidth = 100.0;
  c.launch_overhead = 0.0;
  c.block_dispatch_overhead = 0.0;
  return c;
}

TEST(Occupancy, K80DefaultsGive208BlocksInFlight) {
  Simulation s;
  Device dev(s, 0, sim::DeviceConfig{});
  // Paper launch config: 208 blocks x 128 threads, 26 registers.
  LaunchConfig lc{208, 128, 26};
  EXPECT_EQ(dev.occupancy_blocks_per_sm(lc), 16);
  EXPECT_EQ(dev.max_blocks_in_flight(lc), 208);
}

TEST(Occupancy, RegisterUsageLimitsResidency) {
  Simulation s;
  Device dev(s, 0, sim::DeviceConfig{});
  // 128 threads x 64 regs = 8192 regs/block -> 65536/8192 = 8 blocks/SM.
  EXPECT_EQ(dev.occupancy_blocks_per_sm(LaunchConfig{1, 128, 64}), 8);
  // 256 threads x 128 regs -> 2 blocks/SM.
  EXPECT_EQ(dev.occupancy_blocks_per_sm(LaunchConfig{1, 256, 128}), 2);
}

TEST(Occupancy, ThreadCountLimitsResidency) {
  Simulation s;
  Device dev(s, 0, sim::DeviceConfig{});
  EXPECT_EQ(dev.occupancy_blocks_per_sm(LaunchConfig{1, 1024, 26}), 2);
  EXPECT_EQ(dev.occupancy_blocks_per_sm(LaunchConfig{1, 2048, 16}), 1);
}

TEST(Occupancy, InvalidConfigsRejected) {
  Simulation s;
  Device dev(s, 0, sim::DeviceConfig{});
  EXPECT_EQ(dev.occupancy_blocks_per_sm(LaunchConfig{1, 4096, 26}), 0);
  EXPECT_EQ(dev.occupancy_blocks_per_sm(LaunchConfig{1, 0, 26}), 0);
}

TEST(Launch, ForkJoinWaitsForAllBlocks) {
  Simulation s;
  Device dev(s, 0, small_cfg());
  int done = 0;
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{8, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      co_await b.compute_flops(50.0);
      ++done;
    });
    EXPECT_EQ(done, 8);
  };
  s.spawn(host(), "host");
  s.run();
  EXPECT_EQ(done, 8);
}

TEST(Launch, BlocksDistributedAcrossSms) {
  Simulation s;
  Device dev(s, 0, small_cfg());
  std::vector<int> sm_of_block(8, -1);
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{8, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      sm_of_block[static_cast<size_t>(b.block_id())] = b.sm_id();
      co_return;
    });
  };
  s.spawn(host(), "host");
  s.run();
  int on_sm0 = 0, on_sm1 = 0;
  for (int sm : sm_of_block) (sm == 0 ? on_sm0 : on_sm1)++;
  EXPECT_EQ(on_sm0, 4);
  EXPECT_EQ(on_sm1, 4);
}

TEST(Launch, OversubscribedGridRunsSequentialTail) {
  Simulation s;
  auto cfg = small_cfg();
  Device dev(s, 0, cfg);
  // Capacity 2 SMs x 4 = 8 resident; grid 16 -> two waves.
  // Each block: 100 flops. 4 blocks/SM at per-block cap 50 -> rate 25/s
  // each -> wave takes 4s. Two waves -> 8s.
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{16, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      co_await b.compute_flops(100.0);
    });
    EXPECT_NEAR(s.now(), 8.0, 1e-6);
  };
  s.spawn(host(), "host");
  s.run();
}

TEST(Launch, WaitingBlocksFreeComputeForOthers) {
  // The latency-hiding mechanism: a block waiting on a trigger consumes no
  // SM throughput, so a co-resident block computes at full per-block rate.
  Simulation s;
  auto cfg = small_cfg();
  cfg.num_sms = 1;
  Device dev(s, 0, cfg);
  sim::Trigger never(s);
  sim::Time computer_done = -1;
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{2, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      if (b.block_id() == 0) {
        // Waits 3s, then computes 50 flops.
        co_await b.sim().delay(3.0);
        co_await b.compute_flops(50.0);
      } else {
        co_await b.compute_flops(100.0);  // per-block cap 50 -> 2s alone
        computer_done = b.sim().now();
      }
    });
  };
  s.spawn(host(), "host");
  s.run();
  // Block 1 computes alone (block 0 sleeps): full per-block rate 50/s -> 2s.
  EXPECT_NEAR(computer_done, 2.0, 1e-6);
}

TEST(Launch, ConcurrentComputeSharesSm) {
  Simulation s;
  auto cfg = small_cfg();
  cfg.num_sms = 1;
  Device dev(s, 0, cfg);
  std::vector<sim::Time> fin(4, -1.0);
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{4, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      co_await b.compute_flops(100.0);
      fin[static_cast<size_t>(b.block_id())] = b.sim().now();
    });
  };
  s.spawn(host(), "host");
  s.run();
  // 4 blocks on one SM: rate min(50, 100/4)=25 -> 4s each.
  for (auto f : fin) EXPECT_NEAR(f, 4.0, 1e-6);
}

TEST(Launch, MemoryBandwidthSharedDeviceWide) {
  Simulation s;
  auto cfg = small_cfg();
  Device dev(s, 0, cfg);
  std::vector<sim::Time> fin(8, -1.0);
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{8, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      co_await b.mem_traffic(500.0);
      fin[static_cast<size_t>(b.block_id())] = b.sim().now();
    });
  };
  s.spawn(host(), "host");
  s.run();
  // 8 blocks stream 500 B each: per-block rate min(100, 1000/8)=100 (cap
  // binds) -> 5s each.
  for (auto f : fin) EXPECT_NEAR(f, 5.0, 1e-6);
}

TEST(Launch, SingleBlockMemoryCappedBelowAggregate) {
  Simulation s;
  Device dev(s, 0, small_cfg());
  sim::Time fin = -1;
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{1, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      co_await b.mem_traffic(1000.0);
      fin = b.sim().now();
    });
  };
  s.spawn(host(), "host");
  s.run();
  EXPECT_NEAR(fin, 10.0, 1e-6);  // capped at 100 B/s, not 1000 B/s
}

TEST(Launch, LaunchOverheadCharged) {
  Simulation s;
  auto cfg = small_cfg();
  cfg.launch_overhead = micros(6);
  Device dev(s, 0, cfg);
  sim::Time start = -1;
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{1, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      start = b.sim().now();
      co_return;
    });
  };
  s.spawn(host(), "host");
  s.run();
  EXPECT_NEAR(start, micros(6), sim::nanos(1));
}

TEST(Launch, GridBeyondInFlightCannotSynchronize) {
  // The §II-B hazard: more blocks than fit in flight, where resident blocks
  // wait for a non-resident one -> deadlock, reported by the simulator.
  Simulation s;
  auto cfg = small_cfg();  // capacity 8
  Device dev(s, 0, cfg);
  sim::Trigger last_block_arrived(s);
  bool arrived = false;
  auto host = [&]() -> Proc<void> {
    co_await dev.launch(LaunchConfig{9, 128, 26}, [&](BlockCtx& b) -> Proc<void> {
      if (b.block_id() == 8) {
        arrived = true;
        last_block_arrived.notify_all();
      } else {
        // Resident blocks wait for block 8, which never gets a slot.
        co_await sim::wait_until(last_block_arrived, [&] { return arrived; });
      }
    });
  };
  s.spawn(host(), "host");
  EXPECT_THROW(s.run(), sim::DeadlockError);
}

TEST(Memory, AllocReturnsZeroableRealMemory) {
  Simulation s;
  Device dev(s, 0, small_cfg());
  auto span = dev.alloc<double>(1000);
  ASSERT_EQ(span.size(), 1000u);
  for (auto& x : span) x = 1.5;
  double sum = 0;
  for (auto x : span) sum += x;
  EXPECT_DOUBLE_EQ(sum, 1500.0);
  MemRef r = dev.ref(span);
  EXPECT_TRUE(r.on_device());
  EXPECT_EQ(r.device, 0);
  EXPECT_EQ(r.bytes, 8000u);
}

TEST(Memory, DmaCopyMovesBytesDeviceLocal) {
  Simulation s;
  Device dev(s, 0, small_cfg());
  auto a = dev.alloc<int>(16);
  auto b = dev.alloc<int>(16);
  for (int i = 0; i < 16; ++i) a[static_cast<size_t>(i)] = i * i;
  auto host = [&]() -> Proc<void> {
    co_await dev.dma_copy(dev.ref(b), dev.ref(a));
  };
  s.spawn(host(), "host");
  s.run();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(b[static_cast<size_t>(i)], i * i);
}

TEST(Memory, DmaCopyHostDeviceUsesPcie) {
  Simulation s;
  sim::PcieConfig pc;
  pc.bandwidth = 1000.0;
  pc.dma_startup = 1.0;
  pc.txn_latency = 0.0;
  pcie::PcieLink link(s, pc);
  Device dev(s, 0, small_cfg(), &link);
  std::vector<int> host_buf(4, 7);
  auto d = dev.alloc<int>(4);
  auto host = [&]() -> Proc<void> {
    co_await dev.dma_copy(dev.ref(d), mem_ref(std::span<int>(host_buf)));
  };
  s.spawn(host(), "host");
  s.run();
  EXPECT_EQ(d[0], 7);
  EXPECT_NEAR(s.now(), 1.0 + 16.0 / 1000.0, 1e-9);
  EXPECT_EQ(link.transactions(pcie::Dir::kHostToDevice), 1u);
}

TEST(Launch, SequentialLaunchesReuseDevice) {
  Simulation s;
  Device dev(s, 0, small_cfg());
  int total = 0;
  auto host = [&]() -> Proc<void> {
    for (int it = 0; it < 3; ++it) {
      co_await dev.launch(LaunchConfig{8, 128, 26},
                          [&](BlockCtx&) -> Proc<void> {
                            ++total;
                            co_return;
                          });
    }
  };
  s.spawn(host(), "host");
  s.run();
  EXPECT_EQ(total, 24);
  EXPECT_EQ(dev.resident_blocks(), 0);
}

}  // namespace
}  // namespace dcuda::gpu
