// Cross-cutting checks: the paper's message-count claims, end-to-end
// determinism of whole applications, config knobs, and smaller odds and
// ends not covered by the per-module suites.

#include <gtest/gtest.h>

#include "apps/spmv.h"
#include "apps/stencil.h"
#include "cluster/cluster.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

TEST(MessageCounts, DcudaSendsOneMessagePerVerticalLayer) {
  // §IV-C: the dCUDA stencil sends k separate messages per halo (one per
  // vertical layer) while MPI-CUDA packs each halo into a single message.
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 6;
  cfg.iterations = 4;
  std::uint64_t dcuda_msgs, mpicuda_msgs;
  {
    Cluster c({.machine = machine(2), .ranks_per_device = 2});
    apps::stencil::run_dcuda(c, cfg);
    dcuda_msgs = c.fabric().messages_sent(0) + c.fabric().messages_sent(1);
  }
  {
    Cluster c({.machine = machine(2), .ranks_per_device = 2});
    apps::stencil::run_mpi_cuda(c, cfg);
    mpicuda_msgs = c.fabric().messages_sent(0) + c.fabric().messages_sent(1);
  }
  // Per iteration, 4 directed line exchanges cross the device boundary; the
  // dCUDA variant multiplies each by ksize data messages (plus meta).
  EXPECT_GT(dcuda_msgs, mpicuda_msgs * 3);
}

TEST(Determinism, StencilFullyReproducible) {
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 5;
  auto run_once = [&] {
    Cluster c({.machine = machine(2), .ranks_per_device = 4});
    auto r = apps::stencil::run_dcuda(c, cfg);
    return std::pair<double, double>{r.elapsed, r.checksum};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);    // bit-identical simulated time
  EXPECT_EQ(a.second, b.second);  // bit-identical numerics
}

TEST(Determinism, SpmvFullyReproducible) {
  apps::spmv::Config cfg;
  cfg.n_dev = 32;
  cfg.density = 0.1;
  cfg.iterations = 2;
  auto run_once = [&] {
    Cluster c({.machine = machine(4), .ranks_per_device = 4});
    auto r = apps::spmv::run_dcuda(c, cfg);
    return std::pair<double, double>{r.elapsed, r.checksum};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(ConfigKnobs, ExtraFlopsSlowTheStencilDown) {
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 5;
  double base, heavy;
  {
    Cluster c({.machine = machine(1), .ranks_per_device = 4});
    base = apps::stencil::run_dcuda(c, cfg).elapsed;
  }
  cfg.extra_flops_per_point = 500.0;
  {
    Cluster c({.machine = machine(1), .ranks_per_device = 4});
    heavy = apps::stencil::run_dcuda(c, cfg).elapsed;
  }
  EXPECT_GT(heavy, base);
}

TEST(ConfigKnobs, SlowerNetworkOnlyHurtsMultiNode) {
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 5;
  auto timed = [&](int nodes, double gbs_rate) {
    sim::MachineConfig mc = machine(nodes);
    mc.net.bandwidth = sim::gbs(gbs_rate);
    Cluster c({.machine = mc, .ranks_per_device = 4});
    return apps::stencil::run_mpi_cuda(c, cfg).elapsed;
  };
  EXPECT_NEAR(timed(1, 6.0), timed(1, 0.5), 1e-9);  // no network use at 1 node
  EXPECT_GT(timed(2, 0.5), timed(2, 6.0));
}

TEST(ConfigKnobs, FasterDeviceMemorySpeedsMemoryBoundWork) {
  auto timed = [&](double bw_gbs) {
    sim::MachineConfig mc = machine(1);
    mc.device.mem_bandwidth = sim::gbs(bw_gbs);
    Cluster c({.machine = mc, .ranks_per_device = 16});
    return c.run([&](Context& ctx) -> Proc<void> {
      co_await ctx.block->mem_traffic(1e6);
    });
  };
  // 16 concurrent blocks: at 20 GB/s aggregate each gets 1.25 GB/s (below
  // the 2.1 GB/s per-block cap); at 400 GB/s the cap binds instead.
  EXPECT_GT(timed(20.0), timed(400.0));
}

TEST(ClusterApi, SequentialRunsOnOneCluster) {
  // The runtime state (queues, counters) must survive multiple kernels.
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<std::byte>(64);
  for (int k = 0; k < 3; ++k) {
    int notified = 0;
    c.run([&](Context& ctx) -> Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld, mem);
      const int peer = ctx.world_rank ^ 1;
      co_await put_notify(ctx, w, peer, 0, 0, nullptr, k);
      co_await wait_notifications(ctx, w, peer, k, 1);
      ++notified;
      co_await win_free(ctx, w);
    });
    EXPECT_EQ(notified, 2) << "kernel " << k;
  }
}

TEST(ClusterApi, TracerOffByDefaultCostsNothing) {
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  c.run([&](Context& ctx) -> Proc<void> {
    co_await ctx.block->compute_flops(1e6);
  });
  EXPECT_TRUE(c.tracer().spans().empty());
}

TEST(MpiStats, StagingCountersTrackProtocolChoice) {
  Cluster c({.machine = machine(2), .ranks_per_device = 1});
  auto small_buf = c.device(0).alloc<std::byte>(1024);
  auto big_buf = c.device(0).alloc<std::byte>(256 * 1024);
  auto small_dst = c.device(1).alloc<std::byte>(1024);
  auto big_dst = c.device(1).alloc<std::byte>(256 * 1024);
  auto& s = c.sim();
  auto tx = [&]() -> Proc<void> {
    co_await c.mpi(0).send(1, 0, c.device(0).ref(small_buf));
    co_await c.mpi(0).send(1, 1, c.device(0).ref(big_buf));
  };
  auto rx = [&]() -> Proc<void> {
    co_await c.mpi(1).recv(0, 0, c.device(1).ref(small_dst));
    co_await c.mpi(1).recv(0, 1, c.device(1).ref(big_dst));
  };
  s.spawn(tx(), "tx");
  s.spawn(rx(), "rx");
  s.run();
  EXPECT_EQ(c.mpi(0).staged_transfers(), 1u);          // only the 256 kB one
  EXPECT_GE(c.mpi(0).direct_device_transfers(), 1u);   // the 1 kB one
}

}  // namespace
}  // namespace dcuda
