// Topology-layer battery (net/topology.h, net/router.h, net/rail.h,
// docs/TOPOLOGY.md).
//
// Four layers:
//  * Conformance — fat-tree routes are valid up/down paths through the
//    link tables (uplink, downlink, egress, connected end to end), torus
//    routes are minimal dimension-order walks whose hop counts equal the
//    wraparound-aware distance.
//  * Determinism — ECMP selection replays exactly across independently
//    constructed topology/router instances (it is a pure hash, no stream
//    state), and different salts pick different spreads.
//  * Rail mux — the Resequencer releases strict mux order under arbitrary
//    arrival order, and end-to-end fabric traffic over fat tree / torus /
//    multi-rail arrives exactly once, in order, with a clean oracle suite,
//    byte-identically under serial and multi-threaded sharded executors.
//  * Mutation checks, wired as ctest cases: disabling the rail-mux
//    resequencer must fire the FIFO/non-overtaking oracle; disabling
//    shared-link capacity accounting must fire the link-capacity oracle.
//    Each test PASSES by proving the battery catches the mutation.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <limits>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "net/fabric.h"
#include "net/rail.h"
#include "net/router.h"
#include "net/topology.h"
#include "sim/invariants.h"
#include "sim/perturb.h"
#include "sim/simulation.h"

namespace dcuda {
namespace {

using net::Route;
using net::RouteMode;
using net::TopoConfig;
using net::Topology;
using net::TopologyKind;
using sim::InvariantObserver;

TopoConfig fat_tree(int arity) {
  TopoConfig tc;
  tc.kind = TopologyKind::kFatTree;
  tc.fat_tree_arity = arity;
  return tc;
}

TopoConfig torus(int x = 0, int y = 0, int z = 0) {
  TopoConfig tc;
  tc.kind = TopologyKind::kTorus3D;
  tc.torus_x = x;
  tc.torus_y = y;
  tc.torus_z = z;
  return tc;
}

// -- Fat-tree conformance ------------------------------------------------

TEST(FatTree, ShapeAndLeafAssignment) {
  Topology t(8, fat_tree(4));
  EXPECT_EQ(t.num_leaves(), 2);
  EXPECT_EQ(t.num_spines(), 4);
  EXPECT_EQ(t.num_switches(), 6);
  // uplinks (2*4) + downlinks (4*2) + egress (8)
  EXPECT_EQ(t.num_links(), 24);
  EXPECT_EQ(t.leaf_of(0), 0);
  EXPECT_EQ(t.leaf_of(3), 0);
  EXPECT_EQ(t.leaf_of(4), 1);
  EXPECT_EQ(t.leaf_of(7), 1);
}

TEST(FatTree, UpDownPathValidity) {
  const int nodes = 8;
  Topology t(nodes, fat_tree(4));
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      const std::vector<Route>& routes = t.paths(src, dst);
      ASSERT_GE(routes.size(), 1u);
      if (src == dst) {
        EXPECT_EQ(routes.size(), 1u);
        EXPECT_EQ(routes[0].hops(), 0);
        continue;
      }
      const int ls = t.leaf_of(src);
      const int ld = t.leaf_of(dst);
      if (ls == ld) {
        // Same leaf: exactly one route, one egress hop off the shared leaf.
        ASSERT_EQ(routes.size(), 1u);
        ASSERT_EQ(routes[0].hops(), 1);
        EXPECT_EQ(t.link_from(routes[0].links[0]), ls);
        EXPECT_EQ(t.link_to(routes[0].links[0]), -1);
        continue;
      }
      // Cross-leaf: one equal-cost candidate per spine, each a strict
      // up/down path — uplink from the source leaf to a spine, downlink
      // from that spine to the destination leaf, egress to the node.
      ASSERT_EQ(static_cast<int>(routes.size()), t.num_spines());
      std::set<int> spines_used;
      for (const Route& r : routes) {
        ASSERT_EQ(r.hops(), 3);
        ASSERT_EQ(r.switches.size(), 3u);
        const int spine = t.link_to(r.links[0]);
        EXPECT_GE(spine, t.num_leaves());
        EXPECT_LT(spine, t.num_switches());
        EXPECT_EQ(t.link_from(r.links[0]), ls);
        EXPECT_EQ(t.link_from(r.links[1]), spine);
        EXPECT_EQ(t.link_to(r.links[1]), ld);
        EXPECT_EQ(t.link_from(r.links[2]), ld);
        EXPECT_EQ(t.link_to(r.links[2]), -1);
        // switches[i] is the switch links[i] departs from.
        EXPECT_EQ(r.switches[0], ls);
        EXPECT_EQ(r.switches[1], spine);
        EXPECT_EQ(r.switches[2], ld);
        spines_used.insert(spine);
      }
      // The candidates cover every spine exactly once (full ECMP width).
      EXPECT_EQ(static_cast<int>(spines_used.size()), t.num_spines());
    }
  }
}

TEST(FatTree, SingleLeafHasNoSpines) {
  Topology t(4, fat_tree(4));
  EXPECT_EQ(t.num_leaves(), 1);
  EXPECT_EQ(t.num_spines(), 0);
  // All traffic is same-leaf: one egress hop per pair.
  EXPECT_EQ(t.paths(0, 3).size(), 1u);
  EXPECT_EQ(t.paths(0, 3)[0].hops(), 1);
}

// -- Torus conformance ---------------------------------------------------

TEST(Torus, AutoDimensionsNearCubic) {
  Topology t8(8, torus());
  EXPECT_EQ(t8.torus_dims(), (std::array<int, 3>{2, 2, 2}));
  Topology t27(27, torus());
  EXPECT_EQ(t27.torus_dims(), (std::array<int, 3>{3, 3, 3}));
}

TEST(Torus, ShortestPaths) {
  const int nodes = 27;  // 3x3x3: every dimension can wrap
  Topology t(nodes, torus());
  for (int src = 0; src < nodes; ++src) {
    for (int dst = 0; dst < nodes; ++dst) {
      const std::vector<Route>& routes = t.paths(src, dst);
      ASSERT_GE(routes.size(), 1u);
      const int d = t.torus_distance(src, dst);
      if (src == dst) {
        EXPECT_EQ(d, 0);
        continue;
      }
      for (const Route& r : routes) {
        // Minimal: every candidate's hop count equals the wraparound-aware
        // distance, and the walk never revisits a router.
        EXPECT_EQ(r.hops(), d) << src << "->" << dst;
        std::set<int> seen(r.switches.begin(), r.switches.end());
        EXPECT_EQ(seen.size(), r.switches.size());
      }
    }
  }
}

TEST(Torus, WraparoundTakesShorterDirection) {
  // 4x1x1 ring: 0 -> 3 is one wraparound hop, not three forward hops.
  Topology t(4, torus(4, 1, 1));
  EXPECT_EQ(t.torus_distance(0, 3), 1);
  EXPECT_EQ(t.torus_distance(0, 2), 2);  // tie: either way is two hops
  const std::vector<Route>& r = t.paths(0, 3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].hops(), 1);
  // On 3x3x3, (0,0,0) -> (2,0,0) wraps backwards in x: one hop.
  Topology t27(27, torus());
  const int far_x = 2 * 3 * 3;  // coords (2, 0, 0)
  EXPECT_EQ(t27.torus_coords(far_x), (std::array<int, 3>{2, 0, 0}));
  EXPECT_EQ(t27.torus_distance(0, far_x), 1);
  EXPECT_EQ(t27.paths(0, far_x)[0].hops(), 1);
}

TEST(Torus, DiagonalPairHasMultipleCandidates) {
  // (0,0,0) -> (1,1,1) on 2x2x2: distance 3, all 6 dimension orders give
  // distinct link sequences.
  Topology t(8, torus());
  EXPECT_EQ(t.torus_distance(0, 7), 3);
  EXPECT_EQ(t.paths(0, 7).size(), 6u);
}

// -- Deterministic route selection ---------------------------------------

TEST(Router, EcmpReplaysAcrossInstances) {
  // ECMP is a pure hash of (salt, src, dst, mux_seq): two independently
  // built topology/router pairs make identical choices for every message.
  TopoConfig tc = fat_tree(4);
  tc.ecmp_seed = 0x7071;
  Topology t1(8, tc), t2(8, tc);
  net::Router r1(t1), r2(t2);
  for (int src = 0; src < 8; ++src) {
    for (int dst = 0; dst < 8; ++dst) {
      for (std::uint64_t msg = 1; msg <= 64; ++msg) {
        ASSERT_EQ(r1.select(src, dst, msg, nullptr),
                  r2.select(src, dst, msg, nullptr));
      }
    }
  }
}

TEST(Router, EcmpSaltChangesSpread) {
  TopoConfig a = fat_tree(4);
  TopoConfig b = fat_tree(4);
  b.ecmp_seed = 0xdecaf;
  Topology ta(8, a), tb(8, b);
  net::Router ra(ta), rb(tb);
  int differ = 0, spread = 0;
  std::set<int> chosen;
  for (std::uint64_t msg = 1; msg <= 256; ++msg) {
    const int pa = ra.select(0, 4, msg, nullptr);
    if (pa != rb.select(0, 4, msg, nullptr)) ++differ;
    chosen.insert(pa);
  }
  spread = static_cast<int>(chosen.size());
  EXPECT_GT(differ, 0);           // the salt is actually folded in
  EXPECT_EQ(spread, 4);           // the hash reaches every spine
}

TEST(Router, AdaptiveRotatesThroughAllCandidates) {
  // Without a kRoute perturbation, adaptive mode walks the candidates from
  // the ECMP base using sender-local rotation: any 4 consecutive messages
  // of one pair cover all 4 spines.
  TopoConfig tc = fat_tree(4);
  tc.route = RouteMode::kAdaptive;
  Topology t(8, tc);
  net::Router r(t);
  std::set<int> chosen;
  for (std::uint64_t msg = 1; msg <= 4; ++msg) {
    chosen.insert(r.select(0, 4, msg, nullptr));
  }
  EXPECT_EQ(chosen.size(), 4u);
}

// -- Rail mux ------------------------------------------------------------

TEST(RailMux, ResequencerRestoresOrderUnderReorder) {
  // Artificially reordered per-rail arrivals: the mux must release strict
  // 1, 2, 3, ... regardless of the offer order.
  net::Resequencer<int> rs;
  std::vector<int> out;
  rs.offer(3, 103, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(rs.buffered(), 1u);
  rs.offer(1, 101, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 101);
  out.clear();
  rs.offer(2, 102, out);  // closes the gap: releases 2 and the buffered 3
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 102);
  EXPECT_EQ(out[1], 103);
  EXPECT_EQ(rs.released(), 3u);
  EXPECT_EQ(rs.buffered(), 0u);
  out.clear();
  rs.offer(6, 106, out);
  rs.offer(5, 105, out);
  EXPECT_TRUE(out.empty());
  rs.offer(4, 104, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 106);
}

TEST(RailMux, StripingIsRoundRobin) {
  net::RailScheduler sched(3);
  EXPECT_EQ(sched.pick(1), 0);
  EXPECT_EQ(sched.pick(2), 1);
  EXPECT_EQ(sched.pick(3), 2);
  EXPECT_EQ(sched.pick(4), 0);
}

// -- End-to-end fabric runs ----------------------------------------------
//
// Synthetic all-to-all bursts straight into a Fabric (the
// fault_injection_test harness, topology-parameterized): payloads carry the
// per-pair ordinal so exactly-once in-order delivery is checkable end to
// end, the full oracle suite rides along, and the delivery transcript is
// byte-comparable across executor configurations.

struct TopoRun {
  std::string transcript;  // every delivery, in pop order
  std::string violations;  // oracle report lines ("" == clean)
  std::uint64_t delivered = 0;
  bool in_order = true;
  double end_time = 0.0;
};

TopoRun drive_topology(const TopoConfig& tc, int nodes, int bursts,
                       int exec_groups, int exec_threads,
                       std::uint64_t perturb_seed = 0) {
  TopoRun out;
  sim::Simulation sim;
  // Shard layout is part of the logical schedule (one shard per node, as
  // Cluster configures it); the executor knobs must never change results.
  sim.configure_shards(nodes);
  sim.set_executor(exec_groups, exec_threads);
  if (perturb_seed != 0) {
    sim.set_perturbation(perturb_seed, sim::Perturbation::kAllClasses);
  }
  InvariantObserver obs;
  sim.set_invariant_observer(&obs);
  sim::NetConfig nc;
  nc.topo = tc;
  net::Fabric fabric(sim, nodes, nc);
  EXPECT_TRUE(fabric.topology_active());
  for (int b = 0; b < bursts; ++b) {
    for (int s = 0; s < nodes; ++s) {
      // Injections run in the source node's shard, like real senders.
      sim.schedule_on(sim.shard_for(s), sim::micros(2.0 * b),
                      [&fabric, nodes, s, b]() {
        for (int d = 0; d < nodes; ++d) {
          if (s == d) continue;
          net::Packet p;
          p.src = s;
          p.dst = d;
          // Mixed sizes: consecutive messages of a pair land on different
          // rails with very different serialization times, so the mux
          // actually has cross-rail skew to undo.
          p.bytes = b % 3 == 0 ? 16384.0 : 128.0;
          p.payload = std::uint64_t(b);
          p.channel = b % 2 == 0 ? net::kMpiChannel : net::kRuntimeChannel;
          fabric.send(std::move(p),
                      std::numeric_limits<sim::Rate>::infinity());
        }
      });
    }
  }
  sim.run();
  out.end_time = sim.now();
  std::ostringstream ts;
  for (int d = 0; d < nodes; ++d) {
    for (int ch = 0; ch < net::kNumChannels; ++ch) {
      std::vector<std::uint64_t> last(static_cast<size_t>(nodes), 0);
      std::vector<bool> seen(static_cast<size_t>(nodes), false);
      while (auto p = fabric.rx(d, ch).try_pop()) {
        ++out.delivered;
        const auto ord = std::any_cast<std::uint64_t>(p->payload);
        ts << p->src << ">" << d << "/" << ch << ":" << ord << "\n";
        const auto s = static_cast<size_t>(p->src);
        if (seen[s] && ord <= last[s]) out.in_order = false;
        seen[s] = true;
        last[s] = ord;
      }
    }
  }
  out.transcript = ts.str();
  obs.finalize();
  for (const std::string& v : obs.violations()) out.violations += v + "\n";
  return out;
}

TEST(TopologyEndToEnd, FatTreeDeliversExactlyOnceInOrder) {
  TopoConfig tc = fat_tree(4);
  tc.rails = 2;
  TopoRun r = drive_topology(tc, 8, 40, /*groups=*/0, /*threads=*/1);
  EXPECT_EQ(r.delivered, 8u * 7u * 40u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(TopologyEndToEnd, TorusDeliversExactlyOnceInOrder) {
  TopoRun r = drive_topology(torus(), 8, 40, 0, 1);
  EXPECT_EQ(r.delivered, 8u * 7u * 40u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(TopologyEndToEnd, FlatMultiRailDeliversExactlyOnceInOrder) {
  TopoConfig tc;  // flat kind, but 2 rails activates the striping path
  tc.rails = 2;
  TopoRun r = drive_topology(tc, 4, 60, 0, 1);
  EXPECT_EQ(r.delivered, 4u * 3u * 60u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(TopologyEndToEnd, AdaptiveRoutingStaysInOrder) {
  TopoConfig tc = fat_tree(4);
  tc.rails = 2;
  tc.route = RouteMode::kAdaptive;
  // Seeded perturbation: adaptive selection draws from the kRoute stream
  // and jitter from kLinkJitter — the mux must still restore order.
  TopoRun r = drive_topology(tc, 8, 40, 0, 1, /*perturb_seed=*/0x70707);
  EXPECT_EQ(r.delivered, 8u * 7u * 40u);
  EXPECT_TRUE(r.in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(TopologyEndToEnd, ExecutorInvariance) {
  // Byte-identical delivery transcripts under the serial executor, the
  // 4-group/2-thread executor, and the one-group-per-shard max-parallel
  // executor — on a multi-hop multi-rail topology where cross-shard hop
  // events actually exercise the conservative windows.
  TopoConfig tc = fat_tree(4);
  tc.rails = 2;
  TopoRun serial = drive_topology(tc, 8, 30, 0, 1);
  TopoRun grouped = drive_topology(tc, 8, 30, 4, 2);
  TopoRun wide = drive_topology(tc, 8, 30, 0, 4);
  EXPECT_EQ(serial.transcript, grouped.transcript);
  EXPECT_EQ(serial.transcript, wide.transcript);
  EXPECT_EQ(serial.end_time, grouped.end_time);
  EXPECT_EQ(serial.end_time, wide.end_time);
  EXPECT_EQ(serial.violations, "");
  EXPECT_EQ(grouped.violations, "");
  EXPECT_EQ(wide.violations, "");
}

TEST(TopologyEndToEnd, TorusExecutorInvariance) {
  TopoRun serial = drive_topology(torus(), 8, 30, 0, 1);
  TopoRun par = drive_topology(torus(), 8, 30, 4, 2);
  EXPECT_EQ(serial.transcript, par.transcript);
  EXPECT_EQ(serial.end_time, par.end_time);
  EXPECT_EQ(par.violations, "");
}

// -- Mutation checks (docs/TESTING.md) -----------------------------------

TEST(TopologyMutation, DisabledResequencerFailsFifoOracle) {
  // Knock out the rail mux: mixed-size messages striped across 2 rails
  // arrive with cross-rail skew (a 16 kB packet serializes ~128x longer
  // than its 128 B successor on the other rail), so mux sequences reach
  // the mailbox out of order and the FIFO/non-overtaking oracle must fire.
  TopoConfig tc = fat_tree(4);
  tc.rails = 2;
  tc.resequence = false;
  TopoRun r = drive_topology(tc, 8, 40, 0, 1);
  EXPECT_NE(r.violations.find("fabric non-overtaking violated"),
            std::string::npos)
      << "resequencer mutation went undetected:\n" << r.violations;
  EXPECT_FALSE(r.in_order);  // visible end to end, not just to the oracle
}

// Latent-assumption audit (docs/TESTING.md): the torus fit near_cubic_dims
// intentionally overshoots (it pads non-cubic counts with hole routers), so
// it must never be used where a rank bijection is required — that is what
// exact_grid_dims is for. These regressions pin both contracts so one is
// not "simplified" into the other.
TEST(TopologyGridDims, ExactGridDimsIsABijectionForEveryCount) {
  for (int n = 1; n <= 64; ++n) {
    const std::array<int, 3> d = net::exact_grid_dims(n);
    EXPECT_EQ(d[0] * d[1] * d[2], n) << "n=" << n;      // exact, no padding
    EXPECT_TRUE(d[0] >= d[1] && d[1] >= d[2]) << "n=" << n;
    EXPECT_GE(d[2], 1) << "n=" << n;
  }
  // Primes degenerate to the 1-D chain; perfect cubes come out cubic.
  EXPECT_EQ(net::exact_grid_dims(13), (std::array<int, 3>{13, 1, 1}));
  EXPECT_EQ(net::exact_grid_dims(27), (std::array<int, 3>{3, 3, 3}));
  EXPECT_EQ(net::exact_grid_dims(24), (std::array<int, 3>{4, 3, 2}));
}

TEST(TopologyGridDims, NearCubicDimsOvershootsButStaysMinimal) {
  for (int n = 1; n <= 64; ++n) {
    const std::array<int, 3> d = net::near_cubic_dims(n);
    EXPECT_GE(d[0] * d[1] * d[2], n) << "n=" << n;  // covers every node
    // Minimality along the fitting order: shrinking the last-fit dimension
    // must fall below n (otherwise the torus wastes a whole router plane).
    EXPECT_LT(d[0] * d[1] * (d[2] - 1), n) << "n=" << n;
  }
  // The documented counterexample: 5 nodes pad to a 2 x 2 x 2 torus with
  // 3 hole routers — a rank grid built on this would lose 3 ranks.
  EXPECT_EQ(net::near_cubic_dims(5), (std::array<int, 3>{2, 2, 2}));
}

TEST(TopologyMutation, UncountedLinkCapacityFailsConservationOracle) {
  // Knock out shared-link bandwidth accounting: every packet pretends the
  // link is idle, so concurrent cross-leaf bursts overlap on the shared
  // uplinks/egress links and the capacity-conservation oracle must fire.
  TopoConfig tc = fat_tree(4);
  tc.resequence = true;
  tc.account_capacity = false;
  TopoRun r = drive_topology(tc, 8, 40, 0, 1);
  EXPECT_NE(r.violations.find("link capacity conservation violated"),
            std::string::npos)
      << "capacity mutation went undetected:\n" << r.violations;
}

}  // namespace
}  // namespace dcuda
