// Tests for the MPI-like host communication layer: matching semantics,
// eager vs rendezvous, wildcards, ordering, collectives, CUDA-aware paths.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "gpu/device.h"
#include "mpi/mpi.h"
#include "net/fabric.h"
#include "sim/simulation.h"
#include "sim/units.h"

namespace dcuda::mpi {
namespace {

using gpu::mem_ref;
using sim::micros;
using sim::Proc;
using sim::Simulation;

struct Harness {
  explicit Harness(int nodes, sim::MpiConfig cfg = {})
      : fabric(s, nodes, net_cfg()), world(s, fabric, cfg, {}) {}
  static sim::NetConfig net_cfg() {
    sim::NetConfig c;
    c.bandwidth = sim::gbs(6.0);
    c.latency = micros(1.4);
    c.sw_overhead = micros(0.3);
    return c;
  }
  Simulation s;
  net::Fabric fabric;
  World world;
};

TEST(Mpi, SmallMessageRoundTrip) {
  Harness h(2);
  std::vector<int> src{1, 2, 3, 4}, dst(4, 0);
  auto sender = [&]() -> Proc<void> {
    co_await h.world.at(0).send(1, 7, mem_ref(std::span<int>(src)));
  };
  auto receiver = [&]() -> Proc<void> {
    co_await h.world.at(1).recv(0, 7, mem_ref(std::span<int>(dst)));
  };
  h.s.spawn(sender(), "tx");
  h.s.spawn(receiver(), "rx");
  h.s.run();
  EXPECT_EQ(dst, src);
}

TEST(Mpi, RecvBeforeSendMatches) {
  Harness h(2);
  std::vector<double> src{3.14}, dst{0.0};
  auto receiver = [&]() -> Proc<void> {
    co_await h.world.at(1).recv(0, 1, mem_ref(std::span<double>(dst)));
    EXPECT_DOUBLE_EQ(dst[0], 3.14);
  };
  auto sender = [&]() -> Proc<void> {
    co_await h.s.delay(micros(50));
    co_await h.world.at(0).send(1, 1, mem_ref(std::span<double>(src)));
  };
  h.s.spawn(receiver(), "rx");
  h.s.spawn(sender(), "tx");
  h.s.run();
  EXPECT_DOUBLE_EQ(dst[0], 3.14);
}

TEST(Mpi, UnexpectedEagerMessageBuffered) {
  Harness h(2);
  std::vector<int> src{42}, dst{0};
  auto sender = [&]() -> Proc<void> {
    co_await h.world.at(0).send(1, 5, mem_ref(std::span<int>(src)));
  };
  auto receiver = [&]() -> Proc<void> {
    co_await h.s.delay(micros(100));  // message arrives long before the recv
    co_await h.world.at(1).recv(0, 5, mem_ref(std::span<int>(dst)));
  };
  h.s.spawn(sender(), "tx");
  h.s.spawn(receiver(), "rx");
  h.s.run();
  EXPECT_EQ(dst[0], 42);
}

TEST(Mpi, TagsSeparateMessageStreams) {
  Harness h(2);
  std::vector<int> a{1}, b{2}, ra{0}, rb{0};
  auto sender = [&]() -> Proc<void> {
    co_await h.world.at(0).send(1, /*tag=*/20, mem_ref(std::span<int>(b)));
    co_await h.world.at(0).send(1, /*tag=*/10, mem_ref(std::span<int>(a)));
  };
  auto receiver = [&]() -> Proc<void> {
    // Posted in the opposite tag order; matching must respect tags.
    Request r1 = h.world.at(1).irecv(0, 10, mem_ref(std::span<int>(ra)));
    Request r2 = h.world.at(1).irecv(0, 20, mem_ref(std::span<int>(rb)));
    co_await r1.wait();
    co_await r2.wait();
  };
  h.s.spawn(sender(), "tx");
  h.s.spawn(receiver(), "rx");
  h.s.run();
  EXPECT_EQ(ra[0], 1);
  EXPECT_EQ(rb[0], 2);
}

TEST(Mpi, AnySourceWildcardReportsSender) {
  Harness h(3);
  std::vector<int> one{11}, two{22};
  std::vector<int> got(2, 0);
  auto tx1 = [&]() -> Proc<void> {
    co_await h.world.at(1).send(0, 3, mem_ref(std::span<int>(one)));
  };
  auto tx2 = [&]() -> Proc<void> {
    co_await h.s.delay(micros(20));
    co_await h.world.at(2).send(0, 3, mem_ref(std::span<int>(two)));
  };
  std::vector<int> sources;
  auto rx = [&]() -> Proc<void> {
    for (int i = 0; i < 2; ++i) {
      std::span<int> slot(&got[static_cast<size_t>(i)], 1);
      Request r = h.world.at(0).irecv(kAnySource, 3, mem_ref(slot));
      co_await r.wait();
      sources.push_back(r.source());
    }
  };
  h.s.spawn(tx1(), "tx1");
  h.s.spawn(tx2(), "tx2");
  h.s.spawn(rx(), "rx");
  h.s.run();
  EXPECT_EQ(got[0], 11);
  EXPECT_EQ(got[1], 22);
  EXPECT_EQ(sources, (std::vector<int>{1, 2}));
}

TEST(Mpi, AnyTagWildcardMatches) {
  Harness h(2);
  std::vector<int> src{9}, dst{0};
  auto tx = [&]() -> Proc<void> {
    co_await h.world.at(0).send(1, 1234, mem_ref(std::span<int>(src)));
  };
  auto rx = [&]() -> Proc<void> {
    Request r = h.world.at(1).irecv(0, kAnyTag, mem_ref(std::span<int>(dst)));
    co_await r.wait();
    EXPECT_EQ(r.tag(), 1234);
  };
  h.s.spawn(tx(), "tx");
  h.s.spawn(rx(), "rx");
  h.s.run();
  EXPECT_EQ(dst[0], 9);
}

TEST(Mpi, NonOvertakingSameSourceTag) {
  Harness h(2);
  const int n = 16;
  std::vector<std::vector<int>> bufs(n, std::vector<int>(1));
  std::vector<int> got;
  auto tx = [&]() -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      bufs[static_cast<size_t>(i)][0] = i;
      co_await h.world.at(0).send(1, 0, mem_ref(std::span<int>(bufs[static_cast<size_t>(i)])));
    }
  };
  auto rx = [&]() -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      std::vector<int> d{-1};
      co_await h.world.at(1).recv(0, 0, mem_ref(std::span<int>(d)));
      got.push_back(d[0]);
    }
  };
  h.s.spawn(tx(), "tx");
  h.s.spawn(rx(), "rx");
  h.s.run();
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(Mpi, LargeMessageUsesRendezvous) {
  Harness h(2);
  const size_t n = 1 << 20;  // 4 MB of ints: above eager limit
  std::vector<int> src(n), dst(n, 0);
  std::iota(src.begin(), src.end(), 0);
  auto tx = [&]() -> Proc<void> {
    co_await h.world.at(0).send(1, 0, mem_ref(std::span<int>(src)));
  };
  auto rx = [&]() -> Proc<void> {
    co_await h.world.at(1).recv(0, 0, mem_ref(std::span<int>(dst)));
  };
  h.s.spawn(tx(), "tx");
  h.s.spawn(rx(), "rx");
  h.s.run();
  EXPECT_EQ(dst, src);
  // 4 MB at 6 GB/s ~ 700us; rendezvous adds a few us handshake.
  EXPECT_GT(h.s.now(), micros(650));
  EXPECT_LT(h.s.now(), micros(850));
}

TEST(Mpi, SelfSendDelivers) {
  Harness h(2);
  std::vector<int> src{5}, dst{0};
  auto p = [&]() -> Proc<void> {
    Request r = h.world.at(0).irecv(0, 1, mem_ref(std::span<int>(dst)));
    co_await h.world.at(0).send(0, 1, mem_ref(std::span<int>(src)));
    co_await r.wait();
  };
  h.s.spawn(p(), "p");
  h.s.run();
  EXPECT_EQ(dst[0], 5);
}

// NOTE: coroutine lambdas spawned from inside a loop must not capture — the
// closure dies at the end of the iteration while the coroutine lives on.
// Helper coroutines take everything as parameters instead.
Proc<void> barrier_entrant(Harness& h, int r, std::vector<sim::Time>& after) {
  co_await h.s.delay(micros(25.0 * r));  // staggered entry
  co_await h.world.at(r).barrier();
  after[static_cast<size_t>(r)] = h.s.now();
}

TEST(Mpi, BarrierSynchronizesAllRanks) {
  Harness h(4);
  std::vector<sim::Time> after(4, -1.0);
  for (int r = 0; r < 4; ++r) {
    h.s.spawn(barrier_entrant(h, r, after), "rank" + std::to_string(r));
  }
  h.s.run();
  // No rank leaves before the last entered (rank 3 at 75us).
  for (auto t : after) EXPECT_GE(t, micros(75));
}

Proc<void> repeated_barriers(Harness& h, int r, std::vector<int>& counters) {
  for (int it = 0; it < 5; ++it) {
    co_await h.s.delay(micros(1.0 + r));
    co_await h.world.at(r).barrier();
    ++counters[static_cast<size_t>(r)];
    // All ranks must have completed the same number of barriers (+-1).
    EXPECT_LE(std::abs(counters[0] - counters[static_cast<size_t>(r)]), 1);
  }
}

TEST(Mpi, RepeatedBarriersStayConsistent) {
  Harness h(3);
  std::vector<int> counters(3, 0);
  for (int r = 0; r < 3; ++r) {
    h.s.spawn(repeated_barriers(h, r, counters), "rank" + std::to_string(r));
  }
  h.s.run();
  EXPECT_EQ(counters, (std::vector<int>{5, 5, 5}));
}

TEST(Mpi, WaitAllCompletesEverything) {
  Harness h(2);
  const int n = 8;
  std::vector<std::vector<int>> src(n, std::vector<int>(1));
  std::vector<std::vector<int>> dst(n, std::vector<int>(1, -1));
  auto tx = [&]() -> Proc<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < n; ++i) {
      src[static_cast<size_t>(i)][0] = i * 3;
      reqs.push_back(h.world.at(0).isend(1, i, mem_ref(std::span<int>(src[static_cast<size_t>(i)]))));
    }
    co_await wait_all(std::move(reqs));
  };
  auto rx = [&]() -> Proc<void> {
    std::vector<Request> reqs;
    for (int i = 0; i < n; ++i) {
      reqs.push_back(h.world.at(1).irecv(0, i, mem_ref(std::span<int>(dst[static_cast<size_t>(i)]))));
    }
    co_await wait_all(std::move(reqs));
  };
  h.s.spawn(tx(), "tx");
  h.s.spawn(rx(), "rx");
  h.s.run();
  for (int i = 0; i < n; ++i) EXPECT_EQ(dst[static_cast<size_t>(i)][0], i * 3);
}

// CUDA-aware paths: device buffers, staging threshold behaviour.

struct DeviceHarness {
  explicit DeviceHarness(sim::MpiConfig cfg = {}) : fabric(s, 2, Harness::net_cfg()) {
    sim::PcieConfig pc;
    for (int i = 0; i < 2; ++i) {
      links.push_back(std::make_unique<pcie::PcieLink>(s, pc));
      devs.push_back(std::make_unique<gpu::Device>(s, i, sim::DeviceConfig{},
                                                   links.back().get()));
    }
    world = std::make_unique<World>(s, fabric, cfg,
                                    std::vector<gpu::Device*>{devs[0].get(), devs[1].get()});
  }
  Simulation s;
  net::Fabric fabric;
  std::vector<std::unique_ptr<pcie::PcieLink>> links;
  std::vector<std::unique_ptr<gpu::Device>> devs;
  std::unique_ptr<World> world;
};

TEST(MpiCudaAware, SmallDeviceMessageGoesDirect) {
  DeviceHarness h;
  auto src = h.devs[0]->alloc<int>(256);  // 1 kB: below staging threshold
  auto dst = h.devs[1]->alloc<int>(256);
  for (size_t i = 0; i < 256; ++i) src[i] = static_cast<int>(i);
  auto tx = [&]() -> Proc<void> {
    co_await h.world->at(0).send(1, 0, h.devs[0]->ref(src));
  };
  auto rx = [&]() -> Proc<void> {
    co_await h.world->at(1).recv(0, 0, h.devs[1]->ref(dst));
  };
  h.s.spawn(tx(), "tx");
  h.s.spawn(rx(), "rx");
  h.s.run();
  EXPECT_EQ(dst[100], 100);
  EXPECT_EQ(h.world->at(0).staged_transfers(), 0u);
  EXPECT_EQ(h.world->at(0).direct_device_transfers(), 1u);
}

TEST(MpiCudaAware, LargeDeviceMessageStagesThroughHost) {
  DeviceHarness h;
  const size_t n = 64 * 1024;  // 256 kB: above 20 kB threshold
  auto src = h.devs[0]->alloc<int>(n);
  auto dst = h.devs[1]->alloc<int>(n);
  for (size_t i = 0; i < n; ++i) src[i] = static_cast<int>(i * 7);
  auto tx = [&]() -> Proc<void> {
    co_await h.world->at(0).send(1, 0, h.devs[0]->ref(src));
  };
  auto rx = [&]() -> Proc<void> {
    co_await h.world->at(1).recv(0, 0, h.devs[1]->ref(dst));
  };
  h.s.spawn(tx(), "tx");
  h.s.spawn(rx(), "rx");
  h.s.run();
  EXPECT_EQ(dst[12345], 12345 * 7);
  EXPECT_EQ(h.world->at(0).staged_transfers(), 1u);
  // PCIe saw DMA traffic on both sides.
  EXPECT_GT(h.links[0]->bytes_transferred(pcie::Dir::kDeviceToHost), 2e5);
  EXPECT_GT(h.links[1]->bytes_transferred(pcie::Dir::kHostToDevice), 2e5);
}

TEST(Mpi, ConcurrentRendezvousFromDifferentSenders) {
  // Regression: message ids are only unique per sender; two simultaneous
  // rendezvous transfers from different sources to one receiver used to
  // collide in the in-flight table.
  Harness h(3);
  const size_t n = 16 * 1024;  // above eager limit
  std::vector<int> a(n, 1), b(n, 2), ra(n, 0), rb(n, 0);
  auto tx1 = [&]() -> Proc<void> {
    co_await h.world.at(1).send(0, 1, mem_ref(std::span<int>(a)));
  };
  auto tx2 = [&]() -> Proc<void> {
    co_await h.world.at(2).send(0, 2, mem_ref(std::span<int>(b)));
  };
  auto rx = [&]() -> Proc<void> {
    Request r1 = h.world.at(0).irecv(1, 1, mem_ref(std::span<int>(ra)));
    Request r2 = h.world.at(0).irecv(2, 2, mem_ref(std::span<int>(rb)));
    co_await r1.wait();
    co_await r2.wait();
  };
  h.s.spawn(tx1(), "tx1");
  h.s.spawn(tx2(), "tx2");
  h.s.spawn(rx(), "rx");
  h.s.run();
  EXPECT_EQ(ra[n - 1], 1);
  EXPECT_EQ(rb[n - 1], 2);
}

TEST(MpiCudaAware, StagedBeatsDirectForLargeMessages) {
  // The effect behind the paper's stencil observation: host-staged transfers
  // achieve higher bandwidth than GPUDirect for large messages on Kepler.
  auto timed_transfer = [](bool force_direct) {
    sim::MpiConfig cfg;
    if (force_direct) cfg.device_staging_threshold = 1u << 30;
    DeviceHarness h(cfg);
    const size_t n = 1 << 20;  // 4 MB
    auto src = h.devs[0]->alloc<int>(n);
    auto dst = h.devs[1]->alloc<int>(n);
    auto tx = [&]() -> Proc<void> {
      co_await h.world->at(0).send(1, 0, h.devs[0]->ref(src));
    };
    auto rx = [&]() -> Proc<void> {
      co_await h.world->at(1).recv(0, 0, h.devs[1]->ref(dst));
    };
    h.s.spawn(tx(), "tx");
    h.s.spawn(rx(), "rx");
    h.s.run();
    return h.s.now();
  };
  const double staged = timed_transfer(false);
  const double direct = timed_transfer(true);
  EXPECT_LT(staged, direct);
  // Direct path is capped at ~3.2 GB/s vs ~6 GB/s staged: expect >1.5x.
  EXPECT_GT(direct / staged, 1.5);
}

}  // namespace
}  // namespace dcuda::mpi
