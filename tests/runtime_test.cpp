// Tests for host-runtime internals: flush-id tracking, window registries,
// queue plumbing, command ordering, mixed collectives, and host-loop vs
// device-initiated backend parity (docs/BACKENDS.md).

#include <gtest/gtest.h>

#include <cmath>

#include "apps/particles.h"
#include "apps/spmv.h"
#include "apps/stencil.h"
#include "cluster/cluster.h"
#include "sim/invariants.h"
#include "sim/units.h"

namespace dcuda {
namespace {

using sim::micros;
using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

TEST(RuntimeFlush, OutOfOrderCompletionAdvancesContiguously) {
  // Issue one small and one large put; the small one (to a near target)
  // can complete first, but the flush frontier must only advance once the
  // earlier-issued large transfer is done too.
  Cluster c({.machine = machine(3), .ranks_per_device = 1});
  auto src = c.device(0).alloc<std::byte>(512 * 1024);
  auto big = c.device(1).alloc<std::byte>(512 * 1024);
  auto small = c.device(2).alloc<std::byte>(64);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, ctx.world_rank == 0 ? src
                                   : ctx.world_rank == 1 ? big
                                                         : small);
    if (ctx.world_rank == 0) {
      // Large rendezvous transfer first (slow), tiny eager one second.
      co_await put(ctx, w, 1, 0, 512 * 1024, src.data());
      co_await put(ctx, w, 2, 0, 64, src.data());
      const auto t0 = ctx.sim().now();
      co_await flush(ctx);
      // Flush must cover the large transfer: at 6 GB/s, 512 kB needs >80us.
      EXPECT_GT(ctx.sim().now() - t0, micros(40));
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

TEST(RuntimeFlush, WinFlushIsWindowScoped) {
  // A window with no pending operations flushes immediately even while
  // another window still has a large transfer in flight.
  Cluster c({.machine = machine(2), .ranks_per_device = 1});
  auto big_src = c.device(0).alloc<std::byte>(1024 * 1024);
  auto big_dst = c.device(1).alloc<std::byte>(1024 * 1024);
  auto small = c.device(1).alloc<std::byte>(64);
  c.run([&](Context& ctx) -> Proc<void> {
    Window wbig = co_await win_create(ctx, kCommWorld,
                                      ctx.world_rank == 0 ? big_src : big_dst);
    Window wsmall = co_await win_create(
        ctx, kCommWorld, ctx.world_rank == 0 ? big_src.subspan(0, 64) : small);
    if (ctx.world_rank == 0) {
      co_await put(ctx, wbig, 1, 0, 1024 * 1024, big_src.data());
      const auto t0 = ctx.sim().now();
      co_await win_flush(ctx, wsmall);  // nothing pending on wsmall
      EXPECT_LT(ctx.sim().now() - t0, micros(1));
      co_await win_flush(ctx, wbig);  // must cover the 1 MB transfer
      EXPECT_GT(ctx.sim().now() - t0, micros(100));
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, wsmall);
    co_await win_free(ctx, wbig);
  });
}

TEST(RuntimeFlush, FlushWithNoPendingOpsReturnsImmediately) {
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<std::byte>(64);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    const auto t0 = ctx.sim().now();
    co_await flush(ctx);
    EXPECT_DOUBLE_EQ(ctx.sim().now(), t0);
    co_await win_free(ctx, w);
  });
}

TEST(RuntimeWindows, ManyWindowsPerRank) {
  Cluster c({.machine = machine(2), .ranks_per_device = 2});
  std::vector<std::span<double>> bufs;
  for (int n = 0; n < 2; ++n)
    for (int r = 0; r < 2; ++r) bufs.push_back(c.device(n).alloc<double>(8));
  c.run([&](Context& ctx) -> Proc<void> {
    std::vector<Window> wins;
    for (int i = 0; i < 12; ++i) {
      wins.push_back(
          co_await win_create(ctx, kCommWorld, bufs[static_cast<size_t>(ctx.world_rank)]));
      EXPECT_EQ(wins.back().device_id, i);
    }
    // Use the last window for a round trip to prove the table holds up.
    const int peer = ctx.world_rank ^ 1;
    double v = 1.5 + ctx.world_rank;
    co_await put_notify(ctx, wins.back(), peer, 0, sizeof(double), &v, 0);
    co_await wait_notifications(ctx, wins.back(), kAnySource, 0, 1);
    EXPECT_DOUBLE_EQ(bufs[static_cast<size_t>(ctx.world_rank)][0], 1.5 + peer);
    for (auto& w : wins) co_await win_free(ctx, w);
  });
}

TEST(RuntimeWindows, WindowIdsReusableAfterFree) {
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<double>(16);
  c.run([&](Context& ctx) -> Proc<void> {
    for (int round = 0; round < 3; ++round) {
      Window w = co_await win_create(ctx, kCommWorld, mem);
      const int peer = ctx.world_rank ^ 1;
      co_await put_notify(ctx, w, peer, 0, 0, nullptr, round);
      co_await wait_notifications(ctx, w, peer, round, 1);
      co_await win_free(ctx, w);
    }
  });
}

TEST(RuntimeOrdering, PutsFromOneRankArriveInOrder) {
  // Non-overtaking per (origin, target): sequence of puts to the same
  // target window region lands in issue order; the final value wins.
  Cluster c({.machine = machine(2), .ranks_per_device = 1});
  auto src = c.device(0).alloc<int>(64);
  auto dst = c.device(1).alloc<int>(64);
  c.run([&](Context& ctx) -> Proc<void> {
    auto buf = ctx.world_rank == 0 ? src : dst;
    Window w = co_await win_create(ctx, kCommWorld, buf);
    if (ctx.world_rank == 0) {
      for (int i = 1; i <= 20; ++i) {
        src[0] = i;
        co_await put(ctx, w, 1, 0, sizeof(int), &src[0]);
        co_await flush(ctx);  // pin the value before overwriting src
      }
      co_await put_notify(ctx, w, 1, 0, 0, nullptr, 1);
    } else {
      co_await wait_notifications(ctx, w, 0, 1, 1);
      EXPECT_EQ(dst[0], 20);
    }
    co_await win_free(ctx, w);
  });
}

TEST(RuntimeBarrier, MixedWorldAndDeviceBarriers) {
  Cluster c({.machine = machine(2), .ranks_per_device = 2});
  std::vector<int> phase(4, 0);
  c.run([&](Context& ctx) -> Proc<void> {
    co_await barrier(ctx, kCommDevice);
    phase[static_cast<size_t>(ctx.world_rank)] = 1;
    co_await barrier(ctx, kCommWorld);
    phase[static_cast<size_t>(ctx.world_rank)] = 2;
    co_await barrier(ctx, kCommDevice);
    co_await barrier(ctx, kCommWorld);
    phase[static_cast<size_t>(ctx.world_rank)] = 3;
  });
  for (int p : phase) EXPECT_EQ(p, 3);
}

TEST(RuntimeQueues, CommandQueueBackpressure) {
  // A rank that issues many commands back-to-back exceeds the 16-entry
  // command ring; the credit system must throttle without losing commands.
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<std::byte>(4096);
  int received = 0;
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 0) {
      for (int i = 0; i < 100; ++i) {
        co_await put_notify(ctx, w, 1, 0, 0, nullptr, 7);
      }
    } else {
      co_await wait_notifications(ctx, w, 0, 7, 100);
      received = 100;
    }
    co_await win_free(ctx, w);
  });
  EXPECT_EQ(received, 100);
}

TEST(RuntimeQueues, NotificationQueueOverflowThrottled) {
  // 100 notifications vs a 64-entry notification ring: the host-side
  // enqueue must block on credits until the device drains, not overwrite.
  sim::MachineConfig cfg = machine(1);
  cfg.runtime.notification_queue_entries = 8;
  Cluster c({.machine = cfg, .ranks_per_device = 2});
  auto mem = c.device(0).alloc<std::byte>(64);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 0) {
      for (int i = 0; i < 50; ++i) co_await put_notify(ctx, w, 1, 0, 0, nullptr, i);
    } else {
      co_await ctx.sim().delay(micros(400));  // let the ring fill up
      for (int i = 0; i < 50; ++i) {
        co_await wait_notifications(ctx, w, 0, i, 1);  // strict order check
      }
    }
    co_await win_free(ctx, w);
  });
}

TEST(RuntimeLog, ManyRanksLogConcurrently) {
  Cluster c({.machine = machine(1), .ranks_per_device = 8});
  c.run([&](Context& ctx) -> Proc<void> {
    co_await log(ctx, "value", ctx.world_rank * 10);
  });
  EXPECT_EQ(c.node(0).log_lines().size(), 8u);
}

TEST(RuntimeConfigs, HostWakeupLatencyAffectsPutLatency) {
  auto latency = [](double wakeup_us) {
    sim::MachineConfig cfg;
    cfg.num_nodes = 1;
    cfg.runtime.host_wakeup_latency = micros(wakeup_us);
    Cluster c({.machine = cfg, .ranks_per_device = 2});
    auto mem = c.device(0).alloc<std::byte>(64);
    c.run([&](Context& ctx) -> Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld, mem);
      for (int i = 0; i < 10; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, 1, 0, 0, nullptr, 0);
          co_await wait_notifications(ctx, w, 1, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, 0, 0, 1);
          co_await put_notify(ctx, w, 0, 0, 0, nullptr, 0);
        }
      }
      co_await win_free(ctx, w);
    });
    return c.sim().now();
  };
  EXPECT_LT(latency(0.5), latency(5.0));
}

TEST(RuntimeDeadlock, WaitForMissingNotificationIsDiagnosed) {
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<std::byte>(64);
  EXPECT_THROW(c.run([&](Context& ctx) -> Proc<void> {
                 Window w = co_await win_create(ctx, kCommWorld, mem);
                 // Nobody ever sends: classic lost-notification hang.
                 co_await wait_notifications(ctx, w, kAnySource, 99, 1);
                 co_await win_free(ctx, w);
               }),
               sim::DeadlockError);
}

TEST(RuntimeDeadlock, MixedHostAndDeviceRankDeadlockIsDiagnosed) {
  // Host rank waits for a device-rank notification that is never sent while
  // the device rank blocks in the barrier: a cross-processor deadlock (§V
  // host ranks share the RMA machinery) must be detected, not hang.
  Cluster c({.machine = machine(1), .ranks_per_device = 1, .host_ranks = 1});
  auto mem = c.device(0).alloc<std::byte>(64);
  std::vector<std::byte> host_mem(64);
  try {
    c.run([&](Context& ctx) -> Proc<void> {
      std::span<std::byte> mine =
          ctx.is_host_rank() ? std::span<std::byte>(host_mem)
                             : std::span<std::byte>(mem);
      Window w = co_await win_create(ctx, kCommWorld, mine);
      if (ctx.is_host_rank()) {
        co_await wait_notifications(ctx, w, 0, 7, 1);  // never sent
      }
      co_await barrier(ctx, kCommWorld);
      co_await win_free(ctx, w);
    });
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
        << e.what();
  }
}

TEST(RuntimeDeadlock, OneBlockPastResidencyLimitIsDiagnosed) {
  // The paper requires all blocks of the kernel to be co-resident (208 on
  // the K80 at the launch configuration). One block more and a global
  // barrier can never complete: the 208 resident blocks wait for rank 208,
  // which cannot start until an SM slot frees. The engine must turn this
  // into a DeadlockError naming a stuck rank, not a silent hang.
  Cluster c({.machine = machine(1), .ranks_per_device = 209});
  try {
    c.run([&](Context& ctx) -> Proc<void> {
      co_await barrier(ctx, kCommWorld);
    });
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("deadlock"), std::string::npos) << what;
    // The diagnostic names at least one blocked rank process.
    EXPECT_NE(what.find("blocked"), std::string::npos) << what;
  }
}

TEST(RuntimeDeadlock, ExactResidencyLimitStillCompletes) {
  // The companion positive case: exactly 208 blocks barrier fine.
  Cluster c({.machine = machine(1), .ranks_per_device = 208});
  EXPECT_NO_THROW(c.run([&](Context& ctx) -> Proc<void> {
    co_await barrier(ctx, kCommWorld);
  }));
}

TEST(RuntimeGet, ConcurrentGetsFromManyRanks) {
  // All ranks of node 1 read disjoint slices of rank 0's window at once.
  Cluster c({.machine = machine(2), .ranks_per_device = 4});
  auto data = c.device(0).alloc<int>(64);
  for (int i = 0; i < 64; ++i) data[static_cast<size_t>(i)] = 1000 + i;
  std::vector<std::vector<int>> got(8, std::vector<int>(16, 0));
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld,
                                   ctx.world_rank == 0 ? data : data.subspan(0, 64));
    if (ctx.node->node() == 1) {
      auto& mine = got[static_cast<size_t>(ctx.world_rank)];
      const std::size_t off = static_cast<size_t>(ctx.device_rank) * 16 * sizeof(int);
      co_await get_notify(ctx, w, 0, off, 16 * sizeof(int), mine.data(), 3);
      co_await wait_notifications(ctx, w, 0, 3, 1);
      EXPECT_EQ(mine[0], 1000 + ctx.device_rank * 16);
      EXPECT_EQ(mine[15], 1000 + ctx.device_rank * 16 + 15);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

// -- Runtime-backend parity (docs/BACKENDS.md) -------------------------
//
// The device-initiated backend moves command dispatch to the NIC and
// notification delivery to the on-device board, but the wire protocol and
// ordering guarantees are shared with the host loop — so every application
// must reach the same final state under both backends, with all invariant
// oracles clean.

constexpr sim::RuntimeBackend kBothBackends[] = {
    sim::RuntimeBackend::kHostLoop, sim::RuntimeBackend::kDeviceInitiated};

sim::MachineConfig backend_machine(int nodes, sim::RuntimeBackend b) {
  sim::MachineConfig m = machine(nodes);
  m.backend = b;
  return m;
}

TEST(RuntimeBackendParity, StencilChecksumMatchesReference) {
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 4;
  const double want = apps::stencil::reference_checksum(cfg, 2, 4);
  for (sim::RuntimeBackend b : kBothBackends) {
    Cluster c({.machine = backend_machine(2, b), .ranks_per_device = 4});
    sim::InvariantObserver obs;
    c.sim().set_invariant_observer(&obs);
    apps::stencil::Result res = apps::stencil::run_dcuda(c, cfg);
    EXPECT_NEAR(res.checksum, want, 1e-9) << sim::backend_name(b);
    obs.finalize();
    EXPECT_TRUE(obs.violations().empty())
        << sim::backend_name(b) << "\n" << obs.report();
  }
}

TEST(RuntimeBackendParity, ParticlesConservedUnderBothBackends) {
  apps::particles::Config cfg;
  cfg.cells_per_node = 4;
  cfg.particles_per_cell = 12;
  cfg.iterations = 10;
  cfg.dt = 0.02;
  const apps::particles::Result ref = apps::particles::reference(cfg, 2);
  for (sim::RuntimeBackend b : kBothBackends) {
    Cluster c({.machine = backend_machine(2, b), .ranks_per_device = 4});
    sim::InvariantObserver obs;
    c.sim().set_invariant_observer(&obs);
    apps::particles::Result res = apps::particles::run_dcuda(c, cfg);
    EXPECT_EQ(res.total_particles, ref.total_particles) << sim::backend_name(b);
    EXPECT_NEAR(res.checksum, ref.checksum,
                1e-9 * std::abs(ref.checksum) + 1e-9)
        << sim::backend_name(b);
    obs.finalize();
    EXPECT_TRUE(obs.violations().empty())
        << sim::backend_name(b) << "\n" << obs.report();
  }
}

TEST(RuntimeBackendParity, SpmvChecksumMatchesReference) {
  apps::spmv::Config cfg;
  cfg.n_dev = 32;
  cfg.density = 0.05;
  cfg.iterations = 2;
  const double want = apps::spmv::reference_checksum(cfg, 4);
  for (sim::RuntimeBackend b : kBothBackends) {
    Cluster c({.machine = backend_machine(4, b), .ranks_per_device = 4});
    sim::InvariantObserver obs;
    c.sim().set_invariant_observer(&obs);
    apps::spmv::Result res = apps::spmv::run_dcuda(c, cfg);
    EXPECT_NEAR(res.checksum, want, 1e-9 * std::abs(want) + 1e-9)
        << sim::backend_name(b);
    obs.finalize();
    EXPECT_TRUE(obs.violations().empty())
        << sim::backend_name(b) << "\n" << obs.report();
  }
}

TEST(RuntimeBackendParity, DeviceModeDeliversOnBoardOnly) {
  // Under kDeviceInitiated every device-rank notification must arrive via
  // the on-device board (no host round trip); under kHostLoop none may.
  for (sim::RuntimeBackend b : kBothBackends) {
    Cluster c({.machine = backend_machine(2, b), .ranks_per_device = 2});
    sim::InvariantObserver obs;
    c.sim().set_invariant_observer(&obs);
    auto mem = c.device(0).alloc<std::byte>(256);
    auto mem2 = c.device(1).alloc<std::byte>(256);
    c.run([&](Context& ctx) -> Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld,
                                     ctx.node->node() == 0 ? mem : mem2);
      const int peer = (ctx.world_rank + 2) % 4;  // cross-node pairs
      co_await put_notify(ctx, w, peer, 0, 0, nullptr, /*tag=*/5);
      co_await wait_notifications(ctx, w, peer, 5, 1);
      co_await barrier(ctx, kCommWorld);
      co_await win_free(ctx, w);
    });
    obs.finalize();
    EXPECT_TRUE(obs.violations().empty()) << obs.report();
    EXPECT_GE(obs.notifications_delivered(), 4u);
    if (b == sim::RuntimeBackend::kDeviceInitiated) {
      EXPECT_EQ(obs.notifications_board_delivered(),
                obs.notifications_delivered());
    } else {
      EXPECT_EQ(obs.notifications_board_delivered(), 0u);
    }
  }
}

TEST(RuntimeBackendParity, DeviceModeCutsNotifiedPutLatency) {
  // The backend's whole point: no host_wakeup_latency sweep, cheaper
  // dispatch. A cross-node notified-put ping-pong must finish faster.
  auto elapsed = [](sim::RuntimeBackend b) {
    Cluster c({.machine = backend_machine(2, b), .ranks_per_device = 1});
    auto a = c.device(0).alloc<std::byte>(64);
    auto z = c.device(1).alloc<std::byte>(64);
    return c.run([&](Context& ctx) -> Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld,
                                     ctx.world_rank == 0 ? a : z);
      for (int i = 0; i < 8; ++i) {
        if (ctx.world_rank == 0) {
          co_await put_notify(ctx, w, 1, 0, 0, nullptr, 0);
          co_await wait_notifications(ctx, w, 1, 0, 1);
        } else {
          co_await wait_notifications(ctx, w, 0, 0, 1);
          co_await put_notify(ctx, w, 0, 0, 0, nullptr, 0);
        }
      }
      co_await win_free(ctx, w);
    });
  };
  EXPECT_LT(elapsed(sim::RuntimeBackend::kDeviceInitiated),
            elapsed(sim::RuntimeBackend::kHostLoop));
}

TEST(RuntimeBackendParity, HostRanksStillWorkInDeviceMode) {
  // Host ranks run on the CPU and keep the host-loop machinery even when
  // the machine is device-initiated; mixed traffic must still match.
  sim::MachineConfig m =
      backend_machine(2, sim::RuntimeBackend::kDeviceInitiated);
  Cluster c({.machine = m, .ranks_per_device = 1, .host_ranks = 1});
  auto d0 = c.device(0).alloc<int>(16);
  auto d1 = c.device(1).alloc<int>(16);
  std::vector<std::vector<int>> host_mem(2, std::vector<int>(16, -1));
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<int> mine = ctx.is_host_rank()
        ? std::span<int>(host_mem[static_cast<size_t>(ctx.node->node())])
        : (ctx.node->node() == 0 ? d0 : d1);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    // Ring: every rank sends its id to the next rank, any kind to any kind.
    const int next = (ctx.world_rank + 1) % 4;
    int v = 100 + ctx.world_rank;
    co_await put_notify(ctx, w, next, 0, std::span<const int>(&v, 1), 7);
    co_await wait_notifications(ctx, w, kAnySource, 7, 1);
    EXPECT_EQ(mine[0], 100 + (ctx.world_rank + 3) % 4);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

}  // namespace
}  // namespace dcuda
