// Communication-protocol tests for the eager/aggregated small-put fast path
// (sim::RmaConfig; docs/PERF.md "Communication protocol").
//
// The sweep crosses eager threshold × batch geometry × perturbation seeds
// and asserts, for every combination:
//   * byte-for-byte payload delivery (every put lands exactly its bytes at
//     exactly its offset),
//   * FIFO order of same-sized notified puts (overwrite stamping: after the
//     target matched tag k, the contended slot must hold round >= k),
//   * the invariant oracles stay clean (eager-batch FIFO + conservation,
//     notified-put non-overtaking, queue credits),
//   * results identical with the fast path on and off.
// Plus unit coverage of CircularQueue::enqueue_batch (the batched
// notification commit) and of the aggregation counters.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <sstream>
#include <vector>

#include "cluster/cluster.h"
#include "queue/circular_queue.h"
#include "sim/invariants.h"

namespace dcuda {
namespace {

using sim::InvariantObserver;
using sim::Proc;

// -- Cross-node exchange workload --------------------------------------

struct ExchangeConfig {
  std::size_t eager_threshold = 0;  // 0 = fast path off
  int max_batch = 8;
  std::size_t max_batch_bytes = 16 * 1024;
  std::uint64_t perturb_seed = 0;
  int rounds = 8;
  int elems = 24;  // 192 B per put
  sim::RuntimeBackend backend = sim::RuntimeBackend::kHostLoop;
};

struct ExchangeResult {
  double elapsed = 0.0;
  std::vector<std::vector<double>> recv;  // per world rank: window snapshot
  std::vector<int> min_stamp_violations;  // per rank: FIFO stamp failures
  std::uint64_t fabric_msgs = 0;
  std::string oracle_errors;
};

double value_of(int origin, int round, int e) {
  return origin * 10000.0 + round * 100.0 + e;
}

// Every rank streams `rounds` same-sized notified puts to its peer on the
// other node: one into a per-round slot (byte-for-byte check) and one into a
// single contended slot stamped with the round (FIFO check), then one
// rendezvous-sized put above any threshold in the sweep (path mixing).
ExchangeResult run_exchange(const ExchangeConfig& xc) {
  ExchangeResult res;
  const int nodes = 2, rpd = 2;
  const int world = nodes * rpd;
  const int rounds = xc.rounds, elems = xc.elems;
  const int big_elems = 512;  // 4 kB
  sim::MachineConfig m;
  m.num_nodes = nodes;
  m.perturb_seed = xc.perturb_seed;
  m.rma.eager_threshold = xc.eager_threshold;
  m.rma.max_batch = xc.max_batch;
  m.rma.max_batch_bytes = xc.max_batch_bytes;
  m.backend = xc.backend;
  Cluster c({.machine = m, .ranks_per_device = rpd});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);

  // Window layout (elements): [rounds * elems | elems (contended) | big].
  const std::size_t contended_off = static_cast<size_t>(rounds) * elems;
  const std::size_t big_off = contended_off + static_cast<size_t>(elems);
  const std::size_t win_elems = big_off + static_cast<size_t>(big_elems);
  std::vector<std::span<double>> recv(static_cast<size_t>(world));
  std::vector<std::span<double>> send(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    gpu::Device& d = c.device(g / rpd);
    recv[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    send[static_cast<size_t>(g)] = d.alloc<double>(win_elems +
        static_cast<size_t>(rounds) * elems);
    for (double& x : recv[static_cast<size_t>(g)]) x = -1.0;
  }
  res.min_stamp_violations.assign(static_cast<size_t>(world), 0);

  res.elapsed = c.run([&](Context& ctx) -> Proc<void> {
    const int g = ctx.world_rank;
    const int peer = (g + rpd) % world;  // same local rank, other node
    Window w = co_await win_create(ctx, kCommWorld, recv[static_cast<size_t>(g)]);
    std::span<double> sbuf = send[static_cast<size_t>(g)];
    for (int k = 0; k < rounds; ++k) {
      // Disjoint-slot put (tag k) ...
      std::span<double> chunk =
          sbuf.subspan(static_cast<size_t>(k) * elems, static_cast<size_t>(elems));
      for (int e = 0; e < elems; ++e) chunk[static_cast<size_t>(e)] = value_of(g, k, e);
      co_await put_notify(ctx, w, peer, static_cast<size_t>(k) * elems,
                          std::span<const double>(chunk), /*tag=*/k);
      // ... and a contended-slot put stamped with the round (tag 1000 + k).
      std::span<double> stamp = sbuf.subspan(
          static_cast<size_t>(rounds) * elems + static_cast<size_t>(k) * elems,
          static_cast<size_t>(elems));
      for (int e = 0; e < elems; ++e) stamp[static_cast<size_t>(e)] = k;
      co_await put_notify(ctx, w, peer, contended_off,
                          std::span<const double>(stamp), /*tag=*/1000 + k);
    }
    std::span<double> big = sbuf.subspan(0, big_elems);  // reuse, post-flush read
    co_await flush(ctx);
    for (int e = 0; e < big_elems; ++e) big[static_cast<size_t>(e)] = value_of(g, 77, e);
    co_await put_notify(ctx, w, peer, big_off, std::span<const double>(big),
                        /*tag=*/2000);
    co_await flush(ctx);
    // FIFO check: match the contended tags in issue order; after tag k the
    // slot must hold round >= k (a smaller stamp means an earlier put's
    // payload overtook a later notification).
    for (int k = 0; k < rounds; ++k) {
      co_await wait_notifications(ctx, w, peer, 1000 + k, 1);
      const double stamp = recv[static_cast<size_t>(g)][contended_off];
      if (stamp < static_cast<double>(k)) {
        ++res.min_stamp_violations[static_cast<size_t>(g)];
      }
    }
    co_await wait_notifications(ctx, w, peer, kAnyTag, rounds + 1);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });

  for (int g = 0; g < world; ++g) {
    res.recv.emplace_back(recv[static_cast<size_t>(g)].begin(),
                          recv[static_cast<size_t>(g)].end());
  }
  for (int n = 0; n < nodes; ++n) res.fabric_msgs += c.fabric().messages_sent(n);
  obs.finalize();
  for (const std::string& v : obs.violations()) {
    res.oracle_errors += "  oracle: " + v + "\n";
  }
  return res;
}

void check_payloads(const ExchangeConfig& xc, const ExchangeResult& r,
                    const std::string& what) {
  const int rpd = 2, world = 4;
  for (int g = 0; g < world; ++g) {
    const int origin = (g + rpd) % world;
    const std::vector<double>& buf = r.recv[static_cast<size_t>(g)];
    for (int k = 0; k < xc.rounds; ++k) {
      for (int e = 0; e < xc.elems; ++e) {
        ASSERT_EQ(buf[static_cast<size_t>(k) * xc.elems + static_cast<size_t>(e)],
                  value_of(origin, k, e))
            << what << ": rank " << g << " round " << k << " elem " << e;
      }
    }
    const std::size_t big_off =
        static_cast<size_t>(xc.rounds) * xc.elems + static_cast<size_t>(xc.elems);
    for (int e = 0; e < 512; ++e) {
      ASSERT_EQ(buf[big_off + static_cast<size_t>(e)], value_of(origin, 77, e))
          << what << ": rank " << g << " rendezvous elem " << e;
    }
    EXPECT_EQ(r.min_stamp_violations[static_cast<size_t>(g)], 0)
        << what << ": rank " << g << " saw a notification overtake its payload";
  }
  EXPECT_TRUE(r.oracle_errors.empty()) << what << "\n" << r.oracle_errors;
}

// -- The sweep: threshold × batch × seeds ------------------------------

TEST(CommProtocol, EagerSweepDeliversEveryByteInOrder) {
  for (std::size_t threshold : {std::size_t{0}, std::size_t{192}, std::size_t{512}}) {
    for (int max_batch : {1, 3, 8}) {
      for (std::uint64_t seed : {0ull, 0x71001ull, 0x71002ull}) {
        ExchangeConfig xc;
        xc.eager_threshold = threshold;
        xc.max_batch = max_batch;
        xc.perturb_seed = seed;
        std::ostringstream what;
        what << "threshold=" << threshold << " max_batch=" << max_batch
             << " seed=" << seed;
        check_payloads(xc, run_exchange(xc), what.str());
      }
    }
  }
}

TEST(CommProtocol, SmallByteCapStillDeliversEverything) {
  ExchangeConfig xc;
  xc.eager_threshold = 512;
  xc.max_batch = 64;
  xc.max_batch_bytes = 256;  // byte cap, not record cap, drives the flushes
  check_payloads(xc, run_exchange(xc), "byte-capped");
}

// -- Mixed-size interleaving across the protocol boundary --------------
//
// Every round straddles the threshold: a big notified put (rendezvous path
// when the fast path is on) immediately followed by a small notified put
// (eager path). The receiver matches the small tag and verifies the big
// payload of the same round already landed — §III-B's guarantee is
// per-connection, not per-path, so neither the notification nor the
// aggregated small payload may overtake the rendezvous transfer.

struct MixedConfig {
  std::size_t eager_threshold = 0;  // 0 = fast path off
  bool huge_rounds = false;  // odd rounds use 12 kB (> MPI eager limit)
  int max_batch = 8;
  std::uint64_t perturb_seed = 0;
  int rounds = 6;
};

struct MixedResult {
  std::vector<std::vector<double>> recv;
  int late_data = 0;  // big payload missing when the small tag matched
  std::string oracle_errors;
};

MixedResult run_mixed_exchange(const MixedConfig& xc) {
  MixedResult res;
  const int nodes = 2, rpd = 2;
  const int world = nodes * rpd;
  const int rounds = xc.rounds;
  constexpr int kSmall = 24;    // 192 B — eager at every enabled threshold
  constexpr int kBigMax = 1536; // 12 kB slot pitch
  sim::MachineConfig m;
  m.num_nodes = nodes;
  m.perturb_seed = xc.perturb_seed;
  m.rma.eager_threshold = xc.eager_threshold;
  m.rma.max_batch = xc.max_batch;
  Cluster c({.machine = m, .ranks_per_device = rpd});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);

  auto big_elems = [&](int k) {
    return xc.huge_rounds && k % 2 == 1 ? kBigMax : 256;  // 12 kB / 2 kB
  };
  const std::size_t big_base = static_cast<size_t>(rounds) * kSmall;
  auto big_off = [&](int k) {
    return big_base + static_cast<size_t>(k) * kBigMax;
  };
  const std::size_t win_elems = big_off(rounds);
  std::vector<std::span<double>> recv(static_cast<size_t>(world));
  std::vector<std::span<double>> send(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    gpu::Device& d = c.device(g / rpd);
    recv[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    send[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    for (double& x : recv[static_cast<size_t>(g)]) x = -1.0;
  }

  c.run([&](Context& ctx) -> Proc<void> {
    const int g = ctx.world_rank;
    const int peer = (g + rpd) % world;  // symmetric across two nodes
    Window w = co_await win_create(ctx, kCommWorld, recv[static_cast<size_t>(g)]);
    std::span<double> sbuf = send[static_cast<size_t>(g)];
    const std::span<double> rbuf = recv[static_cast<size_t>(g)];
    for (int k = 0; k < rounds; ++k) {
      const int bn = big_elems(k);
      std::span<double> big = sbuf.subspan(big_off(k), static_cast<size_t>(bn));
      for (int e = 0; e < bn; ++e) big[static_cast<size_t>(e)] = value_of(g, 100 + k, e);
      std::span<double> small =
          sbuf.subspan(static_cast<size_t>(k) * kSmall, kSmall);
      for (int e = 0; e < kSmall; ++e) small[static_cast<size_t>(e)] = value_of(g, k, e);
      co_await put_notify(ctx, w, peer, big_off(k),
                          std::span<const double>(big), /*tag=*/100 + k);
      co_await put_notify(ctx, w, peer, static_cast<size_t>(k) * kSmall,
                          std::span<const double>(small), /*tag=*/k);
      // The small notification implies the whole round landed.
      co_await wait_notifications(ctx, w, peer, /*tag=*/k, 1);
      for (int e = 0; e < bn; ++e) {
        if (rbuf[big_off(k) + static_cast<size_t>(e)] != value_of(peer, 100 + k, e)) {
          ++res.late_data;
          break;
        }
      }
    }
    co_await flush(ctx);
    co_await wait_notifications(ctx, w, peer, kAnyTag, rounds);  // big tags
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });

  for (int g = 0; g < world; ++g) {
    res.recv.emplace_back(recv[static_cast<size_t>(g)].begin(),
                          recv[static_cast<size_t>(g)].end());
  }
  obs.finalize();
  for (const std::string& v : obs.violations()) {
    res.oracle_errors += "  oracle: " + v + "\n";
  }
  return res;
}

TEST(CommProtocol, MixedSizeInterleavedSweep) {
  // huge_rounds only with the fast path on: with it off, transfers above
  // the MPI eager limit promise completion order only (true rendezvous).
  struct Case { std::size_t threshold; bool huge; };
  constexpr Case kCases[] = {
      {0, false}, {192, false}, {192, true}, {512, false}, {512, true}};
  for (const Case& cs : kCases) {
    for (std::uint64_t seed : {0ull, 0x73001ull, 0x73002ull}) {
      MixedConfig xc;
      xc.eager_threshold = cs.threshold;
      xc.huge_rounds = cs.huge;
      xc.perturb_seed = seed;
      const MixedResult r = run_mixed_exchange(xc);
      std::ostringstream what;
      what << "threshold=" << cs.threshold << " huge=" << cs.huge
           << " seed=" << seed;
      EXPECT_EQ(r.late_data, 0)
          << what.str() << ": notification overtook rendezvous data";
      EXPECT_TRUE(r.oracle_errors.empty()) << what.str() << "\n"
                                           << r.oracle_errors;
    }
  }
}

TEST(CommProtocol, MixedSizeOnOffProduceIdenticalResults) {
  MixedConfig off;
  MixedConfig on = off;
  on.eager_threshold = 256;
  on.max_batch = 4;
  const MixedResult a = run_mixed_exchange(off);
  const MixedResult b = run_mixed_exchange(on);
  ASSERT_EQ(a.recv, b.recv);
  EXPECT_EQ(a.late_data, 0);
  EXPECT_EQ(b.late_data, 0);
}

// -- On/off equivalence ------------------------------------------------

TEST(CommProtocol, AggregationOnOffProduceIdenticalResults) {
  for (std::uint64_t seed : {0ull, 0x72001ull}) {
    ExchangeConfig off;
    off.perturb_seed = seed;
    ExchangeConfig on = off;
    on.eager_threshold = 256;
    on.max_batch = 4;
    const ExchangeResult a = run_exchange(off);
    const ExchangeResult b = run_exchange(on);
    ASSERT_EQ(a.recv, b.recv) << "seed " << seed;
    EXPECT_TRUE(a.oracle_errors.empty()) << a.oracle_errors;
    EXPECT_TRUE(b.oracle_errors.empty()) << b.oracle_errors;
  }
}

TEST(CommProtocol, AggregationReducesFabricMessages) {
  ExchangeConfig off;
  ExchangeConfig on = off;
  on.eager_threshold = 256;
  on.max_batch = 8;
  const ExchangeResult a = run_exchange(off);
  const ExchangeResult b = run_exchange(on);
  // Reference path: meta + payload per put. Eager path: one packet per
  // batch. The rendezvous-sized put and MPI control traffic are common.
  EXPECT_LT(b.fabric_msgs, a.fabric_msgs);
}

TEST(CommProtocol, DisabledPathIsDeterministic) {
  ExchangeConfig xc;
  const ExchangeResult a = run_exchange(xc);
  const ExchangeResult b = run_exchange(xc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.recv, b.recv);
}

TEST(CommProtocol, EnabledPathIsDeterministic) {
  ExchangeConfig xc;
  xc.eager_threshold = 384;
  xc.max_batch = 5;
  const ExchangeResult a = run_exchange(xc);
  const ExchangeResult b = run_exchange(xc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.recv, b.recv);
}

// -- Runtime-backend dimension (docs/BACKENDS.md) ----------------------
//
// The device-initiated backend replaces the host event loop with NIC
// dispatch and on-device notification boards but shares the fabric
// channels, so the exchange workload's byte-for-byte payload, FIFO-stamp,
// and oracle checks must hold unchanged — with and without the eager
// aggregation fast path on top.

TEST(CommProtocol, DeviceBackendDeliversEveryByteInOrder) {
  for (std::size_t threshold : {std::size_t{0}, std::size_t{256}}) {
    for (std::uint64_t seed : {0ull, 0x73001ull, 0x73002ull}) {
      ExchangeConfig xc;
      xc.backend = sim::RuntimeBackend::kDeviceInitiated;
      xc.eager_threshold = threshold;
      xc.perturb_seed = seed;
      std::ostringstream what;
      what << "device backend threshold=" << threshold << " seed=" << seed;
      check_payloads(xc, run_exchange(xc), what.str());
    }
  }
}

TEST(CommProtocol, BackendsProduceIdenticalPayloads) {
  ExchangeConfig host;
  ExchangeConfig dev = host;
  dev.backend = sim::RuntimeBackend::kDeviceInitiated;
  const ExchangeResult a = run_exchange(host);
  const ExchangeResult b = run_exchange(dev);
  ASSERT_EQ(a.recv, b.recv);
  EXPECT_TRUE(a.oracle_errors.empty()) << a.oracle_errors;
  EXPECT_TRUE(b.oracle_errors.empty()) << b.oracle_errors;
  // Same wire protocol underneath: the backend moves dispatch off the
  // host but does not change what crosses the fabric.
  EXPECT_EQ(a.fabric_msgs, b.fabric_msgs);
}

TEST(CommProtocol, DeviceBackendIsDeterministic) {
  ExchangeConfig xc;
  xc.backend = sim::RuntimeBackend::kDeviceInitiated;
  xc.eager_threshold = 384;
  xc.max_batch = 5;
  const ExchangeResult a = run_exchange(xc);
  const ExchangeResult b = run_exchange(xc);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.recv, b.recv);
}

// -- enqueue_batch unit coverage ---------------------------------------

struct Entry {
  int v = 0;
};

TEST(EnqueueBatch, SingleCommitDeliversAllEntriesInOrder) {
  sim::Simulation s;
  queue::CircularQueue<Entry> q(s, 16, queue::local_transport(s));
  std::vector<int> got;
  auto producer = [&]() -> Proc<void> {
    std::vector<Entry> es;
    for (int i = 0; i < 10; ++i) es.push_back(Entry{i});
    co_await q.enqueue_batch(std::move(es));
  };
  auto consumer = [&]() -> Proc<void> {
    for (int i = 0; i < 10; ++i) got.push_back((co_await q.dequeue()).v);
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  EXPECT_EQ(q.enqueues(), 10u);
}

TEST(EnqueueBatch, BatchLargerThanCapacityChunksAndCompletes) {
  sim::Simulation s;
  queue::CircularQueue<Entry> q(s, 4, queue::local_transport(s));
  InvariantObserver obs;
  s.set_invariant_observer(&obs);
  std::vector<int> got;
  const int n = 50;
  auto producer = [&]() -> Proc<void> {
    std::vector<Entry> es;
    for (int i = 0; i < n; ++i) es.push_back(Entry{i});
    co_await q.enqueue_batch(std::move(es));
  };
  auto consumer = [&]() -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      got.push_back((co_await q.dequeue()).v);
      co_await s.delay(sim::micros(0.3));  // slow consumer forces wraps
    }
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  ASSERT_EQ(got.size(), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << obs.report();  // credit bound held throughout
}

TEST(EnqueueBatch, MixesWithSingleEnqueuesInFifoOrder) {
  sim::Simulation s;
  queue::CircularQueue<Entry> q(s, 8, queue::local_transport(s));
  std::vector<int> got;
  auto producer = [&]() -> Proc<void> {
    co_await q.enqueue(Entry{0});
    std::vector<Entry> mid;
    for (int i = 1; i <= 5; ++i) mid.push_back(Entry{i});
    co_await q.enqueue_batch(std::move(mid));
    co_await q.enqueue(Entry{6});
  };
  auto consumer = [&]() -> Proc<void> {
    for (int i = 0; i < 7; ++i) got.push_back((co_await q.dequeue()).v);
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  for (int i = 0; i < 7; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(EnqueueBatch, EmptyBatchIsANoOp) {
  sim::Simulation s;
  queue::CircularQueue<Entry> q(s, 4, queue::local_transport(s));
  auto producer = [&]() -> Proc<void> { co_await q.enqueue_batch({}); };
  s.spawn(producer(), "p");
  s.run();
  EXPECT_EQ(q.enqueues(), 0u);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace dcuda
