// Unit tests for the hardware substrates: PCIe link, network fabric, and the
// circular-buffer host↔device queues of §III-C.

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.h"
#include "pcie/pcie.h"
#include "queue/circular_queue.h"
#include "sim/simulation.h"
#include "sim/units.h"

namespace dcuda {
namespace {

using sim::micros;
using sim::Proc;
using sim::Simulation;

sim::PcieConfig pcie_cfg() {
  sim::PcieConfig c;
  c.bandwidth = sim::gbs(10.0);
  c.txn_latency = micros(1.0);
  c.post_cost = micros(0.1);
  c.dma_startup = micros(5.0);
  return c;
}

TEST(Pcie, PostedWriteVisibleAfterLatency) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  sim::Time visible = -1;
  auto writer = [&]() -> Proc<void> {
    co_await link.post_write(pcie::Dir::kHostToDevice, 100.0,
                             [&] { visible = s.now(); });
  };
  auto h = s.spawn(writer(), "w");
  s.run();
  EXPECT_TRUE(h.done());
  // 100 B at 10 GB/s = 10ns serialization + 1us latency.
  EXPECT_NEAR(visible, micros(1.0) + sim::nanos(10), sim::nanos(1));
}

TEST(Pcie, PostedWriterContinuesAfterPostCost) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  sim::Time writer_done = -1;
  auto writer = [&]() -> Proc<void> {
    co_await link.post_write(pcie::Dir::kHostToDevice, 100.0, [] {});
    writer_done = s.now();
  };
  s.spawn(writer(), "w");
  s.run();
  EXPECT_NEAR(writer_done, micros(0.1), sim::nanos(1));
}

TEST(Pcie, PostedWritesCommitInOrder) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  std::vector<int> commits;
  auto writer = [&]() -> Proc<void> {
    co_await link.post_write(pcie::Dir::kHostToDevice, 1e5,
                             [&] { commits.push_back(1); });
    co_await link.post_write(pcie::Dir::kHostToDevice, 10.0,
                             [&] { commits.push_back(2); });
  };
  s.spawn(writer(), "w");
  s.run();
  EXPECT_EQ(commits, (std::vector<int>{1, 2}));
}

TEST(Pcie, MappedReadIsRoundTrip) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  sim::Time done = -1;
  auto reader = [&]() -> Proc<void> {
    co_await link.mapped_read(pcie::Dir::kDeviceToHost, 8.0);
    done = s.now();
  };
  s.spawn(reader(), "r");
  s.run();
  EXPECT_GE(done, micros(2.0));  // two transaction latencies
  EXPECT_LT(done, micros(2.1));
}

TEST(Pcie, DmaPaysStartupThenBandwidth) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  sim::Time done = -1;
  auto mover = [&]() -> Proc<void> {
    co_await link.dma(pcie::Dir::kHostToDevice, 1e6);  // 1 MB at 10 GB/s = 100us
    done = s.now();
  };
  s.spawn(mover(), "m");
  s.run();
  EXPECT_NEAR(done, micros(5.0 + 100.0 + 1.0), micros(0.01));
}

TEST(Pcie, DirectionsAreIndependent) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  sim::Time d1 = -1, d2 = -1;
  auto a = [&]() -> Proc<void> {
    co_await link.dma(pcie::Dir::kHostToDevice, 1e6);
    d1 = s.now();
  };
  auto b = [&]() -> Proc<void> {
    co_await link.dma(pcie::Dir::kDeviceToHost, 1e6);
    d2 = s.now();
  };
  s.spawn(a(), "a");
  s.spawn(b(), "b");
  s.run();
  EXPECT_NEAR(d1, d2, micros(0.01));  // full duplex: no serialization between
}

TEST(Pcie, CountsTransactions) {
  Simulation s;
  pcie::PcieLink link(s, pcie_cfg());
  auto w = [&]() -> Proc<void> {
    for (int i = 0; i < 5; ++i) {
      co_await link.post_write(pcie::Dir::kHostToDevice, 32.0, [] {});
    }
  };
  s.spawn(w(), "w");
  s.run();
  EXPECT_EQ(link.transactions(pcie::Dir::kHostToDevice), 5u);
  EXPECT_EQ(link.transactions(pcie::Dir::kDeviceToHost), 0u);
}

sim::NetConfig net_cfg() {
  sim::NetConfig c;
  c.bandwidth = sim::gbs(6.0);
  c.latency = micros(1.4);
  c.sw_overhead = micros(0.3);
  return c;
}

TEST(Fabric, DeliversWithLatencyAndOverheads) {
  Simulation s;
  net::Fabric fab(s, 2, net_cfg());
  sim::Time arrived = -1;
  auto rx = [&]() -> Proc<void> {
    (void)co_await fab.rx(1).pop();
    arrived = s.now();
  };
  s.spawn(rx(), "rx");
  fab.send(net::Packet{0, 1, 6000.0, {}});  // 6 kB at 6 GB/s = 1us
  s.run();
  EXPECT_NEAR(arrived, micros(0.3 + 1.0 + 1.4 + 0.3), sim::nanos(10));
}

TEST(Fabric, FifoPerSourceDestinationPair) {
  Simulation s;
  net::Fabric fab(s, 2, net_cfg());
  std::vector<int> got;
  auto rx = [&]() -> Proc<void> {
    for (int i = 0; i < 3; ++i) {
      auto p = co_await fab.rx(1).pop();
      got.push_back(std::any_cast<int>(p.payload));
    }
  };
  s.spawn(rx(), "rx");
  fab.send(net::Packet{0, 1, 1e6, 1});  // large first: must not be overtaken
  fab.send(net::Packet{0, 1, 8.0, 2});
  fab.send(net::Packet{0, 1, 8.0, 3});
  s.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Fabric, SendersSerializeOnTheirNic) {
  Simulation s;
  net::Fabric fab(s, 3, net_cfg());
  std::vector<sim::Time> arrivals;
  auto rx = [&](int node, int n) -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      (void)co_await fab.rx(node).pop();
      arrivals.push_back(s.now());
    }
  };
  s.spawn(rx(1, 2), "rx1");
  // Two 600 kB messages (100us wire each) from node 0 serialize.
  fab.send(net::Packet{0, 1, 6e5, {}});
  fab.send(net::Packet{0, 1, 6e5, {}});
  s.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[1] - arrivals[0], micros(100.0), micros(1.0));
}

TEST(Fabric, RateCapThrottlesMessage) {
  Simulation s;
  net::Fabric fab(s, 2, net_cfg());
  sim::Time arrived = -1;
  auto rx = [&]() -> Proc<void> {
    (void)co_await fab.rx(1).pop();
    arrived = s.now();
  };
  s.spawn(rx(), "rx");
  fab.send(net::Packet{0, 1, 3.2e6, {}}, sim::gbs(3.2));  // 1ms at cap
  s.run();
  EXPECT_NEAR(arrived, sim::millis(1.0), micros(5.0));
}

TEST(Fabric, AccountsPerNodeTraffic) {
  Simulation s;
  net::Fabric fab(s, 2, net_cfg());
  auto rx = [&]() -> Proc<void> { (void)co_await fab.rx(1).pop(); };
  s.spawn(rx(), "rx");
  fab.send(net::Packet{0, 1, 1234.0, {}});
  s.run();
  EXPECT_DOUBLE_EQ(fab.bytes_sent(0), 1234.0);
  EXPECT_EQ(fab.messages_sent(0), 1u);
  EXPECT_EQ(fab.messages_sent(1), 0u);
}

// -- Circular queue ---------------------------------------------------------

struct Cmd {
  int v = 0;
};

TEST(CircularQueue, LocalTransportRoundTrip) {
  Simulation s;
  queue::CircularQueue<Cmd> q(s, 4, queue::local_transport(s));
  std::vector<int> got;
  auto producer = [&]() -> Proc<void> {
    for (int i = 0; i < 10; ++i) co_await q.enqueue(Cmd{i});
  };
  auto consumer = [&]() -> Proc<void> {
    for (int i = 0; i < 10; ++i) {
      Cmd c = co_await q.dequeue();
      got.push_back(c.v);
      co_await s.delay(micros(0.5));  // slow consumer forces wrap + credits
    }
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

TEST(CircularQueue, CreditsLimitOutstandingEntries) {
  Simulation s;
  queue::CircularQueue<Cmd> q(s, 2, queue::local_transport(s));
  int produced = 0;
  auto producer = [&]() -> Proc<void> {
    for (int i = 0; i < 6; ++i) {
      co_await q.enqueue(Cmd{i});
      ++produced;
    }
  };
  s.spawn(producer(), "p");
  // No consumer yet: the producer must stall after filling the ring.
  auto consumer = [&]() -> Proc<void> {
    co_await s.delay(micros(100));
    for (int i = 0; i < 6; ++i) (void)co_await q.dequeue();
  };
  s.spawn(consumer(), "c");
  s.run_until(micros(50));
  EXPECT_EQ(produced, 2);  // capacity reached, credits exhausted
  s.run_until(sim::millis(10));
  EXPECT_EQ(produced, 6);
}

TEST(CircularQueue, SequenceNumbersSurviveWraparound) {
  Simulation s;
  queue::CircularQueue<Cmd> q(s, 3, queue::local_transport(s));
  int sum = 0;
  const int n = 1000;
  auto producer = [&]() -> Proc<void> {
    for (int i = 0; i < n; ++i) co_await q.enqueue(Cmd{i});
  };
  auto consumer = [&]() -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      Cmd c = co_await q.dequeue();
      EXPECT_EQ(c.v, i);  // strict FIFO across many wraps
      sum += c.v;
    }
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  EXPECT_EQ(sum, n * (n - 1) / 2);
}

TEST(CircularQueue, TailReadsAreOccasional) {
  Simulation s;
  queue::CircularQueue<Cmd> q(s, 16, queue::local_transport(s));
  auto producer = [&]() -> Proc<void> {
    for (int i = 0; i < 64; ++i) co_await q.enqueue(Cmd{i});
  };
  auto consumer = [&]() -> Proc<void> {
    for (int i = 0; i < 64; ++i) (void)co_await q.dequeue();
  };
  s.spawn(producer(), "p");
  s.spawn(consumer(), "c");
  s.run();
  EXPECT_EQ(q.enqueues(), 64u);
  // Amortized: at most one tail read per ring's worth of entries (paper's
  // credit scheme), not one per enqueue.
  EXPECT_LE(q.tail_reads(), 64u / 16u + 2u);
}

TEST(CircularQueue, TryDequeueEmptyReturnsNullopt) {
  Simulation s;
  queue::CircularQueue<Cmd> q(s, 4, queue::local_transport(s));
  EXPECT_FALSE(q.try_dequeue().has_value());
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace dcuda
