// Tests for the particle-simulation mini-application: conservation laws,
// exact agreement between variants and the serial reference, migration
// correctness across rank and node boundaries.

#include <gtest/gtest.h>

#include "apps/particles.h"

namespace dcuda::apps::particles {
namespace {

Config tiny_config(int cells_per_node) {
  Config cfg;
  cfg.cells_per_node = cells_per_node;
  cfg.particles_per_cell = 12;
  cfg.iterations = 10;
  cfg.dt = 0.02;
  return cfg;
}

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

TEST(ParticlesApp, ReferenceConservesParticles) {
  Config cfg = tiny_config(6);
  Result r = reference(cfg, 2);
  EXPECT_EQ(r.total_particles, 2 * 6 * 12);
}

TEST(ParticlesApp, ParticlesActuallyMigrate) {
  // Sanity: with moving particles and many iterations, at least one particle
  // crosses a cell boundary (otherwise the migration path is untested).
  Config cfg = tiny_config(6);
  cfg.iterations = 40;
  Result a = reference(cfg, 1);
  Config cfg0 = cfg;
  cfg0.iterations = 0;
  Result b = reference(cfg0, 1);
  EXPECT_NE(a.checksum, b.checksum);
}

TEST(ParticlesApp, DcudaMatchesReferenceSingleNode) {
  Config cfg = tiny_config(6);
  Cluster c({.machine = machine(1), .ranks_per_device = 6});
  Result r = run_dcuda(c, cfg);
  Result ref = reference(cfg, 1);
  EXPECT_EQ(r.total_particles, ref.total_particles);
  EXPECT_NEAR(r.checksum, ref.checksum, 1e-9);
  EXPECT_NEAR(r.momentum_x, ref.momentum_x, 1e-9);
}

TEST(ParticlesApp, DcudaMatchesReferenceMultiNode) {
  Config cfg = tiny_config(4);
  Cluster c({.machine = machine(3), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  Result ref = reference(cfg, 3);
  EXPECT_EQ(r.total_particles, ref.total_particles);
  EXPECT_NEAR(r.checksum, ref.checksum, 1e-9);
}

TEST(ParticlesApp, MpiCudaMatchesReferenceSingleNode) {
  Config cfg = tiny_config(6);
  Cluster c({.machine = machine(1), .ranks_per_device = 6});
  Result r = run_mpi_cuda(c, cfg);
  Result ref = reference(cfg, 1);
  EXPECT_EQ(r.total_particles, ref.total_particles);
  EXPECT_NEAR(r.checksum, ref.checksum, 1e-9);
}

TEST(ParticlesApp, MpiCudaMatchesReferenceMultiNode) {
  Config cfg = tiny_config(4);
  Cluster c({.machine = machine(3), .ranks_per_device = 4});
  Result r = run_mpi_cuda(c, cfg);
  Result ref = reference(cfg, 3);
  EXPECT_EQ(r.total_particles, ref.total_particles);
  EXPECT_NEAR(r.checksum, ref.checksum, 1e-9);
}

TEST(ParticlesApp, VariantsAgreeExactly) {
  Config cfg = tiny_config(4);
  cfg.iterations = 15;
  Cluster c1({.machine = machine(2), .ranks_per_device = 4});
  Cluster c2({.machine = machine(2), .ranks_per_device = 4});
  Result a = run_dcuda(c1, cfg);
  Result b = run_mpi_cuda(c2, cfg);
  EXPECT_EQ(a.total_particles, b.total_particles);
  EXPECT_DOUBLE_EQ(a.checksum, b.checksum);
}

TEST(ParticlesApp, DecompositionInvariance) {
  // The same global system cut at different node counts must evolve
  // identically (deterministic init + deterministic migration order).
  Config cfg = tiny_config(8);
  Result one_node;
  {
    Cluster c({.machine = machine(1), .ranks_per_device = 8});
    one_node = run_dcuda(c, cfg);
  }
  Config cfg2 = tiny_config(4);  // same 8 global cells as 2 nodes x 4
  Cluster c({.machine = machine(2), .ranks_per_device = 4});
  Result two_nodes = run_dcuda(c, cfg2);
  EXPECT_EQ(one_node.total_particles, two_nodes.total_particles);
  EXPECT_NEAR(one_node.checksum, two_nodes.checksum, 1e-9);
}

TEST(ParticlesApp, MomentumDriftsOnlyThroughWalls) {
  // Pure pair forces conserve momentum; wall reflections change it. With
  // particles away from walls and few steps, momentum is conserved.
  Config cfg = tiny_config(6);
  cfg.iterations = 1;
  cfg.dt = 1e-4;
  Result r0 = reference(cfg, 1);
  Config cfgz = cfg;
  cfgz.iterations = 0;
  Result z = reference(cfgz, 1);
  EXPECT_NEAR(r0.momentum_x, z.momentum_x, 1e-6);
  EXPECT_NEAR(r0.momentum_y, z.momentum_y, 1e-6);
}

TEST(ParticlesApp, SingleCellDomainHasNoNeighbours) {
  // Latent-assumption audit (docs/TESTING.md): the 1-D chain's neighbor
  // math must survive the no-neighbor degenerate domain — a single global
  // cell posts zero halo sends and must wait for zero notifications instead
  // of hanging or deadlocking on its own boundary.
  Config cfg = tiny_config(1);
  const Result ref = reference(cfg, 1);
  Cluster c1({.machine = machine(1), .ranks_per_device = 1});
  const Result dc = run_dcuda(c1, cfg);
  Cluster c2({.machine = machine(1), .ranks_per_device = 1});
  const Result mc = run_mpi_cuda(c2, cfg);
  EXPECT_EQ(dc.total_particles, ref.total_particles);
  EXPECT_EQ(mc.total_particles, ref.total_particles);
  EXPECT_NEAR(dc.checksum, ref.checksum, 1e-9);
  EXPECT_NEAR(mc.checksum, ref.checksum, 1e-9);
}

TEST(ParticlesApp, ExchangeOnlySwitchRuns) {
  Config cfg = tiny_config(4);
  cfg.compute = false;
  Cluster c({.machine = machine(2), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_GT(r.elapsed, 0.0);
  EXPECT_EQ(r.total_particles, 2 * 4 * 12);  // nothing moves, nothing lost
}

TEST(ParticlesApp, ComputeOnlySwitchRuns) {
  Config cfg = tiny_config(4);
  cfg.exchange = false;
  cfg.iterations = 3;  // timing-only mode: halos stale, movers are dropped
  Cluster c({.machine = machine(2), .ranks_per_device = 4});
  Result r = run_dcuda(c, cfg);
  EXPECT_GT(r.elapsed, 0.0);
  EXPECT_LE(r.total_particles, 2 * 4 * 12);
  EXPECT_GT(r.total_particles, 2 * 4 * 12 / 2);
}

}  // namespace
}  // namespace dcuda::apps::particles
