// Test battery for the 3-D DPD application (docs/TESTING.md, label `dpd3d`):
// 27-direction dir2rank geometry incl. degenerate grids, the halo
// correctness oracle (every particle within the cutoff of a face/edge/corner
// is seen by exactly the right neighbour), particle conservation across
// migration, bitwise dCUDA / MPI-CUDA / reference parity on uniform and
// skewed densities, rebalance schedule-only invariance, and the in-tree
// break_compaction mutation check.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "apps/dpd3d.h"

namespace dcuda::apps::dpd3d {
namespace {

Config tiny_config(int cells_per_node) {
  Config cfg;
  cfg.cells_per_node = cells_per_node;
  cfg.particles_per_cell = 12;
  cfg.iterations = 10;
  cfg.dt = 0.02;
  return cfg;
}

Config skew_config(int cells_per_node) {
  Config cfg = tiny_config(cells_per_node);
  cfg.density = Density::kSkewed;
  cfg.skew_drift = 1.0;
  return cfg;
}

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

// ---------------------------------------------------------------- geometry

TEST(Dpd3dGrid, DirIndexSpaceRoundTrips) {
  for (int d = 0; d < kDirs; ++d) {
    const std::array<int, 3> o = dir_offset(d);
    EXPECT_EQ((o[0] + 1) + 3 * (o[1] + 1) + 9 * (o[2] + 1), d);
    const std::array<int, 3> op = dir_offset(opposite(d));
    EXPECT_EQ(op[0], -o[0]);
    EXPECT_EQ(op[1], -o[1]);
    EXPECT_EQ(op[2], -o[2]);
  }
  EXPECT_EQ(dir_offset(kSelf), (std::array<int, 3>{0, 0, 0}));
  EXPECT_EQ(opposite(kSelf), kSelf);
}

// Exhaustive dir2rank sweep against first-principles coordinate math, on a
// bulk 3-D grid and on the degenerate 1 x 1 x N and 2 x 2 x 2 shapes.
void sweep_grid(const Grid& g) {
  for (int c = 0; c < g.cells(); ++c) {
    const std::array<int, 3> cc = g.coords(c);
    EXPECT_EQ(g.cell_at(cc[0], cc[1], cc[2]), c);
    const std::array<int, kDirs> table = g.dir2rank(c);
    int active = 0;
    for (int d = 0; d < kDirs; ++d) {
      const std::array<int, 3> o = dir_offset(d);
      const int nx = cc[0] + o[0], ny = cc[1] + o[1], nz = cc[2] + o[2];
      const bool inside = nx >= 0 && nx < g.gx && ny >= 0 && ny < g.gy &&
                          nz >= 0 && nz < g.gz;
      const int expect = inside ? g.cell_at(nx, ny, nz) : -1;
      EXPECT_EQ(table[d], expect) << "cell " << c << " dir " << d;
      EXPECT_EQ(g.dir2cell(c, d), expect);
      if (inside && d != kSelf) {
        // Neighbourhood is symmetric: my neighbour sees me back.
        EXPECT_EQ(g.dir2cell(table[d], opposite(d)), c);
        ++active;
      }
    }
    const std::vector<int> act = g.active_dirs(c);
    EXPECT_EQ(static_cast<int>(act.size()), active);
    for (int d : act) {
      EXPECT_NE(d, kSelf);
      EXPECT_GE(g.dir2cell(c, d), 0);
    }
  }
}

TEST(Dpd3dGrid, Dir2RankSweepBulk3D) {
  Config cfg = tiny_config(9);
  const Grid g = make_grid(cfg, 3);  // 27 ranks -> 3 x 3 x 3
  EXPECT_EQ(g.gx * g.gy * g.gz, 27);
  sweep_grid(g);
  // The interior cell of a 3 x 3 x 3 grid has all 26 neighbours.
  const int center = g.cell_at(1, 1, 1);
  EXPECT_EQ(g.active_dirs(center).size(), 26u);
}

TEST(Dpd3dGrid, Dir2RankSweepDegenerate1D) {
  // A prime rank count degenerates to N x 1 x 1 ...
  Config cfg = tiny_config(5);
  const Grid a = make_grid(cfg, 1);
  EXPECT_EQ((std::array<int, 3>{a.gx, a.gy, a.gz}), (std::array<int, 3>{5, 1, 1}));
  sweep_grid(a);
  // ... and explicit dims force the 1 x 1 x N orientation of the same line.
  Config cfg2 = tiny_config(5);
  cfg2.grid_x = 1;
  cfg2.grid_y = 1;
  cfg2.grid_z = 5;
  const Grid b = make_grid(cfg2, 1);
  sweep_grid(b);
  // End cells of a line see one neighbour, interior cells two.
  EXPECT_EQ(b.active_dirs(0).size(), 1u);
  EXPECT_EQ(b.active_dirs(2).size(), 2u);
}

TEST(Dpd3dGrid, Dir2RankSweep2x2x2) {
  Config cfg = tiny_config(8);
  const Grid g = make_grid(cfg, 1);
  EXPECT_EQ((std::array<int, 3>{g.gx, g.gy, g.gz}), (std::array<int, 3>{2, 2, 2}));
  sweep_grid(g);
  // Every cell of a 2 x 2 x 2 grid is a corner: exactly 7 active neighbours.
  for (int c = 0; c < 8; ++c) EXPECT_EQ(g.active_dirs(c).size(), 7u);
}

TEST(Dpd3dGrid, SingleCellDomainHasNoNeighbours) {
  // Latent-assumption audit (docs/TESTING.md): the 1 x 1 x 1 grid has an
  // empty active-neighbour list — zero halo sends, zero waits, zero
  // migration targets. Walls reflect everything, so the cell keeps its
  // particles and all three variants still agree bitwise.
  Config cfg = tiny_config(1);
  const Grid g = make_grid(cfg, 1);
  EXPECT_EQ(g.cells(), 1);
  EXPECT_TRUE(g.active_dirs(0).empty());
  for (int d = 0; d < kDirs; ++d) {
    EXPECT_EQ(g.dir2rank(0)[d], d == kSelf ? 0 : -1);
  }
  const Result ref = reference(cfg, 1);
  EXPECT_EQ(ref.total_particles, cfg.particles_per_cell);
  EXPECT_EQ(ref.halo_received_total, 0);
  Cluster c1({.machine = machine(1), .ranks_per_device = 1});
  const Result dc = run_dcuda(c1, cfg);
  Cluster c2({.machine = machine(1), .ranks_per_device = 1});
  const Result mc = run_mpi_cuda(c2, cfg);
  EXPECT_EQ(dc.total_particles, ref.total_particles);
  EXPECT_EQ(mc.total_particles, ref.total_particles);
  EXPECT_DOUBLE_EQ(dc.checksum, ref.checksum);
  EXPECT_DOUBLE_EQ(mc.checksum, ref.checksum);
}

TEST(Dpd3dGrid, InitialCountsAreDecompositionInvariant) {
  // The skewed histogram is a pure function of the grid, never of the
  // node/rank cut, and largest-remainder rounding keeps the total exact.
  Config a = skew_config(8);
  Config b = skew_config(4);
  const Grid ga = make_grid(a, 1);
  const Grid gb = make_grid(b, 2);  // same 8 global cells as 2 x 4
  ASSERT_EQ(ga.cells(), gb.cells());
  std::int64_t total = 0;
  for (int c = 0; c < ga.cells(); ++c) {
    EXPECT_EQ(initial_count(a, ga, c), initial_count(b, gb, c));
    total += initial_count(a, ga, c);
    EXPECT_LE(initial_count(a, ga, c), a.capacity() / 2);
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(ga.cells()) * a.particles_per_cell);
  // The blob actually skews: some cell holds well above the average.
  int peak = 0;
  for (int c = 0; c < ga.cells(); ++c) peak = std::max(peak, initial_count(a, ga, c));
  EXPECT_GT(peak, a.particles_per_cell * 3 / 2);
}

// ------------------------------------------------------------- halo oracle

TEST(Dpd3dHalo, FirstIterationMatchesPureFunctionExpectation) {
  // The halo total of a single iteration must equal the count derived from
  // first principles: replay the deterministic seeding and apply the
  // ship_to_dir predicate per active direction.
  Config cfg = tiny_config(8);
  cfg.iterations = 1;
  const int nodes = 2;
  const Grid grid = make_grid(cfg, nodes);
  std::int64_t expected = 0;
  for (int cell = 0; cell < grid.cells(); ++cell) {
    const auto recs = initial_particles(cfg, grid, cell);
    for (int d : grid.active_dirs(cell)) {
      for (const auto& r : recs) {
        if (ship_to_dir(cfg, grid, cell, d, r[0], r[1], r[2])) ++expected;
      }
    }
  }
  EXPECT_GT(expected, 0);
  const Result ref = reference(cfg, nodes);
  EXPECT_EQ(ref.halo_received_total, expected);
  EXPECT_EQ(ref.halo_violations, 0);
  Cluster c1({.machine = machine(nodes), .ranks_per_device = cfg.cells_per_node});
  const Result dc = run_dcuda(c1, cfg);
  EXPECT_EQ(dc.halo_received_total, expected);
  EXPECT_EQ(dc.halo_violations, 0);
  Cluster c2({.machine = machine(nodes), .ranks_per_device = cfg.cells_per_node});
  const Result mc = run_mpi_cuda(c2, cfg);
  EXPECT_EQ(mc.halo_received_total, expected);
  EXPECT_EQ(mc.halo_violations, 0);
}

TEST(Dpd3dHalo, OracleStaysCleanOverManyIterations) {
  for (const bool skew : {false, true}) {
    Config cfg = skew ? skew_config(8) : tiny_config(8);
    cfg.iterations = 15;
    const Result ref = reference(cfg, 2);
    Cluster c1({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
    const Result dc = run_dcuda(c1, cfg);
    Cluster c2({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
    const Result mc = run_mpi_cuda(c2, cfg);
    EXPECT_EQ(ref.halo_violations, 0);
    EXPECT_EQ(dc.halo_violations, 0);
    EXPECT_EQ(mc.halo_violations, 0);
    EXPECT_GT(ref.halo_received_total, 0);
    EXPECT_EQ(dc.halo_received_total, ref.halo_received_total);
    EXPECT_EQ(mc.halo_received_total, ref.halo_received_total);
  }
}

// ------------------------------------------------------ parity + conservation

TEST(Dpd3dParity, UniformDcudaMpiReferenceBitwise) {
  Config cfg = tiny_config(8);
  const int nodes = 2;
  const Result ref = reference(cfg, nodes);
  EXPECT_EQ(ref.total_particles,
            static_cast<std::int64_t>(nodes) * 8 * cfg.particles_per_cell);
  Cluster c1({.machine = machine(nodes), .ranks_per_device = cfg.cells_per_node});
  const Result dc = run_dcuda(c1, cfg);
  Cluster c2({.machine = machine(nodes), .ranks_per_device = cfg.cells_per_node});
  const Result mc = run_mpi_cuda(c2, cfg);
  EXPECT_EQ(dc.total_particles, ref.total_particles);
  EXPECT_EQ(mc.total_particles, ref.total_particles);
  // One physics core, one floating-point order: equality is exact.
  EXPECT_DOUBLE_EQ(dc.checksum, ref.checksum);
  EXPECT_DOUBLE_EQ(mc.checksum, ref.checksum);
  EXPECT_DOUBLE_EQ(dc.momentum_x, ref.momentum_x);
  EXPECT_DOUBLE_EQ(mc.momentum_x, ref.momentum_x);
  EXPECT_DOUBLE_EQ(dc.momentum_z, ref.momentum_z);
  EXPECT_EQ(dc.max_cell_count, ref.max_cell_count);
  EXPECT_EQ(mc.max_cell_count, ref.max_cell_count);
}

TEST(Dpd3dParity, SkewedDcudaMpiReferenceBitwise) {
  Config cfg = skew_config(8);
  cfg.iterations = 15;
  const int nodes = 3;
  const Result ref = reference(cfg, nodes);
  Cluster c1({.machine = machine(nodes), .ranks_per_device = cfg.cells_per_node});
  const Result dc = run_dcuda(c1, cfg);
  Cluster c2({.machine = machine(nodes), .ranks_per_device = cfg.cells_per_node});
  const Result mc = run_mpi_cuda(c2, cfg);
  EXPECT_EQ(dc.total_particles, ref.total_particles);
  EXPECT_EQ(mc.total_particles, ref.total_particles);
  EXPECT_DOUBLE_EQ(dc.checksum, ref.checksum);
  EXPECT_DOUBLE_EQ(mc.checksum, ref.checksum);
  EXPECT_DOUBLE_EQ(dc.momentum_y, ref.momentum_y);
  EXPECT_DOUBLE_EQ(mc.momentum_y, ref.momentum_y);
  // The blob leaves a hot cell: the skew indicator shows it.
  EXPECT_GT(ref.max_cell_count, cfg.particles_per_cell);
}

TEST(Dpd3dParity, DeviceInitiatedBackendMatches) {
  Config cfg = skew_config(6);
  sim::MachineConfig m = machine(2);
  m.backend = sim::RuntimeBackend::kDeviceInitiated;
  Cluster c({.machine = m, .ranks_per_device = cfg.cells_per_node});
  const Result dc = run_dcuda(c, cfg);
  const Result ref = reference(cfg, 2);
  EXPECT_EQ(dc.total_particles, ref.total_particles);
  EXPECT_DOUBLE_EQ(dc.checksum, ref.checksum);
  EXPECT_EQ(dc.halo_violations, 0);
}

TEST(Dpd3dParity, DecompositionInvariance) {
  // The same 24-cell global system cut 1 x 24 and 3 x 8 evolves identically.
  Config a = skew_config(24);
  Result one;
  {
    Cluster c({.machine = machine(1), .ranks_per_device = 24});
    one = run_dcuda(c, a);
  }
  Config b = skew_config(8);
  Cluster c({.machine = machine(3), .ranks_per_device = 8});
  const Result three = run_dcuda(c, b);
  EXPECT_EQ(one.total_particles, three.total_particles);
  EXPECT_DOUBLE_EQ(one.checksum, three.checksum);
  EXPECT_EQ(one.halo_received_total, three.halo_received_total);
}

TEST(Dpd3dParity, ConservationUnderHeavyMigration) {
  // Fast drift + large dt: the blob marches a full cell width across the
  // run, so diagonal migration paths actually carry records.
  Config cfg = skew_config(8);
  cfg.dt = 0.05;
  cfg.iterations = 20;
  const std::int64_t expect = 2ll * 8 * cfg.particles_per_cell;
  const Result ref = reference(cfg, 2);
  EXPECT_EQ(ref.total_particles, expect);
  // Migration genuinely happened (the blob moved off its start cells).
  Config frozen = cfg;
  frozen.iterations = 0;
  EXPECT_NE(reference(frozen, 2).checksum, ref.checksum);
  Cluster c1({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
  EXPECT_EQ(run_dcuda(c1, cfg).total_particles, expect);
  Cluster c2({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
  EXPECT_EQ(run_mpi_cuda(c2, cfg).total_particles, expect);
}

// ------------------------------------------------------------------ rebalance

TEST(Dpd3dRebalance, SchedulesWorkTicketsButKeepsPhysicsBitwise) {
  Config cfg = skew_config(8);
  cfg.iterations = 15;
  Result off, on;
  {
    Cluster c({.machine = machine(3), .ranks_per_device = cfg.cells_per_node});
    off = run_dcuda(c, cfg);
  }
  {
    Config rcfg = cfg;
    rcfg.rebalance = true;
    Cluster c({.machine = machine(3), .ranks_per_device = cfg.cells_per_node});
    on = run_dcuda(c, rcfg);
  }
  EXPECT_EQ(off.work_tickets, 0);
  // The skewed blob must overload someone enough to trip the trigger.
  EXPECT_GT(on.work_tickets, 0);
  // Work adoption moves cost, never particles: physics is bitwise unchanged.
  EXPECT_EQ(on.total_particles, off.total_particles);
  EXPECT_DOUBLE_EQ(on.checksum, off.checksum);
  EXPECT_DOUBLE_EQ(on.momentum_x, off.momentum_x);
  EXPECT_EQ(on.halo_received_total, off.halo_received_total);
  EXPECT_EQ(on.halo_violations, 0);
}

TEST(Dpd3dRebalance, FlattensTheScanImbalanceCurve) {
  Config cfg = skew_config(8);
  cfg.iterations = 12;
  cfg.record_load = true;
  Result off, on;
  {
    Cluster c({.machine = machine(3), .ranks_per_device = cfg.cells_per_node});
    off = run_dcuda(c, cfg);
  }
  {
    Config rcfg = cfg;
    rcfg.rebalance = true;
    Cluster c({.machine = machine(3), .ranks_per_device = cfg.cells_per_node});
    on = run_dcuda(c, rcfg);
  }
  ASSERT_EQ(off.iter_imbalance.size(), static_cast<std::size_t>(cfg.iterations));
  ASSERT_EQ(on.iter_imbalance.size(), static_cast<std::size_t>(cfg.iterations));
  double sum_off = 0.0, sum_on = 0.0;
  for (int i = 0; i < cfg.iterations; ++i) {
    sum_off += off.iter_imbalance[static_cast<std::size_t>(i)];
    sum_on += on.iter_imbalance[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(sum_off / cfg.iterations, 1.2);  // skew creates real imbalance
  EXPECT_LT(sum_on, sum_off);                // adoption flattens the curve
}

// ------------------------------------------------------------ mutation check

TEST(Dpd3dMutation, BreakingSendCompactionFiresConservationOracle) {
  // docs/TESTING.md: the in-tree mutation drops the tail record of every
  // non-empty migration buffer. If the conservation oracle cannot see that,
  // the oracle is dead — in every variant.
  Config cfg = skew_config(8);
  cfg.dt = 0.05;
  cfg.iterations = 20;
  cfg.break_compaction = true;
  const std::int64_t expect = 2ll * 8 * cfg.particles_per_cell;
  EXPECT_LT(reference(cfg, 2).total_particles, expect);
  Cluster c1({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
  EXPECT_LT(run_dcuda(c1, cfg).total_particles, expect);
  Cluster c2({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
  EXPECT_LT(run_mpi_cuda(c2, cfg).total_particles, expect);
}

// ------------------------------------------------------------ runtime switches

TEST(Dpd3dSwitches, ExchangeOnlyAndComputeOnlyRun) {
  Config cfg = tiny_config(8);
  cfg.compute = false;
  {
    Cluster c({.machine = machine(2), .ranks_per_device = cfg.cells_per_node});
    const Result r = run_dcuda(c, cfg);
    EXPECT_GT(r.elapsed, 0.0);
    EXPECT_EQ(r.total_particles, 2ll * 8 * cfg.particles_per_cell);
  }
  Config cc = tiny_config(8);
  cc.exchange = false;
  cc.iterations = 3;  // timing-only: halos stale, movers dropped
  {
    Cluster c({.machine = machine(2), .ranks_per_device = cc.cells_per_node});
    const Result r = run_dcuda(c, cc);
    EXPECT_GT(r.elapsed, 0.0);
    EXPECT_LE(r.total_particles, 2ll * 8 * cc.particles_per_cell);
  }
}

}  // namespace
}  // namespace dcuda::apps::dpd3d
