// Loss battery for the lossy fabric + go-back-N recovery protocol
// (net/fault.h, net/fabric.cc, docs/TESTING.md "Loss battery").
//
// Three layers:
//  * Fabric-level self-tests — each fault class (drop, dup, corrupt, delay,
//    link-down) actually fires at its configured rate, every packet still
//    lands exactly once and in order, and a run is bit-reproducible from its
//    perturbation seed (DCUDA_PERTURB_SEED overrides the seed used here).
//  * Mutation checks, wired as ctest cases: knocking out retransmission
//    makes the loss fuzz fail conservation; knocking out duplicate
//    suppression makes the at-most-once oracle fire. Each test PASSES by
//    proving the battery catches the mutation.
//  * A drop-rate × workload × seed sweep over full Cluster workloads
//    (stencil plus a mixed eager/rendezvous notified-put stream) with the
//    complete InvariantObserver suite and end-result validation.
//    DCUDA_FUZZ_SEEDS dials the per-cell seed count (docs/TESTING.md).
//
// Plus self-tests for the recovery oracles themselves (at-most-once,
// retransmit accounting), mirroring the oracle self-test pattern in
// tests/schedule_fuzz_test.cpp.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "apps/stencil.h"
#include "cluster/cluster.h"
#include "net/fabric.h"
#include "net/fault.h"
#include "sim/env_config.h"
#include "sim/invariants.h"
#include "sim/perturb.h"
#include "sim/simulation.h"

namespace dcuda {
namespace {

using sim::InvariantObserver;
using sim::Perturbation;
using sim::Proc;

std::uint64_t perturb_seed_env(std::uint64_t fallback) {
  return sim::env_u64("DCUDA_PERTURB_SEED", fallback);
}

int fuzz_seeds_env(int fallback) {
  const int n = sim::env_int("DCUDA_FUZZ_SEEDS", fallback);
  return n > 0 ? n : fallback;
}

// -- Fabric-level harness ------------------------------------------------
//
// Synthetic traffic straight into a Fabric: `bursts` packets per directed
// link of a small all-to-all, alternating channels and rate caps, payload
// carrying the per-link ordinal so receive order is checkable end to end.

struct FabricRun {
  net::Fabric::FaultStats stats;
  std::string violations;     // oracle report lines ("" == clean)
  bool delivered_in_order = true;
  std::uint64_t delivered = 0;
  double end_time = 0.0;
  std::uint64_t decisions = 0;  // kFault coins drawn
};

FabricRun drive_fabric(const net::FaultConfig& fc, std::uint64_t seed,
                       int nodes, int bursts) {
  FabricRun out;
  sim::Simulation sim;
  sim.set_perturbation(seed, Perturbation::kFault);
  InvariantObserver obs;
  sim.set_invariant_observer(&obs);
  net::Fabric fabric(sim, nodes, sim::NetConfig{}, fc);
  for (int b = 0; b < bursts; ++b) {
    // Stagger injections so transmissions interleave with recoveries.
    sim.schedule(sim::micros(2.0 * b), [&fabric, nodes, b]() {
      for (int s = 0; s < nodes; ++s) {
        for (int d = 0; d < nodes; ++d) {
          if (s == d) continue;
          net::Packet p;
          p.src = s;
          p.dst = d;
          p.bytes = b % 3 == 0 ? 4096.0 : 128.0;
          p.payload = std::uint64_t(b);
          p.channel = b % 2 == 0 ? net::kMpiChannel : net::kRuntimeChannel;
          fabric.send(std::move(p),
                      b % 5 == 0 ? sim::gbs(3.2)
                                 : std::numeric_limits<sim::Rate>::infinity());
        }
      }
    });
  }
  sim.run();
  out.end_time = sim.now();
  out.stats = fabric.fault_stats();
  if (Perturbation* p = sim.perturbation()) {
    out.decisions = p->decisions(Perturbation::kFault);
  }
  // Each (link, channel) must hold its packets in injection order with no
  // loss and no duplication (channels alternate, so each channel sees the
  // even or odd ordinals of its link, still increasing).
  for (int d = 0; d < nodes; ++d) {
    for (int ch = 0; ch < net::kNumChannels; ++ch) {
      std::vector<std::uint64_t> last(static_cast<size_t>(nodes), 0);
      std::vector<bool> seen(static_cast<size_t>(nodes), false);
      while (auto p = fabric.rx(d, ch).try_pop()) {
        ++out.delivered;
        const auto ord = std::any_cast<std::uint64_t>(p->payload);
        const auto s = static_cast<size_t>(p->src);
        if (seen[s] && ord <= last[s]) out.delivered_in_order = false;
        seen[s] = true;
        last[s] = ord;
      }
    }
  }
  obs.finalize();
  for (const std::string& v : obs.violations()) out.violations += v + "\n";
  return out;
}

// -- Fault-class self-tests ---------------------------------------------

// Binomial sanity: observed/expected within a factor of 2 plus slack for
// small counts. Rates are per transmission (retransmits draw coins too).
void expect_rate(std::uint64_t hits, std::uint64_t trials, double p,
                 const char* what) {
  ASSERT_GT(trials, 0u);
  const double expected = static_cast<double>(trials) * p;
  const double slack = 3.0 * std::sqrt(expected) + 3.0;
  EXPECT_NEAR(static_cast<double>(hits), expected, expected * 0.5 + slack)
      << what << ": " << hits << " of " << trials << " at p=" << p;
}

TEST(FaultInjection, DropRateAndRecovery) {
  net::FaultConfig fc;
  fc.drop_prob = 0.05;
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 2, 1500);
  expect_rate(r.stats.drops, r.stats.originals + r.stats.retransmits,
              fc.drop_prob, "drop");
  EXPECT_GT(r.stats.retransmits, 0u);
  EXPECT_GT(r.stats.timeouts, 0u);
  EXPECT_EQ(r.delivered, 2u * 1500u);  // exactly once despite the losses
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(FaultInjection, DuplicateRateAndSuppression) {
  net::FaultConfig fc;
  fc.dup_prob = 0.08;
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 2, 1500);
  expect_rate(r.stats.dups, r.stats.originals + r.stats.retransmits,
              fc.dup_prob, "dup");
  EXPECT_GE(r.stats.dup_suppressed, r.stats.dups);  // every injected copy eaten
  EXPECT_EQ(r.delivered, 2u * 1500u);
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(FaultInjection, CorruptRateIsRepairedLikeLoss) {
  net::FaultConfig fc;
  fc.corrupt_prob = 0.04;
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 2, 1500);
  expect_rate(r.stats.corrupts, r.stats.originals + r.stats.retransmits,
              fc.corrupt_prob, "corrupt");
  EXPECT_GT(r.stats.retransmits, 0u);
  EXPECT_EQ(r.delivered, 2u * 1500u);
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(FaultInjection, DelaySpikesReorderTheWireNotTheMailbox) {
  net::FaultConfig fc;
  fc.delay_prob = 0.1;
  fc.delay_spike = sim::micros(50.0);
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 2, 1500);
  expect_rate(r.stats.delays, r.stats.originals + r.stats.retransmits,
              fc.delay_prob, "delay");
  // A 50 us spike overtakes several later packets on the wire; go-back-N
  // discards the gap and repairs by retransmission, so order survives.
  EXPECT_GT(r.stats.ooo_discarded, 0u);
  EXPECT_EQ(r.delivered, 2u * 1500u);
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(FaultInjection, LinkDownWindowsEatInFlightTraffic) {
  net::FaultConfig fc;
  fc.link_down_prob = 0.01;
  fc.link_down_duration = sim::micros(30.0);
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 2, 1500);
  expect_rate(r.stats.link_downs, r.stats.originals + r.stats.retransmits,
              fc.link_down_prob, "link-down");
  // An outage eats at least its trigger packet, usually more.
  EXPECT_GE(r.stats.outage_losses, r.stats.link_downs);
  EXPECT_EQ(r.delivered, 2u * 1500u);
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
}

TEST(FaultInjection, CombinedFaultsOnAllToAllStaysExactlyOnce) {
  net::FaultConfig fc;
  fc.drop_prob = 0.03;
  fc.dup_prob = 0.02;
  fc.corrupt_prob = 0.01;
  fc.delay_prob = 0.02;
  fc.link_down_prob = 0.002;
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 4, 400);
  EXPECT_EQ(r.delivered, 12u * 400u);
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
  EXPECT_GT(r.stats.retransmits, 0u);
  EXPECT_GT(r.decisions, 0u);
}

TEST(FaultInjection, SameSeedReplaysBitIdentically) {
  net::FaultConfig fc;
  fc.drop_prob = 0.04;
  fc.dup_prob = 0.02;
  fc.delay_prob = 0.02;
  fc.link_down_prob = 0.002;
  const std::uint64_t seed = perturb_seed_env(0x5eed);
  FabricRun a = drive_fabric(fc, seed, 3, 400);
  FabricRun b = drive_fabric(fc, seed, 3, 400);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.stats.drops, b.stats.drops);
  EXPECT_EQ(a.stats.dups, b.stats.dups);
  EXPECT_EQ(a.stats.corrupts, b.stats.corrupts);
  EXPECT_EQ(a.stats.delays, b.stats.delays);
  EXPECT_EQ(a.stats.link_downs, b.stats.link_downs);
  EXPECT_EQ(a.stats.retransmits, b.stats.retransmits);
  EXPECT_EQ(a.stats.timeouts, b.stats.timeouts);
  EXPECT_EQ(a.stats.acks_sent, b.stats.acks_sent);
  // A different seed lands on a different fault history.
  FabricRun c = drive_fabric(fc, seed + 1, 3, 400);
  EXPECT_NE(a.stats.drops + a.stats.dups + a.stats.delays,
            c.stats.drops + c.stats.dups + c.stats.delays);
}

TEST(FaultInjection, ZeroProbabilitiesDrawNothingAndStayOnLegacyPath) {
  net::FaultConfig fc;  // all zero
  EXPECT_FALSE(fc.any());
  FabricRun r = drive_fabric(fc, perturb_seed_env(0x5eed), 2, 200);
  EXPECT_EQ(r.decisions, 0u);  // kFault stream untouched
  EXPECT_EQ(r.stats.originals, 0u);  // reliable path: protocol not armed
  EXPECT_EQ(r.delivered, 2u * 200u);
  EXPECT_TRUE(r.delivered_in_order);
  EXPECT_EQ(r.violations, "");
}

// -- Mutation checks (docs/TESTING.md) ----------------------------------
//
// Each test knocks one recovery mechanism out and PASSES by observing the
// loss battery fail: the protocol's correctness is only credible if its
// absence is detectable.

TEST(FaultMutation, DisablingRetransmissionFailsLossConservation) {
  net::FaultConfig fc;
  fc.drop_prob = 0.05;
  fc.retransmit = false;  // mutation: first loss stalls the window forever
  sim::Simulation sim;
  sim.set_perturbation(0x5eed, Perturbation::kFault);
  InvariantObserver obs;
  sim.set_invariant_observer(&obs);
  net::Fabric fabric(sim, 2, sim::NetConfig{}, fc);
  for (int b = 0; b < 400; ++b) {
    sim.schedule(sim::micros(2.0 * b), [&fabric, b]() {
      net::Packet p;
      p.src = 0;
      p.dst = 1;
      p.bytes = 128.0;
      p.payload = std::uint64_t(b);
      fabric.send(std::move(p));
    });
  }
  sim.run();
  obs.finalize();
  EXPECT_FALSE(obs.ok()) << "loss fuzz failed to notice missing retransmission";
  EXPECT_NE(obs.report().find("lossy-fabric conservation"), std::string::npos)
      << obs.report();
  EXPECT_EQ(fabric.fault_stats().retransmits, 0u);
  EXPECT_LT(fabric.rx(1).size(), 400u);  // traffic really was lost
}

TEST(FaultMutation, DisablingDupSuppressionFailsAtMostOnceOracle) {
  net::FaultConfig fc;
  fc.dup_prob = 0.2;
  fc.dup_suppress = false;  // mutation: duplicates reach the mailbox
  sim::Simulation sim;
  sim.set_perturbation(0x5eed, Perturbation::kFault);
  InvariantObserver obs;
  sim.set_invariant_observer(&obs);
  net::Fabric fabric(sim, 2, sim::NetConfig{}, fc);
  for (int b = 0; b < 400; ++b) {
    sim.schedule(sim::micros(2.0 * b), [&fabric, b]() {
      net::Packet p;
      p.src = 0;
      p.dst = 1;
      p.bytes = 128.0;
      p.payload = std::uint64_t(b);
      fabric.send(std::move(p));
    });
  }
  sim.run();
  obs.finalize();
  EXPECT_FALSE(obs.ok()) << "at-most-once oracle blind to duplicates";
  EXPECT_NE(obs.report().find("at-most-once delivery violated"),
            std::string::npos)
      << obs.report();
  EXPECT_GT(fabric.rx(1).size(), 400u);  // duplicates really got through
}

// -- Recovery-oracle self-tests -----------------------------------------
//
// Falsifiability on hand-built histories, mirroring the InvariantOracle
// tests in schedule_fuzz_test.cpp.

TEST(RecoveryOracle, DetectsDuplicateAccept) {
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 1, /*retransmit=*/false);
  obs.fabric_packet_accepted(0, 1, 1);
  obs.fabric_packet_accepted(0, 1, 1);  // suppression failed
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("at-most-once delivery violated"),
            std::string::npos);
}

TEST(RecoveryOracle, DetectsOutOfOrderAccept) {
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 1, false);
  obs.fabric_packet_sent(0, 1, 2, false);
  obs.fabric_packet_accepted(0, 1, 2);  // gap: seq 1 skipped
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("in-order delivery violated"), std::string::npos);
}

TEST(RecoveryOracle, DetectsAcceptOfNeverSentSequence) {
  InvariantObserver obs;
  obs.fabric_packet_accepted(0, 1, 1);
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("never sent"), std::string::npos);
}

TEST(RecoveryOracle, DetectsRetransmitOfNeverSentSequence) {
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 1, false);
  obs.fabric_packet_sent(0, 1, 5, /*retransmit=*/true);  // only seq 1 exists
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("retransmit of never-sent"), std::string::npos);
}

TEST(RecoveryOracle, DetectsFreshSequenceSkip) {
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 2, false);  // fresh send must start at 1
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("sequence assignment"), std::string::npos);
}

TEST(RecoveryOracle, DetectsLossWithoutRecovery) {
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 1, false);
  obs.fabric_packet_dropped(0, 1, 1);
  obs.finalize();  // nothing ever accepted
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("lossy-fabric conservation"), std::string::npos);
}

TEST(RecoveryOracle, DetectsRecoveryWithoutRetransmitAccounting) {
  // A loss was recorded and yet everything arrived with zero retransmits —
  // the counters cannot both be right.
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 1, false);
  obs.fabric_packet_dropped(0, 1, 1);
  obs.fabric_packet_accepted(0, 1, 1);
  obs.finalize();
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("retransmit accounting violated"),
            std::string::npos);
}

TEST(RecoveryOracle, CleanLossyHistoryPasses) {
  InvariantObserver obs;
  obs.fabric_packet_sent(0, 1, 1, false);
  obs.fabric_packet_dropped(0, 1, 1);
  obs.fabric_packet_sent(0, 1, 2, false);
  obs.fabric_packet_sent(0, 1, 1, /*retransmit=*/true);
  obs.fabric_packet_accepted(0, 1, 1);
  obs.fabric_packet_accepted(0, 1, 2);
  obs.fabric_delivered(0, 1, 1);
  obs.fabric_delivered(0, 1, 2);
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << obs.report();
}

// -- Drop-rate × workload × seed sweep over Cluster workloads ------------

sim::MachineConfig faulty_machine(int nodes, std::uint64_t seed, double drop) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  m.perturb_seed = seed;
  m.fault.drop_prob = drop;
  m.fault.dup_prob = drop / 2.0;
  m.fault.corrupt_prob = drop / 4.0;
  m.fault.delay_prob = drop / 2.0;
  if (seed % 2 == 1) m.fault.link_down_prob = drop / 50.0;
  // Backend lane (docs/BACKENDS.md): alternate seeds drive the lossy fabric
  // from the device-initiated backend, proving go-back-N recovery does not
  // depend on the host event loop. Bit 1 keeps the lane independent of the
  // link-down selector above.
  if ((seed >> 1) & 1) m.backend = sim::RuntimeBackend::kDeviceInitiated;
  // Topology lane (docs/TOPOLOGY.md): bits 2-3 run the lossy fabric over a
  // fat tree, a torus, or two striped NIC rails, so go-back-N recovery is
  // exercised on multi-hop paths (retransmissions re-routed per ECMP) and
  // under the rail mux's cross-rail resequencing.
  switch ((seed >> 2) & 3) {
    case 1: m.net.topo.kind = net::TopologyKind::kFatTree; break;
    case 2: m.net.topo.kind = net::TopologyKind::kTorus3D; break;
    case 3:
      m.net.topo.kind = net::TopologyKind::kFatTree;
      m.net.topo.rails = 2;
      break;
    default: break;
  }
  return m;
}

std::string run_faulty_stencil(std::uint64_t seed, double drop) {
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 4;
  Cluster c({.machine = faulty_machine(2, seed, drop), .ranks_per_device = 4});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  apps::stencil::Result res = apps::stencil::run_dcuda(c, cfg);
  std::string errors;
  static const double want = apps::stencil::reference_checksum(cfg, 2, 4);
  if (std::abs(res.checksum - want) > 1e-9) {
    std::ostringstream os;
    os << "  checksum: stencil got " << res.checksum << " want " << want << "\n";
    errors += os.str();
  }
  obs.finalize();
  for (const std::string& v : obs.violations()) errors += "  oracle: " + v + "\n";
  return errors;
}

// Mixed eager + rendezvous notified puts (the protocol-boundary traffic the
// eager fence orders): each rank streams small aggregated put_notifys and
// one rendezvous-sized put to its peer on the other node, then payloads are
// validated byte for byte.
std::string run_faulty_mixed(std::uint64_t seed, double drop) {
  const int nodes = 2, rpd = 2;
  const int world = nodes * rpd;
  constexpr int kElems = 32;
  constexpr int kRounds = 4;
  constexpr int kBigElems = 12 * kElems;
  sim::MachineConfig m = faulty_machine(nodes, seed, drop);
  m.rma.eager_threshold = 256 + 256 * (seed % 2);
  m.rma.max_batch = 2 + static_cast<int>(seed % 4);
  Cluster c({.machine = m, .ranks_per_device = rpd});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  auto value = [](int origin, int round, int e) {
    return origin * 1000.0 + round * 100.0 + 0.5 * e;
  };
  const std::size_t win_elems = kRounds * kElems + kBigElems;
  std::vector<std::span<double>> recv(static_cast<size_t>(world));
  std::vector<std::span<double>> send(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    gpu::Device& d = c.device(g / rpd);
    recv[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    send[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    for (double& x : recv[static_cast<size_t>(g)]) x = -1.0;
  }
  c.run([&](Context& ctx) -> Proc<void> {
    const int g = ctx.world_rank;
    Window w = co_await win_create(ctx, kCommWorld, recv[static_cast<size_t>(g)]);
    const int peer = (g + rpd) % world;
    std::span<double> sbuf = send[static_cast<size_t>(g)];
    for (int round = 0; round < kRounds; ++round) {
      std::span<double> chunk =
          sbuf.subspan(static_cast<size_t>(round) * kElems, kElems);
      for (int e = 0; e < kElems; ++e) {
        chunk[static_cast<size_t>(e)] = value(g, round, e);
      }
      co_await put_notify(ctx, w, peer, static_cast<size_t>(round) * kElems,
                          std::span<const double>(chunk), /*tag=*/round);
    }
    std::span<double> big = sbuf.subspan(
        static_cast<size_t>(kRounds) * kElems, kBigElems);
    for (int e = 0; e < kBigElems; ++e) {
      big[static_cast<size_t>(e)] = value(g, 9, e);
    }
    co_await put_notify(ctx, w, peer, static_cast<size_t>(kRounds) * kElems,
                        std::span<const double>(big), /*tag=*/99);
    co_await flush(ctx);
    co_await wait_notifications(ctx, w, kAnySource, kAnyTag, kRounds + 1);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  std::string errors;
  for (int g = 0; g < world; ++g) {
    const int origin = (g + rpd) % world;
    const std::span<double> buf = recv[static_cast<size_t>(g)];
    for (int round = 0; round < kRounds; ++round) {
      for (int e = 0; e < kElems; ++e) {
        const double got =
            buf[static_cast<size_t>(round) * kElems + static_cast<size_t>(e)];
        if (got != value(origin, round, e)) {
          std::ostringstream os;
          os << "  payload: rank " << g << " round " << round << " elem " << e
             << " got " << got << " want " << value(origin, round, e) << "\n";
          errors += os.str();
          round = kRounds;
          break;
        }
      }
    }
    for (int e = 0; e < kBigElems; ++e) {
      if (buf[static_cast<size_t>(kRounds * kElems + e)] != value(origin, 9, e)) {
        errors += "  payload: rendezvous put corrupted\n";
        break;
      }
    }
  }
  obs.finalize();
  for (const std::string& v : obs.violations()) errors += "  oracle: " + v + "\n";
  return errors;
}

// 3 drop rates × 2 workloads × (default) 36 seeds = 216 combinations, on
// top of the loss dimension schedule_fuzz_test sweeps across all six
// workloads. Seed range 0x58000 is disjoint from every other sweep.
TEST(FaultSweep, DropRateByWorkloadBySeed) {
  static constexpr double kRates[] = {0.001, 0.01, 0.05};
  const int seeds = fuzz_seeds_env(36);
  for (double drop : kRates) {
    for (int i = 0; i < seeds; ++i) {
      const std::uint64_t seed = 0x58000 + static_cast<std::uint64_t>(i);
      std::string e = run_faulty_stencil(seed, drop);
      ASSERT_TRUE(e.empty()) << "stencil drop=" << drop << " seed=" << seed
                             << "\n" << e;
      e = run_faulty_mixed(seed, drop);
      ASSERT_TRUE(e.empty()) << "mixed drop=" << drop << " seed=" << seed
                             << "\n" << e;
    }
  }
}

}  // namespace
}  // namespace dcuda
