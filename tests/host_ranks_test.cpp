// Tests for the host-ranks extension (§V): ranks running on the host CPU
// that communicate with device ranks through the same notified remote
// memory access machinery.

#include <gtest/gtest.h>

#include "cluster/cluster.h"
#include "dcuda/collectives.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

TEST(HostRanks, IdentityAndSizes) {
  Cluster c({.machine = machine(2), .ranks_per_device = 3, .host_ranks = 2});
  EXPECT_EQ(c.world_size(), 10);
  std::vector<int> host_ranks_seen, device_ranks_seen;
  c.run(
      [&](Context& ctx) -> Proc<void> {  // device ranks
        EXPECT_FALSE(ctx.is_host_rank());
        EXPECT_GE(ctx.device_rank, 0);
        device_ranks_seen.push_back(ctx.world_rank);
        co_await barrier(ctx, kCommWorld);
      },
      [&](Context& ctx) -> Proc<void> {  // host ranks
        EXPECT_TRUE(ctx.is_host_rank());
        EXPECT_EQ(ctx.device_rank, -1);
        EXPECT_EQ(comm_size(ctx, kCommWorld), 10);
        host_ranks_seen.push_back(ctx.world_rank);
        co_await barrier(ctx, kCommWorld);
      });
  EXPECT_EQ(device_ranks_seen.size(), 6u);
  EXPECT_EQ(host_ranks_seen.size(), 4u);
  std::sort(host_ranks_seen.begin(), host_ranks_seen.end());
  EXPECT_EQ(host_ranks_seen, (std::vector<int>{3, 4, 8, 9}));
}

TEST(HostRanks, DeviceToHostPutSameNode) {
  Cluster c({.machine = machine(1), .ranks_per_device = 1, .host_ranks = 1});  // rank 0 = device, rank 1 = host
  auto dev_buf = c.device(0).alloc<int>(8);
  std::vector<int> host_buf(8, 0);
  for (int i = 0; i < 8; ++i) dev_buf[static_cast<size_t>(i)] = 5 * i;
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<int> mine = ctx.is_host_rank() ? std::span<int>(host_buf)
                                             : std::span<int>(dev_buf);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (!ctx.is_host_rank()) {
      co_await put_notify(ctx, w, 1, 0, 8 * sizeof(int), dev_buf.data(), 0);
    } else {
      co_await wait_notifications(ctx, w, 0, 0, 1);
      EXPECT_EQ(host_buf[7], 35);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  EXPECT_EQ(host_buf[3], 15);
}

TEST(HostRanks, HostToDeviceAcrossNodes) {
  Cluster c({.machine = machine(2), .ranks_per_device = 1, .host_ranks = 1});  // world: 0=dev@0, 1=host@0, 2=dev@1, 3=host@1
  auto dev_buf = c.device(1).alloc<double>(4);
  std::vector<double> host_buf{1.5, 2.5, 3.5, 4.5};
  std::fill(dev_buf.begin(), dev_buf.end(), 0.0);
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<double> mine =
        ctx.world_rank == 2 ? std::span<double>(dev_buf) : std::span<double>(host_buf);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 1) {  // host rank on node 0 sends to device rank on node 1
      co_await put_notify(ctx, w, 2, 0, 4 * sizeof(double), host_buf.data(), 7);
    } else if (ctx.world_rank == 2) {
      co_await wait_notifications(ctx, w, 1, 7, 1);
      EXPECT_DOUBLE_EQ(dev_buf[3], 4.5);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  EXPECT_DOUBLE_EQ(dev_buf[0], 1.5);
}

TEST(HostRanks, HostRankComputeChargesHostCpu) {
  Cluster c({.machine = machine(1), .ranks_per_device = 1, .host_ranks = 1});
  sim::Time host_compute_time = 0.0;
  c.run([&](Context& ctx) -> Proc<void> {
    if (ctx.is_host_rank()) {
      const sim::Time t0 = ctx.sim().now();
      co_await ctx.charge_compute(1e9);  // 1 GFlop
      host_compute_time = ctx.sim().now() - t0;
    }
    co_await barrier(ctx, kCommWorld);
  });
  // 1 GFlop at the single-thread cap (50/4 = 12.5 GF/s) = 80 ms.
  EXPECT_NEAR(host_compute_time, 0.08, 0.01);
}

TEST(HostRanks, GetFromHostWindow) {
  Cluster c({.machine = machine(1), .ranks_per_device = 2, .host_ranks = 1});
  std::vector<double> host_data{10.0, 20.0, 30.0};
  std::vector<double> landing(3, 0.0);
  auto dev_pad = c.device(0).alloc<double>(4);
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<double> mine = ctx.is_host_rank() ? std::span<double>(host_data)
                                                : std::span<double>(dev_pad);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {  // device rank reads the host rank's window
      co_await get_notify(ctx, w, 2, 0, 3 * sizeof(double), landing.data(), 4);
      co_await wait_notifications(ctx, w, 2, 4, 1);
      EXPECT_DOUBLE_EQ(landing[2], 30.0);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
}

TEST(HostRanks, CollectivesSpanHostAndDeviceRanks) {
  Cluster c({.machine = machine(2), .ranks_per_device = 2, .host_ranks = 1});  // 6 ranks total, 2 host ranks
  const int world = c.world_size();
  std::vector<std::vector<double>> data(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) data[static_cast<size_t>(g)].assign(2, g + 1.0);
  c.run([&](Context& ctx) -> Proc<void> {
    Collectives coll = co_await Collectives::create(ctx, 2);
    co_await coll.allreduce_sum(ctx, data[static_cast<size_t>(ctx.world_rank)].data(), 2, 4);
    co_await coll.destroy(ctx);
  });
  const double want = world * (world + 1) / 2.0;
  for (int g = 0; g < world; ++g) {
    EXPECT_DOUBLE_EQ(data[static_cast<size_t>(g)][0], want) << "rank " << g;
  }
}

TEST(HostRanks, HostRankQueuesAvoidPcie) {
  // Host-rank command/notification queues use local transport: a pure
  // host-rank ping-pong must not touch the PCIe link.
  Cluster c({.machine = machine(1), .ranks_per_device = 1, .host_ranks = 2});
  std::vector<double> a(4, 1.0), b(4, 2.0);
  const auto txns_before = c.pcie(0).transactions(pcie::Dir::kHostToDevice) +
                           c.pcie(0).transactions(pcie::Dir::kDeviceToHost);
  std::vector<double> dev_pad(4, 0.0);
  c.run([&](Context& ctx) -> Proc<void> {
    // win_create is collective over the world: every rank participates.
    std::span<double> mine(ctx.world_rank == 1 ? a
                           : ctx.world_rank == 2 ? b
                                                 : dev_pad);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (!ctx.is_host_rank()) {
      co_await barrier(ctx, kCommWorld);
      co_await win_free(ctx, w);
      co_return;
    }
    const int peer = ctx.world_rank == 1 ? 2 : 1;
    for (int i = 0; i < 5; ++i) {
      if (ctx.world_rank == 1) {
        co_await put_notify(ctx, w, peer, 0, sizeof(double), mine.data(), 0);
        co_await wait_notifications(ctx, w, peer, 0, 1);
      } else {
        co_await wait_notifications(ctx, w, peer, 0, 1);
        co_await put_notify(ctx, w, peer, 0, sizeof(double), mine.data(), 0);
      }
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  // The device rank's barrier/finish commands still cross PCIe; host-rank
  // traffic must not add hundreds of transactions.
  const auto txns_after = c.pcie(0).transactions(pcie::Dir::kHostToDevice) +
                          c.pcie(0).transactions(pcie::Dir::kDeviceToHost);
  EXPECT_LT(txns_after - txns_before, 30u);
}

}  // namespace
}  // namespace dcuda
