// Schedule-perturbation fuzzing harness (docs/TESTING.md).
//
// Each fuzz case runs a mini-workload on a Cluster whose event schedule is
// perturbed by a seeded sim::Perturbation (tie-break shuffling, link jitter,
// SM pick variation, fault-injection coins) while a sim::InvariantObserver
// checks the runtime's ordering and conservation guarantees. The workload
// result is additionally validated against its serial reference, so a
// schedule-dependent wrong answer is caught even when every protocol
// invariant holds.
//
// The perturbation space has a loss dimension: the seed also picks a
// net::FaultConfig (drop rate ladder 0/0.1%/1%/3%, plus duplicates,
// corruption, delay spikes and link outages at the lossy rungs), so three
// in four seeds run every workload over the lossy fabric with the NIC-level
// go-back-N recovery protocol underneath. Masking Perturbation::kFault
// silences every coin, which lets the shrinker take the loss dimension out
// of a failing case like any other class.
//
// DCUDA_FUZZ_SEEDS=<n> overrides the per-sweep seed count (dial the fuzz
// ctest tier down locally, up in CI).
//
// On failure the harness shrinks the perturbation to a minimal failing class
// mask and prints the seed, the per-class decision counts, the tail of the
// decision trace, and a one-command replay line:
//
//   DCUDA_FUZZ_WORKLOAD=<w> DCUDA_FUZZ_SEED=<s> DCUDA_FUZZ_CLASSES=<m>
//     tests/schedule_fuzz_test --gtest_filter=ScheduleFuzz.ReplayFromEnv
//
// Seed ranges are disjoint per sweep so every case in the suite exercises a
// distinct perturbation (>200 seeds total across the four workloads).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/dpd3d.h"
#include "apps/particles.h"
#include "apps/spmv.h"
#include "apps/stencil.h"
#include "cluster/cluster.h"
#include "net/fault.h"
#include "net/topology.h"
#include "sim/env_config.h"
#include "sim/invariants.h"
#include "sim/perturb.h"

namespace dcuda {
namespace {

using sim::InvariantObserver;
using sim::Perturbation;
using sim::Proc;

// Loss dimension of the perturbation space (docs/TESTING.md "Loss
// battery"): seed % 4 walks the drop-rate ladder — every fourth seed stays
// lossless on the historical wire path — and the lossy rungs add duplicate,
// corruption, delay-spike and (on odd seeds) link-outage coins so the
// go-back-N recovery machinery runs underneath the workload.
net::FaultConfig fuzz_faults(std::uint64_t seed) {
  static constexpr double kDrop[] = {0.0, 0.001, 0.01, 0.03};
  net::FaultConfig f;
  f.drop_prob = kDrop[seed % 4];
  if (f.drop_prob > 0.0) {
    f.dup_prob = 0.005;
    f.corrupt_prob = 0.002;
    f.delay_prob = 0.005;
    if (seed % 2 == 1) f.link_down_prob = 0.0005;
  }
  return f;
}

sim::MachineConfig fuzz_machine(int nodes, std::uint64_t seed,
                                std::uint32_t classes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  m.perturb_seed = seed;
  m.perturb_classes = classes;
  m.fault = fuzz_faults(seed);
  // Backend lane (docs/BACKENDS.md): half of every sweep's seeds run the
  // device-initiated backend, so perturbation × fault × backend coverage
  // comes for free from the existing seed ranges. Bit 2 is independent of
  // the fault-rate selector (seed % 4) within each aligned 8-seed window.
  if ((seed >> 2) & 1) m.backend = sim::RuntimeBackend::kDeviceInitiated;
  // Executor lane (docs/PERF.md, "Parallel engine"): the seed also picks an
  // executor-group count (1/2/4/8) and, on half of those seeds, a second
  // worker thread. Executor knobs never change results — the window
  // protocol is executor-invariant by construction — so every fuzz sweep
  // doubles as an engine-invariance battery across perturbation × fault ×
  // backend × executor combinations.
  m.shards = 1 << ((seed >> 3) & 3);
  if ((seed >> 5) & 1) m.threads = 2;
  // Topology lane (docs/TOPOLOGY.md): bits 6-7 pick the interconnect —
  // flat (historical pipe), fat tree, torus, or flat with 2 NIC rails — and
  // bit 8 doubles the rails on the non-flat kinds, so go-back-N recovery
  // and the FIFO contract get fuzzed over multi-hop routes and striped
  // rails with receive-side resequencing in the loop.
  switch ((seed >> 6) & 3) {
    case 1: m.net.topo.kind = net::TopologyKind::kFatTree; break;
    case 2: m.net.topo.kind = net::TopologyKind::kTorus3D; break;
    case 3: m.net.topo.rails = 2; break;
    default: break;
  }
  if (m.net.topo.kind != net::TopologyKind::kFlat && ((seed >> 8) & 1)) {
    m.net.topo.rails = 2;
  }
  return m;
}

// DCUDA_FUZZ_SEEDS overrides every sweep's seed count (bounded by the
// 0x1000 spacing of the disjoint per-sweep seed ranges).
int sweep_count(int default_count) {
  const int n = sim::env_int("DCUDA_FUZZ_SEEDS", 0);
  if (n <= 0) return default_count;
  return n < 0x1000 ? n : 0xfff;
}

// Outcome of one perturbed run: validation errors (empty == pass) plus the
// perturbation introspection needed for a useful failure report.
struct RunResult {
  double elapsed = 0.0;
  std::string errors;
  std::string obs_report;
  std::uint64_t decisions[Perturbation::kNumClasses] = {};
  std::string trace_txt;
};

void collect(Cluster& c, InvariantObserver& obs, RunResult& r) {
  obs.finalize();
  for (const std::string& v : obs.violations()) {
    r.errors += "  oracle: " + v + "\n";
  }
  r.obs_report = obs.report();
  if (Perturbation* p = c.sim().perturbation()) {
    r.decisions[0] = p->decisions(Perturbation::kTieBreak);
    r.decisions[1] = p->decisions(Perturbation::kLinkJitter);
    r.decisions[2] = p->decisions(Perturbation::kSmPick);
    r.decisions[3] = p->decisions(Perturbation::kFault);
    Perturbation::Decision tail[Perturbation::kTraceCap];
    const std::size_t n = p->trace(tail);
    std::ostringstream os;
    for (std::size_t i = 0; i < n; ++i) {
      os << (tail[i].cls == Perturbation::kTieBreak     ? " t:"
             : tail[i].cls == Perturbation::kLinkJitter ? " j:"
             : tail[i].cls == Perturbation::kSmPick     ? " s:"
                                                        : " f:")
         << std::hex << (tail[i].value >> 48);
    }
    r.trace_txt = os.str();
  }
}

// -- Workloads ---------------------------------------------------------

RunResult run_stencil(std::uint64_t seed, std::uint32_t classes) {
  RunResult r;
  apps::stencil::Config cfg;
  cfg.isize = 16;  // 128-byte halo lines: every notified put is eager
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 4;
  Cluster c({.machine = fuzz_machine(2, seed, classes), .ranks_per_device = 4});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  apps::stencil::Result res = apps::stencil::run_dcuda(c, cfg);
  r.elapsed = res.elapsed;
  static const double want = apps::stencil::reference_checksum(cfg, 2, 4);
  if (std::abs(res.checksum - want) > 1e-9) {
    std::ostringstream os;
    os << "  checksum: stencil got " << res.checksum << " want " << want << "\n";
    r.errors += os.str();
  }
  collect(c, obs, r);
  return r;
}

RunResult run_particles(std::uint64_t seed, std::uint32_t classes) {
  RunResult r;
  apps::particles::Config cfg;
  cfg.cells_per_node = 4;
  cfg.particles_per_cell = 12;
  cfg.iterations = 10;
  cfg.dt = 0.02;
  Cluster c({.machine = fuzz_machine(2, seed, classes), .ranks_per_device = 4});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  apps::particles::Result res = apps::particles::run_dcuda(c, cfg);
  r.elapsed = res.elapsed;
  static const apps::particles::Result ref = apps::particles::reference(cfg, 2);
  if (res.total_particles != ref.total_particles) {
    std::ostringstream os;
    os << "  conservation: " << res.total_particles << " particles, want "
       << ref.total_particles << "\n";
    r.errors += os.str();
  }
  if (std::abs(res.checksum - ref.checksum) >
      1e-9 * std::abs(ref.checksum) + 1e-9) {
    std::ostringstream os;
    os << "  checksum: particles got " << res.checksum << " want "
       << ref.checksum << "\n";
    r.errors += os.str();
  }
  collect(c, obs, r);
  return r;
}

RunResult run_spmv(std::uint64_t seed, std::uint32_t classes) {
  RunResult r;
  apps::spmv::Config cfg;
  cfg.n_dev = 32;  // 8 rows per rank at rpd=4
  cfg.density = 0.05;
  cfg.iterations = 2;
  Cluster c({.machine = fuzz_machine(4, seed, classes), .ranks_per_device = 4});  // 2x2 device grid
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  apps::spmv::Result res = apps::spmv::run_dcuda(c, cfg);
  r.elapsed = res.elapsed;
  static const double want = apps::spmv::reference_checksum(cfg, 4);
  if (std::abs(res.checksum - want) > 1e-9 * std::abs(want) + 1e-9) {
    std::ostringstream os;
    os << "  checksum: spmv got " << res.checksum << " want " << want << "\n";
    r.errors += os.str();
  }
  collect(c, obs, r);
  return r;
}

// 3-D DPD with the 27-direction halo exchange, skewed density and the
// work-adoption rebalance tickets in the loop (docs/TESTING.md, label
// `dpd3d`). The physics core runs in a fixed floating-point order, so the
// checksum must be *bitwise* equal to the serial reference under every
// perturbation, fault rung, backend, executor layout and topology lane —
// and the halo oracle plus particle conservation must stay clean.
RunResult run_dpd3d_impl(std::uint64_t seed, std::uint32_t classes,
                         bool break_compaction) {
  RunResult r;
  apps::dpd3d::Config cfg;
  cfg.cells_per_node = 4;  // 2 nodes -> 8 global cells, the 2 x 2 x 2 grid
  cfg.particles_per_cell = 12;
  cfg.iterations = 6;
  cfg.dt = 0.05;
  cfg.density = apps::dpd3d::Density::kSkewed;
  cfg.skew_drift = 1.0;
  cfg.rebalance = true;  // ticket puts ride the same perturbed schedule
  cfg.break_compaction = break_compaction;
  Cluster c({.machine = fuzz_machine(2, seed, classes), .ranks_per_device = 4});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  apps::dpd3d::Result res = apps::dpd3d::run_dcuda(c, cfg);
  r.elapsed = res.elapsed;
  const std::int64_t want_particles = 2ll * 4 * cfg.particles_per_cell;
  if (res.total_particles != want_particles) {
    std::ostringstream os;
    os << "  conservation: " << res.total_particles << " particles, want "
       << want_particles << "\n";
    r.errors += os.str();
  }
  if (res.halo_violations != 0) {
    std::ostringstream os;
    os << "  halo oracle: " << res.halo_violations << " geometry violations\n";
    r.errors += os.str();
  }
  apps::dpd3d::Config clean = cfg;
  clean.break_compaction = false;
  static const apps::dpd3d::Result ref = apps::dpd3d::reference(clean, 2);
  if (!break_compaction && res.checksum != ref.checksum) {
    std::ostringstream os;
    os << "  checksum: dpd3d got " << res.checksum << " want " << ref.checksum
       << " (bitwise)\n";
    r.errors += os.str();
  }
  if (!break_compaction && res.halo_received_total != ref.halo_received_total) {
    std::ostringstream os;
    os << "  halo total: got " << res.halo_received_total << " want "
       << ref.halo_received_total << "\n";
    r.errors += os.str();
  }
  collect(c, obs, r);
  return r;
}

RunResult run_dpd3d(std::uint64_t seed, std::uint32_t classes) {
  return run_dpd3d_impl(seed, classes, /*break_compaction=*/false);
}

// Collectives and wildcard matching under perturbation: bcast_notify tree,
// a notified-put ring, a device-communicator barrier, and a shared-memory
// multicast (put_notify_all) — the operations whose correctness leans
// hardest on notification ordering.
RunResult run_collectives(std::uint64_t seed, std::uint32_t classes) {
  RunResult r;
  const int nodes = 2, rpd = 3;
  const int world = nodes * rpd;
  Cluster c({.machine = fuzz_machine(nodes, seed, classes), .ranks_per_device = rpd});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  std::vector<std::span<double>> bufs;
  for (int n = 0; n < nodes; ++n)
    for (int k = 0; k < rpd; ++k) bufs.push_back(c.device(n).alloc<double>(16));
  for (int g = 0; g < world; ++g)
    for (double& x : bufs[static_cast<size_t>(g)]) x = g == 0 ? 7.75 : 0.0;
  r.elapsed = c.run([&](Context& ctx) -> Proc<void> {
    auto mine = bufs[static_cast<size_t>(ctx.world_rank)];
    Window w = co_await win_create(ctx, kCommWorld, mine);
    co_await bcast_notify(ctx, w, kCommWorld, 0, 0, 16 * sizeof(double),
                          mine.data(), 9);
    co_await barrier(ctx, kCommWorld);
    // Notified-put ring: three rounds, tag per round.
    const int peer = (ctx.world_rank + 1) % ctx.world_size;
    for (int i = 0; i < 3; ++i) {
      co_await put_notify(ctx, w, peer, 0, 8 * sizeof(double), mine.data(), i);
      co_await wait_notifications(ctx, w, kAnySource, i, 1);
    }
    co_await barrier(ctx, kCommDevice);
    // Multicast from world rank 0 to every rank of node 1.
    if (ctx.world_rank == 0) {
      co_await put_notify_all(ctx, w, rpd, 0, 4 * sizeof(double), mine.data(), 77);
    }
    if (ctx.world_rank >= rpd) {
      co_await wait_notifications(ctx, w, kAnySource, 77, 1);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  for (int g = 0; g < world; ++g) {
    if (bufs[static_cast<size_t>(g)][15] != 7.75) {
      std::ostringstream os;
      os << "  bcast payload missing at rank " << g << "\n";
      r.errors += os.str();
    }
  }
  collect(c, obs, r);
  return r;
}

// Eager/aggregated small-put fast path (sim::RmaConfig) under perturbation:
// every rank streams same-sized notified puts to its peer on the other node
// (all below the eager threshold, so they aggregate), plus one
// rendezvous-sized put mixing the reference path in. The seed varies the
// protocol knobs too, so the sweep covers threshold × batch geometry.
// Payloads are validated byte-for-byte after the run; the oracle checks the
// eager-batch FIFO/conservation hooks and notified-put ordering.
RunResult run_eager(std::uint64_t seed, std::uint32_t classes) {
  RunResult r;
  const int nodes = 2, rpd = 3;
  const int world = nodes * rpd;
  constexpr int kElems = 32;   // 256 bytes per eager put
  constexpr int kRounds = 6;
  constexpr int kBigElems = 16 * kElems;  // 4 kB: above every threshold used
  sim::MachineConfig m = fuzz_machine(nodes, seed, classes);
  m.rma.eager_threshold = 256 + 128 * (seed % 3);       // 256/384/512 B
  m.rma.max_batch = 2 + static_cast<int>(seed % 5);     // 2..6 records
  m.rma.aggregation_window = sim::micros(1.0 + 0.5 * (seed % 4));
  Cluster c({.machine = m, .ranks_per_device = rpd});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);

  auto value = [](int origin, int round, int e) {
    return origin * 1000.0 + round * 100.0 + 0.5 * e;
  };
  const std::size_t win_elems = kRounds * kElems + kBigElems;
  std::vector<std::span<double>> recv(static_cast<size_t>(world));
  std::vector<std::span<double>> send(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    gpu::Device& d = c.device(g / rpd);
    recv[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    send[static_cast<size_t>(g)] = d.alloc<double>((kRounds + 16) * kElems);
    for (double& x : recv[static_cast<size_t>(g)]) x = -1.0;
  }
  r.elapsed = c.run([&](Context& ctx) -> Proc<void> {
    const int g = ctx.world_rank;
    Window w = co_await win_create(ctx, kCommWorld, recv[static_cast<size_t>(g)]);
    const int peer = (g + rpd) % world;  // same local rank, other node
    std::span<double> sbuf = send[static_cast<size_t>(g)];
    for (int round = 0; round < kRounds; ++round) {
      std::span<double> chunk = sbuf.subspan(
          static_cast<size_t>(round) * kElems, kElems);
      for (int e = 0; e < kElems; ++e) chunk[static_cast<size_t>(e)] = value(g, round, e);
      co_await put_notify(ctx, w, peer, static_cast<size_t>(round) * kElems,
                          std::span<const double>(chunk), /*tag=*/round);
    }
    std::span<double> big = sbuf.subspan(kRounds * kElems, kBigElems);
    for (int e = 0; e < kBigElems; ++e) big[static_cast<size_t>(e)] = value(g, 9, e);
    co_await put_notify(ctx, w, peer, static_cast<size_t>(kRounds) * kElems,
                        std::span<const double>(big), /*tag=*/99);
    co_await flush(ctx);
    co_await wait_notifications(ctx, w, kAnySource, kAnyTag, kRounds + 1);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  for (int g = 0; g < world; ++g) {
    const int origin = (g + rpd) % world;
    const std::span<double> buf = recv[static_cast<size_t>(g)];
    for (int round = 0; round < kRounds; ++round) {
      for (int e = 0; e < kElems; ++e) {
        const double got = buf[static_cast<size_t>(round) * kElems +
                               static_cast<size_t>(e)];
        if (got != value(origin, round, e)) {
          std::ostringstream os;
          os << "  payload: rank " << g << " round " << round << " elem " << e
             << " got " << got << " want " << value(origin, round, e) << "\n";
          r.errors += os.str();
          round = kRounds;  // one line per rank is enough
          break;
        }
      }
    }
    for (int e = 0; e < kBigElems; ++e) {
      if (buf[static_cast<size_t>(kRounds * kElems + e)] != value(origin, 9, e)) {
        std::ostringstream os;
        os << "  payload: rank " << g << " rendezvous elem " << e << " wrong\n";
        r.errors += os.str();
        break;
      }
    }
  }
  collect(c, obs, r);
  return r;
}

// Mixed eager/rendezvous interleaving: each round sends a large
// NON-notified put (alternating 4 kB — rendezvous path, MPI-eager wire —
// and 12 kB — above the MPI eager limit, RTS-CTS) immediately followed by a
// small notified put, the particles pattern that can break non-overtaking
// across the protocol boundary. The receiver verifies the big payload *the
// moment the small notification matches*: a notification that beat its
// preceding data put shows up as a payload error even if every oracle were
// blind to it.
RunResult run_mixed(std::uint64_t seed, std::uint32_t classes) {
  RunResult r;
  const int nodes = 2, rpd = 2;
  const int world = nodes * rpd;
  constexpr int kElems = 32;     // 256 B: on the eager path at every threshold
  constexpr int kRounds = 4;
  constexpr int kBigMax = 1536;  // 12 kB > MpiConfig::eager_limit
  sim::MachineConfig m = fuzz_machine(nodes, seed, classes);
  m.rma.eager_threshold = 256 + 256 * (seed % 2);    // 256/512 B
  m.rma.max_batch = 2 + static_cast<int>(seed % 4);  // 2..5 records
  m.rma.aggregation_window = sim::micros(1.0 + 0.5 * (seed % 3));
  Cluster c({.machine = m, .ranks_per_device = rpd});
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);

  auto big_elems = [](int round) { return round % 2 == 0 ? 512 : kBigMax; };
  auto small_val = [](int origin, int round, int e) {
    return origin * 1000.0 + round * 100.0 + 0.5 * e;
  };
  auto big_val = [](int origin, int round, int e) {
    return origin * 2000.0 + round * 200.0 + 0.25 * e;
  };
  // Window layout (doubles): kRounds small slots, then kRounds big slots.
  const std::size_t big_base = static_cast<size_t>(kRounds) * kElems;
  auto big_off = [&](int round) {
    return big_base + static_cast<size_t>(round) * kBigMax;
  };
  const std::size_t win_elems = big_base + static_cast<size_t>(kRounds) * kBigMax;
  std::vector<std::span<double>> recv(static_cast<size_t>(world));
  std::vector<std::span<double>> send(static_cast<size_t>(world));
  for (int g = 0; g < world; ++g) {
    gpu::Device& d = c.device(g / rpd);
    recv[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    send[static_cast<size_t>(g)] = d.alloc<double>(win_elems);
    for (double& x : recv[static_cast<size_t>(g)]) x = -1.0;
  }
  std::string late_data;
  r.elapsed = c.run([&](Context& ctx) -> Proc<void> {
    const int g = ctx.world_rank;
    Window w = co_await win_create(ctx, kCommWorld, recv[static_cast<size_t>(g)]);
    const int peer = (g + rpd) % world;    // same local rank, other node
    const int origin = (g + rpd) % world;  // symmetric for two nodes
    std::span<double> sbuf = send[static_cast<size_t>(g)];
    const std::span<double> rbuf = recv[static_cast<size_t>(g)];
    for (int round = 0; round < kRounds; ++round) {
      const int bn = big_elems(round);
      std::span<double> big = sbuf.subspan(big_off(round), static_cast<size_t>(bn));
      for (int e = 0; e < bn; ++e) big[static_cast<size_t>(e)] = big_val(g, round, e);
      std::span<double> small =
          sbuf.subspan(static_cast<size_t>(round) * kElems, kElems);
      for (int e = 0; e < kElems; ++e) small[static_cast<size_t>(e)] = small_val(g, round, e);
      co_await put(ctx, w, peer, big_off(round), std::span<const double>(big));
      co_await put_notify(ctx, w, peer, static_cast<size_t>(round) * kElems,
                          std::span<const double>(small), /*tag=*/round);
      // The notification implies the same-origin big put of this round (and
      // all earlier rounds) landed (§III-B). Check the window right now.
      co_await wait_notifications(ctx, w, origin, /*tag=*/round, 1);
      for (int e = 0; e < bn; ++e) {
        if (rbuf[big_off(round) + static_cast<size_t>(e)] !=
            big_val(origin, round, e)) {
          std::ostringstream os;
          os << "  non-overtaking: rank " << g << " round " << round
             << " notified (tag " << round << ") before big elem " << e
             << " landed\n";
          late_data += os.str();
          break;
        }
      }
    }
    co_await flush(ctx);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  r.errors += late_data;
  for (int g = 0; g < world; ++g) {
    const int origin = (g + rpd) % world;
    const std::span<double> buf = recv[static_cast<size_t>(g)];
    for (int round = 0; round < kRounds && r.errors.empty(); ++round) {
      for (int e = 0; e < kElems; ++e) {
        if (buf[static_cast<size_t>(round) * kElems + static_cast<size_t>(e)] !=
            small_val(origin, round, e)) {
          std::ostringstream os;
          os << "  payload: rank " << g << " small round " << round
             << " elem " << e << " wrong\n";
          r.errors += os.str();
          break;
        }
      }
    }
  }
  collect(c, obs, r);
  return r;
}

// -- Driver ------------------------------------------------------------

struct Workload {
  const char* name;
  RunResult (*run)(std::uint64_t seed, std::uint32_t classes);
};

constexpr Workload kWorkloads[] = {
    {"stencil", run_stencil},
    {"particles", run_particles},
    {"spmv", run_spmv},
    {"collectives", run_collectives},
    {"eager", run_eager},
    {"mixed", run_mixed},
    {"dpd3d", run_dpd3d},
};
constexpr std::size_t kNumWorkloads = sizeof(kWorkloads) / sizeof(kWorkloads[0]);

const Workload* find_workload(const std::string& name) {
  for (const Workload& w : kWorkloads) {
    if (name == w.name) return &w;
  }
  return nullptr;
}

// Shrinks a failing seed to a minimal perturbation class mask: masks are
// tried in increasing popcount, the first that still fails wins. Masked
// class streams draw nothing, so the surviving classes replay the decisions
// of the full run for as long as the schedules coincide.
std::uint32_t shrink_classes(const Workload& w, std::uint64_t seed) {
  static constexpr std::uint32_t kMasks[] = {
      Perturbation::kTieBreak,
      Perturbation::kLinkJitter,
      Perturbation::kSmPick,
      Perturbation::kFault,
      Perturbation::kRoute,
      Perturbation::kTieBreak | Perturbation::kLinkJitter,
      Perturbation::kTieBreak | Perturbation::kSmPick,
      Perturbation::kTieBreak | Perturbation::kFault,
      Perturbation::kLinkJitter | Perturbation::kSmPick,
      Perturbation::kLinkJitter | Perturbation::kFault,
      Perturbation::kSmPick | Perturbation::kFault,
      Perturbation::kTieBreak | Perturbation::kLinkJitter | Perturbation::kSmPick,
      Perturbation::kTieBreak | Perturbation::kLinkJitter | Perturbation::kFault,
      Perturbation::kTieBreak | Perturbation::kSmPick | Perturbation::kFault,
      Perturbation::kLinkJitter | Perturbation::kSmPick | Perturbation::kFault,
  };
  for (std::uint32_t m : kMasks) {
    if (!w.run(seed, m).errors.empty()) return m;
  }
  return Perturbation::kAllClasses;
}

std::string failure_report(const Workload& w, std::uint64_t seed) {
  const std::uint32_t minimal = shrink_classes(w, seed);
  RunResult r = w.run(seed, minimal);
  // r.errors already lists the oracle violations; keep only the counts line
  // of the observer report.
  const std::string counts = r.obs_report.substr(0, r.obs_report.find('\n') + 1);
  std::ostringstream os;
  os << "schedule fuzz failure: workload=" << w.name << " seed=" << seed
     << " minimal classes=0x" << std::hex << minimal << std::dec << "\n"
     << r.errors << "  " << counts
     << "  decisions tie-break/jitter/sm-pick/fault: " << r.decisions[0] << "/"
     << r.decisions[1] << "/" << r.decisions[2] << "/" << r.decisions[3] << "\n"
     << "  decision tail:" << r.trace_txt << "\n"
     << "  replay: DCUDA_FUZZ_WORKLOAD=" << w.name << " DCUDA_FUZZ_SEED="
     << seed << " DCUDA_FUZZ_CLASSES=0x" << std::hex << minimal << std::dec
     << " tests/schedule_fuzz_test --gtest_filter=ScheduleFuzz.ReplayFromEnv\n";
  return os.str();
}

void sweep(const Workload& w, std::uint64_t seed_base, int count) {
  std::uint64_t total_decisions = 0;
  for (int i = 0; i < count; ++i) {
    const std::uint64_t seed = seed_base + static_cast<std::uint64_t>(i);
    RunResult r = w.run(seed, Perturbation::kAllClasses);
    ASSERT_TRUE(r.errors.empty()) << failure_report(w, seed);
    total_decisions +=
        r.decisions[0] + r.decisions[1] + r.decisions[2] + r.decisions[3];
  }
  // The perturbation must actually be exercised, or the sweep proves nothing.
  EXPECT_GT(total_decisions, 0u) << w.name << " sweep drew no decisions";
}

// -- Seed sweeps (disjoint ranges, >200 distinct seeds in total) --------

TEST(ScheduleFuzz, StencilSweep) { sweep(kWorkloads[0], 0x51000, sweep_count(200)); }
TEST(ScheduleFuzz, ParticlesSweep) { sweep(kWorkloads[1], 0x52000, sweep_count(150)); }
TEST(ScheduleFuzz, SpmvSweep) { sweep(kWorkloads[2], 0x53000, sweep_count(120)); }
TEST(ScheduleFuzz, CollectivesSweep) { sweep(kWorkloads[3], 0x54000, sweep_count(200)); }
TEST(ScheduleFuzz, EagerAggSweep) { sweep(kWorkloads[4], 0x56000, sweep_count(150)); }
TEST(ScheduleFuzz, MixedSizeSweep) { sweep(kWorkloads[5], 0x57000, sweep_count(120)); }
TEST(ScheduleFuzz, Dpd3dSweep) { sweep(kWorkloads[6], 0x59000, sweep_count(120)); }

// In-tree mutation check (docs/TESTING.md): breaking the migration
// send-buffer compaction must fire the particle-conservation oracle, also
// under a perturbed lossy schedule — otherwise the dpd3d sweep's oracle is
// dead weight. A handful of seeds across the fault/backend/executor lanes
// is enough; each must report a conservation error and nothing may hang.
TEST(ScheduleFuzz, Dpd3dBrokenCompactionIsCaught) {
  for (std::uint64_t seed : {0x5a001ull, 0x5a002ull, 0x5a006ull, 0x5a00bull}) {
    RunResult r = run_dpd3d_impl(seed, Perturbation::kAllClasses,
                                 /*break_compaction=*/true);
    EXPECT_NE(r.errors.find("conservation"), std::string::npos)
        << "seed " << seed << ": mutation survived; errors were:\n" << r.errors;
  }
}

// 25-seed smoke across all workloads (the ctest `fuzz` label's quick gate).
TEST(FuzzSmoke, TwentyFiveSeedsAcrossWorkloads) {
  for (int i = 0; i < 25; ++i) {
    const Workload& w = kWorkloads[static_cast<std::size_t>(i) % kNumWorkloads];
    const std::uint64_t seed = 0x55000 + static_cast<std::uint64_t>(i);
    RunResult r = w.run(seed, Perturbation::kAllClasses);
    ASSERT_TRUE(r.errors.empty()) << failure_report(w, seed);
  }
}

// -- Reproducibility ----------------------------------------------------

TEST(ScheduleFuzz, SameSeedReplaysBitIdentically) {
  for (std::uint64_t seed : {0x61001ull, 0x61002ull, 0x61003ull}) {
    RunResult a = run_stencil(seed, Perturbation::kAllClasses);
    RunResult b = run_stencil(seed, Perturbation::kAllClasses);
    ASSERT_TRUE(a.errors.empty()) << failure_report(kWorkloads[0], seed);
    EXPECT_EQ(a.elapsed, b.elapsed) << "seed " << seed;
    for (int c = 0; c < Perturbation::kNumClasses; ++c) {
      EXPECT_EQ(a.decisions[c], b.decisions[c]) << "seed " << seed;
    }
    EXPECT_EQ(a.trace_txt, b.trace_txt) << "seed " << seed;
  }
}

TEST(ScheduleFuzz, PerturbationActuallyChangesTheSchedule) {
  Cluster canonical({.machine = fuzz_machine(2, 0, 0), .ranks_per_device = 4});
  apps::stencil::Config cfg;
  cfg.isize = 16;
  cfg.jlocal = 2;
  cfg.ksize = 3;
  cfg.iterations = 4;
  const double base = apps::stencil::run_dcuda(canonical, cfg).elapsed;
  bool any_diff = false;
  for (std::uint64_t seed : {0x62001ull, 0x62002ull, 0x62003ull}) {
    RunResult r = run_stencil(seed, Perturbation::kAllClasses);
    any_diff = any_diff || r.elapsed != base;
  }
  EXPECT_TRUE(any_diff) << "three perturbed schedules all matched canonical";
}

// -- Deadlock detection under perturbation ------------------------------

TEST(ScheduleFuzz, DeadlockIsDiagnosedNotHung) {
  for (std::uint64_t seed : {0x63001ull, 0x63002ull, 0x63003ull}) {
    Cluster c({.machine = fuzz_machine(1, seed, Perturbation::kAllClasses), .ranks_per_device = 2});
    auto mem = c.device(0).alloc<std::byte>(64);
    try {
      c.run([&](Context& ctx) -> Proc<void> {
        Window w = co_await win_create(ctx, kCommWorld, mem);
        if (ctx.world_rank == 0) {
          // Nobody sends: rank 0 hangs, rank 1 blocks in the barrier.
          co_await wait_notifications(ctx, w, kAnySource, 5, 1);
        }
        co_await barrier(ctx, kCommWorld);
        co_await win_free(ctx, w);
      });
      FAIL() << "deadlock not detected under seed " << seed;
    } catch (const sim::DeadlockError& e) {
      EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos)
          << e.what();
    }
  }
}

// -- One-command replay --------------------------------------------------

TEST(ScheduleFuzz, ReplayFromEnv) {
  const std::optional<std::uint64_t> seed_opt =
      sim::env_u64_opt("DCUDA_FUZZ_SEED");
  if (!seed_opt) {
    GTEST_SKIP() << "set DCUDA_FUZZ_SEED (optionally DCUDA_FUZZ_WORKLOAD, "
                    "DCUDA_FUZZ_CLASSES) to replay a fuzz case";
  }
  const std::uint64_t seed = *seed_opt;
  const std::optional<std::string> wl_s = sim::env_string("DCUDA_FUZZ_WORKLOAD");
  const std::uint32_t classes = static_cast<std::uint32_t>(
      sim::env_u64("DCUDA_FUZZ_CLASSES", Perturbation::kAllClasses));
  std::vector<const Workload*> todo;
  if (wl_s) {
    const Workload* w = find_workload(wl_s->c_str());
    ASSERT_NE(w, nullptr) << "unknown DCUDA_FUZZ_WORKLOAD " << *wl_s;
    todo.push_back(w);
  } else {
    for (const Workload& w : kWorkloads) todo.push_back(&w);
  }
  for (const Workload* w : todo) {
    RunResult r = w->run(seed, classes);
    std::printf("replay %s seed=%llu classes=0x%x elapsed=%.9g\n%s", w->name,
                static_cast<unsigned long long>(seed), classes, r.elapsed,
                r.obs_report.c_str());
    EXPECT_TRUE(r.errors.empty())
        << "workload=" << w->name << " seed=" << seed << " classes=0x"
        << std::hex << classes << std::dec << "\n"
        << r.errors << r.obs_report << "  decision tail:" << r.trace_txt;
  }
}

// -- Oracle self-tests ---------------------------------------------------
//
// The oracles must be falsifiable: each check fires on a hand-built
// violating history (the cheap half of the mutation check documented in
// docs/TESTING.md).

TEST(InvariantOracle, DetectsFabricOvertaking) {
  InvariantObserver obs;
  obs.fabric_delivered(0, 1, 1);
  obs.fabric_delivered(0, 1, 3);  // wire_seq 2 overtaken
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("fabric non-overtaking"), std::string::npos);
}

TEST(InvariantOracle, DetectsQueueCreditOverflow) {
  InvariantObserver obs;
  obs.queue_credit(5, 0, 4);  // five in flight in a four-entry ring
  EXPECT_FALSE(obs.ok());
  obs = {};
  obs.queue_credit(2, 3, 4);  // received more than was sent
  EXPECT_FALSE(obs.ok());
}

TEST(InvariantOracle, DetectsNotifiedPutOvertaking) {
  InvariantObserver obs;
  obs.notify_put_ordered(0, 1, 7, 64, /*tag=*/1);
  obs.notify_put_ordered(0, 1, 7, 64, /*tag=*/2);
  obs.notify_put_delivered(0, 1, 7, 64, /*tag=*/2);
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("overtaking"), std::string::npos);
}

TEST(InvariantOracle, DetectsCrossSizeOvertaking) {
  // The §III-B guarantee holds regardless of size: an eager-path
  // notification must not overtake an earlier rendezvous-path one on the
  // same (origin, target, window). Bytes are diagnostic, not key.
  InvariantObserver obs;
  obs.notify_put_ordered(0, 1, 7, 1 << 20, /*tag=*/1);
  obs.notify_put_ordered(0, 1, 7, 64, /*tag=*/2);
  obs.notify_put_delivered(0, 1, 7, 64, /*tag=*/2);
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("overtaking"), std::string::npos);
}

TEST(InvariantOracle, DetectsNotificationOvertakingData) {
  // The count put_notify commits while an earlier large cell put is still
  // in flight (the particles mixed-size failure mode).
  InvariantObserver obs;
  obs.data_put_issued(0, 1);            // large cell put, different window
  obs.data_put_issued(0, 1);            // the count put itself
  obs.notify_put_ordered(0, 1, 9, 4, /*tag=*/3);
  obs.data_put_landed(0, 1);            // only one of the two landed
  obs.notify_put_delivered(0, 1, 9, 4, /*tag=*/3);
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("notification overtook data"), std::string::npos);
}

TEST(InvariantOracle, DetectsLostDataPut) {
  InvariantObserver obs;
  obs.data_put_issued(0, 1);
  obs.finalize();
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("data put conservation"), std::string::npos);
  obs = {};
  obs.data_put_issued(2, 3);
  obs.data_put_landed(2, 3);
  obs.data_put_landed(2, 3);  // landed twice for one issue
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("landed without issue"), std::string::npos);
}

TEST(InvariantOracle, CleanMixedSizeDataHistoryPasses) {
  // Two data puts (one per protocol path) followed by a notified count put;
  // everything lands before the notification commits.
  InvariantObserver obs;
  obs.data_put_issued(0, 1);                       // rendezvous cell put
  obs.data_put_issued(0, 1);                       // eager count put
  obs.notify_put_ordered(0, 1, 9, 4, /*tag=*/3);
  obs.data_put_landed(0, 1);
  obs.data_put_landed(0, 1);
  obs.notify_put_delivered(0, 1, 9, 4, /*tag=*/3);
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << obs.report();
}

TEST(InvariantOracle, DetectsLostNotification) {
  InvariantObserver obs;
  obs.notify_sent();
  obs.finalize();
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("conservation"), std::string::npos);
}

TEST(InvariantOracle, DetectsMatchWithoutDelivery) {
  InvariantObserver obs;
  obs.notification_matched();
  EXPECT_FALSE(obs.ok());
}

TEST(InvariantOracle, DetectsWindowUseAfterFree) {
  InvariantObserver obs;
  obs.window_created(3);
  obs.window_freed(3);
  obs.window_accessed(3);
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("after win_free"), std::string::npos);
  obs = {};
  obs.window_accessed(4);
  EXPECT_NE(obs.report().find("before win_create"), std::string::npos);
}

TEST(InvariantOracle, DetectsEagerBatchOvertaking) {
  InvariantObserver obs;
  obs.eager_batch_flushed(0, 1, 1, 2);
  obs.eager_batch_flushed(0, 1, 2, 3);
  obs.eager_batch_delivered(0, 1, 2, 3);  // batch 1 overtaken
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("eager batch overtaking"), std::string::npos);
}

TEST(InvariantOracle, DetectsEagerBatchRecordMismatch) {
  InvariantObserver obs;
  obs.eager_batch_flushed(0, 1, 1, 2);
  obs.eager_batch_delivered(0, 1, 1, 3);  // one record too many
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("record count mismatch"), std::string::npos);
}

TEST(InvariantOracle, DetectsEagerBatchDeliveryWithoutFlush) {
  InvariantObserver obs;
  obs.eager_batch_delivered(0, 1, 1, 1);
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("delivered without flush"), std::string::npos);
}

TEST(InvariantOracle, DetectsLostEagerBatch) {
  InvariantObserver obs;
  obs.eager_batch_flushed(0, 1, 1, 4);
  obs.finalize();
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("eager batch conservation"), std::string::npos);
}

TEST(InvariantOracle, CleanEagerHistoryPasses) {
  InvariantObserver obs;
  obs.eager_batch_flushed(0, 1, 1, 2);
  obs.eager_batch_delivered(0, 1, 1, 2);
  obs.eager_batch_flushed(0, 1, 2, 1);
  obs.eager_batch_flushed(1, 0, 1, 3);  // independent pair
  obs.eager_batch_delivered(1, 0, 1, 3);
  obs.eager_batch_delivered(0, 1, 2, 1);
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << obs.report();
}

TEST(InvariantOracle, DetectsBarrierRoundDisagreement) {
  InvariantObserver obs;
  obs.barrier_enter(/*comm=*/-1, /*rank=*/0, /*participants=*/2);
  obs.barrier_exit(-1, 0);  // rank 1 never entered round 1
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("barrier round agreement"), std::string::npos);
}

TEST(InvariantOracle, CleanHistoryPasses) {
  InvariantObserver obs;
  obs.fabric_delivered(0, 1, 1);
  obs.fabric_delivered(0, 1, 2);
  obs.queue_credit(1, 0, 4);
  obs.queue_credit(1, 1, 4);
  obs.window_created(3);
  obs.window_accessed(3);
  obs.notify_sent();
  obs.notify_put_ordered(0, 1, 3, 64, 5);
  obs.notify_put_delivered(0, 1, 3, 64, 5);
  obs.notification_delivered();
  obs.notification_matched();
  obs.window_freed(3);
  obs.barrier_enter(-1, 0, 2);
  obs.barrier_enter(-1, 1, 2);
  obs.barrier_exit(-1, 0);
  obs.barrier_exit(-1, 1);
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << obs.report();
  EXPECT_GT(obs.checks_performed(), 0u);
}

}  // namespace
}  // namespace dcuda
