// Unit and property tests for SharedResource (processor sharing with per-job
// cap) and FifoResource — the timing model behind SMs, device memory, PCIe
// and NIC serialization.

#include <gtest/gtest.h>

#include <vector>

#include "sim/proc.h"
#include "sim/random.h"
#include "sim/resource.h"
#include "sim/simulation.h"
#include "sim/units.h"

namespace dcuda::sim {
namespace {

Proc<void> job(Simulation& sim, SharedResource& res, Dur start, double work,
               Time& finished) {
  co_await sim.delay(start);
  co_await res.use(work);
  finished = sim.now();
}

TEST(SharedResource, SingleJobRunsAtFullRate) {
  Simulation sim;
  SharedResource res(sim, 100.0);  // 100 units/s
  Time fin = -1;
  sim.spawn(job(sim, res, 0.0, 50.0, fin), "job");
  sim.run();
  EXPECT_NEAR(fin, 0.5, 1e-12);
}

TEST(SharedResource, TwoEqualJobsShareEqually) {
  Simulation sim;
  SharedResource res(sim, 100.0);
  Time f1 = -1, f2 = -1;
  sim.spawn(job(sim, res, 0.0, 50.0, f1), "j1");
  sim.spawn(job(sim, res, 0.0, 50.0, f2), "j2");
  sim.run();
  // Both share: each runs at 50 units/s -> 1.0 s.
  EXPECT_NEAR(f1, 1.0, 1e-9);
  EXPECT_NEAR(f2, 1.0, 1e-9);
}

TEST(SharedResource, ShortJobLeavesLongJobSpeedsUp) {
  Simulation sim;
  SharedResource res(sim, 100.0);
  Time fshort = -1, flong = -1;
  sim.spawn(job(sim, res, 0.0, 10.0, fshort), "short");
  sim.spawn(job(sim, res, 0.0, 100.0, flong), "long");
  sim.run();
  // Shared until short finishes: 10 units at 50/s = 0.2 s. Long then has 90
  // units left at 100/s = 0.9 s. Total 1.1 s.
  EXPECT_NEAR(fshort, 0.2, 1e-9);
  EXPECT_NEAR(flong, 1.1, 1e-9);
}

TEST(SharedResource, LateArrivalSlowsExistingJob) {
  Simulation sim;
  SharedResource res(sim, 100.0);
  Time f1 = -1, f2 = -1;
  sim.spawn(job(sim, res, 0.0, 60.0, f1), "j1");
  sim.spawn(job(sim, res, 0.2, 40.0, f2), "j2");
  sim.run();
  // j1 alone 0..0.2 does 20 units; 40 remain. Both at 50/s finish their 40
  // at t = 0.2 + 0.8 = 1.0 simultaneously.
  EXPECT_NEAR(f1, 1.0, 1e-9);
  EXPECT_NEAR(f2, 1.0, 1e-9);
}

TEST(SharedResource, PerJobCapLimitsLoneJob) {
  Simulation sim;
  SharedResource res(sim, 100.0, /*per_job_cap=*/10.0);
  Time fin = -1;
  sim.spawn(job(sim, res, 0.0, 50.0, fin), "job");
  sim.run();
  EXPECT_NEAR(fin, 5.0, 1e-9);  // capped at 10 units/s
}

TEST(SharedResource, ManyJobsHitAggregateCapacity) {
  Simulation sim;
  SharedResource res(sim, 100.0, /*per_job_cap=*/10.0);
  // 20 jobs of 10 units: per-job rate = min(10, 100/20) = 5 -> 2 s.
  std::vector<Time> fins(20, -1.0);
  for (int i = 0; i < 20; ++i) {
    sim.spawn(job(sim, res, 0.0, 10.0, fins[static_cast<size_t>(i)]), "j");
  }
  sim.run();
  for (Time f : fins) EXPECT_NEAR(f, 2.0, 1e-9);
}

TEST(SharedResource, CapRegimeSwitchesAsJobsLeave) {
  Simulation sim;
  SharedResource res(sim, 100.0, /*per_job_cap=*/30.0);
  // 5 jobs: rate 20/s each (capacity-bound). As jobs drain, survivors speed
  // up to the 30/s cap.
  Time fbig = -1;
  std::vector<Time> fsmall(4, -1.0);
  sim.spawn(job(sim, res, 0.0, 100.0, fbig), "big");
  for (int i = 0; i < 4; ++i) {
    sim.spawn(job(sim, res, 0.0, 20.0, fsmall[static_cast<size_t>(i)]), "small");
  }
  sim.run();
  // Phase 1: 5 jobs at 20/s until smalls finish at t=1 (big has 80 left).
  // Phase 2: big alone at cap 30/s: 80/30 = 2.667 s. Total ~3.667 s.
  for (Time f : fsmall) EXPECT_NEAR(f, 1.0, 1e-9);
  EXPECT_NEAR(fbig, 1.0 + 80.0 / 30.0, 1e-9);
}

TEST(SharedResource, ZeroWorkCompletesAtCurrentTime) {
  Simulation sim;
  SharedResource res(sim, 100.0);
  Time fin = -1;
  sim.spawn(job(sim, res, micros(3), 0.0, fin), "zero");
  sim.run();
  EXPECT_NEAR(fin, micros(3), 1e-15);
}

TEST(SharedResource, WorkConservation) {
  // Property: total work done equals sum of submitted work, and busy time
  // never exceeds makespan (work conservation of processor sharing).
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    Simulation sim;
    SharedResource res(sim, 50.0, 20.0);
    double total_work = 0.0;
    const int n = 2 + static_cast<int>(rng.next_below(20));
    std::vector<Time> fins(static_cast<size_t>(n), -1.0);
    for (int i = 0; i < n; ++i) {
      const double w = rng.uniform(1.0, 30.0);
      const double s = rng.uniform(0.0, 0.5);
      total_work += w;
      sim.spawn(job(sim, res, s, w, fins[static_cast<size_t>(i)]), "j");
    }
    sim.run();
    EXPECT_NEAR(res.work_done(), total_work, total_work * 1e-6);
    EXPECT_LE(res.busy_time(), sim.now() + 1e-9);
    for (Time f : fins) EXPECT_GE(f, 0.0);
  }
}

TEST(SharedResource, FasterThanSerialWhenShared) {
  // Property: makespan of concurrent jobs is at least total_work/capacity
  // and at most what serial execution would take.
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    Simulation sim;
    SharedResource res(sim, 100.0);
    double total_work = 0.0;
    const int n = 3 + static_cast<int>(rng.next_below(8));
    // The finish times must outlive the loop body: each coroutine writes its
    // slot during sim.run(), long after a loop-local would be gone.
    std::vector<Time> fins(static_cast<size_t>(n), -1.0);
    for (int i = 0; i < n; ++i) {
      const double w = rng.uniform(5.0, 50.0);
      total_work += w;
      sim.spawn(job(sim, res, 0.0, w, fins[static_cast<size_t>(i)]), "j");
    }
    sim.run();
    EXPECT_GE(sim.now(), total_work / 100.0 - 1e-9);
    EXPECT_LE(sim.now(), total_work / 100.0 + 1e-9);  // PS is work conserving
  }
}

Proc<void> fifo_user(Simulation& sim, FifoResource& res, Dur hold,
                     std::vector<int>& order, int id) {
  co_await res.acquire();
  order.push_back(id);
  co_await sim.delay(hold);
  res.release();
}

TEST(FifoResource, GrantsInArrivalOrder) {
  Simulation sim;
  FifoResource res(sim, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(fifo_user(sim, res, micros(1), order, i), "u");
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), micros(4));
}

TEST(FifoResource, CapacityTwoAllowsTwoConcurrent) {
  Simulation sim;
  FifoResource res(sim, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    sim.spawn(fifo_user(sim, res, micros(2), order, i), "u");
  }
  sim.run();
  // 4 holders of 2us at capacity 2 -> makespan 4us.
  EXPECT_DOUBLE_EQ(sim.now(), micros(4));
}

TEST(FifoResource, ReleaseHandsSlotToWaiter) {
  Simulation sim;
  FifoResource res(sim, 1);
  EXPECT_EQ(res.available(), 1);
  std::vector<int> order;
  sim.spawn(fifo_user(sim, res, micros(1), order, 0), "a");
  sim.spawn(fifo_user(sim, res, micros(1), order, 1), "b");
  sim.run_until(micros(0.5));
  EXPECT_EQ(res.available(), 0);
  EXPECT_EQ(res.queue_length(), 1u);
  sim.run_until(micros(10));
  EXPECT_EQ(res.queue_length(), 0u);
  EXPECT_EQ(res.available(), 1);
}

TEST(SharedResource, ZeroWorkNeverCompletesInline) {
  Simulation sim;
  SharedResource res(sim, 100.0);
  std::vector<int> order;
  auto user = [&](int id) -> Proc<void> {
    co_await res.use(0.0);
    order.push_back(id);
  };
  sim.spawn(user(1), "z1");
  sim.spawn(user(2), "z2");
  // Completion always goes through the event queue: nothing happens until
  // the simulation runs, then both finish at t=0 in admission order.
  EXPECT_TRUE(order.empty());
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
}

TEST(SharedResource, PerJobCapEqualToFairShareIsNotSlower) {
  // per_job_cap == capacity / n: the cap and the fair share coincide, so
  // neither regime may throttle below the other (a strict `<` vs `<=`
  // mistake in rate_per_job would show up here).
  Simulation sim;
  SharedResource res(sim, 100.0, 25.0);
  Time f[4] = {-1, -1, -1, -1};
  for (int i = 0; i < 4; ++i) {
    sim.spawn(job(sim, res, 0.0, 50.0, f[i]), "j");
  }
  sim.run();
  for (int i = 0; i < 4; ++i) EXPECT_NEAR(f[i], 2.0, 1e-9);
}

TEST(SharedResource, JobAdmittedAtInstantAnotherCompletes) {
  // A finishes exactly when B arrives: B must see the resource to itself —
  // the completion event and the admission at the same timestamp resolve in
  // schedule order without B inheriting A's degraded rate.
  Simulation sim;
  SharedResource res(sim, 100.0);
  Time fa = -1, fb = -1;
  sim.spawn(job(sim, res, 0.0, 100.0, fa), "a");  // alone: done at t=1
  sim.spawn(job(sim, res, 1.0, 100.0, fb), "b");  // arrives exactly at t=1
  sim.run();
  EXPECT_NEAR(fa, 1.0, 1e-9);
  EXPECT_NEAR(fb, 2.0, 1e-9);
}

}  // namespace
}  // namespace dcuda::sim
