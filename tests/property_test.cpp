// Property-based and parameterized tests: invariants of the simulation
// kernel, the queues, notification matching, and end-to-end determinism,
// swept over parameter spaces with TEST_P / INSTANTIATE_TEST_SUITE_P.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <tuple>

#include "cluster/cluster.h"
#include "queue/circular_queue.h"
#include "sim/random.h"
#include "sim/resource.h"

namespace dcuda {
namespace {

using sim::Proc;
using sim::Simulation;

// ---------------------------------------------------------------- queues --

class QueueSweep : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(QueueSweep, FifoNoLossUnderRandomTiming) {
  const auto [capacity, items, consumer_us] = GetParam();
  Simulation s;
  queue::CircularQueue<int> q(s, capacity, queue::local_transport(s));
  std::vector<int> got;
  sim::Rng rng(static_cast<std::uint64_t>(capacity * 1000 + items));
  auto producer = [](Simulation& sim, queue::CircularQueue<int>& qq, int n,
                     sim::Rng r) -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      co_await sim.delay(sim::micros(r.uniform(0.0, 1.0)));
      co_await qq.enqueue(i);
    }
  };
  auto consumer = [](Simulation& sim, queue::CircularQueue<int>& qq, int n,
                     std::vector<int>& out, double delay_us) -> Proc<void> {
    for (int i = 0; i < n; ++i) {
      out.push_back(co_await qq.dequeue());
      co_await sim.delay(sim::micros(delay_us));
    }
  };
  s.spawn(producer(s, q, items, rng), "p");
  s.spawn(consumer(s, q, items, got, consumer_us), "c");
  s.run();
  ASSERT_EQ(got.size(), static_cast<size_t>(items));
  for (int i = 0; i < items; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, QueueSweep,
    ::testing::Combine(::testing::Values(1, 2, 3, 16, 64),   // ring entries
                       ::testing::Values(7, 64, 257),        // items
                       ::testing::Values(0.0, 0.3, 2.0)));   // consumer pace us

// --------------------------------------------------- processor sharing ----

class PsSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PsSweep, WorkConservationAndOrdering) {
  const auto [jobs, cap] = GetParam();
  Simulation s;
  sim::SharedResource res(s, 100.0, cap);
  sim::Rng rng(static_cast<std::uint64_t>(jobs) * 31 + static_cast<std::uint64_t>(cap));
  struct Rec {
    double work;
    sim::Time finish = -1;
  };
  std::vector<Rec> recs(static_cast<size_t>(jobs));
  auto job = [](Simulation& sim, sim::SharedResource& r, Rec& rec) -> Proc<void> {
    co_await r.use(rec.work);
    rec.finish = sim.now();
  };
  double total = 0;
  for (auto& rec : recs) {
    rec.work = rng.uniform(1.0, 20.0);
    total += rec.work;
    s.spawn(job(s, res, rec), "j");
  }
  s.run();
  // Work conservation: total service delivered equals submitted work.
  EXPECT_NEAR(res.work_done(), total, 1e-6 * total);
  // Simultaneous arrivals: completion order equals work order (processor
  // sharing preserves it), and makespan is bounded by capacity and cap.
  for (size_t i = 0; i < recs.size(); ++i)
    for (size_t j = 0; j < recs.size(); ++j)
      if (recs[i].work < recs[j].work) {
        EXPECT_LE(recs[i].finish, recs[j].finish + 1e-12);
      }
  EXPECT_GE(s.now() + 1e-9, total / 100.0);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PsSweep,
                         ::testing::Combine(::testing::Values(1, 2, 7, 25),
                                            ::testing::Values(5.0, 30.0, 1e9)));

// ------------------------------------------------- notification matching --

struct MatchCase {
  int notifications;
  std::uint64_t seed;
};

class MatchSweep : public ::testing::TestWithParam<MatchCase> {};

// Oracle model: multiset of (win, src, tag) triples; matching removes in
// arrival order. The device library must agree with it for random traffic
// and random queries.
TEST_P(MatchSweep, AgreesWithOracle) {
  const auto param = GetParam();
  sim::Rng rng(param.seed);
  Cluster c({.machine = sim::machine_config(1), .ranks_per_device = 4});
  auto mem = c.device(0).alloc<std::byte>(256);

  // Rank 1..3 send notifications to rank 0 with random tags on two windows.
  struct Sent {
    int win, src, tag;
  };
  std::vector<Sent> plan;
  const int per_sender = param.notifications;
  for (int s = 1; s <= 3; ++s) {
    for (int i = 0; i < per_sender; ++i) {
      plan.push_back(Sent{static_cast<int>(rng.next_below(2)), s,
                          static_cast<int>(rng.next_below(3))});
    }
  }

  // Queries: random (win, src, tag) filters with wildcards, executed after
  // all notifications arrived. Expected counts from the oracle.
  struct Query {
    std::int32_t win;
    int src, tag;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back(Query{rng.next_below(3) == 0 ? kAnyWindow
                                                   : static_cast<std::int32_t>(rng.next_below(2)),
                            rng.next_below(3) == 0 ? kAnySource
                                                   : static_cast<int>(1 + rng.next_below(3)),
                            rng.next_below(3) == 0 ? kAnyTag
                                                   : static_cast<int>(rng.next_below(3))});
  }

  std::vector<int> matched(queries.size(), 0);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w0 = co_await win_create(ctx, kCommWorld, mem);
    Window w1 = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank != 0) {
      for (const auto& sent : plan) {
        if (sent.src != ctx.world_rank) continue;
        co_await put_notify(ctx, sent.win == 0 ? w0 : w1, 0, 0, 0, nullptr, sent.tag);
      }
      co_await flush(ctx);
    }
    co_await barrier(ctx, kCommWorld);
    if (ctx.world_rank == 0) {
      // Ensure all notifications are drained into the pending buffer (the
      // barrier orders commands per rank, so they all arrived).
      for (size_t qi = 0; qi < queries.size(); ++qi) {
        const auto& q = queries[qi];
        matched[qi] =
            co_await test_notifications(ctx, q.win, q.src, q.tag, 1 << 20);
      }
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w1);
    co_await win_free(ctx, w0);
  });

  // Oracle: consume in arrival order. Barrier guarantees per-sender
  // delivery, and our queries consume everything eventually, so only the
  // *counts* are compared (arrival interleaving across senders is
  // implementation-defined).
  std::multiset<std::tuple<int, int, int>> oracle;
  for (const auto& sent : plan) oracle.insert({sent.win, sent.src, sent.tag});
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const auto& q = queries[qi];
    int expect = 0;
    for (auto it = oracle.begin(); it != oracle.end();) {
      const auto [w, s, t] = *it;
      const bool ok = (q.win == kAnyWindow || q.win == w) &&
                      (q.src == kAnySource || q.src == s) &&
                      (q.tag == kAnyTag || q.tag == t);
      if (ok) {
        it = oracle.erase(it);
        ++expect;
      } else {
        ++it;
      }
    }
    EXPECT_EQ(matched[qi], expect) << "query " << qi;
  }
}

INSTANTIATE_TEST_SUITE_P(Random, MatchSweep,
                         ::testing::Values(MatchCase{3, 11}, MatchCase{8, 22},
                                           MatchCase{16, 33}, MatchCase{5, 44},
                                           MatchCase{10, 55}));

// ------------------------------------- perturbed-schedule properties ------

// The queue/resource invariants above must also hold when the engine's
// same-timestamp tie-breaks are shuffled and deliveries jittered
// (sim/perturb.h): FIFO handoff and processor-sharing conservation are
// structural guarantees, not accidents of insertion order.

class QueuePerturbedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueuePerturbedSweep, FifoNoLossUnderShuffledTies) {
  const std::uint64_t seed = GetParam();
  Simulation s;
  s.set_perturbation(seed);
  queue::CircularQueue<int> q(s, 3, queue::local_transport(s));
  std::vector<int> got;
  auto producer = [](Simulation& sim, queue::CircularQueue<int>& qq) -> Proc<void> {
    for (int i = 0; i < 64; ++i) {
      // Zero-delay bursts: every enqueue is a same-timestamp tie.
      if (i % 8 == 0) co_await sim.delay(sim::micros(1.0));
      co_await qq.enqueue(i);
    }
  };
  auto consumer = [](queue::CircularQueue<int>& qq, std::vector<int>& out) -> Proc<void> {
    for (int i = 0; i < 64; ++i) out.push_back(co_await qq.dequeue());
  };
  s.spawn(producer(s, q), "p");
  s.spawn(consumer(q, got), "c");
  s.run();
  ASSERT_EQ(got.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], i);
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueuePerturbedSweep,
                         ::testing::Values(0x71001, 0x71002, 0x71003, 0x71004,
                                           0x71005, 0x71006, 0x71007, 0x71008));

class PsPerturbedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PsPerturbedSweep, WorkConservationSurvivesShuffledTies) {
  const std::uint64_t seed = GetParam();
  Simulation s;
  s.set_perturbation(seed);
  sim::SharedResource res(s, 100.0, 30.0);
  sim::Rng rng(seed);
  std::vector<double> works(25);
  double total = 0;
  auto job = [](sim::SharedResource& r, double w) -> Proc<void> {
    co_await r.use(w);
  };
  for (double& w : works) {
    w = rng.uniform(1.0, 20.0);
    total += w;
    s.spawn(job(res, w), "j");
  }
  s.run();
  EXPECT_NEAR(res.work_done(), total, 1e-6 * total);
  EXPECT_GE(s.now() + 1e-9, total / 100.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PsPerturbedSweep,
                         ::testing::Values(0x72001, 0x72002, 0x72003, 0x72004,
                                           0x72005, 0x72006, 0x72007, 0x72008));

// ------------------------------------------------ wildcard matching -------

// Sweeps wait_notifications across every wildcard axis combination
// (kAnyWindow x kAnySource x kAnyTag) and counts > 1. Senders 1..3 each
// put `count` notifications on both windows with tag == sender rank, so the
// expected match total is a closed-form function of the wildcard mask.
class WildcardSweep
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, int>> {};

TEST_P(WildcardSweep, WaitConsumesExactlyCountThenRestIsDrainable) {
  const auto [any_win, any_src, any_tag, count] = GetParam();
  Cluster c({.machine = sim::machine_config(1), .ranks_per_device = 4});
  auto mem = c.device(0).alloc<std::byte>(256);
  // Matching notifications available to the first wait under this filter:
  // exact filters pin window 0, source 1, tag 1; tag equals the sender, so
  // an exact tag with wildcard source still selects a single sender.
  const int avail = count * (any_win ? 2 : 1) *
                    (any_src ? (any_tag ? 3 : 1) : 1);
  int drained = -1;
  c.run([&](Context& ctx) -> Proc<void> {
    Window w0 = co_await win_create(ctx, kCommWorld, mem);
    Window w1 = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank != 0) {
      for (int i = 0; i < count; ++i) {
        co_await put_notify(ctx, w0, 0, 0, 0, nullptr, ctx.world_rank);
        co_await put_notify(ctx, w1, 0, 0, 0, nullptr, ctx.world_rank);
      }
      co_await flush(ctx);
    }
    co_await barrier(ctx, kCommWorld);
    if (ctx.world_rank == 0) {
      const std::int32_t win_f = any_win ? kAnyWindow : w0.device_id;
      const int src_f = any_src ? kAnySource : 1;
      const int tag_f = any_tag ? kAnyTag : 1;
      co_await wait_notifications(ctx, win_f, src_f, tag_f, count);
      // The wait consumed exactly `count`; the rest of the matching set must
      // still be pending.
      drained = co_await test_notifications(ctx, win_f, src_f, tag_f, 1 << 20);
      // Drain everything else so win_free doesn't leave queued entries.
      co_await test_notifications(ctx, kAnyWindow, kAnySource, kAnyTag, 1 << 20);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w1);
    co_await win_free(ctx, w0);
  });
  EXPECT_EQ(drained, avail - count);
}

INSTANTIATE_TEST_SUITE_P(Axes, WildcardSweep,
                         ::testing::Combine(::testing::Bool(),   // kAnyWindow
                                            ::testing::Bool(),   // kAnySource
                                            ::testing::Bool(),   // kAnyTag
                                            ::testing::Values(1, 2, 5)));

// Mixed wildcard/exact waiters contending for the same notifications: the
// wildcard waiter runs first and must take the *earliest* arrival (matching
// is in arrival order, §III-C queue compression), leaving the later
// duplicate for the exact waiter instead of starving it.
TEST(WildcardSweep, WildcardWaiterTakesEarliestArrivalNotTheLast) {
  Cluster c({.machine = sim::machine_config(1), .ranks_per_device = 2});
  auto mem = c.device(0).alloc<std::byte>(64);
  int leftover = -1;
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    if (ctx.world_rank == 1) {
      // Equal-sized puts from one origin deliver in issue order: 5, 6, 5.
      co_await put_notify(ctx, w, 0, 0, 0, nullptr, 5);
      co_await put_notify(ctx, w, 0, 0, 0, nullptr, 6);
      co_await put_notify(ctx, w, 0, 0, 0, nullptr, 5);
      co_await flush(ctx);
    }
    co_await barrier(ctx, kCommWorld);
    if (ctx.world_rank == 0) {
      // Wildcard waiter races ahead: consumes the first tag-5 arrival.
      co_await wait_notifications(ctx, kAnyWindow, kAnySource, kAnyTag, 1);
      // Exact waiters still complete from what is left.
      co_await wait_notifications(ctx, w, 1, 5, 1);
      co_await wait_notifications(ctx, w, 1, 6, 1);
      leftover = co_await test_notifications(ctx, kAnyWindow, kAnySource,
                                             kAnyTag, 1 << 20);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  EXPECT_EQ(leftover, 0);
}

// ------------------------------------------------------- determinism ------

class AppDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(AppDeterminism, SameConfigSameSimulatedTime) {
  const int nodes = GetParam();
  auto run_once = [&] {
    Cluster c({.machine = sim::machine_config(nodes), .ranks_per_device = 4});
    auto mem = c.device(0).alloc<std::byte>(1024);
    return c.run([&](Context& ctx) -> Proc<void> {
      Window w = co_await win_create(ctx, kCommWorld, mem);
      for (int i = 0; i < 5; ++i) {
        const int peer = (ctx.world_rank + 1) % ctx.world_size;
        co_await put_notify(ctx, w, peer, 0, 64, mem.data(), 0);
        co_await wait_notifications(ctx, w, kAnySource, 0, 1);
      }
      co_await barrier(ctx, kCommWorld);
      co_await win_free(ctx, w);
    });
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_EQ(a, b);  // bit-identical simulated durations
}

INSTANTIATE_TEST_SUITE_P(Nodes, AppDeterminism, ::testing::Values(1, 2, 3));

// -------------------------------------------------------- fabric sweep ----

class FabricSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FabricSweep, MeasuredBandwidthTracksConfig) {
  const auto [gbs_rate, size_mb] = GetParam();
  sim::NetConfig nc;
  nc.bandwidth = sim::gbs(gbs_rate);
  Simulation s;
  net::Fabric fab(s, 2, nc);
  const double bytes = size_mb * 1e6;
  sim::Time arrival = -1;
  auto rx = [](Simulation& sim, net::Fabric& f, sim::Time& t) -> Proc<void> {
    (void)co_await f.rx(1).pop();
    t = sim.now();
  };
  s.spawn(rx(s, fab, arrival), "rx");
  fab.send(net::Packet{0, 1, bytes, {}});
  s.run();
  const double measured = bytes / arrival;
  EXPECT_NEAR(measured, sim::gbs(gbs_rate), sim::gbs(gbs_rate) * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, FabricSweep,
                         ::testing::Combine(::testing::Values(1.0, 6.0, 12.0),
                                            ::testing::Values(1.0, 8.0)));

}  // namespace
}  // namespace dcuda
