// Observability layer: span recording and ordering, counter accounting,
// Chrome trace_event export (well-formedness, timestamp order, pid/tid
// lane mapping), the sorted-once stats Summary, and a golden test pinning
// the text-summary format (tests/golden/trace_summary.golden).

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "sim/stats.h"
#include "sim/trace.h"
#include "sim/trace_export.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

// --------------------------------------------- minimal JSON validator -----
//
// Recursive-descent checker for the exporter's output: structure only (no
// DOM), strict enough to catch trailing commas, unbalanced brackets and
// unterminated strings.

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Pulls every occurrence of `"key": <number>` out of the JSON text, in
// document order — enough to check timestamp monotonicity and pid mapping
// without a DOM.
std::vector<double> number_fields(const std::string& json, const std::string& key) {
  std::vector<double> out;
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = json.find(needle, pos)) != std::string::npos) {
    pos += needle.size();
    out.push_back(std::stod(json.substr(pos)));
  }
  return out;
}

// A small deterministic tracer: two rank lanes with partially overlapping
// compute/put work, one wait, plus counter samples. Also the golden-test
// input, so keep it stable.
sim::Tracer example_tracer() {
  sim::Tracer t;
  t.enable();
  t.record({0.0, 40e-6, 0, 0, "compute", sim::Category::kCompute});
  t.record({30e-6, 50e-6, 0, 0, "put", sim::Category::kPut, 1024.0});
  t.record({50e-6, 58e-6, 0, 0, "wait", sim::Category::kWait});
  t.record({0.0, 20e-6, 0, 1, "compute", sim::Category::kCompute});
  t.record({20e-6, 26e-6, 0, 1, "wait", sim::Category::kWait});
  t.record({32e-6, 48e-6, 0, sim::kFabricLane, "tx", sim::Category::kFabric, 1024.0});
  t.counter_add(30e-6, 0, "inflight_rma", 1.0);
  t.counter_add(50e-6, 0, "inflight_rma", -1.0);
  t.bump("puts_issued");
  t.bump("rma_bytes", 1024.0);
  return t;
}

// ------------------------------------------------------ span recording ----

TEST(TraceSpans, CategoriesAndBytesAreRecorded) {
  const sim::Tracer t = example_tracer();
  ASSERT_EQ(t.spans().size(), 6u);
  EXPECT_EQ(t.spans()[0].category, sim::Category::kCompute);
  EXPECT_EQ(t.spans()[1].category, sim::Category::kPut);
  EXPECT_EQ(t.spans()[1].bytes, 1024.0);
  EXPECT_EQ(t.spans()[5].lane, sim::kFabricLane);
}

TEST(TraceSpans, DisabledTracerRecordsNothing) {
  sim::Tracer t;
  t.record({0.0, 1.0, 0, 0, "compute", sim::Category::kCompute});
  t.counter_add(0.0, 0, "x", 1.0);
  t.bump("m");
  EXPECT_TRUE(t.spans().empty());
  EXPECT_TRUE(t.counter_samples().empty());
  EXPECT_EQ(t.metric("m"), 0.0);
}

TEST(TraceSpans, ClusterRunOrdersSpansPerLane) {
  Cluster c({.machine = machine(2), .ranks_per_device = 2});
  c.tracer().enable();
  auto m0 = c.device(0).alloc<std::byte>(1024);
  auto m1 = c.device(1).alloc<std::byte>(1024);
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = ctx.world_rank < 2 ? m0 : m1;
    Window w = co_await win_create(ctx, kCommWorld, mine);
    co_await ctx.block->compute_flops(1e6);
    const int peer = (ctx.world_rank + 2) % ctx.world_size;
    co_await put_notify(ctx, w, peer, 0, 64, mine.data(), 0);
    co_await wait_notifications(ctx, w, kAnySource, 0, 1);
    co_await win_free(ctx, w);
  });
  // Spans are recorded when they complete, so per (device, lane) the end
  // times are nondecreasing (begin times are not: an enclosing span like a
  // wait or drain is recorded after its inner activity). Every span is
  // well-formed.
  std::map<std::pair<int, int>, sim::Time> last_end;
  for (const auto& sp : c.tracer().spans()) {
    EXPECT_LE(sp.begin, sp.end);
    auto& prev = last_end[{sp.device, sp.lane}];
    EXPECT_GE(sp.end, prev);
    prev = sp.end;
  }
  // The run exercised every instrumented subsystem.
  bool fabric = false, pcie = false, put = false, wait = false;
  for (const auto& sp : c.tracer().spans()) {
    fabric |= sp.category == sim::Category::kFabric;
    pcie |= sp.category == sim::Category::kPcie;
    put |= sp.category == sim::Category::kPut;
    wait |= sp.category == sim::Category::kWait;
  }
  EXPECT_TRUE(fabric);
  EXPECT_TRUE(pcie);
  EXPECT_TRUE(put);
  EXPECT_TRUE(wait);
}

// --------------------------------------------------- counter accounting ---

TEST(TraceCounters, CounterAddTracksRunningValue) {
  sim::Tracer t;
  t.enable();
  t.counter_add(1e-6, 0, "depth", 1.0);
  t.counter_add(2e-6, 0, "depth", 1.0);
  t.counter_add(3e-6, 0, "depth", -1.0);
  t.counter_add(1e-6, 1, "depth", 5.0);  // separate device, separate value
  EXPECT_EQ(t.counter_value(0, "depth"), 1.0);
  EXPECT_EQ(t.counter_value(1, "depth"), 5.0);
  ASSERT_EQ(t.counter_samples().size(), 4u);
  EXPECT_EQ(t.counter_samples()[1].value, 2.0);
  EXPECT_EQ(t.counter_samples()[2].value, 1.0);
}

TEST(TraceCounters, InflightRmaAndQueueDepthsReturnToZero) {
  Cluster c({.machine = machine(2), .ranks_per_device = 2});
  c.tracer().enable();
  auto m0 = c.device(0).alloc<std::byte>(4096);
  auto m1 = c.device(1).alloc<std::byte>(4096);
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = ctx.world_rank < 2 ? m0 : m1;
    Window w = co_await win_create(ctx, kCommWorld, mine);
    const int peer = (ctx.world_rank + 2) % ctx.world_size;
    for (int i = 0; i < 3; ++i) {
      co_await put_notify(ctx, w, peer, 0, 256, mine.data(), 0);
      co_await wait_notifications(ctx, w, kAnySource, 0, 1);
    }
    co_await win_free(ctx, w);
  });
  const sim::Tracer& t = c.tracer();
  for (int dev = 0; dev < 2; ++dev) {
    EXPECT_EQ(t.counter_value(dev, "inflight_rma"), 0.0) << "dev " << dev;
    EXPECT_EQ(t.counter_value(dev, "cmd_queue_depth"), 0.0) << "dev " << dev;
    EXPECT_EQ(t.counter_value(dev, "notif_queue_depth"), 0.0) << "dev " << dev;
  }
  // Matching bookkeeping: every delivered notification was eventually
  // matched, none left over.
  EXPECT_GT(t.metric("notifications_delivered"), 0.0);
  EXPECT_EQ(t.metric("notifications_matched"), t.metric("notifications_delivered"));
  EXPECT_GE(t.metric("puts_issued"), 12.0);  // 4 ranks x 3 iterations
}

// --------------------------------------------------------- JSON export ----

TEST(TraceExport, EmitsWellFormedJson) {
  const sim::Tracer t = example_tracer();
  std::ostringstream os;
  sim::export_chrome(os, t, "unit");
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
}

TEST(TraceExport, EmptyTracerStillValidJson) {
  sim::Tracer t;
  std::ostringstream os;
  sim::export_chrome(os, t, "empty");
  EXPECT_TRUE(JsonChecker(os.str()).valid()) << os.str();
}

TEST(TraceExport, TimestampsAreMonotone) {
  Cluster c({.machine = machine(1), .ranks_per_device = 4});
  c.tracer().enable();
  c.run([&](Context& ctx) -> Proc<void> {
    co_await ctx.block->compute_flops(1e6);
    co_await barrier(ctx, kCommWorld);
    co_await ctx.block->mem_traffic(1e5);
  });
  std::ostringstream os;
  sim::export_chrome(os, c.tracer(), "run");
  const std::string json = os.str();
  ASSERT_TRUE(JsonChecker(json).valid());
  const std::vector<double> ts = number_fields(json, "ts");
  ASSERT_GT(ts.size(), 4u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]) << "event " << i;
  }
  for (double v : ts) EXPECT_GE(v, 0.0);
}

TEST(TraceExport, GroupsMapToDistinctPidsAndLanesToTids) {
  sim::Tracer a = example_tracer();
  sim::Tracer b = example_tracer();
  std::ostringstream os;
  sim::export_chrome(os, {{&a, "MPI-CUDA"}, {&b, "dCUDA"}});
  const std::string json = os.str();
  ASSERT_TRUE(JsonChecker(json).valid());
  // Group 0 device 0 -> pid 0; group 1 device 0 -> pid 1000.
  std::set<int> pids;
  for (double v : number_fields(json, "pid")) pids.insert(static_cast<int>(v));
  EXPECT_TRUE(pids.count(0));
  EXPECT_TRUE(pids.count(1000));
  // Lanes become tids verbatim: rank lanes 0/1 and the fabric lane.
  std::set<int> tids;
  for (double v : number_fields(json, "tid")) tids.insert(static_cast<int>(v));
  EXPECT_TRUE(tids.count(0));
  EXPECT_TRUE(tids.count(1));
  EXPECT_TRUE(tids.count(sim::kFabricLane));
  // Both variant labels appear as process-name prefixes.
  EXPECT_NE(json.find("MPI-CUDA dev0"), std::string::npos);
  EXPECT_NE(json.find("dCUDA dev0"), std::string::npos);
}

// ------------------------------------------------------- stats summary ----

TEST(StatsSummary, MatchesFreePercentileFunctions) {
  const std::vector<double> xs = {9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0};
  const sim::Summary s(xs);
  for (double p : {0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(p), sim::percentile(xs, p)) << "p" << p;
  }
  EXPECT_DOUBLE_EQ(s.median(), sim::median(xs));
  EXPECT_EQ(s.min(), 1.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.count(), xs.size());
  const sim::Summary empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.percentile(50.0), 0.0);
}

TEST(TraceSummary, OverlapAndWaitMetrics) {
  const sim::Tracer t = example_tracer();
  const sim::TraceSummary s = sim::summarize(t);
  EXPECT_EQ(s.num_spans, 6u);
  EXPECT_EQ(s.lanes, 3);
  EXPECT_DOUBLE_EQ(s.wall, 58e-6);
  // Compute union: lane0 [0,40] + lane1 [0,20] merged on device 0 -> [0,40].
  EXPECT_NEAR(s.compute_time, 40e-6, 1e-12);
  // Comm union: put [30,50] + fabric [32,48] -> [30,50].
  EXPECT_NEAR(s.comm_time, 20e-6, 1e-12);
  // Overlap: [30,40].
  EXPECT_NEAR(s.overlap_time, 10e-6, 1e-12);
  EXPECT_NEAR(s.overlap_ratio, 0.5, 1e-9);
  // Waits: 8 us + 6 us on rank lanes.
  EXPECT_NEAR(s.wait_total, 14e-6, 1e-12);
  ASSERT_EQ(s.wait_us.count(), 2u);
  EXPECT_NEAR(s.wait_us.max(), 8.0, 1e-9);
}

// ---------------------------------------------------------- golden file ---

TEST(TraceSummaryGolden, TextSummaryMatchesGoldenFile) {
  std::ostringstream os;
  sim::write_summary(os, example_tracer(), "golden");
  const std::string got = os.str();

  const std::string path =
      std::string(DCUDA_TEST_SOURCE_DIR) + "/golden/trace_summary.golden";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "summary format drifted; update tests/golden/trace_summary.golden "
         "if the change is intentional";
}

}  // namespace
}  // namespace dcuda
