// Unit tests for the discrete-event simulation core: event ordering, the
// coroutine process machinery, triggers, mailboxes, channels, deadlock
// detection, and determinism.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.h"
#include "sim/mailbox.h"
#include "sim/proc.h"
#include "sim/random.h"
#include "sim/simulation.h"
#include "sim/stats.h"
#include "sim/trigger.h"
#include "sim/units.h"

namespace dcuda::sim {
namespace {

TEST(Units, Conversions) {
  EXPECT_DOUBLE_EQ(micros(2.5), 2.5e-6);
  EXPECT_DOUBLE_EQ(to_micros(millis(1.0)), 1000.0);
  EXPECT_DOUBLE_EQ(gbs(6.0), 6e9);
  EXPECT_DOUBLE_EQ(to_nanos(nanos(7.0)), 7.0);
}

TEST(EventQueue, FiresInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule(micros(3), [&] { order.push_back(3); });
  sim.schedule(micros(1), [&] { order.push_back(1); });
  sim.schedule(micros(2), [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), micros(3));
}

TEST(EventQueue, TieBrokenByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(micros(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NestedSchedulingAdvancesTime) {
  Simulation sim;
  Time inner_time = -1;
  sim.schedule(micros(1), [&] {
    sim.schedule(micros(1), [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(inner_time, micros(2));
}

TEST(EventQueue, CancelledEventDoesNotFire) {
  Simulation sim;
  bool fired = false;
  EventToken tok = sim.schedule_cancellable(micros(1), [&] { fired = true; });
  EXPECT_TRUE(tok.pending());
  tok.cancel();
  EXPECT_FALSE(tok.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireIsNoOp) {
  Simulation sim;
  int fired = 0;
  EventToken tok = sim.schedule_cancellable(micros(1), [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(tok.pending());
  tok.cancel();  // must not disturb the (released) slot
  // The slot is recycled for a new event; the stale token must not touch it.
  sim.schedule(micros(1), [&] { ++fired; });
  tok.cancel();
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CancelTwiceIsIdempotent) {
  Simulation sim;
  bool fired = false;
  EventToken tok = sim.schedule_cancellable(micros(1), [&] { fired = true; });
  EventToken copy = tok;
  tok.cancel();
  tok.cancel();
  copy.cancel();
  EXPECT_FALSE(copy.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(EventQueue, TokenOutlivesEngine) {
  EventToken tok;
  {
    Simulation sim;
    tok = sim.schedule_cancellable(micros(1), [] {});
    EXPECT_TRUE(tok.pending());
  }
  // The engine is gone; the token must answer and cancel safely.
  EXPECT_FALSE(tok.pending());
  tok.cancel();
}

TEST(EventQueue, SlotReuseDoesNotResurrectStaleTokens) {
  Simulation sim;
  bool first_fired = false;
  bool second_fired = false;
  EventToken stale = sim.schedule_cancellable(micros(1), [&] { first_fired = true; });
  sim.run();
  EXPECT_TRUE(first_fired);
  // The freed slot is reused (LIFO free list) by the next event; the stale
  // token's generation no longer matches, so cancelling it is a no-op.
  EventToken fresh = sim.schedule_cancellable(micros(1), [&] { second_fired = true; });
  EXPECT_FALSE(stale.pending());
  EXPECT_TRUE(fresh.pending());
  stale.cancel();
  EXPECT_TRUE(fresh.pending());
  sim.run();
  EXPECT_TRUE(second_fired);
}

TEST(EventPool, SteadyStateDispatchDoesNotAllocate) {
  Simulation sim;
  struct Chain {
    Simulation& s;
    int left;
    void fire() {
      if (--left > 0) s.schedule(micros(1), [this] { fire(); });
    }
  };
  Chain chain{sim, 20000};
  sim.schedule(micros(1), [&] { chain.fire(); });
  sim.run_until(micros(100));  // warm the pool and the key heap
  const Simulation::PoolStats warm = sim.pool_stats();
  sim.run();
  const Simulation::PoolStats done = sim.pool_stats();
  EXPECT_EQ(done.pool_growths, warm.pool_growths);
  EXPECT_EQ(done.heap_fallbacks, warm.heap_fallbacks);
  EXPECT_EQ(done.pending_events, 0u);
  EXPECT_EQ(done.free_slots, done.pool_slots);
}

TEST(EventPool, OversizedCallableFallsBackToHeap) {
  Simulation sim;
  char big[128] = {};
  big[0] = 42;
  char seen = 0;
  sim.schedule(micros(1), [big, &seen] { seen = big[0]; });
  EXPECT_EQ(sim.pool_stats().heap_fallbacks, 1u);
  sim.run();
  EXPECT_EQ(seen, 42);
}

TEST(EventQueue, CountsProcessedEvents) {
  Simulation sim;
  for (int i = 0; i < 5; ++i) sim.schedule(micros(i), [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

Proc<void> sleeper(Simulation& sim, Dur d, bool& done) {
  co_await sim.delay(d);
  done = true;
}

TEST(Process, DelayAdvancesClock) {
  Simulation sim;
  bool done = false;
  sim.spawn(sleeper(sim, micros(7), done), "sleeper");
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_DOUBLE_EQ(sim.now(), micros(7));
}

Proc<int> add_later(Simulation& sim, int a, int b) {
  co_await sim.delay(micros(1));
  co_return a + b;
}

Proc<void> parent(Simulation& sim, int& out) {
  out = co_await add_later(sim, 20, 22);
}

TEST(Process, ChildCoroutineReturnsValue) {
  Simulation sim;
  int out = 0;
  sim.spawn(parent(sim, out), "parent");
  sim.run();
  EXPECT_EQ(out, 42);
}

Proc<void> deep(Simulation& sim, int depth, int& counter) {
  if (depth > 0) {
    co_await sim.delay(nanos(1));
    co_await deep(sim, depth - 1, counter);
  }
  ++counter;
}

TEST(Process, DeeplyNestedChildren) {
  Simulation sim;
  int counter = 0;
  sim.spawn(deep(sim, 200, counter), "deep");
  sim.run();
  EXPECT_EQ(counter, 201);
}

TEST(Process, JoinWaitsForCompletion) {
  Simulation sim;
  bool done = false;
  JoinHandle h = sim.spawn(sleeper(sim, micros(5), done), "sleeper");
  bool join_saw_done = false;
  auto joiner = [&](JoinHandle jh) -> Proc<void> {
    co_await jh.join();
    join_saw_done = done;
  };
  sim.spawn(joiner(h), "joiner");
  sim.run();
  EXPECT_TRUE(join_saw_done);
  EXPECT_TRUE(h.done());
}

TEST(Process, JoinAfterCompletionReturnsImmediately) {
  Simulation sim;
  bool done = false;
  JoinHandle h = sim.spawn(sleeper(sim, micros(1), done), "sleeper");
  Time join_time = -1;
  auto late_joiner = [&]() -> Proc<void> {
    co_await sim.delay(micros(10));
    co_await h.join();
    join_time = sim.now();
  };
  sim.spawn(late_joiner(), "late");
  sim.run();
  EXPECT_DOUBLE_EQ(join_time, micros(10));
}

Proc<void> thrower(Simulation& sim) {
  co_await sim.delay(micros(1));
  throw std::runtime_error("boom");
}

TEST(Process, ExceptionPropagatesToJoin) {
  Simulation sim;
  JoinHandle h = sim.spawn(thrower(sim), "thrower");
  bool caught = false;
  auto joiner = [&]() -> Proc<void> {
    try {
      co_await h.join();
    } catch (const std::runtime_error& e) {
      caught = std::string(e.what()) == "boom";
    }
  };
  sim.spawn(joiner(), "joiner");
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Process, UnjoinedExceptionSurfacesFromRun) {
  Simulation sim;
  sim.spawn(thrower(sim), "thrower");
  EXPECT_THROW(sim.run(), std::runtime_error);
}

Proc<void> await_thrower(Simulation& sim, bool& caught) {
  try {
    co_await thrower(sim);
  } catch (const std::runtime_error&) {
    caught = true;
  }
}

TEST(Process, ExceptionPropagatesThroughAwait) {
  Simulation sim;
  bool caught = false;
  sim.spawn(await_thrower(sim, caught), "awaiter");
  sim.run();
  EXPECT_TRUE(caught);
}

TEST(Trigger, NotifyWakesAllWaiters) {
  Simulation sim;
  Trigger trig(sim);
  int woken = 0;
  auto waiter = [&]() -> Proc<void> {
    co_await trig.wait();
    ++woken;
  };
  for (int i = 0; i < 3; ++i) sim.spawn(waiter(), "waiter");
  sim.schedule(micros(2), [&] { trig.notify_all(); });
  sim.run();
  EXPECT_EQ(woken, 3);
}

TEST(Trigger, WaitUntilChecksPredicate) {
  Simulation sim;
  Trigger trig(sim);
  int value = 0;
  Time done_at = -1;
  auto waiter = [&]() -> Proc<void> {
    co_await wait_until(trig, [&] { return value >= 3; });
    done_at = sim.now();
  };
  sim.spawn(waiter(), "waiter");
  for (int i = 1; i <= 3; ++i) {
    sim.schedule(micros(i), [&] {
      ++value;
      trig.notify_all();
    });
  }
  sim.run();
  EXPECT_DOUBLE_EQ(done_at, micros(3));
}

TEST(Deadlock, DetectedWhenWaiterCanNeverWake) {
  Simulation sim;
  Trigger trig(sim);
  auto waiter = [&]() -> Proc<void> { co_await trig.wait(); };
  sim.spawn(waiter(), "stuck-waiter");
  EXPECT_THROW(sim.run(), DeadlockError);
}

TEST(Deadlock, DaemonsAreExempt) {
  Simulation sim;
  Trigger trig(sim);
  auto waiter = [&]() -> Proc<void> { co_await trig.wait(); };
  sim.spawn(waiter(), "daemon-waiter", /*daemon=*/true);
  EXPECT_NO_THROW(sim.run());
}

TEST(Deadlock, DaemonNotNamedWhenNonDaemonIsStuck) {
  // A blocked daemon (e.g. a runtime service loop) must neither mask a real
  // deadlock nor pollute its diagnostic: only the stuck non-daemon process
  // is reported.
  Simulation sim;
  Trigger trig(sim);
  auto waiter = [&]() -> Proc<void> { co_await trig.wait(); };
  sim.spawn(waiter(), "service-daemon", /*daemon=*/true);
  sim.spawn(waiter(), "stuck-worker");
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck-worker"), std::string::npos) << what;
    EXPECT_EQ(what.find("service-daemon"), std::string::npos) << what;
  }
}

TEST(Deadlock, MessageNamesStuckProcess) {
  Simulation sim;
  Trigger trig(sim);
  auto waiter = [&]() -> Proc<void> { co_await trig.wait(); };
  sim.spawn(waiter(), "rank-42");
  try {
    sim.run();
    FAIL() << "expected DeadlockError";
  } catch (const DeadlockError& e) {
    EXPECT_NE(std::string(e.what()).find("rank-42"), std::string::npos);
  }
}

TEST(RunUntil, StopsAtRequestedTime) {
  Simulation sim;
  bool done = false;
  sim.spawn(sleeper(sim, micros(100), done), "sleeper");
  sim.run_until(micros(50));
  EXPECT_FALSE(done);
  EXPECT_DOUBLE_EQ(sim.now(), micros(50));
  sim.run_until(micros(200));
  EXPECT_TRUE(done);
}

TEST(Mailbox, PopWaitsForPush) {
  Simulation sim;
  Mailbox<int> mb(sim);
  int got = 0;
  Time got_at = -1;
  auto rx = [&]() -> Proc<void> {
    got = co_await mb.pop();
    got_at = sim.now();
  };
  sim.spawn(rx(), "rx");
  sim.schedule(micros(4), [&] { mb.push(99); });
  sim.run();
  EXPECT_EQ(got, 99);
  EXPECT_DOUBLE_EQ(got_at, micros(4));
}

TEST(Mailbox, PreservesFifoOrder) {
  Simulation sim;
  Mailbox<int> mb(sim);
  std::vector<int> got;
  auto rx = [&]() -> Proc<void> {
    for (int i = 0; i < 5; ++i) got.push_back(co_await mb.pop());
  };
  sim.spawn(rx(), "rx");
  for (int i = 0; i < 5; ++i) mb.push(i);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Channel, DeliversAfterLatencyPlusSerialization) {
  Simulation sim;
  Channel<int> ch(sim, micros(2), gbs(1.0));  // 1 GB/s, 2us latency
  Time got_at = -1;
  auto rx = [&]() -> Proc<void> {
    (void)co_await ch.rx().pop();
    got_at = sim.now();
  };
  sim.spawn(rx(), "rx");
  ch.send(7, 1000.0);  // 1000 B at 1 GB/s = 1us
  sim.run();
  EXPECT_NEAR(got_at, micros(3), nanos(1));
}

TEST(Channel, BackToBackMessagesSerialize) {
  Simulation sim;
  Channel<int> ch(sim, micros(2), gbs(1.0));
  std::vector<Time> arrivals;
  auto rx = [&]() -> Proc<void> {
    for (int i = 0; i < 2; ++i) {
      (void)co_await ch.rx().pop();
      arrivals.push_back(sim.now());
    }
  };
  sim.spawn(rx(), "rx");
  ch.send(1, 1000.0);
  ch.send(2, 1000.0);
  sim.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_NEAR(arrivals[0], micros(3), nanos(1));
  EXPECT_NEAR(arrivals[1], micros(4), nanos(1));  // +1us serialization
}

TEST(Channel, RateCapSlowsSingleMessage) {
  Simulation sim;
  Channel<int> ch(sim, 0.0, gbs(10.0));
  Time got_at = -1;
  auto rx = [&]() -> Proc<void> {
    (void)co_await ch.rx().pop();
    got_at = sim.now();
  };
  sim.spawn(rx(), "rx");
  ch.send(1, 1e6, gbs(1.0));  // capped at 1 GB/s: 1 MB -> 1 ms
  sim.run();
  EXPECT_NEAR(got_at, millis(1), nanos(10));
}

TEST(Channel, OrderPreservedAcrossSizes) {
  Simulation sim;
  Channel<int> ch(sim, micros(1), gbs(1.0));
  std::vector<int> got;
  auto rx = [&]() -> Proc<void> {
    for (int i = 0; i < 3; ++i) got.push_back(co_await ch.rx().pop());
  };
  sim.spawn(rx(), "rx");
  ch.send(1, 1e6);  // large first
  ch.send(2, 10.0);
  ch.send(3, 10.0);
  sim.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(Determinism, IdenticalRunsProduceIdenticalTimestamps) {
  auto run_once = [] {
    Simulation sim;
    Trigger trig(sim);
    Mailbox<int> mb(sim);
    std::vector<double> stamps;
    auto producer = [&]() -> Proc<void> {
      Rng rng(123);
      for (int i = 0; i < 50; ++i) {
        co_await sim.delay(micros(rng.uniform(0.1, 2.0)));
        mb.push(i);
      }
    };
    auto consumer = [&]() -> Proc<void> {
      for (int i = 0; i < 50; ++i) {
        (void)co_await mb.pop();
        stamps.push_back(sim.now());
      }
    };
    sim.spawn(producer(), "prod");
    sim.spawn(consumer(), "cons");
    sim.run();
    return stamps;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Rng, DeterministicAndRoughlyUniform) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng r(7);
  double acc = 0;
  for (int i = 0; i < 10000; ++i) {
    double x = r.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    acc += x;
  }
  EXPECT_NEAR(acc / 10000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntCoversRange) {
  Rng r(9);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform_int(2, 6);
    ASSERT_GE(v, 2);
    ASSERT_LE(v, 6);
    seen[static_cast<size_t>(v - 2)]++;
  }
  for (int c : seen) EXPECT_GT(c, 100);
}

TEST(Stats, MedianAndPercentiles) {
  std::vector<double> v{5, 1, 4, 2, 3};
  EXPECT_DOUBLE_EQ(median(v), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
}

TEST(Stats, MedianCiBracketsMedian) {
  std::vector<double> v;
  for (int i = 1; i <= 101; ++i) v.push_back(i);
  auto ci = median_ci95(v);
  EXPECT_LE(ci.lo, 51.0);
  EXPECT_GE(ci.hi, 51.0);
  EXPECT_LT(ci.lo, ci.hi);
}

}  // namespace
}  // namespace dcuda::sim
