// Parameterized tests for the §V extensions: rectangular puts across stride
// combinations, shared-memory multicast, tree broadcast over sizes/roots,
// and the trace infrastructure.

#include <gtest/gtest.h>

#include <sstream>
#include <tuple>

#include "cluster/cluster.h"
#include "sim/trace.h"

namespace dcuda {
namespace {

using sim::Proc;

sim::MachineConfig machine(int nodes) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  return m;
}

// ------------------------------------------------------------- put_2d -----

class Put2dSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, bool>> {};

TEST_P(Put2dSweep, RectangleArrivesIntact) {
  const auto [rows, row_elems, stride_elems, cross_node] = GetParam();
  ASSERT_GE(stride_elems, row_elems);
  const int nodes = cross_node ? 2 : 1;
  const int rpd = cross_node ? 1 : 2;
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  const size_t elems = static_cast<size_t>(stride_elems) * (rows + 2);
  auto src = c.device(0).alloc<double>(elems);
  auto dst = c.device(nodes - 1).alloc<double>(elems);
  for (size_t i = 0; i < elems; ++i) {
    src[i] = static_cast<double>(i);
    dst[i] = -1.0;
  }
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = ctx.world_rank == 0 ? src : dst;
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {
      co_await put_2d_notify(ctx, w, 1, /*offset=*/0,
                             static_cast<size_t>(row_elems) * sizeof(double),
                             static_cast<size_t>(rows),
                             static_cast<size_t>(stride_elems) * sizeof(double),
                             src.data(), static_cast<size_t>(stride_elems) * sizeof(double),
                             5);
    } else {
      co_await wait_notifications(ctx, w, 0, 5, 1);
      co_await flush(ctx);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  for (int r = 0; r < rows; ++r) {
    for (int e = 0; e < stride_elems; ++e) {
      const size_t i = static_cast<size_t>(r) * stride_elems + e;
      if (e < row_elems) {
        EXPECT_DOUBLE_EQ(dst[i], static_cast<double>(i)) << "r=" << r << " e=" << e;
      } else {
        EXPECT_DOUBLE_EQ(dst[i], -1.0) << "gap clobbered at r=" << r << " e=" << e;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Put2dSweep,
    ::testing::Combine(::testing::Values(1, 3, 8),     // rows
                       ::testing::Values(4, 16),       // row elems
                       ::testing::Values(16, 24),      // stride elems
                       ::testing::Bool()));            // cross node

// ------------------------------------------------------ bcast_notify ------

class BcastSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BcastSweep, EveryRankReceivesRootPayload) {
  const auto [nodes, rpd, root] = GetParam();
  Cluster c({.machine = machine(nodes), .ranks_per_device = rpd});
  const int world = nodes * rpd;
  ASSERT_LT(root, world);
  std::vector<std::span<double>> bufs;
  for (int n = 0; n < nodes; ++n)
    for (int r = 0; r < rpd; ++r) bufs.push_back(c.device(n).alloc<double>(16));
  for (int g = 0; g < world; ++g)
    for (auto& x : bufs[static_cast<size_t>(g)]) x = g == root ? 7.75 : 0.0;
  c.run([&](Context& ctx) -> Proc<void> {
    auto mine = bufs[static_cast<size_t>(ctx.world_rank)];
    Window w = co_await win_create(ctx, kCommWorld, mine);
    co_await bcast_notify(ctx, w, kCommWorld, root, 0, 16 * sizeof(double),
                          mine.data(), 9);
    EXPECT_DOUBLE_EQ(mine[15], 7.75);
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  for (auto& b : bufs) EXPECT_DOUBLE_EQ(b[0], 7.75);
}

INSTANTIATE_TEST_SUITE_P(Sizes, BcastSweep,
                         ::testing::Values(std::tuple{1, 4, 0}, std::tuple{1, 4, 2},
                                           std::tuple{2, 2, 0}, std::tuple{2, 2, 3},
                                           std::tuple{3, 2, 5}, std::tuple{4, 1, 1}));

// ---------------------------------------------------- put_notify_all ------

class MulticastSweep : public ::testing::TestWithParam<int> {};

TEST_P(MulticastSweep, AllLocalRanksNotifiedOnce) {
  const int rpd = GetParam();
  Cluster c({.machine = machine(2), .ranks_per_device = rpd});
  auto payload = c.device(0).alloc<int>(4);
  auto target = c.device(1).alloc<int>(static_cast<size_t>(rpd) * 4);
  for (int i = 0; i < 4; ++i) payload[static_cast<size_t>(i)] = 11 * (i + 1);
  std::vector<int> notified(static_cast<size_t>(2 * rpd), 0);
  c.run([&](Context& ctx) -> Proc<void> {
    std::span<int> mine = ctx.node->node() == 0
                              ? std::span<int>(payload)
                              : target.subspan(static_cast<size_t>(ctx.device_rank) * 4, 4);
    Window w = co_await win_create(ctx, kCommWorld, mine);
    if (ctx.world_rank == 0) {
      co_await put_notify_all(ctx, w, rpd, 0, 4 * sizeof(int), payload.data(), 2);
    }
    if (ctx.node->node() == 1) {
      co_await wait_notifications(ctx, w, 0, 2, 1);
      ++notified[static_cast<size_t>(ctx.world_rank)];
      // Exactly one notification per rank: nothing further to consume.
      EXPECT_EQ(co_await test_notifications(ctx, w.device_id, 0, 2, 8), 0);
    }
    co_await barrier(ctx, kCommWorld);
    co_await win_free(ctx, w);
  });
  int total = 0;
  for (int x : notified) total += x;
  EXPECT_EQ(total, rpd);
  EXPECT_EQ(target[3], 44);  // payload landed at the addressed rank
}

INSTANTIATE_TEST_SUITE_P(Rpd, MulticastSweep, ::testing::Values(1, 2, 5));

// ------------------------------------------------------------- tracer -----

TEST(Tracer, RecordsAndRendersSpans) {
  sim::Tracer t;
  t.enable();
  t.record(sim::TraceSpan{0.0, 1e-6, 0, 0, "compute"});
  t.record(sim::TraceSpan{1e-6, 2e-6, 0, 0, "wait"});
  t.record(sim::TraceSpan{0.0, 2e-6, 0, 1, "memory"});
  ASSERT_EQ(t.spans().size(), 3u);
  std::ostringstream os;
  t.render_ascii(os, 20);
  const std::string out = os.str();
  EXPECT_NE(out.find("dev0 lane  0"), std::string::npos);
  EXPECT_NE(out.find('c'), std::string::npos);
  EXPECT_NE(out.find('m'), std::string::npos);
}

TEST(Tracer, DisabledTracerDropsSpans) {
  sim::Tracer t;
  t.record(sim::TraceSpan{0.0, 1.0, 0, 0, "compute"});
  EXPECT_TRUE(t.spans().empty());
}

TEST(Tracer, ClusterTraceCapturesBlockActivity) {
  Cluster c({.machine = machine(1), .ranks_per_device = 2});
  c.tracer().enable();
  auto mem = c.device(0).alloc<std::byte>(4096);
  c.run([&](Context& ctx) -> Proc<void> {
    Window w = co_await win_create(ctx, kCommWorld, mem);
    co_await ctx.block->compute_flops(1e6);
    co_await ctx.block->mem_traffic(1e5);
    const int peer = ctx.world_rank ^ 1;
    co_await put_notify(ctx, w, peer, 0, 16, mem.data(), 0);
    co_await wait_notifications(ctx, w, peer, 0, 1);
    co_await win_free(ctx, w);
  });
  bool saw_compute = false, saw_wait = false;
  for (const auto& sp : c.tracer().spans()) {
    if (sp.activity == "compute") saw_compute = true;
    if (sp.activity == "wait") saw_wait = true;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_wait);
}

}  // namespace
}  // namespace dcuda
