// Gang-scheduler battery (docs/CLUSTER.md), labeled `cluster`:
//
//  * policy semantics — FIFO blocking, EASY backfill (jump the queue only
//    inside the head's shadow, never delay the head), fair-share
//    reordering by per-user usage, queued-job preemption (requeue).
//  * placement — contiguous first-fit vs strided spreading, disjointness.
//  * oracle self-tests — the cluster lifecycle/allocation/conservation
//    checks fire on hand-fed bad sequences, and the check_busy mutation
//    knob makes a real scheduler run trip the overlap oracle.
//  * real multi-tenant workloads — seeded open arrivals of stencil/
//    particles/spmv jobs on one fabric under every policy, all checked by
//    the full sim::InvariantObserver, plus a perturbation-seed fuzz lane
//    (seed base 0x58000; policy/placement derived from the seed).
//  * determinism — same config twice gives byte-identical transcripts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/scheduler.h"
#include "cluster/workload.h"
#include "sim/invariants.h"

namespace dcuda {
namespace {

using cluster::AppKind;
using cluster::Job;
using cluster::JobSpec;
using cluster::Placement;
using cluster::Policy;
using cluster::Scheduler;
using cluster::SchedulerConfig;
using sim::InvariantObserver;

// Synthetic-policy fixture: a 4-node machine with one node left free, a
// whole-machine job as queue head, and a short narrow job behind it.
// Durations equal estimates, so EASY decisions are exact.
//   j0: 3 nodes, t=0,     1 ms   (starts immediately, one node stays free)
//   j1: 4 nodes, t=0.1ms, 1 ms   (queue head: blocked until j0 finishes)
//   j2: 1 node,  t=0.2ms, 0.1 ms (fits the free node inside j1's shadow)
std::vector<JobSpec> wide_then_narrow() {
  return {
      {.id = 0, .nodes = 3, .arrival = 0.0, .duration = 1e-3,
       .estimated_duration = 1e-3},
      {.id = 1, .nodes = 4, .arrival = 1e-4, .duration = 1e-3,
       .estimated_duration = 1e-3},
      {.id = 2, .nodes = 1, .arrival = 2e-4, .duration = 1e-4,
       .estimated_duration = 1e-4},
  };
}

struct SynthRun {
  Cluster cluster;
  InvariantObserver obs;
  Scheduler sched;

  SynthRun(int nodes, SchedulerConfig cfg, const std::vector<JobSpec>& jobs)
      : cluster(ClusterSpec{}.with_nodes(nodes).with_multi_tenant()),
        sched(cluster, cfg) {
    cluster.sim().set_invariant_observer(&obs);
    for (const JobSpec& j : jobs) sched.submit(j);
  }

  void run_checked(int expect_jobs) {
    sched.run();
    obs.finalize();
    EXPECT_TRUE(obs.ok()) << obs.report();
    EXPECT_EQ(sched.completed_jobs(), expect_jobs);
  }
};

SchedulerConfig synth(Policy p, Placement place = Placement::kStrided) {
  SchedulerConfig cfg;
  cfg.policy = p;
  cfg.placement = place;
  cfg.synthetic = true;
  return cfg;
}

TEST(ClusterSched, FifoRunsInArrivalOrder) {
  SynthRun r(4, synth(Policy::kFifo), wide_then_narrow());
  r.run_checked(3);
  // The narrow j2 must not overtake the blocked queue head j1: it starts
  // only after j1 finished and freed the machine.
  EXPECT_GE(r.sched.job(1).start_time, r.sched.job(0).complete_time);
  EXPECT_GE(r.sched.job(2).start_time, r.sched.job(1).complete_time);
}

TEST(ClusterSched, BackfillSlidesNarrowJobIntoShadow) {
  SynthRun r(4, synth(Policy::kBackfill), wide_then_narrow());
  r.run_checked(3);
  // j2's 0.1 ms estimate fits inside j1's shadow (j0 completes at 1 ms),
  // so it runs while j0 still holds the machine.
  EXPECT_LT(r.sched.job(2).start_time, r.sched.job(0).complete_time);
}

TEST(ClusterSched, BackfillNeverStarvesQueueHead) {
  SynthRun fifo(4, synth(Policy::kFifo), wide_then_narrow());
  fifo.run_checked(3);
  SynthRun bf(4, synth(Policy::kBackfill), wide_then_narrow());
  bf.run_checked(3);
  // EASY guarantee (exact estimates): backfilling j2 must not push the
  // queue head j1 past its FIFO start time.
  EXPECT_LE(bf.sched.job(1).start_time, fifo.sched.job(1).start_time);
}

TEST(ClusterSched, FairShareServesLeastServedUserFirst) {
  // user 0 accumulates usage with j0; then j1 (user 0) and j2 (user 1)
  // compete for the freed machine. Fair-share serves user 1 first; FIFO
  // would serve j1.
  const std::vector<JobSpec> jobs = {
      {.id = 0, .user = 0, .nodes = 4, .arrival = 0.0, .duration = 1e-3,
       .estimated_duration = 1e-3},
      {.id = 1, .user = 0, .nodes = 4, .arrival = 1e-4, .duration = 5e-4,
       .estimated_duration = 5e-4},
      {.id = 2, .user = 1, .nodes = 4, .arrival = 2e-4, .duration = 5e-4,
       .estimated_duration = 5e-4},
  };
  SynthRun fair(4, synth(Policy::kFairShare), jobs);
  fair.run_checked(3);
  EXPECT_LT(fair.sched.job(2).start_time, fair.sched.job(1).start_time);
  SynthRun fifo(4, synth(Policy::kFifo), jobs);
  fifo.run_checked(3);
  EXPECT_LT(fifo.sched.job(1).start_time, fifo.sched.job(2).start_time);
}

// A helper proc so a test can preempt at a chosen simulated time.
sim::Proc<void> preempt_at(Scheduler* sched, sim::Simulation* s, double at,
                           int job_id, bool* result) {
  co_await s->delay(at);
  *result = sched->preempt(job_id);
}

TEST(ClusterSched, PreemptRequeuesQueuedJob) {
  const std::vector<JobSpec> jobs = {
      {.id = 0, .nodes = 4, .arrival = 0.0, .duration = 1e-3,
       .estimated_duration = 1e-3},
      {.id = 1, .nodes = 4, .arrival = 0.0, .duration = 1e-4,
       .estimated_duration = 1e-4},
      {.id = 2, .nodes = 4, .arrival = 0.0, .duration = 1e-4,
       .estimated_duration = 1e-4},
  };
  SynthRun r(4, synth(Policy::kFifo), jobs);
  bool preempted = false;
  bool preempt_running = true;
  r.cluster.sim().spawn(
      preempt_at(&r.sched, &r.cluster.sim(), 5e-4, 1, &preempted), "preempt");
  // Preempting the running job must be refused.
  r.cluster.sim().spawn(
      preempt_at(&r.sched, &r.cluster.sim(), 5e-4, 0, &preempt_running),
      "preempt-running");
  r.run_checked(3);
  EXPECT_TRUE(preempted);
  EXPECT_FALSE(preempt_running);
  EXPECT_EQ(r.sched.job(1).requeues, 1);
  // j1 was requeued behind j2, so j2 starts first; j1 still completes.
  EXPECT_LT(r.sched.job(2).start_time, r.sched.job(1).start_time);
  EXPECT_GE(r.sched.job(1).complete_time, 0.0);
}

TEST(ClusterSched, ContiguousPlacementIsFirstFit) {
  const std::vector<JobSpec> jobs = {
      {.id = 0, .nodes = 3, .arrival = 0.0, .duration = 1e-3,
       .estimated_duration = 1e-3},
      {.id = 1, .nodes = 2, .arrival = 1e-4, .duration = 1e-3,
       .estimated_duration = 1e-3},
  };
  SynthRun r(8, synth(Policy::kFifo, Placement::kContiguous), jobs);
  r.run_checked(2);
  EXPECT_EQ(r.sched.job(0).nodes(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(r.sched.job(1).nodes(), (std::vector<int>{3, 4}));
}

TEST(ClusterSched, StridedPlacementSpreadsTheGang) {
  const std::vector<JobSpec> jobs = {{.id = 0, .nodes = 4, .arrival = 0.0,
                                      .duration = 1e-3,
                                      .estimated_duration = 1e-3}};
  SynthRun r(8, synth(Policy::kFifo, Placement::kStrided), jobs);
  r.run_checked(1);
  EXPECT_EQ(r.sched.job(0).nodes(), (std::vector<int>{0, 2, 4, 6}));
}

// -- Oracle self-tests ---------------------------------------------------

TEST(ClusterOracle, StartWithoutSubmitFires) {
  InvariantObserver obs;
  obs.cluster_nodes(4);
  obs.job_started(7, {0});
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("started without submit"), std::string::npos);
}

TEST(ClusterOracle, OverlappingAllocationFires) {
  InvariantObserver obs;
  obs.cluster_nodes(4);
  obs.job_submitted(1);
  obs.job_submitted(2);
  obs.job_started(1, {0, 1});
  obs.job_started(2, {1, 2});
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("overlapping node allocation"),
            std::string::npos);
}

TEST(ClusterOracle, OutOfBoundsNodeFires) {
  InvariantObserver obs;
  obs.cluster_nodes(4);
  obs.job_submitted(1);
  obs.job_started(1, {5});
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("outside the 4-node cluster"),
            std::string::npos);
}

TEST(ClusterOracle, LostJobFiresAtFinalize) {
  InvariantObserver obs;
  obs.cluster_nodes(4);
  obs.job_submitted(3);
  obs.finalize();
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("lost job"), std::string::npos);
}

TEST(ClusterOracle, LeakedAllocationFiresAtFinalize) {
  InvariantObserver obs;
  obs.cluster_nodes(4);
  obs.job_submitted(3);
  obs.job_started(3, {1});
  obs.finalize();
  EXPECT_FALSE(obs.ok());
  EXPECT_NE(obs.report().find("node conservation violated"),
            std::string::npos);
}

TEST(ClusterOracle, CleanLifecyclePasses) {
  InvariantObserver obs;
  obs.cluster_nodes(4);
  obs.job_submitted(3);
  obs.job_started(3, {1, 2});
  obs.job_completed(3);
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << obs.report();
}

// Mutation check: disabling the allocator's busy-node filter must be
// caught by the overlap oracle — proves the oracle guards the real
// scheduler path, not just hand-fed sequences.
TEST(ClusterOracle, MutationCheckBusyDisabledTripsOverlap) {
  const std::vector<JobSpec> jobs = {
      {.id = 0, .nodes = 2, .arrival = 0.0, .duration = 1e-3,
       .estimated_duration = 1e-3},
      {.id = 1, .nodes = 2, .arrival = 1e-4, .duration = 1e-3,
       .estimated_duration = 1e-3},
  };
  SchedulerConfig cfg = synth(Policy::kFifo, Placement::kContiguous);
  cfg.check_busy = false;  // the mutation
  SynthRun r(4, cfg, jobs);
  r.sched.run();
  r.obs.finalize();
  EXPECT_FALSE(r.obs.ok());
  EXPECT_NE(r.obs.report().find("overlapping node allocation"),
            std::string::npos);
}

// -- Spec validation -------------------------------------------------------

TEST(ClusterSpecValidation, JobSpecRejectsBadFields) {
  EXPECT_FALSE(JobSpec{.id = -1}.validate() == std::nullopt);
  EXPECT_FALSE((JobSpec{.id = 0, .nodes = 0}.validate()) == std::nullopt);
  EXPECT_FALSE(
      (JobSpec{.id = 0, .ranks_per_device = 0}.validate()) == std::nullopt);
  EXPECT_FALSE((JobSpec{.id = 0, .arrival = -1.0}.validate()) == std::nullopt);
  EXPECT_FALSE((JobSpec{.id = 0, .duration = 0.0}.validate()) == std::nullopt);
  EXPECT_FALSE((JobSpec{.id = 0, .iterations = 0}.validate()) == std::nullopt);
  EXPECT_TRUE(JobSpec{.id = 0}.validate() == std::nullopt);
}

TEST(ClusterSpecValidation, ClusterSpecRejectsBadFields) {
  EXPECT_FALSE(ClusterSpec{}.with_nodes(0).validate() == std::nullopt);
  EXPECT_FALSE(ClusterSpec{}.with_ranks_per_device(0).validate() ==
               std::nullopt);
  EXPECT_FALSE(ClusterSpec{}.with_host_ranks(-1).validate() == std::nullopt);
  EXPECT_TRUE(ClusterSpec{}.validate() == std::nullopt);
  EXPECT_TRUE(ClusterSpec{}.with_nodes(16).with_multi_tenant().validate() ==
              std::nullopt);
}

// -- Real multi-tenant workloads -------------------------------------------

cluster::WorkloadConfig small_real_workload(int jobs, std::uint64_t seed) {
  cluster::WorkloadConfig wl;
  wl.num_jobs = jobs;
  wl.seed = seed;
  wl.mean_interarrival = 2e-4;
  wl.ranks_per_device = 2;
  wl.bytes_per_msg = 1024;
  wl.min_iterations = 2;
  wl.max_iterations = 3;
  return wl;
}

// Runs a real (non-synthetic) open-arrival workload on a multi-tenant
// fabric and returns the transcript; every oracle must stay quiet.
std::vector<std::string> run_real(int nodes, int jobs, std::uint64_t seed,
                                  Policy policy, Placement place,
                                  std::uint64_t perturb_seed = 0) {
  sim::MachineConfig m;
  m.num_nodes = nodes;
  m.perturb_seed = perturb_seed;
  Cluster c(ClusterSpec{}.with_machine(m).with_ranks_per_device(2)
                .with_multi_tenant());
  InvariantObserver obs;
  c.sim().set_invariant_observer(&obs);
  SchedulerConfig cfg;
  cfg.policy = policy;
  cfg.placement = place;
  Scheduler sched(c, cfg);
  for (JobSpec& spec :
       cluster::generate_workload(small_real_workload(jobs, seed), nodes)) {
    sched.submit(std::move(spec));
  }
  sched.run();
  obs.finalize();
  EXPECT_TRUE(obs.ok()) << "policy " << cluster::to_string(policy) << ":\n"
                        << obs.report();
  EXPECT_EQ(sched.completed_jobs(), jobs);
  EXPECT_EQ(c.rx_dropped(), 0u);
  return sched.transcript();
}

TEST(ClusterReal, OpenArrivalWorkloadAllPolicies) {
  for (Policy p : {Policy::kFifo, Policy::kBackfill, Policy::kFairShare}) {
    run_real(/*nodes=*/8, /*jobs=*/10, /*seed=*/42, p, Placement::kStrided);
  }
}

TEST(ClusterReal, SixteenNodeTwentyFourJobs) {
  run_real(/*nodes=*/16, /*jobs=*/24, /*seed=*/7, Policy::kBackfill,
           Placement::kStrided);
}

TEST(ClusterReal, TranscriptIsDeterministic) {
  const std::vector<std::string> a =
      run_real(8, 8, 11, Policy::kBackfill, Placement::kContiguous);
  const std::vector<std::string> b =
      run_real(8, 8, 11, Policy::kBackfill, Placement::kContiguous);
  EXPECT_EQ(a, b);
}

// Fuzz lane (seed base 0x58000, disjoint from every other sweep): the
// schedule perturbation shakes event order under all three policies while
// the full oracle set watches.
TEST(ClusterReal, PerturbedArrivalFuzzLane) {
  constexpr std::uint64_t kBase = 0x58000;
  for (std::uint64_t seed = kBase; seed < kBase + 9; ++seed) {
    const Policy policy = static_cast<Policy>(seed % 3);
    const Placement place = (seed >> 2) % 2 == 0 ? Placement::kContiguous
                                                 : Placement::kStrided;
    run_real(/*nodes=*/6, /*jobs=*/6, /*seed=*/seed, policy, place,
             /*perturb_seed=*/seed);
  }
}

}  // namespace
}  // namespace dcuda
