file(REMOVE_RECURSE
  "CMakeFiles/diffusion_weather.dir/diffusion_weather.cpp.o"
  "CMakeFiles/diffusion_weather.dir/diffusion_weather.cpp.o.d"
  "diffusion_weather"
  "diffusion_weather.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffusion_weather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
