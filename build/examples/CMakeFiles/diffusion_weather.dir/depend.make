# Empty dependencies file for diffusion_weather.
# This may be replaced when dependencies are built.
