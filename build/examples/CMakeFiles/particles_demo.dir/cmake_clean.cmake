file(REMOVE_RECURSE
  "CMakeFiles/particles_demo.dir/particles_demo.cpp.o"
  "CMakeFiles/particles_demo.dir/particles_demo.cpp.o.d"
  "particles_demo"
  "particles_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particles_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
