# Empty dependencies file for particles_demo.
# This may be replaced when dependencies are built.
