
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/particles_demo.cpp" "examples/CMakeFiles/particles_demo.dir/particles_demo.cpp.o" "gcc" "examples/CMakeFiles/particles_demo.dir/particles_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/dcuda_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dcuda_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dcuda/CMakeFiles/dcuda_core.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/dcuda_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/dcuda_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/dcuda_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/dcuda_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dcuda_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/pcie/CMakeFiles/dcuda_pcie.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dcuda_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
