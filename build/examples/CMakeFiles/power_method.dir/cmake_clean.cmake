file(REMOVE_RECURSE
  "CMakeFiles/power_method.dir/power_method.cpp.o"
  "CMakeFiles/power_method.dir/power_method.cpp.o.d"
  "power_method"
  "power_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
