# Empty dependencies file for hybrid_host_ranks.
# This may be replaced when dependencies are built.
