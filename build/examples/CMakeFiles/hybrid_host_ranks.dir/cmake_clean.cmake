file(REMOVE_RECURSE
  "CMakeFiles/hybrid_host_ranks.dir/hybrid_host_ranks.cpp.o"
  "CMakeFiles/hybrid_host_ranks.dir/hybrid_host_ranks.cpp.o.d"
  "hybrid_host_ranks"
  "hybrid_host_ranks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_host_ranks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
