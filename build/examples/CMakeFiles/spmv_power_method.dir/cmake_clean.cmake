file(REMOVE_RECURSE
  "CMakeFiles/spmv_power_method.dir/spmv_power_method.cpp.o"
  "CMakeFiles/spmv_power_method.dir/spmv_power_method.cpp.o.d"
  "spmv_power_method"
  "spmv_power_method.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spmv_power_method.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
