# Empty dependencies file for spmv_power_method.
# This may be replaced when dependencies are built.
