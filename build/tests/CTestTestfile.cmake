# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/resource_test[1]_include.cmake")
include("/root/repo/build/tests/hw_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/mpi_test[1]_include.cmake")
include("/root/repo/build/tests/dcuda_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/particles_test[1]_include.cmake")
include("/root/repo/build/tests/spmv_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/sweep_test[1]_include.cmake")
include("/root/repo/build/tests/collectives_test[1]_include.cmake")
include("/root/repo/build/tests/host_ranks_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
