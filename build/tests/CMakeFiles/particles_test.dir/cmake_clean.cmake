file(REMOVE_RECURSE
  "CMakeFiles/particles_test.dir/particles_test.cpp.o"
  "CMakeFiles/particles_test.dir/particles_test.cpp.o.d"
  "particles_test"
  "particles_test.pdb"
  "particles_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/particles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
