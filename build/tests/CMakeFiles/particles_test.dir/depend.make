# Empty dependencies file for particles_test.
# This may be replaced when dependencies are built.
