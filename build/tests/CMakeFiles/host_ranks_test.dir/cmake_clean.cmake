file(REMOVE_RECURSE
  "CMakeFiles/host_ranks_test.dir/host_ranks_test.cpp.o"
  "CMakeFiles/host_ranks_test.dir/host_ranks_test.cpp.o.d"
  "host_ranks_test"
  "host_ranks_test.pdb"
  "host_ranks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_ranks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
