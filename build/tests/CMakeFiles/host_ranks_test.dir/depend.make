# Empty dependencies file for host_ranks_test.
# This may be replaced when dependencies are built.
