# Empty compiler generated dependencies file for dcuda_test.
# This may be replaced when dependencies are built.
