file(REMOVE_RECURSE
  "CMakeFiles/dcuda_test.dir/dcuda_test.cpp.o"
  "CMakeFiles/dcuda_test.dir/dcuda_test.cpp.o.d"
  "dcuda_test"
  "dcuda_test.pdb"
  "dcuda_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
