# Empty dependencies file for ablation_klayers.
# This may be replaced when dependencies are built.
