file(REMOVE_RECURSE
  "CMakeFiles/ablation_klayers.dir/ablation_klayers.cpp.o"
  "CMakeFiles/ablation_klayers.dir/ablation_klayers.cpp.o.d"
  "ablation_klayers"
  "ablation_klayers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_klayers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
