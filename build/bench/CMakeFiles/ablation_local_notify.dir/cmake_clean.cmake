file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_notify.dir/ablation_local_notify.cpp.o"
  "CMakeFiles/ablation_local_notify.dir/ablation_local_notify.cpp.o.d"
  "ablation_local_notify"
  "ablation_local_notify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_notify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
