# Empty dependencies file for ablation_local_notify.
# This may be replaced when dependencies are built.
