file(REMOVE_RECURSE
  "CMakeFiles/fig1_schedule_trace.dir/fig1_schedule_trace.cpp.o"
  "CMakeFiles/fig1_schedule_trace.dir/fig1_schedule_trace.cpp.o.d"
  "fig1_schedule_trace"
  "fig1_schedule_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_schedule_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
