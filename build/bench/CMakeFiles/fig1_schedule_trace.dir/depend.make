# Empty dependencies file for fig1_schedule_trace.
# This may be replaced when dependencies are built.
