# Empty dependencies file for fig7_overlap_compute.
# This may be replaced when dependencies are built.
