file(REMOVE_RECURSE
  "CMakeFiles/fig7_overlap_compute.dir/fig7_overlap_compute.cpp.o"
  "CMakeFiles/fig7_overlap_compute.dir/fig7_overlap_compute.cpp.o.d"
  "fig7_overlap_compute"
  "fig7_overlap_compute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_overlap_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
