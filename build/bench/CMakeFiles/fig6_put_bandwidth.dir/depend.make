# Empty dependencies file for fig6_put_bandwidth.
# This may be replaced when dependencies are built.
