file(REMOVE_RECURSE
  "CMakeFiles/fig6_put_bandwidth.dir/fig6_put_bandwidth.cpp.o"
  "CMakeFiles/fig6_put_bandwidth.dir/fig6_put_bandwidth.cpp.o.d"
  "fig6_put_bandwidth"
  "fig6_put_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_put_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
