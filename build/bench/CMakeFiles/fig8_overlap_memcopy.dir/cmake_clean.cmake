file(REMOVE_RECURSE
  "CMakeFiles/fig8_overlap_memcopy.dir/fig8_overlap_memcopy.cpp.o"
  "CMakeFiles/fig8_overlap_memcopy.dir/fig8_overlap_memcopy.cpp.o.d"
  "fig8_overlap_memcopy"
  "fig8_overlap_memcopy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overlap_memcopy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
