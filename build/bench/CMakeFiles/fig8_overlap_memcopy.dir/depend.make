# Empty dependencies file for fig8_overlap_memcopy.
# This may be replaced when dependencies are built.
