file(REMOVE_RECURSE
  "CMakeFiles/fig9_particles_scaling.dir/fig9_particles_scaling.cpp.o"
  "CMakeFiles/fig9_particles_scaling.dir/fig9_particles_scaling.cpp.o.d"
  "fig9_particles_scaling"
  "fig9_particles_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_particles_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
