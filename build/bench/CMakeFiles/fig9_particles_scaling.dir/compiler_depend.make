# Empty compiler generated dependencies file for fig9_particles_scaling.
# This may be replaced when dependencies are built.
