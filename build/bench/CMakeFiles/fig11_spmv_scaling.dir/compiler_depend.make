# Empty compiler generated dependencies file for fig11_spmv_scaling.
# This may be replaced when dependencies are built.
