# Empty dependencies file for dcuda_apps.
# This may be replaced when dependencies are built.
