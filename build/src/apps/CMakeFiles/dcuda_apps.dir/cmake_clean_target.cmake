file(REMOVE_RECURSE
  "libdcuda_apps.a"
)
