file(REMOVE_RECURSE
  "CMakeFiles/dcuda_apps.dir/particles.cc.o"
  "CMakeFiles/dcuda_apps.dir/particles.cc.o.d"
  "CMakeFiles/dcuda_apps.dir/spmv.cc.o"
  "CMakeFiles/dcuda_apps.dir/spmv.cc.o.d"
  "CMakeFiles/dcuda_apps.dir/stencil.cc.o"
  "CMakeFiles/dcuda_apps.dir/stencil.cc.o.d"
  "libdcuda_apps.a"
  "libdcuda_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
