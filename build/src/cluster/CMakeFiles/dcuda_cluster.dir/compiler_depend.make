# Empty compiler generated dependencies file for dcuda_cluster.
# This may be replaced when dependencies are built.
