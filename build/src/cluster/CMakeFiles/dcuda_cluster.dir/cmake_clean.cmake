file(REMOVE_RECURSE
  "CMakeFiles/dcuda_cluster.dir/cluster.cc.o"
  "CMakeFiles/dcuda_cluster.dir/cluster.cc.o.d"
  "libdcuda_cluster.a"
  "libdcuda_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
