file(REMOVE_RECURSE
  "libdcuda_cluster.a"
)
