file(REMOVE_RECURSE
  "CMakeFiles/dcuda_queue.dir/circular_queue.cc.o"
  "CMakeFiles/dcuda_queue.dir/circular_queue.cc.o.d"
  "libdcuda_queue.a"
  "libdcuda_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
