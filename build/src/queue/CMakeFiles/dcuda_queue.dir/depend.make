# Empty dependencies file for dcuda_queue.
# This may be replaced when dependencies are built.
