file(REMOVE_RECURSE
  "libdcuda_queue.a"
)
