file(REMOVE_RECURSE
  "libdcuda_runtime.a"
)
