file(REMOVE_RECURSE
  "CMakeFiles/dcuda_runtime.dir/node_runtime.cc.o"
  "CMakeFiles/dcuda_runtime.dir/node_runtime.cc.o.d"
  "libdcuda_runtime.a"
  "libdcuda_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
