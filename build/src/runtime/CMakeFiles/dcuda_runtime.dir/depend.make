# Empty dependencies file for dcuda_runtime.
# This may be replaced when dependencies are built.
