file(REMOVE_RECURSE
  "CMakeFiles/dcuda_pcie.dir/pcie.cc.o"
  "CMakeFiles/dcuda_pcie.dir/pcie.cc.o.d"
  "libdcuda_pcie.a"
  "libdcuda_pcie.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_pcie.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
