file(REMOVE_RECURSE
  "libdcuda_pcie.a"
)
