# Empty compiler generated dependencies file for dcuda_pcie.
# This may be replaced when dependencies are built.
