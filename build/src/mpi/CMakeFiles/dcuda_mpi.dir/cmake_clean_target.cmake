file(REMOVE_RECURSE
  "libdcuda_mpi.a"
)
