file(REMOVE_RECURSE
  "CMakeFiles/dcuda_mpi.dir/mpi.cc.o"
  "CMakeFiles/dcuda_mpi.dir/mpi.cc.o.d"
  "libdcuda_mpi.a"
  "libdcuda_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
