# Empty compiler generated dependencies file for dcuda_mpi.
# This may be replaced when dependencies are built.
