file(REMOVE_RECURSE
  "CMakeFiles/dcuda_core.dir/collectives.cc.o"
  "CMakeFiles/dcuda_core.dir/collectives.cc.o.d"
  "CMakeFiles/dcuda_core.dir/dcuda.cc.o"
  "CMakeFiles/dcuda_core.dir/dcuda.cc.o.d"
  "libdcuda_core.a"
  "libdcuda_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
