# Empty compiler generated dependencies file for dcuda_core.
# This may be replaced when dependencies are built.
