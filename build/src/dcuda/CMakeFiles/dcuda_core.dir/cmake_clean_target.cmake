file(REMOVE_RECURSE
  "libdcuda_core.a"
)
