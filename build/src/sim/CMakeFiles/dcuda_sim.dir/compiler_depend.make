# Empty compiler generated dependencies file for dcuda_sim.
# This may be replaced when dependencies are built.
