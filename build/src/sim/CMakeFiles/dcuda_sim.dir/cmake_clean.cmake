file(REMOVE_RECURSE
  "CMakeFiles/dcuda_sim.dir/resource.cc.o"
  "CMakeFiles/dcuda_sim.dir/resource.cc.o.d"
  "CMakeFiles/dcuda_sim.dir/simulation.cc.o"
  "CMakeFiles/dcuda_sim.dir/simulation.cc.o.d"
  "CMakeFiles/dcuda_sim.dir/trace.cc.o"
  "CMakeFiles/dcuda_sim.dir/trace.cc.o.d"
  "libdcuda_sim.a"
  "libdcuda_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
