file(REMOVE_RECURSE
  "libdcuda_sim.a"
)
