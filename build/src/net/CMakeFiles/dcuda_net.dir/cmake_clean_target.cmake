file(REMOVE_RECURSE
  "libdcuda_net.a"
)
