file(REMOVE_RECURSE
  "CMakeFiles/dcuda_net.dir/fabric.cc.o"
  "CMakeFiles/dcuda_net.dir/fabric.cc.o.d"
  "libdcuda_net.a"
  "libdcuda_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
