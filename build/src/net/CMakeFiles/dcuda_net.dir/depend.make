# Empty dependencies file for dcuda_net.
# This may be replaced when dependencies are built.
