# Empty compiler generated dependencies file for dcuda_gpu.
# This may be replaced when dependencies are built.
