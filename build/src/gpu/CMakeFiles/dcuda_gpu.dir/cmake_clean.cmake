file(REMOVE_RECURSE
  "CMakeFiles/dcuda_gpu.dir/device.cc.o"
  "CMakeFiles/dcuda_gpu.dir/device.cc.o.d"
  "libdcuda_gpu.a"
  "libdcuda_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcuda_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
