file(REMOVE_RECURSE
  "libdcuda_gpu.a"
)
