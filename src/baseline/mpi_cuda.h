#pragma once

// MPI-CUDA baseline programming model (the traditional approach of Fig. 1):
// one host process per node owning one device, alternating between fork-join
// kernel invocations and two-sided MPI communication, with explicit
// host-device copies for bookkeeping data.
//
// This is the comparison system for every weak-scaling figure: the
// mini-applications implement the same logic on both models, without manual
// overlap of computation and communication in either.

#include <functional>
#include <string>
#include <vector>

#include "gpu/device.h"
#include "mpi/mpi.h"
#include "sim/proc.h"

namespace dcuda::baseline {

// Per-node handle the host main loop programs against.
class HostProgram {
 public:
  HostProgram(gpu::Device& dev, mpi::Endpoint& ep) : dev_(&dev), ep_(&ep) {}

  int node() const { return dev_->node(); }
  int num_nodes() const { return ep_->size(); }
  gpu::Device& device() { return *dev_; }
  mpi::Endpoint& mpi() { return *ep_; }
  sim::Simulation& sim() { return dev_->simulation(); }

  // Fork-join kernel launch with the standard configuration (208 blocks of
  // 128 threads unless overridden).
  sim::Proc<void> launch(gpu::Kernel k, const std::string& name = "kernel") {
    co_await dev_->launch(cfg_, std::move(k), name);
  }
  sim::Proc<void> launch(const gpu::LaunchConfig& lc, gpu::Kernel k,
                         const std::string& name = "kernel") {
    co_await dev_->launch(lc, std::move(k), name);
  }
  void set_launch_config(const gpu::LaunchConfig& lc) { cfg_ = lc; }
  const gpu::LaunchConfig& launch_config() const { return cfg_; }

  // Two-sided communication (CUDA-aware: device buffers allowed).
  mpi::Request isend(int dst, int tag, gpu::MemRef buf) {
    return ep_->isend(dst, tag, buf);
  }
  mpi::Request irecv(int src, int tag, gpu::MemRef buf) {
    return ep_->irecv(src, tag, buf);
  }
  sim::Proc<void> sendrecv(int peer, int tag, gpu::MemRef sendbuf,
                           gpu::MemRef recvbuf) {
    mpi::Request r = irecv(peer, tag, recvbuf);
    mpi::Request s = isend(peer, tag, sendbuf);
    co_await s.wait();
    co_await r.wait();
  }
  sim::Proc<void> barrier() { return ep_->barrier(); }

  // Explicit copies (e.g. fetching bookkeeping counters to the host).
  sim::Proc<void> copy(gpu::MemRef dst, gpu::MemRef src) {
    return dev_->dma_copy(dst, src);
  }

 private:
  gpu::Device* dev_;
  mpi::Endpoint* ep_;
  gpu::LaunchConfig cfg_{208, 128, 26};
};

// Grid-stride style helper: splits `total` work items across the blocks of a
// launch; returns [begin, end) for one block.
struct BlockRange {
  int begin = 0;
  int end = 0;
};
inline BlockRange block_range(int total, int grid_blocks, int block_id) {
  const int per = (total + grid_blocks - 1) / grid_blocks;
  const int b = block_id * per;
  const int e = std::min(total, b + per);
  return {std::min(b, total), e};
}

}  // namespace dcuda::baseline
