#pragma once

// Host-side nonblocking message-passing library over the network fabric —
// the MPI subset the dCUDA runtime and the MPI-CUDA baseline are built on.
//
// Semantics follow MPI where it matters here:
//  * isend/irecv with (source, tag) matching, wildcards, and non-overtaking
//    order per (source, destination) pair;
//  * eager protocol below `eager_limit` (payload travels with the envelope
//    and is buffered unexpected if no recv is posted), rendezvous (RTS/CTS)
//    above;
//  * CUDA-awareness: device buffers are transferred directly (GPUDirect
//    read, capped at the slow Kepler peer-read bandwidth) or, above
//    `device_staging_threshold`, staged through host memory in pipelined
//    chunks at full link bandwidth — the trade-off the paper's stencil
//    discussion (§IV-C) hinges on;
//  * data really moves: completions memcpy payload bytes into the
//    destination buffer.

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "gpu/device.h"
#include "gpu/mem.h"
#include "net/fabric.h"
#include "sim/config.h"
#include "sim/mailbox.h"
#include "sim/proc.h"
#include "sim/simulation.h"
#include "sim/trigger.h"

namespace dcuda::mpi {

inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

class Endpoint;

class Request {
 public:
  Request() = default;
  bool valid() const { return static_cast<bool>(st_); }
  bool done() const;
  // Completion source/tag (meaningful for wildcard receives).
  int source() const;
  int tag() const;
  sim::Proc<void> wait();

 private:
  friend class Endpoint;
  struct State;
  explicit Request(std::shared_ptr<State> st) : st_(std::move(st)) {}
  std::shared_ptr<State> st_;
};

sim::Proc<void> wait_all(std::vector<Request> reqs);

// One communication endpoint per node (rank == node id). In a job-scoped
// world (cluster::Scheduler, docs/CLUSTER.md) ranks are job-relative:
// `node_map` translates them to physical fabric nodes at the wire, and
// `rx_override` replaces the fabric rx mailbox with the job's private one
// (fed by the Cluster rx mux) — every wire struct keeps carrying
// job-relative ranks, so a job's protocol state is placement-independent.
class Endpoint {
 public:
  Endpoint(sim::Simulation& s, net::Fabric& fabric, int rank, int world_size,
           const sim::MpiConfig& cfg, gpu::Device* device,
           std::vector<int> node_map = {},
           sim::Mailbox<net::Packet>* rx_override = nullptr);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  int rank() const { return rank_; }
  int size() const { return size_; }
  // Physical fabric node of a (job-relative) rank.
  int phys(int rank) const {
    return node_map_.empty() ? rank : node_map_[static_cast<size_t>(rank)];
  }

  Request isend(int dst, int tag, gpu::MemRef buf);
  Request irecv(int src, int tag, gpu::MemRef buf);
  sim::Proc<void> send(int dst, int tag, gpu::MemRef buf);
  sim::Proc<void> recv(int src, int tag, gpu::MemRef buf);

  // Collective over all endpoints (centralized at rank 0).
  sim::Proc<void> barrier();

  std::uint64_t sends_started() const { return sends_; }
  std::uint64_t staged_transfers() const { return staged_; }
  std::uint64_t direct_device_transfers() const { return direct_dev_; }

 private:
  struct Wire;  // on-fabric message
  struct Posting;
  struct CtsState;  // rendezvous send blocked on clear-to-send

  sim::Proc<void> rx_loop();
  sim::Proc<void> send_body(int dst, int tag, gpu::MemRef buf,
                            std::shared_ptr<Request::State> st);
  sim::Proc<void> send_data(int dst, std::uint64_t msg_id, gpu::MemRef buf,
                            std::shared_ptr<Request::State> st);
  void handle(Wire w);
  void deliver_eager(Wire& w);
  void deliver_fragment(Wire& w);
  sim::Proc<void> finish_fragment(std::shared_ptr<Posting> p, Wire w);
  // Finds and removes the first matching posting; nullptr if none.
  std::shared_ptr<Posting> match_posting(int src, int tag);
  sim::Proc<void> complete_into(std::shared_ptr<Posting> p, Wire w);

  sim::Simulation& sim_;
  net::Fabric& fabric_;
  int rank_;
  int size_;
  sim::MpiConfig cfg_;
  gpu::Device* device_;
  std::vector<int> node_map_;                         // empty = identity
  sim::Mailbox<net::Packet>* rx_override_ = nullptr;  // null = fabric rx

  std::vector<std::shared_ptr<Posting>> postings_;
  std::deque<std::shared_ptr<Wire>> unexpected_;
  // In-flight rendezvous receives, keyed by (source rank, sender msg id) —
  // message ids are only unique per sender.
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Posting>> inflight_;
  std::map<std::uint64_t, std::shared_ptr<CtsState>> awaiting_cts_;
  std::uint64_t next_msg_id_ = 1;

  // Barrier bookkeeping (rank 0 collects, then releases).
  int barrier_arrivals_ = 0;
  int target_arrivals_ = 0;
  std::uint64_t barrier_epoch_ = 0;
  std::uint64_t barrier_waits_ = 0;
  std::unique_ptr<sim::Trigger> barrier_release_;

  std::uint64_t sends_ = 0;
  std::uint64_t staged_ = 0;
  std::uint64_t direct_dev_ = 0;
};

// Owns one endpoint per node of the fabric.
class World {
 public:
  World(sim::Simulation& s, net::Fabric& fabric, const sim::MpiConfig& cfg,
        const std::vector<gpu::Device*>& devices);
  // Job-scoped world (docs/CLUSTER.md): one endpoint per entry of
  // `node_map` (job-relative rank -> physical node), each consuming its
  // job-private rx mailbox instead of the fabric's.
  World(sim::Simulation& s, net::Fabric& fabric, const sim::MpiConfig& cfg,
        const std::vector<gpu::Device*>& devices,
        const std::vector<int>& node_map,
        const std::vector<sim::Mailbox<net::Packet>*>& rx_overrides);
  Endpoint& at(int rank) { return *endpoints_[static_cast<size_t>(rank)]; }
  int size() const { return static_cast<int>(endpoints_.size()); }

 private:
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace dcuda::mpi
