#include "mpi/mpi.h"

#include <cassert>
#include <cstring>
#include <limits>

namespace dcuda::mpi {

struct Request::State {
  explicit State(sim::Simulation& s) : trig(s) {}
  bool done = false;
  int src = -1;
  int tag = 0;
  sim::Trigger trig;
};

bool Request::done() const { return st_ && st_->done; }
int Request::source() const { return st_->src; }
int Request::tag() const { return st_->tag; }

sim::Proc<void> Request::wait() {
  auto st = st_;
  while (!st->done) co_await st->trig.wait();
}

sim::Proc<void> wait_all(std::vector<Request> reqs) {
  for (auto& r : reqs) co_await r.wait();
}

// On-fabric message.
struct Endpoint::Wire {
  enum Kind { kEager, kRts, kCts, kFrag, kBarrier, kBarrierRelease };
  Kind kind = kEager;
  int src = -1;
  int tag = 0;
  std::uint64_t msg_id = 0;
  std::size_t total_bytes = 0;
  std::size_t offset = 0;
  bool last = true;
  bool staged = false;  // fragment travelled via host staging
  std::shared_ptr<std::vector<std::byte>> data;
};

struct Endpoint::Posting {
  int src = kAnySource;
  int tag = kAnyTag;
  gpu::MemRef buf;
  std::shared_ptr<Request::State> st;
  std::size_t received = 0;
  std::size_t expected = 0;
};

struct Endpoint::CtsState {
  explicit CtsState(sim::Simulation& s) : trig(s) {}
  bool granted = false;
  sim::Trigger trig;
};

namespace {
constexpr double kEnvelopeBytes = 64.0;  // wire header per message
}  // namespace

Endpoint::Endpoint(sim::Simulation& s, net::Fabric& fabric, int rank,
                   int world_size, const sim::MpiConfig& cfg, gpu::Device* device,
                   std::vector<int> node_map,
                   sim::Mailbox<net::Packet>* rx_override)
    : sim_(s),
      fabric_(fabric),
      rank_(rank),
      size_(world_size),
      cfg_(cfg),
      device_(device),
      node_map_(std::move(node_map)),
      rx_override_(rx_override),
      barrier_release_(std::make_unique<sim::Trigger>(s)) {
  s.spawn(rx_loop(), "mpi-rx@" + std::to_string(phys(rank)), /*daemon=*/true);
}

Request Endpoint::isend(int dst, int tag, gpu::MemRef buf) {
  auto st = std::make_shared<Request::State>(sim_);
  st->src = rank_;
  st->tag = tag;
  ++sends_;
  sim_.spawn(send_body(dst, tag, buf, st),
             "mpi-send@" + std::to_string(rank_) + "->" + std::to_string(dst));
  return Request(st);
}

Request Endpoint::irecv(int src, int tag, gpu::MemRef buf) {
  auto st = std::make_shared<Request::State>(sim_);
  auto p = std::make_shared<Posting>();
  p->src = src;
  p->tag = tag;
  p->buf = buf;
  p->st = st;
  p->expected = buf.bytes;

  // Check the unexpected queue first (arrival order).
  for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
    const bool src_ok = (src == kAnySource || src == (*it)->src);
    const bool tag_ok = (tag == kAnyTag || tag == (*it)->tag);
    if (!src_ok || !tag_ok) continue;
    Wire w = std::move(**it);
    unexpected_.erase(it);
    if (w.kind == Wire::kEager) {
      sim_.spawn(complete_into(p, std::move(w)), "mpi-complete");
    } else {  // buffered RTS
      p->expected = w.total_bytes;
      inflight_[{w.src, w.msg_id}] = p;
      Wire cts;
      cts.kind = Wire::kCts;
      cts.src = rank_;
      cts.msg_id = w.msg_id;
      fabric_.send(net::Packet{phys(rank_), phys(w.src), kEnvelopeBytes, cts});
    }
    return Request(st);
  }
  postings_.push_back(p);
  return Request(st);
}

sim::Proc<void> Endpoint::send(int dst, int tag, gpu::MemRef buf) {
  Request r = isend(dst, tag, buf);
  co_await r.wait();
}

sim::Proc<void> Endpoint::recv(int src, int tag, gpu::MemRef buf) {
  Request r = irecv(src, tag, buf);
  co_await r.wait();
}

sim::Proc<void> Endpoint::send_body(int dst, int tag, gpu::MemRef buf,
                                    std::shared_ptr<Request::State> st) {
  co_await sim_.delay(cfg_.call_overhead);
  const std::uint64_t id = next_msg_id_++;

  if (dst == rank_) {
    // Self-send: loop straight back into the matching machinery.
    Wire w;
    w.kind = Wire::kEager;
    w.src = rank_;
    w.tag = tag;
    w.msg_id = id;
    w.total_bytes = buf.bytes;
    w.data = std::make_shared<std::vector<std::byte>>(buf.data, buf.data + buf.bytes);
    st->done = true;
    st->trig.notify_all();
    handle(std::move(w));
    co_return;
  }

  if (buf.bytes <= cfg_.eager_limit) {
    Wire w;
    w.kind = Wire::kEager;
    w.src = rank_;
    w.tag = tag;
    w.msg_id = id;
    w.total_bytes = buf.bytes;
    w.data = std::make_shared<std::vector<std::byte>>(buf.data, buf.data + buf.bytes);
    const sim::Rate cap = buf.on_device() && device_ && device_->pcie()
                              ? device_->pcie()->config().gpudirect_bandwidth
                              : std::numeric_limits<sim::Rate>::infinity();
    if (buf.on_device()) ++direct_dev_;
    fabric_.send(net::Packet{phys(rank_), phys(dst),
                             static_cast<double>(buf.bytes) + kEnvelopeBytes,
                             std::move(w)},
                 cap);
    st->done = true;  // eager send buffers locally; sender may reuse buf
    st->trig.notify_all();
    co_return;
  }

  // Rendezvous: RTS, wait for CTS, then move the data.
  auto cts = std::make_shared<CtsState>(sim_);
  awaiting_cts_[id] = cts;
  Wire rts;
  rts.kind = Wire::kRts;
  rts.src = rank_;
  rts.tag = tag;
  rts.msg_id = id;
  rts.total_bytes = buf.bytes;
  fabric_.send(net::Packet{phys(rank_), phys(dst), kEnvelopeBytes, rts});
  while (!cts->granted) co_await cts->trig.wait();
  awaiting_cts_.erase(id);
  co_await send_data(dst, id, buf, st);
}

sim::Proc<void> Endpoint::send_data(int dst, std::uint64_t msg_id, gpu::MemRef buf,
                                    std::shared_ptr<Request::State> st) {
  const bool stage = buf.on_device() && device_ && device_->pcie() &&
                     buf.bytes > cfg_.device_staging_threshold;
  if (stage) {
    ++staged_;
    // Pipelined host staging: chunkwise D2H DMA, each chunk entering the
    // wire as soon as it lands in host memory. The NIC serializes behind
    // the (faster) PCIe link, so the transfer runs at network rate.
    std::size_t off = 0;
    while (off < buf.bytes) {
      const std::size_t chunk = std::min(cfg_.staging_chunk, buf.bytes - off);
      co_await device_->pcie()->dma(pcie::Dir::kDeviceToHost,
                                    static_cast<double>(chunk));
      Wire f;
      f.kind = Wire::kFrag;
      f.src = rank_;
      f.msg_id = msg_id;
      f.total_bytes = buf.bytes;
      f.offset = off;
      f.last = off + chunk == buf.bytes;
      f.staged = true;
      f.data = std::make_shared<std::vector<std::byte>>(buf.data + off,
                                                        buf.data + off + chunk);
      fabric_.send(net::Packet{phys(rank_), phys(dst),
                               static_cast<double>(chunk) + kEnvelopeBytes,
                               std::move(f)});
      off += chunk;
    }
  } else {
    if (buf.on_device()) ++direct_dev_;
    const sim::Rate cap = buf.on_device() && device_ && device_->pcie()
                              ? device_->pcie()->config().gpudirect_bandwidth
                              : std::numeric_limits<sim::Rate>::infinity();
    Wire f;
    f.kind = Wire::kFrag;
    f.src = rank_;
    f.msg_id = msg_id;
    f.total_bytes = buf.bytes;
    f.offset = 0;
    f.last = true;
    f.data = std::make_shared<std::vector<std::byte>>(buf.data, buf.data + buf.bytes);
    fabric_.send(net::Packet{phys(rank_), phys(dst),
                             static_cast<double>(buf.bytes) + kEnvelopeBytes,
                             std::move(f)},
                 cap);
  }
  st->done = true;
  st->trig.notify_all();
}

sim::Proc<void> Endpoint::rx_loop() {
  sim::Mailbox<net::Packet>& rx =
      rx_override_ != nullptr ? *rx_override_ : fabric_.rx(phys(rank_));
  for (;;) {
    net::Packet p = co_await rx.pop();
    handle(std::any_cast<Wire>(std::move(p.payload)));
  }
}

std::shared_ptr<Endpoint::Posting> Endpoint::match_posting(int src, int tag) {
  for (auto it = postings_.begin(); it != postings_.end(); ++it) {
    const Posting& p = **it;
    const bool src_ok = (p.src == kAnySource || p.src == src);
    const bool tag_ok = (p.tag == kAnyTag || p.tag == tag);
    if (src_ok && tag_ok) {
      auto sp = *it;
      postings_.erase(it);
      return sp;
    }
  }
  return nullptr;
}

void Endpoint::handle(Wire w) {
  switch (w.kind) {
    case Wire::kEager:
      deliver_eager(w);
      break;
    case Wire::kRts: {
      if (auto p = match_posting(w.src, w.tag)) {
        p->expected = w.total_bytes;
        p->st->src = w.src;
        p->st->tag = w.tag;
        inflight_[{w.src, w.msg_id}] = p;
        Wire cts;
        cts.kind = Wire::kCts;
        cts.src = rank_;
        cts.msg_id = w.msg_id;
        fabric_.send(net::Packet{phys(rank_), phys(w.src), kEnvelopeBytes, cts});
      } else {
        unexpected_.push_back(std::make_shared<Wire>(std::move(w)));
      }
      break;
    }
    case Wire::kCts: {
      auto& reg = awaiting_cts_;
      if (auto it = reg.find(w.msg_id); it != reg.end()) {
        it->second->granted = true;
        it->second->trig.notify_all();
      }
      break;
    }
    case Wire::kFrag:
      deliver_fragment(w);
      break;
    case Wire::kBarrier: {
      assert(rank_ == 0);
      ++barrier_arrivals_;
      barrier_release_->notify_all();
      break;
    }
    case Wire::kBarrierRelease: {
      ++barrier_epoch_;
      barrier_release_->notify_all();
      break;
    }
  }
}

void Endpoint::deliver_eager(Wire& w) {
  if (auto p = match_posting(w.src, w.tag)) {
    sim_.spawn(complete_into(p, std::move(w)), "mpi-complete");
  } else {
    unexpected_.push_back(std::make_shared<Wire>(std::move(w)));
  }
}

sim::Proc<void> Endpoint::complete_into(std::shared_ptr<Posting> p, Wire w) {
  co_await sim_.delay(cfg_.call_overhead);
  assert(w.total_bytes <= p->buf.bytes);
  if (w.total_bytes > 0) std::memcpy(p->buf.data, w.data->data(), w.total_bytes);
  p->st->src = w.src;
  p->st->tag = w.tag;
  p->st->done = true;
  p->st->trig.notify_all();
}

void Endpoint::deliver_fragment(Wire& w) {
  auto it = inflight_.find({w.src, w.msg_id});
  assert(it != inflight_.end());  // CTS precedes fragments
  sim_.spawn(finish_fragment(it->second, std::move(w)), "mpi-frag");
}

sim::Proc<void> Endpoint::finish_fragment(std::shared_ptr<Posting> p, Wire w) {
  // Staged fragments into device memory pay the target-side H2D DMA.
  if (w.staged && p->buf.on_device() && device_ && device_->pcie()) {
    co_await device_->pcie()->dma(pcie::Dir::kHostToDevice,
                                  static_cast<double>(w.data->size()));
  }
  std::memcpy(p->buf.data + w.offset, w.data->data(), w.data->size());
  p->received += w.data->size();
  if (p->received >= p->expected) {
    inflight_.erase({w.src, w.msg_id});
    p->st->done = true;
    p->st->trig.notify_all();
  }
}

sim::Proc<void> Endpoint::barrier() {
  co_await sim_.delay(cfg_.call_overhead);
  if (size_ == 1) co_return;
  if (rank_ == 0) {
    target_arrivals_ += size_ - 1;
    while (barrier_arrivals_ < target_arrivals_) co_await barrier_release_->wait();
    for (int r = 1; r < size_; ++r) {
      Wire rel;
      rel.kind = Wire::kBarrierRelease;
      rel.src = 0;
      fabric_.send(net::Packet{phys(0), phys(r), kEnvelopeBytes, rel});
    }
  } else {
    Wire arr;
    arr.kind = Wire::kBarrier;
    arr.src = rank_;
    fabric_.send(net::Packet{phys(rank_), phys(0), kEnvelopeBytes, arr});
    const std::uint64_t target = ++barrier_waits_;
    while (barrier_epoch_ < target) co_await barrier_release_->wait();
  }
}

World::World(sim::Simulation& s, net::Fabric& fabric, const sim::MpiConfig& cfg,
             const std::vector<gpu::Device*>& devices) {
  const int n = fabric.num_nodes();
  endpoints_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    gpu::Device* dev =
        r < static_cast<int>(devices.size()) ? devices[static_cast<size_t>(r)] : nullptr;
    // Each endpoint (and its rx daemon) lives in its node's shard.
    sim::ShardGuard guard(s, s.shard_for(r));
    endpoints_.push_back(std::make_unique<Endpoint>(s, fabric, r, n, cfg, dev));
  }
}

World::World(sim::Simulation& s, net::Fabric& fabric, const sim::MpiConfig& cfg,
             const std::vector<gpu::Device*>& devices,
             const std::vector<int>& node_map,
             const std::vector<sim::Mailbox<net::Packet>*>& rx_overrides) {
  const int n = static_cast<int>(node_map.size());
  endpoints_.reserve(static_cast<size_t>(n));
  for (int r = 0; r < n; ++r) {
    gpu::Device* dev =
        r < static_cast<int>(devices.size()) ? devices[static_cast<size_t>(r)] : nullptr;
    endpoints_.push_back(std::make_unique<Endpoint>(
        s, fabric, r, n, cfg, dev, node_map,
        rx_overrides[static_cast<size_t>(r)]));
  }
}

}  // namespace dcuda::mpi
