#include "sim/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <utility>

namespace dcuda::sim {

namespace {

// Devices per group are numbered into disjoint pid ranges so merged
// variants keep distinct process tracks.
constexpr std::int64_t kPidStride = 1000;

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string lane_name(std::int32_t lane) {
  if (lane == kFabricLane) return "fabric tx";
  if (lane == kPcieLaneH2D) return "pcie h2d";
  if (lane == kPcieLaneD2H) return "pcie d2h";
  if (lane == kRuntimeLane) return "runtime";
  if (lane == kNicLane) return "nic";
  if (lane >= kHostRankLaneBase && lane < kFabricLane) {
    return "host rank " + std::to_string(lane - kHostRankLaneBase);
  }
  return "rank " + std::to_string(lane);
}

struct JsonEvent {
  Time ts = 0.0;
  std::string body;  // full event object text
};

}  // namespace

void export_chrome(std::ostream& os, const std::vector<TracerGroup>& groups) {
  std::vector<JsonEvent> events;
  std::string meta;  // metadata events, timestamp-less, emitted first

  for (std::size_t g = 0; g < groups.size(); ++g) {
    const Tracer* t = groups[g].tracer;
    if (t == nullptr) continue;
    const std::string& label = groups[g].label;
    const std::int64_t pid_base = static_cast<std::int64_t>(g) * kPidStride;

    // Collect the (device, lane) universe for metadata.
    std::set<std::int32_t> devices;
    std::set<std::pair<std::int32_t, std::int32_t>> lanes;
    for (const auto& s : t->spans()) {
      devices.insert(s.device);
      lanes.insert({s.device, s.lane});
    }
    for (const auto& c : t->counter_samples()) devices.insert(c.device);

    for (std::int32_t d : devices) {
      const std::int64_t pid = pid_base + d;
      const std::string pname =
          (label.empty() ? "" : label + " ") + "dev" + std::to_string(d);
      meta += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
              ",\"name\":\"process_name\",\"args\":{\"name\":\"" +
              json_escape(pname) + "\"}},\n";
      meta += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
              ",\"name\":\"process_sort_index\",\"args\":{\"sort_index\":" +
              std::to_string(pid) + "}},\n";
    }
    for (const auto& [d, lane] : lanes) {
      meta += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid_base + d) +
              ",\"tid\":" + std::to_string(lane) +
              ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
              json_escape(lane_name(lane)) + "\"}},\n";
    }

    for (const auto& s : t->spans()) {
      std::string e = "{\"ph\":\"X\",\"pid\":" + std::to_string(pid_base + s.device) +
                      ",\"tid\":" + std::to_string(s.lane) +
                      ",\"ts\":" + fmt_num(to_micros(s.begin)) +
                      ",\"dur\":" + fmt_num(to_micros(s.end - s.begin)) +
                      ",\"name\":\"" + json_escape(s.activity) +
                      "\",\"cat\":\"" + category_name(s.category) + "\"";
      if (s.bytes > 0.0) e += ",\"args\":{\"bytes\":" + fmt_num(s.bytes) + "}";
      e += "}";
      events.push_back({s.begin, std::move(e)});
    }
    for (const auto& c : t->counter_samples()) {
      std::string e = "{\"ph\":\"C\",\"pid\":" + std::to_string(pid_base + c.device) +
                      ",\"tid\":0,\"ts\":" + fmt_num(to_micros(c.t)) +
                      ",\"name\":\"" + json_escape(c.name) +
                      "\",\"args\":{\"value\":" + fmt_num(c.value) + "}}";
      events.push_back({c.t, std::move(e)});
    }
  }

  std::stable_sort(events.begin(), events.end(),
                   [](const JsonEvent& a, const JsonEvent& b) { return a.ts < b.ts; });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n" << meta;
  for (std::size_t i = 0; i < events.size(); ++i) {
    os << events[i].body << (i + 1 < events.size() ? ",\n" : "\n");
  }
  if (events.empty() && !meta.empty()) {
    // meta ends with ",\n": close the array with a dummy metadata event so
    // the JSON stays valid without trailing-comma surgery.
    os << "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"empty\"}}\n";
  }
  if (meta.empty() && events.empty()) {
    // Empty trace: nothing between the brackets.
  }
  os << "]}\n";
}

bool export_chrome_file(const std::string& path,
                        const std::vector<TracerGroup>& groups) {
  std::ofstream f(path);
  if (!f) return false;
  export_chrome(f, groups);
  return static_cast<bool>(f);
}

namespace {

bool is_compute_class(Category c) {
  return c == Category::kCompute || c == Category::kMemory;
}

bool is_comm_class(Category c) {
  switch (c) {
    case Category::kPut:
    case Category::kGet:
    case Category::kNotify:
    case Category::kPcie:
    case Category::kFabric:
    case Category::kQueue:
    case Category::kDrain:
      return true;
    default:
      return false;
  }
}

// Total length of the union of [begin, end) intervals. Sorts in place.
double union_length(std::vector<std::pair<Time, Time>>& iv) {
  if (iv.empty()) return 0.0;
  std::sort(iv.begin(), iv.end());
  double total = 0.0;
  Time lo = iv.front().first, hi = iv.front().second;
  for (const auto& [b, e] : iv) {
    if (b > hi) {
      total += hi - lo;
      lo = b;
      hi = e;
    } else {
      hi = std::max(hi, e);
    }
  }
  total += hi - lo;
  return total;
}

// Length of the intersection of two interval unions (inputs must be the
// sorted, merged output ranges of union_length's sweep — we re-merge here
// for simplicity).
double intersection_length(std::vector<std::pair<Time, Time>> a,
                           std::vector<std::pair<Time, Time>> b) {
  auto merge = [](std::vector<std::pair<Time, Time>>& iv) {
    if (iv.empty()) return;
    std::sort(iv.begin(), iv.end());
    std::vector<std::pair<Time, Time>> out;
    out.push_back(iv.front());
    for (const auto& [bb, ee] : iv) {
      if (bb > out.back().second) {
        out.push_back({bb, ee});
      } else {
        out.back().second = std::max(out.back().second, ee);
      }
    }
    iv = std::move(out);
  };
  merge(a);
  merge(b);
  double total = 0.0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    const Time lo = std::max(a[i].first, b[j].first);
    const Time hi = std::min(a[i].second, b[j].second);
    if (hi > lo) total += hi - lo;
    if (a[i].second < b[j].second) {
      ++i;
    } else {
      ++j;
    }
  }
  return total;
}

}  // namespace

TraceSummary summarize(const Tracer& t) {
  TraceSummary s;
  const auto& spans = t.spans();
  s.num_spans = spans.size();
  if (spans.empty()) return s;

  std::set<std::pair<std::int32_t, std::int32_t>> lanes;
  std::map<std::int32_t, std::vector<std::pair<Time, Time>>> compute_iv, comm_iv;
  std::vector<double> waits;
  double rank_lane_time = 0.0;

  s.t0 = spans.front().begin;
  s.t1 = spans.front().end;
  for (const auto& sp : spans) {
    s.t0 = std::min(s.t0, sp.begin);
    s.t1 = std::max(s.t1, sp.end);
    lanes.insert({sp.device, sp.lane});
    const double d = sp.end - sp.begin;
    s.by_category[static_cast<int>(sp.category)] += d;
    if (is_compute_class(sp.category)) compute_iv[sp.device].push_back({sp.begin, sp.end});
    if (is_comm_class(sp.category)) comm_iv[sp.device].push_back({sp.begin, sp.end});
    if (sp.category == Category::kWait) {
      waits.push_back(to_micros(d));
      s.wait_total += d;
    }
    if (sp.lane < kFabricLane) rank_lane_time += d;  // rank + host-rank lanes
  }
  s.lanes = static_cast<int>(lanes.size());
  s.wall = s.t1 - s.t0;

  std::set<std::int32_t> devices;
  for (const auto& [d, iv] : compute_iv) devices.insert(d);
  for (const auto& [d, iv] : comm_iv) devices.insert(d);
  for (std::int32_t d : devices) {
    auto ci = compute_iv[d];
    auto mi = comm_iv[d];
    s.compute_time += union_length(ci);
    s.comm_time += union_length(mi);
    s.overlap_time += intersection_length(compute_iv[d], comm_iv[d]);
  }
  s.overlap_ratio = s.comm_time > 0.0 ? s.overlap_time / s.comm_time : 0.0;
  s.wait_fraction = rank_lane_time > 0.0 ? s.wait_total / rank_lane_time : 0.0;
  s.wait_us = Summary(std::move(waits));
  return s;
}

void write_summary(std::ostream& os, const Tracer& t, const std::string& label) {
  const TraceSummary s = summarize(t);
  char buf[256];

  os << "== trace summary" << (label.empty() ? "" : " (" + label + ")") << " ==\n";
  std::snprintf(buf, sizeof(buf), "spans: %zu on %d lanes, wall %.3f ms\n",
                s.num_spans, s.lanes, to_millis(s.wall));
  os << buf;
  if (s.num_spans == 0) return;

  os << "by category [ms]:";
  bool first = true;
  for (int c = 0; c < kNumCategories; ++c) {
    if (s.by_category[c] <= 0.0) continue;
    std::snprintf(buf, sizeof(buf), "%s %s %.3f", first ? "" : ",",
                  category_name(static_cast<Category>(c)),
                  to_millis(s.by_category[c]));
    os << buf;
    first = false;
  }
  os << "\n";

  std::snprintf(buf, sizeof(buf),
                "overlap: compute %.3f ms, comm %.3f ms, overlapped %.3f ms "
                "(%.1f%% of comm hidden)\n",
                to_millis(s.compute_time), to_millis(s.comm_time),
                to_millis(s.overlap_time), 100.0 * s.overlap_ratio);
  os << buf;

  if (!s.wait_us.empty()) {
    std::snprintf(buf, sizeof(buf),
                  "wait: total %.3f ms (%.1f%% of rank time), per-wait us "
                  "p50 %.1f p90 %.1f p99 %.1f max %.1f (n=%zu)\n",
                  to_millis(s.wait_total), 100.0 * s.wait_fraction,
                  s.wait_us.percentile(0.5), s.wait_us.percentile(0.9),
                  s.wait_us.percentile(0.99), s.wait_us.max(), s.wait_us.count());
    os << buf;
  }

  if (!t.metrics().empty()) {
    os << "counters:";
    first = true;
    for (const auto& [name, value] : t.metrics()) {
      std::snprintf(buf, sizeof(buf), "%s %s %.0f", first ? "" : ",",
                    name.c_str(), value);
      os << buf;
      first = false;
    }
    os << "\n";
  }
}

}  // namespace dcuda::sim
