#pragma once

// A FIFO link with latency and bandwidth: the store-and-forward pipe used
// for NIC directions and PCIe transfers.
//
// Timing model: the sender side serializes messages (one at a time at
// `bandwidth` bytes/s); a message of b bytes entering an idle link at t is
// delivered at t + b/bandwidth + latency. Busy links queue. Delivery order
// equals send order.

#include <functional>
#include <limits>
#include <utility>

#include "sim/mailbox.h"
#include "sim/simulation.h"

namespace dcuda::sim {

template <typename T>
class Channel {
 public:
  Channel(Simulation& sim, Dur latency, Rate bandwidth)
      : sim_(sim), latency_(latency), bandwidth_(bandwidth), rx_(sim) {}

  // Fire-and-forget send; the message appears in the receive mailbox after
  // serialization + latency. `rate_cap` optionally narrows the usable
  // bandwidth for this message (e.g. GPUDirect reads through PCIe).
  void send(T msg, double bytes,
            Rate rate_cap = std::numeric_limits<Rate>::infinity()) {
    const Rate r = std::min(bandwidth_, rate_cap);
    const Time start = std::max(sim_.now(), link_free_);
    const Time end = start + (r > 0 ? bytes / r : 0.0);
    link_free_ = end;
    bytes_sent_ += bytes;
    ++messages_sent_;
    // The event engine accepts move-only callables, so the message rides in
    // the delivery event itself (inline in the event slot when it fits).
    sim_.schedule(end + latency_ - sim_.now(),
                  [this, m = std::move(msg)]() mutable { rx_.push(std::move(m)); });
  }

  Mailbox<T>& rx() { return rx_; }

  // Time at which a message sent now would finish serializing (for
  // back-pressure-aware senders).
  Time busy_until() const { return link_free_; }

  Dur latency() const { return latency_; }
  Rate bandwidth() const { return bandwidth_; }
  double bytes_sent() const { return bytes_sent_; }
  std::uint64_t messages_sent() const { return messages_sent_; }

 private:
  Simulation& sim_;
  Dur latency_;
  Rate bandwidth_;
  Time link_free_ = 0.0;
  double bytes_sent_ = 0.0;
  std::uint64_t messages_sent_ = 0;
  Mailbox<T> rx_;
};

}  // namespace dcuda::sim
