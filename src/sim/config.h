#pragma once

// Machine model configuration, calibrated to the paper's testbed (CSCS
// Greina: Haswell nodes, one Tesla K80 GPU per node, x EDR InfiniBand,
// CUDA 7.0, CUDA-aware OpenMPI 1.10.0, gdrcopy). See DESIGN.md §4.

#include <cstdint>

#include "net/fault.h"
#include "net/topology.h"
#include "sim/units.h"

namespace dcuda::sim {

struct DeviceConfig {
  // One GK210 die of a K80 (the paper uses a single GPU per node).
  int num_sms = 13;
  int max_blocks_per_sm = 16;
  int max_threads_per_sm = 2048;
  int regs_per_sm = 65536;
  int max_regs_per_thread = 255;

  // fp64 throughput per SM. The paper's workloads are double precision.
  FlopRate sm_flops = gflops(45.0);
  // A single block (128 threads of 2048) cannot saturate an SM's pipelines;
  // roughly 4 resident blocks are needed for full issue rate.
  double blocks_to_saturate_sm = 4.0;

  // Aggregate device memory bandwidth and the per-block streaming cap.
  // A copy moves 2 bytes through the memory system per payload byte, so a
  // 2.1 GB/s cap yields the ~1.06 GB/s single-block put bandwidth of Fig. 6.
  Rate mem_bandwidth = gbs(210.0);
  Rate per_block_mem_bandwidth = gbs(2.1);

  // Kernel launch overhead paid by the host per launch (fork-join model).
  Dur launch_overhead = micros(6.0);
  // Additional per-block scheduling cost when a block starts executing.
  Dur block_dispatch_overhead = micros(0.2);
};

struct PcieConfig {
  // Gen3 x16-ish effective numbers.
  Rate bandwidth = gbs(12.0);
  // Latency of a mapped-memory transaction (gdrcopy-style small write).
  Dur txn_latency = micros(1.0);
  // Issue cost on the initiating processor for a posted write.
  Dur post_cost = micros(0.15);
  // DMA engine setup latency (why mapped writes win for queue entries).
  Dur dma_startup = micros(7.0);
  // GPUDirect peer reads through PCIe run well below link rate on Kepler.
  Rate gpudirect_bandwidth = gbs(3.2);
};

struct NetConfig {
  // Effective per-direction NIC bandwidth and wire latency (x EDR IB as
  // measured by the paper: ~6 GB/s, contributing to the 9.2 us put latency).
  Rate bandwidth = gbs(6.0);
  Dur latency = micros(1.4);
  // Software overhead per message on send and on receive (verbs + MPI).
  Dur sw_overhead = micros(0.45);
  // Interconnect topology and NIC rail layout (net/topology.h,
  // docs/TOPOLOGY.md). The default — flat topology, one rail — keeps the
  // fabric on its historical per-pair-pipe code path, byte-identical to the
  // pre-topology event schedule. A fat-tree or torus expands every pair
  // into per-hop traversals over shared links; rails > 1 stripes messages
  // across independent injection lanes with receive-side resequencing.
  net::TopoConfig topo;
};

struct MpiConfig {
  // Messages up to this size go eagerly (single transfer, copied at target);
  // larger ones use rendezvous (RTS/CTS).
  std::size_t eager_limit = 8 * 1024;
  // CUDA-aware OpenMPI stages device messages larger than this through host
  // memory for better bandwidth (paper §IV-C, stencil discussion: 20 kB).
  std::size_t device_staging_threshold = 20 * 1024;
  // Pipeline chunk for host-staged device transfers.
  std::size_t staging_chunk = 256 * 1024;
  // Host-side processing cost per MPI call (isend/irecv/test).
  Dur call_overhead = micros(0.25);
};

// Which processor runs the notified-access runtime (docs/BACKENDS.md).
enum class RuntimeBackend : std::int32_t {
  // Paper-faithful (§III): a host event handler drains the device→host
  // command queues, drives all MPI activity, and loops notifications
  // through host memory. The reference backend — all golden traces and
  // calibration numbers assume it.
  kHostLoop = 0,
  // Hardware-supported outlook (§III-D, ROADMAP item 3): commands ring a
  // device→NIC doorbell (pcie::PcieLink::doorbell), the NIC processes them
  // without the host worker's round-robin wakeup, and notifications land on
  // a device-resident notification board (gpu::DeviceBoard) via direct
  // NIC→device posted writes. Same wire protocol, fabric channels, and
  // go-back-N/FIFO guarantees as kHostLoop.
  kDeviceInitiated = 1,
};

struct RuntimeConfig {
  // Host event-handler cost to dispatch one queue item / command.
  Dur dispatch_cost = micros(0.15);
  // Discovery latency of a command in a rank's queue: the single host
  // worker polls many rank queues round-robin, so an enqueued command sits
  // a while before the block manager sees it. (MPI messages are found
  // promptly — the progress loop spins on them.)
  Dur host_wakeup_latency = micros(2.2);
  // Device-side cost to assemble and issue one command (meta tuple build).
  Dur device_issue_cost = micros(0.55);
  // Device-side notification matching: fixed cost per matching round plus a
  // per-scanned-entry cost (the paper's 8-thread matcher is compute-heavy;
  // §IV-B explains the imperfect overlap for compute-bound workloads by it).
  Dur match_round_cost = micros(0.8);
  Dur match_entry_cost = micros(0.06);
  // Queue geometry (entries per circular buffer).
  int command_queue_entries = 16;
  int notification_queue_entries = 64;
  int ack_queue_entries = 16;
  int logging_queue_entries = 64;
  // Poll interval of the device library while waiting for notifications
  // (amortized cost of re-reading the queue head).
  Dur notify_poll_cost = micros(0.1);
  // RuntimeBackend::kDeviceInitiated only: NIC command-processor cost per
  // doorbell'd command / received meta. Replaces dispatch_cost, and the
  // round-robin host_wakeup_latency disappears entirely — doorbells are
  // interrupt-driven, not discovered by a polling sweep.
  Dur nic_dispatch_cost = micros(0.05);
  // When true (paper's design, §III-A) notifications of device-local puts
  // are looped through the host; when false they are delivered directly on
  // the device (ablation_local_notify).
  bool local_notifications_via_host = true;
  // When true, the notification matcher's compute cost is charged to the
  // rank's SM (paper behaviour); false idealizes a free matcher
  // (ablation_matching).
  bool charge_matching_cost = true;
};

// Small-message fast path of the notified-access pipeline (docs/PERF.md,
// "Communication protocol"). Disabled by default: the paper-faithful
// two-message (meta + payload) path is the reference and all golden traces
// assume it. When enabled, remote notified puts up to `eager_threshold`
// bytes carry their payload inline in a single runtime-level fabric packet
// and same-target-node puts are coalesced into one packet whose
// notifications commit in one batched queue write.
struct RmaConfig {
  // Puts of at most this many bytes take the eager fast path; 0 disables
  // the fast path entirely (every put uses the meta + payload pipeline).
  std::size_t eager_threshold = 0;
  // Maximum time an eager put may sit in a partially filled batch before
  // the aggregator flushes it to the wire.
  Dur aggregation_window = micros(2.0);
  // Flush when a batch reaches this many puts ...
  int max_batch = 8;
  // ... or this much aggregate payload.
  std::size_t max_batch_bytes = 16 * 1024;

  bool eager_enabled() const { return eager_threshold > 0; }
};

// Host processor model, used by host ranks (§V extension): ranks that run
// on the host CPU but communicate through the same notified remote memory
// access machinery as device ranks.
struct HostConfig {
  FlopRate flops = gflops(50.0);
  Rate mem_bandwidth = gbs(60.0);
  // One rank (thread) cannot saturate the socket alone.
  double threads_to_saturate = 4.0;
};

struct MachineConfig {
  int num_nodes = 1;
  DeviceConfig device;
  HostConfig host;
  PcieConfig pcie;
  NetConfig net;
  MpiConfig mpi;
  RuntimeConfig runtime;
  RmaConfig rma;
  // Runtime backend selection (docs/BACKENDS.md). The default host-loop
  // backend keeps the event schedule byte-identical to the historical
  // reference; kDeviceInitiated reroutes command dispatch and notification
  // delivery through the NIC/device paths above.
  RuntimeBackend backend = RuntimeBackend::kHostLoop;

  bool device_initiated() const {
    return backend == RuntimeBackend::kDeviceInitiated;
  }
  // Parallel event engine (docs/PERF.md, "Parallel engine"). The simulation
  // always keeps one logical shard per node; these knobs only choose how
  // shards are grouped onto executors and how many worker threads run them,
  // so every setting produces byte-identical results. `shards` is the
  // executor-group count (0 = one group per node shard); `threads` is
  // the worker-thread count (1 = serial execution, the default).
  int shards = 0;
  int threads = 1;
  // Lossy-fabric fault injection (net/fault.h): all probabilities zero by
  // default, which keeps the fabric on its historical perfectly-reliable
  // code path (wire format and event schedule byte-identical). Any nonzero
  // probability arms the NIC-level go-back-N recovery protocol; decisions
  // draw from the kFault perturbation stream, so faulty runs need a
  // Perturbation (Cluster installs one automatically, seeded by
  // perturb_seed — 0 is a valid fault seed).
  net::FaultConfig fault;
  // Schedule perturbation (docs/TESTING.md): 0 runs the canonical
  // deterministic schedule; any other value seeds a sim::Perturbation that
  // explores an alternative — still fully reproducible — event interleaving.
  // perturb_classes selects the decision classes (sim/perturb.h bit mask);
  // the default enables all of them.
  std::uint64_t perturb_seed = 0;
  std::uint32_t perturb_classes = 0xffffffffu;
};

inline const char* backend_name(RuntimeBackend b) {
  return b == RuntimeBackend::kDeviceInitiated ? "device_initiated"
                                               : "host_loop";
}

inline MachineConfig machine_config(int num_nodes) {
  MachineConfig m;
  m.num_nodes = num_nodes;
  return m;
}

}  // namespace dcuda::sim
