#pragma once

// Time and data-rate units for the discrete-event simulator.
//
// Simulated time is a double in seconds. Double precision gives ~0.1 ns
// resolution over hour-long simulations, far below the microsecond-scale
// latencies modeled here. Event ordering ties are broken by a monotonic
// sequence number, so floating-point equality never affects determinism.

namespace dcuda::sim {

using Time = double;  // absolute simulated time [s]
using Dur = double;   // duration [s]

inline constexpr Dur kSecond = 1.0;
inline constexpr Dur kMilli = 1e-3;
inline constexpr Dur kMicro = 1e-6;
inline constexpr Dur kNano = 1e-9;

constexpr Dur seconds(double v) { return v; }
constexpr Dur millis(double v) { return v * kMilli; }
constexpr Dur micros(double v) { return v * kMicro; }
constexpr Dur nanos(double v) { return v * kNano; }

constexpr double to_millis(Dur d) { return d / kMilli; }
constexpr double to_micros(Dur d) { return d / kMicro; }
constexpr double to_nanos(Dur d) { return d / kNano; }

// Data rates are bytes per second.
using Rate = double;

inline constexpr Rate kKBs = 1e3;
inline constexpr Rate kMBs = 1e6;
inline constexpr Rate kGBs = 1e9;

constexpr Rate gbs(double v) { return v * kGBs; }
constexpr Rate mbs(double v) { return v * kMBs; }

// Compute rates are floating-point operations per second.
using FlopRate = double;
inline constexpr FlopRate kGFs = 1e9;
constexpr FlopRate gflops(double v) { return v * kGFs; }

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;

}  // namespace dcuda::sim
