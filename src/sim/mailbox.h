#pragma once

// Unbounded typed message queue between simulated processes.

#include <deque>
#include <optional>
#include <utility>

#include "sim/proc.h"
#include "sim/trigger.h"

namespace dcuda::sim {

template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Simulation& sim) : trig_(sim) {}

  void push(T msg) {
    items_.push_back(std::move(msg));
    trig_.notify_all();
  }

  std::optional<T> try_pop() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    return v;
  }

  Proc<T> pop() {
    while (items_.empty()) co_await trig_.wait();
    T v = std::move(items_.front());
    items_.pop_front();
    co_return v;
  }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  Trigger& trigger() { return trig_; }

 private:
  std::deque<T> items_;
  Trigger trig_;
};

}  // namespace dcuda::sim
