#pragma once

// Shared resources with simulated service times.
//
// SharedResource models processor sharing with a per-job rate cap: n active
// jobs each receive min(per_job_cap, capacity / n) units of service per
// second. This is the timing model for both SM compute throughput (resident
// blocks share issue bandwidth) and device memory bandwidth (a single block
// cannot saturate the memory interface — the per-job cap — while many blocks
// together are limited by aggregate bandwidth).
//
// FifoResource is a counting semaphore with FIFO handoff, used for
// serialized links (PCIe directions, NIC send queues).

#include <coroutine>
#include <limits>
#include <map>
#include <vector>

#include "sim/simulation.h"

namespace dcuda::sim {

class SharedResource {
 public:
  SharedResource(Simulation& sim, double capacity,
                 double per_job_cap = std::numeric_limits<double>::infinity());

  // Awaitable: completes once `work` units of service were delivered.
  // Zero/negative work completes after a zero-delay event (never inline).
  auto use(double work) {
    struct Awaiter {
      SharedResource* res;
      double work;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { res->add_job(work, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, work};
  }

  std::size_t active_jobs() const { return jobs_.size(); }
  double capacity() const { return capacity_; }
  double per_job_cap() const { return per_job_cap_; }

  // Total service delivered so far (for utilization accounting in benches).
  double work_done() const;
  // Integral of busy time (at least one job active).
  double busy_time() const;

 private:
  void add_job(double work, std::coroutine_handle<> h);
  void advance();      // accrue virtual service up to now
  void reschedule();   // (re)arm the next completion event
  void on_complete();  // completion event fired
  double rate_per_job() const;

  Simulation& sim_;
  double capacity_;
  double per_job_cap_;

  // Virtual service progress: every active job accrues service at the same
  // rate, so a job admitted at virtual time v with work w completes when the
  // virtual clock reaches v + w. multimap keeps completions ordered.
  double vclock_ = 0.0;
  Time last_update_ = 0.0;
  std::multimap<double, std::coroutine_handle<>> jobs_;
  EventToken completion_;

  double work_done_ = 0.0;
  double busy_time_ = 0.0;
};

class FifoResource {
 public:
  explicit FifoResource(Simulation& sim, int capacity = 1)
      : sim_(sim), free_(capacity) {}

  auto acquire() {
    struct Awaiter {
      FifoResource* res;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        if (res->free_ > 0) {
          --res->free_;
          res->sim_.schedule_resume(h);  // keep resume order deterministic
          return true;
        }
        res->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.erase(waiters_.begin());
      sim_.schedule_resume(h);  // slot handed over directly
    } else {
      ++free_;
    }
  }

  int available() const { return free_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  Simulation& sim_;
  int free_;
  std::vector<std::coroutine_handle<>> waiters_;
};

}  // namespace dcuda::sim
