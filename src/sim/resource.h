#pragma once

// Shared resources with simulated service times.
//
// SharedResource models processor sharing with a per-job rate cap: n active
// jobs each receive min(per_job_cap, capacity / n) units of service per
// second. This is the timing model for both SM compute throughput (resident
// blocks share issue bandwidth) and device memory bandwidth (a single block
// cannot saturate the memory interface — the per-job cap — while many blocks
// together are limited by aggregate bandwidth).
//
// FifoResource is a counting semaphore with FIFO handoff, used for
// serialized links (PCIe directions, NIC send queues).
//
// Perturbation contract (sim/perturb.h, docs/TESTING.md): a schedule
// perturbation may shuffle the firing order of *same-timestamp* events, so
// neither class may encode an ordering guarantee in event insertion order
// alone. SharedResource keys equal completion times on the admission
// sequence inside its own heap, and FifoResource grants slots from an
// explicit waiter deque — both orders therefore survive tie-break
// shuffling, which the perturbed property sweeps assert.

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <deque>
#include <limits>
#include <vector>

#include "sim/simulation.h"

namespace dcuda::sim {

class SharedResource {
 public:
  SharedResource(Simulation& sim, double capacity,
                 double per_job_cap = std::numeric_limits<double>::infinity());

  // Awaitable: completes once `work` units of service were delivered.
  // Zero/negative work completes after a zero-delay event (never inline).
  auto use(double work) {
    struct Awaiter {
      SharedResource* res;
      double work;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { res->add_job(work, h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{this, work};
  }

  std::size_t active_jobs() const { return job_count_; }
  double capacity() const { return capacity_; }
  double per_job_cap() const { return per_job_cap_; }

  // Total service delivered so far (for utilization accounting in benches).
  double work_done() const;
  // Integral of busy time (at least one job active).
  double busy_time() const;

 private:
  void add_job(double work, std::coroutine_handle<> h);
  void advance();      // accrue virtual service up to now
  void reschedule();   // (re)arm the next completion event
  void on_complete();  // completion event fired
  double rate_per_job() const;

  // Shard affinity (docs/PERF.md, "Parallel engine"): resources are
  // node-local hardware (SM throughput, memory bandwidth, PCIe lanes), so
  // every use must come from the owning shard while a multi-threaded
  // window executes; serial runs are unrestricted.
  void assert_affinity() const {
    assert(!sim_.parallel_execution() || sim_.current_shard() == owner_shard_);
  }

  Simulation& sim_;
  int owner_shard_;
  double capacity_;
  double per_job_cap_;

  // Virtual service progress: every active job accrues service at the same
  // rate, so a job admitted at virtual time v with work w completes when the
  // virtual clock reaches v + w.
  //
  // Active jobs live in a flat 4-ary min-heap keyed on (end, admission
  // sequence) — the sequence tie-break reproduces the old std::multimap's
  // FIFO order among equal completion times, and the backing vector is
  // reused, so admission and completion are O(log n) with no per-job
  // allocation once the vector is warm.
  struct Job {
    double end;         // completion virtual time
    std::uint64_t seq;  // admission order, breaks ties deterministically
    std::coroutine_handle<> h;
  };
  static bool job_less(const Job& a, const Job& b) {
    if (a.end != b.end) return a.end < b.end;
    return a.seq < b.seq;
  }
  void insert_job(double end, std::coroutine_handle<> h);
  Job pop_min_job();

  double vclock_ = 0.0;
  Time last_update_ = 0.0;
  std::vector<Job> jobs_;  // 4-ary min-heap
  std::uint64_t next_job_seq_ = 0;
  std::size_t job_count_ = 0;
  EventToken completion_;

  double work_done_ = 0.0;
  double busy_time_ = 0.0;
};

class FifoResource {
 public:
  explicit FifoResource(Simulation& sim, int capacity = 1)
      : sim_(sim), owner_shard_(sim.current_shard()), free_(capacity) {}

  auto acquire() {
    struct Awaiter {
      FifoResource* res;
      bool await_ready() const noexcept { return false; }
      bool await_suspend(std::coroutine_handle<> h) {
        res->assert_affinity();
        if (res->free_ > 0) {
          --res->free_;
          // Resume through the engine (never inline) so acquisition stays
          // deterministic; the grant itself was decided here, so tie-break
          // perturbation can only shuffle wake-up interleaving, not who
          // holds the slot.
          res->sim_.schedule_resume(h);
          return true;
        }
        res->waiters_.push_back(h);
        return true;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  void release() {
    assert_affinity();
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      sim_.schedule_resume(h);  // slot handed over directly
    } else {
      ++free_;
    }
  }

  int available() const { return free_; }
  std::size_t queue_length() const { return waiters_.size(); }

 private:
  // Same shard-affinity contract as SharedResource: FIFO links are
  // node-local, so parallel windows may only touch them from their shard.
  void assert_affinity() const {
    assert(!sim_.parallel_execution() || sim_.current_shard() == owner_shard_);
  }

  Simulation& sim_;
  int owner_shard_;
  int free_;
  std::deque<std::coroutine_handle<>> waiters_;
};

}  // namespace dcuda::sim
