#pragma once

// Discrete-event simulation core.
//
// The simulator is single-threaded and deterministic: events fire in
// (time, insertion-sequence) order. Processes are C++20 coroutines (Proc<T>)
// driven from the event queue. Simulated entities (resources, channels,
// queues) schedule events to resume suspended processes.
//
// Engine layout (docs/PERF.md): event payloads live in 64-byte slots —
// exactly one cache line each — allocated in fixed-size chunks and recycled
// through an intrusive free list. A slot holds either a coroutine handle
// resumed directly (the hot path, marked by a null invoke pointer) or a
// small callback constructed in place in the slot's inline buffer; larger
// callbacks fall back to one heap allocation whose pointer lives in the
// buffer instead. The pending set is a 4-ary min-heap of 16-byte
// (time, seq|slot) keys stored so that each 4-child group spans exactly one
// cache line — sift operations move keys, never payloads. Cancellation is a
// (slot, generation) comparison: the generation advances on every release,
// which invalidates every outstanding EventToken for the slot, and its two
// low bits double as the cancelled/heap-payload flags. In steady state
// (chunks warm, callbacks within the inline buffer) scheduling and
// dispatching allocate nothing.

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/perturb.h"
#include "sim/proc.h"
#include "sim/units.h"

namespace dcuda::sim {

class Simulation;
class InvariantObserver;

namespace detail {
// Liveness anchor shared by a Simulation and its EventTokens. The engine
// holds one reference for its whole lifetime and nulls `sim` on
// destruction, so a token can always tell a dead engine from a live one.
// Plain (non-atomic) counts: the simulator is single-threaded by contract.
struct TokenBlock {
  Simulation* sim;
  std::uint64_t refs;
};
}  // namespace detail

// Thrown by Simulation::run when non-daemon processes remain but no events
// are pending: every remaining process waits on a condition nobody can
// signal. Mirrors the deadlock hazard of §II-B (blocks beyond the number in
// flight can never be synchronized).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

// Cancellation token for a scheduled event (used for timeouts and for
// rescheduling completion events in shared resources). Holds a (slot,
// generation) pair into the engine's event pool plus a shared liveness
// anchor, so a token may safely outlive both its event (the slot's
// generation has moved on) and the whole Simulation (the anchor's engine
// pointer is nulled).
class EventToken {
 public:
  EventToken() = default;
  EventToken(const EventToken& o) : blk_(o.blk_), slot_(o.slot_), gen_(o.gen_) {
    if (blk_ != nullptr) ++blk_->refs;
  }
  EventToken(EventToken&& o) noexcept
      : blk_(o.blk_), slot_(o.slot_), gen_(o.gen_) {
    o.blk_ = nullptr;
  }
  EventToken& operator=(EventToken o) noexcept {
    std::swap(blk_, o.blk_);
    std::swap(slot_, o.slot_);
    std::swap(gen_, o.gen_);
    return *this;
  }
  ~EventToken() { drop(); }

  void cancel();
  bool pending() const;

 private:
  friend class Simulation;
  EventToken(detail::TokenBlock* blk, std::uint32_t slot, std::uint32_t gen)
      : blk_(blk), slot_(slot), gen_(gen) {
    ++blk_->refs;
  }

  void drop() {
    // The engine keeps its own reference while alive, so refs only reaches
    // zero once the Simulation is gone and the last token lets go.
    if (blk_ != nullptr && --blk_->refs == 0) delete blk_;
    blk_ = nullptr;
  }

  detail::TokenBlock* blk_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// Handle to a spawned root process; join() suspends until it completes and
// rethrows any exception that escaped the process.
class JoinHandle {
 public:
  JoinHandle() = default;
  bool valid() const { return static_cast<bool>(st_); }
  bool done() const;
  const std::string& name() const;
  Proc<void> join();

  struct State;  // public: Simulation and the root runner manipulate it

 private:
  friend class Simulation;
  explicit JoinHandle(std::shared_ptr<State> st) : st_(std::move(st)) {}
  std::shared_ptr<State> st_;
};

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  // -- Event scheduling ------------------------------------------------

  // Schedules `fn` to run after `delay`. The callable is moved into the
  // event slot's inline buffer when it fits (kInlineBytes); larger callables
  // fall back to one heap allocation, counted in pool_stats().
  template <typename F>
  void schedule(Dur delay, F&& fn) {
    emplace_event(now_ + delay, std::forward<F>(fn));
  }

  template <typename F>
  EventToken schedule_cancellable(Dur delay, F&& fn) {
    const std::uint32_t si = emplace_event(now_ + delay, std::forward<F>(fn));
    return EventToken(blk_, si, slot(si).gen);
  }

  // Direct coroutine resumption: no callable at all, just the handle.
  // Zero-delay resumes — the dominant event in trigger notifies, FIFO
  // handoffs, and spawns — bypass the heap through a FIFO ring: they all
  // carry the current time, so their (time, seq) keys arrive pre-sorted.
  void schedule_resume(std::coroutine_handle<> h, Dur delay = 0.0) {
    const std::uint32_t si = acquire_slot();
    EventSlot& s = slot(si);
    s.invoke = nullptr;  // marks the slot as a direct resume
    void* addr = h.address();
    std::memcpy(s.buf, &addr, sizeof(addr));
    if (delay == 0.0 && !tiebreak_active()) {
      ring_.push_back(HeapEntry{now_, make_key(si)});
    } else {
      // Under tie-break perturbation the ring's precondition (keys arrive
      // pre-sorted) no longer holds, so zero-delay resumes take the heap.
      heap_push(HeapEntry{now_ + delay, make_key(si)});
    }
  }

  // -- Processes -------------------------------------------------------

  // Starts a root process at the current time. Daemon processes are allowed
  // to outlive the simulation (they are excluded from deadlock detection and
  // their frames are reclaimed by ~Simulation).
  JoinHandle spawn(Proc<void> p, std::string name = "proc", bool daemon = false);

  // Awaitable: suspend the calling process for `delay` simulated time.
  auto delay(Dur d) {
    struct Awaiter {
      Simulation& sim;
      Dur d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_resume(h, d); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // -- Running ---------------------------------------------------------

  // Runs until the event queue drains. Throws DeadlockError if non-daemon
  // processes remain unfinished, and rethrows the first exception that
  // escaped an unjoined root process.
  void run();

  // Runs until simulated time `t` (events at exactly t are processed).
  // Remaining processes are not treated as deadlocked.
  void run_until(Time t);

  std::size_t events_processed() const { return events_processed_; }
  std::size_t live_processes() const { return live_.size(); }

  // -- Schedule perturbation (docs/TESTING.md) -------------------------

  // Installs a seeded perturbation policy. Must be called before the first
  // event is scheduled (the fuzz harness installs it right after
  // construction); the run remains fully deterministic — a function of
  // (workload, seed, classes) only.
  void set_perturbation(std::uint64_t seed,
                        std::uint32_t classes = Perturbation::kAllClasses) {
    perturb_ = std::make_unique<Perturbation>(seed, classes);
  }
  Perturbation* perturbation() { return perturb_.get(); }
  const Perturbation* perturbation() const { return perturb_.get(); }

  // Invariant-oracle hook sink (src/sim/invariants.h). Null in normal runs;
  // components report protocol transitions through it when set. Not owned.
  void set_invariant_observer(InvariantObserver* obs) { observer_ = obs; }
  InvariantObserver* invariant_observer() const { return observer_; }

  // -- Engine introspection (docs/PERF.md) -----------------------------

  // Allocation accounting for the steady-state zero-allocation guarantee:
  // once the pool and heap are warm, `pool_growths` and `heap_fallbacks`
  // stop increasing — every schedule/dispatch reuses pooled storage.
  struct PoolStats {
    std::size_t pool_slots = 0;        // slots ever created
    std::size_t free_slots = 0;        // currently on the free list
    std::size_t pending_events = 0;    // keys in the heap
    std::uint64_t pool_growths = 0;    // pool chunk allocations
    std::uint64_t heap_fallbacks = 0;  // callables too big for inline buffer
  };
  PoolStats pool_stats() const {
    return PoolStats{pool_size_, free_count_,
                     heap_size_ + (ring_.size() - ring_head_), pool_growths_,
                     heap_fallbacks_};
  }

 private:
  friend class EventToken;

  // Payload slot: exactly one cache line. The two generation flag bits
  // (kGenCancelled, kGenHeap) travel with the generation value, so a token
  // comparing its remembered generation simultaneously checks liveness and
  // cancellation. Releasing a slot rounds the generation up to the next
  // multiple of kGenStep, invalidating every outstanding token for it.
  // The generation is 32-bit (30 usable bits); a stale token would be
  // revived only if it survived exactly 2^30 reuses of its slot.
  struct EventSlot {
    static constexpr std::size_t kInlineBytes = 40;

    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    void (*invoke)(void*) = nullptr;   // null: buf holds a coroutine address
    void (*destroy)(void*) = nullptr;  // non-null: payload needs teardown
    std::uint32_t gen = kGenStep;
    std::uint32_t next_free = kNilSlot;
  };
  static_assert(sizeof(EventSlot) == 64, "EventSlot must be one cache line");

  static constexpr std::uint32_t kGenCancelled = 1u;
  static constexpr std::uint32_t kGenHeap = 2u;
  static constexpr std::uint32_t kGenStep = 4u;

  // Heap key: 16 bytes. `key` packs (seq << kSlotBits) | slot — seq is
  // strictly increasing, so comparing packed keys compares sequence numbers
  // and the slot index rides along for free.
  struct HeapEntry {
    Time t;
    std::uint64_t key;
  };
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1u;

  // Slots live in fixed 64 KiB chunks: addresses are stable (callbacks may
  // schedule, growing the pool, while the engine still points at their
  // slot), indexing is shift+mask, and growth never copies.
  static constexpr unsigned kChunkBits = 10;
  static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkBits;

  static bool key_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;  // earlier sequence first
  }

  EventSlot& slot(std::uint32_t i) {
    return chunks_[i >> kChunkBits][i & (kChunkSlots - 1)];
  }
  const EventSlot& slot(std::uint32_t i) const {
    return chunks_[i >> kChunkBits][i & (kChunkSlots - 1)];
  }

  std::uint32_t acquire_slot() {
    if (free_head_ != kNilSlot) {
      const std::uint32_t s = free_head_;
      free_head_ = slot(s).next_free;
      --free_count_;
      return s;
    }
    assert(pool_size_ < kSlotMask && "event pool exhausted (2^24 pending)");
    if (pool_size_ == chunks_.size() * kChunkSlots) {
      chunks_.emplace_back(new EventSlot[kChunkSlots]);
      ++pool_growths_;
    }
    return static_cast<std::uint32_t>(pool_size_++);
  }

  void release_slot(std::uint32_t si) {
    EventSlot& s = slot(si);
    s.gen = (s.gen | (kGenStep - 1u)) + 1u;  // next generation, flags cleared
    s.next_free = free_head_;
    free_head_ = si;
    ++free_count_;
  }

  void destroy_payload(EventSlot& s) {
    if (s.invoke != nullptr && s.destroy != nullptr) s.destroy(s.buf);
  }

  template <typename F>
  std::uint32_t emplace_event(Time t, F&& fn) {
    using D = std::decay_t<F>;
    const std::uint32_t si = acquire_slot();
    EventSlot& s = slot(si);
    if constexpr (sizeof(D) <= EventSlot::kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.buf)) D(std::forward<F>(fn));
      s.invoke = [](void* p) { (*static_cast<D*>(p))(); };
      s.destroy = std::is_trivially_destructible_v<D>
                      ? nullptr
                      : +[](void* p) { static_cast<D*>(p)->~D(); };
    } else {
      // Too big for the slot: one heap allocation, its pointer parked in
      // the inline buffer so dispatch stays uniform.
      ::new (static_cast<void*>(s.buf)) D*(new D(std::forward<F>(fn)));
      s.gen |= kGenHeap;
      s.invoke = [](void* p) { (**static_cast<D**>(p))(); };
      s.destroy = [](void* p) { delete *static_cast<D**>(p); };
      ++heap_fallbacks_;
    }
    push_key(t, si);
    return si;
  }

  bool tiebreak_active() const {
    return perturb_ != nullptr && perturb_->has(Perturbation::kTieBreak);
  }

  // Key for a newly scheduled event. Default: strictly increasing insertion
  // sequence in the high bits (FIFO among same-time events). Under tie-break
  // perturbation: seeded random priority bits instead, so same-time events
  // fire in a seed-determined shuffle; the slot index in the low bits keeps
  // the comparison total, so replays of a seed are exact. Events at distinct
  // times are unaffected either way.
  std::uint64_t make_key(std::uint32_t si) {
    if (tiebreak_active()) {
      constexpr std::uint64_t kPrioMask =
          (std::uint64_t{1} << (64 - kSlotBits)) - 1u;
      return ((perturb_->tiebreak_bits() & kPrioMask) << kSlotBits) | si;
    }
    assert(next_seq_ < (std::uint64_t{1} << (64 - kSlotBits)) &&
           "event sequence numbers exhausted");
    return (next_seq_++ << kSlotBits) | si;
  }

  void push_key(Time t, std::uint32_t si) { heap_push(HeapEntry{t, make_key(si)}); }

  void heap_push(HeapEntry e);
  HeapEntry heap_pop();
  void heap_grow();
  void heap_dealloc();

  void cancel_event(std::uint32_t si, std::uint32_t gen) {
    EventSlot& s = slot(si);
    if (s.gen == gen) s.gen = gen | kGenCancelled;
  }
  bool event_pending(std::uint32_t si, std::uint32_t gen) const {
    return slot(si).gen == gen;
  }

  bool step();  // processes one event; false if queue empty
  void check_deadlock() const;
  void rethrow_pending();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_processed_ = 0;

  // 4-ary min-heap of keys. The element array starts 48 bytes into a
  // 64-byte-aligned allocation, so each child group {4i+1 .. 4i+4} occupies
  // exactly one cache line.
  HeapEntry* heap_data_ = nullptr;
  std::size_t heap_size_ = 0;
  std::size_t heap_cap_ = 0;

  // FIFO ring of zero-delay resumes. Every entry's time equals now_ — no
  // event can fire in between without violating (time, seq) order — and the
  // backing vector is reused once drained, so pushes are allocation-free in
  // steady state.
  std::vector<HeapEntry> ring_;
  std::size_t ring_head_ = 0;

  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  std::size_t pool_size_ = 0;
  std::uint32_t free_head_ = kNilSlot;
  std::size_t free_count_ = 0;
  std::uint64_t pool_growths_ = 0;
  std::uint64_t heap_fallbacks_ = 0;

  // Liveness anchor for EventTokens (one allocation per Simulation).
  detail::TokenBlock* blk_ = new detail::TokenBlock{this, 1};

  std::unique_ptr<Perturbation> perturb_;   // null: canonical schedule
  InvariantObserver* observer_ = nullptr;   // null: no oracle checking

  std::vector<std::shared_ptr<JoinHandle::State>> live_;  // non-daemon roots
  std::vector<std::shared_ptr<JoinHandle::State>> daemons_;
  std::size_t done_live_ = 0;     // completed-but-uncompacted, per registry
  std::size_t done_daemons_ = 0;
  std::vector<std::exception_ptr> escaped_;  // from unjoined roots
};

inline void EventToken::cancel() {
  if (blk_ != nullptr && blk_->sim != nullptr) {
    blk_->sim->cancel_event(slot_, gen_);
  }
  drop();
}

inline bool EventToken::pending() const {
  return blk_ != nullptr && blk_->sim != nullptr &&
         blk_->sim->event_pending(slot_, gen_);
}

struct JoinHandle::State {
  std::string name;
  bool done = false;
  bool daemon = false;
  bool exception_consumed = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> joiners;
  Simulation* sim = nullptr;
  std::coroutine_handle<> frame;  // for cleanup if never completed
};

inline bool JoinHandle::done() const { return st_ && st_->done; }

inline const std::string& JoinHandle::name() const {
  static const std::string kInvalid;
  return st_ ? st_->name : kInvalid;
}

}  // namespace dcuda::sim
