#pragma once

// Discrete-event simulation core.
//
// The engine is sharded (docs/PERF.md, "Parallel engine"). Every shard owns
// a complete event engine — payload slot pool, 4-ary key min-heap,
// zero-delay resume ring, insertion sequence, perturbation streams — and
// fires its events in (time, insertion-sequence) order. The default
// single-shard simulation is the classic sequential engine, byte-identical
// to the historical one. configure_shards(n) splits the simulation into n
// shards (Cluster maps one node per shard) that advance under a
// conservative time-window protocol: each window executes every event with
// t < min(next-event time over all shards) + lookahead, where the lookahead
// is the smallest cross-shard link latency registered by the fabric
// (Fabric registers NetConfig::latency). No cross-shard event can land
// inside the window it was sent from — the wire latency guarantees its
// arrival time is at or past the horizon — so shards never observe an
// arrival out of order. Cross-shard events (schedule_on) are staged into
// per-(src, dst) outbound lists and merged at window open in (time,
// src shard, src sequence) order, then keyed with the destination's own
// insertion sequence.
//
// Determinism is executor-independent by construction: the window
// boundaries, the merge order, and each shard's event order are functions
// of the logical schedule alone — never of the executor-group count or the
// worker-thread count (set_executor). A seeded run replays byte-identically
// with 1 thread or N; check_determinism.sh and tests/engine_parallel_test
// enforce this.
//
// Engine layout (docs/PERF.md): event payloads live in 64-byte slots —
// exactly one cache line each — allocated in fixed-size chunks and recycled
// through an intrusive free list. A slot holds either a coroutine handle
// resumed directly (the hot path, marked by a null invoke pointer) or a
// small callback constructed in place in the slot's inline buffer; larger
// callbacks fall back to one heap allocation whose pointer lives in the
// buffer instead. The pending set is a 4-ary min-heap of 16-byte
// (time, seq|slot) keys stored so that each 4-child group spans exactly one
// cache line — sift operations move keys, never payloads. Cancellation is a
// (slot, generation) comparison: the generation advances on every release,
// which invalidates every outstanding EventToken for the slot, and its two
// low bits double as the cancelled/heap-payload flags. In steady state
// (chunks warm, callbacks within the inline buffer) scheduling and
// dispatching allocate nothing.

#include <atomic>
#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/perturb.h"
#include "sim/proc.h"
#include "sim/shard_context.h"
#include "sim/units.h"

namespace dcuda::sim {

class Simulation;
class InvariantObserver;

namespace detail {
// Liveness anchor shared by a Simulation and its EventTokens. The engine
// holds one reference for its whole lifetime and nulls `sim` on
// destruction, so a token can always tell a dead engine from a live one.
// The count is atomic because tokens of different shards may be copied and
// dropped concurrently during a multi-threaded window.
struct TokenBlock {
  Simulation* sim;
  std::atomic<std::uint64_t> refs;
};
}  // namespace detail

// Thrown by Simulation::run when non-daemon processes remain but no events
// are pending: every remaining process waits on a condition nobody can
// signal. Mirrors the deadlock hazard of §II-B (blocks beyond the number in
// flight can never be synchronized).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

// Cancellation token for a scheduled event (used for timeouts and for
// rescheduling completion events in shared resources). Holds a (shard,
// slot, generation) triple into the owning shard's event pool plus a shared
// liveness anchor, so a token may safely outlive both its event (the slot's
// generation has moved on) and the whole Simulation (the anchor's engine
// pointer is nulled). Tokens are shard-affine: cancel()/pending() touch the
// owning shard's pool, so they must only be called from that shard during a
// multi-threaded window (all engine users — resource completions, go-back-N
// retransmit timers — keep their tokens shard-local).
class EventToken {
 public:
  EventToken() = default;
  EventToken(const EventToken& o)
      : blk_(o.blk_), shard_(o.shard_), slot_(o.slot_), gen_(o.gen_) {
    if (blk_ != nullptr) blk_->refs.fetch_add(1, std::memory_order_relaxed);
  }
  EventToken(EventToken&& o) noexcept
      : blk_(o.blk_), shard_(o.shard_), slot_(o.slot_), gen_(o.gen_) {
    o.blk_ = nullptr;
  }
  EventToken& operator=(EventToken o) noexcept {
    std::swap(blk_, o.blk_);
    std::swap(shard_, o.shard_);
    std::swap(slot_, o.slot_);
    std::swap(gen_, o.gen_);
    return *this;
  }
  ~EventToken() { drop(); }

  void cancel();
  bool pending() const;

 private:
  friend class Simulation;
  EventToken(detail::TokenBlock* blk, std::uint32_t shard, std::uint32_t slot,
             std::uint32_t gen)
      : blk_(blk), shard_(shard), slot_(slot), gen_(gen) {
    blk_->refs.fetch_add(1, std::memory_order_relaxed);
  }

  void drop() {
    // The engine keeps its own reference while alive, so refs only reaches
    // zero once the Simulation is gone and the last token lets go.
    if (blk_ != nullptr &&
        blk_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      delete blk_;
    }
    blk_ = nullptr;
  }

  detail::TokenBlock* blk_ = nullptr;
  std::uint32_t shard_ = 0;
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

// Handle to a spawned root process; join() suspends until it completes and
// rethrows any exception that escaped the process.
class JoinHandle {
 public:
  JoinHandle() = default;
  bool valid() const { return static_cast<bool>(st_); }
  bool done() const;
  const std::string& name() const;
  Proc<void> join();

  struct State;  // public: Simulation and the root runner manipulate it

 private:
  friend class Simulation;
  explicit JoinHandle(std::shared_ptr<State> st) : st_(std::move(st)) {}
  std::shared_ptr<State> st_;
};

// RAII scope that marks the calling thread as executing inside a given
// shard of `sim`. The engine sets it around every window; Cluster sets it
// around per-node machine construction so daemons spawned by a node's
// components land in that node's shard.
class ShardGuard {
 public:
  // Defined after Simulation: it resolves the shard's address so the hot
  // accessors (now, cur) reach the active shard in a single dereference.
  ShardGuard(const Simulation& sim, int shard);
  ~ShardGuard() { detail::tls_shard_ctx = prev_; }
  ShardGuard(const ShardGuard&) = delete;
  ShardGuard& operator=(const ShardGuard&) = delete;

 private:
  detail::ShardContext prev_;
};

class Simulation {
 public:
  Simulation();
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  // Current simulated time: the executing shard's clock from inside the
  // run, the global (maximum) clock from outside.
  Time now() const {
    const detail::ShardContext& ctx = detail::tls_shard_ctx;
    if (ctx.engine == this) return static_cast<const Shard*>(ctx.active)->now;
    return global_now_;
  }

  // -- Sharding (docs/PERF.md, "Parallel engine") ----------------------

  // Splits the simulation into `n` shards. Must be called before anything
  // is scheduled (Cluster calls it first thing, one shard per node). The
  // shard layout is part of the logical schedule: a given workload always
  // runs with the same shard count regardless of executor knobs.
  void configure_shards(int n);
  int num_shards() const { return static_cast<int>(shards_.size()); }
  // Shard owning node/index `id` (identity while one shard per node).
  int shard_for(int id) const {
    return shards_.size() > 1 ? id % static_cast<int>(shards_.size()) : 0;
  }

  // Registers a cross-shard causality bound: no schedule_on between
  // distinct shards may use a delay below the smallest registered value.
  // The fabric registers its wire latency — the paper's 1.4 us — which
  // makes every window at least one wire flight long.
  void register_lookahead(Dur d) {
    if (lookahead_ <= 0.0 || d < lookahead_) lookahead_ = d;
  }
  Dur lookahead() const { return lookahead_; }

  // Executor knobs (never affect results, only wall-clock): `groups`
  // executor groups (0 = one per shard) each execute their shards in
  // sequence; `threads` worker threads execute the groups of every window.
  void set_executor(int groups, int threads) {
    exec_groups_req_ = groups;
    exec_threads_req_ = threads < 1 ? 1 : threads;
  }

  // True while a multi-threaded window is executing. Shard-affinity asserts
  // (sim/trigger.h, sim/resource.h) fire only then: serial cross-shard
  // hand-offs are causally ordered by the window protocol, parallel ones
  // would race.
  bool parallel_execution() const { return parallel_window_; }
  // Shard the calling thread is executing for this engine (0 outside).
  int current_shard() const {
    const detail::ShardContext& ctx = detail::tls_shard_ctx;
    return ctx.engine == this ? ctx.shard : 0;
  }

  // -- Event scheduling ------------------------------------------------

  // Schedules `fn` to run after `delay` on the current shard. The callable
  // is moved into the event slot's inline buffer when it fits
  // (kInlineBytes); larger callables fall back to one heap allocation,
  // counted in pool_stats().
  template <typename F>
  void schedule(Dur delay, F&& fn) {
    Shard& sh = cur();
    emplace_event(sh, sh.now + delay, std::forward<F>(fn));
  }

  // Schedules `fn` onto shard `dst` after `delay` of the caller's clock.
  // Same-shard calls take the normal path. Cross-shard calls made during a
  // windowed run are staged into the source shard's outbound list and
  // merged into the destination at the next window boundary in (time,
  // src shard, src sequence) order; the delay must respect the registered
  // lookahead so the event lands at or past the window horizon.
  template <typename F>
  void schedule_on(int dst, Dur delay, F&& fn) {
    assert(dst >= 0 && dst < num_shards());
    Shard& src = cur();
    if (dst == src.index || detail::tls_shard_ctx.engine != this) {
      // Same shard, or scheduling from outside the run (construction,
      // between runs): emplace directly — the main thread owns every shard
      // there, and clocks agree (sync'd at the end of each run).
      emplace_event(*shards_[static_cast<size_t>(dst)], src.now + delay,
                    std::forward<F>(fn));
      return;
    }
    assert(lookahead_ > 0.0 && delay >= lookahead_ &&
           "cross-shard delay below the registered lookahead");
    using D = std::decay_t<F>;
    src.outbound[static_cast<size_t>(dst)].push_back(Staged{
        src.now + delay, src.cross_seq++, new D(std::forward<F>(fn)),
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* p) { delete static_cast<D*>(p); }});
  }

  template <typename F>
  EventToken schedule_cancellable(Dur delay, F&& fn) {
    Shard& sh = cur();
    const std::uint32_t si = emplace_event(sh, sh.now + delay, std::forward<F>(fn));
    return EventToken(blk_, static_cast<std::uint32_t>(sh.index), si,
                      slot(sh, si).gen);
  }

  // Direct coroutine resumption: no callable at all, just the handle.
  // Zero-delay resumes — the dominant event in trigger notifies, FIFO
  // handoffs, and spawns — bypass the heap through a FIFO ring: they all
  // carry the current time, so their (time, seq) keys arrive pre-sorted.
  void schedule_resume(std::coroutine_handle<> h, Dur delay = 0.0) {
    Shard& sh = cur();
    const std::uint32_t si = acquire_slot(sh);
    EventSlot& s = slot(sh, si);
    s.invoke = nullptr;  // marks the slot as a direct resume
    void* addr = h.address();
    std::memcpy(s.buf, &addr, sizeof(addr));
    if (delay == 0.0 && !tiebreak_active(sh)) {
      sh.ring.push_back(HeapEntry{sh.now, make_key(sh, si)});
    } else {
      // Under tie-break perturbation the ring's precondition (keys arrive
      // pre-sorted) no longer holds, so zero-delay resumes take the heap.
      heap_push(sh, HeapEntry{sh.now + delay, make_key(sh, si)});
    }
  }

  // -- Processes -------------------------------------------------------

  // Starts a root process at the current time on the current shard. Daemon
  // processes are allowed to outlive the simulation (they are excluded from
  // deadlock detection and their frames are reclaimed by ~Simulation).
  JoinHandle spawn(Proc<void> p, std::string name = "proc", bool daemon = false);

  // Starts a root process on a specific shard (Cluster spawns each node's
  // ranks into that node's shard).
  JoinHandle spawn_on(int shard, Proc<void> p, std::string name = "proc",
                      bool daemon = false) {
    assert(shard >= 0 && shard < num_shards());
    ShardGuard g(*this, shard);
    return spawn(std::move(p), std::move(name), daemon);
  }

  // Awaitable: suspend the calling process for `delay` simulated time.
  auto delay(Dur d) {
    struct Awaiter {
      Simulation& sim;
      Dur d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_resume(h, d); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // -- Running ---------------------------------------------------------

  // Runs until the event queue drains. Throws DeadlockError if non-daemon
  // processes remain unfinished, and rethrows the first exception that
  // escaped an unjoined root process.
  void run();

  // Runs until simulated time `t` (events at exactly t are processed).
  // Remaining processes are not treated as deadlocked.
  void run_until(Time t);

  std::size_t events_processed() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) n += sh->events_processed;
    return n;
  }
  std::size_t live_processes() const {
    std::size_t n = 0;
    for (const auto& sh : shards_) n += sh->live.size();
    return n;
  }

  // -- Schedule perturbation (docs/TESTING.md) -------------------------

  // Installs a seeded perturbation policy. Must be called before the first
  // event is scheduled (the fuzz harness installs it right after
  // construction); the run remains fully deterministic — a function of
  // (workload, seed, classes, shard layout) only. Every shard gets its own
  // stream set, derived from the seed and the shard index; shard 0 keeps
  // the raw seed, so single-shard runs draw the historical sequences.
  void set_perturbation(std::uint64_t seed,
                        std::uint32_t classes = Perturbation::kAllClasses) {
    perturb_seed_ = seed;
    perturb_classes_ = classes;
    has_perturb_ = true;
    for (auto& sh : shards_) install_perturbation(*sh);
  }
  // The executing shard's perturbation (shard 0's outside the run).
  Perturbation* perturbation() { return cur().perturb.get(); }
  const Perturbation* perturbation() const { return cur().perturb.get(); }

  // Invariant-oracle hook sink (src/sim/invariants.h). Null in normal runs;
  // components report protocol transitions through it when set. Not owned.
  // The observer's hooks serialize internally, so oracle checking works
  // under multi-threaded windows too.
  void set_invariant_observer(InvariantObserver* obs) { observer_ = obs; }
  InvariantObserver* invariant_observer() const { return observer_; }

  // -- Engine introspection (docs/PERF.md) -----------------------------

  // Allocation accounting for the steady-state zero-allocation guarantee:
  // once the pool and heap are warm, `pool_growths` and `heap_fallbacks`
  // stop increasing — every schedule/dispatch reuses pooled storage.
  // Aggregated over shards.
  struct PoolStats {
    std::size_t pool_slots = 0;        // slots ever created
    std::size_t free_slots = 0;        // currently on the free list
    std::size_t pending_events = 0;    // keys in heaps/rings + staged
    std::uint64_t pool_growths = 0;    // pool chunk allocations
    std::uint64_t heap_fallbacks = 0;  // callables too big for inline buffer
  };
  PoolStats pool_stats() const {
    PoolStats p;
    for (const auto& sh : shards_) {
      p.pool_slots += sh->pool_size;
      p.free_slots += sh->free_count;
      p.pending_events += sh->heap_size + (sh->ring.size() - sh->ring_head);
      for (const auto& out : sh->outbound) p.pending_events += out.size();
      p.pool_growths += sh->pool_growths;
      p.heap_fallbacks += sh->heap_fallbacks;
    }
    return p;
  }

 private:
  friend class EventToken;
  friend class ShardGuard;

  // Payload slot: exactly one cache line. The two generation flag bits
  // (kGenCancelled, kGenHeap) travel with the generation value, so a token
  // comparing its remembered generation simultaneously checks liveness and
  // cancellation. Releasing a slot rounds the generation up to the next
  // multiple of kGenStep, invalidating every outstanding token for it.
  // The generation is 32-bit (30 usable bits); a stale token would be
  // revived only if it survived exactly 2^30 reuses of its slot.
  struct EventSlot {
    static constexpr std::size_t kInlineBytes = 40;

    alignas(std::max_align_t) unsigned char buf[kInlineBytes];
    void (*invoke)(void*) = nullptr;   // null: buf holds a coroutine address
    void (*destroy)(void*) = nullptr;  // non-null: payload needs teardown
    std::uint32_t gen = kGenStep;
    std::uint32_t next_free = kNilSlot;
  };
  static_assert(sizeof(EventSlot) == 64, "EventSlot must be one cache line");

  static constexpr std::uint32_t kGenCancelled = 1u;
  static constexpr std::uint32_t kGenHeap = 2u;
  static constexpr std::uint32_t kGenStep = 4u;

  // Heap key: 16 bytes. `key` packs (seq << kSlotBits) | slot — seq is
  // strictly increasing, so comparing packed keys compares sequence numbers
  // and the slot index rides along for free.
  struct HeapEntry {
    Time t;
    std::uint64_t key;
  };
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1u;

  // Slots live in fixed 64 KiB chunks: addresses are stable (callbacks may
  // schedule, growing the pool, while the engine still points at their
  // slot), indexing is shift+mask, and growth never copies.
  static constexpr unsigned kChunkBits = 10;
  static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkBits;

  static constexpr Time kInfTime = std::numeric_limits<Time>::infinity();

  // A cross-shard event parked in its source shard's outbound list until
  // the next window boundary. The callable lives behind one heap
  // allocation (cross-shard traffic is fabric-delivery scale, not
  // hot-path scale) so the list can reallocate freely.
  struct Staged {
    Time t;
    std::uint64_t seq;       // per-source monotone merge tie-break
    void* fn;
    void (*invoke)(void*);   // call the callable (does not free it)
    void (*destroy)(void*);  // free without calling
  };

  // One node-stack's event engine. Everything a window touches is local to
  // the shard; worker threads never share shard state inside a window.
  struct Shard {
    explicit Shard(int idx) : index(idx) {}
    Shard(const Shard&) = delete;
    Shard& operator=(const Shard&) = delete;

    const int index;
    Time now = 0.0;
    std::uint64_t next_seq = 0;
    std::uint64_t cross_seq = 0;
    std::size_t events_processed = 0;

    // 4-ary min-heap of keys. The element array starts 48 bytes into a
    // 64-byte-aligned allocation, so each child group {4i+1 .. 4i+4}
    // occupies exactly one cache line.
    HeapEntry* heap_data = nullptr;
    std::size_t heap_size = 0;
    std::size_t heap_cap = 0;

    // FIFO ring of zero-delay resumes. Every entry's time equals `now` — no
    // event can fire in between without violating (time, seq) order — and
    // the backing vector is reused once drained, so pushes are
    // allocation-free in steady state. Rings always drain within a window:
    // pushes carry the current time, which is below the horizon.
    std::vector<HeapEntry> ring;
    std::size_t ring_head = 0;

    std::vector<std::unique_ptr<EventSlot[]>> chunks;
    std::size_t pool_size = 0;
    std::uint32_t free_head = kNilSlot;
    std::size_t free_count = 0;
    std::uint64_t pool_growths = 0;
    std::uint64_t heap_fallbacks = 0;

    std::unique_ptr<Perturbation> perturb;  // null: canonical schedule

    // Root-process registries. Spawns and completions run inside shard
    // execution, so they must not share storage across shards.
    std::vector<std::shared_ptr<JoinHandle::State>> live;
    std::vector<std::shared_ptr<JoinHandle::State>> daemons;
    std::size_t done_live = 0;   // completed-but-uncompacted, per registry
    std::size_t done_daemons = 0;
    std::vector<std::exception_ptr> escaped;  // from unjoined roots

    // Cross-shard staging, one list per destination shard.
    std::vector<std::vector<Staged>> outbound;
    std::exception_ptr window_exception;
  };

  struct Workers;  // worker-thread pool (defined in simulation.cc)

  Shard& cur() {
    const detail::ShardContext& ctx = detail::tls_shard_ctx;
    if (ctx.engine == this) return *static_cast<Shard*>(ctx.active);
    return *shards_[0];
  }
  const Shard& cur() const {
    const detail::ShardContext& ctx = detail::tls_shard_ctx;
    if (ctx.engine == this) return *static_cast<const Shard*>(ctx.active);
    return *shards_[0];
  }

  static bool key_less(const HeapEntry& a, const HeapEntry& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;  // earlier sequence first
  }

  static EventSlot& slot(Shard& sh, std::uint32_t i) {
    return sh.chunks[i >> kChunkBits][i & (kChunkSlots - 1)];
  }
  static const EventSlot& slot(const Shard& sh, std::uint32_t i) {
    return sh.chunks[i >> kChunkBits][i & (kChunkSlots - 1)];
  }

  static std::uint32_t acquire_slot(Shard& sh) {
    if (sh.free_head != kNilSlot) {
      const std::uint32_t s = sh.free_head;
      sh.free_head = slot(sh, s).next_free;
      --sh.free_count;
      return s;
    }
    assert(sh.pool_size < kSlotMask && "event pool exhausted (2^24 pending)");
    if (sh.pool_size == sh.chunks.size() * kChunkSlots) {
      sh.chunks.emplace_back(new EventSlot[kChunkSlots]);
      ++sh.pool_growths;
    }
    return static_cast<std::uint32_t>(sh.pool_size++);
  }

  static void release_slot(Shard& sh, std::uint32_t si) {
    EventSlot& s = slot(sh, si);
    s.gen = (s.gen | (kGenStep - 1u)) + 1u;  // next generation, flags cleared
    s.next_free = sh.free_head;
    sh.free_head = si;
    ++sh.free_count;
  }

  static void destroy_payload(EventSlot& s) {
    if (s.invoke != nullptr && s.destroy != nullptr) s.destroy(s.buf);
  }

  template <typename F>
  std::uint32_t emplace_event(Shard& sh, Time t, F&& fn) {
    using D = std::decay_t<F>;
    const std::uint32_t si = acquire_slot(sh);
    EventSlot& s = slot(sh, si);
    if constexpr (sizeof(D) <= EventSlot::kInlineBytes &&
                  alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(s.buf)) D(std::forward<F>(fn));
      s.invoke = [](void* p) { (*static_cast<D*>(p))(); };
      s.destroy = std::is_trivially_destructible_v<D>
                      ? nullptr
                      : +[](void* p) { static_cast<D*>(p)->~D(); };
    } else {
      // Too big for the slot: one heap allocation, its pointer parked in
      // the inline buffer so dispatch stays uniform.
      ::new (static_cast<void*>(s.buf)) D*(new D(std::forward<F>(fn)));
      s.gen |= kGenHeap;
      s.invoke = [](void* p) { (**static_cast<D**>(p))(); };
      s.destroy = [](void* p) { delete *static_cast<D**>(p); };
      ++sh.heap_fallbacks;
    }
    push_key(sh, t, si);
    return si;
  }

  static bool tiebreak_active(const Shard& sh) {
    return sh.perturb != nullptr && sh.perturb->has(Perturbation::kTieBreak);
  }

  // Key for a newly scheduled event. Default: strictly increasing insertion
  // sequence in the high bits (FIFO among same-time events). Under tie-break
  // perturbation: seeded random priority bits instead, so same-time events
  // fire in a seed-determined shuffle; the slot index in the low bits keeps
  // the comparison total, so replays of a seed are exact. Events at distinct
  // times are unaffected either way.
  static std::uint64_t make_key(Shard& sh, std::uint32_t si) {
    if (tiebreak_active(sh)) {
      constexpr std::uint64_t kPrioMask =
          (std::uint64_t{1} << (64 - kSlotBits)) - 1u;
      return ((sh.perturb->tiebreak_bits() & kPrioMask) << kSlotBits) | si;
    }
    assert(sh.next_seq < (std::uint64_t{1} << (64 - kSlotBits)) &&
           "event sequence numbers exhausted");
    return (sh.next_seq++ << kSlotBits) | si;
  }

  static void push_key(Shard& sh, Time t, std::uint32_t si) {
    heap_push(sh, HeapEntry{t, make_key(sh, si)});
  }

  static void heap_push(Shard& sh, HeapEntry e);
  static HeapEntry heap_pop(Shard& sh);
  static void heap_grow(Shard& sh);
  static void heap_dealloc(Shard& sh);

  void install_perturbation(Shard& sh) {
    // Per-shard stream derivation: shard 0 keeps the raw seed (historical
    // single-shard sequences), higher shards mix in their index.
    const std::uint64_t salted =
        perturb_seed_ ^
        (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(sh.index));
    sh.perturb = std::make_unique<Perturbation>(salted, perturb_classes_);
  }

  void cancel_event(std::uint32_t shard, std::uint32_t si, std::uint32_t gen) {
    EventSlot& s = slot(*shards_[shard], si);
    if (s.gen == gen) s.gen = gen | kGenCancelled;
  }
  bool event_pending(std::uint32_t shard, std::uint32_t si,
                     std::uint32_t gen) const {
    return slot(*shards_[shard], si).gen == gen;
  }

  static Time next_time(const Shard& sh) {
    if (sh.ring_head < sh.ring.size()) return sh.ring[sh.ring_head].t;
    if (sh.heap_size > 0) return sh.heap_data[0].t;
    return kInfTime;
  }

  // Processes one event of `sh` with t < bound and t <= limit; false when
  // none qualifies. The classic (single-shard) loop passes bound = inf.
  bool step(Shard& sh, Time bound, Time limit);
  void exec_shard(Shard& sh, Time bound, Time limit);
  void run_events(Time limit);
  void run_windows(Time limit);
  void merge_staged();
  void sync_clocks(Time at_least);
  void check_deadlock() const;
  void rethrow_pending();

  std::vector<std::unique_ptr<Shard>> shards_;
  Time global_now_ = 0.0;

  Dur lookahead_ = 0.0;      // 0 until a link registers one
  int exec_groups_req_ = 0;  // 0 = one group per shard
  int exec_threads_req_ = 1;
  bool parallel_window_ = false;
  std::unique_ptr<Workers> workers_;
  std::vector<std::pair<Staged, int>> merge_scratch_;  // (event, src shard)

  // Liveness anchor for EventTokens (one allocation per Simulation).
  detail::TokenBlock* blk_ = new detail::TokenBlock{this, {1}};

  std::uint64_t perturb_seed_ = 0;
  std::uint32_t perturb_classes_ = 0;
  bool has_perturb_ = false;
  InvariantObserver* observer_ = nullptr;  // null: no oracle checking
};

inline ShardGuard::ShardGuard(const Simulation& sim, int shard)
    : prev_(detail::tls_shard_ctx) {
  detail::tls_shard_ctx = detail::ShardContext{
      &sim, sim.shards_[static_cast<size_t>(shard)].get(), shard};
}

inline void EventToken::cancel() {
  if (blk_ != nullptr && blk_->sim != nullptr) {
    blk_->sim->cancel_event(shard_, slot_, gen_);
  }
  drop();
}

inline bool EventToken::pending() const {
  return blk_ != nullptr && blk_->sim != nullptr &&
         blk_->sim->event_pending(shard_, slot_, gen_);
}

struct JoinHandle::State {
  std::string name;
  bool done = false;
  bool daemon = false;
  bool exception_consumed = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> joiners;
  Simulation* sim = nullptr;
  std::coroutine_handle<> frame;  // for cleanup if never completed
};

inline bool JoinHandle::done() const { return st_ && st_->done; }

inline const std::string& JoinHandle::name() const {
  static const std::string kInvalid;
  return st_ ? st_->name : kInvalid;
}

}  // namespace dcuda::sim
