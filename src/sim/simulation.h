#pragma once

// Discrete-event simulation core.
//
// The simulator is single-threaded and deterministic: events fire in
// (time, insertion-sequence) order. Processes are C++20 coroutines (Proc<T>)
// driven from the event queue. Simulated entities (resources, channels,
// queues) schedule events to resume suspended processes.

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/proc.h"
#include "sim/units.h"

namespace dcuda::sim {

class Simulation;

// Thrown by Simulation::run when non-daemon processes remain but no events
// are pending: every remaining process waits on a condition nobody can
// signal. Mirrors the deadlock hazard of §II-B (blocks beyond the number in
// flight can never be synchronized).
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

// Cancellation token for a scheduled event (used for timeouts and for
// rescheduling completion events in shared resources).
class EventToken {
 public:
  EventToken() = default;
  explicit EventToken(std::shared_ptr<bool> alive) : alive_(std::move(alive)) {}
  void cancel() {
    if (auto a = alive_.lock()) *a = false;
    alive_.reset();
  }
  bool pending() const {
    auto a = alive_.lock();
    return a && *a;
  }

 private:
  std::weak_ptr<bool> alive_;
};

// Handle to a spawned root process; join() suspends until it completes and
// rethrows any exception that escaped the process.
class JoinHandle {
 public:
  JoinHandle() = default;
  bool valid() const { return static_cast<bool>(st_); }
  bool done() const;
  const std::string& name() const;
  Proc<void> join();

  struct State;  // public: Simulation and the root runner manipulate it

 private:
  friend class Simulation;
  explicit JoinHandle(std::shared_ptr<State> st) : st_(std::move(st)) {}
  std::shared_ptr<State> st_;
};

class Simulation {
 public:
  Simulation() = default;
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  Time now() const { return now_; }

  // -- Event scheduling ------------------------------------------------

  void schedule(Dur delay, std::function<void()> fn);
  EventToken schedule_cancellable(Dur delay, std::function<void()> fn);
  void schedule_resume(std::coroutine_handle<> h, Dur delay = 0.0);

  // -- Processes -------------------------------------------------------

  // Starts a root process at the current time. Daemon processes are allowed
  // to outlive the simulation (they are excluded from deadlock detection and
  // their frames are reclaimed by ~Simulation).
  JoinHandle spawn(Proc<void> p, std::string name = "proc", bool daemon = false);

  // Awaitable: suspend the calling process for `delay` simulated time.
  auto delay(Dur d) {
    struct Awaiter {
      Simulation& sim;
      Dur d;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { sim.schedule_resume(h, d); }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  // -- Running ---------------------------------------------------------

  // Runs until the event queue drains. Throws DeadlockError if non-daemon
  // processes remain unfinished, and rethrows the first exception that
  // escaped an unjoined root process.
  void run();

  // Runs until simulated time `t` (events at exactly t are processed).
  // Remaining processes are not treated as deadlocked.
  void run_until(Time t);

  std::size_t events_processed() const { return events_processed_; }
  std::size_t live_processes() const { return live_.size(); }

 private:
  struct Event {
    Time t;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> alive;  // null => not cancellable
  };
  struct EventCmp {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;  // min-heap: earlier sequence first
    }
  };

  bool step();  // processes one event; false if queue empty
  void check_deadlock() const;
  void rethrow_pending();

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t events_processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventCmp> queue_;
  std::vector<std::shared_ptr<JoinHandle::State>> live_;  // non-daemon roots
  std::vector<std::shared_ptr<JoinHandle::State>> daemons_;
  std::vector<std::exception_ptr> escaped_;  // from unjoined roots
};

struct JoinHandle::State {
  std::string name;
  bool done = false;
  bool exception_consumed = false;
  std::exception_ptr exception;
  std::vector<std::coroutine_handle<>> joiners;
  Simulation* sim = nullptr;
  std::coroutine_handle<> frame;  // for cleanup if never completed
};

inline bool JoinHandle::done() const { return st_ && st_->done; }
inline const std::string& JoinHandle::name() const { return st_->name; }

}  // namespace dcuda::sim
