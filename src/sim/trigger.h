#pragma once

// Condition-variable style synchronization for simulated processes.

#include <coroutine>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace dcuda::sim {

// A broadcast wake-up point. Waiters must re-check their predicate after
// waking (spurious wake-ups are possible by design); use wait_until for the
// common predicate loop.
class Trigger {
 public:
  explicit Trigger(Simulation& sim)
      : sim_(&sim), owner_shard_(sim.current_shard()) {}
  Trigger(const Trigger&) = delete;
  Trigger& operator=(const Trigger&) = delete;

  auto wait() {
    struct Awaiter {
      Trigger* t;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        t->assert_affinity();
        t->waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{this};
  }

  // Wakes all current waiters at the current simulated time (as separate
  // events, never inline, to avoid re-entrancy). schedule_resume only
  // enqueues — no user code runs during the loop, so waiters_ cannot change
  // under us and its capacity is reused across notifications.
  void notify_all() {
    assert_affinity();
    for (auto h : waiters_) sim_->schedule_resume(h);
    waiters_.clear();
  }

  std::size_t waiter_count() const { return waiters_.size(); }

 private:
  // Shard affinity (docs/PERF.md, "Parallel engine"): during a
  // multi-threaded window a trigger may only be waited on or notified from
  // the shard it was built in — a cross-shard touch would race on the
  // waiter list and the engine's per-shard queues. Serial runs migrate
  // freely; the window protocol keeps them causally ordered.
  void assert_affinity() const {
    assert(!sim_->parallel_execution() ||
           sim_->current_shard() == owner_shard_);
  }

  Simulation* sim_;
  int owner_shard_;
  std::vector<std::coroutine_handle<>> waiters_;
};

// Suspends until pred() holds, re-checking whenever the trigger fires.
template <typename Pred>
Proc<void> wait_until(Trigger& trig, Pred pred) {
  while (!pred()) co_await trig.wait();
}

}  // namespace dcuda::sim
