#pragma once

// Small statistics helpers used by the benchmark harness (the paper reports
// medians with nonparametric 95% confidence intervals).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dcuda::sim {

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

// Nonparametric 95% confidence interval of the median (order statistics,
// normal approximation of the binomial), as used in the paper's gray bands.
struct MedianCi {
  double lo = 0.0;
  double hi = 0.0;
};

// Sorted-once sample summary. Sorts on construction; every quantile query
// afterwards is O(1) — use this instead of repeated percentile() calls,
// which sort a by-value copy each time.
class Summary {
 public:
  Summary() = default;
  explicit Summary(std::vector<double> v) : v_(std::move(v)) {
    std::sort(v_.begin(), v_.end());
  }

  bool empty() const { return v_.empty(); }
  std::size_t count() const { return v_.size(); }
  double min() const { return v_.empty() ? 0.0 : v_.front(); }
  double max() const { return v_.empty() ? 0.0 : v_.back(); }

  double mean() const {
    if (v_.empty()) return 0.0;
    double s = 0.0;
    for (double x : v_) s += x;
    return s / static_cast<double>(v_.size());
  }

  // p is a fraction in [0, 1] (out-of-range values are clamped).
  double percentile(double p) const {
    if (v_.empty()) return 0.0;
    const double idx =
        std::clamp(p, 0.0, 1.0) * static_cast<double>(v_.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, v_.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return v_[lo] * (1.0 - frac) + v_[hi] * frac;
  }

  double median() const { return percentile(0.5); }
  double sum() const {
    double s = 0.0;
    for (double x : v_) s += x;
    return s;
  }

  MedianCi median_ci95() const {
    if (v_.empty()) return {};
    const double n = static_cast<double>(v_.size());
    const double half = 1.96 * std::sqrt(n) / 2.0;
    const auto clamp_idx = [&](double x) {
      return static_cast<std::size_t>(std::clamp(x, 0.0, n - 1.0));
    };
    return {v_[clamp_idx(n / 2.0 - half)], v_[clamp_idx(n / 2.0 + half)]};
  }

  const std::vector<double>& sorted() const { return v_; }

 private:
  std::vector<double> v_;
};

inline double percentile(std::vector<double> v, double p) {
  return Summary(std::move(v)).percentile(p);
}

inline double median(const std::vector<double>& v) { return percentile(v, 0.5); }

inline MedianCi median_ci95(std::vector<double> v) {
  return Summary(std::move(v)).median_ci95();
}

inline double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace dcuda::sim
