#pragma once

// Small statistics helpers used by the benchmark harness (the paper reports
// medians with nonparametric 95% confidence intervals).

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace dcuda::sim {

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

inline double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

inline double median(const std::vector<double>& v) { return percentile(v, 0.5); }

// Nonparametric 95% confidence interval of the median (order statistics,
// normal approximation of the binomial), as used in the paper's gray bands.
struct MedianCi {
  double lo = 0.0;
  double hi = 0.0;
};

inline MedianCi median_ci95(std::vector<double> v) {
  if (v.empty()) return {};
  std::sort(v.begin(), v.end());
  const double n = static_cast<double>(v.size());
  const double half = 1.96 * std::sqrt(n) / 2.0;
  const auto clamp_idx = [&](double x) {
    return static_cast<std::size_t>(std::clamp(x, 0.0, n - 1.0));
  };
  return {v[clamp_idx(n / 2.0 - half)], v[clamp_idx(n / 2.0 + half)]};
}

inline double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

}  // namespace dcuda::sim
