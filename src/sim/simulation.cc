#include "sim/simulation.h"

#include <algorithm>
#include <sstream>

namespace dcuda::sim {

namespace {

// Wraps a user process so that exceptions are captured into the join state
// instead of escaping through final_suspend (which would lose them).
Proc<void> root_runner(Proc<void> inner, std::shared_ptr<JoinHandle::State> st) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->exception = std::current_exception();
  }
}

}  // namespace

Simulation::~Simulation() {
  // Destroy frames of processes that never completed (daemons, or roots left
  // behind after run_until / an exception). Frames are suspended, so destroy
  // is legal. Handles in triggers/resources become dangling but are never
  // resumed again because the simulation is gone.
  auto reap = [](std::vector<std::shared_ptr<JoinHandle::State>>& v) {
    for (auto& st : v) {
      if (!st->done && st->frame) st->frame.destroy();
    }
    v.clear();
  };
  reap(live_);
  reap(daemons_);
}

void Simulation::schedule(Dur delay, std::function<void()> fn) {
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), nullptr});
}

EventToken Simulation::schedule_cancellable(Dur delay, std::function<void()> fn) {
  auto alive = std::make_shared<bool>(true);
  queue_.push(Event{now_ + delay, next_seq_++, std::move(fn), alive});
  return EventToken(alive);
}

void Simulation::schedule_resume(std::coroutine_handle<> h, Dur delay) {
  schedule(delay, [h] { h.resume(); });
}

JoinHandle Simulation::spawn(Proc<void> p, std::string name, bool daemon) {
  auto st = std::make_shared<JoinHandle::State>();
  st->name = std::move(name);
  st->sim = this;

  Proc<void> runner = root_runner(std::move(p), st);
  auto h = runner.release();
  h.promise().detached = true;
  st->frame = h;
  h.promise().on_final = [this, st] {
    st->done = true;
    st->frame = nullptr;
    if (st->exception && st->joiners.empty()) escaped_.push_back(st->exception);
    for (auto j : st->joiners) schedule_resume(j);
    st->joiners.clear();
  };
  auto& registry = daemon ? daemons_ : live_;
  registry.push_back(st);
  // Completed states would otherwise accumulate forever (one per spawned
  // process — millions in long runs); compact opportunistically.
  if (registry.size() >= 4096) {
    std::erase_if(registry, [](const auto& p) { return p->done; });
  }
  schedule_resume(h);
  return JoinHandle(st);
}

Proc<void> JoinHandle::join() {
  struct Awaiter {
    State* st;
    bool await_ready() const noexcept { return st->done; }
    void await_suspend(std::coroutine_handle<> h) { st->joiners.push_back(h); }
    void await_resume() const noexcept {}
  };
  while (!st_->done) co_await Awaiter{st_.get()};
  if (st_->exception && !st_->exception_consumed) {
    st_->exception_consumed = true;
    std::rethrow_exception(st_->exception);
  }
}

bool Simulation::step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    if (ev.alive && !*ev.alive) continue;  // cancelled
    now_ = ev.t;
    ++events_processed_;
    ev.fn();
    return true;
  }
  return false;
}

void Simulation::run() {
  while (step()) {
  }
  rethrow_pending();
  check_deadlock();
}

void Simulation::run_until(Time t) {
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
  }
  now_ = std::max(now_, t);
  rethrow_pending();
}

void Simulation::rethrow_pending() {
  if (escaped_.empty()) return;
  auto ex = escaped_.front();
  escaped_.clear();
  std::rethrow_exception(ex);
}

void Simulation::check_deadlock() const {
  std::vector<std::string> stuck;
  for (const auto& st : live_) {
    if (!st->done) stuck.push_back(st->name);
  }
  if (stuck.empty()) return;
  std::ostringstream os;
  os << "deadlock: " << stuck.size()
     << " process(es) blocked with no pending events:";
  for (const auto& n : stuck) os << ' ' << n;
  throw DeadlockError(os.str());
}

}  // namespace dcuda::sim
