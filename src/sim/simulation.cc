#include "sim/simulation.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>

namespace dcuda::sim {

namespace {

// Wraps a user process so that exceptions are captured into the join state
// instead of escaping through final_suspend (which would lose them).
Proc<void> root_runner(Proc<void> inner, std::shared_ptr<JoinHandle::State> st) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->exception = std::current_exception();
  }
}

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

// Worker-thread pool for multi-threaded windows. The main thread is worker
// 0; pool threads pick up their executor groups when the epoch advances and
// report back through an atomic countdown. Workers spin briefly before
// sleeping on the condition variable, and the main thread's completion wait
// spins with yields — windows are microseconds of work, so the barrier must
// not round-trip the scheduler when cores are available.
struct Simulation::Workers {
  Workers(Simulation& s, int nthreads) : sim(s) {
    pool.reserve(static_cast<size_t>(nthreads - 1));
    for (int w = 1; w < nthreads; ++w) {
      pool.emplace_back([this, w] { worker_loop(w); });
    }
  }

  ~Workers() {
    {
      std::lock_guard<std::mutex> lk(mu);
      stop.store(true, std::memory_order_relaxed);
    }
    cv.notify_all();
    for (auto& t : pool) t.join();
  }

  int threads() const { return static_cast<int>(pool.size()) + 1; }

  // Executes one window across all groups; returns once every shard is done.
  void run_window(Time b, Time l, int g) {
    bound = b;
    limit = l;
    groups = g;
    remaining.store(static_cast<int>(pool.size()), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(mu);
      epoch.fetch_add(1, std::memory_order_release);
    }
    cv.notify_all();
    exec_groups(0);
    for (int spin = 0; remaining.load(std::memory_order_acquire) > 0; ++spin) {
      if (spin < 128) {
        cpu_relax();
      } else {
        std::this_thread::yield();
      }
    }
  }

  void worker_loop(int w) {
    std::uint64_t seen = 0;
    for (;;) {
      bool woke = false;
      for (int spin = 0; spin < 2048; ++spin) {
        if (stop.load(std::memory_order_relaxed)) return;
        if (epoch.load(std::memory_order_acquire) != seen) {
          woke = true;
          break;
        }
        cpu_relax();
      }
      if (!woke) {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] {
          return stop.load(std::memory_order_relaxed) ||
                 epoch.load(std::memory_order_acquire) != seen;
        });
        if (stop.load(std::memory_order_relaxed)) return;
      }
      seen = epoch.load(std::memory_order_acquire);
      exec_groups(w);
      remaining.fetch_sub(1, std::memory_order_release);
    }
  }

  // Worker w executes groups w, w+T, ...; group g owns shards g, g+G, ....
  void exec_groups(int w) {
    const int t = threads();
    const int n = static_cast<int>(sim.shards_.size());
    for (int g = w; g < groups; g += t) {
      for (int s = g; s < n; s += groups) {
        sim.exec_shard(*sim.shards_[static_cast<size_t>(s)], bound, limit);
      }
    }
  }

  Simulation& sim;
  std::mutex mu;
  std::condition_variable cv;
  std::atomic<std::uint64_t> epoch{0};
  std::atomic<int> remaining{0};
  std::atomic<bool> stop{false};
  Time bound = 0.0;
  Time limit = 0.0;
  int groups = 1;
  std::vector<std::thread> pool;
};

Simulation::Simulation() {
  shards_.push_back(std::make_unique<Shard>(0));
  shards_[0]->outbound.resize(1);
}

Simulation::~Simulation() {
  workers_.reset();  // join worker threads before tearing down shard state
  for (auto& shp : shards_) {
    Shard& sh = *shp;
    // Destroy frames of processes that never completed (daemons, or roots
    // left behind after run_until / an exception). Frames are suspended, so
    // destroy is legal. Handles in triggers/resources become dangling but
    // are never resumed again because the simulation is gone.
    auto reap = [](std::vector<std::shared_ptr<JoinHandle::State>>& v) {
      for (auto& st : v) {
        if (!st->done && st->frame) st->frame.destroy();
      }
      v.clear();
    };
    reap(sh.live);
    reap(sh.daemons);
    // Free payloads of events still pending (or cancelled-but-unpopped): the
    // key heap plus the resume ring list exactly the occupied slots, once
    // each. (Ring slots are direct resumes and carry no payload, but walking
    // them keeps the invariant obvious.)
    for (std::size_t i = 0; i < sh.heap_size; ++i) {
      destroy_payload(
          slot(sh, static_cast<std::uint32_t>(sh.heap_data[i].key & kSlotMask)));
    }
    for (std::size_t i = sh.ring_head; i < sh.ring.size(); ++i) {
      destroy_payload(
          slot(sh, static_cast<std::uint32_t>(sh.ring[i].key & kSlotMask)));
    }
    heap_dealloc(sh);
    // Staged cross-shard events that never merged.
    for (auto& out : sh.outbound) {
      for (Staged& e : out) e.destroy(e.fn);
      out.clear();
    }
  }
  // Detach from outstanding EventTokens; the last of them frees the block.
  blk_->sim = nullptr;
  if (blk_->refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete blk_;
}

void Simulation::configure_shards(int n) {
  assert(n >= 1);
  assert(shards_.size() == 1 && "configure_shards may only be called once");
  assert(shards_[0]->pool_size == 0 && shards_[0]->next_seq == 0 &&
         "configure_shards must precede any scheduling");
  for (int k = 1; k < n; ++k) {
    shards_.push_back(std::make_unique<Shard>(k));
  }
  for (auto& sh : shards_) {
    sh->outbound.resize(shards_.size());
    if (has_perturb_) install_perturbation(*sh);
  }
}

void Simulation::heap_grow(Shard& sh) {
  // Element 0 sits 48 bytes into a 64-byte-aligned block so that elements
  // 4i+1 .. 4i+4 — the children of node i — share one cache line.
  const std::size_t cap = sh.heap_cap > 0 ? sh.heap_cap * 2 : 1024;
  void* raw = ::operator new(48 + cap * sizeof(HeapEntry), std::align_val_t{64});
  auto* data = reinterpret_cast<HeapEntry*>(static_cast<unsigned char*>(raw) + 48);
  if (sh.heap_size > 0) {
    std::memcpy(data, sh.heap_data, sh.heap_size * sizeof(HeapEntry));
  }
  heap_dealloc(sh);
  sh.heap_data = data;
  sh.heap_cap = cap;
}

void Simulation::heap_dealloc(Shard& sh) {
  if (sh.heap_data != nullptr) {
    ::operator delete(reinterpret_cast<unsigned char*>(sh.heap_data) - 48,
                      std::align_val_t{64});
    sh.heap_data = nullptr;
  }
}

void Simulation::heap_push(Shard& sh, HeapEntry e) {
  if (sh.heap_size == sh.heap_cap) heap_grow(sh);
  std::size_t i = sh.heap_size++;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!key_less(e, sh.heap_data[parent])) break;
    sh.heap_data[i] = sh.heap_data[parent];
    i = parent;
  }
  sh.heap_data[i] = e;
}

Simulation::HeapEntry Simulation::heap_pop(Shard& sh) {
  const HeapEntry top = sh.heap_data[0];
  const HeapEntry last = sh.heap_data[--sh.heap_size];
  const std::size_t n = sh.heap_size;
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      // The sift is a chain of dependent cache misses in a deep heap;
      // prefetching all four grandchild groups (one line each) overlaps the
      // next level's fetch with this level's compare, whichever child wins.
      const std::size_t gfirst = 4 * first + 1;
      if (gfirst < n) {
        __builtin_prefetch(&sh.heap_data[gfirst]);
        __builtin_prefetch(&sh.heap_data[gfirst + 4]);
        __builtin_prefetch(&sh.heap_data[gfirst + 8]);
        __builtin_prefetch(&sh.heap_data[gfirst + 12]);
      }
      std::size_t min_child = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (key_less(sh.heap_data[c], sh.heap_data[min_child])) min_child = c;
      }
      if (!key_less(sh.heap_data[min_child], last)) break;
      sh.heap_data[i] = sh.heap_data[min_child];
      i = min_child;
    }
    sh.heap_data[i] = last;
  }
  return top;
}

JoinHandle Simulation::spawn(Proc<void> p, std::string name, bool daemon) {
  Shard& home = cur();
  auto st = std::make_shared<JoinHandle::State>();
  st->name = std::move(name);
  st->daemon = daemon;
  st->sim = this;

  Proc<void> runner = root_runner(std::move(p), st);
  auto h = runner.release();
  h.promise().detached = true;
  st->frame = h;
  // root_runner holds its own shared_ptr to the state, which outlives
  // final_suspend. The completion hook updates the spawning shard's
  // registry counters — processes that finish do so on their home shard
  // (the affinity asserts enforce this for multi-threaded windows).
  JoinHandle::State* stp = st.get();
  Shard* homep = &home;
  h.promise().on_final = [this, stp, homep] {
    stp->done = true;
    stp->frame = nullptr;
    ++(stp->daemon ? homep->done_daemons : homep->done_live);
    if (stp->exception && stp->joiners.empty()) {
      homep->escaped.push_back(stp->exception);
    }
    for (auto j : stp->joiners) schedule_resume(j);
    stp->joiners.clear();
  };
  auto& registry = daemon ? home.daemons : home.live;
  std::size_t& done_count = daemon ? home.done_daemons : home.done_live;
  registry.push_back(st);
  // Completed states would otherwise accumulate forever (one per spawned
  // process — millions in long runs). Compact only when at least half the
  // registry is dead, so workloads with thousands of concurrently live
  // processes don't rescan it on every spawn.
  if (registry.size() >= 4096 && done_count * 2 >= registry.size()) {
    std::erase_if(registry, [](const auto& q) { return q->done; });
    done_count = 0;
  }
  schedule_resume(h);
  return JoinHandle(st);
}

Proc<void> JoinHandle::join() {
  struct Awaiter {
    State* st;
    bool await_ready() const noexcept { return st->done; }
    void await_suspend(std::coroutine_handle<> h) { st->joiners.push_back(h); }
    void await_resume() const noexcept {}
  };
  while (!st_->done) co_await Awaiter{st_.get()};
  if (st_->exception && !st_->exception_consumed) {
    st_->exception_consumed = true;
    std::rethrow_exception(st_->exception);
  }
}

bool Simulation::step(Shard& sh, Time bound, Time limit) {
  for (;;) {
    HeapEntry e;
    bool from_ring;
    const bool ring_pending = sh.ring_head < sh.ring.size();
    if (ring_pending && (sh.heap_size == 0 ||
                         key_less(sh.ring[sh.ring_head], sh.heap_data[0]))) {
      // Zero-delay resume ring: entries are pre-sorted (all at `now`, seq
      // ascending), so this is the shard's minimum.
      e = sh.ring[sh.ring_head];
      from_ring = true;
    } else if (sh.heap_size > 0) {
      e = sh.heap_data[0];
      from_ring = false;
    } else {
      return false;
    }
    // Window horizon (strict) and run_until limit (inclusive): events at or
    // past the bound stay queued for a later window.
    if (e.t >= bound || e.t > limit) return false;
    if (from_ring) {
      ++sh.ring_head;
      if (sh.ring_head == sh.ring.size()) {
        sh.ring.clear();
        sh.ring_head = 0;
      }
    } else {
      // Start fetching the winning event's slot line before the sift-down
      // touches the heap: the two are independent, so the slot arrives from
      // cache by the time dispatch needs it.
      __builtin_prefetch(
          &slot(sh, static_cast<std::uint32_t>(sh.heap_data[0].key & kSlotMask)));
      e = heap_pop(sh);
    }
    const std::uint32_t si = static_cast<std::uint32_t>(e.key & kSlotMask);
    EventSlot& s = slot(sh, si);
    if ((s.gen & kGenCancelled) != 0u) {
      destroy_payload(s);
      release_slot(sh, si);
      continue;
    }
    sh.now = e.t;
    ++sh.events_processed;
    if (s.invoke == nullptr) {
      // Direct resume. Release before resuming: the slot is immediately
      // reusable (warm for whatever the coroutine schedules next) and holds
      // no payload.
      void* addr;
      std::memcpy(&addr, s.buf, sizeof(addr));
      release_slot(sh, si);
      std::coroutine_handle<>::from_address(addr).resume();
    } else {
      // Invoke in place; the slot stays off the free list during the call,
      // and chunks never move, so `s` stays valid if the callback schedules
      // (and thereby grows the pool).
      s.invoke(s.buf);
      destroy_payload(s);
      release_slot(sh, si);
    }
    return true;
  }
}

void Simulation::exec_shard(Shard& sh, Time bound, Time limit) {
  ShardGuard g(*this, sh.index);
  try {
    while (step(sh, bound, limit)) {
    }
  } catch (...) {
    sh.window_exception = std::current_exception();
  }
}

// Applies every staged cross-shard event. For each destination, arrivals
// from all sources are ordered by (time, src shard, src sequence) — a fixed
// rule independent of which thread executed which shard — and then keyed
// with the destination's own insertion sequence, so the merged schedule is
// a pure function of the logical run.
void Simulation::merge_staged() {
  const int n = static_cast<int>(shards_.size());
  for (int d = 0; d < n; ++d) {
    merge_scratch_.clear();
    for (int s = 0; s < n; ++s) {
      auto& out = shards_[static_cast<size_t>(s)]->outbound[static_cast<size_t>(d)];
      for (const Staged& e : out) merge_scratch_.emplace_back(e, s);
      out.clear();
    }
    if (merge_scratch_.empty()) continue;
    std::sort(merge_scratch_.begin(), merge_scratch_.end(),
              [](const std::pair<Staged, int>& a, const std::pair<Staged, int>& b) {
                if (a.first.t != b.first.t) return a.first.t < b.first.t;
                if (a.second != b.second) return a.second < b.second;
                return a.first.seq < b.first.seq;
              });
    Shard& to = *shards_[static_cast<size_t>(d)];
    for (auto& m : merge_scratch_) {
      const Staged& e = m.first;
      // Move the staged callable into a slot-sized runner that frees it
      // after the call (or on teardown if the event never fires).
      struct Runner {
        void* fn;
        void (*invoke)(void*);
        void (*free_fn)(void*);
        Runner(void* f, void (*i)(void*), void (*d2)(void*))
            : fn(f), invoke(i), free_fn(d2) {}
        Runner(Runner&& o) noexcept
            : fn(o.fn), invoke(o.invoke), free_fn(o.free_fn) {
          o.fn = nullptr;
        }
        Runner(const Runner&) = delete;
        Runner& operator=(const Runner&) = delete;
        Runner& operator=(Runner&&) = delete;
        ~Runner() {
          if (fn != nullptr) free_fn(fn);
        }
        void operator()() {
          void* f = fn;
          fn = nullptr;
          invoke(f);
          free_fn(f);
        }
      };
      emplace_event(to, e.t, Runner(e.fn, e.invoke, e.destroy));
    }
  }
}

void Simulation::run_events(Time limit) {
  if (shards_.size() == 1) {
    // Classic sequential engine: one shard, no windows, no merges —
    // byte-identical to the historical single-threaded schedule.
    Shard& sh = *shards_[0];
    ShardGuard g(*this, 0);
    while (step(sh, kInfTime, limit)) {
    }
    return;
  }
  run_windows(limit);
}

void Simulation::run_windows(Time limit) {
  if (lookahead_ <= 0.0) {
    throw std::logic_error(
        "Simulation: multi-shard run requires a positive lookahead "
        "(register_lookahead)");
  }
  const int n = static_cast<int>(shards_.size());
  const int groups = exec_groups_req_ > 0 ? std::min(exec_groups_req_, n) : n;
  const int threads = std::min(exec_threads_req_, groups);
  if (threads > 1 && (workers_ == nullptr || workers_->threads() != threads)) {
    workers_ = std::make_unique<Workers>(*this, threads);
  }
  for (;;) {
    merge_staged();
    Time m = kInfTime;
    for (const auto& sh : shards_) m = std::min(m, next_time(*sh));
    if (m == kInfTime || m > limit) break;  // drained, or past run_until
    const Time bound = m + lookahead_;
    if (threads > 1) {
      parallel_window_ = true;
      workers_->run_window(bound, limit, groups);
      parallel_window_ = false;
    } else {
      for (int g = 0; g < groups; ++g) {
        for (int s = g; s < n; s += groups) {
          exec_shard(*shards_[static_cast<size_t>(s)], bound, limit);
        }
      }
    }
    for (auto& sh : shards_) {
      if (sh->window_exception) {
        auto ex = sh->window_exception;
        sh->window_exception = nullptr;
        std::rethrow_exception(ex);
      }
    }
  }
}

// Aligns every shard clock (and the global clock) on max(shard clocks,
// at_least). Runs after the queues drained, so advancing a lagging shard is
// safe, and keeps post-run scheduling from the main thread consistent: all
// clocks agree between runs, exactly like the classic single-clock engine.
void Simulation::sync_clocks(Time at_least) {
  Time mx = at_least;
  for (const auto& sh : shards_) mx = std::max(mx, sh->now);
  for (auto& sh : shards_) sh->now = mx;
  global_now_ = mx;
}

void Simulation::run() {
  try {
    run_events(kInfTime);
  } catch (...) {
    sync_clocks(0.0);
    throw;
  }
  sync_clocks(0.0);
  rethrow_pending();
  check_deadlock();
}

void Simulation::run_until(Time t) {
  try {
    run_events(t);
  } catch (...) {
    sync_clocks(0.0);
    throw;
  }
  sync_clocks(t);
  rethrow_pending();
}

void Simulation::rethrow_pending() {
  for (const auto& sh : shards_) {
    if (!sh->escaped.empty()) {
      auto ex = sh->escaped.front();
      for (auto& s2 : shards_) s2->escaped.clear();
      std::rethrow_exception(ex);
    }
  }
}

void Simulation::check_deadlock() const {
  std::vector<std::string> stuck;
  for (const auto& sh : shards_) {
    for (const auto& st : sh->live) {
      if (!st->done) stuck.push_back(st->name);
    }
  }
  if (stuck.empty()) return;
  std::ostringstream os;
  os << "deadlock: " << stuck.size()
     << " process(es) blocked with no pending events:";
  for (const auto& n : stuck) os << ' ' << n;
  throw DeadlockError(os.str());
}

}  // namespace dcuda::sim
