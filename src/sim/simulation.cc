#include "sim/simulation.h"

#include <algorithm>
#include <sstream>

namespace dcuda::sim {

namespace {

// Wraps a user process so that exceptions are captured into the join state
// instead of escaping through final_suspend (which would lose them).
Proc<void> root_runner(Proc<void> inner, std::shared_ptr<JoinHandle::State> st) {
  try {
    co_await std::move(inner);
  } catch (...) {
    st->exception = std::current_exception();
  }
}

}  // namespace

Simulation::~Simulation() {
  // Destroy frames of processes that never completed (daemons, or roots left
  // behind after run_until / an exception). Frames are suspended, so destroy
  // is legal. Handles in triggers/resources become dangling but are never
  // resumed again because the simulation is gone.
  auto reap = [](std::vector<std::shared_ptr<JoinHandle::State>>& v) {
    for (auto& st : v) {
      if (!st->done && st->frame) st->frame.destroy();
    }
    v.clear();
  };
  reap(live_);
  reap(daemons_);
  // Free payloads of events still pending (or cancelled-but-unpopped): the
  // key heap plus the resume ring list exactly the occupied slots, once
  // each. (Ring slots are direct resumes and carry no payload, but walking
  // them keeps the invariant obvious.)
  for (std::size_t i = 0; i < heap_size_; ++i) {
    destroy_payload(slot(static_cast<std::uint32_t>(heap_data_[i].key & kSlotMask)));
  }
  for (std::size_t i = ring_head_; i < ring_.size(); ++i) {
    destroy_payload(slot(static_cast<std::uint32_t>(ring_[i].key & kSlotMask)));
  }
  heap_dealloc();
  // Detach from outstanding EventTokens; the last of them frees the block.
  blk_->sim = nullptr;
  if (--blk_->refs == 0) delete blk_;
}

void Simulation::heap_grow() {
  // Element 0 sits 48 bytes into a 64-byte-aligned block so that elements
  // 4i+1 .. 4i+4 — the children of node i — share one cache line.
  const std::size_t cap = heap_cap_ > 0 ? heap_cap_ * 2 : 1024;
  void* raw = ::operator new(48 + cap * sizeof(HeapEntry), std::align_val_t{64});
  auto* data = reinterpret_cast<HeapEntry*>(static_cast<unsigned char*>(raw) + 48);
  if (heap_size_ > 0) std::memcpy(data, heap_data_, heap_size_ * sizeof(HeapEntry));
  heap_dealloc();
  heap_data_ = data;
  heap_cap_ = cap;
}

void Simulation::heap_dealloc() {
  if (heap_data_ != nullptr) {
    ::operator delete(reinterpret_cast<unsigned char*>(heap_data_) - 48,
                      std::align_val_t{64});
    heap_data_ = nullptr;
  }
}

void Simulation::heap_push(HeapEntry e) {
  if (heap_size_ == heap_cap_) heap_grow();
  std::size_t i = heap_size_++;
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!key_less(e, heap_data_[parent])) break;
    heap_data_[i] = heap_data_[parent];
    i = parent;
  }
  heap_data_[i] = e;
}

Simulation::HeapEntry Simulation::heap_pop() {
  const HeapEntry top = heap_data_[0];
  const HeapEntry last = heap_data_[--heap_size_];
  const std::size_t n = heap_size_;
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      // The sift is a chain of dependent cache misses in a deep heap;
      // prefetching all four grandchild groups (one line each) overlaps the
      // next level's fetch with this level's compare, whichever child wins.
      const std::size_t gfirst = 4 * first + 1;
      if (gfirst < n) {
        __builtin_prefetch(&heap_data_[gfirst]);
        __builtin_prefetch(&heap_data_[gfirst + 4]);
        __builtin_prefetch(&heap_data_[gfirst + 8]);
        __builtin_prefetch(&heap_data_[gfirst + 12]);
      }
      std::size_t min_child = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (key_less(heap_data_[c], heap_data_[min_child])) min_child = c;
      }
      if (!key_less(heap_data_[min_child], last)) break;
      heap_data_[i] = heap_data_[min_child];
      i = min_child;
    }
    heap_data_[i] = last;
  }
  return top;
}

JoinHandle Simulation::spawn(Proc<void> p, std::string name, bool daemon) {
  auto st = std::make_shared<JoinHandle::State>();
  st->name = std::move(name);
  st->daemon = daemon;
  st->sim = this;

  Proc<void> runner = root_runner(std::move(p), st);
  auto h = runner.release();
  h.promise().detached = true;
  st->frame = h;
  // Two raw pointers: fits std::function's inline storage, so arming the
  // completion hook allocates nothing. root_runner holds its own shared_ptr
  // to the state, which outlives final_suspend.
  JoinHandle::State* stp = st.get();
  h.promise().on_final = [this, stp] {
    stp->done = true;
    stp->frame = nullptr;
    ++(stp->daemon ? done_daemons_ : done_live_);
    if (stp->exception && stp->joiners.empty()) escaped_.push_back(stp->exception);
    for (auto j : stp->joiners) schedule_resume(j);
    stp->joiners.clear();
  };
  auto& registry = daemon ? daemons_ : live_;
  std::size_t& done_count = daemon ? done_daemons_ : done_live_;
  registry.push_back(st);
  // Completed states would otherwise accumulate forever (one per spawned
  // process — millions in long runs). Compact only when at least half the
  // registry is dead, so workloads with thousands of concurrently live
  // processes don't rescan it on every spawn.
  if (registry.size() >= 4096 && done_count * 2 >= registry.size()) {
    std::erase_if(registry, [](const auto& q) { return q->done; });
    done_count = 0;
  }
  schedule_resume(h);
  return JoinHandle(st);
}

Proc<void> JoinHandle::join() {
  struct Awaiter {
    State* st;
    bool await_ready() const noexcept { return st->done; }
    void await_suspend(std::coroutine_handle<> h) { st->joiners.push_back(h); }
    void await_resume() const noexcept {}
  };
  while (!st_->done) co_await Awaiter{st_.get()};
  if (st_->exception && !st_->exception_consumed) {
    st_->exception_consumed = true;
    std::rethrow_exception(st_->exception);
  }
}

bool Simulation::step() {
  for (;;) {
    HeapEntry e;
    const bool ring_pending = ring_head_ < ring_.size();
    if (ring_pending &&
        (heap_size_ == 0 || key_less(ring_[ring_head_], heap_data_[0]))) {
      // Zero-delay resume ring: entries are pre-sorted (all at now_, seq
      // ascending), so this is the global minimum.
      e = ring_[ring_head_++];
      if (ring_head_ == ring_.size()) {
        ring_.clear();
        ring_head_ = 0;
      }
    } else if (heap_size_ > 0) {
      // Start fetching the winning event's slot line before the sift-down
      // touches the heap: the two are independent, so the slot arrives from
      // cache by the time dispatch needs it.
      __builtin_prefetch(
          &slot(static_cast<std::uint32_t>(heap_data_[0].key & kSlotMask)));
      e = heap_pop();
    } else {
      return false;
    }
    const std::uint32_t si = static_cast<std::uint32_t>(e.key & kSlotMask);
    EventSlot& s = slot(si);
    if ((s.gen & kGenCancelled) != 0u) {
      destroy_payload(s);
      release_slot(si);
      continue;
    }
    now_ = e.t;
    ++events_processed_;
    if (s.invoke == nullptr) {
      // Direct resume. Release before resuming: the slot is immediately
      // reusable (warm for whatever the coroutine schedules next) and holds
      // no payload.
      void* addr;
      std::memcpy(&addr, s.buf, sizeof(addr));
      release_slot(si);
      std::coroutine_handle<>::from_address(addr).resume();
    } else {
      // Invoke in place; the slot stays off the free list during the call,
      // and chunks never move, so `s` stays valid if the callback schedules
      // (and thereby grows the pool).
      s.invoke(s.buf);
      destroy_payload(s);
      release_slot(si);
    }
    return true;
  }
}

void Simulation::run() {
  while (step()) {
  }
  rethrow_pending();
  check_deadlock();
}

void Simulation::run_until(Time t) {
  for (;;) {
    Time next;
    if (ring_head_ < ring_.size()) {
      next = ring_[ring_head_].t;  // ≤ any heap time by construction
    } else if (heap_size_ > 0) {
      next = heap_data_[0].t;
    } else {
      break;
    }
    if (next > t) break;
    step();
  }
  now_ = std::max(now_, t);
  rethrow_pending();
}

void Simulation::rethrow_pending() {
  if (escaped_.empty()) return;
  auto ex = escaped_.front();
  escaped_.clear();
  std::rethrow_exception(ex);
}

void Simulation::check_deadlock() const {
  std::vector<std::string> stuck;
  for (const auto& st : live_) {
    if (!st->done) stuck.push_back(st->name);
  }
  if (stuck.empty()) return;
  std::ostringstream os;
  os << "deadlock: " << stuck.size()
     << " process(es) blocked with no pending events:";
  for (const auto& n : stuck) os << ' ' << n;
  throw DeadlockError(os.str());
}

}  // namespace dcuda::sim
