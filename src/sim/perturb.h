#pragma once

// Schedule perturbation policy (docs/TESTING.md).
//
// The simulator is deterministic: events fire in (time, insertion-sequence)
// order, so every run exercises exactly one of the many schedules the modeled
// hardware could produce. A Perturbation explores the others without giving
// up reproducibility: all decisions derive from one uint64 seed through
// per-class splitmix64 streams, so a run is replayed bit-identically by
// re-seeding — there is no hidden global state.
//
// Five decision classes, each independently maskable (the fuzz harness
// shrinks failures to a minimal class set):
//  * kTieBreak — shuffles the firing order of same-timestamp events by
//    replacing the engine's insertion-sequence tie-break with seeded random
//    priority bits. Causality is untouched: events at distinct times keep
//    their order.
//  * kLinkJitter — bounded, seed-derived extra latency on net/fabric
//    deliveries and PCIe transaction completions. Callers clamp the jittered
//    times so documented hardware ordering rules survive (per-(src,dst)
//    fabric FIFO, posted-write commit order per PCIe direction).
//  * kSmPick — varies which SM receives the next resident block among
//    equally loaded candidates (gpu/device block dispatch).
//  * kFault — fault-injection coins for the lossy fabric (net::FaultConfig):
//    per-packet drop/duplicate/corrupt/delay/link-down decisions drawn at
//    transmit and delivery time (net/fabric.cc). Draws happen only when a
//    fault probability is configured, so fault-free runs never touch the
//    stream.
//  * kRoute — adaptive route-selection rotation for the topology-aware
//    fabric (net/router.cc): which of a pair's equal-cost paths carries the
//    next message. Draws happen only in RouteMode::kAdaptive on a multi-path
//    topology, so flat and ECMP runs never touch the stream.
//
// Every decision is counted and the most recent ones are kept in a small
// ring, so a failing seed can print where the schedule diverged.

#include <cstddef>
#include <cstdint>

#include "sim/units.h"

namespace dcuda::sim {

class Perturbation {
 public:
  enum Class : std::uint32_t {
    kTieBreak = 1u << 0,
    kLinkJitter = 1u << 1,
    kSmPick = 1u << 2,
    kFault = 1u << 3,
    kRoute = 1u << 4,
  };
  static constexpr std::uint32_t kAllClasses =
      kTieBreak | kLinkJitter | kSmPick | kFault | kRoute;
  static constexpr int kNumClasses = 5;

  // Minimal separation call sites add when clamping jittered completion
  // times to preserve a hardware ordering rule (fabric per-pair FIFO, PCIe
  // posted-write commit order): strictly increasing times keep the ordered
  // events out of the tie-break shuffle.
  static constexpr Dur kOrderEpsilon = 1e-9;

  explicit Perturbation(std::uint64_t seed, std::uint32_t classes = kAllClasses)
      : seed_(seed), classes_(classes) {
    for (int c = 0; c < kNumClasses; ++c) {
      // Decorrelate the class streams: distinct odd offsets into splitmix64.
      state_[c] = seed_ ^ (0x632be59bd9b4e019ull * static_cast<std::uint64_t>(2 * c + 1));
    }
  }

  std::uint64_t seed() const { return seed_; }
  std::uint32_t classes() const { return classes_; }
  bool has(Class c) const { return (classes_ & c) != 0u; }

  // Random tie-break priority for a newly scheduled event. The engine packs
  // this into the high bits of its heap key in place of the insertion
  // sequence; equal priorities fall back to the slot index, so ordering
  // stays total and replays stay exact.
  std::uint64_t tiebreak_bits() { return draw(0, kTieBreak); }

  // Bounded extra delay in [0, max_jitter). Returns 0 when kLinkJitter is
  // masked off, so call sites need no guard.
  Dur jitter(Dur max_jitter) {
    const std::uint64_t r = draw(1, kLinkJitter);
    if (!has(kLinkJitter) || max_jitter <= 0.0) return 0.0;
    return max_jitter * static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform pick in [0, n) for SM tie-breaks; 0 when kSmPick is masked off
  // (the engine's default: lowest index wins).
  int pick(int n) {
    const std::uint64_t r = draw(2, kSmPick);
    if (!has(kSmPick) || n <= 1) return 0;
    return static_cast<int>(r % static_cast<std::uint64_t>(n));
  }

  // Fault-injection coin: true with probability p. Draws from the kFault
  // stream only for p > 0, so a fault class with zero probability consumes
  // nothing — a run is a pure function of (seed, classes, FaultConfig).
  bool fault(double p) {
    if (!has(kFault) || p <= 0.0) return false;
    const std::uint64_t r = draw(3, kFault);
    return static_cast<double>(r >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  // Adaptive route rotation in [0, n) for the multi-path fabric; 0 when
  // kRoute is masked off (the router's own deterministic rotation wins).
  int route_pick(int n) {
    const std::uint64_t r = draw(4, kRoute);
    if (!has(kRoute) || n <= 1) return 0;
    return static_cast<int>(r % static_cast<std::uint64_t>(n));
  }

  // -- Introspection for failure reports -------------------------------

  std::uint64_t decisions(Class c) const {
    return decisions_[class_index(c)];
  }
  std::uint64_t total_decisions() const {
    return decisions_[0] + decisions_[1] + decisions_[2] + decisions_[3] +
           decisions_[4];
  }

  struct Decision {
    Class cls;
    std::uint64_t value;
  };
  static constexpr std::size_t kTraceCap = 32;
  // The last up-to-kTraceCap decisions, oldest first.
  std::size_t trace(Decision out[kTraceCap]) const {
    const std::size_t n = trace_count_ < kTraceCap ? trace_count_ : kTraceCap;
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = trace_[(trace_count_ - n + i) % kTraceCap];
    }
    return n;
  }

 private:
  static int class_index(Class c) {
    return c == kTieBreak
               ? 0
               : (c == kLinkJitter ? 1
                                   : (c == kSmPick ? 2 : (c == kFault ? 3 : 4)));
  }

  // Draw from a class stream. Masked classes still draw nothing — the
  // stream only advances when the class is active, so enabling one class
  // reproduces exactly the decisions it made in an all-classes run of the
  // same seed for as long as the schedules coincide.
  std::uint64_t draw(int idx, Class c) {
    if (!has(c)) return 0;
    std::uint64_t z = (state_[idx] += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    ++decisions_[idx];
    trace_[trace_count_++ % kTraceCap] = Decision{c, z};
    return z;
  }

  std::uint64_t seed_;
  std::uint32_t classes_;
  std::uint64_t state_[kNumClasses] = {};
  std::uint64_t decisions_[kNumClasses] = {};
  Decision trace_[kTraceCap] = {};
  std::size_t trace_count_ = 0;
};

}  // namespace dcuda::sim
