#pragma once

// Thread-local shard context (docs/PERF.md, "Parallel engine").
//
// The sharded engine executes each shard's events on whichever worker
// thread its executor group landed on; while a shard runs, the executing
// thread carries (engine, shard index) here. Components that keep
// per-shard storage but hold no Simulation reference at their call sites
// (the Tracer's span buffers, the Fabric's fault counters) route writes
// through current_shard_index(). Outside any shard execution — machine
// construction before the guards are set up, post-run accessors — the
// index is 0, which is also the only shard of an unsharded engine.

namespace dcuda::sim {

namespace detail {
struct ShardContext {
  const void* engine = nullptr;  // the Simulation whose shard is executing
  void* active = nullptr;        // that engine's Shard* (set with `engine`)
  int shard = 0;
};
inline thread_local ShardContext tls_shard_ctx;
}  // namespace detail

inline int current_shard_index() { return detail::tls_shard_ctx.shard; }

}  // namespace dcuda::sim
