#pragma once

// Trace exporters: Chrome trace_event JSON (loadable in chrome://tracing
// and Perfetto's ui.perfetto.dev) and a compact text summary with overlap
// and wait statistics. See docs/OBSERVABILITY.md for the event taxonomy,
// the counter definitions, and a worked example.

#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.h"
#include "sim/trace.h"

namespace dcuda::sim {

// One traced run (e.g. one benchmark variant). Groups are merged into a
// single Chrome trace; each (group, device) pair becomes one process so
// variants sit side by side in the timeline.
struct TracerGroup {
  const Tracer* tracer = nullptr;
  std::string label;  // process-name prefix, e.g. "dCUDA" / "MPI-CUDA"
};

// Writes the merged groups as Chrome trace_event JSON ("traceEvents"
// array object format): process/thread metadata, "X" complete events for
// spans (ts/dur in microseconds), "C" counter events for counter samples.
// Events are emitted in nondecreasing timestamp order.
void export_chrome(std::ostream& os, const std::vector<TracerGroup>& groups);

inline void export_chrome(std::ostream& os, const Tracer& t,
                          const std::string& label = "") {
  export_chrome(os, std::vector<TracerGroup>{{&t, label}});
}

// Convenience: writes to `path`; returns false if the file cannot be opened.
bool export_chrome_file(const std::string& path,
                        const std::vector<TracerGroup>& groups);

// Aggregate statistics of one traced run (definitions in
// docs/OBSERVABILITY.md).
struct TraceSummary {
  std::size_t num_spans = 0;
  int lanes = 0;              // distinct (device, lane) pairs
  Time t0 = 0.0, t1 = 0.0;    // span time range
  double wall = 0.0;          // t1 - t0

  double by_category[kNumCategories] = {};  // summed span time per category

  // Overlap: per device, the union of compute-class intervals (compute,
  // memory) is intersected with the union of communication-class intervals
  // (put, get, notify, pcie, fabric, queue, drain); summed over devices.
  double compute_time = 0.0;   // union of compute-class intervals
  double comm_time = 0.0;      // union of communication-class intervals
  double overlap_time = 0.0;   // |compute ∩ comm|
  double overlap_ratio = 0.0;  // overlap_time / comm_time (0 when no comm)

  // Wait: total time ranks spend blocked in wait_notifications and the
  // fraction of all rank-lane span time it represents.
  double wait_total = 0.0;
  double wait_fraction = 0.0;
  Summary wait_us;  // distribution of individual wait durations [µs]
};

TraceSummary summarize(const Tracer& t);

// Compact text rendering of summarize(): per-category time table, overlap
// ratio, wait-time distribution (p50/p90/p99), and the tracer's scalar
// metrics. Stable formatting — a golden test pins it down.
void write_summary(std::ostream& os, const Tracer& t,
                   const std::string& label = "");

}  // namespace dcuda::sim
