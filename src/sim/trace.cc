#include "sim/trace.h"

#include <algorithm>
#include <iomanip>
#include <map>

namespace dcuda::sim {

void Tracer::render_ascii(std::ostream& os, int columns) const {
  if (spans_.empty()) {
    os << "(no trace spans)\n";
    return;
  }
  Time t0 = spans_.front().begin, t1 = spans_.front().end;
  for (const auto& s : spans_) {
    t0 = std::min(t0, s.begin);
    t1 = std::max(t1, s.end);
  }
  if (t1 <= t0) t1 = t0 + 1e-9;
  const double dt = (t1 - t0) / columns;

  // lane key -> per-column dominant activity time
  std::map<std::pair<int, int>, std::vector<std::map<std::string, double>>> rows;
  for (const auto& s : spans_) {
    auto& row = rows[{s.device, s.lane}];
    if (row.empty()) row.resize(static_cast<std::size_t>(columns));
    const int c0 = std::clamp(static_cast<int>((s.begin - t0) / dt), 0, columns - 1);
    const int c1 = std::clamp(static_cast<int>((s.end - t0) / dt), 0, columns - 1);
    for (int c = c0; c <= c1; ++c) {
      const Time cell_b = t0 + c * dt, cell_e = cell_b + dt;
      const double overlap = std::min(s.end, cell_e) - std::max(s.begin, cell_b);
      if (overlap > 0) row[static_cast<std::size_t>(c)][s.activity] += overlap;
    }
  }

  os << "time: " << to_micros(t0) << "us .. " << to_micros(t1) << "us ('.' idle)\n";
  for (const auto& [key, row] : rows) {
    os << "dev" << key.first << " lane" << std::setw(3) << key.second << " |";
    for (const auto& cell : row) {
      char ch = '.';
      double best = 0.0;
      for (const auto& [act, dur] : cell) {
        if (dur > best) {
          best = dur;
          ch = act.empty() ? '?' : act[0];
        }
      }
      os << ch;
    }
    os << "|\n";
  }
}

}  // namespace dcuda::sim
