#include "sim/trace.h"

#include <algorithm>
#include <iomanip>
#include <map>

namespace dcuda::sim {

namespace {

// Sort key for merging per-shard buffers: primary timestamp, then the
// (shard, insertion index) pair, which is unique and independent of the
// executor configuration — so the merged order is a pure function of the
// logical schedule.
struct MergeKey {
  Time t;
  std::size_t shard;
  std::size_t idx;
  bool operator<(const MergeKey& o) const {
    if (t != o.t) return t < o.t;
    if (shard != o.shard) return shard < o.shard;
    return idx < o.idx;
  }
};

}  // namespace

void Tracer::merge() const {
  std::uint64_t ops = 0;
  for (const auto& b : bufs_) ops += b->ops;
  if (ops == merged_ops_) return;
  merged_ops_ = ops;

  spans_merged_.clear();
  samples_merged_.clear();
  values_merged_.clear();
  metrics_merged_.clear();

  if (bufs_.size() == 1) {
    // Single shard: the merged view is exactly the insertion order (the
    // historical, pre-sharding output).
    spans_merged_ = bufs_[0]->spans;
    samples_merged_ = bufs_[0]->samples;
    values_merged_ = bufs_[0]->counter_values;
    metrics_merged_ = bufs_[0]->metrics;
    return;
  }

  std::vector<std::pair<MergeKey, const TraceSpan*>> span_order;
  std::vector<std::pair<MergeKey, const CounterSample*>> sample_order;
  for (std::size_t sh = 0; sh < bufs_.size(); ++sh) {
    const ShardBuf& b = *bufs_[sh];
    for (std::size_t i = 0; i < b.spans.size(); ++i) {
      span_order.push_back({{b.spans[i].begin, sh, i}, &b.spans[i]});
    }
    for (std::size_t i = 0; i < b.samples.size(); ++i) {
      sample_order.push_back({{b.samples[i].t, sh, i}, &b.samples[i]});
    }
    for (const auto& [name, v] : b.metrics) metrics_merged_[name] += v;
  }
  std::sort(span_order.begin(), span_order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(sample_order.begin(), sample_order.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  spans_merged_.reserve(span_order.size());
  for (const auto& [key, s] : span_order) spans_merged_.push_back(*s);
  samples_merged_.reserve(sample_order.size());
  for (const auto& [key, s] : sample_order) {
    samples_merged_.push_back(*s);
    // Final counter values: last write in merged order wins (a counter's
    // device lives on one shard, so this matches that shard's running
    // value).
    values_merged_[{s->device, s->name}] = s->value;
  }
}

void Tracer::render_ascii(std::ostream& os, int columns) const {
  const std::vector<TraceSpan>& all = spans();
  if (all.empty()) {
    os << "(no trace spans)\n";
    return;
  }
  Time t0 = all.front().begin, t1 = all.front().end;
  for (const auto& s : all) {
    t0 = std::min(t0, s.begin);
    t1 = std::max(t1, s.end);
  }
  if (t1 <= t0) t1 = t0 + 1e-9;
  const double dt = (t1 - t0) / columns;

  // lane key -> per-column dominant activity time
  std::map<std::pair<int, int>, std::vector<std::map<std::string, double>>> rows;
  for (const auto& s : all) {
    auto& row = rows[{s.device, s.lane}];
    if (row.empty()) row.resize(static_cast<std::size_t>(columns));
    const int c0 = std::clamp(static_cast<int>((s.begin - t0) / dt), 0, columns - 1);
    const int c1 = std::clamp(static_cast<int>((s.end - t0) / dt), 0, columns - 1);
    for (int c = c0; c <= c1; ++c) {
      const Time cell_b = t0 + c * dt, cell_e = cell_b + dt;
      const double overlap = std::min(s.end, cell_e) - std::max(s.begin, cell_b);
      if (overlap > 0) row[static_cast<std::size_t>(c)][s.activity] += overlap;
    }
  }

  os << "time: " << to_micros(t0) << "us .. " << to_micros(t1) << "us ('.' idle)\n";
  for (const auto& [key, row] : rows) {
    os << "dev" << key.first << " lane" << std::setw(3) << key.second << " |";
    for (const auto& cell : row) {
      char ch = '.';
      double best = 0.0;
      for (const auto& [act, dur] : cell) {
        if (dur > best) {
          best = dur;
          ch = act.empty() ? '?' : act[0];
        }
      }
      os << ch;
    }
    os << "|\n";
  }
}

}  // namespace dcuda::sim
