#pragma once

// Centralized DCUDA_* environment parsing (docs/API.md, "Environment
// variables"). This module is the single translation unit that interprets
// DCUDA_* values: benches, tests, and the cluster workload generator all go
// through it, so a knob behaves identically everywhere and an invalid value
// is always a hard error instead of a silently half-applied config.
//
// Two layers:
//  * try_* functions validate and report: they return the first error
//    message (including the valid-values list) and never exit, which is
//    what the parser unit tests drive.
//  * the plain wrappers (apply_env, cluster_env, env_int, ...) are what
//    binaries call: on any invalid value they print the error to stderr and
//    exit(2) — a benchmark must never run with a partially-applied config.

#include <cstdint>
#include <optional>
#include <string>

#include "sim/config.h"

namespace dcuda::sim {

// Scheduling policy requested through DCUDA_SCHED (cluster/ gang scheduler,
// docs/CLUSTER.md). Parsed here so the spelling is validated in one place;
// cluster::Scheduler maps it onto its Policy enum.
enum class SchedPolicyEnv { kFifo, kBackfill, kFairShare };

// Cluster-layer env knobs (not MachineConfig fields).
struct ClusterEnv {
  SchedPolicyEnv sched = SchedPolicyEnv::kFifo;
  bool sched_set = false;        // DCUDA_SCHED was present
  std::optional<int> jobs;       // DCUDA_JOBS: open-arrival job count
};

// Applies every DCUDA_* machine knob to cfg:
//   DCUDA_PERTURB_SEED, DCUDA_FAULT_{DROP,DUP,CORRUPT,DELAY,LINKDOWN},
//   DCUDA_SHARDS, DCUDA_THREADS, DCUDA_TOPOLOGY, DCUDA_RAILS, DCUDA_ROUTE,
//   DCUDA_BACKEND.
// Returns std::nullopt on success, otherwise the first error (cfg may then
// be partially updated — treat any error as fatal).
std::optional<std::string> try_apply_env(MachineConfig& cfg);

// Hard-exit wrapper used by binaries: prints the error and exits(2).
void apply_env(MachineConfig& cfg);

std::optional<std::string> try_cluster_env(ClusterEnv& env);
ClusterEnv cluster_env();

// Typed accessors for the DCUDA_* dials that are not MachineConfig fields
// (bench iteration counts, fuzz seed counts, ...). Strict full-string
// parses; an invalid value hard-exits with the expected format.
int env_int(const char* name, int dflt);
std::uint64_t env_u64(const char* name, std::uint64_t dflt);
std::optional<std::uint64_t> env_u64_opt(const char* name);
std::optional<std::string> env_string(const char* name);

// try_* variants of the typed accessors (parser unit tests).
std::optional<std::string> try_env_int(const char* name, int dflt, int* out);
std::optional<std::string> try_env_u64(const char* name, std::uint64_t dflt,
                                       std::uint64_t* out);

}  // namespace dcuda::sim
