#pragma once

// Coroutine process type for the discrete-event simulator.
//
// A Proc<T> is a lazily-started coroutine. Awaiting it starts the child and
// transfers control back to the parent (symmetric transfer) when the child
// reaches final_suspend. Root processes are started with Simulation::spawn,
// which drives them from the event queue and self-destroys the frame at
// completion. Exceptions propagate to the awaiter / join handle.
//
// All of this is strictly single-threaded: the simulator owns every resume.

#include <coroutine>
#include <exception>
#include <functional>
#include <optional>
#include <utility>

namespace dcuda::sim {

template <typename T = void>
class Proc;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;  // parent awaiting this coroutine
  std::exception_ptr exception;
  // Set by Simulation::spawn for root coroutines; invoked at final suspend.
  std::function<void()> on_final;
  bool detached = false;  // frame self-destroys at final suspend

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename P>
    std::coroutine_handle<> await_suspend(std::coroutine_handle<P> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.continuation) return p.continuation;
      if (p.on_final) p.on_final();
      if (p.detached) h.destroy();
      return std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Proc<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
};

template <>
struct Promise<void> : PromiseBase {
  Proc<void> get_return_object();
  void return_void() noexcept {}
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Proc {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Proc() = default;
  explicit Proc(Handle h) : h_(h) {}
  Proc(Proc&& o) noexcept : h_(std::exchange(o.h_, nullptr)) {}
  Proc& operator=(Proc&& o) noexcept {
    if (this != &o) {
      reset();
      h_ = std::exchange(o.h_, nullptr);
    }
    return *this;
  }
  Proc(const Proc&) = delete;
  Proc& operator=(const Proc&) = delete;
  ~Proc() { reset(); }

  bool valid() const { return static_cast<bool>(h_); }

  // Releases ownership of the handle (used by Simulation::spawn, which marks
  // the coroutine detached so the frame self-destroys at completion).
  Handle release() { return std::exchange(h_, nullptr); }

  struct Awaiter {
    Handle h;
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
      h.promise().continuation = parent;
      return h;  // start the child now
    }
    T await_resume() {
      if (h.promise().exception) std::rethrow_exception(h.promise().exception);
      if constexpr (!std::is_void_v<T>) return std::move(*h.promise().value);
    }
  };

  // Awaiting a Proc consumes it; the wrapper keeps ownership so the frame is
  // destroyed when the (temporary) Proc goes out of scope in the caller.
  Awaiter operator co_await() & { return Awaiter{h_}; }
  Awaiter operator co_await() && { return Awaiter{h_}; }

 private:
  void reset() {
    if (h_) {
      h_.destroy();
      h_ = nullptr;
    }
  }
  Handle h_;
};

namespace detail {

template <typename T>
Proc<T> Promise<T>::get_return_object() {
  return Proc<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Proc<void> Promise<void>::get_return_object() {
  return Proc<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace dcuda::sim
