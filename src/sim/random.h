#pragma once

// Deterministic pseudo-random numbers (splitmix64 core). The simulator never
// consumes global randomness: every stochastic workload owns a seeded Rng so
// runs are reproducible bit-for-bit.

#include <cstdint>

namespace dcuda::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  // Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * next_double(); }

  // Uniform integer in [0, n).
  std::uint64_t next_below(std::uint64_t n) { return n ? next_u64() % n : 0; }

  // Uniform integer in [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  std::uint64_t state_;
};

}  // namespace dcuda::sim
