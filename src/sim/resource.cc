#include "sim/resource.h"

#include <algorithm>
#include <cassert>

namespace dcuda::sim {

namespace {
// Virtual-clock slack for simultaneous completions: jobs whose end lies
// within this relative distance of the clock complete together.
constexpr double kRelEps = 1e-9;
}  // namespace

SharedResource::SharedResource(Simulation& sim, double capacity, double per_job_cap)
    : sim_(sim),
      owner_shard_(sim.current_shard()),
      capacity_(capacity),
      per_job_cap_(per_job_cap) {
  assert(capacity > 0.0);
  assert(per_job_cap > 0.0);
}

double SharedResource::rate_per_job() const {
  if (job_count_ == 0) return 0.0;
  return std::min(per_job_cap_, capacity_ / static_cast<double>(job_count_));
}

void SharedResource::advance() {
  const Time now = sim_.now();
  const double dt = now - last_update_;
  if (dt > 0.0 && job_count_ > 0) {
    const double r = rate_per_job();
    vclock_ += dt * r;
    work_done_ += dt * r * static_cast<double>(job_count_);
    busy_time_ += dt;
  }
  last_update_ = now;
}

void SharedResource::insert_job(double end, std::coroutine_handle<> h) {
  const Job job{end, next_job_seq_++, h};
  std::size_t i = jobs_.size();
  jobs_.push_back(job);
  while (i > 0) {
    const std::size_t parent = (i - 1) >> 2;
    if (!job_less(job, jobs_[parent])) break;
    jobs_[i] = jobs_[parent];
    i = parent;
  }
  jobs_[i] = job;
  ++job_count_;
}

SharedResource::Job SharedResource::pop_min_job() {
  const Job top = jobs_.front();
  const Job last = jobs_.back();
  jobs_.pop_back();
  const std::size_t n = jobs_.size();
  if (n > 0) {
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t min_child = first;
      const std::size_t end = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < end; ++c) {
        if (job_less(jobs_[c], jobs_[min_child])) min_child = c;
      }
      if (!job_less(jobs_[min_child], last)) break;
      jobs_[i] = jobs_[min_child];
      i = min_child;
    }
    jobs_[i] = last;
  }
  --job_count_;
  return top;
}

void SharedResource::add_job(double work, std::coroutine_handle<> h) {
  assert_affinity();
  advance();
  insert_job(vclock_ + std::max(work, 0.0), h);
  reschedule();
}

void SharedResource::reschedule() {
  completion_.cancel();
  if (job_count_ == 0) return;
  const double next_end = jobs_.front().end;
  const double r = rate_per_job();
  const double dt = std::max(0.0, (next_end - vclock_) / r);
  completion_ = sim_.schedule_cancellable(dt, [this] { on_complete(); });
}

void SharedResource::on_complete() {
  advance();
  // Pop every job whose end time is reached (allowing for rounding slack).
  // schedule_resume only enqueues, so resuming in pop order — (end, seq)
  // ascending — preserves the deterministic completion order without a
  // scratch vector.
  const double cutoff = vclock_ * (1.0 + kRelEps) + 1e-18;
  std::size_t finished = 0;
  while (!jobs_.empty() && jobs_.front().end <= cutoff) {
    sim_.schedule_resume(pop_min_job().h);
    ++finished;
  }
  assert(finished > 0);
  (void)finished;
  reschedule();
}

double SharedResource::work_done() const {
  // Include service accrued since the last event.
  const double dt = sim_.now() - last_update_;
  return work_done_ +
         (job_count_ == 0 ? 0.0
                          : dt * rate_per_job() * static_cast<double>(job_count_));
}

double SharedResource::busy_time() const {
  const double dt = sim_.now() - last_update_;
  return busy_time_ + (job_count_ == 0 ? 0.0 : dt);
}

}  // namespace dcuda::sim
