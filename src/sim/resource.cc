#include "sim/resource.h"

#include <algorithm>
#include <cassert>

namespace dcuda::sim {

namespace {
// Virtual-clock slack for simultaneous completions: jobs whose end lies
// within this relative distance of the clock complete together.
constexpr double kRelEps = 1e-9;
}  // namespace

SharedResource::SharedResource(Simulation& sim, double capacity, double per_job_cap)
    : sim_(sim), capacity_(capacity), per_job_cap_(per_job_cap) {
  assert(capacity > 0.0);
  assert(per_job_cap > 0.0);
}

double SharedResource::rate_per_job() const {
  if (jobs_.empty()) return 0.0;
  return std::min(per_job_cap_, capacity_ / static_cast<double>(jobs_.size()));
}

void SharedResource::advance() {
  const Time now = sim_.now();
  const double dt = now - last_update_;
  if (dt > 0.0 && !jobs_.empty()) {
    const double r = rate_per_job();
    vclock_ += dt * r;
    work_done_ += dt * r * static_cast<double>(jobs_.size());
    busy_time_ += dt;
  }
  last_update_ = now;
}

void SharedResource::add_job(double work, std::coroutine_handle<> h) {
  advance();
  jobs_.emplace(vclock_ + std::max(work, 0.0), h);
  reschedule();
}

void SharedResource::reschedule() {
  completion_.cancel();
  if (jobs_.empty()) return;
  const double next_end = jobs_.begin()->first;
  const double r = rate_per_job();
  const double dt = std::max(0.0, (next_end - vclock_) / r);
  completion_ = sim_.schedule_cancellable(dt, [this] { on_complete(); });
}

void SharedResource::on_complete() {
  advance();
  // Pop every job whose end time is reached (allowing for rounding slack).
  const double cutoff = vclock_ * (1.0 + kRelEps) + 1e-18;
  std::vector<std::coroutine_handle<>> finished;
  while (!jobs_.empty() && jobs_.begin()->first <= cutoff) {
    finished.push_back(jobs_.begin()->second);
    jobs_.erase(jobs_.begin());
  }
  assert(!finished.empty());
  for (auto h : finished) sim_.schedule_resume(h);
  reschedule();
}

double SharedResource::work_done() const {
  // Include service accrued since the last event.
  const double dt = sim_.now() - last_update_;
  return work_done_ + (jobs_.empty() ? 0.0 : dt * rate_per_job() * static_cast<double>(jobs_.size()));
}

double SharedResource::busy_time() const {
  const double dt = sim_.now() - last_update_;
  return busy_time_ + (jobs_.empty() ? 0.0 : dt);
}

}  // namespace dcuda::sim
