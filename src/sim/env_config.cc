#include "sim/env_config.h"

#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace dcuda::sim {

namespace {

// Strict full-string parses: leading/trailing junk, overflow, and empty
// numeric strings are errors (std::atoi's silent 0 is exactly the
// partially-applied-config bug this module exists to close).
bool parse_u64(const char* s, std::uint64_t* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 0);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (std::strchr(s, '-') != nullptr) return false;  // strtoull wraps negatives
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_int(const char* s, int* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 0);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (v < INT_MIN || v > INT_MAX) return false;
  *out = static_cast<int>(v);
  return true;
}

bool parse_prob(const char* s, double* out) {
  if (s == nullptr || *s == '\0') return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') return false;
  if (!(v >= 0.0 && v <= 1.0)) return false;
  *out = v;
  return true;
}

std::string bad(const char* name, const char* value, const char* expected) {
  std::string m = "invalid ";
  m += name;
  m += "='";
  m += value;
  m += "' (";
  m += expected;
  m += ")";
  return m;
}

}  // namespace

std::optional<std::string> try_apply_env(MachineConfig& cfg) {
  // DCUDA_PERTURB_SEED=<uint64> reruns under a seeded schedule perturbation
  // (docs/TESTING.md); unset or 0 keeps the canonical schedule.
  if (const char* s = std::getenv("DCUDA_PERTURB_SEED")) {
    if (!parse_u64(s, &cfg.perturb_seed)) {
      return bad("DCUDA_PERTURB_SEED", s, "expected an unsigned 64-bit integer");
    }
  }
  // DCUDA_FAULT_DROP / _DUP / _CORRUPT / _DELAY / _LINKDOWN=<probability>
  // arm the lossy fabric with go-back-N recovery (net/fault.h).
  struct FaultVar {
    const char* name;
    double* out;
  };
  const FaultVar faults[] = {
      {"DCUDA_FAULT_DROP", &cfg.fault.drop_prob},
      {"DCUDA_FAULT_DUP", &cfg.fault.dup_prob},
      {"DCUDA_FAULT_CORRUPT", &cfg.fault.corrupt_prob},
      {"DCUDA_FAULT_DELAY", &cfg.fault.delay_prob},
      {"DCUDA_FAULT_LINKDOWN", &cfg.fault.link_down_prob},
  };
  for (const FaultVar& f : faults) {
    if (const char* s = std::getenv(f.name)) {
      if (!parse_prob(s, f.out)) {
        return bad(f.name, s, "expected a probability in [0, 1]");
      }
    }
  }
  // DCUDA_SHARDS=<n> / DCUDA_THREADS=<n> configure the parallel event engine
  // (docs/PERF.md): executor-group count (0 = auto, one group per node
  // shard) and worker-thread count. Results are byte-identical for every
  // setting — check_determinism.sh verifies it.
  if (const char* s = std::getenv("DCUDA_SHARDS")) {
    if (!parse_int(s, &cfg.shards) || cfg.shards < 0) {
      return bad("DCUDA_SHARDS", s, "expected an integer >= 0");
    }
  }
  if (const char* s = std::getenv("DCUDA_THREADS")) {
    if (!parse_int(s, &cfg.threads) || cfg.threads < 1) {
      return bad("DCUDA_THREADS", s, "expected an integer >= 1");
    }
  }
  // DCUDA_TOPOLOGY selects the interconnect topology, DCUDA_RAILS the NIC
  // rail count, DCUDA_ROUTE the route-selection mode (docs/TOPOLOGY.md).
  // Unset keeps the flat single-rail default with its byte-identical event
  // schedule.
  if (const char* s = std::getenv("DCUDA_TOPOLOGY")) {
    const std::string v = s;
    if (v == "fattree" || v == "fat_tree" || v == "fat-tree") {
      cfg.net.topo.kind = net::TopologyKind::kFatTree;
    } else if (v == "torus" || v == "torus3d") {
      cfg.net.topo.kind = net::TopologyKind::kTorus3D;
    } else if (v == "flat" || v.empty()) {
      cfg.net.topo.kind = net::TopologyKind::kFlat;
    } else {
      return bad("DCUDA_TOPOLOGY", s, "use flat, fattree, or torus");
    }
  }
  if (const char* s = std::getenv("DCUDA_RAILS")) {
    if (!parse_int(s, &cfg.net.topo.rails) || cfg.net.topo.rails < 1) {
      return bad("DCUDA_RAILS", s, "expected an integer >= 1");
    }
  }
  if (const char* s = std::getenv("DCUDA_ROUTE")) {
    const std::string v = s;
    if (v == "adaptive") {
      cfg.net.topo.route = net::RouteMode::kAdaptive;
    } else if (v == "ecmp" || v.empty()) {
      cfg.net.topo.route = net::RouteMode::kEcmp;
    } else {
      return bad("DCUDA_ROUTE", s, "use ecmp or adaptive");
    }
  }
  // DCUDA_BACKEND=host|device selects the runtime backend (docs/BACKENDS.md).
  if (const char* s = std::getenv("DCUDA_BACKEND")) {
    const std::string v = s;
    if (v == "device" || v == "device_initiated" || v == "1") {
      cfg.backend = RuntimeBackend::kDeviceInitiated;
    } else if (v == "host" || v == "host_loop" || v == "0" || v.empty()) {
      cfg.backend = RuntimeBackend::kHostLoop;
    } else {
      return bad("DCUDA_BACKEND", s, "use host or device");
    }
  }
  return std::nullopt;
}

void apply_env(MachineConfig& cfg) {
  if (auto err = try_apply_env(cfg)) {
    std::fprintf(stderr, "error: %s\n", err->c_str());
    std::exit(2);
  }
}

std::optional<std::string> try_cluster_env(ClusterEnv& env) {
  // DCUDA_SCHED picks the gang-scheduling policy, DCUDA_JOBS the open-
  // arrival job count of the reference workload (docs/CLUSTER.md).
  if (const char* s = std::getenv("DCUDA_SCHED")) {
    const std::string v = s;
    if (v == "fifo") {
      env.sched = SchedPolicyEnv::kFifo;
    } else if (v == "backfill") {
      env.sched = SchedPolicyEnv::kBackfill;
    } else if (v == "fairshare" || v == "fair_share" || v == "fair-share") {
      env.sched = SchedPolicyEnv::kFairShare;
    } else {
      return bad("DCUDA_SCHED", s, "use fifo, backfill, or fairshare");
    }
    env.sched_set = true;
  }
  if (const char* s = std::getenv("DCUDA_JOBS")) {
    int n = 0;
    if (!parse_int(s, &n) || n < 1) {
      return bad("DCUDA_JOBS", s, "expected an integer >= 1");
    }
    env.jobs = n;
  }
  return std::nullopt;
}

ClusterEnv cluster_env() {
  ClusterEnv env;
  if (auto err = try_cluster_env(env)) {
    std::fprintf(stderr, "error: %s\n", err->c_str());
    std::exit(2);
  }
  return env;
}

std::optional<std::string> try_env_int(const char* name, int dflt, int* out) {
  *out = dflt;
  if (const char* s = std::getenv(name)) {
    if (!parse_int(s, out)) return bad(name, s, "expected an integer");
  }
  return std::nullopt;
}

std::optional<std::string> try_env_u64(const char* name, std::uint64_t dflt,
                                       std::uint64_t* out) {
  *out = dflt;
  if (const char* s = std::getenv(name)) {
    if (!parse_u64(s, out)) {
      return bad(name, s, "expected an unsigned 64-bit integer");
    }
  }
  return std::nullopt;
}

int env_int(const char* name, int dflt) {
  int v = dflt;
  if (auto err = try_env_int(name, dflt, &v)) {
    std::fprintf(stderr, "error: %s\n", err->c_str());
    std::exit(2);
  }
  return v;
}

std::uint64_t env_u64(const char* name, std::uint64_t dflt) {
  std::uint64_t v = dflt;
  if (auto err = try_env_u64(name, dflt, &v)) {
    std::fprintf(stderr, "error: %s\n", err->c_str());
    std::exit(2);
  }
  return v;
}

std::optional<std::uint64_t> env_u64_opt(const char* name) {
  if (std::getenv(name) == nullptr) return std::nullopt;
  return env_u64(name, 0);
}

std::optional<std::string> env_string(const char* name) {
  if (const char* s = std::getenv(name)) return std::string(s);
  return std::nullopt;
}

}  // namespace dcuda::sim
