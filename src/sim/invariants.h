#pragma once

// Invariant oracles for schedule fuzzing (docs/TESTING.md).
//
// An InvariantObserver is an out-of-band protocol checker: components report
// state transitions through hooks (guarded by `sim.invariant_observer() !=
// nullptr`, so normal runs pay one pointer test), and the observer validates
// the ordering/conservation properties the paper's runtime guarantees:
//
//  * fabric non-overtaking — wire deliveries between a fixed (src, dst)
//    node pair carry strictly increasing sequence numbers (the FIFO
//    property MPI matching relies on; net/fabric.h).
//  * queue credit accounting — a circular queue never holds more entries
//    than its capacity and never dequeues more than was sent (§III-C's
//    single-transaction protocol depends on the credit bound).
//  * notification conservation — every notified RMA operation delivers
//    exactly one notification, and every match consumed a delivered one.
//  * notified-put sequence non-overtaking — notifications for equal-sized
//    notified puts of the same (origin rank, target rank, window) are
//    delivered in issue order (§III-B; put_2d_notify relies on exactly
//    this: equal-sized row puts, only the last carries the notification).
//    Differently-sized puts may legitimately complete out of order (eager
//    vs. rendezvous), so the key includes the byte count.
//  * window lifecycle — no RMA access to a window before its collective
//    creation completed or after its free began.
//  * barrier round agreement — no rank exits barrier round N of a
//    communicator before all participants entered round N.
//
// All tracking is out of band: no wire struct grows (simulated transaction
// sizes — and therefore all golden timings — depend on sizeof of the
// protocol structs).
//
// Violations are recorded, not thrown: an oracle failure inside an event
// callback must not unwind through the engine. The fuzz harness checks
// `violations()` after the run (and `finalize()` for the end-of-run
// conservation checks).

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace dcuda::sim {

class InvariantObserver {
 public:
  // -- Hooks (called by instrumented components) -----------------------

  // net/fabric.cc, at delivery into the destination mailbox.
  void fabric_delivered(int src, int dst, std::uint64_t wire_seq);

  // queue/circular_queue.h, after every send/recv counter change.
  void queue_credit(std::uint64_t send_count, std::uint64_t recv_count,
                    int capacity);

  // dcuda.cc issue_rma: a notified operation was issued (exactly one
  // notification must eventually be delivered for it).
  void notify_sent();

  // Ordered notified put entering its delivery channel (runtime handle_put,
  // in per-rank command order). Pairs with notify_put_delivered.
  void notify_put_ordered(int origin_rank, int target_rank,
                          std::int32_t win_global_id, std::uint64_t bytes,
                          int tag);

  // A notified put's notification handed to the target's notification
  // queue. Checks FIFO against notify_put_ordered for the same key.
  void notify_put_delivered(int origin_rank, int target_rank,
                            std::int32_t win_global_id, std::uint64_t bytes,
                            int tag);

  // Aggregated eager-put batches (runtime fast path, sim::RmaConfig): one
  // hook when the origin node flushes a batch to the fabric, one when the
  // target event handler lands it. Checks per (origin node, target node):
  // batches arrive in flush order (seq strictly consecutive — the fabric's
  // runtime channel shares the FIFO clamp) and carry the flushed record
  // count; finalize() checks every flushed batch was delivered (aggregation
  // conservation: a put parked in an aggregator must not be lost).
  void eager_batch_flushed(int origin_node, int target_node,
                           std::uint64_t batch_seq, int records);
  void eager_batch_delivered(int origin_node, int target_node,
                             std::uint64_t batch_seq, int records);

  // Any notification delivered (puts, gets, device-local ablation path).
  void notification_delivered();

  // dcuda.cc wait/test_notifications: one pending notification matched.
  void notification_matched();

  // runtime window lifecycle (global window ids; counted per node since
  // every node registers the collective window).
  void window_created(std::int32_t win_global_id);
  void window_accessed(std::int32_t win_global_id);
  void window_freed(std::int32_t win_global_id);

  // dcuda.cc barrier: device-side entry/exit. comm_key identifies the
  // barrier domain (see schedule_fuzz_test: world = -1, device comm =
  // node id), participants its size.
  void barrier_enter(int comm_key, int rank, int participants);
  void barrier_exit(int comm_key, int rank);

  // -- Results ---------------------------------------------------------

  // End-of-run conservation checks; call after Simulation::run returned.
  void finalize();

  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  // Everything recorded, one line per violation (for failure reports).
  std::string report() const;

  std::uint64_t notifications_sent() const { return sent_; }
  std::uint64_t notifications_delivered() const { return delivered_; }
  std::uint64_t notifications_matched() const { return matched_; }
  std::uint64_t checks_performed() const { return checks_; }

 private:
  void violation(std::string what);

  static constexpr std::size_t kMaxViolations = 16;

  // fabric: last wire_seq per (src, dst).
  std::map<std::pair<int, int>, std::uint64_t> fabric_seq_;

  // notified puts: FIFO of tags per (origin, target, window, bytes).
  using PutKey = std::tuple<int, int, std::int32_t, std::uint64_t>;
  std::map<PutKey, std::deque<int>> put_order_;

  // eager batches: flushed-but-undelivered (seq, records) FIFO per
  // (origin node, target node) pair.
  std::map<std::pair<int, int>, std::deque<std::pair<std::uint64_t, int>>>
      eager_batches_;
  std::uint64_t eager_flushed_ = 0;
  std::uint64_t eager_delivered_ = 0;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t matched_ = 0;
  std::uint64_t checks_ = 0;

  // windows: live registration count per global id (one per node), plus a
  // freed set to distinguish "never created" from "already freed".
  std::map<std::int32_t, int> window_live_;
  std::map<std::int32_t, bool> window_seen_;

  struct BarrierDomain {
    int participants = 0;
    std::map<int, std::uint64_t> enters;
    std::map<int, std::uint64_t> exits;
  };
  std::map<int, BarrierDomain> barriers_;

  std::vector<std::string> violations_;
  bool finalized_ = false;
};

}  // namespace dcuda::sim
