#pragma once

// Invariant oracles for schedule fuzzing (docs/TESTING.md).
//
// An InvariantObserver is an out-of-band protocol checker: components report
// state transitions through hooks (guarded by `sim.invariant_observer() !=
// nullptr`, so normal runs pay one pointer test), and the observer validates
// the ordering/conservation properties the paper's runtime guarantees:
//
//  * fabric non-overtaking — wire deliveries between a fixed (src, dst)
//    node pair carry strictly increasing sequence numbers (the FIFO
//    property MPI matching relies on; net/fabric.h).
//  * queue credit accounting — a circular queue never holds more entries
//    than its capacity and never dequeues more than was sent (§III-C's
//    single-transaction protocol depends on the credit bound).
//  * notification conservation — every notified RMA operation delivers
//    exactly one notification, and every match consumed a delivered one.
//  * notified-put sequence non-overtaking — notifications for notified
//    puts of the same (origin rank, target rank, window) are delivered in
//    issue order regardless of size (§III-B; put_2d_notify relies on
//    this: row puts, only the last carries the notification). The runtime
//    reports only the puts it promises ordering for (it skips true
//    MPI-rendezvous transfers when the eager fast path is off), so the
//    oracle checks FIFO across the eager/rendezvous protocol boundary —
//    exactly where a mixed-size stream could reorder.
//  * data-before-notification — every remote put (notified or not) is a
//    tracked data transfer; a notification must not commit while any
//    same-(origin rank, target rank) data put issued at or before it has
//    not landed. This catches a notification racing ahead of payloads
//    still in flight on the other protocol path (e.g. particles: large
//    cell puts followed by a small count put_notify).
//  * window lifecycle — no RMA access to a window before its collective
//    creation completed or after its free began.
//  * barrier round agreement — no rank exits barrier round N of a
//    communicator before all participants entered round N.
//
// All tracking is out of band: no wire struct grows (simulated transaction
// sizes — and therefore all golden timings — depend on sizeof of the
// protocol structs).
//
// Violations are recorded, not thrown: an oracle failure inside an event
// callback must not unwind through the engine. The fuzz harness checks
// `violations()` after the run (and `finalize()` for the end-of-run
// conservation checks).

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

namespace dcuda::sim {

class InvariantObserver {
 public:
  // -- Hooks (called by instrumented components) -----------------------

  // net/fabric.cc, at delivery into the destination mailbox. On the
  // topology path the sequence is the per-(src, dst) mux sequence released
  // by the rail resequencer, so cross-rail reordering that escapes the mux
  // (mutation: TopoConfig::resequence = false) fires this oracle.
  void fabric_delivered(int src, int dst, std::uint64_t wire_seq);

  // Topology oracles (net/fabric.cc multi-hop path, docs/TOPOLOGY.md):
  //  * no-routing-loop — a selected route never visits a switch twice.
  //  * link-capacity conservation — transmissions on one directed link must
  //    not overlap in time (a link serializes at its configured bandwidth;
  //    mutation: TopoConfig::account_capacity = false over-commits it).
  void route_selected(int src, int dst, const std::vector<int>& switches);
  void link_transmission(int link, double start, double end);

  // Lossy-fabric recovery oracles (net/fabric.cc go-back-N; the hooks fire
  // only while fault injection is armed, docs/TESTING.md "Loss battery"):
  //  * at-most-once delivery — an accepted connection sequence is strictly
  //    one past the previous accept (a repeat means duplicate suppression
  //    failed; a skip means the in-order filter failed).
  //  * retransmit accounting — originals carry strictly consecutive fresh
  //    sequences, retransmissions only re-send already-assigned ones, and
  //    finalize() checks loss conservation per link: every original was
  //    eventually accepted, and any recorded loss implies at least one
  //    retransmission happened to repair it.
  // `rail` keys the connection on multi-rail fabrics: go-back-N runs one
  // independent sequence space per (src, dst, rail) lane (net/rail.h).
  void fabric_packet_sent(int src, int dst, std::uint64_t seq, bool retransmit,
                          int rail = 0);
  void fabric_packet_dropped(int src, int dst, std::uint64_t seq, int rail = 0);
  void fabric_packet_accepted(int src, int dst, std::uint64_t seq, int rail = 0);

  // queue/circular_queue.h, after every send/recv counter change.
  void queue_credit(std::uint64_t send_count, std::uint64_t recv_count,
                    int capacity);

  // dcuda.cc issue_rma: a notified operation was issued (exactly one
  // notification must eventually be delivered for it).
  void notify_sent();

  // A remote put's payload entering its delivery channel / landing in the
  // target window (runtime handle_put / handle_meta / handle_eager_batch).
  // Covers notified AND non-notified puts: the pair feeds the
  // data-before-notification check, and finalize() verifies every issued
  // data put landed.
  void data_put_issued(int origin_rank, int target_rank);
  void data_put_landed(int origin_rank, int target_rank);

  // Ordered notified put entering its delivery channel (runtime handle_put,
  // in per-rank command order; call data_put_issued for the same put
  // first). Pairs with notify_put_delivered.
  void notify_put_ordered(int origin_rank, int target_rank,
                          std::int32_t win_global_id, std::uint64_t bytes,
                          int tag);

  // A notified put's notification handed to the target's notification
  // queue. Checks FIFO against notify_put_ordered for the same (origin,
  // target, window) key across sizes, and that every data put issued at or
  // before this one (same origin/target ranks) already landed.
  void notify_put_delivered(int origin_rank, int target_rank,
                            std::int32_t win_global_id, std::uint64_t bytes,
                            int tag);

  // Aggregated eager-put batches (runtime fast path, sim::RmaConfig): one
  // hook when the origin node flushes a batch to the fabric, one when the
  // target event handler lands it. Checks per (origin node, target node):
  // batches arrive in flush order (seq strictly consecutive — the fabric's
  // runtime channel shares the FIFO clamp) and carry the flushed record
  // count; finalize() checks every flushed batch was delivered (aggregation
  // conservation: a put parked in an aggregator must not be lost).
  void eager_batch_flushed(int origin_node, int target_node,
                           std::uint64_t batch_seq, int records);
  void eager_batch_delivered(int origin_node, int target_node,
                             std::uint64_t batch_seq, int records);

  // Any notification delivered. `via_board` distinguishes the device-resident
  // notification board (RuntimeBackend::kDeviceInitiated NIC→device posted
  // writes and the device-local delivery path) from the host→device
  // notification queue. Conservation — every notify_sent delivered exactly
  // once, every match consuming a delivery — holds over the sum; the
  // per-channel counts let backend tests assert which path carried them
  // (host-loop runs must report zero board deliveries for remote puts).
  void notification_delivered(bool via_board = false);

  // dcuda.cc wait/test_notifications: one pending notification matched.
  void notification_matched();

  // runtime window lifecycle (global window ids; counted per node since
  // every node registers the collective window).
  void window_created(std::int32_t win_global_id);
  void window_accessed(std::int32_t win_global_id);
  void window_freed(std::int32_t win_global_id);

  // dcuda.cc barrier: device-side entry/exit. comm_key identifies the
  // barrier domain (see schedule_fuzz_test: world = -1, device comm =
  // node id), participants its size.
  void barrier_enter(int comm_key, int rank, int participants);
  void barrier_exit(int comm_key, int rank);

  // -- Cluster gang-scheduler oracles (cluster/scheduler.cc, docs/CLUSTER.md)
  //
  // cluster_nodes arms the checks with the machine size. Then per job:
  // submitted exactly once, started at most once with a node set that is
  // in bounds, duplicate-free and disjoint from every running job's nodes
  // (no overlapping allocations), completed only after starting (frees its
  // nodes — conservation). finalize() adds: no lost jobs (every submitted
  // job completed) and zero nodes still allocated.
  void cluster_nodes(int total);
  void job_submitted(int job_id);
  void job_started(int job_id, const std::vector<int>& nodes);
  void job_completed(int job_id);

  // -- Results ---------------------------------------------------------

  // End-of-run conservation checks; call after Simulation::run returned.
  void finalize();

  const std::vector<std::string>& violations() const { return violations_; }
  bool ok() const { return violations_.empty(); }
  // Everything recorded, one line per violation (for failure reports).
  std::string report() const;

  std::uint64_t notifications_sent() const { return sent_; }
  std::uint64_t notifications_delivered() const { return delivered_; }
  std::uint64_t notifications_board_delivered() const { return board_delivered_; }
  std::uint64_t notifications_matched() const { return matched_; }
  std::uint64_t checks_performed() const { return checks_; }

 private:
  void violation(std::string what);

  static constexpr std::size_t kMaxViolations = 16;

  // Hooks may fire from any worker thread during parallel windows
  // (docs/PERF.md); one lock keeps the cross-shard tracking exact. Held by
  // shared_ptr so the observer stays copy- and move-assignable (the fuzz
  // self-tests re-assign observers between cases). Per-key state is only
  // ever touched from one shard, and the global counters are sums, so the
  // verdict does not depend on thread interleaving.
  std::shared_ptr<std::mutex> mu_ = std::make_shared<std::mutex>();

  // fabric: last wire_seq per (src, dst).
  std::map<std::pair<int, int>, std::uint64_t> fabric_seq_;

  // lossy fabric: per-(src, dst, rail) go-back-N recovery accounting.
  struct LinkRecovery {
    std::uint64_t originals = 0;      // fresh sequences transmitted
    std::uint64_t retransmits = 0;    // re-transmissions of assigned seqs
    std::uint64_t dropped = 0;        // transmissions lost on the wire
    std::uint64_t accepted = 0;       // in-order accepts at the receiver
    std::uint64_t last_accepted = 0;  // highest accepted sequence
  };
  std::map<std::tuple<int, int, int>, LinkRecovery> link_recovery_;

  // topology: busy-until frontier per directed interior link (capacity
  // conservation: a link's transmissions must not overlap).
  std::map<int, double> link_busy_;

  // notified puts: FIFO per (origin, target, window) — across sizes, so an
  // eager-path notification overtaking a rendezvous-path one is caught.
  // Each entry remembers how many same-connection data puts were issued up
  // to and including it (the data-before-notification mark).
  using PutKey = std::tuple<int, int, std::int32_t>;
  struct PendingNotify {
    int tag = 0;
    std::uint64_t bytes = 0;     // diagnostic only, not part of the key
    std::uint64_t data_mark = 0;  // conn data_issued count at issue time
  };
  std::map<PutKey, std::deque<PendingNotify>> put_order_;

  // data puts: issued/landed counts per (origin rank, target rank).
  struct ConnData {
    std::uint64_t issued = 0;
    std::uint64_t landed = 0;
  };
  std::map<std::pair<int, int>, ConnData> conn_data_;

  // eager batches: flushed-but-undelivered (seq, records) FIFO per
  // (origin node, target node) pair.
  std::map<std::pair<int, int>, std::deque<std::pair<std::uint64_t, int>>>
      eager_batches_;
  std::uint64_t eager_flushed_ = 0;
  std::uint64_t eager_delivered_ = 0;

  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t board_delivered_ = 0;  // subset of delivered_
  std::uint64_t matched_ = 0;
  std::uint64_t checks_ = 0;

  // windows: live registration count per global id (one per node), plus a
  // freed set to distinguish "never created" from "already freed".
  std::map<std::int32_t, int> window_live_;
  std::map<std::int32_t, bool> window_seen_;

  struct BarrierDomain {
    int participants = 0;
    std::map<int, std::uint64_t> enters;
    std::map<int, std::uint64_t> exits;
  };
  std::map<int, BarrierDomain> barriers_;

  // cluster scheduler: machine size, per-node owning job (allocation
  // overlap), per-job state machine.
  int cluster_total_nodes_ = 0;
  std::map<int, int> node_owner_;  // node -> running job id
  struct JobTrack {
    bool submitted = false;
    bool started = false;
    bool completed = false;
    std::vector<int> nodes;
  };
  std::map<int, JobTrack> jobs_;

  std::vector<std::string> violations_;
  bool finalized_ = false;
};

}  // namespace dcuda::sim
