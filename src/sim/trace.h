#pragma once

// Structured tracing for schedule visualizations and runtime observability.
//
// Three kinds of data, all owned by one Tracer (usually the Cluster's):
//  * spans      — begin/end intervals of named activity on a (device, lane)
//                 pair, tagged with a Category (Fig. 1's block activity,
//                 put/get issue, wire serialization, PCIe transactions, ...);
//  * counters   — time-stamped per-device value samples (queue depth,
//                 in-flight remote memory accesses, resident blocks, bytes
//                 on wire), exported as Chrome trace counter tracks;
//  * metrics    — scalar run totals (notifications matched, commands
//                 issued, tail reads) for the end-of-run text summary.
//
// Everything is guarded by enabled(): a disabled tracer costs one branch
// per instrumentation point and allocates nothing. Instrumented code must
// check enabled() (or use a `Tracer* t; if (t && t->enabled())` pattern)
// *before* constructing spans or formatting names, so the hot paths stay
// zero-cost when tracing is off.
//
// Exporters (Chrome trace_event JSON, text summary) live in
// sim/trace_export.h.

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/units.h"

namespace dcuda::sim {

// Event taxonomy (documented in docs/OBSERVABILITY.md). The category drives
// summary aggregation (compute vs. communication vs. wait) and the Chrome
// trace "cat" field.
enum class Category : std::uint8_t {
  kCompute = 0,  // SM arithmetic
  kMemory,       // device memory traffic
  kPut,          // put/put_notify issue (device-side command assembly+enqueue)
  kGet,          // get/get_notify issue
  kNotify,       // notification delivery (host -> device queue)
  kWait,         // rank blocked in wait_notifications
  kDrain,        // finish(): draining outstanding remote memory accesses
  kPcie,         // PCIe lane serialization
  kFabric,       // NIC wire serialization
  kQueue,        // circular-queue operations (flow-control stalls)
  kBarrier,      // barrier synchronization
  kOther,
};

inline constexpr int kNumCategories = 12;

constexpr const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute: return "compute";
    case Category::kMemory: return "memory";
    case Category::kPut: return "put";
    case Category::kGet: return "get";
    case Category::kNotify: return "notify";
    case Category::kWait: return "wait";
    case Category::kDrain: return "drain";
    case Category::kPcie: return "pcie";
    case Category::kFabric: return "fabric";
    case Category::kQueue: return "queue";
    case Category::kBarrier: return "barrier";
    case Category::kOther: return "other";
  }
  return "other";
}

// Lane bands: one Chrome-trace thread per (device, lane). Lanes below 1000
// are device ranks (block ids); the bands group infrastructure activity.
inline constexpr std::int32_t kHostRankLaneBase = 1000;  // + host rank index
inline constexpr std::int32_t kFabricLane = 2000;        // NIC transmit
inline constexpr std::int32_t kPcieLaneH2D = 2100;       // PCIe host->device
inline constexpr std::int32_t kPcieLaneD2H = 2101;       // PCIe device->host
inline constexpr std::int32_t kRuntimeLane = 2200;       // host event handler
inline constexpr std::int32_t kNicLane = 2300;  // NIC command processor
                                                // (kDeviceInitiated backend)

struct TraceSpan {
  Time begin = 0.0;
  Time end = 0.0;
  std::int32_t device = -1;
  std::int32_t lane = -1;  // e.g. rank or SM id; see lane bands above
  std::string activity;    // "compute", "wait", "put", ...
  Category category = Category::kOther;
  double bytes = 0.0;  // payload size when the activity moves data
};

struct CounterSample {
  Time t = 0.0;
  std::int32_t device = -1;
  std::string name;
  double value = 0.0;
};

class Tracer {
 public:
  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  void record(TraceSpan span) {
    if (enabled_) spans_.push_back(std::move(span));
  }

  // -- Counters (time series, Chrome "C" tracks) -----------------------

  // Samples an absolute value of counter `name` on `device` at time `t`.
  void counter_set(Time t, std::int32_t device, const std::string& name,
                   double value) {
    if (!enabled_) return;
    counter_values_[{device, name}] = value;
    samples_.push_back(CounterSample{t, device, name, value});
  }

  // Adjusts the running value of counter `name` on `device` by `delta` and
  // samples the result (e.g. +1 on enqueue, -1 on dequeue -> queue depth).
  void counter_add(Time t, std::int32_t device, const std::string& name,
                   double delta) {
    if (!enabled_) return;
    double& v = counter_values_[{device, name}];
    v += delta;
    samples_.push_back(CounterSample{t, device, name, v});
  }

  double counter_value(std::int32_t device, const std::string& name) const {
    auto it = counter_values_.find({device, name});
    return it == counter_values_.end() ? 0.0 : it->second;
  }

  // -- Metrics (scalar run totals, text summary) -----------------------

  void bump(const std::string& name, double delta = 1.0) {
    if (enabled_) metrics_[name] += delta;
  }

  double metric(const std::string& name) const {
    auto it = metrics_.find(name);
    return it == metrics_.end() ? 0.0 : it->second;
  }

  // -- Access ----------------------------------------------------------

  const std::vector<TraceSpan>& spans() const { return spans_; }
  const std::vector<CounterSample>& counter_samples() const { return samples_; }
  const std::map<std::string, double>& metrics() const { return metrics_; }

  void clear() {
    spans_.clear();
    samples_.clear();
    counter_values_.clear();
    metrics_.clear();
  }

  // Renders an ASCII Gantt chart: one row per (device, lane), time bucketed
  // into `columns` cells; each cell shows the dominant activity's initial.
  void render_ascii(std::ostream& os, int columns = 100) const;

 private:
  bool enabled_ = false;
  std::vector<TraceSpan> spans_;
  std::vector<CounterSample> samples_;
  std::map<std::pair<std::int32_t, std::string>, double> counter_values_;
  std::map<std::string, double> metrics_;
};

}  // namespace dcuda::sim
