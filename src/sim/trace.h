#pragma once

// Structured tracing for schedule visualizations and runtime observability.
//
// Three kinds of data, all owned by one Tracer (usually the Cluster's):
//  * spans      — begin/end intervals of named activity on a (device, lane)
//                 pair, tagged with a Category (Fig. 1's block activity,
//                 put/get issue, wire serialization, PCIe transactions, ...);
//  * counters   — time-stamped per-device value samples (queue depth,
//                 in-flight remote memory accesses, resident blocks, bytes
//                 on wire), exported as Chrome trace counter tracks;
//  * metrics    — scalar run totals (notifications matched, commands
//                 issued, tail reads) for the end-of-run text summary.
//
// Everything is guarded by enabled(): a disabled tracer costs one branch
// per instrumentation point and allocates nothing. Instrumented code must
// check enabled() (or use a `Tracer* t; if (t && t->enabled())` pattern)
// *before* constructing spans or formatting names, so the hot paths stay
// zero-cost when tracing is off.
//
// Sharded engines (docs/PERF.md, "Parallel engine"): the tracer keeps one
// buffer set per shard — Cluster calls set_shards — and instrumentation
// appends to the executing shard's buffers (sim/shard_context.h), so
// recording needs no synchronization even under multi-threaded windows.
// The accessors merge on demand with a fixed rule — spans by (begin, shard,
// insertion index), counter samples by (time, shard, insertion index),
// metrics summed in shard order — so exported traces are byte-identical for
// any executor configuration, and a single-shard tracer merges to exactly
// its insertion order (the historical output).
//
// Exporters (Chrome trace_event JSON, text summary) live in
// sim/trace_export.h.

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/shard_context.h"
#include "sim/units.h"

namespace dcuda::sim {

// Event taxonomy (documented in docs/OBSERVABILITY.md). The category drives
// summary aggregation (compute vs. communication vs. wait) and the Chrome
// trace "cat" field.
enum class Category : std::uint8_t {
  kCompute = 0,  // SM arithmetic
  kMemory,       // device memory traffic
  kPut,          // put/put_notify issue (device-side command assembly+enqueue)
  kGet,          // get/get_notify issue
  kNotify,       // notification delivery (host -> device queue)
  kWait,         // rank blocked in wait_notifications
  kDrain,        // finish(): draining outstanding remote memory accesses
  kPcie,         // PCIe lane serialization
  kFabric,       // NIC wire serialization
  kQueue,        // circular-queue operations (flow-control stalls)
  kBarrier,      // barrier synchronization
  kOther,
};

inline constexpr int kNumCategories = 12;

constexpr const char* category_name(Category c) {
  switch (c) {
    case Category::kCompute: return "compute";
    case Category::kMemory: return "memory";
    case Category::kPut: return "put";
    case Category::kGet: return "get";
    case Category::kNotify: return "notify";
    case Category::kWait: return "wait";
    case Category::kDrain: return "drain";
    case Category::kPcie: return "pcie";
    case Category::kFabric: return "fabric";
    case Category::kQueue: return "queue";
    case Category::kBarrier: return "barrier";
    case Category::kOther: return "other";
  }
  return "other";
}

// Lane bands: one Chrome-trace thread per (device, lane). Lanes below 1000
// are device ranks (block ids); the bands group infrastructure activity.
inline constexpr std::int32_t kHostRankLaneBase = 1000;  // + host rank index
inline constexpr std::int32_t kFabricLane = 2000;        // NIC transmit
inline constexpr std::int32_t kPcieLaneH2D = 2100;       // PCIe host->device
inline constexpr std::int32_t kPcieLaneD2H = 2101;       // PCIe device->host
inline constexpr std::int32_t kRuntimeLane = 2200;       // host event handler
inline constexpr std::int32_t kNicLane = 2300;  // NIC command processor
                                                // (kDeviceInitiated backend)

struct TraceSpan {
  Time begin = 0.0;
  Time end = 0.0;
  std::int32_t device = -1;
  std::int32_t lane = -1;  // e.g. rank or SM id; see lane bands above
  std::string activity;    // "compute", "wait", "put", ...
  Category category = Category::kOther;
  double bytes = 0.0;  // payload size when the activity moves data
};

struct CounterSample {
  Time t = 0.0;
  std::int32_t device = -1;
  std::string name;
  double value = 0.0;
};

class Tracer {
 public:
  Tracer() { bufs_.push_back(std::make_unique<ShardBuf>()); }
  Tracer(const Tracer& o) : enabled_(o.enabled_) {
    bufs_.reserve(o.bufs_.size());
    for (const auto& b : o.bufs_) bufs_.push_back(std::make_unique<ShardBuf>(*b));
  }
  Tracer& operator=(const Tracer& o) {
    if (this != &o) {
      Tracer tmp(o);
      std::swap(enabled_, tmp.enabled_);
      std::swap(bufs_, tmp.bufs_);
      merged_ops_ = kDirty;
    }
    return *this;
  }

  void enable() { enabled_ = true; }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }

  // One buffer set per shard (Cluster calls this right after
  // Simulation::configure_shards). Data already recorded stays in buffer 0.
  void set_shards(int n) {
    while (static_cast<int>(bufs_.size()) < n) {
      bufs_.push_back(std::make_unique<ShardBuf>());
    }
  }

  void record(TraceSpan span) {
    if (!enabled_) return;
    ShardBuf& b = buf();
    b.spans.push_back(std::move(span));
    ++b.ops;
  }

  // -- Counters (time series, Chrome "C" tracks) -----------------------

  // Samples an absolute value of counter `name` on `device` at time `t`.
  void counter_set(Time t, std::int32_t device, const std::string& name,
                   double value) {
    if (!enabled_) return;
    ShardBuf& b = buf();
    b.counter_values[{device, name}] = value;
    b.samples.push_back(CounterSample{t, device, name, value});
    ++b.ops;
  }

  // Adjusts the running value of counter `name` on `device` by `delta` and
  // samples the result (e.g. +1 on enqueue, -1 on dequeue -> queue depth).
  // A counter's device lives on one shard, so the running value is tracked
  // per shard without coordination.
  void counter_add(Time t, std::int32_t device, const std::string& name,
                   double delta) {
    if (!enabled_) return;
    ShardBuf& b = buf();
    double& v = b.counter_values[{device, name}];
    v += delta;
    b.samples.push_back(CounterSample{t, device, name, v});
    ++b.ops;
  }

  double counter_value(std::int32_t device, const std::string& name) const {
    merge();
    auto it = values_merged_.find({device, name});
    return it == values_merged_.end() ? 0.0 : it->second;
  }

  // -- Metrics (scalar run totals, text summary) -----------------------

  void bump(const std::string& name, double delta = 1.0) {
    if (!enabled_) return;
    ShardBuf& b = buf();
    b.metrics[name] += delta;
    ++b.ops;
  }

  double metric(const std::string& name) const {
    merge();
    auto it = metrics_merged_.find(name);
    return it == metrics_merged_.end() ? 0.0 : it->second;
  }

  // -- Access ----------------------------------------------------------
  //
  // Merged views (see header comment for the merge rule). Not callable
  // while a multi-threaded window executes; every exporter runs post-run.

  const std::vector<TraceSpan>& spans() const {
    merge();
    return spans_merged_;
  }
  const std::vector<CounterSample>& counter_samples() const {
    merge();
    return samples_merged_;
  }
  const std::map<std::string, double>& metrics() const {
    merge();
    return metrics_merged_;
  }

  void clear() {
    for (auto& b : bufs_) *b = ShardBuf{};
    merged_ops_ = kDirty;
    spans_merged_.clear();
    samples_merged_.clear();
    values_merged_.clear();
    metrics_merged_.clear();
  }

  // Renders an ASCII Gantt chart: one row per (device, lane), time bucketed
  // into `columns` cells; each cell shows the dominant activity's initial.
  void render_ascii(std::ostream& os, int columns = 100) const;

 private:
  struct ShardBuf {
    std::vector<TraceSpan> spans;
    std::vector<CounterSample> samples;
    std::map<std::pair<std::int32_t, std::string>, double> counter_values;
    std::map<std::string, double> metrics;
    std::uint64_t ops = 0;  // mutation count, for merge invalidation
  };

  static constexpr std::uint64_t kDirty = ~std::uint64_t{0};

  ShardBuf& buf() {
    const std::size_t k = static_cast<std::size_t>(current_shard_index());
    return *bufs_[k < bufs_.size() ? k : 0];
  }

  void merge() const;

  bool enabled_ = false;
  std::vector<std::unique_ptr<ShardBuf>> bufs_;

  mutable std::uint64_t merged_ops_ = kDirty;
  mutable std::vector<TraceSpan> spans_merged_;
  mutable std::vector<CounterSample> samples_merged_;
  mutable std::map<std::pair<std::int32_t, std::string>, double> values_merged_;
  mutable std::map<std::string, double> metrics_merged_;
};

}  // namespace dcuda::sim
