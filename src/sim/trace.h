#pragma once

// Interval tracing for schedule visualizations (Fig. 1: block activity on
// MPI-CUDA vs dCUDA). Entities record begin/end of named activity spans.

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/units.h"

namespace dcuda::sim {

struct TraceSpan {
  Time begin = 0.0;
  Time end = 0.0;
  std::int32_t device = -1;
  std::int32_t lane = -1;  // e.g. rank or SM id
  std::string activity;    // "compute", "wait", "exchange", ...
};

class Tracer {
 public:
  void enable() { enabled_ = true; }
  bool enabled() const { return enabled_; }

  void record(TraceSpan span) {
    if (enabled_) spans_.push_back(std::move(span));
  }

  const std::vector<TraceSpan>& spans() const { return spans_; }
  void clear() { spans_.clear(); }

  // Renders an ASCII Gantt chart: one row per (device, lane), time bucketed
  // into `columns` cells; each cell shows the dominant activity's initial.
  void render_ascii(std::ostream& os, int columns = 100) const;

 private:
  bool enabled_ = false;
  std::vector<TraceSpan> spans_;
};

}  // namespace dcuda::sim
