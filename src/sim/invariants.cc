#include "sim/invariants.h"

#include <sstream>

namespace dcuda::sim {

void InvariantObserver::violation(std::string what) {
  if (violations_.size() < kMaxViolations) violations_.push_back(std::move(what));
}

void InvariantObserver::fabric_delivered(int src, int dst, std::uint64_t wire_seq) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  std::uint64_t& last = fabric_seq_[{src, dst}];
  if (wire_seq != last + 1) {
    std::ostringstream os;
    os << "fabric non-overtaking violated: link " << src << "->" << dst
       << " delivered wire_seq " << wire_seq << " after " << last;
    violation(os.str());
  }
  if (wire_seq > last) last = wire_seq;
}

void InvariantObserver::route_selected(int src, int dst,
                                       const std::vector<int>& switches) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  for (std::size_t i = 0; i < switches.size(); ++i) {
    for (std::size_t j = i + 1; j < switches.size(); ++j) {
      if (switches[i] == switches[j]) {
        std::ostringstream os;
        os << "routing loop detected: route " << src << "->" << dst
           << " visits switch " << switches[i] << " twice (hops " << i
           << " and " << j << " of " << switches.size() << ")";
        violation(os.str());
        return;
      }
    }
  }
}

void InvariantObserver::link_transmission(int link, double start, double end) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  if (end < start) {
    std::ostringstream os;
    os << "link capacity conservation violated: link " << link
       << " transmission ends (" << end << ") before it starts (" << start << ")";
    violation(os.str());
    return;
  }
  double& busy = link_busy_[link];
  // Strict serialization up to fp rounding: a transmission may begin the
  // instant the previous one ends, never before.
  if (start < busy - 1e-12) {
    std::ostringstream os;
    os << "link capacity conservation violated: link " << link
       << " transmission starts at " << start
       << " while the link is busy until " << busy;
    violation(os.str());
  }
  if (end > busy) busy = end;
}

void InvariantObserver::fabric_packet_sent(int src, int dst, std::uint64_t seq,
                                           bool retransmit, int rail) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  LinkRecovery& lr = link_recovery_[{src, dst, rail}];
  if (!retransmit) {
    if (seq != lr.originals + 1) {
      std::ostringstream os;
      os << "fabric sequence assignment violated: link " << src << "->" << dst
         << " rail " << rail << " transmitted fresh seq " << seq << " after "
         << lr.originals << " originals";
      violation(os.str());
    }
    if (seq > lr.originals) lr.originals = seq;
    return;
  }
  ++lr.retransmits;
  if (seq == 0 || seq > lr.originals) {
    std::ostringstream os;
    os << "fabric retransmit of never-sent packet: link " << src << "->" << dst
       << " rail " << rail << " retransmitted seq " << seq << " but only "
       << lr.originals << " originals were sent";
    violation(os.str());
  }
}

void InvariantObserver::fabric_packet_dropped(int src, int dst,
                                              std::uint64_t seq, int rail) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  LinkRecovery& lr = link_recovery_[{src, dst, rail}];
  ++lr.dropped;
  if (lr.dropped > lr.originals + lr.retransmits) {
    std::ostringstream os;
    os << "fabric loss accounting violated: link " << src << "->" << dst
       << " rail " << rail << " recorded " << lr.dropped << " losses over "
       << lr.originals + lr.retransmits << " transmissions (seq " << seq << ")";
    violation(os.str());
  }
}

void InvariantObserver::fabric_packet_accepted(int src, int dst,
                                               std::uint64_t seq, int rail) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  LinkRecovery& lr = link_recovery_[{src, dst, rail}];
  if (seq <= lr.last_accepted) {
    std::ostringstream os;
    os << "at-most-once delivery violated: link " << src << "->" << dst
       << " rail " << rail << " accepted seq " << seq
       << " again (already accepted up to " << lr.last_accepted << ")";
    violation(os.str());
    return;
  }
  if (seq != lr.last_accepted + 1) {
    std::ostringstream os;
    os << "lossy-fabric in-order delivery violated: link " << src << "->" << dst
       << " rail " << rail << " accepted seq " << seq << " after "
       << lr.last_accepted;
    violation(os.str());
  }
  if (seq > lr.originals) {
    std::ostringstream os;
    os << "fabric accepted packet that was never sent: link " << src << "->"
       << dst << " rail " << rail << " seq " << seq << " with only "
       << lr.originals << " originals transmitted";
    violation(os.str());
  }
  lr.last_accepted = seq;
  ++lr.accepted;
}

void InvariantObserver::queue_credit(std::uint64_t send_count,
                                     std::uint64_t recv_count, int capacity) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  if (recv_count > send_count ||
      send_count - recv_count > static_cast<std::uint64_t>(capacity)) {
    std::ostringstream os;
    os << "queue credit accounting violated: send_count=" << send_count
       << " recv_count=" << recv_count << " capacity=" << capacity;
    violation(os.str());
  }
}

void InvariantObserver::notify_sent() {
  std::lock_guard<std::mutex> lock(*mu_);
  ++sent_;
}

void InvariantObserver::data_put_issued(int origin_rank, int target_rank) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++conn_data_[{origin_rank, target_rank}].issued;
}

void InvariantObserver::data_put_landed(int origin_rank, int target_rank) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  ConnData& cd = conn_data_[{origin_rank, target_rank}];
  ++cd.landed;
  if (cd.landed > cd.issued) {
    std::ostringstream os;
    os << "data put landed without issue: origin=" << origin_rank
       << " target=" << target_rank << " landed=" << cd.landed
       << " issued=" << cd.issued;
    violation(os.str());
  }
}

void InvariantObserver::notify_put_ordered(int origin_rank, int target_rank,
                                           std::int32_t win_global_id,
                                           std::uint64_t bytes, int tag) {
  std::lock_guard<std::mutex> lock(*mu_);
  const std::uint64_t mark = conn_data_[{origin_rank, target_rank}].issued;
  put_order_[PutKey{origin_rank, target_rank, win_global_id}].push_back(
      PendingNotify{tag, bytes, mark});
}

void InvariantObserver::notify_put_delivered(int origin_rank, int target_rank,
                                             std::int32_t win_global_id,
                                             std::uint64_t bytes, int tag) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  auto it = put_order_.find(PutKey{origin_rank, target_rank, win_global_id});
  if (it == put_order_.end() || it->second.empty()) {
    std::ostringstream os;
    os << "notified put delivered without matching issue: origin=" << origin_rank
       << " target=" << target_rank << " win=" << win_global_id
       << " bytes=" << bytes << " tag=" << tag;
    violation(os.str());
    return;
  }
  const PendingNotify expected = it->second.front();
  it->second.pop_front();
  if (expected.tag != tag) {
    std::ostringstream os;
    os << "notified put overtaking: origin=" << origin_rank
       << " target=" << target_rank << " win=" << win_global_id
       << " delivered tag " << tag << " (" << bytes << " B) while tag "
       << expected.tag << " (" << expected.bytes << " B) was issued first";
    violation(os.str());
    return;
  }
  const ConnData& cd = conn_data_[{origin_rank, target_rank}];
  if (cd.landed < expected.data_mark) {
    std::ostringstream os;
    os << "notification overtook data: origin=" << origin_rank
       << " target=" << target_rank << " win=" << win_global_id << " tag="
       << tag << " delivered while " << expected.data_mark - cd.landed
       << " of " << expected.data_mark
       << " preceding data puts had not landed";
    violation(os.str());
  }
}

void InvariantObserver::eager_batch_flushed(int origin_node, int target_node,
                                            std::uint64_t batch_seq, int records) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++eager_flushed_;
  eager_batches_[{origin_node, target_node}].push_back({batch_seq, records});
}

void InvariantObserver::eager_batch_delivered(int origin_node, int target_node,
                                              std::uint64_t batch_seq, int records) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  ++eager_delivered_;
  auto it = eager_batches_.find({origin_node, target_node});
  if (it == eager_batches_.end() || it->second.empty()) {
    std::ostringstream os;
    os << "eager batch delivered without flush: " << origin_node << "->"
       << target_node << " seq " << batch_seq;
    violation(os.str());
    return;
  }
  const auto [expected_seq, expected_records] = it->second.front();
  it->second.pop_front();
  if (expected_seq != batch_seq) {
    std::ostringstream os;
    os << "eager batch overtaking: " << origin_node << "->" << target_node
       << " delivered seq " << batch_seq << " while seq " << expected_seq
       << " was flushed first";
    violation(os.str());
  } else if (expected_records != records) {
    std::ostringstream os;
    os << "eager batch record count mismatch: " << origin_node << "->"
       << target_node << " seq " << batch_seq << " delivered " << records
       << " records, flushed " << expected_records;
    violation(os.str());
  }
}

void InvariantObserver::notification_delivered(bool via_board) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++delivered_;
  if (via_board) ++board_delivered_;
}

void InvariantObserver::notification_matched() {
  std::lock_guard<std::mutex> lock(*mu_);
  ++matched_;
  ++checks_;
  if (matched_ > delivered_) {
    std::ostringstream os;
    os << "notification matched before delivery: matched=" << matched_
       << " delivered=" << delivered_;
    violation(os.str());
  }
}

void InvariantObserver::window_created(std::int32_t win_global_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++window_live_[win_global_id];
  window_seen_[win_global_id] = true;
}

void InvariantObserver::window_accessed(std::int32_t win_global_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  auto it = window_live_.find(win_global_id);
  if (it == window_live_.end() || it->second <= 0) {
    std::ostringstream os;
    os << "window lifecycle violated: access to window " << win_global_id
       << (window_seen_.count(win_global_id) != 0 ? " after win_free"
                                                  : " before win_create");
    violation(os.str());
  }
}

void InvariantObserver::window_freed(std::int32_t win_global_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  auto it = window_live_.find(win_global_id);
  if (it == window_live_.end() || it->second <= 0) {
    std::ostringstream os;
    os << "window lifecycle violated: win_free of window " << win_global_id
       << " that is not live";
    violation(os.str());
    return;
  }
  --it->second;
}

void InvariantObserver::barrier_enter(int comm_key, int rank, int participants) {
  std::lock_guard<std::mutex> lock(*mu_);
  BarrierDomain& d = barriers_[comm_key];
  if (d.participants == 0) d.participants = participants;
  if (d.participants != participants) {
    std::ostringstream os;
    os << "barrier domain " << comm_key << " entered with participants="
       << participants << " but was established with " << d.participants;
    violation(os.str());
  }
  ++d.enters[rank];
}

void InvariantObserver::barrier_exit(int comm_key, int rank) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  BarrierDomain& d = barriers_[comm_key];
  const std::uint64_t round = ++d.exits[rank];
  if (round > d.enters[rank]) {
    std::ostringstream os;
    os << "barrier round agreement violated: rank " << rank << " exited round "
       << round << " of domain " << comm_key << " without entering it";
    violation(os.str());
    return;
  }
  int entered = 0;
  for (const auto& [r, n] : d.enters) {
    if (n >= round) ++entered;
  }
  if (entered < d.participants) {
    std::ostringstream os;
    os << "barrier round agreement violated: rank " << rank << " exited round "
       << round << " of domain " << comm_key << " while only " << entered
       << " of " << d.participants << " participants entered it";
    violation(os.str());
  }
}

void InvariantObserver::cluster_nodes(int total) {
  std::lock_guard<std::mutex> lock(*mu_);
  cluster_total_nodes_ = total;
}

void InvariantObserver::job_submitted(int job_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  JobTrack& j = jobs_[job_id];
  if (j.submitted) {
    std::ostringstream os;
    os << "job lifecycle violated: job " << job_id << " submitted twice";
    violation(os.str());
  }
  j.submitted = true;
}

void InvariantObserver::job_started(int job_id, const std::vector<int>& nodes) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  JobTrack& j = jobs_[job_id];
  if (!j.submitted) {
    std::ostringstream os;
    os << "job lifecycle violated: job " << job_id << " started without submit";
    violation(os.str());
  }
  if (j.started) {
    std::ostringstream os;
    os << "job lifecycle violated: job " << job_id << " started twice";
    violation(os.str());
    return;
  }
  j.started = true;
  if (nodes.empty()) {
    std::ostringstream os;
    os << "job allocation violated: job " << job_id << " started on zero nodes";
    violation(os.str());
  }
  for (int n : nodes) {
    if (cluster_total_nodes_ > 0 && (n < 0 || n >= cluster_total_nodes_)) {
      std::ostringstream os;
      os << "job allocation violated: job " << job_id << " allocated node " << n
         << " outside the " << cluster_total_nodes_ << "-node cluster";
      violation(os.str());
      continue;
    }
    auto [it, inserted] = node_owner_.emplace(n, job_id);
    if (!inserted) {
      std::ostringstream os;
      os << "overlapping node allocation: job " << job_id << " allocated node "
         << n;
      if (it->second == job_id) {
        os << " twice";
      } else {
        os << " held by job " << it->second;
      }
      violation(os.str());
      continue;
    }
    j.nodes.push_back(n);
  }
}

void InvariantObserver::job_completed(int job_id) {
  std::lock_guard<std::mutex> lock(*mu_);
  ++checks_;
  JobTrack& j = jobs_[job_id];
  if (!j.started) {
    std::ostringstream os;
    os << "job lifecycle violated: job " << job_id
       << " completed without starting";
    violation(os.str());
  }
  if (j.completed) {
    std::ostringstream os;
    os << "job lifecycle violated: job " << job_id << " completed twice";
    violation(os.str());
    return;
  }
  j.completed = true;
  // Node conservation: completion frees exactly the nodes the start claimed.
  for (int n : j.nodes) {
    auto it = node_owner_.find(n);
    if (it == node_owner_.end() || it->second != job_id) {
      std::ostringstream os;
      os << "node conservation violated: job " << job_id << " released node "
         << n << " it no longer owns";
      violation(os.str());
      continue;
    }
    node_owner_.erase(it);
  }
  j.nodes.clear();
}

void InvariantObserver::finalize() {
  std::lock_guard<std::mutex> lock(*mu_);
  if (finalized_) return;
  finalized_ = true;
  if (delivered_ != sent_) {
    std::ostringstream os;
    os << "notification conservation violated: " << sent_
       << " notified operations issued but " << delivered_
       << " notifications delivered";
    violation(os.str());
  }
  if (matched_ > delivered_) {
    std::ostringstream os;
    os << "notification conservation violated: " << matched_
       << " notifications matched but only " << delivered_ << " delivered";
    violation(os.str());
  }
  for (const auto& [link, lr] : link_recovery_) {
    if (lr.accepted != lr.originals) {
      std::ostringstream os;
      os << "lossy-fabric conservation violated: link " << std::get<0>(link)
         << "->" << std::get<1>(link) << " rail " << std::get<2>(link)
         << " sent " << lr.originals << " originals but " << lr.accepted
         << " were accepted";
      violation(os.str());
    }
    if (lr.dropped > 0 && lr.retransmits == 0 && lr.accepted == lr.originals) {
      std::ostringstream os;
      os << "retransmit accounting violated: link " << std::get<0>(link)
         << "->" << std::get<1>(link) << " rail " << std::get<2>(link)
         << " lost " << lr.dropped
         << " transmissions yet recovered without a single retransmit";
      violation(os.str());
    }
  }
  for (const auto& [key, pending] : put_order_) {
    if (!pending.empty()) {
      std::ostringstream os;
      os << "notified put never delivered: origin=" << std::get<0>(key)
         << " target=" << std::get<1>(key) << " win=" << std::get<2>(key)
         << " (" << pending.size() << " outstanding, first tag "
         << pending.front().tag << ")";
      violation(os.str());
    }
  }
  for (const auto& [conn, cd] : conn_data_) {
    if (cd.landed != cd.issued) {
      std::ostringstream os;
      os << "data put conservation violated: origin=" << conn.first
         << " target=" << conn.second << " issued=" << cd.issued
         << " landed=" << cd.landed;
      violation(os.str());
    }
  }
  if (eager_delivered_ != eager_flushed_) {
    std::ostringstream os;
    os << "eager batch conservation violated: " << eager_flushed_
       << " batches flushed but " << eager_delivered_ << " delivered";
    violation(os.str());
  }
  for (const auto& [comm, d] : barriers_) {
    for (const auto& [rank, n] : d.enters) {
      const auto it = d.exits.find(rank);
      const std::uint64_t exits = it == d.exits.end() ? 0 : it->second;
      if (exits != n) {
        std::ostringstream os;
        os << "barrier domain " << comm << ": rank " << rank << " entered " << n
           << " rounds but exited " << exits;
        violation(os.str());
      }
    }
  }
  for (const auto& [id, j] : jobs_) {
    if (j.submitted && !j.completed) {
      std::ostringstream os;
      os << "lost job: job " << id << " was submitted but never "
         << (j.started ? "completed" : "started");
      violation(os.str());
    }
  }
  if (!node_owner_.empty()) {
    std::ostringstream os;
    os << "node conservation violated: " << node_owner_.size()
       << " nodes still allocated at end of run (first: node "
       << node_owner_.begin()->first << " held by job "
       << node_owner_.begin()->second << ")";
    violation(os.str());
  }
}

std::string InvariantObserver::report() const {
  std::lock_guard<std::mutex> lock(*mu_);
  std::ostringstream os;
  os << "invariant checks: " << checks_ << ", notifications sent/delivered/matched: "
     << sent_ << "/" << delivered_ << "/" << matched_ << "\n";
  for (const auto& v : violations_) os << "  VIOLATION: " << v << "\n";
  return os.str();
}

}  // namespace dcuda::sim
