#include "dcuda/dcuda.h"

#include <cassert>
#include <cstring>

#include "sim/invariants.h"

namespace dcuda {

namespace {

// Device-side cost of assembling and issuing a command (meta tuple build,
// §III-B), charged to the rank's SM.
sim::Proc<void> charge_issue(Context& ctx) {
  co_await ctx.charge_compute_time(ctx.node->config().runtime.device_issue_cost);
}

bool notification_matches(const rt::Notification& n, std::int32_t win_filter,
                          int source, int tag) {
  if (win_filter != kAnyWindow && n.win_device_id != win_filter) return false;
  if (source != kAnySource && n.source != source) return false;
  if (tag != kAnyTag && n.tag != tag) return false;
  return true;
}

// Names an RMA issue span for the tracer.
const char* rma_activity(rt::CmdKind kind, bool notify) {
  if (kind == rt::CmdKind::kPut) return notify ? "put_notify" : "put";
  return notify ? "get_notify" : "get";
}

// Core RMA issue path shared by put/get (notify optional). The traced span
// covers device-side command assembly and queue submission — the wire and
// PCIe time shows up on the fabric/pcie lanes instead.
sim::Proc<void> issue_rma(Context& ctx, rt::CmdKind kind, Window win,
                          int target_rank, std::size_t offset, std::size_t bytes,
                          void* local_ptr, int tag, bool notify) {
  assert(win.valid() && "window not created");
  assert(target_rank >= 0 && target_rank < ctx.world_size);
  rt::NodeRuntime& node = *ctx.node;
  rt::RankState& rs = *ctx.rs;
  sim::Tracer* tr = ctx.tracer();
  const bool traced = tr != nullptr && tr->enabled();
  const sim::Time issue_begin = traced ? ctx.sim().now() : 0.0;
  const sim::Category cat =
      kind == rt::CmdKind::kPut ? sim::Category::kPut : sim::Category::kGet;
  const auto end_span = [&] {
    if (!traced) return;
    ctx.trace(rma_activity(kind, notify), cat, issue_begin, ctx.sim().now(),
              static_cast<double>(bytes));
    tr->bump(kind == rt::CmdKind::kPut ? "puts_issued" : "gets_issued");
    tr->bump("rma_bytes", static_cast<double>(bytes));
  };
  const auto count_inflight = [&] {
    if (traced) {
      tr->counter_add(ctx.sim().now(), node.phys_node(), "inflight_rma", 1.0);
    }
  };
  if (sim::InvariantObserver* obs = ctx.sim().invariant_observer(); obs != nullptr) {
    obs->window_accessed(win.global_id);
    if (notify) obs->notify_sent();
  }
  co_await charge_issue(ctx);

  const int rpn = node.ranks_per_node();
  const int target_node = target_rank / rpn;
  const bool shared_memory = target_node == node.node();

  rt::Command c;
  c.kind = kind;
  c.win_device_id = win.device_id;
  c.target_rank = target_rank;
  c.offset = offset;
  c.bytes = bytes;
  c.local_ptr = static_cast<std::byte*>(local_ptr);
  c.tag = tag;
  c.notify = notify;

  if (shared_memory) {
    // Direct device-side execution (§III-A): resolve the target window
    // registration from the device window table and copy locally. No copy if
    // source and target addresses coincide (overlapping windows).
    const int target_local = target_rank - node.node() * rpn;
    const rt::NodeRuntime::WinRankInfo* peer =
        node.window_peer(win.global_id, target_local);
    assert(peer != nullptr && "shared-memory window not registered");
    assert(offset + bytes <= peer->bytes && "window access out of bounds");
    std::byte* remote = peer->base + offset;
    std::byte* local = static_cast<std::byte*>(local_ptr);
    if (remote != local && bytes > 0) {
      if (kind == rt::CmdKind::kPut) {
        std::memcpy(remote, local, bytes);
      } else {
        std::memcpy(local, remote, bytes);
      }
      co_await ctx.charge_memory(2.0 * static_cast<double>(bytes));
    }
    // §II-D: redundant shared-memory operations are optimized out — the copy
    // (if any) completed synchronously, so without a notification there is
    // nothing left for the host to do.
    if (!notify) {
      end_span();
      co_return;
    }
    c.local_already_copied = true;
    if (node.config().device_initiated() ||
        !node.config().runtime.local_notifications_via_host) {
      // Device-side delivery (kDeviceInitiated backend and the
      // local-notification ablation): the copy completed synchronously
      // above, so the notification deposits straight onto the target's
      // on-device board — no host loop-through and nothing left to flush.
      rt::Notification n;
      if (kind == rt::CmdKind::kPut) {
        if (sim::InvariantObserver* obs = ctx.sim().invariant_observer();
            obs != nullptr) {
          // Issue, landing, and delivery coincide here; reporting all four
          // keeps the data-before-notification and FIFO oracles closed over
          // this backend's local path too.
          obs->data_put_issued(node.oracle_rank(rs.global_rank),
                               node.oracle_rank(target_rank));
          obs->notify_put_ordered(node.oracle_rank(rs.global_rank),
                                  node.oracle_rank(target_rank), win.global_id,
                                  bytes, tag);
          obs->data_put_landed(node.oracle_rank(rs.global_rank),
                               node.oracle_rank(target_rank));
          obs->notify_put_delivered(node.oracle_rank(rs.global_rank),
                                    node.oracle_rank(target_rank),
                                    win.global_id, bytes, tag);
        }
        n.win_device_id = peer->win_device_id;
        n.source = rs.global_rank;
        n.tag = tag;
        node.device_local_notify(target_local, n);
      } else {
        n.win_device_id = win.device_id;
        n.source = target_rank;
        n.tag = tag;
        node.device_local_notify(ctx.device_rank, n);
      }
      end_span();
      co_return;
    }
    c.flush_id = ++rs.next_flush_id;
    ++rs.win_issued[win.device_id];
    co_await rs.cmd_q.enqueue(c);
    count_inflight();
    end_span();
    co_return;
  }

  c.flush_id = ++rs.next_flush_id;
  ++rs.win_issued[win.device_id];
  co_await rs.cmd_q.enqueue(c);
  count_inflight();
  end_span();
}

}  // namespace

const sim::RmaConfig& Context::rma_config() const { return node->config().rma; }

sim::Proc<void> Context::charge_compute(double flops) {
  if (block != nullptr) {
    co_await block->compute_flops(flops);
  } else {
    const sim::Time begin = sim().now();
    co_await node->host_compute().use(flops);
    trace("compute", sim::Category::kCompute, begin, sim().now());
  }
}

sim::Proc<void> Context::charge_compute_time(sim::Dur dedicated_time) {
  if (block != nullptr) {
    co_await block->compute(dedicated_time);
  } else {
    const double rate = node->config().host.flops / node->config().host.threads_to_saturate;
    co_await charge_compute(dedicated_time * rate);
  }
}

sim::Proc<void> Context::charge_memory(double bytes) {
  if (block != nullptr) {
    co_await block->mem_traffic(bytes);
  } else {
    const sim::Time begin = sim().now();
    co_await node->host_memory().use(bytes);
    trace("memory", sim::Category::kMemory, begin, sim().now(), bytes);
  }
}

void Context::trace(const char* activity, sim::Category category,
                    sim::Time begin, sim::Time end, double bytes) {
  if (block != nullptr) {
    block->trace(activity, category, begin, end, bytes);
    return;
  }
  if (sim::Tracer* t = node->device().tracer(); t && t->enabled()) {
    // Host ranks trace on a lane band of their own (kHostRankLaneBase + idx).
    const int host_index = world_rank % node->ranks_per_node() - node->ranks_per_device();
    t->record(sim::TraceSpan{begin, end, node->phys_node(),
                             sim::kHostRankLaneBase + host_index, activity,
                             category, bytes});
  }
}

sim::Proc<void> init_host(Context& ctx, const KernelParam& param, int host_index) {
  assert(param.node != nullptr);
  ctx.block = nullptr;
  ctx.node = param.node;
  const int rpd = ctx.node->ranks_per_device();
  assert(host_index >= 0 && host_index < ctx.node->host_ranks());
  ctx.device_rank = -1;
  ctx.device_size = rpd;
  const int local = rpd + host_index;
  ctx.world_rank = ctx.node->node() * ctx.node->ranks_per_node() + local;
  ctx.world_size = ctx.node->world_size();
  ctx.rs = &ctx.node->rank(local);
  co_await charge_issue(ctx);
}

sim::Proc<void> init(Context& ctx, const KernelParam& param, gpu::BlockCtx& blk) {
  assert(param.node != nullptr);
  ctx.block = &blk;
  ctx.node = param.node;
  const int rpd = ctx.node->ranks_per_device();
  assert(blk.grid_blocks() == rpd &&
         "dCUDA kernels launch exactly one block per rank; the grid must "
         "match the runtime's ranks_per_device");
  ctx.device_rank = blk.block_id();
  ctx.device_size = rpd;
  ctx.world_rank = ctx.node->node() * ctx.node->ranks_per_node() + ctx.device_rank;
  ctx.world_size = ctx.node->world_size();
  ctx.rs = &ctx.node->rank(ctx.device_rank);
  co_await charge_issue(ctx);
}

int comm_rank(const Context& ctx, Comm comm) {
  return comm == Comm::kWorld ? ctx.world_rank : ctx.device_rank;
}

int comm_size(const Context& ctx, Comm comm) {
  return comm == Comm::kWorld ? ctx.world_size : ctx.device_size;
}

sim::Proc<Window> win_create(Context& ctx, Comm comm, void* base, std::size_t bytes) {
  rt::RankState& rs = *ctx.rs;
  Window w;
  w.device_id = rs.next_win_device_id++;
  co_await charge_issue(ctx);

  rt::Command c;
  c.kind = rt::CmdKind::kWinCreate;
  c.comm = comm;
  c.win_device_id = w.device_id;
  c.win_base = static_cast<std::byte*>(base);
  c.win_bytes = bytes;
  co_await rs.cmd_q.enqueue(c);

  rt::Ack a = co_await rs.ack_q.dequeue();
  assert(a.kind == rt::AckKind::kWinCreated);
  assert(a.win_device_id == w.device_id);
  w.global_id = a.win_global_id;
  co_return w;
}

sim::Proc<void> win_free(Context& ctx, Window& win) {
  assert(win.valid());
  co_await charge_issue(ctx);
  rt::Command c;
  c.kind = rt::CmdKind::kWinFree;
  c.win_device_id = win.device_id;
  co_await ctx.rs->cmd_q.enqueue(c);
  rt::Ack a = co_await ctx.rs->ack_q.dequeue();
  assert(a.kind == rt::AckKind::kWinFreed);
  (void)a;
  win = Window{};
}

sim::Proc<void> put_notify(Context& ctx, Window win, int target_rank,
                           std::size_t offset, std::size_t bytes, const void* src,
                           int tag) {
  co_await issue_rma(ctx, rt::CmdKind::kPut, win, target_rank, offset, bytes,
                     const_cast<void*>(src), tag, /*notify=*/true);
}

sim::Proc<void> put(Context& ctx, Window win, int target_rank, std::size_t offset,
                    std::size_t bytes, const void* src) {
  co_await issue_rma(ctx, rt::CmdKind::kPut, win, target_rank, offset, bytes,
                     const_cast<void*>(src), 0, /*notify=*/false);
}

sim::Proc<void> get_notify(Context& ctx, Window win, int target_rank,
                           std::size_t offset, std::size_t bytes, void* dst, int tag) {
  co_await issue_rma(ctx, rt::CmdKind::kGet, win, target_rank, offset, bytes, dst,
                     tag, /*notify=*/true);
}

sim::Proc<void> get(Context& ctx, Window win, int target_rank, std::size_t offset,
                    std::size_t bytes, void* dst) {
  co_await issue_rma(ctx, rt::CmdKind::kGet, win, target_rank, offset, bytes, dst, 0,
                     /*notify=*/false);
}

sim::Proc<void> flush(Context& ctx) {
  rt::RankState& rs = *ctx.rs;
  const std::uint64_t target = rs.next_flush_id;
  while (rs.flush_done < target) co_await rs.flush_trig.wait();
}

sim::Proc<void> win_flush(Context& ctx, Window win) {
  assert(win.valid());
  rt::RankState& rs = *ctx.rs;
  const std::uint64_t target = rs.win_issued[win.device_id];
  while (rs.win_completed[win.device_id] < target) co_await rs.flush_trig.wait();
}

sim::Proc<void> wait_notifications(Context& ctx, std::int32_t win_filter, int source,
                                   int tag, int count) {
  rt::RankState& rs = *ctx.rs;
  const sim::RuntimeConfig& rc = ctx.node->config().runtime;
  sim::Tracer* tr = ctx.tracer();
  const bool traced = tr != nullptr && tr->enabled();
  int matched = 0;
  const sim::Time begin = ctx.sim().now();
  while (matched < count) {
    // Drain arrivals from the notification queue onto the on-device board
    // (direct deliveries — device-local or NIC board writes — are already
    // there).
    while (auto n = rs.notif_q.try_dequeue()) rs.board.deposit(*n);
    // Match in arrival order; mismatches stay (queue compression).
    int scanned = 0;
    const int matched_before = matched;
    sim::InvariantObserver* obs = ctx.sim().invariant_observer();
    auto& pending = rs.board.entries();
    for (auto it = pending.begin(); it != pending.end() && matched < count;) {
      ++scanned;
      if (notification_matches(*it, win_filter, source, tag)) {
        if (obs != nullptr) obs->notification_matched();
        it = pending.erase(it);
        ++matched;
      } else {
        ++it;
      }
    }
    if (traced) {
      tr->bump("match_rounds");
      tr->bump("notifications_matched", matched - matched_before);
      tr->bump("notifications_unmatched",
               scanned - (matched - matched_before));
    }
    // The matcher is compute-heavy (§III-C/§IV-B): charge its cost to the SM.
    const std::uint64_t epoch = rs.board.epoch();
    if (rc.charge_matching_cost) {
      co_await ctx.charge_compute_time(rc.match_round_cost +
                                       static_cast<double>(scanned) * rc.match_entry_cost);
    }
    if (matched >= count) break;
    // Re-check for arrivals during the matching round: queue commits or
    // direct board deposits (would be a lost wake-up otherwise).
    if (!rs.notif_q.empty() || rs.board.epoch() != epoch) continue;
    co_await rs.notif_q.nonempty_trigger().wait();
  }
  ctx.trace("wait", sim::Category::kWait, begin, ctx.sim().now());
}

sim::Proc<int> test_notifications(Context& ctx, std::int32_t win_filter, int source,
                                  int tag, int count) {
  rt::RankState& rs = *ctx.rs;
  const sim::RuntimeConfig& rc = ctx.node->config().runtime;
  while (auto n = rs.notif_q.try_dequeue()) rs.board.deposit(*n);
  int matched = 0;
  int scanned = 0;
  sim::InvariantObserver* obs = ctx.sim().invariant_observer();
  auto& pending = rs.board.entries();
  for (auto it = pending.begin(); it != pending.end() && matched < count;) {
    ++scanned;
    if (notification_matches(*it, win_filter, source, tag)) {
      if (obs != nullptr) obs->notification_matched();
      it = pending.erase(it);
      ++matched;
    } else {
      ++it;
    }
  }
  if (sim::Tracer* tr = ctx.tracer(); tr && tr->enabled()) {
    tr->bump("match_rounds");
    tr->bump("notifications_matched", matched);
    tr->bump("notifications_unmatched", scanned - matched);
  }
  if (rc.charge_matching_cost) {
    co_await ctx.charge_compute_time(rc.match_round_cost +
                                     static_cast<double>(scanned) * rc.match_entry_cost);
  }
  co_return matched;
}

sim::Proc<void> barrier(Context& ctx, Comm comm) {
  const sim::Time begin = ctx.sim().now();
  // Barrier domains for the oracle: the world communicator spans every rank
  // of this job (key -1 - job_tag); a device communicator spans one node's
  // device ranks (key = job-namespaced node id). The single-tenant keys are
  // the historical -1 / node id.
  const int comm_key = comm == Comm::kWorld
                           ? ctx.node->barrier_world_key()
                           : ctx.node->oracle_node(ctx.node->node());
  const int participants = comm == Comm::kWorld ? ctx.world_size : ctx.device_size;
  if (sim::InvariantObserver* obs = ctx.sim().invariant_observer(); obs != nullptr) {
    obs->barrier_enter(comm_key, ctx.node->oracle_rank(ctx.world_rank),
                       participants);
  }
  co_await charge_issue(ctx);
  rt::Command c;
  c.kind = rt::CmdKind::kBarrier;
  c.comm = comm;
  co_await ctx.rs->cmd_q.enqueue(c);
  rt::Ack a = co_await ctx.rs->ack_q.dequeue();
  assert(a.kind == rt::AckKind::kBarrierDone);
  (void)a;
  if (sim::InvariantObserver* obs = ctx.sim().invariant_observer(); obs != nullptr) {
    obs->barrier_exit(comm_key, ctx.node->oracle_rank(ctx.world_rank));
  }
  ctx.trace("barrier", sim::Category::kBarrier, begin, ctx.sim().now());
}

sim::Proc<void> finish(Context& ctx) {
  // The traced drain span covers waiting for all outstanding remote memory
  // accesses to complete (the host holds the kFinished ack until then).
  const sim::Time begin = ctx.sim().now();
  co_await charge_issue(ctx);
  rt::Command c;
  c.kind = rt::CmdKind::kFinish;
  c.flush_id = ctx.rs->next_flush_id;
  co_await ctx.rs->cmd_q.enqueue(c);
  rt::Ack a = co_await ctx.rs->ack_q.dequeue();
  assert(a.kind == rt::AckKind::kFinished);
  (void)a;
  ctx.trace("drain", sim::Category::kDrain, begin, ctx.sim().now());
}

sim::Proc<void> put_2d_notify(Context& ctx, Window win, int target_rank,
                              std::size_t offset, std::size_t row_bytes,
                              std::size_t rows, std::size_t target_stride,
                              const void* src, std::size_t src_stride, int tag) {
  // Rows are independent puts; only the last one carries the notification,
  // and notifications follow data completion in order, so the notification
  // still signals full-region arrival for same-target transfers.
  const std::byte* s = static_cast<const std::byte*>(src);
  for (std::size_t r = 0; r + 1 < rows; ++r) {
    co_await put(ctx, win, target_rank, offset + r * target_stride, row_bytes,
                 s + r * src_stride);
  }
  if (rows > 0) {
    co_await put_notify(ctx, win, target_rank, offset + (rows - 1) * target_stride,
                        row_bytes, s + (rows - 1) * src_stride, tag);
  }
}

sim::Proc<void> put_notify_all(Context& ctx, Window win, int target_device_rank,
                               std::size_t offset, std::size_t bytes, const void* src,
                               int tag) {
  rt::NodeRuntime& node = *ctx.node;
  const int rpd = node.ranks_per_device();
  const int rpn = node.ranks_per_node();
  const int target_node_id = target_device_rank / rpn;
  // One data transfer to the addressed rank, then zero-byte notified puts to
  // every other device rank of the same device (no duplicate payload, §V).
  co_await put_notify(ctx, win, target_device_rank, offset, bytes, src, tag);
  for (int r = 0; r < rpd; ++r) {
    const int rank = target_node_id * rpn + r;
    if (rank == target_device_rank) continue;
    co_await put_notify(ctx, win, rank, offset, 0, src, tag);
  }
}

sim::Proc<void> bcast_notify(Context& ctx, Window win, Comm comm, int root,
                             std::size_t offset, std::size_t bytes, void* buf, int tag) {
  // Binary-tree broadcast in the rank space relative to the root. Non-root
  // ranks first wait for their parent's notified put, then forward.
  const int size = comm_size(ctx, comm);
  const int me = comm_rank(ctx, comm);
  const int rel = (me - root + size) % size;
  const int base = comm == Comm::kWorld ? 0 : ctx.node->node() * ctx.device_size;
  if (rel != 0) {
    co_await wait_notifications(ctx, win.device_id, kAnySource, tag, 1);
  }
  for (int child = 2 * rel + 1; child <= 2 * rel + 2; ++child) {
    if (child >= size) break;
    const int child_rank = base + (child + root) % size;
    co_await put_notify(ctx, win, child_rank, offset, bytes, buf, tag);
  }
}

sim::Proc<void> log(Context& ctx, const char* text, std::int64_t value) {
  rt::LogEntry e;
  e.rank = ctx.world_rank;
  e.value = value;
  std::strncpy(e.text, text, sizeof(e.text) - 1);
  co_await charge_issue(ctx);
  co_await ctx.node->log_queue().enqueue(e);
}

}  // namespace dcuda
