#pragma once

// dCUDA device-side library — the public programming interface of the paper
// (Fig. 2), implemented as coroutines running inside simulated GPU blocks.
//
// Every CUDA block is an MPI-like rank. The library provides device-side
// remote memory access with target notification: window creation over a
// communicator, put/get with optional notification, notification matching
// with wildcards, window flushing, and barrier synchronization.
//
// Calling conventions follow the paper: all methods are called collectively
// by the threads of a block (here: once per block coroutine), and collective
// operations (init, win_create, win_free, barrier, finish) must be called by
// every rank of the communicator in the same order.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <type_traits>
#include <unordered_map>

#include "gpu/device.h"
#include "runtime/node_runtime.h"
#include "runtime/protocol.h"
#include "sim/proc.h"

namespace dcuda {

using rt::Comm;
inline constexpr Comm kCommWorld = Comm::kWorld;
inline constexpr Comm kCommDevice = Comm::kDevice;
inline constexpr int kAnySource = rt::kAnySource;
inline constexpr int kAnyTag = rt::kAnyTag;

// Kernel parameter injected by the launcher (the `param` argument of the
// paper's listing): everything the device library needs to reach its runtime.
struct KernelParam {
  rt::NodeRuntime* node = nullptr;
};

// Window handle. device_id is the rank-local identifier (translated to the
// global id by the block manager's hash map); global_id is filled in by the
// creation ack and used for direct shared-memory accesses.
struct Window {
  std::int32_t device_id = -1;
  std::int32_t global_id = -1;
  bool valid() const { return device_id >= 0; }
};

// Matches any window in wait/test_notifications.
inline constexpr std::int32_t kAnyWindow = -1;

// Per-rank context (the paper's dcuda_context): shared state for all
// library methods of one rank. A rank is either a device rank (block !=
// nullptr, running as a GPU block) or a host rank (§V extension: block ==
// nullptr, running on the host CPU but using the same RMA machinery).
class Context {
 public:
  gpu::BlockCtx* block = nullptr;  // null for host ranks
  rt::NodeRuntime* node = nullptr;
  rt::RankState* rs = nullptr;

  int world_rank = -1;
  int world_size = 0;
  int device_rank = -1;  // -1 for host ranks
  int device_size = 0;

  bool is_host_rank() const { return block == nullptr; }
  sim::Simulation& sim() { return node->simulation(); }

  // Charges compute/memory work to the rank's processor: the block's SM and
  // the device memory system, or the host CPU and host memory.
  sim::Proc<void> charge_compute(double flops);
  sim::Proc<void> charge_compute_time(sim::Dur dedicated_time);
  sim::Proc<void> charge_memory(double bytes);

  // The node's communication-protocol knobs (sim::RmaConfig: eager
  // threshold, aggregation window, batch caps).
  const sim::RmaConfig& rma_config() const;

  // The cluster's tracer (may be null; check enabled() before building
  // spans — see sim/trace.h).
  sim::Tracer* tracer() { return node->device().tracer(); }
  void trace(const char* activity, sim::Category category, sim::Time begin,
             sim::Time end, double bytes = 0.0);
};

// -- Setup -------------------------------------------------------------------

// Initializes the context from the kernel parameter (dcuda_init).
sim::Proc<void> init(Context& ctx, const KernelParam& param, gpu::BlockCtx& blk);

// Initializes a host-rank context (§V extension). `host_index` is the
// node-local host rank in [0, host_ranks_per_node).
sim::Proc<void> init_host(Context& ctx, const KernelParam& param, int host_index);

// Terminates the rank: drains outstanding remote memory accesses and
// unregisters from the runtime (dcuda_finish).
sim::Proc<void> finish(Context& ctx);

// Rank/size queries (dcuda_comm_rank / dcuda_comm_size).
int comm_rank(const Context& ctx, Comm comm);
int comm_size(const Context& ctx, Comm comm);

// -- Windows -----------------------------------------------------------------

// Collectively creates a window over `comm`, registering [base, base+bytes)
// of this rank's device memory (dcuda_win_create).
sim::Proc<Window> win_create(Context& ctx, Comm comm, void* base, std::size_t bytes);

template <typename T>
sim::Proc<Window> win_create(Context& ctx, Comm comm, std::span<T> range) {
  return win_create(ctx, comm, range.data(), range.size_bytes());
}

// Collectively frees the window (dcuda_win_free).
sim::Proc<void> win_free(Context& ctx, Window& win);

// -- Remote memory access ------------------------------------------------------

// Copies `bytes` from `src` (origin device memory) into the target rank's
// window at byte offset `offset`; on completion enqueues a notification
// tagged `tag` at the target (dcuda_put_notify).
sim::Proc<void> put_notify(Context& ctx, Window win, int target_rank,
                           std::size_t offset, std::size_t bytes, const void* src,
                           int tag);

// Same, without notification (dcuda_put).
sim::Proc<void> put(Context& ctx, Window win, int target_rank, std::size_t offset,
                    std::size_t bytes, const void* src);

// Reads `bytes` from the target rank's window at `offset` into `dst`; on
// completion enqueues a notification at the *origin* (dcuda_get_notify).
sim::Proc<void> get_notify(Context& ctx, Window win, int target_rank,
                           std::size_t offset, std::size_t bytes, void* dst, int tag);

sim::Proc<void> get(Context& ctx, Window win, int target_rank, std::size_t offset,
                    std::size_t bytes, void* dst);

// -- Typed span overloads ----------------------------------------------------
//
// Element-unit variants mirroring win_create(span): offsets count Ts, the
// span supplies pointer and length together. Spans never convert implicitly
// from raw pointers, so — unlike typed-pointer overloads, which would
// silently capture pointers passed to the byte-unit API and re-scale their
// offsets by sizeof(T) — these cannot be picked by accident. A deduced
// std::span<T> parameter also binds std::span<const T> arguments (T deduces
// as const T), so one overload covers both for the read-side calls.

template <typename T>
sim::Proc<void> put_notify(Context& ctx, Window win, int target_rank,
                           std::size_t elem_offset, std::span<T> src, int tag) {
  return put_notify(ctx, win, target_rank, elem_offset * sizeof(T),
                    src.size_bytes(), static_cast<const void*>(src.data()), tag);
}

template <typename T>
sim::Proc<void> put(Context& ctx, Window win, int target_rank,
                    std::size_t elem_offset, std::span<T> src) {
  return put(ctx, win, target_rank, elem_offset * sizeof(T), src.size_bytes(),
             static_cast<const void*>(src.data()));
}

template <typename T>
sim::Proc<void> get_notify(Context& ctx, Window win, int target_rank,
                           std::size_t elem_offset, std::span<T> dst, int tag) {
  static_assert(!std::is_const_v<T>, "get_notify writes into dst");
  return get_notify(ctx, win, target_rank, elem_offset * sizeof(T),
                    dst.size_bytes(), static_cast<void*>(dst.data()), tag);
}

template <typename T>
sim::Proc<void> get(Context& ctx, Window win, int target_rank,
                    std::size_t elem_offset, std::span<T> dst) {
  static_assert(!std::is_const_v<T>, "get writes into dst");
  return get(ctx, win, target_rank, elem_offset * sizeof(T), dst.size_bytes(),
             static_cast<void*>(dst.data()));
}

// Typed element-offset helper, kept as a thin wrapper over the span overload
// for existing callers holding (pointer, count) pairs.
template <typename T>
sim::Proc<void> put_notify_elems(Context& ctx, Window win, int target_rank,
                                 std::size_t elem_offset, std::size_t elem_count,
                                 const T* src, int tag) {
  return put_notify(ctx, win, target_rank, elem_offset,
                    std::span<const T>(src, elem_count), tag);
}

// Waits until all remote memory accesses issued by this rank completed
// (covers every window of the rank).
sim::Proc<void> flush(Context& ctx);

// The paper's window flush: waits until all of this rank's pending remote
// memory accesses *on this window* are done (dcuda_win_flush).
sim::Proc<void> win_flush(Context& ctx, Window win);

// -- Notifications -------------------------------------------------------------

// Blocks until `count` notifications matching (win, source, tag) arrived and
// removes them from the queue. Wildcards: kAnyWindow / kAnySource / kAnyTag.
// Matching is in order of arrival; mismatched notifications are kept
// (queue compression, §III-C).
sim::Proc<void> wait_notifications(Context& ctx, std::int32_t win_filter, int source,
                                   int tag, int count);
inline sim::Proc<void> wait_notifications(Context& ctx, Window win, int source,
                                          int tag, int count) {
  return wait_notifications(ctx, win.device_id, source, tag, count);
}

// Nonblocking variant: consumes up to `count` matches, returns how many.
sim::Proc<int> test_notifications(Context& ctx, std::int32_t win_filter, int source,
                                  int tag, int count);
inline sim::Proc<int> test_notifications(Context& ctx, Window win, int source,
                                         int tag, int count) {
  return test_notifications(ctx, win.device_id, source, tag, count);
}

// -- Collectives ----------------------------------------------------------------

// Globally synchronizes all ranks of the communicator (dcuda_barrier).
sim::Proc<void> barrier(Context& ctx, Comm comm);

// -- Extensions (paper §V) -------------------------------------------------------

// Rectangular put: copies `rows` rows of `row_bytes` each, with strides in
// bytes between consecutive rows on both sides (multi-dimensional storage).
sim::Proc<void> put_2d_notify(Context& ctx, Window win, int target_rank,
                              std::size_t offset, std::size_t row_bytes,
                              std::size_t rows, std::size_t target_stride,
                              const void* src, std::size_t src_stride, int tag);

// Typed span variant: offsets, row length, and strides all count Ts; `src`
// must cover the last row ((rows-1) * src_stride + row_elems elements).
template <typename T>
sim::Proc<void> put_2d_notify(Context& ctx, Window win, int target_rank,
                              std::size_t elem_offset, std::size_t row_elems,
                              std::size_t rows, std::size_t target_stride,
                              std::span<T> src, std::size_t src_stride, int tag) {
  assert(rows == 0 || (rows - 1) * src_stride + row_elems <= src.size());
  return put_2d_notify(ctx, win, target_rank, elem_offset * sizeof(T),
                       row_elems * sizeof(T), rows, target_stride * sizeof(T),
                       static_cast<const void*>(src.data()),
                       src_stride * sizeof(T), tag);
}

// Shared-memory multicast: performs the data transfer once and notifies
// every rank of the target device registered on the window.
sim::Proc<void> put_notify_all(Context& ctx, Window win, int target_device_rank,
                               std::size_t offset, std::size_t bytes, const void* src,
                               int tag);

// Nonblocking broadcast over `comm`: the root's buffer is distributed along a
// binary tree of notified puts; completion is signalled by a notification on
// `win` with tag `tag` at every non-root rank.
sim::Proc<void> bcast_notify(Context& ctx, Window win, Comm comm, int root,
                             std::size_t offset, std::size_t bytes, void* buf, int tag);

// -- Debugging -------------------------------------------------------------------

// Prints via the device->host logging queue (visible in NodeRuntime::log_lines).
sim::Proc<void> log(Context& ctx, const char* text, std::int64_t value);

}  // namespace dcuda
