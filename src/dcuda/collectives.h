#pragma once

// Collectives over notified remote memory access (paper §V: "we suggest to
// implement highly-efficient collectives that leverage shared memory").
//
// All operations are hierarchical: an intra-device stage uses device-local
// transfers between the ranks of one device, and only device
// representatives communicate across the network — one wire message per
// device per tree edge instead of one per rank.
//
// Usage is collective: every rank of the communicator calls create(), then
// the operations, with matching arguments; scratch windows are registered
// once and reused. Every tree round receives into its own scratch slot
// (payloads from different sources are unordered; sharing one landing
// buffer across rounds would race).

#include <cstdint>
#include <span>

#include "dcuda/dcuda.h"

namespace dcuda {

class Collectives {
 public:
  // Collectively creates the scratch windows for payloads of up to
  // `max_elems` doubles. Every world rank must participate.
  static sim::Proc<Collectives> create(Context& ctx, std::size_t max_elems);

  // Collectively releases the scratch windows.
  sim::Proc<void> destroy(Context& ctx);

  // Sum-reduction of `elems` doubles into `root`'s (world rank) `data`
  // buffer. Non-root buffers are consumed as partial inputs and left
  // unspecified afterwards.
  sim::Proc<void> reduce_sum(Context& ctx, int root, double* data,
                             std::size_t elems, int tag);

  // Broadcast of `elems` doubles from `root`'s `data` buffer into every
  // rank's `data` buffer.
  sim::Proc<void> bcast(Context& ctx, int root, double* data, std::size_t elems,
                        int tag);

  // reduce_sum to rank 0 followed by bcast (tree allreduce).
  sim::Proc<void> allreduce_sum(Context& ctx, double* data, std::size_t elems,
                                int tag);

  std::size_t max_elems() const { return max_elems_; }

 private:
  // Scratch slot layout: `rounds` consecutive regions of max_elems doubles.
  std::size_t slot_offset(int round) const {
    return static_cast<std::size_t>(round) * max_elems_ * sizeof(double);
  }
  double* slot_ptr(int round) { return scratch_.data() + static_cast<std::size_t>(round) * max_elems_; }

  Window win_;                 // over this rank's scratch
  std::span<double> scratch_;  // rounds x max_elems
  std::size_t max_elems_ = 0;
  int rounds_ = 0;
};

}  // namespace dcuda
