#include "dcuda/collectives.h"

#include <cassert>
#include <cstring>

namespace dcuda {

namespace {

// Acks use a reserved tag offset so one user tag covers data + control.
constexpr int kAckTagOffset = 1 << 20;

int ceil_log2(int n) {
  int r = 0;
  while ((1 << r) < n) ++r;
  return r;
}

}  // namespace

sim::Proc<Collectives> Collectives::create(Context& ctx, std::size_t max_elems) {
  Collectives c;
  c.max_elems_ = max_elems;
  const int rpn = ctx.node->ranks_per_node();
  const int nodes = ctx.node->num_nodes();
  c.rounds_ = ceil_log2(std::max(rpn, 1)) + ceil_log2(std::max(nodes, 1)) + 2;
  c.scratch_ = ctx.node->device().alloc<double>(static_cast<std::size_t>(c.rounds_) *
                                                max_elems);
  c.win_ = co_await win_create(ctx, kCommWorld, c.scratch_);
  co_return c;
}

sim::Proc<void> Collectives::destroy(Context& ctx) { co_await win_free(ctx, win_); }

sim::Proc<void> Collectives::reduce_sum(Context& ctx, int root, double* data,
                                        std::size_t elems, int tag) {
  assert(elems <= max_elems_);
  const int rpd = ctx.node->ranks_per_node();
  const int nodes = ctx.node->num_nodes();
  const int node_id = ctx.node->node();
  const int root_node = root / rpd;
  const int root_local = root % rpd;
  const int my_local = ctx.world_rank % rpd;
  // Representative (local rank) of each device for the cross-device stage:
  // the root itself on its device, local rank 0 elsewhere.
  const int rep_local = node_id == root_node ? root_local : 0;

  // Stage A: in-device reduction to the representative. Rotate indices so
  // the representative is member 0 of the tree.
  if (rpd > 1) {
    const int my_rel = (my_local - rep_local + rpd) % rpd;
    // Member rel -> world rank.
    const int base = node_id * rpd;
    // Express rotation through an offset table: rank_of(rel) must be
    // base + ((rel + rep_local) % rpd). A simple stride cannot express the
    // wrap, so reduce within two contiguous runs is incorrect — instead use
    // the generic loop below with explicit ranks.
    int round = 0;
    bool done = false;
    for (int step = 1; step < rpd && !done; step *= 2, ++round) {
      const int slot_round = round;
      if (my_rel % (2 * step) == step) {
        const int parent = base + (my_rel - step + rep_local) % rpd;
        co_await put_notify(ctx, win_, parent, slot_offset(slot_round),
                            elems * sizeof(double), data, tag);
        co_await flush(ctx);
        co_await wait_notifications(ctx, win_, parent, tag + kAckTagOffset, 1);
        done = true;
      } else if (my_rel % (2 * step) == 0 && my_rel + step < rpd) {
        const int child = base + (my_rel + step + rep_local) % rpd;
        co_await wait_notifications(ctx, win_, child, tag, 1);
        double* slot = slot_ptr(slot_round);
        for (std::size_t i = 0; i < elems; ++i) data[i] += slot[i];
        co_await ctx.charge_memory(3.0 * static_cast<double>(elems) *
                                        sizeof(double));
        co_await put_notify(ctx, win_, child, slot_offset(slot_round), 0, nullptr,
                            tag + kAckTagOffset);
      }
    }
    if (done) co_return;  // non-representatives are finished
  }
  if (my_local != rep_local) co_return;

  // Stage B: cross-device reduction over the representatives.
  if (nodes > 1) {
    const int round_base = ceil_log2(std::max(rpd, 1));
    const int my_rel = (node_id - root_node + nodes) % nodes;
    auto rep_rank = [&](int rel) {
      const int dev = (rel + root_node) % nodes;
      return dev * rpd + (dev == root_node ? root_local : 0);
    };
    int round = 0;
    for (int step = 1; step < nodes; step *= 2, ++round) {
      const int slot_round = round_base + round;
      if (my_rel % (2 * step) == step) {
        const int parent = rep_rank(my_rel - step);
        co_await put_notify(ctx, win_, parent, slot_offset(slot_round),
                            elems * sizeof(double), data, tag);
        co_await flush(ctx);
        co_await wait_notifications(ctx, win_, parent, tag + kAckTagOffset, 1);
        co_return;
      }
      if (my_rel % (2 * step) == 0 && my_rel + step < nodes) {
        const int child = rep_rank(my_rel + step);
        co_await wait_notifications(ctx, win_, child, tag, 1);
        double* slot = slot_ptr(slot_round);
        for (std::size_t i = 0; i < elems; ++i) data[i] += slot[i];
        co_await ctx.charge_memory(3.0 * static_cast<double>(elems) *
                                        sizeof(double));
        co_await put_notify(ctx, win_, child, slot_offset(slot_round), 0, nullptr,
                            tag + kAckTagOffset);
      }
    }
    co_await flush(ctx);
  }
}

sim::Proc<void> Collectives::bcast(Context& ctx, int root, double* data,
                                   std::size_t elems, int tag) {
  assert(elems <= max_elems_);
  const int rpd = ctx.node->ranks_per_node();
  const int nodes = ctx.node->num_nodes();
  const int node_id = ctx.node->node();
  const int root_node = root / rpd;
  const int root_local = root % rpd;
  const int my_local = ctx.world_rank % rpd;
  const int rep_local = node_id == root_node ? root_local : 0;
  const int slot = rounds_ - 1;  // single landing slot: one sender per rank

  // Stage A: cross-device binary tree over representatives (into the
  // landing slot, copied to data, acked).
  if (my_local == rep_local && nodes > 1) {
    const int my_rel = (node_id - root_node + nodes) % nodes;
    auto rep_rank = [&](int rel) {
      const int dev = (rel + root_node) % nodes;
      return dev * rpd + (dev == root_node ? root_local : 0);
    };
    if (my_rel != 0) {
      const int parent_rel = (my_rel - 1) / 2;
      const int parent = rep_rank(parent_rel);
      co_await wait_notifications(ctx, win_, parent, tag, 1);
      std::memcpy(data, slot_ptr(slot), elems * sizeof(double));
      co_await ctx.charge_memory(2.0 * static_cast<double>(elems) * sizeof(double));
      co_await put_notify(ctx, win_, parent, 0, 0, nullptr, tag + kAckTagOffset);
    }
    int acks_expected = 0;
    for (int child_rel = 2 * my_rel + 1; child_rel <= 2 * my_rel + 2; ++child_rel) {
      if (child_rel >= nodes) break;
      co_await put_notify(ctx, win_, rep_rank(child_rel), slot_offset(slot),
                          elems * sizeof(double), data, tag);
      ++acks_expected;
    }
    co_await flush(ctx);
    co_await wait_notifications(ctx, win_, kAnySource, tag + kAckTagOffset,
                                acks_expected);
  }

  // Stage B: in-device binary tree from the representative.
  if (rpd > 1) {
    const int my_rel = (my_local - rep_local + rpd) % rpd;
    const int base = node_id * rpd;
    auto local_rank = [&](int rel) { return base + (rel + rep_local) % rpd; };
    if (my_rel != 0) {
      const int parent = local_rank((my_rel - 1) / 2);
      co_await wait_notifications(ctx, win_, parent, tag, 1);
      std::memcpy(data, slot_ptr(slot), elems * sizeof(double));
      co_await ctx.charge_memory(2.0 * static_cast<double>(elems) * sizeof(double));
      co_await put_notify(ctx, win_, parent, 0, 0, nullptr, tag + kAckTagOffset);
    }
    int acks_expected = 0;
    for (int child_rel = 2 * my_rel + 1; child_rel <= 2 * my_rel + 2; ++child_rel) {
      if (child_rel >= rpd) break;
      co_await put_notify(ctx, win_, local_rank(child_rel), slot_offset(slot),
                          elems * sizeof(double), data, tag);
      ++acks_expected;
    }
    co_await flush(ctx);
    co_await wait_notifications(ctx, win_, kAnySource, tag + kAckTagOffset,
                                acks_expected);
  }
}

sim::Proc<void> Collectives::allreduce_sum(Context& ctx, double* data,
                                           std::size_t elems, int tag) {
  co_await reduce_sum(ctx, /*root=*/0, data, elems, tag);
  co_await bcast(ctx, /*root=*/0, data, elems, tag + 2);
}

}  // namespace dcuda
