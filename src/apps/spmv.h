#pragma once

// Mini-application 3 (§IV-C): sparse matrix-vector multiplication followed
// by a barrier — the worst case for dCUDA's overlap philosophy.
//
// The matrix is stored in CSR and distributed over a square 2-D grid of
// devices (pr x pc, nodes = pr*pc). The input vector lives along the first
// row, the output along the first column. Each iteration:
//   1) broadcast the input chunk down the columns (manual binary tree),
//   2) local matrix-vector product (each rank owns a slice of rows),
//   3) reduce the partial outputs along the rows (manual binary tree),
//   4) global barrier.
// The dCUDA variant over-decomposes along the columns (deeper broadcast
// tree, same message sizes) and reduces with one message per rank (more,
// smaller messages) — both effects the paper discusses.

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "sim/proc.h"

namespace dcuda::apps::spmv {

struct Config {
  int n_dev = 8320;        // rows/cols per device patch (divisible by ranks)
  double density = 0.001;  // paper: 0.1% random population
  int iterations = 100;
  std::uint64_t seed = 7;
  bool compute = true;
  bool exchange = true;
};

struct Result {
  sim::Dur elapsed = 0.0;
  double checksum = 0.0;  // sum over the reduced output vector
};

// CSR patch for device grid position (brow, bcol); deterministic.
struct CsrPatch {
  std::vector<std::int32_t> row_ptr;  // n+1
  std::vector<std::int32_t> col;
  std::vector<double> val;
};
CsrPatch make_patch(const Config& cfg, int brow, int bcol);

// Deterministic input vector entry (global index).
double input_value(std::int64_t i);

// Serial reference: y = A x on the assembled global matrix.
double reference_checksum(const Config& cfg, int num_nodes);

Result run_dcuda(Cluster& cluster, const Config& cfg);
Result run_mpi_cuda(Cluster& cluster, const Config& cfg);

}  // namespace dcuda::apps::spmv
