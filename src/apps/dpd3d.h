#pragma once

// 3-D short-range DPD-style particle application (ROADMAP item 5).
//
// The cubic domain is decomposed into a near-cubic 3-D grid of cells, one
// cell per rank (net::exact_grid_dims fits the grid around nodes x
// ranks_per_device; a prime rank count degenerates to the 1-D N x 1 x 1
// case). The cell edge equals the cutoff radius, so forces act only between
// particles of the same or one of the 26 surrounding cells — the
// Microfluidics-CC halo pattern: a dir2rank[27] neighbor table, a compacted
// active-neighbour list (domain-boundary directions are inactive; walls
// reflect), and per-direction packed send buffers shipped as notified puts.
//
// Main loop per iteration:
//   1) 27-direction halo exchange: for every active direction, particles
//      within the cutoff of the shared face/edge/corner are packed into that
//      direction's send buffer (positions + velocities — the dissipative
//      force needs relative velocities) and shipped as one put plus one
//      notified count put per direction — 26 small messages per rank, the
//      workload the eager-aggregation path (sim::RmaConfig) batches.
//   2) DPD force computation (conservative soft repulsion + deterministic
//      dissipative drag; the stochastic term is omitted so every variant is
//      bitwise reproducible) and Euler position update, reflecting walls.
//   3) Sort-out: movers leave into one of 26 per-direction outboxes
//      (diagonal moves go directly to the diagonal neighbor).
//   4) Migration: per-direction notified puts into the neighbors' inboxes.
//   5) Arrival integration in fixed direction order.
//
// The dCUDA variant runs one rank per block with overlapped notified puts;
// the MPI-CUDA baseline alternates fork-join kernels with two-sided MPI and
// per-iteration D2H bookkeeping fetches. Both call the same physics core in
// the same floating-point order, so results are bitwise comparable (and are
// validated against the serial reference on the global domain).
//
// Density scenarios: kUniform fills every cell identically; kSkewed
// concentrates the same particle total into a Gaussian blob (largest-
// remainder rounding keeps the count decomposition-invariant) and gives
// every particle a coherent drift, so the dense region marches across the
// rank grid — the dynamic-load-imbalance regime of Fig. 9, now in 3-D.
//
// Rebalance mode (stretch): blocks adopt overloaded neighbours' force work.
// Every rank already learns its 26 neighbours' particle counts from the
// halo count puts; a rank above the neighbourhood average offloads the
// excess share of its pair-scan *cost* to its underloaded neighbours via
// per-direction work tickets (one more small notified put per direction —
// eager-path food). Adoption is modeled at the cost layer: the helper block
// charges the adopted flops/bytes against its own SM, the overloaded block
// charges only the kept share. Particle data never moves (the halo copies
// already gave the helper the positions), so physics results are bitwise
// identical with rebalance on or off — only the schedule changes.

#include <array>
#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "sim/proc.h"

namespace dcuda::apps::dpd3d {

// 27-direction index space: dir = (dx+1) + 3*(dy+1) + 9*(dz+1) with each
// offset in {-1, 0, +1}. kSelf (13) is the zero offset; opposite(d) mirrors
// all three axes.
inline constexpr int kDirs = 27;
inline constexpr int kSelf = 13;
inline constexpr int opposite(int dir) { return kDirs - 1 - dir; }
inline constexpr std::array<int, 3> dir_offset(int dir) {
  return {dir % 3 - 1, (dir / 3) % 3 - 1, dir / 9 - 1};
}

enum class Density : std::int32_t {
  kUniform = 0,  // every cell starts with particles_per_cell particles
  kSkewed = 1,   // same total, concentrated in a drifting Gaussian blob
};

struct Config {
  int cells_per_node = 8;        // one cell per rank (= ranks_per_device)
  int particles_per_cell = 24;   // average initial occupancy
  int capacity_factor = 6;       // per-cell storage slack (skew needs > 4x)
  int iterations = 20;
  // Explicit grid dimensions; all zero = exact near-cubic auto fit around
  // nodes * cells_per_node (net::exact_grid_dims). Degenerate grids
  // (1 x 1 x N, 2 x 2 x 2, ...) are first-class.
  int grid_x = 0;
  int grid_y = 0;
  int grid_z = 0;
  // Cell geometry and force model. cell_width must be >= cutoff so the
  // 27-cell neighbourhood covers every interacting pair.
  double cell_width = 1.0;
  double cutoff = 1.0;
  double dt = 0.01;
  double force_a = 4.0;     // conservative DPD repulsion strength
  double force_gamma = 1.5; // deterministic dissipative drag strength
  // Density scenario (docs/FIGURES.md "fig_dpd3d").
  Density density = Density::kUniform;
  double skew_sigma = 0.9;   // blob radius in cells
  double skew_drift = 0.35;  // coherent drift speed (cells per time unit)
  std::uint64_t seed = 42;
  // Work-adoption rebalance (dCUDA variant only; needs exchange on).
  bool rebalance = false;
  double rebalance_trigger = 1.25;  // offload above trigger * neighbourhood avg
  // Runtime switches (§IV-B methodology).
  bool compute = true;
  bool exchange = true;
  // Records the per-iteration pair-scan imbalance curve into
  // Result::iter_imbalance (max over ranks / mean over ranks).
  bool record_load = false;
  // In-tree mutation knob (docs/TESTING.md): drops the last record from
  // every non-empty migration send buffer, which must fire the
  // particle-conservation oracle in tests and fuzz lanes.
  bool break_compaction = false;
  int capacity() const { return particles_per_cell * capacity_factor; }
};

struct Result {
  sim::Dur elapsed = 0.0;
  std::int64_t total_particles = 0;  // conservation: must equal the initial total
  double checksum = 0.0;             // sum of |x|+|y|+|z| over all particles
  double momentum_x = 0.0;
  double momentum_y = 0.0;
  double momentum_z = 0.0;
  std::int32_t max_cell_count = 0;   // peak final occupancy (skew indicator)
  // Halo-oracle counters (both parallel variants and the reference): every
  // received halo record is
  // checked to lie inside the sender's cell box and within the cutoff band
  // of the receiver's box; violations count geometry breaches, the total is
  // the completeness side (tests compare it against the expected pure-
  // function count).
  std::int64_t halo_received_total = 0;
  std::int64_t halo_violations = 0;
  std::int64_t work_tickets = 0;     // rebalance: offloaded scan batches
  std::vector<double> iter_imbalance;  // record_load: max/mean scans per iter
};

// Rank grid geometry shared by all variants and the tests: dimensions,
// cell <-> rank mapping, the dir2rank table and the compacted active list.
struct Grid {
  int gx = 0, gy = 0, gz = 0;
  int cells() const { return gx * gy * gz; }
  std::array<int, 3> coords(int cell) const {
    return {cell / (gy * gz), (cell / gz) % gy, cell % gz};
  }
  int cell_at(int cx, int cy, int cz) const { return (cx * gy + cy) * gz + cz; }
  // Global cell (== global rank) of the neighbor in direction `dir`, or -1
  // outside the non-periodic domain.
  int dir2cell(int cell, int dir) const;
  // dir2rank[27] table for one cell: dir2cell for every direction, kSelf
  // mapped to the cell itself.
  std::array<int, kDirs> dir2rank(int cell) const;
  // Compacted active-neighbour directions (kSelf and out-of-domain excluded).
  std::vector<int> active_dirs(int cell) const;
};

// Grid for a cluster geometry (explicit Config dims or exact near-cubic
// fit). Asserts the grid is a bijection onto nodes * cells_per_node ranks.
Grid make_grid(const Config& cfg, int num_nodes);

// Initial particle count of global cell `cell` (pure, decomposition
// invariant; kSkewed uses largest-remainder rounding so the global total is
// exactly cells * particles_per_cell).
int initial_count(const Config& cfg, const Grid& grid, int cell);

// Deterministic initial particles of one cell, 6 doubles per record
// (x, y, z, vx, vy, vz) — the seeding every variant starts from, exposed so
// tests can compute halo-completeness expectations from first principles.
std::vector<std::array<double, 6>> initial_particles(const Config& cfg,
                                                     const Grid& grid, int cell);

// True when a particle at (x, y, z) inside `cell` must be shipped to the
// neighbor in direction `dir`: within the cutoff of the shared face along
// every axis the direction offsets (the halo-oracle predicate).
bool ship_to_dir(const Config& cfg, const Grid& grid, int cell, int dir,
                 double x, double y, double z);

// Serial reference simulation on the global domain.
Result reference(const Config& cfg, int num_nodes);

Result run_dcuda(Cluster& cluster, const Config& cfg);
Result run_mpi_cuda(Cluster& cluster, const Config& cfg);

}  // namespace dcuda::apps::dpd3d
