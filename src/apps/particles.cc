#include "apps/particles.h"

#include <cassert>
#include <cmath>
#include <cstring>
#include <span>

#include "baseline/mpi_cuda.h"
#include "sim/random.h"

namespace dcuda::apps::particles {

namespace {

// A view of one cell's (or halo slot's) particle storage.
struct CellView {
  double* x = nullptr;
  double* y = nullptr;
  double* vx = nullptr;
  double* vy = nullptr;
  std::int32_t count = 0;
};

// Deterministic initial particle placement for global cell `gc`. The same
// particles appear regardless of decomposition, so all variants (and the
// serial reference) start identically.
void init_cell(const Config& cfg, int gc, CellView v) {
  sim::Rng rng(cfg.seed ^ (0x9e37ull * static_cast<std::uint64_t>(gc + 1)));
  for (int i = 0; i < cfg.particles_per_cell; ++i) {
    v.x[i] = (gc + rng.next_double()) * cfg.cell_width;
    v.y[i] = rng.next_double() * cfg.domain_height;
    v.vx[i] = rng.uniform(-0.5, 0.5) * cfg.cell_width / 10.0;
    v.vy[i] = rng.uniform(-0.5, 0.5) * cfg.cell_width / 10.0;
  }
}

// Short-range repulsive pair force on particle (xi, yi) from neighbors in
// `other`; accumulates into (fx, fy) and counts interactions scanned.
void accumulate_forces(const Config& cfg, double xi, double yi, const CellView& other,
                       const double* self_x, int self_idx, double& fx, double& fy) {
  for (int j = 0; j < other.count; ++j) {
    if (other.x == self_x && j == self_idx) continue;
    const double dx = xi - other.x[j];
    const double dy = yi - other.y[j];
    const double r2 = dx * dx + dy * dy;
    if (r2 >= cfg.cutoff * cfg.cutoff || r2 == 0.0) continue;
    const double r = std::sqrt(r2);
    const double f = cfg.force_k * (1.0 - r / cfg.cutoff) / r;
    fx += f * dx;
    fy += f * dy;
  }
}

// Phase 2 for one cell: forces from {left, self, right} then simplified
// Verlet update with reflecting walls. Returns pair-scan count (cost model).
std::int64_t force_and_update(const Config& cfg, CellView self, const CellView& left,
                              const CellView& right, double domain_width) {
  std::int64_t scans = 0;
  // Forces use the pre-update positions: compute all accelerations first.
  std::vector<double> ax(static_cast<size_t>(self.count), 0.0);
  std::vector<double> ay(static_cast<size_t>(self.count), 0.0);
  for (int i = 0; i < self.count; ++i) {
    double fx = 0.0, fy = 0.0;
    accumulate_forces(cfg, self.x[i], self.y[i], left, self.x, i, fx, fy);
    accumulate_forces(cfg, self.x[i], self.y[i], self, self.x, i, fx, fy);
    accumulate_forces(cfg, self.x[i], self.y[i], right, self.x, i, fx, fy);
    ax[static_cast<size_t>(i)] = fx;
    ay[static_cast<size_t>(i)] = fy;
    scans += left.count + self.count + right.count;
  }
  for (int i = 0; i < self.count; ++i) {
    self.vx[i] += ax[static_cast<size_t>(i)] * cfg.dt;
    self.vy[i] += ay[static_cast<size_t>(i)] * cfg.dt;
    self.x[i] += self.vx[i] * cfg.dt;
    self.y[i] += self.vy[i] * cfg.dt;
    if (self.x[i] < 0.0) {
      self.x[i] = -self.x[i];
      self.vx[i] = -self.vx[i];
    }
    if (self.x[i] > domain_width) {
      self.x[i] = 2.0 * domain_width - self.x[i];
      self.vx[i] = -self.vx[i];
    }
    if (self.y[i] < 0.0) {
      self.y[i] = -self.y[i];
      self.vy[i] = -self.vy[i];
    }
    if (self.y[i] > cfg.domain_height) {
      self.y[i] = 2.0 * cfg.domain_height - self.y[i];
      self.vy[i] = -self.vy[i];
    }
  }
  return scans;
}

// Phase 3 for one cell: stable-compacts stayers, appends movers to the
// left/right outboxes. Cell boundaries are [gc*cell_width, (gc+1)*cell_width).
struct SortResult {
  std::int32_t left = 0;
  std::int32_t right = 0;
};
SortResult sort_out(const Config& cfg, int gc, CellView self, std::int32_t* count,
                    CellView lout, CellView rout) {
  const double lo = gc * cfg.cell_width, hi = (gc + 1) * cfg.cell_width;
  SortResult res;
  int keep = 0;
  for (int i = 0; i < *count; ++i) {
    CellView* dst = nullptr;
    int idx = 0;
    if (self.x[i] < lo) {
      assert(self.x[i] >= lo - cfg.cell_width && "particle hopped two cells");
      dst = &lout;
      idx = res.left++;
    } else if (self.x[i] >= hi) {
      assert(self.x[i] < hi + cfg.cell_width && "particle hopped two cells");
      dst = &rout;
      idx = res.right++;
    }
    if (dst != nullptr) {
      dst->x[idx] = self.x[i];
      dst->y[idx] = self.y[i];
      dst->vx[idx] = self.vx[i];
      dst->vy[idx] = self.vy[i];
    } else {
      self.x[keep] = self.x[i];
      self.y[keep] = self.y[i];
      self.vx[keep] = self.vx[i];
      self.vy[keep] = self.vy[i];
      ++keep;
    }
  }
  *count = keep;
  return res;
}

// Phase 5: appends `n` arrivals from `from` to the cell.
void append(CellView self, std::int32_t* count, const CellView& from, int n, int cap) {
  assert(*count + n <= cap && "cell overflow: increase capacity_factor");
  (void)cap;
  for (int i = 0; i < n; ++i) {
    const int d = (*count)++;
    self.x[d] = from.x[i];
    self.y[d] = from.y[i];
    self.vx[d] = from.vx[i];
    self.vy[d] = from.vy[i];
  }
}

// Simulated per-iteration cost of one rank's cell (charged to the SM and the
// device memory system; the innermost force loop performs two memory
// accesses per scanned pair, §IV-C).
sim::Proc<void> charge_iteration(gpu::BlockCtx& blk, std::int64_t pair_scans,
                                 int particles, int moved) {
  const double scans = static_cast<double>(pair_scans);
  co_await blk.compute_flops(scans * 12.0 + particles * 10.0);
  co_await blk.mem_traffic(scans * 2.0 * sizeof(double) +
                           particles * 10.0 * sizeof(double) +
                           moved * 8.0 * sizeof(double));
}

// Per-device particle storage. Cells are rank-local (one cell per rank);
// every rank additionally owns two halo slots (copies of the neighboring
// cells' particles) and two migration inboxes.
//
// NOTE (documented deviation): the paper overlaps the windows of shared
// memory ranks so that intra-device halo puts move no data. That leaves the
// force phase reading live neighbor positions, which races with the
// neighbor's position update. We keep dedicated halo slots per rank instead
// (intra-device halo puts become device-local copies), trading a little
// intra-device bandwidth for deterministic, validatable physics.
struct DeviceParticles {
  std::span<double> x, y, vx, vy;       // cell storage, cap per cell
  std::span<std::int32_t> count;         // per cell
  std::span<double> hx, hy;              // halo slots: (rank, side) x cap
  std::span<std::int32_t> hcount;        // (rank, side)
  std::span<double> ibx, iby, ibvx, ibvy;  // inboxes: (rank, side) x cap
  std::span<std::int32_t> ibcount;       // (rank, side)
  std::span<double> obx, oby, obvx, obvy;  // outboxes (not windowed)
  std::span<std::int32_t> obcount;         // (rank, side)
  int cap = 0;

  CellView cell(int r) {
    const size_t o = static_cast<size_t>(r) * cap;
    return CellView{&x[o], &y[o], &vx[o], &vy[o], count[static_cast<size_t>(r)]};
  }
  // side: 0 = left (data of the left neighbor), 1 = right.
  CellView halo(int r, int side) {
    const size_t o = (static_cast<size_t>(r) * 2 + side) * cap;
    return CellView{&hx[o], &hy[o], nullptr, nullptr,
                    hcount[static_cast<size_t>(r) * 2 + static_cast<size_t>(side)]};
  }
  CellView inbox(int r, int side) {
    const size_t o = (static_cast<size_t>(r) * 2 + side) * cap;
    return CellView{&ibx[o], &iby[o], &ibvx[o], &ibvy[o],
                    ibcount[static_cast<size_t>(r) * 2 + static_cast<size_t>(side)]};
  }
  CellView outbox(int r, int side) {
    const size_t o = (static_cast<size_t>(r) * 2 + side) * cap;
    return CellView{&obx[o], &oby[o], &obvx[o], &obvy[o], 0};
  }
};

DeviceParticles make_device(gpu::Device& dev, const Config& cfg, int rpd,
                            int node_id) {
  DeviceParticles p;
  p.cap = cfg.capacity();
  const size_t cells = static_cast<size_t>(rpd);
  const size_t n = cells * p.cap;
  p.x = dev.alloc<double>(n);
  p.y = dev.alloc<double>(n);
  p.vx = dev.alloc<double>(n);
  p.vy = dev.alloc<double>(n);
  p.count = dev.alloc<std::int32_t>(cells);
  p.hx = dev.alloc<double>(2 * n);
  p.hy = dev.alloc<double>(2 * n);
  p.hcount = dev.alloc<std::int32_t>(2 * cells);
  p.ibx = dev.alloc<double>(2 * n);
  p.iby = dev.alloc<double>(2 * n);
  p.ibvx = dev.alloc<double>(2 * n);
  p.ibvy = dev.alloc<double>(2 * n);
  p.ibcount = dev.alloc<std::int32_t>(2 * cells);
  p.obx = dev.alloc<double>(2 * n);
  p.oby = dev.alloc<double>(2 * n);
  p.obvx = dev.alloc<double>(2 * n);
  p.obvy = dev.alloc<double>(2 * n);
  p.obcount = dev.alloc<std::int32_t>(2 * cells);
  std::fill(p.count.begin(), p.count.end(), 0);
  std::fill(p.hcount.begin(), p.hcount.end(), 0);
  std::fill(p.ibcount.begin(), p.ibcount.end(), 0);
  std::fill(p.obcount.begin(), p.obcount.end(), 0);
  for (int r = 0; r < rpd; ++r) {
    init_cell(cfg, node_id * rpd + r, p.cell(r));
    p.count[static_cast<size_t>(r)] = cfg.particles_per_cell;
  }
  return p;
}

Result collect(const Config& cfg, int rpd, std::vector<DeviceParticles>& devs) {
  Result res;
  for (auto& p : devs) {
    for (int r = 0; r < rpd; ++r) {
      CellView c = p.cell(r);
      res.total_particles += c.count;
      for (int i = 0; i < c.count; ++i) {
        res.checksum += std::abs(c.x[i]) + std::abs(c.y[i]);
        res.momentum_x += c.vx[i];
        res.momentum_y += c.vy[i];
      }
    }
  }
  (void)cfg;
  return res;
}

}  // namespace

Result reference(const Config& cfg, int num_nodes) {
  const int cells = cfg.cells_per_node * num_nodes;
  const int cap = cfg.capacity();
  const double width = cells * cfg.cell_width;
  std::vector<double> x(static_cast<size_t>(cells) * cap), y(x.size()), vx(x.size()),
      vy(x.size());
  std::vector<std::int32_t> count(static_cast<size_t>(cells), cfg.particles_per_cell);
  auto cell = [&](int c) {
    const size_t o = static_cast<size_t>(c) * cap;
    return CellView{&x[o], &y[o], &vx[o], &vy[o], count[static_cast<size_t>(c)]};
  };
  for (int c = 0; c < cells; ++c) init_cell(cfg, c, cell(c));

  // Halo copies + outboxes, mirroring the parallel phase structure exactly.
  std::vector<double> hx(static_cast<size_t>(2 * cells) * cap), hy(hx.size());
  std::vector<std::int32_t> hcount(static_cast<size_t>(2 * cells), 0);
  std::vector<double> obx(hx.size()), oby(hx.size()), obvx(hx.size()), obvy(hx.size());
  std::vector<std::int32_t> obcount(static_cast<size_t>(2 * cells), 0);
  auto halo = [&](int c, int side) {
    const size_t o = (static_cast<size_t>(c) * 2 + side) * cap;
    return CellView{&hx[o], &hy[o], nullptr, nullptr,
                    hcount[static_cast<size_t>(c * 2 + side)]};
  };
  auto outbox = [&](int c, int side) {
    const size_t o = (static_cast<size_t>(c) * 2 + side) * cap;
    return CellView{&obx[o], &oby[o], &obvx[o], &obvy[o],
                    obcount[static_cast<size_t>(c * 2 + side)]};
  };

  for (int it = 0; it < cfg.iterations; ++it) {
    // 1) halo exchange: copy neighbor boundary cells.
    for (int c = 0; c < cells; ++c) {
      for (int side = 0; side < 2; ++side) {
        const int nb = side == 0 ? c - 1 : c + 1;
        CellView h = halo(c, side);
        if (nb < 0 || nb >= cells) {
          hcount[static_cast<size_t>(c * 2 + side)] = 0;
          continue;
        }
        CellView src = cell(nb);
        std::memcpy(h.x, src.x, static_cast<size_t>(src.count) * sizeof(double));
        std::memcpy(h.y, src.y, static_cast<size_t>(src.count) * sizeof(double));
        hcount[static_cast<size_t>(c * 2 + side)] = src.count;
      }
    }
    // 2) force + update (all cells, reading halo copies).
    for (int c = 0; c < cells; ++c) {
      force_and_update(cfg, cell(c), halo(c, 0), halo(c, 1), width);
    }
    // 3) sort out movers.
    for (int c = 0; c < cells; ++c) {
      SortResult s = sort_out(cfg, c, cell(c), &count[static_cast<size_t>(c)],
                              outbox(c, 0), outbox(c, 1));
      obcount[static_cast<size_t>(c * 2 + 0)] = s.left;
      obcount[static_cast<size_t>(c * 2 + 1)] = s.right;
    }
    // 4+5) deliver and integrate (left arrivals first, then right).
    for (int c = 0; c < cells; ++c) {
      if (c > 0) {
        CellView from = outbox(c - 1, 1);
        from.count = obcount[static_cast<size_t>((c - 1) * 2 + 1)];
        append(cell(c), &count[static_cast<size_t>(c)], from, from.count, cap);
      }
      if (c + 1 < cells) {
        CellView from = outbox(c + 1, 0);
        from.count = obcount[static_cast<size_t>((c + 1) * 2 + 0)];
        append(cell(c), &count[static_cast<size_t>(c)], from, from.count, cap);
      }
    }
  }

  Result res;
  for (int c = 0; c < cells; ++c) {
    CellView v = cell(c);
    res.total_particles += v.count;
    for (int i = 0; i < v.count; ++i) {
      res.checksum += std::abs(v.x[i]) + std::abs(v.y[i]);
      res.momentum_x += v.vx[i];
      res.momentum_y += v.vy[i];
    }
  }
  return res;
}

Result run_dcuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  assert(cfg.cells_per_node == rpd && "one cell per rank");
  const int cap = cfg.capacity();
  const int total_cells = nodes * rpd;
  const double width = total_cells * cfg.cell_width;

  std::vector<DeviceParticles> devs;
  for (int n = 0; n < nodes; ++n)
    devs.push_back(make_device(cluster.device(n), cfg, rpd, n));

  constexpr int kHaloTag = 1, kMigrateTag = 2;

  Result res;
  res.elapsed = cluster.run([&](Context& ctx) -> sim::Proc<void> {
    const int grank = comm_rank(ctx, kCommWorld);
    const int gsize = comm_size(ctx, kCommWorld);
    const int node_id = ctx.node->node();
    const int r = ctx.device_rank;
    DeviceParticles& p = devs[static_cast<size_t>(node_id)];

    // One window per array (paper: "each rank registers one window per
    // array"). All ranks of a device register the same device-wide range.
    Window whx = co_await win_create(ctx, kCommWorld, p.hx);
    Window why = co_await win_create(ctx, kCommWorld, p.hy);
    Window whc = co_await win_create(ctx, kCommWorld, p.hcount);
    Window wibx = co_await win_create(ctx, kCommWorld, p.ibx);
    Window wiby = co_await win_create(ctx, kCommWorld, p.iby);
    Window wibvx = co_await win_create(ctx, kCommWorld, p.ibvx);
    Window wibvy = co_await win_create(ctx, kCommWorld, p.ibvy);
    Window wibc = co_await win_create(ctx, kCommWorld, p.ibcount);

    const bool has_left = grank > 0;
    const bool has_right = grank + 1 < gsize;
    const int expected = (has_left ? 1 : 0) + (has_right ? 1 : 0);

    // Slot element offsets in the *target* device's (rank-local, side)
    // layout, for the typed span API.
    auto slot_off = [&](int target_rank, int side) -> std::size_t {
      const int lr = target_rank % rpd;
      return (static_cast<size_t>(lr) * 2 + static_cast<size_t>(side)) * cap;
    };
    auto count_off = [&](int target_rank, int side) -> std::size_t {
      const int lr = target_rank % rpd;
      return static_cast<size_t>(lr) * 2 + static_cast<size_t>(side);
    };

    for (int it = 0; it < cfg.iterations; ++it) {
      const std::int32_t my_count = p.count[static_cast<size_t>(r)];
      CellView mine = p.cell(r);
      const std::span<const double> mine_x(mine.x, static_cast<size_t>(my_count));
      const std::span<const double> mine_y(mine.y, static_cast<size_t>(my_count));
      const std::span<const std::int32_t> count_span(
          &p.count[static_cast<size_t>(r)], 1);

      // 1) halo exchange: my cell's positions into the neighbors' halo
      // slots. The count put carries the notification.
      if (cfg.exchange) {
        if (has_left) {
          co_await put(ctx, whx, grank - 1, slot_off(grank - 1, 1), mine_x);
          co_await put(ctx, why, grank - 1, slot_off(grank - 1, 1), mine_y);
          co_await put_notify(ctx, whc, grank - 1, count_off(grank - 1, 1),
                              count_span, kHaloTag);
        }
        if (has_right) {
          co_await put(ctx, whx, grank + 1, slot_off(grank + 1, 0), mine_x);
          co_await put(ctx, why, grank + 1, slot_off(grank + 1, 0), mine_y);
          co_await put_notify(ctx, whc, grank + 1, count_off(grank + 1, 0),
                              count_span, kHaloTag);
        }
        // The put sources (cell arrays, count) are modified below; flush
        // guarantees the runtime buffered them.
        co_await flush(ctx);
        co_await wait_notifications(ctx, whc, kAnySource, kHaloTag, expected);
      }

      // 2) force computation and position update.
      std::int64_t scans = 0;
      if (cfg.compute) {
        mine = p.cell(r);
        scans = force_and_update(cfg, mine, p.halo(r, 0), p.halo(r, 1), width);
      }

      // 3) sort out movers into the outboxes.
      SortResult moved{};
      if (cfg.compute) {
        moved = sort_out(cfg, grank, p.cell(r), &p.count[static_cast<size_t>(r)],
                         p.outbox(r, 0), p.outbox(r, 1));
      }

      // 4) communicate movers into the neighbors' inboxes.
      if (cfg.exchange) {
        std::int32_t lcnt = moved.left, rcnt = moved.right;
        if (has_left) {
          CellView ob = p.outbox(r, 0);
          const std::size_t n = static_cast<size_t>(lcnt);
          const std::size_t o = slot_off(grank - 1, 1);
          co_await put(ctx, wibx, grank - 1, o, std::span<const double>(ob.x, n));
          co_await put(ctx, wiby, grank - 1, o, std::span<const double>(ob.y, n));
          co_await put(ctx, wibvx, grank - 1, o, std::span<const double>(ob.vx, n));
          co_await put(ctx, wibvy, grank - 1, o, std::span<const double>(ob.vy, n));
          co_await put_notify(ctx, wibc, grank - 1, count_off(grank - 1, 1),
                              std::span<const std::int32_t>(&lcnt, 1), kMigrateTag);
        } else {
          assert(lcnt == 0 && "mover fell off the global domain");
        }
        if (has_right) {
          CellView ob = p.outbox(r, 1);
          const std::size_t n = static_cast<size_t>(rcnt);
          const std::size_t o = slot_off(grank + 1, 0);
          co_await put(ctx, wibx, grank + 1, o, std::span<const double>(ob.x, n));
          co_await put(ctx, wiby, grank + 1, o, std::span<const double>(ob.y, n));
          co_await put(ctx, wibvx, grank + 1, o, std::span<const double>(ob.vx, n));
          co_await put(ctx, wibvy, grank + 1, o, std::span<const double>(ob.vy, n));
          co_await put_notify(ctx, wibc, grank + 1, count_off(grank + 1, 0),
                              std::span<const std::int32_t>(&rcnt, 1), kMigrateTag);
        } else {
          assert(rcnt == 0 && "mover fell off the global domain");
        }
        co_await flush(ctx);  // count locals go out of scope below
        co_await wait_notifications(ctx, wibc, kAnySource, kMigrateTag, expected);
      }

      // 5) integrate arrivals (left inbox first, then right — the same
      // order as the serial reference).
      int arrivals = 0;
      if (cfg.compute || cfg.exchange) {
        for (int side = 0; side < 2; ++side) {
          CellView ib = p.inbox(r, side);
          append(p.cell(r), &p.count[static_cast<size_t>(r)], ib, ib.count, cap);
          arrivals += ib.count;
          p.ibcount[static_cast<size_t>(r) * 2 + static_cast<size_t>(side)] = 0;
        }
      }
      if (cfg.compute) {
        co_await charge_iteration(*ctx.block, scans, my_count,
                                  moved.left + moved.right + arrivals);
      }
    }

    co_await barrier(ctx, kCommWorld);
    for (Window* w : {&whx, &why, &whc, &wibx, &wiby, &wibvx, &wibvy, &wibc}) {
      co_await win_free(ctx, *w);
    }
  });
  Result out = collect(cfg, rpd, devs);
  out.elapsed = res.elapsed;
  return out;
}

Result run_mpi_cuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  assert(cfg.cells_per_node == rpd && "one cell per rank");
  const int cap = cfg.capacity();
  const int total_cells = nodes * rpd;
  const double width = total_cells * cfg.cell_width;

  std::vector<DeviceParticles> devs;
  std::vector<std::unique_ptr<baseline::HostProgram>> progs;
  // Host-side mirrors of the bookkeeping counters (fetched every iteration).
  std::vector<std::vector<std::int32_t>> host_counts(static_cast<size_t>(nodes));
  std::vector<std::vector<std::int32_t>> host_obcounts(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    devs.push_back(make_device(cluster.device(n), cfg, rpd, n));
    progs.push_back(
        std::make_unique<baseline::HostProgram>(cluster.device(n), cluster.mpi(n)));
    host_counts[static_cast<size_t>(n)].resize(static_cast<size_t>(rpd));
    host_obcounts[static_cast<size_t>(n)].resize(static_cast<size_t>(2 * rpd));
  }

  Result res;
  res.elapsed = cluster.run_hosts([&](int n) -> sim::Proc<void> {
    baseline::HostProgram& hp = *progs[static_cast<size_t>(n)];
    DeviceParticles& p = devs[static_cast<size_t>(n)];
    auto& dev = cluster.device(n);
    const bool has_left = n > 0, has_right = n + 1 < nodes;
    const gpu::LaunchConfig lc{rpd, 128, 26};
    std::vector<std::int64_t> scans(static_cast<size_t>(rpd), 0);
    std::vector<std::int32_t> particles(static_cast<size_t>(rpd), 0);
    std::vector<std::int32_t> moved(static_cast<size_t>(rpd), 0);

    for (int it = 0; it < cfg.iterations; ++it) {
      // Bookkeeping counters to the host (the paper calls this out as an
      // MPI-CUDA overhead: D2H fetch every iteration).
      co_await hp.copy(gpu::mem_ref(std::span<std::int32_t>(
                           host_counts[static_cast<size_t>(n)])),
                       dev.ref(p.count));

      if (cfg.exchange) {
        // 1) halo exchange at the device boundary: count, x, y per direction.
        std::int32_t lcount = host_counts[static_cast<size_t>(n)][0];
        std::int32_t rcount = host_counts[static_cast<size_t>(n)][static_cast<size_t>(rpd - 1)];
        std::int32_t in_l = 0, in_r = 0;  // incoming counts
        const int tag = 100 + it;
        std::vector<mpi::Request> pend;
        if (has_left) {
          pend.push_back(hp.isend(n - 1, tag, gpu::mem_ref(&lcount, 1)));
          pend.push_back(hp.irecv(n - 1, tag, gpu::mem_ref(&in_l, 1)));
        }
        if (has_right) {
          pend.push_back(hp.isend(n + 1, tag, gpu::mem_ref(&rcount, 1)));
          pend.push_back(hp.irecv(n + 1, tag, gpu::mem_ref(&in_r, 1)));
        }
        co_await mpi::wait_all(std::move(pend));
        // Sized data transfers into the edge ranks' outer halo slots.
        std::vector<mpi::Request> pend2;
        auto slot = [&](std::span<double> arr, int lr, int side) {
          return dev.ref(arr.subspan((static_cast<size_t>(lr) * 2 + side) * cap,
                                     static_cast<size_t>(cap)));
        };
        if (has_left) {
          auto cx = dev.ref(p.x.subspan(0, static_cast<size_t>(lcount)));
          auto cy = dev.ref(p.y.subspan(0, static_cast<size_t>(lcount)));
          pend2.push_back(hp.isend(n - 1, tag + 1, cx));
          pend2.push_back(hp.isend(n - 1, tag + 2, cy));
          auto hx = slot(p.hx, 0, 0).subspan(0, static_cast<size_t>(in_l) * 8);
          auto hy = slot(p.hy, 0, 0).subspan(0, static_cast<size_t>(in_l) * 8);
          pend2.push_back(hp.irecv(n - 1, tag + 1, hx));
          pend2.push_back(hp.irecv(n - 1, tag + 2, hy));
          p.hcount[0] = in_l;
        }
        if (has_right) {
          const size_t eo = static_cast<size_t>(rpd - 1) * cap;
          auto cx = dev.ref(p.x.subspan(eo, static_cast<size_t>(rcount)));
          auto cy = dev.ref(p.y.subspan(eo, static_cast<size_t>(rcount)));
          pend2.push_back(hp.isend(n + 1, tag + 1, cx));
          pend2.push_back(hp.isend(n + 1, tag + 2, cy));
          auto hx = slot(p.hx, rpd - 1, 1).subspan(0, static_cast<size_t>(in_r) * 8);
          auto hy = slot(p.hy, rpd - 1, 1).subspan(0, static_cast<size_t>(in_r) * 8);
          pend2.push_back(hp.irecv(n + 1, tag + 1, hx));
          pend2.push_back(hp.irecv(n + 1, tag + 2, hy));
          p.hcount[static_cast<size_t>(rpd - 1) * 2 + 1] = in_r;
        }
        co_await mpi::wait_all(std::move(pend2));

        // Intra-device halos: copy neighbor cells into the halo slots.
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          for (int side = 0; side < 2; ++side) {
            const int nb = r + (side == 0 ? -1 : 1);
            if (nb < 0 || nb >= rpd) continue;  // device edge: MPI filled it
            CellView src = p.cell(nb);
            CellView dst = p.halo(r, side);
            std::memcpy(dst.x, src.x, static_cast<size_t>(src.count) * sizeof(double));
            std::memcpy(dst.y, src.y, static_cast<size_t>(src.count) * sizeof(double));
            p.hcount[static_cast<size_t>(r) * 2 + static_cast<size_t>(side)] = src.count;
            co_await blk.mem_traffic(4.0 * src.count * sizeof(double));
          }
        }, "halo");
      }

      // 2) force + update kernel.
      if (cfg.compute) {
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          particles[static_cast<size_t>(r)] = p.count[static_cast<size_t>(r)];
          scans[static_cast<size_t>(r)] =
              force_and_update(cfg, p.cell(r), p.halo(r, 0), p.halo(r, 1), width);
          co_await blk.compute_flops(static_cast<double>(scans[static_cast<size_t>(r)]) * 12.0);
          co_await blk.mem_traffic(static_cast<double>(scans[static_cast<size_t>(r)]) * 2.0 *
                                   sizeof(double));
        }, "force");

        // 3) sort kernel: movers into outboxes.
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          SortResult s = sort_out(cfg, n * rpd + r, p.cell(r),
                                  &p.count[static_cast<size_t>(r)], p.outbox(r, 0),
                                  p.outbox(r, 1));
          p.obcount[static_cast<size_t>(r) * 2] = s.left;
          p.obcount[static_cast<size_t>(r) * 2 + 1] = s.right;
          moved[static_cast<size_t>(r)] = s.left + s.right;
          co_await blk.mem_traffic(
              static_cast<double>(p.count[static_cast<size_t>(r)]) * 8.0 *
              sizeof(double));
        }, "sort");
      }

      if (cfg.exchange) {
        // 4) migrate across the device boundary: fetch the outbox counters
        // from the device first (the per-iteration D2H the paper calls out).
        co_await hp.copy(gpu::mem_ref(std::span<std::int32_t>(
                             host_obcounts[static_cast<size_t>(n)])),
                         dev.ref(p.obcount));
        const int tag = 500 + it;
        std::int32_t out_l = host_obcounts[static_cast<size_t>(n)][0];
        std::int32_t out_r =
            host_obcounts[static_cast<size_t>(n)][static_cast<size_t>(rpd - 1) * 2 + 1];
        if (!cfg.compute) out_l = out_r = 0;
        std::int32_t in_l = 0, in_r = 0;
        std::vector<mpi::Request> pend;
        if (has_left) {
          pend.push_back(hp.isend(n - 1, tag, gpu::mem_ref(&out_l, 1)));
          pend.push_back(hp.irecv(n - 1, tag, gpu::mem_ref(&in_l, 1)));
        }
        if (has_right) {
          pend.push_back(hp.isend(n + 1, tag, gpu::mem_ref(&out_r, 1)));
          pend.push_back(hp.irecv(n + 1, tag, gpu::mem_ref(&in_r, 1)));
        }
        co_await mpi::wait_all(std::move(pend));
        std::vector<mpi::Request> pend2;
        auto seg = [&](std::span<double> arr, int lr, int side, std::int32_t cnt) {
          return dev.ref(arr.subspan((static_cast<size_t>(lr) * 2 + side) * cap,
                                     static_cast<size_t>(cnt)));
        };
        if (has_left) {
          pend2.push_back(hp.isend(n - 1, tag + 1, seg(p.obx, 0, 0, out_l)));
          pend2.push_back(hp.isend(n - 1, tag + 2, seg(p.oby, 0, 0, out_l)));
          pend2.push_back(hp.isend(n - 1, tag + 3, seg(p.obvx, 0, 0, out_l)));
          pend2.push_back(hp.isend(n - 1, tag + 4, seg(p.obvy, 0, 0, out_l)));
          pend2.push_back(hp.irecv(n - 1, tag + 1, seg(p.ibx, 0, 0, in_l)));
          pend2.push_back(hp.irecv(n - 1, tag + 2, seg(p.iby, 0, 0, in_l)));
          pend2.push_back(hp.irecv(n - 1, tag + 3, seg(p.ibvx, 0, 0, in_l)));
          pend2.push_back(hp.irecv(n - 1, tag + 4, seg(p.ibvy, 0, 0, in_l)));
          p.ibcount[0] = in_l;
        }
        if (has_right) {
          const int e = rpd - 1;
          pend2.push_back(hp.isend(n + 1, tag + 1, seg(p.obx, e, 1, out_r)));
          pend2.push_back(hp.isend(n + 1, tag + 2, seg(p.oby, e, 1, out_r)));
          pend2.push_back(hp.isend(n + 1, tag + 3, seg(p.obvx, e, 1, out_r)));
          pend2.push_back(hp.isend(n + 1, tag + 4, seg(p.obvy, e, 1, out_r)));
          pend2.push_back(hp.irecv(n + 1, tag + 1, seg(p.ibx, e, 1, in_r)));
          pend2.push_back(hp.irecv(n + 1, tag + 2, seg(p.iby, e, 1, in_r)));
          pend2.push_back(hp.irecv(n + 1, tag + 3, seg(p.ibvx, e, 1, in_r)));
          pend2.push_back(hp.irecv(n + 1, tag + 4, seg(p.ibvy, e, 1, in_r)));
          p.ibcount[static_cast<size_t>(e) * 2 + 1] = in_r;
        }
        co_await mpi::wait_all(std::move(pend2));
      }

      // 5) integrate arrivals (intra-device movers come straight from the
      // neighbor outboxes; device-edge inbox slots were filled by MPI).
      co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
        const int r = blk.block_id();
        int arrivals = 0;
        // Left arrivals first, then right (matches dCUDA and the reference).
        if (r > 0 && cfg.compute) {
          CellView from = p.outbox(r - 1, 1);
          const int cnt = p.obcount[static_cast<size_t>(r - 1) * 2 + 1];
          append(p.cell(r), &p.count[static_cast<size_t>(r)], from, cnt, cap);
          arrivals += cnt;
        } else if (r == 0 && cfg.exchange && has_left) {
          CellView from = p.inbox(0, 0);
          append(p.cell(r), &p.count[static_cast<size_t>(r)], from, from.count, cap);
          arrivals += from.count;
          p.ibcount[0] = 0;
        }
        if (r + 1 < rpd && cfg.compute) {
          CellView from = p.outbox(r + 1, 0);
          const int cnt = p.obcount[static_cast<size_t>(r + 1) * 2];
          append(p.cell(r), &p.count[static_cast<size_t>(r)], from, cnt, cap);
          arrivals += cnt;
        } else if (r + 1 == rpd && cfg.exchange && has_right) {
          CellView from = p.inbox(rpd - 1, 1);
          append(p.cell(r), &p.count[static_cast<size_t>(r)], from, from.count, cap);
          arrivals += from.count;
          p.ibcount[static_cast<size_t>(rpd - 1) * 2 + 1] = 0;
        }
        co_await blk.mem_traffic(arrivals * 8.0 * sizeof(double) +
                                 particles[static_cast<size_t>(r)] * 2.0 *
                                     sizeof(double));
      }, "integrate");
    }
  });

  Result out = collect(cfg, rpd, devs);
  out.elapsed = res.elapsed;
  return out;
}

}  // namespace dcuda::apps::particles
