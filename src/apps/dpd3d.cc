#include "apps/dpd3d.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <memory>
#include <span>

#include "baseline/mpi_cuda.h"
#include "net/topology.h"
#include "sim/random.h"

namespace dcuda::apps::dpd3d {

namespace {

// Packed particle record: x, y, z, vx, vy, vz.
constexpr int kRec = 6;
constexpr int kHaloTag = 11, kMigrateTag = 12, kTicketTag = 13;
// MPI tag spaces: base + sender_cell * kDirs + sender_dir. Cell counts stay
// far below 1 << 20 / kDirs, so the spaces never collide.
constexpr int kTagHaloCnt = 1 << 20, kTagHaloPay = 2 << 20;
constexpr int kTagMigCnt = 3 << 20, kTagMigPay = 4 << 20;

// A view of one cell's (or halo/inbox slot's) packed particle records.
struct View {
  double* rec = nullptr;
  std::int32_t count = 0;
};

struct Box {
  double lo[3] = {0, 0, 0};
  double hi[3] = {0, 0, 0};
};

Box box_of(const Config& cfg, const Grid& g, int cell) {
  const std::array<int, 3> c = g.coords(cell);
  Box b;
  for (int a = 0; a < 3; ++a) {
    b.lo[a] = c[static_cast<std::size_t>(a)] * cfg.cell_width;
    b.hi[a] = b.lo[a] + cfg.cell_width;
  }
  return b;
}

// Per-cell initial counts. kSkewed concentrates the same global total into a
// Gaussian blob near the low corner (the drift then sweeps it across the
// grid); largest-remainder rounding plus a deterministic per-cell clamp keep
// the total exact and every cell within half its storage capacity.
std::vector<int> initial_counts(const Config& cfg, const Grid& g) {
  const int cells = g.cells();
  std::vector<int> n(static_cast<std::size_t>(cells), cfg.particles_per_cell);
  if (cfg.density == Density::kUniform) return n;

  const std::int64_t total =
      static_cast<std::int64_t>(cells) * cfg.particles_per_cell;
  const double c0[3] = {0.3 * g.gx, 0.3 * g.gy, 0.3 * g.gz};
  std::vector<double> w(static_cast<std::size_t>(cells));
  double wsum = 0.0;
  for (int c = 0; c < cells; ++c) {
    const std::array<int, 3> cc = g.coords(c);
    double d2 = 0.0;
    for (int a = 0; a < 3; ++a) {
      const double d = (cc[static_cast<std::size_t>(a)] + 0.5) - c0[a];
      d2 += d * d;
    }
    // The tiny floor keeps far cells populated (but near-empty) so skewed
    // runs still exercise every rank's protocol.
    w[static_cast<std::size_t>(c)] =
        std::exp(-d2 / (2.0 * cfg.skew_sigma * cfg.skew_sigma)) + 1e-4;
    wsum += w[static_cast<std::size_t>(c)];
  }
  // Largest-remainder rounding: decomposition-invariant and total-exact.
  std::vector<double> frac(static_cast<std::size_t>(cells));
  std::int64_t assigned = 0;
  for (int c = 0; c < cells; ++c) {
    const double quota = total * w[static_cast<std::size_t>(c)] / wsum;
    n[static_cast<std::size_t>(c)] = static_cast<int>(quota);
    frac[static_cast<std::size_t>(c)] = quota - n[static_cast<std::size_t>(c)];
    assigned += n[static_cast<std::size_t>(c)];
  }
  std::vector<int> order(static_cast<std::size_t>(cells));
  for (int c = 0; c < cells; ++c) order[static_cast<std::size_t>(c)] = c;
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = frac[static_cast<std::size_t>(a)];
    const double fb = frac[static_cast<std::size_t>(b)];
    return fa != fb ? fa > fb : a < b;
  });
  for (std::int64_t i = 0; i < total - assigned; ++i) {
    ++n[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
  }
  // Clamp the blob peak to half the storage capacity (migration headroom),
  // pushing overflow to the least-loaded cells (lowest index on ties).
  const int limit = cfg.capacity() / 2;
  assert(static_cast<std::int64_t>(limit) * cells >= total &&
         "capacity_factor too small for the particle total");
  std::int64_t excess = 0;
  for (int c = 0; c < cells; ++c) {
    if (n[static_cast<std::size_t>(c)] > limit) {
      excess += n[static_cast<std::size_t>(c)] - limit;
      n[static_cast<std::size_t>(c)] = limit;
    }
  }
  while (excess > 0) {
    int argmin = -1;
    for (int c = 0; c < cells; ++c) {
      if (n[static_cast<std::size_t>(c)] >= limit) continue;
      if (argmin < 0 ||
          n[static_cast<std::size_t>(c)] < n[static_cast<std::size_t>(argmin)]) {
        argmin = c;
      }
    }
    assert(argmin >= 0);
    ++n[static_cast<std::size_t>(argmin)];
    --excess;
  }
  return n;
}

// Packs the particles of `cell` that must be shipped toward `dir` into
// `out`, in storage order; returns the record count.
int pack_halo(const Config& cfg, const Grid& g, int cell, const double* rec,
              std::int32_t count, int dir, double* out) {
  int n = 0;
  for (int i = 0; i < count; ++i) {
    const double* p = &rec[static_cast<std::size_t>(i) * kRec];
    if (!ship_to_dir(cfg, g, cell, dir, p[0], p[1], p[2])) continue;
    std::memcpy(&out[static_cast<std::size_t>(n) * kRec], p, kRec * sizeof(double));
    ++n;
  }
  return n;
}

// Geometry side of the halo oracle: every record in slot (cell, dir) must
// lie inside the sender's box and satisfy the sender-side ship predicate.
std::int64_t check_halo_slot(const Config& cfg, const Grid& g, int cell, int dir,
                             const View& v) {
  const int sender = g.dir2cell(cell, dir);
  if (sender < 0) return v.count;  // data from outside the domain
  const Box sb = box_of(cfg, g, sender);
  constexpr double kEps = 1e-9;
  std::int64_t bad = 0;
  for (int i = 0; i < v.count; ++i) {
    const double* p = &v.rec[static_cast<std::size_t>(i) * kRec];
    bool in_box = true;
    for (int a = 0; a < 3; ++a) {
      in_box = in_box && p[a] >= sb.lo[a] - kEps && p[a] <= sb.hi[a] + kEps;
    }
    if (!in_box || !ship_to_dir(cfg, g, sender, opposite(dir), p[0], p[1], p[2])) {
      ++bad;
    }
  }
  return bad;
}

// DPD force computation + Euler update with reflecting walls. `nb[kSelf]`
// must alias (rec, count); the accumulation order — directions ascending,
// records in slot order — is identical in every variant, so results are
// bitwise comparable.
std::int64_t force_and_update(const Config& cfg, const std::array<View, kDirs>& nb,
                              double* rec, std::int32_t count, const double L[3]) {
  const double rc = cfg.cutoff, rc2 = rc * rc;
  std::int64_t scans = 0;
  std::vector<double> acc(static_cast<std::size_t>(count) * 3, 0.0);
  for (int i = 0; i < count; ++i) {
    const double* pi = &rec[static_cast<std::size_t>(i) * kRec];
    double f[3] = {0.0, 0.0, 0.0};
    for (int d = 0; d < kDirs; ++d) {
      const View& o = nb[static_cast<std::size_t>(d)];
      for (int j = 0; j < o.count; ++j) {
        if (o.rec == rec && j == i) continue;
        const double* pj = &o.rec[static_cast<std::size_t>(j) * kRec];
        const double dx = pi[0] - pj[0];
        const double dy = pi[1] - pj[1];
        const double dz = pi[2] - pj[2];
        const double r2 = dx * dx + dy * dy + dz * dz;
        if (r2 >= rc2 || r2 == 0.0) continue;
        const double r = std::sqrt(r2);
        const double wgt = 1.0 - r / rc;
        // Conservative soft repulsion + deterministic dissipative drag
        // (stochastic DPD term omitted for bitwise reproducibility). The
        // combined coefficient is antisymmetric under i <-> j, so pairwise
        // momentum is conserved in the interior.
        const double dvx = pi[3] - pj[3];
        const double dvy = pi[4] - pj[4];
        const double dvz = pi[5] - pj[5];
        const double c = cfg.force_a * wgt / r -
                         cfg.force_gamma * wgt * wgt *
                             ((dx * dvx + dy * dvy + dz * dvz) / r2);
        f[0] += c * dx;
        f[1] += c * dy;
        f[2] += c * dz;
      }
      scans += o.count;
    }
    acc[static_cast<std::size_t>(i) * 3 + 0] = f[0];
    acc[static_cast<std::size_t>(i) * 3 + 1] = f[1];
    acc[static_cast<std::size_t>(i) * 3 + 2] = f[2];
  }
  for (int i = 0; i < count; ++i) {
    double* p = &rec[static_cast<std::size_t>(i) * kRec];
    for (int a = 0; a < 3; ++a) {
      p[3 + a] += acc[static_cast<std::size_t>(i) * 3 + static_cast<std::size_t>(a)] *
                  cfg.dt;
      p[a] += p[3 + a] * cfg.dt;
      if (p[a] < 0.0) {
        p[a] = -p[a];
        p[3 + a] = -p[3 + a];
      }
      if (p[a] > L[a]) {
        p[a] = 2.0 * L[a] - p[a];
        p[3 + a] = -p[3 + a];
      }
    }
  }
  return scans;
}

// Sort-out: stable-compacts stayers, packs movers into the per-direction
// outboxes (diagonal movers go directly to the diagonal neighbor). The
// break_compaction mutation drops the last record of every non-empty outbox
// — the compaction bug the conservation oracle must catch.
struct Moves {
  std::array<std::int32_t, kDirs> n{};
  std::int32_t total = 0;
};

Moves sort_out(const Config& cfg, const Grid& g, int cell, double* rec,
               std::int32_t* count, const std::array<double*, kDirs>& out) {
  const Box b = box_of(cfg, g, cell);
  const std::array<int, 3> c = g.coords(cell);
  const int dims[3] = {g.gx, g.gy, g.gz};
  Moves m;
  int keep = 0;
  for (int i = 0; i < *count; ++i) {
    const double* p = &rec[static_cast<std::size_t>(i) * kRec];
    int off[3];
    for (int a = 0; a < 3; ++a) {
      assert(p[a] >= b.lo[a] - cfg.cell_width && p[a] < b.hi[a] + cfg.cell_width &&
             "particle hopped two cells");
      off[a] = p[a] < b.lo[a] ? -1 : (p[a] >= b.hi[a] ? 1 : 0);
      // A particle resting exactly on a domain wall stays in the edge cell.
      if (c[static_cast<std::size_t>(a)] + off[a] < 0 ||
          c[static_cast<std::size_t>(a)] + off[a] >= dims[a]) {
        off[a] = 0;
      }
    }
    const int d = (off[0] + 1) + 3 * (off[1] + 1) + 9 * (off[2] + 1);
    if (d == kSelf) {
      std::memmove(&rec[static_cast<std::size_t>(keep) * kRec], p,
                   kRec * sizeof(double));
      ++keep;
    } else {
      assert(g.dir2cell(cell, d) >= 0 && "mover fell off the global domain");
      const int idx = m.n[static_cast<std::size_t>(d)]++;
      std::memcpy(&out[static_cast<std::size_t>(d)][static_cast<std::size_t>(idx) * kRec],
                  p, kRec * sizeof(double));
      ++m.total;
    }
  }
  *count = keep;
  if (cfg.break_compaction) {
    for (int d = 0; d < kDirs; ++d) {
      if (m.n[static_cast<std::size_t>(d)] > 0) {
        --m.n[static_cast<std::size_t>(d)];
        --m.total;
      }
    }
  }
  return m;
}

void append(double* rec, std::int32_t* count, const double* from, int n, int cap) {
  assert(*count + n <= cap && "cell overflow: increase capacity_factor");
  (void)cap;
  std::memcpy(&rec[static_cast<std::size_t>(*count) * kRec], from,
              static_cast<std::size_t>(n) * kRec * sizeof(double));
  *count += static_cast<std::int32_t>(n);
}

// Simulated per-iteration cost of one rank's cell (cf. particles.cc; the
// 3-D scan reads a full 6-double record per pair).
sim::Proc<void> charge_iteration(gpu::BlockCtx& blk, std::int64_t pair_scans,
                                 int particles, std::int64_t shipped, int moved) {
  const double scans = static_cast<double>(pair_scans);
  co_await blk.compute_flops(scans * 18.0 + particles * 12.0);
  co_await blk.mem_traffic(scans * kRec * sizeof(double) +
                           particles * 12.0 * sizeof(double) +
                           static_cast<double>(shipped + moved) * kRec *
                               sizeof(double));
}

// Per-device storage: cell records, windowed halo/inbox slots + counters,
// local halo-send and migration outbox buffers, and rebalance work tickets.
// All slot arrays are (rank-local cell, direction)-indexed with `cap`
// records per slot.
struct DeviceState {
  std::span<double> cell, halo, inbox, hsend, outbox;
  std::span<std::int32_t> count, hcount, ibcount, hscount, obcount;
  std::span<std::int64_t> ticket, tksend;
  int cap = 0;

  double* cell_recs(int r) {
    return &cell[static_cast<std::size_t>(r) * static_cast<std::size_t>(cap) * kRec];
  }
  double* recs(std::span<double> a, int r, int d) {
    return &a[(static_cast<std::size_t>(r) * kDirs + static_cast<std::size_t>(d)) *
              static_cast<std::size_t>(cap) * kRec];
  }
  std::int32_t& ctr(std::span<std::int32_t> a, int r, int d) {
    return a[static_cast<std::size_t>(r) * kDirs + static_cast<std::size_t>(d)];
  }
  std::int64_t& tk(std::span<std::int64_t> a, int r, int d) {
    return a[static_cast<std::size_t>(r) * kDirs + static_cast<std::size_t>(d)];
  }
};

DeviceState make_device(gpu::Device& dev, const Config& cfg, const Grid& g,
                        int rpd, int node_id) {
  DeviceState p;
  p.cap = cfg.capacity();
  const std::size_t slots = static_cast<std::size_t>(rpd) * kDirs;
  const std::size_t slot_doubles = slots * static_cast<std::size_t>(p.cap) * kRec;
  p.cell = dev.alloc<double>(static_cast<std::size_t>(rpd) *
                             static_cast<std::size_t>(p.cap) * kRec);
  p.count = dev.alloc<std::int32_t>(static_cast<std::size_t>(rpd));
  p.halo = dev.alloc<double>(slot_doubles);
  p.hcount = dev.alloc<std::int32_t>(slots);
  p.inbox = dev.alloc<double>(slot_doubles);
  p.ibcount = dev.alloc<std::int32_t>(slots);
  p.hsend = dev.alloc<double>(slot_doubles);
  p.hscount = dev.alloc<std::int32_t>(slots);
  p.outbox = dev.alloc<double>(slot_doubles);
  p.obcount = dev.alloc<std::int32_t>(slots);
  p.ticket = dev.alloc<std::int64_t>(slots);
  p.tksend = dev.alloc<std::int64_t>(slots);
  std::fill(p.count.begin(), p.count.end(), 0);
  std::fill(p.hcount.begin(), p.hcount.end(), 0);
  std::fill(p.ibcount.begin(), p.ibcount.end(), 0);
  std::fill(p.hscount.begin(), p.hscount.end(), 0);
  std::fill(p.obcount.begin(), p.obcount.end(), 0);
  std::fill(p.ticket.begin(), p.ticket.end(), 0);
  std::fill(p.tksend.begin(), p.tksend.end(), 0);
  for (int r = 0; r < rpd; ++r) {
    const int gc = node_id * rpd + r;
    const std::vector<std::array<double, kRec>> init =
        initial_particles(cfg, g, gc);
    assert(static_cast<int>(init.size()) <= p.cap);
    for (std::size_t i = 0; i < init.size(); ++i) {
      std::memcpy(&p.cell_recs(r)[i * kRec], init[i].data(), kRec * sizeof(double));
    }
    p.count[static_cast<std::size_t>(r)] = static_cast<std::int32_t>(init.size());
  }
  return p;
}

Result collect(int rpd, std::vector<DeviceState>& devs) {
  Result res;
  for (auto& p : devs) {
    for (int r = 0; r < rpd; ++r) {
      const std::int32_t cnt = p.count[static_cast<std::size_t>(r)];
      res.total_particles += cnt;
      res.max_cell_count = std::max(res.max_cell_count, cnt);
      const double* rec = p.cell_recs(r);
      for (int i = 0; i < cnt; ++i) {
        const double* q = &rec[static_cast<std::size_t>(i) * kRec];
        res.checksum += std::abs(q[0]) + std::abs(q[1]) + std::abs(q[2]);
        res.momentum_x += q[3];
        res.momentum_y += q[4];
        res.momentum_z += q[5];
      }
    }
  }
  return res;
}

// Per-iteration pair-scan imbalance (max over cells / mean over cells).
void push_imbalance(std::vector<double>& out, const std::int64_t* scans, int cells) {
  std::int64_t sum = 0, mx = 0;
  for (int c = 0; c < cells; ++c) {
    sum += scans[c];
    mx = std::max(mx, scans[c]);
  }
  out.push_back(sum > 0 ? static_cast<double>(mx) * cells / static_cast<double>(sum)
                        : 1.0);
}

}  // namespace

int Grid::dir2cell(int cell, int dir) const {
  const std::array<int, 3> c = coords(cell);
  const std::array<int, 3> o = dir_offset(dir);
  const int cx = c[0] + o[0], cy = c[1] + o[1], cz = c[2] + o[2];
  if (cx < 0 || cx >= gx || cy < 0 || cy >= gy || cz < 0 || cz >= gz) return -1;
  return cell_at(cx, cy, cz);
}

std::array<int, kDirs> Grid::dir2rank(int cell) const {
  std::array<int, kDirs> out;
  for (int d = 0; d < kDirs; ++d) {
    out[static_cast<std::size_t>(d)] = d == kSelf ? cell : dir2cell(cell, d);
  }
  return out;
}

std::vector<int> Grid::active_dirs(int cell) const {
  std::vector<int> out;
  for (int d = 0; d < kDirs; ++d) {
    if (d != kSelf && dir2cell(cell, d) >= 0) out.push_back(d);
  }
  return out;
}

Grid make_grid(const Config& cfg, int num_nodes) {
  const int n = num_nodes * cfg.cells_per_node;
  Grid g;
  if (cfg.grid_x > 0 || cfg.grid_y > 0 || cfg.grid_z > 0) {
    assert(cfg.grid_x > 0 && cfg.grid_y > 0 && cfg.grid_z > 0);
    g.gx = cfg.grid_x;
    g.gy = cfg.grid_y;
    g.gz = cfg.grid_z;
  } else {
    const std::array<int, 3> d = net::exact_grid_dims(n);
    g.gx = d[0];
    g.gy = d[1];
    g.gz = d[2];
  }
  assert(g.cells() == n && "rank grid must be a bijection onto the ranks");
  return g;
}

int initial_count(const Config& cfg, const Grid& grid, int cell) {
  return initial_counts(cfg, grid)[static_cast<std::size_t>(cell)];
}

bool ship_to_dir(const Config& cfg, const Grid& grid, int cell, int dir, double x,
                 double y, double z) {
  if (dir == kSelf || grid.dir2cell(cell, dir) < 0) return false;
  const Box b = box_of(cfg, grid, cell);
  const std::array<int, 3> o = dir_offset(dir);
  const double pos[3] = {x, y, z};
  for (int a = 0; a < 3; ++a) {
    // A particle exactly `cutoff` from the face cannot interact across it
    // (the force loop excludes r >= cutoff), so the band test is strict.
    if (o[static_cast<std::size_t>(a)] < 0 && !(pos[a] - b.lo[a] < cfg.cutoff)) {
      return false;
    }
    if (o[static_cast<std::size_t>(a)] > 0 && !(b.hi[a] - pos[a] < cfg.cutoff)) {
      return false;
    }
  }
  return true;
}

std::vector<std::array<double, 6>> initial_particles(const Config& cfg,
                                                     const Grid& grid, int cell) {
  const std::vector<int> counts = initial_counts(cfg, grid);
  const Box b = box_of(cfg, grid, cell);
  sim::Rng rng(cfg.seed ^ (0x9e37ull * static_cast<std::uint64_t>(cell + 1)));
  const double vscale = cfg.cell_width / 10.0;
  // Coherent drift direction for the skewed blob: mostly +x, so the dense
  // region marches across the longest grid axis.
  const double drift[3] = {1.0, 0.5, 0.25};
  std::vector<std::array<double, 6>> out(
      static_cast<std::size_t>(counts[static_cast<std::size_t>(cell)]));
  for (auto& p : out) {
    for (int a = 0; a < 3; ++a) {
      p[static_cast<std::size_t>(a)] = b.lo[a] + rng.next_double() * cfg.cell_width;
    }
    for (int a = 0; a < 3; ++a) {
      p[static_cast<std::size_t>(3 + a)] = rng.uniform(-0.5, 0.5) * vscale;
      if (cfg.density == Density::kSkewed) {
        p[static_cast<std::size_t>(3 + a)] +=
            cfg.skew_drift * cfg.cell_width * drift[a];
      }
    }
  }
  return out;
}

Result reference(const Config& cfg, int num_nodes) {
  const Grid g = make_grid(cfg, num_nodes);
  const int cells = g.cells();
  const int cap = cfg.capacity();
  const double L[3] = {g.gx * cfg.cell_width, g.gy * cfg.cell_width,
                       g.gz * cfg.cell_width};

  const std::size_t slots = static_cast<std::size_t>(cells) * kDirs;
  const std::size_t slot_doubles = slots * static_cast<std::size_t>(cap) * kRec;
  std::vector<double> cell(static_cast<std::size_t>(cells) *
                           static_cast<std::size_t>(cap) * kRec);
  std::vector<std::int32_t> count(static_cast<std::size_t>(cells), 0);
  std::vector<double> halo(slot_doubles), outbox(slot_doubles);
  std::vector<std::int32_t> hcount(slots, 0), obcount(slots, 0);
  auto cell_recs = [&](int c) {
    return &cell[static_cast<std::size_t>(c) * static_cast<std::size_t>(cap) * kRec];
  };
  auto slot_recs = [&](std::vector<double>& a, int c, int d) {
    return &a[(static_cast<std::size_t>(c) * kDirs + static_cast<std::size_t>(d)) *
              static_cast<std::size_t>(cap) * kRec];
  };
  auto slot_ctr = [&](std::vector<std::int32_t>& a, int c, int d) -> std::int32_t& {
    return a[static_cast<std::size_t>(c) * kDirs + static_cast<std::size_t>(d)];
  };

  for (int c = 0; c < cells; ++c) {
    const std::vector<std::array<double, kRec>> init = initial_particles(cfg, g, c);
    for (std::size_t i = 0; i < init.size(); ++i) {
      std::memcpy(&cell_recs(c)[i * kRec], init[i].data(), kRec * sizeof(double));
    }
    count[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(init.size());
  }

  Result res;
  std::vector<std::int64_t> scans(static_cast<std::size_t>(cells), 0);
  for (int it = 0; it < cfg.iterations; ++it) {
    // 1) halo exchange: pack the sender's band toward each neighbor.
    if (cfg.exchange) {
      for (int c = 0; c < cells; ++c) {
        for (int d = 0; d < kDirs; ++d) {
          if (d == kSelf) continue;
          const int nb = g.dir2cell(c, d);
          if (nb < 0) {
            slot_ctr(hcount, c, d) = 0;
            continue;
          }
          const int n = pack_halo(cfg, g, nb, cell_recs(nb),
                                  count[static_cast<std::size_t>(nb)], opposite(d),
                                  slot_recs(halo, c, d));
          slot_ctr(hcount, c, d) = static_cast<std::int32_t>(n);
          res.halo_received_total += n;
          res.halo_violations += check_halo_slot(
              cfg, g, c, d, View{slot_recs(halo, c, d), static_cast<std::int32_t>(n)});
        }
      }
    }
    // 2) force + update.
    if (cfg.compute) {
      for (int c = 0; c < cells; ++c) {
        std::array<View, kDirs> nb;
        for (int d = 0; d < kDirs; ++d) {
          nb[static_cast<std::size_t>(d)] =
              d == kSelf
                  ? View{cell_recs(c), count[static_cast<std::size_t>(c)]}
                  : View{slot_recs(halo, c, d),
                         cfg.exchange ? slot_ctr(hcount, c, d) : 0};
        }
        scans[static_cast<std::size_t>(c)] = force_and_update(
            cfg, nb, cell_recs(c), count[static_cast<std::size_t>(c)], L);
      }
    } else {
      std::fill(scans.begin(), scans.end(), 0);
    }
    if (cfg.record_load) push_imbalance(res.iter_imbalance, scans.data(), cells);
    // 3) sort out movers.
    if (cfg.compute) {
      for (int c = 0; c < cells; ++c) {
        std::array<double*, kDirs> out;
        for (int d = 0; d < kDirs; ++d) out[static_cast<std::size_t>(d)] =
            slot_recs(outbox, c, d);
        const Moves m = sort_out(cfg, g, c, cell_recs(c),
                                 &count[static_cast<std::size_t>(c)], out);
        for (int d = 0; d < kDirs; ++d) {
          slot_ctr(obcount, c, d) = m.n[static_cast<std::size_t>(d)];
        }
      }
    }
    // 4+5) deliver and integrate, directions ascending — the same order the
    // parallel variants drain their inbox slots in.
    if (cfg.exchange && cfg.compute) {
      for (int c = 0; c < cells; ++c) {
        for (int d = 0; d < kDirs; ++d) {
          if (d == kSelf) continue;
          const int nb = g.dir2cell(c, d);
          if (nb < 0) continue;
          const std::int32_t n = slot_ctr(obcount, nb, opposite(d));
          if (n > 0) {
            append(cell_recs(c), &count[static_cast<std::size_t>(c)],
                   slot_recs(outbox, nb, opposite(d)), n, cap);
          }
        }
      }
    }
  }

  for (int c = 0; c < cells; ++c) {
    const std::int32_t cnt = count[static_cast<std::size_t>(c)];
    res.total_particles += cnt;
    res.max_cell_count = std::max(res.max_cell_count, cnt);
    for (int i = 0; i < cnt; ++i) {
      const double* q = &cell_recs(c)[static_cast<std::size_t>(i) * kRec];
      res.checksum += std::abs(q[0]) + std::abs(q[1]) + std::abs(q[2]);
      res.momentum_x += q[3];
      res.momentum_y += q[4];
      res.momentum_z += q[5];
    }
  }
  return res;
}

Result run_dcuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  assert(cfg.cells_per_node == rpd && "one cell per rank");
  const Grid grid = make_grid(cfg, nodes);
  const int cells = grid.cells();
  const int cap = cfg.capacity();
  const double L[3] = {grid.gx * cfg.cell_width, grid.gy * cfg.cell_width,
                       grid.gz * cfg.cell_width};

  std::vector<DeviceState> devs;
  devs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    devs.push_back(make_device(cluster.device(n), cfg, grid, rpd, n));
  }

  // Per-cell accumulators: each rank writes only its own slot, so the
  // parallel executor lanes stay race-free.
  std::vector<std::int64_t> halo_recv(static_cast<std::size_t>(cells), 0);
  std::vector<std::int64_t> halo_bad(static_cast<std::size_t>(cells), 0);
  std::vector<std::int64_t> tickets(static_cast<std::size_t>(cells), 0);
  std::vector<std::int64_t> scans_log(
      cfg.record_load ? static_cast<std::size_t>(cfg.iterations) *
                            static_cast<std::size_t>(cells)
                      : 0,
      0);

  Result res;
  res.elapsed = cluster.run([&](Context& ctx) -> sim::Proc<void> {
    const int gc = comm_rank(ctx, kCommWorld);
    const int node_id = ctx.node->node();
    const int r = ctx.device_rank;
    DeviceState& p = devs[static_cast<std::size_t>(node_id)];

    Window wh = co_await win_create(ctx, kCommWorld, p.halo);
    Window whc = co_await win_create(ctx, kCommWorld, p.hcount);
    Window wib = co_await win_create(ctx, kCommWorld, p.inbox);
    Window wibc = co_await win_create(ctx, kCommWorld, p.ibcount);
    Window wtk = co_await win_create(ctx, kCommWorld, p.ticket);

    const std::array<int, kDirs> d2r = grid.dir2rank(gc);
    const std::vector<int> active = grid.active_dirs(gc);
    const int n_active = static_cast<int>(active.size());

    // Slot offsets in the *target* device's (rank-local, direction) layout.
    auto pay_off = [&](int target, int d) -> std::size_t {
      return (static_cast<std::size_t>(target % rpd) * kDirs +
              static_cast<std::size_t>(d)) *
             static_cast<std::size_t>(cap) * kRec;
    };
    auto cnt_off = [&](int target, int d) -> std::size_t {
      return static_cast<std::size_t>(target % rpd) * kDirs +
             static_cast<std::size_t>(d);
    };

    for (int it = 0; it < cfg.iterations; ++it) {
      const std::int32_t my_count = p.count[static_cast<std::size_t>(r)];
      std::int64_t shipped = 0;

      // 1) 27-direction halo exchange: one payload put + one notified count
      // put per active direction — the many-small-messages pattern the
      // eager-aggregation path batches.
      if (cfg.exchange) {
        for (int d : active) {
          double* buf = p.recs(p.hsend, r, d);
          const int n = pack_halo(cfg, grid, gc, p.cell_recs(r), my_count, d, buf);
          p.ctr(p.hscount, r, d) = static_cast<std::int32_t>(n);
          shipped += n;
          const int t = d2r[static_cast<std::size_t>(d)];
          const int od = opposite(d);
          if (n > 0) {
            co_await put(ctx, wh, t, pay_off(t, od),
                         std::span<const double>(buf, static_cast<std::size_t>(n) * kRec));
          }
          co_await put_notify(ctx, whc, t, cnt_off(t, od),
                              std::span<const std::int32_t>(&p.ctr(p.hscount, r, d), 1),
                              kHaloTag);
        }
        co_await flush(ctx);
        co_await wait_notifications(ctx, whc, kAnySource, kHaloTag, n_active);
        for (int d = 0; d < kDirs; ++d) {
          if (d == kSelf) continue;
          const View v{p.recs(p.halo, r, d), p.ctr(p.hcount, r, d)};
          halo_recv[static_cast<std::size_t>(gc)] += v.count;
          halo_bad[static_cast<std::size_t>(gc)] += check_halo_slot(cfg, grid, gc, d, v);
        }
      }

      // 2) force + update.
      std::int64_t scans = 0;
      if (cfg.compute) {
        std::array<View, kDirs> nb;
        for (int d = 0; d < kDirs; ++d) {
          nb[static_cast<std::size_t>(d)] =
              d == kSelf ? View{p.cell_recs(r), p.count[static_cast<std::size_t>(r)]}
                         : View{p.recs(p.halo, r, d),
                                cfg.exchange ? p.ctr(p.hcount, r, d) : 0};
        }
        scans = force_and_update(cfg, nb, p.cell_recs(r),
                                 p.count[static_cast<std::size_t>(r)], L);
      }
      // Rebalance: ship work tickets so underloaded neighbours adopt part of
      // this rank's pair-scan cost. The halo counts double as the load map,
      // so the decision needs no extra communication; every rank sends one
      // (possibly zero) ticket per active direction, keeping wait counts
      // static. Physics stays bitwise identical — only the charge moves.
      std::int64_t charge_scans = scans;
      if (cfg.rebalance && cfg.exchange && cfg.compute) {
        double load_sum = my_count;
        for (int d : active) load_sum += p.ctr(p.hcount, r, d);
        const double avg = load_sum / (n_active + 1);
        std::array<std::int64_t, kDirs> give{};
        std::int64_t offloaded = 0;
        if (my_count > cfg.rebalance_trigger * avg && my_count > 0 && scans > 0) {
          const std::int64_t target_scans =
              static_cast<std::int64_t>(scans * ((my_count - avg) / my_count));
          std::vector<int> under;
          for (int d : active) {
            if (p.ctr(p.hcount, r, d) < avg) under.push_back(d);
          }
          if (!under.empty()) {
            const std::int64_t share =
                target_scans / static_cast<std::int64_t>(under.size());
            std::int64_t rem = target_scans % static_cast<std::int64_t>(under.size());
            for (int d : under) {
              give[static_cast<std::size_t>(d)] = share + (rem > 0 ? 1 : 0);
              if (rem > 0) --rem;
              offloaded += give[static_cast<std::size_t>(d)];
            }
          }
        }
        for (int d : active) {
          p.tk(p.tksend, r, d) = give[static_cast<std::size_t>(d)];
          if (give[static_cast<std::size_t>(d)] > 0) {
            ++tickets[static_cast<std::size_t>(gc)];
          }
          co_await put_notify(
              ctx, wtk, d2r[static_cast<std::size_t>(d)],
              cnt_off(d2r[static_cast<std::size_t>(d)], opposite(d)),
              std::span<const std::int64_t>(&p.tk(p.tksend, r, d), 1), kTicketTag);
        }
        co_await flush(ctx);
        co_await wait_notifications(ctx, wtk, kAnySource, kTicketTag, n_active);
        std::int64_t adopted = 0;
        for (int d : active) adopted += p.tk(p.ticket, r, d);
        charge_scans = scans - offloaded + adopted;
      }
      if (cfg.record_load) {
        // The load curve tracks the *charged* scans, so with rebalance on it
        // shows the flattening that work adoption buys.
        scans_log[static_cast<std::size_t>(it) * static_cast<std::size_t>(cells) +
                  static_cast<std::size_t>(gc)] = charge_scans;
      }

      // 3) sort out movers into the per-direction outboxes.
      Moves moves{};
      if (cfg.compute) {
        std::array<double*, kDirs> out;
        for (int d = 0; d < kDirs; ++d) {
          out[static_cast<std::size_t>(d)] = p.recs(p.outbox, r, d);
        }
        moves = sort_out(cfg, grid, gc, p.cell_recs(r),
                         &p.count[static_cast<std::size_t>(r)], out);
      }

      // 4) migrate movers into the neighbors' inboxes.
      if (cfg.exchange) {
        for (int d : active) {
          const std::int32_t n = cfg.compute ? moves.n[static_cast<std::size_t>(d)] : 0;
          p.ctr(p.obcount, r, d) = n;
          const int t = d2r[static_cast<std::size_t>(d)];
          const int od = opposite(d);
          if (n > 0) {
            co_await put(ctx, wib, t, pay_off(t, od),
                         std::span<const double>(p.recs(p.outbox, r, d),
                                                 static_cast<std::size_t>(n) * kRec));
          }
          co_await put_notify(ctx, wibc, t, cnt_off(t, od),
                              std::span<const std::int32_t>(&p.ctr(p.obcount, r, d), 1),
                              kMigrateTag);
        }
        co_await flush(ctx);
        co_await wait_notifications(ctx, wibc, kAnySource, kMigrateTag, n_active);
      }

      // 5) integrate arrivals, directions ascending.
      std::int32_t arrivals = 0;
      if (cfg.exchange) {
        for (int d = 0; d < kDirs; ++d) {
          if (d == kSelf) continue;
          const std::int32_t n = p.ctr(p.ibcount, r, d);
          if (n > 0) {
            append(p.cell_recs(r), &p.count[static_cast<std::size_t>(r)],
                   p.recs(p.inbox, r, d), n, cap);
          }
          arrivals += n;
          p.ctr(p.ibcount, r, d) = 0;
        }
      }
      if (cfg.compute) {
        co_await charge_iteration(*ctx.block, charge_scans, my_count, shipped,
                                  moves.total + arrivals);
      }
    }

    co_await barrier(ctx, kCommWorld);
    for (Window* w : {&wh, &whc, &wib, &wibc, &wtk}) {
      co_await win_free(ctx, *w);
    }
  });

  Result out = collect(rpd, devs);
  out.elapsed = res.elapsed;
  for (int c = 0; c < cells; ++c) {
    out.halo_received_total += halo_recv[static_cast<std::size_t>(c)];
    out.halo_violations += halo_bad[static_cast<std::size_t>(c)];
    out.work_tickets += tickets[static_cast<std::size_t>(c)];
  }
  if (cfg.record_load) {
    for (int it = 0; it < cfg.iterations; ++it) {
      push_imbalance(out.iter_imbalance,
                     &scans_log[static_cast<std::size_t>(it) *
                                static_cast<std::size_t>(cells)],
                     cells);
    }
  }
  return out;
}

Result run_mpi_cuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  assert(cfg.cells_per_node == rpd && "one cell per rank");
  const Grid grid = make_grid(cfg, nodes);
  const int cells = grid.cells();
  const int cap = cfg.capacity();
  const double L[3] = {grid.gx * cfg.cell_width, grid.gy * cfg.cell_width,
                       grid.gz * cfg.cell_width};

  std::vector<DeviceState> devs;
  std::vector<std::unique_ptr<baseline::HostProgram>> progs;
  devs.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    devs.push_back(make_device(cluster.device(n), cfg, grid, rpd, n));
    progs.push_back(
        std::make_unique<baseline::HostProgram>(cluster.device(n), cluster.mpi(n)));
  }

  std::vector<std::int64_t> halo_recv(static_cast<std::size_t>(cells), 0);
  std::vector<std::int64_t> halo_bad(static_cast<std::size_t>(cells), 0);
  std::vector<std::int64_t> scans_log(
      cfg.record_load ? static_cast<std::size_t>(cfg.iterations) *
                            static_cast<std::size_t>(cells)
                      : 0,
      0);

  Result res;
  res.elapsed = cluster.run_hosts([&](int n) -> sim::Proc<void> {
    baseline::HostProgram& hp = *progs[static_cast<std::size_t>(n)];
    DeviceState& p = devs[static_cast<std::size_t>(n)];
    auto& dev = cluster.device(n);
    const gpu::LaunchConfig lc{rpd, 128, 26};
    const std::size_t slots = static_cast<std::size_t>(rpd) * kDirs;

    // Host-side mirrors of the bookkeeping counters (the per-iteration D2H
    // fetches the paper calls out as MPI-CUDA overhead).
    std::vector<std::int32_t> host_counts(static_cast<std::size_t>(rpd), 0);
    std::vector<std::int32_t> host_hsc(slots, 0), host_hin(slots, 0);
    std::vector<std::int32_t> host_obc(slots, 0), host_min(slots, 0);
    std::vector<std::int64_t> scans(static_cast<std::size_t>(rpd), 0);
    std::vector<std::int64_t> shipped(static_cast<std::size_t>(rpd), 0);
    std::vector<std::int32_t> particles(static_cast<std::size_t>(rpd), 0);

    auto slot_off = [&](int r, int d) -> std::size_t {
      return (static_cast<std::size_t>(r) * kDirs + static_cast<std::size_t>(d)) *
             static_cast<std::size_t>(cap) * kRec;
    };
    auto sidx = [&](int r, int d) -> std::size_t {
      return static_cast<std::size_t>(r) * kDirs + static_cast<std::size_t>(d);
    };

    for (int it = 0; it < cfg.iterations; ++it) {
      co_await hp.copy(
          gpu::mem_ref(std::span<std::int32_t>(host_counts)), dev.ref(p.count));

      if (cfg.exchange) {
        // 1a) pack kernel: every active direction's band into its send buffer.
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          const int gc = n * rpd + r;
          std::int64_t sh = 0;
          for (int d : grid.active_dirs(gc)) {
            const int cnt = pack_halo(cfg, grid, gc, p.cell_recs(r),
                                      p.count[static_cast<std::size_t>(r)], d,
                                      p.recs(p.hsend, r, d));
            p.ctr(p.hscount, r, d) = static_cast<std::int32_t>(cnt);
            sh += cnt;
          }
          shipped[static_cast<std::size_t>(r)] = sh;
          co_await blk.mem_traffic(static_cast<double>(sh) * kRec * sizeof(double));
        }, "pack");
        co_await hp.copy(gpu::mem_ref(std::span<std::int32_t>(host_hsc)),
                         dev.ref(p.hscount));

        // 1b) device-boundary counts, then sized payloads.
        std::vector<mpi::Request> pend;
        for (int r = 0; r < rpd; ++r) {
          const int gc = n * rpd + r;
          for (int d : grid.active_dirs(gc)) {
            const int t = grid.dir2cell(gc, d);
            const int m = t / rpd;
            if (m == n) continue;
            pend.push_back(hp.isend(m, kTagHaloCnt + gc * kDirs + d,
                                    gpu::mem_ref(&host_hsc[sidx(r, d)], 1)));
            pend.push_back(hp.irecv(m, kTagHaloCnt + t * kDirs + opposite(d),
                                    gpu::mem_ref(&host_hin[sidx(r, d)], 1)));
          }
        }
        co_await mpi::wait_all(std::move(pend));
        std::vector<mpi::Request> pend2;
        for (int r = 0; r < rpd; ++r) {
          const int gc = n * rpd + r;
          for (int d : grid.active_dirs(gc)) {
            const int t = grid.dir2cell(gc, d);
            const int m = t / rpd;
            if (m == n) continue;
            const std::int32_t sn = host_hsc[sidx(r, d)];
            if (sn > 0) {
              pend2.push_back(hp.isend(
                  m, kTagHaloPay + gc * kDirs + d,
                  dev.ref(p.hsend.subspan(slot_off(r, d),
                                          static_cast<std::size_t>(sn) * kRec))));
            }
            const std::int32_t in = host_hin[sidx(r, d)];
            if (in > 0) {
              pend2.push_back(hp.irecv(
                  m, kTagHaloPay + t * kDirs + opposite(d),
                  dev.ref(p.halo.subspan(slot_off(r, d),
                                         static_cast<std::size_t>(in) * kRec))));
            }
            p.ctr(p.hcount, r, d) = in;
          }
        }
        co_await mpi::wait_all(std::move(pend2));

        // 1c) intra-device halos: copy the neighbor's packed send buffer.
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          const int gc = n * rpd + r;
          std::int64_t copied = 0;
          for (int d : grid.active_dirs(gc)) {
            const int t = grid.dir2cell(gc, d);
            if (t / rpd != n) continue;  // device edge: MPI filled it
            const int lnb = t % rpd;
            const std::int32_t cnt = p.ctr(p.hscount, lnb, opposite(d));
            std::memcpy(p.recs(p.halo, r, d), p.recs(p.hsend, lnb, opposite(d)),
                        static_cast<std::size_t>(cnt) * kRec * sizeof(double));
            p.ctr(p.hcount, r, d) = cnt;
            copied += cnt;
          }
          co_await blk.mem_traffic(2.0 * static_cast<double>(copied) * kRec *
                                   sizeof(double));
        }, "halo");
      }

      // 2) force + update kernel (plus the halo oracle accumulation).
      co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
        const int r = blk.block_id();
        const int gc = n * rpd + r;
        if (cfg.exchange) {
          for (int d = 0; d < kDirs; ++d) {
            if (d == kSelf) continue;
            const View v{p.recs(p.halo, r, d), p.ctr(p.hcount, r, d)};
            halo_recv[static_cast<std::size_t>(gc)] += v.count;
            halo_bad[static_cast<std::size_t>(gc)] +=
                check_halo_slot(cfg, grid, gc, d, v);
          }
        }
        std::int64_t sc = 0;
        if (cfg.compute) {
          particles[static_cast<std::size_t>(r)] =
              p.count[static_cast<std::size_t>(r)];
          std::array<View, kDirs> nb;
          for (int d = 0; d < kDirs; ++d) {
            nb[static_cast<std::size_t>(d)] =
                d == kSelf ? View{p.cell_recs(r), p.count[static_cast<std::size_t>(r)]}
                           : View{p.recs(p.halo, r, d),
                                  cfg.exchange ? p.ctr(p.hcount, r, d) : 0};
          }
          sc = force_and_update(cfg, nb, p.cell_recs(r),
                                p.count[static_cast<std::size_t>(r)], L);
          scans[static_cast<std::size_t>(r)] = sc;
          co_await blk.compute_flops(static_cast<double>(sc) * 18.0 +
                                     particles[static_cast<std::size_t>(r)] * 12.0);
          co_await blk.mem_traffic(static_cast<double>(sc) * kRec * sizeof(double) +
                                   particles[static_cast<std::size_t>(r)] * 12.0 *
                                       sizeof(double));
        }
        if (cfg.record_load) {
          scans_log[static_cast<std::size_t>(it) * static_cast<std::size_t>(cells) +
                    static_cast<std::size_t>(gc)] = sc;
        }
      }, "force");

      // 3) sort kernel: movers into the per-direction outboxes.
      if (cfg.compute) {
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          const int gc = n * rpd + r;
          std::array<double*, kDirs> out;
          for (int d = 0; d < kDirs; ++d) {
            out[static_cast<std::size_t>(d)] = p.recs(p.outbox, r, d);
          }
          const Moves m = sort_out(cfg, grid, gc, p.cell_recs(r),
                                   &p.count[static_cast<std::size_t>(r)], out);
          for (int d = 0; d < kDirs; ++d) {
            p.ctr(p.obcount, r, d) = m.n[static_cast<std::size_t>(d)];
          }
          co_await blk.mem_traffic(
              static_cast<double>(p.count[static_cast<std::size_t>(r)]) * kRec *
              sizeof(double));
        }, "sort");
      }

      if (cfg.exchange) {
        // 4) migrate across the device boundary (second D2H counter fetch).
        co_await hp.copy(gpu::mem_ref(std::span<std::int32_t>(host_obc)),
                         dev.ref(p.obcount));
        std::vector<mpi::Request> pend;
        for (int r = 0; r < rpd; ++r) {
          const int gc = n * rpd + r;
          for (int d : grid.active_dirs(gc)) {
            const int t = grid.dir2cell(gc, d);
            const int m = t / rpd;
            if (m == n) continue;
            pend.push_back(hp.isend(m, kTagMigCnt + gc * kDirs + d,
                                    gpu::mem_ref(&host_obc[sidx(r, d)], 1)));
            pend.push_back(hp.irecv(m, kTagMigCnt + t * kDirs + opposite(d),
                                    gpu::mem_ref(&host_min[sidx(r, d)], 1)));
          }
        }
        co_await mpi::wait_all(std::move(pend));
        std::vector<mpi::Request> pend2;
        for (int r = 0; r < rpd; ++r) {
          const int gc = n * rpd + r;
          for (int d : grid.active_dirs(gc)) {
            const int t = grid.dir2cell(gc, d);
            const int m = t / rpd;
            if (m == n) continue;
            const std::int32_t on = host_obc[sidx(r, d)];
            if (on > 0) {
              pend2.push_back(hp.isend(
                  m, kTagMigPay + gc * kDirs + d,
                  dev.ref(p.outbox.subspan(slot_off(r, d),
                                           static_cast<std::size_t>(on) * kRec))));
            }
            const std::int32_t in = host_min[sidx(r, d)];
            if (in > 0) {
              pend2.push_back(hp.irecv(
                  m, kTagMigPay + t * kDirs + opposite(d),
                  dev.ref(p.inbox.subspan(slot_off(r, d),
                                          static_cast<std::size_t>(in) * kRec))));
            }
            p.ctr(p.ibcount, r, d) = in;
          }
        }
        co_await mpi::wait_all(std::move(pend2));

        // 5) integrate kernel: intra-device movers straight from the neighbor
        // outboxes, device-edge arrivals from the MPI-filled inbox slots —
        // the same data in the same ascending direction order either way.
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r = blk.block_id();
          const int gc = n * rpd + r;
          std::int32_t arrivals = 0;
          for (int d = 0; d < kDirs; ++d) {
            if (d == kSelf) continue;
            const int t = grid.dir2cell(gc, d);
            if (t < 0) continue;
            if (t / rpd == n) {
              const int lnb = t % rpd;
              const std::int32_t cnt = p.ctr(p.obcount, lnb, opposite(d));
              if (cnt > 0) {
                append(p.cell_recs(r), &p.count[static_cast<std::size_t>(r)],
                       p.recs(p.outbox, lnb, opposite(d)), cnt, cap);
              }
              arrivals += cnt;
            } else {
              const std::int32_t cnt = p.ctr(p.ibcount, r, d);
              if (cnt > 0) {
                append(p.cell_recs(r), &p.count[static_cast<std::size_t>(r)],
                       p.recs(p.inbox, r, d), cnt, cap);
              }
              arrivals += cnt;
              p.ctr(p.ibcount, r, d) = 0;
            }
          }
          co_await blk.mem_traffic(
              static_cast<double>(arrivals + shipped[static_cast<std::size_t>(r)]) *
                  kRec * sizeof(double) +
              particles[static_cast<std::size_t>(r)] * 2.0 * sizeof(double));
        }, "integrate");
      }
    }
  });

  Result out = collect(rpd, devs);
  out.elapsed = res.elapsed;
  for (int c = 0; c < cells; ++c) {
    out.halo_received_total += halo_recv[static_cast<std::size_t>(c)];
    out.halo_violations += halo_bad[static_cast<std::size_t>(c)];
  }
  if (cfg.record_load) {
    for (int it = 0; it < cfg.iterations; ++it) {
      push_imbalance(out.iter_imbalance,
                     &scans_log[static_cast<std::size_t>(it) *
                                static_cast<std::size_t>(cells)],
                     cells);
    }
  }
  return out;
}

}  // namespace dcuda::apps::dpd3d
