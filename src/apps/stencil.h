#pragma once

// Mini-application 2 (§IV-C): simplified COSMO horizontal diffusion.
//
// Four dependent stencils (lap, flx, fly, out) applied to a 3-D regular grid
// with a limited number of vertical levels, stored column-major (i fastest).
// One-dimensional domain decomposition along j; every rank owns an ij-patch
// covering the full i-dimension; halos are one j-line per vertical level.
//
// Main loop: three compute phases, each followed by a halo exchange; four
// stencils and four one-point halos per iteration:
//   phase 1: lap   (consumes in  j+-1)  -> exchange lap (down)
//   phase 2: flx,fly (fly consumes lap j+1) -> exchange fly (up)
//   phase 3: out   (consumes fly j-1)   -> exchange out (both), swap in/out
//
// The dCUDA variant sends one message per vertical level (the paper's 26
// separate 1 kB messages); the MPI-CUDA variant packs each halo into a
// continuous communication buffer and sends a single 16 kB message.

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "sim/proc.h"

namespace dcuda::apps::stencil {

struct Config {
  int isize = 128;          // i extent (full width per rank), 1 kB lines
  int jlocal = 2;           // j lines per rank
  int ksize = 16;           // vertical levels (16 kB packed halos)
  int iterations = 100;
  double diffusion_coeff = 0.1;
  // Runtime switches (§IV-B methodology): disable phases independently.
  bool compute = true;
  bool exchange = true;
  // Extra compute per point per iteration (Fig. 7/8 style overlap sweeps).
  double extra_flops_per_point = 0.0;
};

struct Result {
  sim::Dur elapsed = 0.0;   // simulated time of the measured region
  double checksum = 0.0;    // sum over the final field (validation)
  std::uint64_t bytes_on_wire = 0;
};

// Grid geometry helpers shared by all variants.
struct Geometry {
  int isize, jdev, ksize;  // jdev: j-lines owned by one device
  int line_elems() const { return isize; }
  // Device array: jdev lines + one halo line on each side, all k levels.
  int jstride() const { return isize; }
  int kstride() const { return isize * (jdev + 2); }
  std::size_t elems() const { return static_cast<std::size_t>(kstride()) * ksize; }
  // Element index of (i, j, k) with j in [-1, jdev] (halo lines at -1, jdev).
  std::size_t at(int i, int j, int k) const {
    return static_cast<std::size_t>(i) + static_cast<std::size_t>(j + 1) * jstride() +
           static_cast<std::size_t>(k) * kstride();
  }
};

// Serial reference on the global grid (zero boundary conditions), for
// validation of both parallel variants.
std::vector<double> reference(const Config& cfg, int num_nodes, int ranks_per_device);

// Initial condition for global j-line row `jg` (deterministic).
double initial_value(int i, int jg, int k);

// Runs the dCUDA variant on the cluster. The cluster must be freshly
// constructed (one measurement per cluster).
Result run_dcuda(Cluster& cluster, const Config& cfg);

// Runs the MPI-CUDA variant (fork-join kernels + two-sided MPI).
Result run_mpi_cuda(Cluster& cluster, const Config& cfg);

// Checksum of the reference solution restricted to the full grid.
double reference_checksum(const Config& cfg, int num_nodes, int ranks_per_device);

}  // namespace dcuda::apps::stencil
