#include "apps/spmv.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "baseline/mpi_cuda.h"
#include "sim/random.h"

namespace dcuda::apps::spmv {

namespace {

int isqrt(int n) {
  int r = static_cast<int>(std::lround(std::sqrt(static_cast<double>(n))));
  assert(r * r == n && "spmv requires a square number of nodes (1, 4, 9, ...)");
  return r;
}

// Local SpMV over rows [r0, r1) of a patch; x is the column chunk.
// Returns nnz touched (cost model).
std::int64_t spmv_rows(const CsrPatch& a, std::span<const double> x,
                       std::span<double> y, int r0, int r1, bool accumulate) {
  std::int64_t nnz = 0;
  for (int r = r0; r < r1; ++r) {
    double acc = accumulate ? y[static_cast<size_t>(r)] : 0.0;
    for (std::int32_t k = a.row_ptr[static_cast<size_t>(r)];
         k < a.row_ptr[static_cast<size_t>(r) + 1]; ++k) {
      acc += a.val[static_cast<size_t>(k)] *
             x[static_cast<size_t>(a.col[static_cast<size_t>(k)])];
      ++nnz;
    }
    y[static_cast<size_t>(r)] = acc;
  }
  return nnz;
}

sim::Proc<void> charge_spmv(gpu::BlockCtx& blk, std::int64_t nnz, int rows) {
  co_await blk.compute_flops(static_cast<double>(nnz) * 2.0);
  // col index + value + gathered x entry per nnz, plus the y row write.
  co_await blk.mem_traffic(static_cast<double>(nnz) * 20.0 + rows * 8.0);
}

}  // namespace

CsrPatch make_patch(const Config& cfg, int brow, int bcol) {
  CsrPatch p;
  const int n = cfg.n_dev;
  const int per_row = std::max(1, static_cast<int>(cfg.density * n));
  p.row_ptr.resize(static_cast<size_t>(n) + 1);
  p.col.reserve(static_cast<size_t>(n) * per_row);
  p.val.reserve(static_cast<size_t>(n) * per_row);
  sim::Rng rng(cfg.seed ^ (static_cast<std::uint64_t>(brow) << 32) ^
               static_cast<std::uint64_t>(bcol + 1));
  for (int r = 0; r < n; ++r) {
    p.row_ptr[static_cast<size_t>(r)] = static_cast<std::int32_t>(p.col.size());
    for (int k = 0; k < per_row; ++k) {
      p.col.push_back(static_cast<std::int32_t>(rng.next_below(static_cast<std::uint64_t>(n))));
      p.val.push_back(rng.uniform(-1.0, 1.0));
    }
  }
  p.row_ptr[static_cast<size_t>(n)] = static_cast<std::int32_t>(p.col.size());
  return p;
}

double input_value(std::int64_t i) { return std::sin(0.01 * static_cast<double>(i)) + 1.0; }

double reference_checksum(const Config& cfg, int num_nodes) {
  const int p = isqrt(num_nodes);
  const int n = cfg.n_dev;
  double sum = 0.0;
  // y(brow) = sum_bcol A(brow,bcol) x(bcol); accumulate patch by patch in
  // bcol order (matches the tree reduction up to FP reassociation).
  for (int brow = 0; brow < p; ++brow) {
    std::vector<double> y(static_cast<size_t>(n), 0.0);
    for (int bcol = 0; bcol < p; ++bcol) {
      CsrPatch a = make_patch(cfg, brow, bcol);
      std::vector<double> x(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i)
        x[static_cast<size_t>(i)] = input_value(static_cast<std::int64_t>(bcol) * n + i);
      spmv_rows(a, x, y, 0, n, /*accumulate=*/true);
    }
    for (double v : y) sum += v;
  }
  return sum;
}

Result run_dcuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  const int p = isqrt(nodes);
  const int n = cfg.n_dev;
  assert(n % rpd == 0 && "n_dev must be divisible by ranks_per_device");
  const int rows_pr = n / rpd;  // rows (and slice elems) per rank

  // Reduction rounds (binomial tree height). Each round receives into its
  // own slot of yrecv: notifications carry ordering per (source, tag) but
  // data from *different* sources does not, so sharing one landing buffer
  // across rounds would let a later sender overwrite an unconsumed slice.
  int rounds = 0;
  for (int step = 1; step < p; step *= 2) ++rounds;

  // Per-device data. Node id = brow * p + bcol.
  struct Dev {
    CsrPatch a;
    std::span<double> x;       // column input chunk
    std::span<double> y;       // partial output (accumulated in reduction)
    std::span<double> yrecv;   // reduction receive buffer, one slot per round
  };
  std::vector<Dev> devs(static_cast<size_t>(nodes));
  for (int node = 0; node < nodes; ++node) {
    const int brow = node / p, bcol = node % p;
    Dev& d = devs[static_cast<size_t>(node)];
    d.a = make_patch(cfg, brow, bcol);
    auto& gd = cluster.device(node);
    d.x = gd.alloc<double>(static_cast<size_t>(n));
    d.y = gd.alloc<double>(static_cast<size_t>(n));
    d.yrecv = gd.alloc<double>(static_cast<size_t>(n) * std::max(1, rounds));
    std::fill(d.x.begin(), d.x.end(), 0.0);
    std::fill(d.y.begin(), d.y.end(), 0.0);
    std::fill(d.yrecv.begin(), d.yrecv.end(), 0.0);
    if (brow == 0) {  // the input vector lives along the first row
      for (int i = 0; i < n; ++i)
        d.x[static_cast<size_t>(i)] = input_value(static_cast<std::int64_t>(bcol) * n + i);
    }
  }

  Result res;
  res.elapsed = cluster.run([&](Context& ctx) -> sim::Proc<void> {
    const int node = ctx.node->node();
    const int brow = node / p, bcol = node % p;
    const int r = ctx.device_rank;
    Dev& d = devs[static_cast<size_t>(node)];

    Window wx = co_await win_create(ctx, kCommWorld, d.x);
    Window wy = co_await win_create(ctx, kCommWorld, d.yrecv);

    // Column broadcast tree, hierarchical: a binomial tree over the column's
    // devices moves the chunk across the network once per device (rank 0 of
    // each device forwards), then an in-device binary tree of zero-copy
    // notified puts fans the completion out to the local ranks. Total depth
    // log2(p) + log2(rpd) — the deeper tree of the over-decomposed variant —
    // while every message still carries the full chunk.
    const int my_rows0 = r * rows_pr;  // this rank's slice of the patch rows
    auto rank_of = [&](int dev_row, int local) {
      return (dev_row * p + bcol) * rpd + local;
    };

    for (int it = 0; it < cfg.iterations; ++it) {
      const int tag_b = 10 + it * 8;
      // 1) column broadcast of the full x chunk.
      if (cfg.exchange && (p > 1 || rpd > 1)) {
        if (r == 0) {
          // Cross-device stage (rank 0 only): binomial over device rows.
          if (p > 1) {
            if (brow != 0) co_await wait_notifications(ctx, wx, kAnySource, tag_b, 1);
            for (int child = 2 * brow + 1; child <= 2 * brow + 2; ++child) {
              if (child >= p) break;
              co_await put_notify(ctx, wx, rank_of(child, 0), 0,
                                  std::span<const double>(d.x), tag_b);
            }
          }
        } else {
          // In-device stage: wait for the parent's (zero-copy) notification.
          co_await wait_notifications(ctx, wx, kAnySource, tag_b, 1);
        }
        for (int child = 2 * r + 1; child <= 2 * r + 2; ++child) {
          if (child >= rpd) break;
          co_await put_notify(ctx, wx, rank_of(brow, child), 0,
                              std::span<const double>(d.x), tag_b);
        }
        co_await flush(ctx);
      }

      // 2) local product over this rank's rows.
      if (cfg.compute) {
        const std::int64_t nnz =
            spmv_rows(d.a, d.x, d.y, my_rows0, my_rows0 + rows_pr, false);
        co_await charge_spmv(*ctx.block, nnz, rows_pr);
      }

      // 3) row reduction (binomial tree over the pc devices of the row,
      // one message per rank: rpd small slices instead of one big one).
      if (cfg.exchange && p > 1) {
        int round = 0;
        for (int step = 1; step < p; step *= 2, ++round) {
          const int tag_r = tag_b + 1 + round;
          const std::size_t slot = static_cast<size_t>(round) * n;
          if (bcol % (2 * step) == step) {
            // Send my slice of the partial sum to the peer and stop.
            const int peer_node = brow * p + (bcol - step);
            const int peer_rank = peer_node * rpd + r;
            co_await put_notify(ctx, wy, peer_rank,
                                slot + static_cast<size_t>(my_rows0),
                                std::span<const double>(
                                    &d.y[static_cast<size_t>(my_rows0)],
                                    static_cast<size_t>(rows_pr)),
                                tag_r);
            co_await flush(ctx);
            break;
          }
          if (bcol % (2 * step) == 0 && bcol + step < p) {
            co_await wait_notifications(ctx, wy, kAnySource, tag_r, 1);
            for (int i = my_rows0; i < my_rows0 + rows_pr; ++i)
              d.y[static_cast<size_t>(i)] += d.yrecv[slot + static_cast<size_t>(i)];
            if (cfg.compute) {
              co_await ctx.block->mem_traffic(rows_pr * 3.0 * sizeof(double));
            }
          }
        }
      }

      // 4) barrier emulating a synchronized follow-up step (worst case for
      // overlap, §IV-C).
      co_await barrier(ctx, kCommWorld);
    }

    co_await win_free(ctx, wx);
    co_await win_free(ctx, wy);
  });

  // Output lives along the first column (bcol == 0).
  for (int node = 0; node < nodes; ++node) {
    if (node % p != 0) continue;
    for (double v : devs[static_cast<size_t>(node)].y) res.checksum += v;
  }
  return res;
}

Result run_mpi_cuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  const int p = isqrt(nodes);
  const int n = cfg.n_dev;
  assert(n % rpd == 0);
  const int rows_pr = n / rpd;

  struct Dev {
    CsrPatch a;
    std::span<double> x, y, yrecv;
  };
  std::vector<Dev> devs(static_cast<size_t>(nodes));
  std::vector<std::unique_ptr<baseline::HostProgram>> progs;
  for (int node = 0; node < nodes; ++node) {
    const int brow = node / p, bcol = node % p;
    Dev& d = devs[static_cast<size_t>(node)];
    d.a = make_patch(cfg, brow, bcol);
    auto& gd = cluster.device(node);
    d.x = gd.alloc<double>(static_cast<size_t>(n));
    d.y = gd.alloc<double>(static_cast<size_t>(n));
    d.yrecv = gd.alloc<double>(static_cast<size_t>(n));
    std::fill(d.x.begin(), d.x.end(), 0.0);
    std::fill(d.y.begin(), d.y.end(), 0.0);
    std::fill(d.yrecv.begin(), d.yrecv.end(), 0.0);
    if (brow == 0) {
      for (int i = 0; i < n; ++i)
        d.x[static_cast<size_t>(i)] = input_value(static_cast<std::int64_t>(bcol) * n + i);
    }
    progs.push_back(
        std::make_unique<baseline::HostProgram>(cluster.device(node), cluster.mpi(node)));
  }

  Result res;
  res.elapsed = cluster.run_hosts([&](int node) -> sim::Proc<void> {
    baseline::HostProgram& hp = *progs[static_cast<size_t>(node)];
    Dev& d = devs[static_cast<size_t>(node)];
    auto& gd = cluster.device(node);
    const int brow = node / p, bcol = node % p;
    const gpu::LaunchConfig lc{rpd, 128, 26};
    const gpu::MemRef xref = gd.ref(d.x);
    const gpu::MemRef yrecv_ref = gd.ref(d.yrecv);

    for (int it = 0; it < cfg.iterations; ++it) {
      const int tag_b = 10 + it * 8;
      // 1) column broadcast, binomial tree over the p devices of the column
      // (device at column position brow; messages are the full 64 kB chunk:
      // large device buffers -> host staged by CUDA-aware MPI).
      if (cfg.exchange && p > 1) {
        if (brow != 0) {
          co_await hp.mpi().recv(mpi::kAnySource, tag_b, xref);
        }
        for (int child = 2 * brow + 1; child <= 2 * brow + 2; ++child) {
          if (child >= p) break;
          co_await hp.mpi().send(child * p + bcol, tag_b, xref);
        }
      }
      // 2) product kernel.
      if (cfg.compute) {
        co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
          const int r0 = blk.block_id() * rows_pr;
          const std::int64_t nnz = spmv_rows(d.a, d.x, d.y, r0, r0 + rows_pr, false);
          co_await charge_spmv(blk, nnz, rows_pr);
        }, "spmv");
      }
      // 3) row reduction, binomial tree over the row's devices; the message
      // is the whole n-element partial vector, the add runs as a kernel.
      if (cfg.exchange && p > 1) {
        for (int step = 1; step < p; step *= 2) {
          const int tag_r = tag_b + 1 + static_cast<int>(std::log2(step));
          if (bcol % (2 * step) == step) {
            co_await hp.mpi().send(brow * p + (bcol - step), tag_r, gd.ref(d.y));
            break;
          }
          if (bcol % (2 * step) == 0 && bcol + step < p) {
            co_await hp.mpi().recv(brow * p + (bcol + step), tag_r, yrecv_ref);
            co_await hp.launch(lc, [&](gpu::BlockCtx& blk) -> sim::Proc<void> {
              const int r0 = blk.block_id() * rows_pr;
              for (int i = r0; i < r0 + rows_pr; ++i)
                d.y[static_cast<size_t>(i)] += d.yrecv[static_cast<size_t>(i)];
              co_await blk.mem_traffic(rows_pr * 3.0 * sizeof(double));
            }, "add");
          }
        }
      }
      // 4) barrier.
      co_await hp.barrier();
    }
  });

  for (int node = 0; node < nodes; ++node) {
    if (node % p != 0) continue;
    for (double v : devs[static_cast<size_t>(node)].y) res.checksum += v;
  }
  return res;
}

}  // namespace dcuda::apps::spmv
