#include "apps/stencil.h"

#include <cassert>
#include <cmath>
#include <cstring>

#include "baseline/mpi_cuda.h"

namespace dcuda::apps::stencil {

namespace {

// Stencil math shared by all variants (and the serial reference). Zero
// boundary conditions in i; j neighbors come from halos.
struct Field {
  std::span<double> data;
  Geometry g;
  double at(int i, int j, int k) const {
    if (i < 0 || i >= g.isize) return 0.0;
    return data[g.at(i, j, k)];
  }
  double& ref(int i, int j, int k) { return data[g.at(i, j, k)]; }
};

void compute_lap(Field in, Field lap, int j0, int j1) {
  for (int k = 0; k < lap.g.ksize; ++k)
    for (int j = j0; j < j1; ++j)
      for (int i = 0; i < lap.g.isize; ++i)
        lap.ref(i, j, k) = 4.0 * in.at(i, j, k) - in.at(i + 1, j, k) -
                           in.at(i - 1, j, k) - in.at(i, j + 1, k) -
                           in.at(i, j - 1, k);
}

void compute_flxfly(Field in, Field lap, Field flx, Field fly, int j0, int j1) {
  for (int k = 0; k < lap.g.ksize; ++k)
    for (int j = j0; j < j1; ++j)
      for (int i = 0; i < lap.g.isize; ++i) {
        double fx = lap.at(i + 1, j, k) - lap.at(i, j, k);
        if (fx * (in.at(i + 1, j, k) - in.at(i, j, k)) > 0.0) fx = 0.0;
        flx.ref(i, j, k) = fx;
        double fy = lap.at(i, j + 1, k) - lap.at(i, j, k);
        if (fy * (in.at(i, j + 1, k) - in.at(i, j, k)) > 0.0) fy = 0.0;
        fly.ref(i, j, k) = fy;
      }
}

void compute_out(Field in, Field flx, Field fly, Field out, double coeff, int j0,
                 int j1) {
  for (int k = 0; k < out.g.ksize; ++k)
    for (int j = j0; j < j1; ++j)
      for (int i = 0; i < out.g.isize; ++i)
        out.ref(i, j, k) = in.at(i, j, k) -
                           coeff * (flx.at(i, j, k) - flx.at(i - 1, j, k) +
                                    fly.at(i, j, k) - fly.at(i, j - 1, k));
}

// Simulated cost of one compute phase over `lines` j-lines: `passes` array
// passes of memory traffic plus `flops_per_point` arithmetic.
sim::Proc<void> charge_phase(gpu::BlockCtx& blk, const Config& cfg, int lines,
                             double passes, double flops_per_point) {
  const double points = static_cast<double>(cfg.isize) * lines * cfg.ksize;
  co_await blk.compute_flops(points * (flops_per_point + cfg.extra_flops_per_point));
  co_await blk.mem_traffic(points * sizeof(double) * passes);
}

struct DeviceArrays {
  std::span<double> in, lap, flx, fly, out;
  Geometry g;
};

DeviceArrays make_arrays(gpu::Device& dev, const Geometry& g, int node_jbase,
                         int jtotal) {
  DeviceArrays a;
  a.g = g;
  a.in = dev.alloc<double>(g.elems());
  a.lap = dev.alloc<double>(g.elems());
  a.flx = dev.alloc<double>(g.elems());
  a.fly = dev.alloc<double>(g.elems());
  a.out = dev.alloc<double>(g.elems());
  for (auto s : {a.lap, a.flx, a.fly, a.out})
    std::fill(s.begin(), s.end(), 0.0);
  std::fill(a.in.begin(), a.in.end(), 0.0);
  // Owned lines plus valid neighbor halos (boilerplate initialization).
  for (int k = 0; k < g.ksize; ++k)
    for (int j = -1; j <= g.jdev; ++j)
      for (int i = 0; i < g.isize; ++i) {
        const int jg = node_jbase + j;
        a.in[g.at(i, j, k)] = jg >= 0 && jg < jtotal ? initial_value(i, jg, k) : 0.0;
      }
  return a;
}

}  // namespace

double initial_value(int i, int jg, int k) {
  if (jg < 0) return 0.0;  // global zero boundary (also used for halos)
  return std::sin(0.1 * i) + 0.01 * jg + 0.001 * k;
}

std::vector<double> reference(const Config& cfg, int num_nodes, int rpd) {
  const int jdev = rpd * cfg.jlocal;
  const int jtotal = num_nodes * jdev;
  Geometry g{cfg.isize, jtotal, cfg.ksize};  // one "device" spanning all
  std::vector<double> in(g.elems(), 0.0), lap(g.elems(), 0.0), flx(g.elems(), 0.0),
      fly(g.elems(), 0.0), out(g.elems(), 0.0);
  for (int k = 0; k < g.ksize; ++k)
    for (int j = -1; j <= g.jdev; ++j)
      for (int i = 0; i < g.isize; ++i)
        in[g.at(i, j, k)] = j < jtotal ? initial_value(i, j, k) : 0.0;
  Field fin{in, g}, flap{lap, g}, fflx{flx, g}, ffly{fly, g}, fout{out, g};
  for (int it = 0; it < cfg.iterations; ++it) {
    compute_lap(fin, flap, 0, jtotal);
    compute_flxfly(fin, flap, fflx, ffly, 0, jtotal);
    compute_out(fin, fflx, ffly, fout, cfg.diffusion_coeff, 0, jtotal);
    std::swap(fin.data, fout.data);
  }
  return std::vector<double>(fin.data.begin(), fin.data.end());
}

double reference_checksum(const Config& cfg, int num_nodes, int rpd) {
  const int jdev = rpd * cfg.jlocal;
  const int jtotal = num_nodes * jdev;
  Geometry g{cfg.isize, jtotal, cfg.ksize};
  auto final_in = reference(cfg, num_nodes, rpd);
  double sum = 0.0;
  for (int k = 0; k < g.ksize; ++k)
    for (int j = 0; j < jtotal; ++j)
      for (int i = 0; i < g.isize; ++i) sum += final_in[g.at(i, j, k)];
  return sum;
}

Result run_dcuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  const Geometry g{cfg.isize, rpd * cfg.jlocal, cfg.ksize};
  std::vector<DeviceArrays> dev(static_cast<size_t>(nodes));
  for (int n = 0; n < nodes; ++n)
    dev[static_cast<size_t>(n)] = make_arrays(cluster.device(n), g, n * g.jdev, nodes * g.jdev);

  const std::size_t line_elems = static_cast<size_t>(g.isize);
  const double phase_flops[3] = {5.0, 12.0, 9.0};
  const double phase_passes[3] = {2.0, 4.0, 4.0};

  Result res;
  res.elapsed = cluster.run([&](Context& ctx) -> sim::Proc<void> {
    const int grank = comm_rank(ctx, kCommWorld);
    const int gsize = comm_size(ctx, kCommWorld);
    const int node_id = ctx.node->node();
    const int r = ctx.device_rank;
    DeviceArrays& a = dev[static_cast<size_t>(node_id)];
    // Double-buffered in/out field spans + windows.
    std::span<double> f_in = a.in, f_out = a.out;

    Window win = co_await win_create(ctx, kCommWorld, f_in);
    Window wout = co_await win_create(ctx, kCommWorld, f_out);
    Window wlap = co_await win_create(ctx, kCommWorld, a.lap);
    Window wfly = co_await win_create(ctx, kCommWorld, a.fly);

    const bool has_down = grank > 0;       // neighbor at smaller j
    const bool has_up = grank + 1 < gsize; // neighbor at larger j
    const int jb = r * cfg.jlocal;         // device-local bottom owned line
    const int jt = jb + cfg.jlocal - 1;    // top owned line

    // Sends one j-line (all k levels, one put per level, last one notified)
    // of `span` into the neighbor's window. In-device targets resolve to the
    // same array position: zero-copy, notification only.
    auto send_line = [&](Window w, std::span<double> span, int target_rank,
                         int my_j, int target_j, int tag) -> sim::Proc<void> {
      for (int k = 0; k < g.ksize; ++k) {
        const std::span<const double> line = span.subspan(g.at(0, my_j, k), line_elems);
        const std::size_t dst_off = g.at(0, target_j, k);  // element offset
        if (k + 1 < g.ksize) {
          co_await put(ctx, w, target_rank, dst_off, line);
        } else {
          co_await put_notify(ctx, w, target_rank, dst_off, line, tag);
        }
      }
    };
    // Target j-line (in the receiving device's coordinates) of my boundary
    // lines. Windows span the whole device array, so an in-device target is
    // the very same line (zero-copy overlap); a cross-device target is the
    // neighbor device's halo line.
    const int down_tgt_j = r > 0 ? jb : g.jdev;
    const int up_tgt_j = r + 1 < rpd ? jt : -1;

    for (int it = 0; it < cfg.iterations; ++it) {
      // Phase 1: lap on owned lines; then send bottom lap line down.
      if (cfg.compute) {
        compute_lap(Field{f_in, g}, Field{a.lap, g}, jb, jt + 1);
        co_await charge_phase(*ctx.block, cfg, cfg.jlocal, phase_passes[0],
                              phase_flops[0]);
      }
      if (cfg.exchange) {
        if (has_down) {
          co_await send_line(wlap, a.lap, grank - 1, jb, down_tgt_j, 0);
        }
        co_await wait_notifications(ctx, wlap, kAnySource, 0, has_up ? 1 : 0);
      }

      // Phase 2: flx/fly on owned lines; send top fly line up.
      if (cfg.compute) {
        compute_flxfly(Field{f_in, g}, Field{a.lap, g}, Field{a.flx, g},
                       Field{a.fly, g}, jb, jt + 1);
        co_await charge_phase(*ctx.block, cfg, cfg.jlocal, phase_passes[1],
                              phase_flops[1]);
      }
      if (cfg.exchange) {
        if (has_up) {
          co_await send_line(wfly, a.fly, grank + 1, jt, up_tgt_j, 1);
        }
        co_await wait_notifications(ctx, wfly, kAnySource, 1, has_down ? 1 : 0);
      }

      // Phase 3: out on owned lines; exchange out both directions, swap.
      if (cfg.compute) {
        compute_out(Field{f_in, g}, Field{a.flx, g}, Field{a.fly, g},
                    Field{f_out, g}, cfg.diffusion_coeff, jb, jt + 1);
        co_await charge_phase(*ctx.block, cfg, cfg.jlocal, phase_passes[2],
                              phase_flops[2]);
      }
      if (cfg.exchange) {
        if (has_down) co_await send_line(wout, f_out, grank - 1, jb, down_tgt_j, 2);
        if (has_up) co_await send_line(wout, f_out, grank + 1, jt, up_tgt_j, 2);
        co_await wait_notifications(ctx, wout, kAnySource, 2,
                                    (has_down ? 1 : 0) + (has_up ? 1 : 0));
      }
      std::swap(f_in, f_out);
      std::swap(win, wout);
    }

    co_await win_free(ctx, win);
    co_await win_free(ctx, wout);
    co_await win_free(ctx, wlap);
    co_await win_free(ctx, wfly);
  });

  // Checksum over owned lines of the final field (lives in `in` slot after an
  // even number of swaps, `out` otherwise; per device both spans alias the
  // same storage passed at window creation — resolve by iteration parity).
  for (int n = 0; n < nodes; ++n) {
    const DeviceArrays& a = dev[static_cast<size_t>(n)];
    std::span<const double> fin = cfg.iterations % 2 == 0 ? a.in : a.out;
    for (int k = 0; k < g.ksize; ++k)
      for (int j = 0; j < g.jdev; ++j)
        for (int i = 0; i < g.isize; ++i) res.checksum += fin[g.at(i, j, k)];
  }
  for (int n = 0; n < nodes; ++n)
    res.bytes_on_wire += static_cast<std::uint64_t>(cluster.fabric().bytes_sent(n));
  return res;
}

Result run_mpi_cuda(Cluster& cluster, const Config& cfg) {
  const int nodes = cluster.num_nodes();
  const int rpd = cluster.ranks_per_device();
  const Geometry g{cfg.isize, rpd * cfg.jlocal, cfg.ksize};
  std::vector<DeviceArrays> dev(static_cast<size_t>(nodes));
  std::vector<std::span<double>> sendbuf(static_cast<size_t>(nodes));
  std::vector<std::span<double>> recvbuf(static_cast<size_t>(nodes));
  std::vector<std::unique_ptr<baseline::HostProgram>> progs;
  const int halo_elems = g.isize * g.ksize;
  for (int n = 0; n < nodes; ++n) {
    dev[static_cast<size_t>(n)] = make_arrays(cluster.device(n), g, n * g.jdev, nodes * g.jdev);
    // Two packed buffers per direction.
    sendbuf[static_cast<size_t>(n)] = cluster.device(n).alloc<double>(2 * halo_elems);
    recvbuf[static_cast<size_t>(n)] = cluster.device(n).alloc<double>(2 * halo_elems);
    progs.push_back(std::make_unique<baseline::HostProgram>(cluster.device(n),
                                                            cluster.mpi(n)));
  }

  const double phase_flops[3] = {5.0, 12.0, 9.0};
  const double phase_passes[3] = {2.0, 4.0, 4.0};

  Result res;
  res.elapsed = cluster.run_hosts([&](int n) -> sim::Proc<void> {
    baseline::HostProgram& hp = *progs[static_cast<size_t>(n)];
    DeviceArrays& a = dev[static_cast<size_t>(n)];
    std::span<double> f_in = a.in, f_out = a.out;
    const bool has_down = n > 0, has_up = n + 1 < nodes;

    // Fork-join compute kernel over one phase (each block takes jlocal lines).
    auto phase_kernel = [&](int phase, std::span<double> pin,
                            std::span<double> pout) -> sim::Proc<void> {
      gpu::Kernel k = [&, phase, pin, pout](gpu::BlockCtx& blk) -> sim::Proc<void> {
        const int jb = blk.block_id() * cfg.jlocal;
        const int jt = jb + cfg.jlocal;
        if (phase == 0) {
          compute_lap(Field{pin, g}, Field{a.lap, g}, jb, jt);
        } else if (phase == 1) {
          compute_flxfly(Field{pin, g}, Field{a.lap, g}, Field{a.flx, g},
                         Field{a.fly, g}, jb, jt);
        } else {
          compute_out(Field{pin, g}, Field{a.flx, g}, Field{a.fly, g},
                      Field{pout, g}, cfg.diffusion_coeff, jb, jt);
        }
        co_await charge_phase(blk, cfg, cfg.jlocal,
                              phase_passes[static_cast<size_t>(phase)],
                              phase_flops[static_cast<size_t>(phase)]);
      };
      co_await hp.launch(gpu::LaunchConfig{rpd, 128, 26}, std::move(k), "phase");
    };

    // Packs device-local boundary j-lines of `span` into contiguous buffers
    // (pack kernel), sends one message per direction, receives the mirrored
    // lines into the halo lines (unpack kernel). `down_dir` exchanges bottom
    // lines downward (received from up into halo jdev); `up_dir` exchanges
    // top lines upward (received from down into halo -1).
    auto exchange_line = [&](std::span<double> span, bool down_dir, bool up_dir,
                             int tag) -> sim::Proc<void> {
      std::vector<mpi::Request> reqs;
      const std::size_t halo_bytes = static_cast<size_t>(halo_elems) * sizeof(double);
      auto pack = [&](int j, std::span<double> buf) -> sim::Proc<void> {
        gpu::Kernel k = [&, j, buf](gpu::BlockCtx& blk) -> sim::Proc<void> {
          if (blk.block_id() != 0) co_return;
          for (int kk = 0; kk < g.ksize; ++kk)
            std::memcpy(&buf[static_cast<size_t>(kk) * g.isize], &span[g.at(0, j, kk)],
                        static_cast<size_t>(g.isize) * sizeof(double));
          co_await blk.mem_traffic(2.0 * static_cast<double>(halo_bytes));
        };
        co_await hp.launch(gpu::LaunchConfig{rpd, 128, 26}, std::move(k), "pack");
      };
      auto unpack = [&](int j, std::span<double> buf) -> sim::Proc<void> {
        gpu::Kernel k = [&, j, buf](gpu::BlockCtx& blk) -> sim::Proc<void> {
          if (blk.block_id() != 0) co_return;
          for (int kk = 0; kk < g.ksize; ++kk)
            std::memcpy(&span[g.at(0, j, kk)], &buf[static_cast<size_t>(kk) * g.isize],
                        static_cast<size_t>(g.isize) * sizeof(double));
          co_await blk.mem_traffic(2.0 * static_cast<double>(halo_bytes));
        };
        co_await hp.launch(gpu::LaunchConfig{rpd, 128, 26}, std::move(k), "unpack");
      };

      auto& devv = cluster.device(n);
      mpi::Request r_up, r_down;
      // Pre-post the receives for the mirrored lines: a down-directed
      // exchange is received from the up-neighbor into halo line jdev, an
      // up-directed one from the down-neighbor into halo line -1.
      if (down_dir && has_up) {
        r_up = hp.irecv(n + 1, tag,
                        devv.ref(recvbuf[static_cast<size_t>(n)].subspan(0, halo_elems)));
      }
      if (up_dir && has_down) {
        r_down = hp.irecv(n - 1, tag,
                          devv.ref(recvbuf[static_cast<size_t>(n)].subspan(
                              static_cast<size_t>(halo_elems), halo_elems)));
      }
      if (down_dir && has_down) {
        co_await pack(0, sendbuf[static_cast<size_t>(n)].subspan(0, halo_elems));
        reqs.push_back(
            hp.isend(n - 1, tag,
                     devv.ref(sendbuf[static_cast<size_t>(n)].subspan(0, halo_elems))));
      }
      if (up_dir && has_up) {
        co_await pack(g.jdev - 1, sendbuf[static_cast<size_t>(n)].subspan(
                                      static_cast<size_t>(halo_elems), halo_elems));
        reqs.push_back(hp.isend(n + 1, tag,
                                devv.ref(sendbuf[static_cast<size_t>(n)].subspan(
                                    static_cast<size_t>(halo_elems), halo_elems))));
      }
      for (auto& rq : reqs) co_await rq.wait();
      if (r_up.valid()) {
        co_await r_up.wait();
        co_await unpack(g.jdev, recvbuf[static_cast<size_t>(n)].subspan(0, halo_elems));
      }
      if (r_down.valid()) {
        co_await r_down.wait();
        co_await unpack(-1, recvbuf[static_cast<size_t>(n)].subspan(
                                static_cast<size_t>(halo_elems), halo_elems));
      }
    };

    for (int it = 0; it < cfg.iterations; ++it) {
      if (cfg.compute) co_await phase_kernel(0, f_in, f_out);
      if (cfg.exchange) {
        co_await exchange_line(a.lap, /*down_dir=*/true, /*up_dir=*/false,
                               10 + it * 4);
      }
      if (cfg.compute) co_await phase_kernel(1, f_in, f_out);
      if (cfg.exchange) {
        co_await exchange_line(a.fly, /*down_dir=*/false, /*up_dir=*/true,
                               11 + it * 4);
      }
      if (cfg.compute) co_await phase_kernel(2, f_in, f_out);
      if (cfg.exchange) {
        co_await exchange_line(f_out, /*down_dir=*/true, /*up_dir=*/true,
                               12 + it * 4);
      }
      std::swap(f_in, f_out);
    }
  });

  for (int n = 0; n < nodes; ++n) {
    const DeviceArrays& a = dev[static_cast<size_t>(n)];
    std::span<const double> fin = cfg.iterations % 2 == 0 ? a.in : a.out;
    for (int k = 0; k < g.ksize; ++k)
      for (int j = 0; j < g.jdev; ++j)
        for (int i = 0; i < g.isize; ++i) res.checksum += fin[g.at(i, j, k)];
  }
  for (int n = 0; n < nodes; ++n)
    res.bytes_on_wire += static_cast<std::uint64_t>(cluster.fabric().bytes_sent(n));
  return res;
}

}  // namespace dcuda::apps::stencil
