#pragma once

// Mini-application 1 (§IV-C): 2-D particle simulation with short-range
// repulsive forces and simplified Verlet integration.
//
// The wide rectangular domain is decomposed into cells aligned along the
// wide edge (x); the cell width equals the cutoff distance, so forces act
// only between particles of the same or neighboring cells. Particles are
// stored as a structure of arrays with fixed-size, non-overlapping index
// ranges per cell (4x slack) and per-cell occupancy counters.
//
// Main loop (paper order): 1) halo cell exchange, 2) force computation and
// position update, 3) sorting out particles that moved to a neighbor cell,
// 4) communication of particles that moved to a neighbor rank, 5)
// integration of arrivals.

#include <cstdint>
#include <vector>

#include "cluster/cluster.h"
#include "sim/proc.h"

namespace dcuda::apps::particles {

struct Config {
  int cells_per_node = 208;       // one cell per rank at the paper's launch
  int particles_per_cell = 100;   // initial occupancy
  int capacity_factor = 4;        // storage slack (paper: 4x)
  int iterations = 100;
  // Cell geometry and force range. The paper requires cell_width >= cutoff
  // and, for the Fig. 9 measurements, reduces the cutoff well below the
  // cell width so that few particles interact (memory-bound scan).
  double cell_width = 1.0;
  double cutoff = 1.0;
  double dt = 0.01;
  double force_k = 5.0;
  double domain_height = 1.0;
  std::uint64_t seed = 42;
  bool compute = true;            // runtime switches
  bool exchange = true;
  int capacity() const { return particles_per_cell * capacity_factor; }
};

struct Result {
  sim::Dur elapsed = 0.0;
  std::int64_t total_particles = 0;  // conservation check
  double checksum = 0.0;             // sum of |x|+|y| over all particles
  double momentum_x = 0.0;
  double momentum_y = 0.0;
};

// Serial reference simulation on the global domain.
Result reference(const Config& cfg, int num_nodes);

Result run_dcuda(Cluster& cluster, const Config& cfg);
Result run_mpi_cuda(Cluster& cluster, const Config& cfg);

}  // namespace dcuda::apps::particles
