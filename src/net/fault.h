#pragma once

// Lossy-fabric fault model (DESIGN.md §8, docs/TESTING.md "Loss battery").
//
// A FaultConfig describes what the interconnect may do to a packet between
// the sender's transmit lane and the receiver's NIC: drop it, deliver it
// twice, corrupt it (detected by the NIC's CRC and discarded), delay it past
// the FIFO clamp, or hit a transient per-link outage window. All decisions
// are coins drawn from the kFault splitmix64 stream of the run's
// sim::Perturbation, so a faulty run replays bit-identically from its seed.
//
// Any nonzero probability arms the NIC-level go-back-N retransmission
// protocol in net::Fabric (per-connection send window, sequence/ack headers,
// timeout + exponential-backoff retransmit, duplicate suppression), which
// restores the exactly-once in-order delivery contract the runtime's
// notified-access machinery assumes. With every probability at zero the
// fabric takes its historical code path untouched: no headers, no draws, no
// timers — wire format and event schedule stay byte-identical.

#include <cstdint>

#include "sim/units.h"

namespace dcuda::net {

struct FaultConfig {
  // -- Injected faults (per transmitted packet unless noted) -------------
  double drop_prob = 0.0;     // packet vanishes on the wire
  double dup_prob = 0.0;      // packet is delivered twice
  double corrupt_prob = 0.0;  // payload damaged; receiver CRC discards it
  double delay_prob = 0.0;    // delivery delayed by delay_spike (reordering)
  sim::Dur delay_spike = sim::micros(40.0);
  // Transient outage: with link_down_prob (per transmitted packet) the
  // (src, dst) link goes dark for link_down_duration; everything entering
  // the wire in that window — data and acks — is lost.
  double link_down_prob = 0.0;
  sim::Dur link_down_duration = sim::micros(25.0);

  // -- Go-back-N recovery protocol ---------------------------------------
  // Send window per (src, dst) connection: packets beyond it queue at the
  // sender until a cumulative ack opens space.
  int window = 8;
  // Base retransmit timeout (should exceed one RTT: ~2x(latency +
  // sw_overhead) + serialization), doubled per expiry up to max_timeout.
  sim::Dur retransmit_timeout = sim::micros(12.0);
  double backoff = 2.0;
  sim::Dur max_timeout = sim::micros(200.0);
  // Wire overhead of the sequence/ack header carried by every data packet
  // while the protocol is armed, and of a standalone cumulative ack.
  double header_bytes = 12.0;
  double ack_bytes = 16.0;

  // -- Mutation knobs (docs/TESTING.md mutation checks) ------------------
  // Knock out one recovery mechanism to prove the loss battery notices:
  // without retransmission the loss fuzz fails conservation; without
  // duplicate suppression the at-most-once oracle fires.
  bool retransmit = true;
  bool dup_suppress = true;

  // True when any fault can fire; arms the recovery protocol.
  bool any() const {
    return drop_prob > 0.0 || dup_prob > 0.0 || corrupt_prob > 0.0 ||
           delay_prob > 0.0 || link_down_prob > 0.0;
  }
};

}  // namespace dcuda::net
