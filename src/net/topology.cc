#include "net/topology.h"

#include <algorithm>
#include <cassert>
#include <functional>

namespace dcuda::net {

Topology::Topology(int num_nodes, const TopoConfig& cfg)
    : cfg_(cfg), num_nodes_(num_nodes) {
  assert(num_nodes_ >= 1);
  assert(cfg_.fat_tree_arity >= 1);
  assert(cfg_.rails >= 1);
  paths_.resize(static_cast<std::size_t>(num_nodes_) *
                static_cast<std::size_t>(num_nodes_));
  switch (cfg_.kind) {
    case TopologyKind::kFatTree: build_fat_tree(); break;
    case TopologyKind::kTorus3D: build_torus(); break;
    default: build_flat(); break;
  }
  // Every pair has at least one route (possibly empty = direct wire), and
  // the engine needs a positive hop latency to bound its windows.
  assert(!cfg_.active() || cfg_.hop_latency > 0.0);
}

int Topology::add_link(int from_switch, int to_switch) {
  link_from_.push_back(from_switch);
  link_to_.push_back(to_switch);
  // A link's traversal state is owned by the shard of its upstream switch;
  // switches hash onto node shards round-robin. Torus routers are co-located
  // with their node when one exists at the position.
  link_owner_.push_back(from_switch % num_nodes_);
  return num_links_++;
}

std::array<int, 3> near_cubic_dims(int n) {
  int x = 1, y = 1, z = 1;
  while (x * x * x < n) ++x;
  while (x * y * y < n) ++y;
  while (x * y * z < n) ++z;
  return {x, y, z};
}

std::array<int, 3> exact_grid_dims(int n) {
  assert(n >= 1);
  // z: largest divisor of n not above the cube root; then y: largest divisor
  // of n/z not above the square root of the remainder.
  int z = 1;
  for (int d = 1; d * d * d <= n; ++d) {
    if (n % d == 0) z = d;
  }
  const int rest = n / z;
  int y = 1;
  for (int d = 1; d * d <= rest; ++d) {
    if (rest % d == 0) y = d;
  }
  // The greedy picks can come out unordered (n=10: z=2 but y=1); restore the
  // documented x >= y >= z orientation — any axis permutation is the same grid.
  std::array<int, 3> dims = {rest / y, y, z};
  std::sort(dims.begin(), dims.end(), std::greater<int>());
  return dims;
}

void Topology::build_flat() {
  // No interior hops: every pair keeps one empty route (the per-pair pipe).
  // Multi-rail flat fabrics still stripe over the rails and resequence.
  for (auto& p : paths_) p.resize(1);
}

int Topology::leaf_of(int node) const {
  return cfg_.kind == TopologyKind::kFatTree ? node / cfg_.fat_tree_arity : 0;
}

void Topology::build_fat_tree() {
  const int a = cfg_.fat_tree_arity;
  num_leaves_ = (num_nodes_ + a - 1) / a;
  // One spine per unit of arity gives full bisection: a leaf's `a` nodes
  // share `a` uplinks. A single-leaf tree needs no spines at all.
  num_spines_ = num_leaves_ > 1 ? a : 0;
  num_switches_ = num_leaves_ + num_spines_;

  // Link table: leaf->spine uplinks, spine->leaf downlinks, leaf->node
  // egress links, in that order so ids are dense and reconstructible.
  std::vector<std::vector<int>> up(static_cast<std::size_t>(num_leaves_));
  std::vector<std::vector<int>> down(static_cast<std::size_t>(num_spines_));
  for (int l = 0; l < num_leaves_; ++l) {
    up[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(num_spines_));
    for (int s = 0; s < num_spines_; ++s) {
      up[static_cast<std::size_t>(l)][static_cast<std::size_t>(s)] =
          add_link(l, num_leaves_ + s);
    }
  }
  for (int s = 0; s < num_spines_; ++s) {
    down[static_cast<std::size_t>(s)].resize(static_cast<std::size_t>(num_leaves_));
    for (int l = 0; l < num_leaves_; ++l) {
      down[static_cast<std::size_t>(s)][static_cast<std::size_t>(l)] =
          add_link(num_leaves_ + s, l);
    }
  }
  std::vector<int> egress(static_cast<std::size_t>(num_nodes_));
  for (int n = 0; n < num_nodes_; ++n) {
    egress[static_cast<std::size_t>(n)] = add_link(leaf_of(n), -1);
  }

  for (int src = 0; src < num_nodes_; ++src) {
    for (int dst = 0; dst < num_nodes_; ++dst) {
      std::vector<Route>& out =
          paths_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_nodes_) +
                 static_cast<std::size_t>(dst)];
      if (src == dst) {
        out.resize(1);  // loopback: no interior hops
        continue;
      }
      const int ls = leaf_of(src);
      const int ld = leaf_of(dst);
      if (ls == ld) {
        // Same leaf: injection lane up to the leaf, one egress hop down.
        Route r;
        r.links = {egress[static_cast<std::size_t>(dst)]};
        r.switches = {ls};
        out.push_back(std::move(r));
        continue;
      }
      // Cross-leaf up/down: one equal-cost candidate per spine.
      for (int s = 0; s < num_spines_; ++s) {
        Route r;
        r.links = {up[static_cast<std::size_t>(ls)][static_cast<std::size_t>(s)],
                   down[static_cast<std::size_t>(s)][static_cast<std::size_t>(ld)],
                   egress[static_cast<std::size_t>(dst)]};
        r.switches = {ls, num_leaves_ + s, ld};
        out.push_back(std::move(r));
      }
    }
  }
}

std::array<int, 3> Topology::torus_coords(int node) const {
  const int yz = dims_[1] * dims_[2];
  return {node / yz, (node / dims_[2]) % dims_[1], node % dims_[2]};
}

int Topology::torus_distance(int a, int b) const {
  const std::array<int, 3> ca = torus_coords(a);
  const std::array<int, 3> cb = torus_coords(b);
  int d = 0;
  for (int i = 0; i < 3; ++i) {
    const int fwd = ((cb[static_cast<std::size_t>(i)] -
                      ca[static_cast<std::size_t>(i)]) % dims_[i] + dims_[i]) %
                    dims_[i];
    d += std::min(fwd, dims_[i] - fwd);
  }
  return d;
}

void Topology::build_torus() {
  // Fit the requested (or near-cubic auto) dimensions around the node count.
  dims_[0] = cfg_.torus_x;
  dims_[1] = cfg_.torus_y;
  dims_[2] = cfg_.torus_z;
  if (dims_[0] <= 0 || dims_[1] <= 0 || dims_[2] <= 0) {
    const std::array<int, 3> fit = near_cubic_dims(num_nodes_);
    dims_[0] = fit[0];
    dims_[1] = fit[1];
    dims_[2] = fit[2];
  }
  assert(dims_[0] * dims_[1] * dims_[2] >= num_nodes_);
  const int routers = dims_[0] * dims_[1] * dims_[2];
  num_switches_ = routers;

  // Directed neighbor links per (router, dimension, direction). Dimensions
  // of extent 1 have no movement and no links.
  const auto flatten = [&](int cx, int cy, int cz) {
    return (cx * dims_[1] + cy) * dims_[2] + cz;
  };
  std::vector<std::array<int, 6>> hop_link(static_cast<std::size_t>(routers),
                                           {-1, -1, -1, -1, -1, -1});
  for (int r = 0; r < routers; ++r) {
    const int yz = dims_[1] * dims_[2];
    const std::array<int, 3> c = {r / yz, (r / dims_[2]) % dims_[1],
                                  r % dims_[2]};
    for (int d = 0; d < 3; ++d) {
      if (dims_[d] <= 1) continue;
      for (int s = 0; s < 2; ++s) {  // 0 = +1 step, 1 = -1 step
        std::array<int, 3> n = c;
        const std::size_t di = static_cast<std::size_t>(d);
        n[di] = ((n[di] + (s == 0 ? 1 : -1)) % dims_[d] + dims_[d]) % dims_[d];
        const int to = flatten(n[0], n[1], n[2]);
        hop_link[static_cast<std::size_t>(r)][static_cast<std::size_t>(2 * d + s)] =
            add_link(r, to);
      }
    }
  }

  // Minimal dimension-order routes: every permutation of the dimensions
  // that produces a distinct link sequence is an equal-cost candidate.
  static constexpr int kPerms[6][3] = {{0, 1, 2}, {0, 2, 1}, {1, 0, 2},
                                       {1, 2, 0}, {2, 0, 1}, {2, 1, 0}};
  for (int src = 0; src < num_nodes_; ++src) {
    for (int dst = 0; dst < num_nodes_; ++dst) {
      std::vector<Route>& out =
          paths_[static_cast<std::size_t>(src) * static_cast<std::size_t>(num_nodes_) +
                 static_cast<std::size_t>(dst)];
      if (src == dst) {
        out.resize(1);
        continue;
      }
      const std::array<int, 3> cd = torus_coords(dst);
      for (const auto& perm : kPerms) {
        Route r;
        std::array<int, 3> cur = torus_coords(src);
        for (int k = 0; k < 3; ++k) {
          const int d = perm[k];
          const std::size_t di = static_cast<std::size_t>(d);
          const int fwd = ((cd[di] - cur[di]) % dims_[d] + dims_[d]) % dims_[d];
          if (fwd == 0) continue;
          // Wraparound-aware minimal direction; ties go forward.
          const int step = fwd <= dims_[d] - fwd ? 1 : -1;
          const int steps = std::min(fwd, dims_[d] - fwd);
          for (int i = 0; i < steps; ++i) {
            const int here = flatten(cur[0], cur[1], cur[2]);
            r.switches.push_back(here);
            r.links.push_back(
                hop_link[static_cast<std::size_t>(here)]
                        [static_cast<std::size_t>(2 * d + (step > 0 ? 0 : 1))]);
            cur[di] = ((cur[di] + step) % dims_[d] + dims_[d]) % dims_[d];
          }
        }
        assert(flatten(cur[0], cur[1], cur[2]) == dst);
        const bool dup = std::any_of(
            out.begin(), out.end(),
            [&](const Route& have) { return have.links == r.links; });
        if (!dup) out.push_back(std::move(r));
      }
    }
  }
}

}  // namespace dcuda::net
