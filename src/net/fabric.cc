#include "net/fabric.h"

#include <algorithm>
#include <cassert>

namespace dcuda::net {

Fabric::Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg)
    : sim_(s), cfg_(cfg) {
  nics_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) nics_.push_back(std::make_unique<Nic>(s));
}

void Fabric::send(Packet p, sim::Rate rate_cap) {
  assert(p.src >= 0 && p.src < num_nodes());
  assert(p.dst >= 0 && p.dst < num_nodes());
  Nic& tx = *nics_[static_cast<size_t>(p.src)];
  const sim::Rate rate = std::min(cfg_.bandwidth, rate_cap);
  // Sender software overhead delays wire entry; transmissions serialize.
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, tx.tx_free);
  const sim::Time end = start + p.bytes / rate;
  tx.tx_free = end;
  tx.bytes += p.bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, p.src, sim::kFabricLane, "tx",
                                   sim::Category::kFabric, p.bytes});
    tracer_->counter_set(end, p.src, "wire_bytes", tx.bytes);
    tracer_->bump("fabric_messages");
    tracer_->bump("fabric_bytes", p.bytes);
  }
  const sim::Time deliver = end + cfg_.latency + cfg_.sw_overhead;
  sim_.schedule(deliver - sim_.now(), [this, pkt = std::move(p)]() mutable {
    nics_[static_cast<size_t>(pkt.dst)]->rx.push(std::move(pkt));
  });
}

}  // namespace dcuda::net
