#include "net/fabric.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/invariants.h"
#include "sim/perturb.h"

namespace dcuda::net {

Fabric::Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg,
               const FaultConfig& fault)
    : sim_(s), cfg_(cfg), fault_(fault), armed_(fault.any()) {
  assert(fault_.window >= 1);
  assert(fault_.drop_prob < 1.0);  // go-back-N needs *some* success probability
  // Inter-shard events (deliveries, acks) are delayed by at least the wire
  // latency, which makes it the engine's conservative lookahead
  // (docs/PERF.md, "Parallel engine").
  s.register_lookahead(cfg_.latency);
  stats_shard_.resize(static_cast<size_t>(std::max(1, s.num_shards())));
  nics_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    // Build each NIC in its node's shard so the mailbox triggers acquire
    // the right owner shard for the parallel-window affinity checks.
    sim::ShardGuard guard(s, s.shard_for(i));
    nics_.push_back(std::make_unique<Nic>(s, num_nodes));
    if (armed_) {
      nics_.back()->tx_conn.resize(static_cast<size_t>(num_nodes));
      nics_.back()->rx_conn.resize(static_cast<size_t>(num_nodes));
    }
  }
}

const Fabric::FaultStats& Fabric::fault_stats() const {
  FaultStats m;
  for (const FaultStats& s : stats_shard_) {
    m.originals += s.originals;
    m.retransmits += s.retransmits;
    m.timeouts += s.timeouts;
    m.drops += s.drops;
    m.corrupts += s.corrupts;
    m.dups += s.dups;
    m.delays += s.delays;
    m.link_downs += s.link_downs;
    m.outage_losses += s.outage_losses;
    m.acks_sent += s.acks_sent;
    m.acks_lost += s.acks_lost;
    m.dup_suppressed += s.dup_suppressed;
    m.ooo_discarded += s.ooo_discarded;
  }
  merged_stats_ = m;
  return merged_stats_;
}

void Fabric::send(Packet p, sim::Rate rate_cap) {
  assert(p.src >= 0 && p.src < num_nodes());
  assert(p.dst >= 0 && p.dst < num_nodes());
  assert(p.channel >= 0 && p.channel < kNumChannels);
  if (armed_) {
    send_reliable(std::move(p), rate_cap);
    return;
  }
  Nic& tx = *nics_[static_cast<size_t>(p.src)];
  const sim::Rate rate = std::min(cfg_.bandwidth, rate_cap);
  // Sender software overhead delays wire entry; transmissions serialize.
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, tx.tx_free);
  const sim::Time end = start + p.bytes / rate;
  tx.tx_free = end;
  tx.bytes += p.bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, p.src, sim::kFabricLane, "tx",
                                   sim::Category::kFabric, p.bytes});
    tracer_->counter_set(end, p.src, "wire_bytes", tx.bytes);
    tracer_->bump("fabric_messages");
    tracer_->bump("fabric_bytes", p.bytes);
  }
  sim::Time deliver = end + cfg_.latency + cfg_.sw_overhead;
  if (sim::Perturbation* pert = sim_.perturbation(); pert != nullptr) {
    // Bounded extra wire delay (congestion, adaptive routing), then clamp so
    // delivery per (src, dst) pair stays strictly increasing: jitter must
    // not break the non-overtaking FIFO guarantee MPI matching relies on.
    deliver += pert->jitter(cfg_.latency);
    deliver = std::max(deliver,
                       tx.pair_deliver[static_cast<size_t>(p.dst)] +
                           sim::Perturbation::kOrderEpsilon);
  }
  tx.pair_deliver[static_cast<size_t>(p.dst)] = deliver;
  const std::uint64_t wire_seq = ++tx.pair_seq[static_cast<size_t>(p.dst)];
  // Delivery executes in the destination node's shard; the wire latency
  // keeps it beyond the lookahead horizon.
  sim_.schedule_on(sim_.shard_for(p.dst), deliver - sim_.now(),
                   [this, wire_seq, pkt = std::move(p)]() mutable {
    if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
      obs->fabric_delivered(pkt.src, pkt.dst, wire_seq);
    }
    const int channel = pkt.channel;
    nics_[static_cast<size_t>(pkt.dst)]->rx[static_cast<size_t>(channel)].push(
        std::move(pkt));
  });
}

// ---------------------------------------------------------------------------
// Lossy path: go-back-N reliable delivery (DESIGN.md §8).
//
// Every (src, dst) direction is a connection. send() assigns the next
// connection sequence and queues the packet; pump() transmits while the send
// window has space, retaining a copy of everything unacked. Each arrival at
// the receiver returns a cumulative ack; a retransmit timer at the sender
// resends the whole window on expiry with exponential backoff. The receiver
// accepts only the next expected sequence — duplicates are suppressed,
// past-gap arrivals discarded (classic go-back-N, no reorder buffer) — so
// the mailbox stream upper layers see is exactly-once and in order, which
// restores the per-pair FIFO non-overtaking guarantee the oracles and the
// eager fence depend on.

void Fabric::send_reliable(Packet p, sim::Rate rate_cap) {
  TxConn& c = tx_conn(p.src, p.dst);
  p.seq = ++c.next_seq;
  const int src = p.src;
  const int dst = p.dst;
  c.backlog.push_back(Stored{std::move(p), rate_cap});
  pump(src, dst);
}

void Fabric::pump(int src, int dst) {
  TxConn& c = tx_conn(src, dst);
  while (!c.backlog.empty() &&
         c.unacked.size() < static_cast<size_t>(fault_.window)) {
    c.unacked.push_back(std::move(c.backlog.front()));
    c.backlog.pop_front();
    transmit(src, dst, c.unacked.back(), /*is_retx=*/false);
  }
  if (fault_.retransmit && !c.unacked.empty() && !c.timer.pending()) {
    arm_timer(src, dst);
  }
}

void Fabric::transmit(int src, int dst, const Stored& s, bool is_retx) {
  Nic& tx = *nics_[static_cast<size_t>(src)];
  TxConn& c = tx_conn(src, dst);
  const sim::Rate rate = std::min(cfg_.bandwidth, s.cap);
  const double wire_bytes = s.pkt.bytes + fault_.header_bytes;
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, tx.tx_free);
  const sim::Time end = start + wire_bytes / rate;
  tx.tx_free = end;
  tx.bytes += wire_bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, src, sim::kFabricLane,
                                   is_retx ? "retx" : "tx",
                                   sim::Category::kFabric, wire_bytes});
    tracer_->counter_set(end, src, "wire_bytes", tx.bytes);
    tracer_->bump(is_retx ? "fabric_retransmits" : "fabric_messages");
    tracer_->bump("fabric_bytes", wire_bytes);
  }
  if (is_retx) {
    ++stats().retransmits;
  } else {
    ++stats().originals;
  }
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->fabric_packet_sent(src, dst, s.pkt.seq, is_retx);
  }

  // Fault coins, drawn in a fixed order per transmission regardless of
  // earlier outcomes, so the kFault stream position depends only on the
  // transmission count — replaying a seed replays every decision.
  sim::Perturbation* pert = sim_.perturbation();
  const bool down = pert != nullptr && pert->fault(fault_.link_down_prob);
  const bool corrupt = pert != nullptr && pert->fault(fault_.corrupt_prob);
  const bool drop = pert != nullptr && pert->fault(fault_.drop_prob);
  const bool dup = pert != nullptr && pert->fault(fault_.dup_prob);
  const bool delay = pert != nullptr && pert->fault(fault_.delay_prob);

  if (down) {
    // Transient outage opens (or extends) as this packet enters the wire;
    // the packet itself is its first casualty.
    c.down_until = std::max(c.down_until, start + fault_.link_down_duration);
    ++stats().link_downs;
  }
  const bool in_outage = start < c.down_until;
  if (in_outage || drop || corrupt) {
    if (in_outage) {
      ++stats().outage_losses;
    } else if (drop) {
      ++stats().drops;
    } else {
      // Corruption is detected by the receiver's CRC and the packet is
      // discarded header and all — indistinguishable from a wire drop at
      // protocol level (no ack), so it is not even scheduled.
      ++stats().corrupts;
    }
    if (sim::InvariantObserver* obs = sim_.invariant_observer();
        obs != nullptr) {
      obs->fabric_packet_dropped(src, dst, s.pkt.seq);
    }
    return;  // the retransmit timer recovers it
  }

  sim::Time deliver = end + cfg_.latency + cfg_.sw_overhead;
  if (pert != nullptr) deliver += pert->jitter(cfg_.latency);
  if (delay) {
    deliver += fault_.delay_spike;
    ++stats().delays;
  }
  // No per-pair FIFO clamp here: faults reorder the wire freely and the
  // receiver's sequence check restores order instead. Both deliveries run
  // in the destination's shard (delay >= wire latency = lookahead).
  sim_.schedule_on(sim_.shard_for(dst), deliver - sim_.now(),
                   [this, pkt = s.pkt]() mutable {
                     deliver_reliable(std::move(pkt));
                   });
  if (dup) {
    ++stats().dups;
    sim_.schedule_on(sim_.shard_for(dst),
                     deliver + sim::Perturbation::kOrderEpsilon - sim_.now(),
                     [this, pkt = s.pkt]() mutable {
                       deliver_reliable(std::move(pkt));
                     });
  }
}

void Fabric::deliver_reliable(Packet pkt) {
  const int src = pkt.src;
  const int dst = pkt.dst;
  RxConn& rc = nics_[static_cast<size_t>(dst)]->rx_conn[static_cast<size_t>(src)];
  if (pkt.seq == rc.expected + 1) {
    ++rc.expected;
    if (sim::InvariantObserver* obs = sim_.invariant_observer();
        obs != nullptr) {
      obs->fabric_packet_accepted(src, dst, pkt.seq);
      obs->fabric_delivered(src, dst, pkt.seq);
    }
    const int channel = pkt.channel;
    nics_[static_cast<size_t>(dst)]->rx[static_cast<size_t>(channel)].push(
        std::move(pkt));
  } else if (pkt.seq <= rc.expected) {
    if (fault_.dup_suppress) {
      ++stats().dup_suppressed;
    } else {
      // Mutation knob: deliver the duplicate anyway. The at-most-once
      // oracle must catch this (docs/TESTING.md mutation checks).
      if (sim::InvariantObserver* obs = sim_.invariant_observer();
          obs != nullptr) {
        obs->fabric_packet_accepted(src, dst, pkt.seq);
      }
      const int channel = pkt.channel;
      nics_[static_cast<size_t>(dst)]->rx[static_cast<size_t>(channel)].push(
          std::move(pkt));
    }
  } else {
    // Gap: a predecessor was lost. Go-back-N keeps no reorder buffer — the
    // sender retransmits the whole window, so discarding is safe.
    ++stats().ooo_discarded;
  }
  // Every intact arrival — accepted, duplicate, or past-gap — refreshes the
  // sender with a cumulative ack of the receive frontier.
  send_ack(dst, src, rc.expected);
}

void Fabric::send_ack(int from, int to, std::uint64_t acked_seq) {
  ++stats().acks_sent;
  // Acks ride the NIC's control path: no transmit-lane serialization and no
  // byte accounting (they coalesce with data in real hardware), but they do
  // face the lossy wire — the reverse link's outage window and the same
  // drop/delay coins as data.
  TxConn& reverse = tx_conn(from, to);
  sim::Perturbation* pert = sim_.perturbation();
  const bool drop = pert != nullptr && pert->fault(fault_.drop_prob);
  const bool delay = pert != nullptr && pert->fault(fault_.delay_prob);
  if (drop || sim_.now() < reverse.down_until) {
    ++stats().acks_lost;
    return;  // the retransmit timer covers lost acks too
  }
  sim::Time deliver = sim_.now() + cfg_.latency + cfg_.sw_overhead;
  if (delay) deliver += fault_.delay_spike;
  // Ack processing mutates the original sender's connection state, so it
  // runs in that node's shard.
  sim_.schedule_on(sim_.shard_for(to), deliver - sim_.now(),
                   [this, from, to, acked_seq]() {
                     handle_ack(to, from, acked_seq);
                   });
}

void Fabric::handle_ack(int src, int dst, std::uint64_t acked_seq) {
  TxConn& c = tx_conn(src, dst);
  if (acked_seq <= c.acked) return;  // stale cumulative ack
  c.acked = acked_seq;
  while (!c.unacked.empty() && c.unacked.front().pkt.seq <= acked_seq) {
    c.unacked.pop_front();
  }
  c.timeout = 0.0;  // forward progress resets the backoff
  c.timer.cancel();
  pump(src, dst);  // opens window space; also re-arms the timer if needed
}

void Fabric::arm_timer(int src, int dst) {
  TxConn& c = tx_conn(src, dst);
  const sim::Dur t = c.timeout > 0.0 ? c.timeout : fault_.retransmit_timeout;
  // No ack can arrive before the newest unacked packet has fully serialized
  // onto the wire, so count the tx-lane backlog into the deadline — a large
  // packet (64 kB at the GPUDirect cap serializes for ~20 us) must not trip
  // a spurious retransmission of itself.
  const sim::Time tx_free = nics_[static_cast<size_t>(src)]->tx_free;
  const sim::Dur backlog = tx_free > sim_.now() ? tx_free - sim_.now() : 0.0;
  c.timer.cancel();
  c.timer = sim_.schedule_cancellable(backlog + t, [this, src, dst]() {
    on_timeout(src, dst);
  });
}

void Fabric::on_timeout(int src, int dst) {
  TxConn& c = tx_conn(src, dst);
  if (c.unacked.empty()) return;
  ++stats().timeouts;
  // Go-back-N: resend the entire unacked window in sequence order.
  for (const Stored& s : c.unacked) {
    transmit(src, dst, s, /*is_retx=*/true);
  }
  const sim::Dur cur = c.timeout > 0.0 ? c.timeout : fault_.retransmit_timeout;
  c.timeout = std::min(cur * fault_.backoff, fault_.max_timeout);
  arm_timer(src, dst);
}

}  // namespace dcuda::net
