#include "net/fabric.h"

#include <algorithm>
#include <cassert>

#include "sim/invariants.h"

namespace dcuda::net {

Fabric::Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg)
    : sim_(s), cfg_(cfg) {
  nics_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nics_.push_back(std::make_unique<Nic>(s, num_nodes));
  }
}

void Fabric::send(Packet p, sim::Rate rate_cap) {
  assert(p.src >= 0 && p.src < num_nodes());
  assert(p.dst >= 0 && p.dst < num_nodes());
  assert(p.channel >= 0 && p.channel < kNumChannels);
  Nic& tx = *nics_[static_cast<size_t>(p.src)];
  const sim::Rate rate = std::min(cfg_.bandwidth, rate_cap);
  // Sender software overhead delays wire entry; transmissions serialize.
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, tx.tx_free);
  const sim::Time end = start + p.bytes / rate;
  tx.tx_free = end;
  tx.bytes += p.bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, p.src, sim::kFabricLane, "tx",
                                   sim::Category::kFabric, p.bytes});
    tracer_->counter_set(end, p.src, "wire_bytes", tx.bytes);
    tracer_->bump("fabric_messages");
    tracer_->bump("fabric_bytes", p.bytes);
  }
  sim::Time deliver = end + cfg_.latency + cfg_.sw_overhead;
  if (sim::Perturbation* pert = sim_.perturbation(); pert != nullptr) {
    // Bounded extra wire delay (congestion, adaptive routing), then clamp so
    // delivery per (src, dst) pair stays strictly increasing: jitter must
    // not break the non-overtaking FIFO guarantee MPI matching relies on.
    deliver += pert->jitter(cfg_.latency);
    deliver = std::max(deliver,
                       tx.pair_deliver[static_cast<size_t>(p.dst)] +
                           sim::Perturbation::kOrderEpsilon);
  }
  tx.pair_deliver[static_cast<size_t>(p.dst)] = deliver;
  const std::uint64_t wire_seq = ++tx.pair_seq[static_cast<size_t>(p.dst)];
  sim_.schedule(deliver - sim_.now(), [this, wire_seq, pkt = std::move(p)]() mutable {
    if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
      obs->fabric_delivered(pkt.src, pkt.dst, wire_seq);
    }
    const int channel = pkt.channel;
    nics_[static_cast<size_t>(pkt.dst)]->rx[static_cast<size_t>(channel)].push(
        std::move(pkt));
  });
}

}  // namespace dcuda::net
