#include "net/fabric.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/invariants.h"
#include "sim/perturb.h"

namespace dcuda::net {

Fabric::Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg,
               const FaultConfig& fault)
    : sim_(s), cfg_(cfg), fault_(fault), armed_(fault.any()) {
  assert(fault_.window >= 1);
  assert(fault_.drop_prob < 1.0);  // go-back-N needs *some* success probability
  if (cfg_.topo.active()) {
    rails_ = std::max(1, cfg_.topo.rails);
    cfg_.topo.rails = rails_;
    topo_ = std::make_unique<Topology>(num_nodes, cfg_.topo);
    router_ = std::make_unique<Router>(*topo_);
    hop_ = cfg_.topo.hop_latency;
    link_bw_ = cfg_.topo.link_bandwidth > 0.0 ? cfg_.topo.link_bandwidth
                                              : cfg_.bandwidth;
    links_.resize(static_cast<size_t>(topo_->num_links()));
  }
  // Inter-shard events are delayed by at least the wire latency — or, on a
  // multi-hop topology, the per-hop latency — which makes it the engine's
  // conservative lookahead (docs/PERF.md, "Parallel engine"). A flat
  // multi-rail fabric has no interior hops, so it keeps the wire bound.
  if (topo_ != nullptr && topo_->num_links() > 0) {
    s.register_lookahead(std::min(cfg_.latency, hop_));
  } else {
    s.register_lookahead(cfg_.latency);
  }
  stats_shard_.resize(static_cast<size_t>(std::max(1, s.num_shards())));
  nics_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    // Build each NIC in its node's shard so the mailbox triggers acquire
    // the right owner shard for the parallel-window affinity checks.
    sim::ShardGuard guard(s, s.shard_for(i));
    nics_.push_back(std::make_unique<Nic>(s, num_nodes));
    if (armed_) {
      nics_.back()->tx_conn.resize(static_cast<size_t>(num_nodes) *
                                   static_cast<size_t>(rails_));
      nics_.back()->rx_conn.resize(static_cast<size_t>(num_nodes) *
                                   static_cast<size_t>(rails_));
    }
    if (topo_ != nullptr) {
      nics_.back()->rail_sched = std::make_unique<RailScheduler>(rails_);
      nics_.back()->mux_next.resize(static_cast<size_t>(num_nodes), 0);
      nics_.back()->reseq.resize(static_cast<size_t>(num_nodes));
    }
  }
}

const Fabric::FaultStats& Fabric::fault_stats() const {
  FaultStats m;
  for (const FaultStats& s : stats_shard_) {
    m.originals += s.originals;
    m.retransmits += s.retransmits;
    m.timeouts += s.timeouts;
    m.drops += s.drops;
    m.corrupts += s.corrupts;
    m.dups += s.dups;
    m.delays += s.delays;
    m.link_downs += s.link_downs;
    m.outage_losses += s.outage_losses;
    m.acks_sent += s.acks_sent;
    m.acks_lost += s.acks_lost;
    m.dup_suppressed += s.dup_suppressed;
    m.ooo_discarded += s.ooo_discarded;
  }
  merged_stats_ = m;
  return merged_stats_;
}

void Fabric::send(Packet p, sim::Rate rate_cap) {
  assert(p.src >= 0 && p.src < num_nodes());
  assert(p.dst >= 0 && p.dst < num_nodes());
  assert(p.channel >= 0 && p.channel < kNumChannels);
  if (armed_) {
    send_reliable(std::move(p), rate_cap);
    return;
  }
  if (topo_ != nullptr) {
    send_topo(std::move(p), rate_cap);
    return;
  }
  Nic& tx = *nics_[static_cast<size_t>(p.src)];
  const sim::Rate rate = std::min(cfg_.bandwidth, rate_cap);
  // Sender software overhead delays wire entry; transmissions serialize.
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, tx.tx_free);
  const sim::Time end = start + p.bytes / rate;
  tx.tx_free = end;
  tx.bytes += p.bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, p.src, sim::kFabricLane, "tx",
                                   sim::Category::kFabric, p.bytes});
    tracer_->counter_set(end, p.src, "wire_bytes", tx.bytes);
    tracer_->bump("fabric_messages");
    tracer_->bump("fabric_bytes", p.bytes);
  }
  sim::Time deliver = end + cfg_.latency + cfg_.sw_overhead;
  if (sim::Perturbation* pert = sim_.perturbation(); pert != nullptr) {
    // Bounded extra wire delay (congestion, adaptive routing), then clamp so
    // delivery per (src, dst) pair stays strictly increasing: jitter must
    // not break the non-overtaking FIFO guarantee MPI matching relies on.
    deliver += pert->jitter(cfg_.latency);
    deliver = std::max(deliver,
                       tx.pair_deliver[static_cast<size_t>(p.dst)] +
                           sim::Perturbation::kOrderEpsilon);
  }
  tx.pair_deliver[static_cast<size_t>(p.dst)] = deliver;
  const std::uint64_t wire_seq = ++tx.pair_seq[static_cast<size_t>(p.dst)];
  // Delivery executes in the destination node's shard; the wire latency
  // keeps it beyond the lookahead horizon.
  sim_.schedule_on(sim_.shard_for(p.dst), deliver - sim_.now(),
                   [this, wire_seq, pkt = std::move(p)]() mutable {
    if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
      obs->fabric_delivered(pkt.src, pkt.dst, wire_seq);
    }
    const int channel = pkt.channel;
    nics_[static_cast<size_t>(pkt.dst)]->rx[static_cast<size_t>(channel)].push(
        std::move(pkt));
  });
}

// ---------------------------------------------------------------------------
// Topology path (docs/TOPOLOGY.md).
//
// A transmission serializes on its rail's injection lane, then walks its
// route hop by hop: every interior link is traversed by an event in the
// shard owning the link's upstream switch, serializing against the link's
// shared-bandwidth clock, and each hop adds the per-hop latency (which is
// why the engine's lookahead shrinks to it). The final leg lands in the
// destination's shard at the rail mux, which restores per-(src, dst) mux
// order before the mailbox push — so upper layers keep the exact FIFO
// contract of the flat pipe while rails and equal-cost paths reorder
// freely underneath.

void Fabric::send_topo(Packet p, sim::Rate rate_cap) {
  Nic& tx = *nics_[static_cast<size_t>(p.src)];
  p.mux_seq = ++tx.mux_next[static_cast<size_t>(p.dst)];
  const int rail = tx.rail_sched->pick(p.mux_seq);
  p.rail = rail;
  const double bytes = p.bytes;
  const sim::Rate rate = std::min(cfg_.bandwidth, rate_cap);
  sim::Time& lane = tx.rail_sched->lane(rail);
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, lane);
  const sim::Time end = start + bytes / rate;
  lane = end;
  tx.bytes += bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, p.src, sim::kFabricLane, "tx",
                                   sim::Category::kFabric, bytes});
    tracer_->counter_set(end, p.src, "wire_bytes", tx.bytes);
    tracer_->bump("fabric_messages");
    tracer_->bump("fabric_bytes", bytes);
  }
  sim::Dur extra = 0.0;
  if (sim::Perturbation* pert = sim_.perturbation(); pert != nullptr) {
    // No per-pair clamp here: the rail mux resequences, so jitter (and any
    // cross-rail/cross-path skew) may reorder the wire freely.
    extra = pert->jitter(cfg_.latency);
  }
  route_and_launch(std::move(p), bytes, end, extra, /*reliable=*/false);
}

void Fabric::route_and_launch(Packet pkt, double wire_bytes, sim::Time tx_end,
                              sim::Dur extra, bool reliable) {
  const int path = router_->select(pkt.src, pkt.dst, pkt.mux_seq,
                                   sim_.perturbation());
  const Route* route =
      &topo_->paths(pkt.src, pkt.dst)[static_cast<size_t>(path)];
  if (route->links.empty()) {
    // No interior hops (flat multi-rail or loopback): direct wire delivery.
    const sim::Time deliver = tx_end + cfg_.latency + cfg_.sw_overhead + extra;
    sim_.schedule_on(sim_.shard_for(pkt.dst), deliver - sim_.now(),
                     [this, reliable, pkt = std::move(pkt)]() mutable {
                       if (reliable) {
                         deliver_reliable(std::move(pkt));
                       } else {
                         mux_deliver(std::move(pkt));
                       }
                     });
    return;
  }
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->route_selected(pkt.src, pkt.dst, route->switches);
  }
  const int owner = topo_->link_owner(route->links[0]);
  sim_.schedule_on(sim_.shard_for(owner), tx_end + hop_ + extra - sim_.now(),
                   [this, route, wire_bytes, reliable,
                    pkt = std::move(pkt)]() mutable {
                     hop(std::move(pkt), route, 0, wire_bytes, reliable);
                   });
}

void Fabric::hop(Packet pkt, const Route* route, std::size_t idx,
                 double wire_bytes, bool reliable) {
  LinkState& link = links_[static_cast<size_t>(route->links[idx])];
  // Shared link: transmissions serialize at the interior link bandwidth.
  // The mutation knob lets every packet pretend the link is idle — the
  // link-capacity oracle must catch the resulting overlap.
  const sim::Time start = cfg_.topo.account_capacity
                              ? std::max(sim_.now(), link.free)
                              : sim_.now();
  const sim::Time end = start + wire_bytes / link_bw_;
  if (cfg_.topo.account_capacity) link.free = end;
  link.bytes += wire_bytes;
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->link_transmission(route->links[idx], start, end);
  }
  const std::size_t next = idx + 1;
  if (next < route->links.size()) {
    const int owner = topo_->link_owner(route->links[next]);
    sim_.schedule_on(sim_.shard_for(owner), end + hop_ - sim_.now(),
                     [this, route, next, wire_bytes, reliable,
                      pkt = std::move(pkt)]() mutable {
                       hop(std::move(pkt), route, next, wire_bytes, reliable);
                     });
    return;
  }
  sim_.schedule_on(sim_.shard_for(pkt.dst),
                   end + hop_ + cfg_.sw_overhead - sim_.now(),
                   [this, reliable, pkt = std::move(pkt)]() mutable {
                     if (reliable) {
                       deliver_reliable(std::move(pkt));
                     } else {
                       mux_deliver(std::move(pkt));
                     }
                   });
}

void Fabric::mux_deliver(Packet pkt) {
  Nic& rx = *nics_[static_cast<size_t>(pkt.dst)];
  auto push = [&](Packet q) {
    if (sim::InvariantObserver* obs = sim_.invariant_observer();
        obs != nullptr) {
      obs->fabric_delivered(q.src, q.dst, q.mux_seq);
    }
    const int channel = q.channel;
    rx.rx[static_cast<size_t>(channel)].push(std::move(q));
  };
  if (!cfg_.topo.resequence) {
    // Mutation knob: bypass the mux. Cross-rail skew now reaches the
    // mailbox out of order, which the FIFO/non-overtaking oracle must
    // catch (docs/TESTING.md mutation checks).
    push(std::move(pkt));
    return;
  }
  Resequencer<Packet>& rs = rx.reseq[static_cast<size_t>(pkt.src)];
  std::vector<Packet> ready;
  rs.offer(pkt.mux_seq, std::move(pkt), ready);
  for (Packet& q : ready) push(std::move(q));
}

// ---------------------------------------------------------------------------
// Lossy path: go-back-N reliable delivery (DESIGN.md §8).
//
// Every (src, dst) direction is a connection — one per rail on a multi-rail
// fabric. send() assigns the next connection sequence and queues the packet;
// pump() transmits while the send window has space, retaining a copy of
// everything unacked. Each arrival at the receiver returns a cumulative ack;
// a retransmit timer at the sender resends the whole window on expiry with
// exponential backoff. The receiver accepts only the next expected sequence
// — duplicates are suppressed, past-gap arrivals discarded (classic
// go-back-N, no reorder buffer) — so each rail's accepted stream is
// exactly-once and in order. Off the topology path that stream *is* the
// mailbox stream; on it, accepted packets pass through the rail mux, which
// restores the cross-rail mux order on top of the per-rail guarantee.

void Fabric::send_reliable(Packet p, sim::Rate rate_cap) {
  int rail = 0;
  if (topo_ != nullptr) {
    Nic& tx = *nics_[static_cast<size_t>(p.src)];
    p.mux_seq = ++tx.mux_next[static_cast<size_t>(p.dst)];
    rail = tx.rail_sched->pick(p.mux_seq);
    p.rail = rail;
  }
  TxConn& c = tx_conn(p.src, p.dst, rail);
  p.seq = ++c.next_seq;
  const int src = p.src;
  const int dst = p.dst;
  c.backlog.push_back(Stored{std::move(p), rate_cap});
  pump(src, dst, rail);
}

void Fabric::pump(int src, int dst, int rail) {
  TxConn& c = tx_conn(src, dst, rail);
  while (!c.backlog.empty() &&
         c.unacked.size() < static_cast<size_t>(fault_.window)) {
    c.unacked.push_back(std::move(c.backlog.front()));
    c.backlog.pop_front();
    transmit(src, dst, rail, c.unacked.back(), /*is_retx=*/false);
  }
  if (fault_.retransmit && !c.unacked.empty() && !c.timer.pending()) {
    arm_timer(src, dst, rail);
  }
}

void Fabric::transmit(int src, int dst, int rail, const Stored& s,
                      bool is_retx) {
  Nic& tx = *nics_[static_cast<size_t>(src)];
  TxConn& c = tx_conn(src, dst, rail);
  const sim::Rate rate = std::min(cfg_.bandwidth, s.cap);
  const double wire_bytes = s.pkt.bytes + fault_.header_bytes;
  sim::Time& lane =
      topo_ != nullptr ? tx.rail_sched->lane(rail) : tx.tx_free;
  const sim::Time start = std::max(sim_.now() + cfg_.sw_overhead, lane);
  const sim::Time end = start + wire_bytes / rate;
  lane = end;
  tx.bytes += wire_bytes;
  ++tx.msgs;
  if (tracer_ != nullptr && tracer_->enabled()) {
    tracer_->record(sim::TraceSpan{start, end, src, sim::kFabricLane,
                                   is_retx ? "retx" : "tx",
                                   sim::Category::kFabric, wire_bytes});
    tracer_->counter_set(end, src, "wire_bytes", tx.bytes);
    tracer_->bump(is_retx ? "fabric_retransmits" : "fabric_messages");
    tracer_->bump("fabric_bytes", wire_bytes);
  }
  if (is_retx) {
    ++stats().retransmits;
  } else {
    ++stats().originals;
  }
  if (sim::InvariantObserver* obs = sim_.invariant_observer(); obs != nullptr) {
    obs->fabric_packet_sent(src, dst, s.pkt.seq, is_retx, rail);
  }

  // Fault coins, drawn in a fixed order per transmission regardless of
  // earlier outcomes, so the kFault stream position depends only on the
  // transmission count — replaying a seed replays every decision.
  sim::Perturbation* pert = sim_.perturbation();
  const bool down = pert != nullptr && pert->fault(fault_.link_down_prob);
  const bool corrupt = pert != nullptr && pert->fault(fault_.corrupt_prob);
  const bool drop = pert != nullptr && pert->fault(fault_.drop_prob);
  const bool dup = pert != nullptr && pert->fault(fault_.dup_prob);
  const bool delay = pert != nullptr && pert->fault(fault_.delay_prob);

  if (down) {
    // Transient outage opens (or extends) as this packet enters the wire;
    // the packet itself is its first casualty.
    c.down_until = std::max(c.down_until, start + fault_.link_down_duration);
    ++stats().link_downs;
  }
  const bool in_outage = start < c.down_until;
  if (in_outage || drop || corrupt) {
    if (in_outage) {
      ++stats().outage_losses;
    } else if (drop) {
      ++stats().drops;
    } else {
      // Corruption is detected by the receiver's CRC and the packet is
      // discarded header and all — indistinguishable from a wire drop at
      // protocol level (no ack), so it is not even scheduled.
      ++stats().corrupts;
    }
    if (sim::InvariantObserver* obs = sim_.invariant_observer();
        obs != nullptr) {
      obs->fabric_packet_dropped(src, dst, s.pkt.seq, rail);
    }
    return;  // the retransmit timer recovers it
  }

  sim::Time deliver = end + cfg_.latency + cfg_.sw_overhead;
  if (pert != nullptr) deliver += pert->jitter(cfg_.latency);
  if (delay) {
    deliver += fault_.delay_spike;
    ++stats().delays;
  }
  if (topo_ != nullptr) {
    // Multi-hop traversal; jitter and delay spikes stretch the first leg.
    // Retransmissions re-select their route, so an adaptive fabric may
    // route a retry around the path that lost the original.
    const sim::Dur extra = deliver - (end + cfg_.latency + cfg_.sw_overhead);
    route_and_launch(s.pkt, wire_bytes, end, extra, /*reliable=*/true);
    if (dup) {
      ++stats().dups;
      route_and_launch(s.pkt, wire_bytes, end,
                       extra + sim::Perturbation::kOrderEpsilon,
                       /*reliable=*/true);
    }
    return;
  }
  // No per-pair FIFO clamp here: faults reorder the wire freely and the
  // receiver's sequence check restores order instead. Both deliveries run
  // in the destination's shard (delay >= wire latency = lookahead).
  sim_.schedule_on(sim_.shard_for(dst), deliver - sim_.now(),
                   [this, pkt = s.pkt]() mutable {
                     deliver_reliable(std::move(pkt));
                   });
  if (dup) {
    ++stats().dups;
    sim_.schedule_on(sim_.shard_for(dst),
                     deliver + sim::Perturbation::kOrderEpsilon - sim_.now(),
                     [this, pkt = s.pkt]() mutable {
                       deliver_reliable(std::move(pkt));
                     });
  }
}

void Fabric::deliver_reliable(Packet pkt) {
  const int src = pkt.src;
  const int dst = pkt.dst;
  const int rail = pkt.rail;
  RxConn& rc = rx_conn(dst, src, rail);
  if (pkt.seq == rc.expected + 1) {
    ++rc.expected;
    if (sim::InvariantObserver* obs = sim_.invariant_observer();
        obs != nullptr) {
      obs->fabric_packet_accepted(src, dst, pkt.seq, rail);
      if (topo_ == nullptr) obs->fabric_delivered(src, dst, pkt.seq);
    }
    if (topo_ != nullptr) {
      // Per-rail order restored; the rail mux restores cross-rail order.
      mux_deliver(std::move(pkt));
    } else {
      const int channel = pkt.channel;
      nics_[static_cast<size_t>(dst)]->rx[static_cast<size_t>(channel)].push(
          std::move(pkt));
    }
  } else if (pkt.seq <= rc.expected) {
    if (fault_.dup_suppress) {
      ++stats().dup_suppressed;
    } else {
      // Mutation knob: deliver the duplicate anyway. The at-most-once
      // oracle must catch this (docs/TESTING.md mutation checks). Bypasses
      // the mux — a repeated mux sequence would wedge the resequencer.
      if (sim::InvariantObserver* obs = sim_.invariant_observer();
          obs != nullptr) {
        obs->fabric_packet_accepted(src, dst, pkt.seq, rail);
      }
      const int channel = pkt.channel;
      nics_[static_cast<size_t>(dst)]->rx[static_cast<size_t>(channel)].push(
          std::move(pkt));
    }
  } else {
    // Gap: a predecessor was lost. Go-back-N keeps no reorder buffer — the
    // sender retransmits the whole window, so discarding is safe.
    ++stats().ooo_discarded;
  }
  // Every intact arrival — accepted, duplicate, or past-gap — refreshes the
  // sender with a cumulative ack of the receive frontier.
  send_ack(dst, src, rail, rc.expected);
}

void Fabric::send_ack(int from, int to, int rail, std::uint64_t acked_seq) {
  ++stats().acks_sent;
  // Acks ride the NIC's control path: no transmit-lane serialization and no
  // byte accounting (they coalesce with data in real hardware), but they do
  // face the lossy wire — the reverse link's outage window and the same
  // drop/delay coins as data.
  TxConn& reverse = tx_conn(from, to, rail);
  sim::Perturbation* pert = sim_.perturbation();
  const bool drop = pert != nullptr && pert->fault(fault_.drop_prob);
  const bool delay = pert != nullptr && pert->fault(fault_.delay_prob);
  if (drop || sim_.now() < reverse.down_until) {
    ++stats().acks_lost;
    return;  // the retransmit timer covers lost acks too
  }
  sim::Time deliver = sim_.now() + cfg_.latency + cfg_.sw_overhead;
  if (delay) deliver += fault_.delay_spike;
  // Ack processing mutates the original sender's connection state, so it
  // runs in that node's shard.
  sim_.schedule_on(sim_.shard_for(to), deliver - sim_.now(),
                   [this, from, to, rail, acked_seq]() {
                     handle_ack(to, from, rail, acked_seq);
                   });
}

void Fabric::handle_ack(int src, int dst, int rail, std::uint64_t acked_seq) {
  TxConn& c = tx_conn(src, dst, rail);
  if (acked_seq <= c.acked) return;  // stale cumulative ack
  c.acked = acked_seq;
  while (!c.unacked.empty() && c.unacked.front().pkt.seq <= acked_seq) {
    c.unacked.pop_front();
  }
  c.timeout = 0.0;  // forward progress resets the backoff
  c.timer.cancel();
  pump(src, dst, rail);  // opens window space; also re-arms the timer if needed
}

void Fabric::arm_timer(int src, int dst, int rail) {
  TxConn& c = tx_conn(src, dst, rail);
  const sim::Dur t = c.timeout > 0.0 ? c.timeout : fault_.retransmit_timeout;
  // No ack can arrive before the newest unacked packet has fully serialized
  // onto the wire, so count the tx-lane backlog into the deadline — a large
  // packet (64 kB at the GPUDirect cap serializes for ~20 us) must not trip
  // a spurious retransmission of itself.
  Nic& tx = *nics_[static_cast<size_t>(src)];
  const sim::Time tx_free =
      topo_ != nullptr ? tx.rail_sched->lane(rail) : tx.tx_free;
  const sim::Dur backlog = tx_free > sim_.now() ? tx_free - sim_.now() : 0.0;
  c.timer.cancel();
  c.timer = sim_.schedule_cancellable(backlog + t, [this, src, dst, rail]() {
    on_timeout(src, dst, rail);
  });
}

void Fabric::on_timeout(int src, int dst, int rail) {
  TxConn& c = tx_conn(src, dst, rail);
  if (c.unacked.empty()) return;
  ++stats().timeouts;
  // Go-back-N: resend the entire unacked window in sequence order.
  for (const Stored& s : c.unacked) {
    transmit(src, dst, rail, s, /*is_retx=*/true);
  }
  const sim::Dur cur = c.timeout > 0.0 ? c.timeout : fault_.retransmit_timeout;
  c.timeout = std::min(cur * fault_.backoff, fault_.max_timeout);
  arm_timer(src, dst, rail);
}

}  // namespace dcuda::net
