#include "net/router.h"

namespace dcuda::net {

Router::Router(const Topology& topo) : topo_(&topo) {
  if (topo.config().route == RouteMode::kAdaptive) {
    rotation_.resize(static_cast<std::size_t>(topo.num_nodes()) *
                     static_cast<std::size_t>(topo.num_nodes()));
  }
}

int Router::select(int src, int dst, std::uint64_t mux_seq,
                   sim::Perturbation* pert) {
  const int n = static_cast<int>(topo_->paths(src, dst).size());
  if (n <= 1) return 0;
  if (topo_->config().route != RouteMode::kAdaptive) {
    return static_cast<int>(
        ecmp_hash(topo_->config().ecmp_seed, src, dst, mux_seq) %
        static_cast<std::uint64_t>(n));
  }
  // Adaptive: rotate from a fixed per-pair hash base (message 0) so a
  // pair's burst covers every candidate exactly once per n messages —
  // hash-collision-proof round-robin, offset per pair to avoid systematic
  // alignment across pairs. A seeded kRoute perturbation stream replaces
  // the rotation to explore other (replayable) spreads.
  const std::uint64_t base = ecmp_hash(topo_->config().ecmp_seed, src, dst, 0);
  std::uint64_t rot;
  if (pert != nullptr && pert->has(sim::Perturbation::kRoute)) {
    rot = static_cast<std::uint64_t>(pert->route_pick(n));
  } else {
    std::uint64_t& r = rotation_[static_cast<std::size_t>(src) *
                                     static_cast<std::size_t>(topo_->num_nodes()) +
                                 static_cast<std::size_t>(dst)];
    rot = r++;
  }
  return static_cast<int>((base + rot) % static_cast<std::uint64_t>(n));
}

}  // namespace dcuda::net
