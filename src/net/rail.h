#pragma once

// Multi-rail NIC lanes and the receive-side rail mux (docs/TOPOLOGY.md).
//
// A node with R rails has R independent injection lanes at full NIC
// bandwidth. Messages stripe across rails round-robin by per-(src, dst)
// mux sequence, so consecutive messages of one connection leave on
// different rails and may arrive out of order — different rails, different
// ECMP paths, different congestion. The rail mux at the receiver restores
// the connection order before packets reach the per-pair FIFO mailbox
// stream: the go-back-N layer already guarantees per-rail in-order
// delivery, so the mux only reorders *across* rails (ISSUE: the
// resequencing contract). Holding a buffer is safe — every mux sequence
// eventually arrives, lossy or not, because the reliability layer below
// never gives up on a packet.

#include <cstdint>
#include <map>
#include <vector>

#include "sim/units.h"

namespace dcuda::net {

// Sender-side rail state: per-rail transmit-lane clocks plus the striping
// policy. Lives in the NIC, touched only from the source node's shard.
class RailScheduler {
 public:
  explicit RailScheduler(int rails);

  int rails() const { return static_cast<int>(free_.size()); }
  // Round-robin striping by connection mux sequence (1-based).
  int pick(std::uint64_t mux_seq) const {
    return static_cast<int>((mux_seq - 1) %
                            static_cast<std::uint64_t>(free_.size()));
  }
  // The rail's transmit lane: busy-until clock, serialized per rail.
  sim::Time& lane(int rail) { return free_[static_cast<std::size_t>(rail)]; }

 private:
  std::vector<sim::Time> free_;
};

// Receive-side per-connection resequencer: releases packets in strict mux
// sequence order (1, 2, 3, ...), buffering gaps. One instance per (src)
// origin at each destination NIC, touched only from that node's shard.
template <typename P>
class Resequencer {
 public:
  // Offers a packet; appends every packet that is now in order to `out`
  // (possibly none, possibly several when a gap closes).
  void offer(std::uint64_t seq, P pkt, std::vector<P>& out) {
    if (seq == next_) {
      out.push_back(std::move(pkt));
      ++next_;
      auto it = buffer_.begin();
      while (it != buffer_.end() && it->first == next_) {
        out.push_back(std::move(it->second));
        it = buffer_.erase(it);
        ++next_;
      }
      return;
    }
    // seq < next_ cannot happen under the reliability contract (per-rail
    // exactly-once + unique mux sequences); buffering it would wedge the
    // stream, so the map keyed on seq simply keeps the latest.
    buffer_.insert_or_assign(seq, std::move(pkt));
  }

  std::uint64_t released() const { return next_ - 1; }
  std::size_t buffered() const { return buffer_.size(); }

 private:
  std::uint64_t next_ = 1;
  std::map<std::uint64_t, P> buffer_;
};

}  // namespace dcuda::net
