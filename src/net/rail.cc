#include "net/rail.h"

#include <cassert>

namespace dcuda::net {

RailScheduler::RailScheduler(int rails) {
  assert(rails >= 1);
  free_.resize(static_cast<std::size_t>(rails), 0.0);
}

}  // namespace dcuda::net
