#pragma once

// Deterministic route selection over a Topology's equal-cost candidates
// (docs/TOPOLOGY.md).
//
// ECMP mode hashes (salt, src, dst, message sequence) through splitmix64 —
// a pure function, so a route choice replays across runs, executors, and
// process restarts with no stream state at all. Adaptive mode spreads a
// pair's consecutive messages across all candidates by rotating from the
// ECMP hash base using sender-local history only (no remote link state:
// reading another shard's queues during a parallel window would race).
// When a sim::Perturbation carrying the kRoute class is installed, adaptive
// selection draws its rotation from that seeded stream instead, which lets
// the fuzz harness explore alternative — still bit-replayable — path
// schedules.

#include <cstdint>
#include <vector>

#include "net/topology.h"
#include "sim/perturb.h"

namespace dcuda::net {

class Router {
 public:
  explicit Router(const Topology& topo);

  // Index into topo.paths(src, dst) for message `mux_seq` of the pair.
  // Sender-side only: mutates per-pair rotation state in adaptive mode, so
  // it must run in the source node's shard.
  int select(int src, int dst, std::uint64_t mux_seq, sim::Perturbation* pert);

  static std::uint64_t ecmp_hash(std::uint64_t salt, int src, int dst,
                                 std::uint64_t msg) {
    std::uint64_t z = salt ^ (static_cast<std::uint64_t>(src) * 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(dst) * 0xc2b2ae3d27d4eb4full) ^
                      (msg * 0x165667b19e3779f9ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  const Topology* topo_;
  // Adaptive rotation per (src, dst) pair — sender-local, touched only from
  // the source shard.
  std::vector<std::uint64_t> rotation_;
};

}  // namespace dcuda::net
