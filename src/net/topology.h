#pragma once

// Interconnect topology model (docs/TOPOLOGY.md, ROADMAP item 2).
//
// The flat fabric treats every node pair as a private full-duplex pipe. A
// non-flat Topology expands each pair into a multi-hop path over *shared*
// links: a two-level fat tree with configurable arity (leaf and spine
// switches, ECMP across spines — the APEnet+ cluster style) or a 3-D torus
// with wraparound and dimension-order minimal routing. Every directed link
// serializes transmissions at the link bandwidth, so congestion — hot spots,
// incast, leaf uplink contention — emerges from the event schedule instead of
// being assumed away.
//
// All minimal routes for every (src, dst) pair are precomputed at
// construction and immutable afterwards: route objects are stable, so hop
// events hold plain pointers into the table and route selection is pure
// lookup + hash (net/router.h). Link traversal state lives in the Fabric,
// sharded by the owning switch (docs/PERF.md, "Parallel engine").

#include <array>
#include <cstdint>
#include <vector>

#include "sim/units.h"

namespace dcuda::net {

enum class TopologyKind : std::int32_t {
  kFlat = 0,     // historical per-pair pipe, no interior hops
  kFatTree = 1,  // two-level fat tree: leaf switches + spine switches
  kTorus3D = 2,  // 3-D torus, dimension-order minimal routing, wraparound
};

enum class RouteMode : std::int32_t {
  kEcmp = 0,      // seeded hash of (src, dst, message) over the candidates
  kAdaptive = 1,  // source-adaptive: ECMP hash base + per-pair rotation
};

// Topology/rail knobs, carried on sim::NetConfig (docs/API.md). The default
// — flat topology, one rail — keeps the fabric on its historical code path:
// wire format and event schedule stay byte-identical.
struct TopoConfig {
  TopologyKind kind = TopologyKind::kFlat;
  // Fat tree: nodes per leaf switch; also the spine count (= ECMP width).
  int fat_tree_arity = 4;
  // Torus dimensions; all zero = near-cubic auto fit to the node count.
  int torus_x = 0;
  int torus_y = 0;
  int torus_z = 0;
  // NIC rails per node. Each rail is an independent injection lane at the
  // full NIC bandwidth; messages stripe across rails per message and are
  // resequenced at the receiver's rail mux (net/rail.h).
  int rails = 1;
  RouteMode route = RouteMode::kEcmp;
  // Per-switch-hop latency. With a non-flat topology this replaces the flat
  // wire latency as the parallel engine's conservative lookahead.
  sim::Dur hop_latency = sim::micros(0.35);
  // Interior (switch-to-switch) link bandwidth; 0 inherits NetConfig::bandwidth.
  sim::Rate link_bandwidth = 0.0;
  // Salt folded into the ECMP hash — replaying a seed replays every route.
  std::uint64_t ecmp_seed = 0;
  // Mutation knobs (docs/TESTING.md): disabling the rail-mux resequencer
  // must fail the FIFO/non-overtaking oracle; disabling shared-link
  // capacity accounting must fail the link-capacity oracle.
  bool resequence = true;
  bool account_capacity = true;

  // True when the fabric leaves the historical flat per-pair path.
  bool active() const { return kind != TopologyKind::kFlat || rails > 1; }
};

// Near-cubic 3-D fit around `n` (x >= y >= z, x*y*z >= n): the smallest box
// that holds n nodes. The torus auto-dims use it; apps wanting a 3-D rank
// grid can share the same shape heuristic (docs/TOPOLOGY.md).
std::array<int, 3> near_cubic_dims(int n);

// Exact near-cubic factorization (x >= y >= z, x*y*z == n): divisor-based,
// so a bijective cell <-> rank grid exists. Prime n degenerates to n x 1 x 1
// — the 1-D decomposition as a special case of the 3-D one.
std::array<int, 3> exact_grid_dims(int n);

inline const char* topology_name(TopologyKind k) {
  switch (k) {
    case TopologyKind::kFatTree: return "fattree";
    case TopologyKind::kTorus3D: return "torus";
    default: return "flat";
  }
}

// One precomputed minimal route: the interior links in traversal order and
// the switches they depart from (same length; links[i] leaves switches[i]).
// The NIC injection lane (node -> first switch) is not a route link — it is
// the per-rail transmit lane — and the final link lands at the destination
// node (fat tree) or its co-located torus router.
struct Route {
  std::vector<int> links;
  std::vector<int> switches;
  int hops() const { return static_cast<int>(links.size()); }
};

class Topology {
 public:
  Topology(int num_nodes, const TopoConfig& cfg);

  const TopoConfig& config() const { return cfg_; }
  TopologyKind kind() const { return cfg_.kind; }
  int num_nodes() const { return num_nodes_; }
  int num_switches() const { return num_switches_; }
  int num_links() const { return num_links_; }

  // All equal-cost minimal routes for the pair, >= 1 entry. src == dst (and
  // every flat pair) yields a single empty route: no interior hops.
  const std::vector<Route>& paths(int src, int dst) const {
    return paths_[static_cast<std::size_t>(src) *
                      static_cast<std::size_t>(num_nodes_) +
                  static_cast<std::size_t>(dst)];
  }

  // Node whose shard owns the link's upstream switch: all traversal state of
  // the link is touched only from that node's shard.
  int link_owner(int link) const {
    return link_owner_[static_cast<std::size_t>(link)];
  }

  // -- Fat-tree accessors (conformance tests) ---------------------------
  int leaf_of(int node) const;
  int num_leaves() const { return num_leaves_; }
  int num_spines() const { return num_spines_; }
  // Which switch a fat-tree link departs from / arrives at (arrival switch
  // is -1 for a leaf-to-node egress link).
  int link_from(int link) const { return link_from_[static_cast<std::size_t>(link)]; }
  int link_to(int link) const { return link_to_[static_cast<std::size_t>(link)]; }

  // -- Torus accessors ---------------------------------------------------
  std::array<int, 3> torus_dims() const { return {dims_[0], dims_[1], dims_[2]}; }
  std::array<int, 3> torus_coords(int node) const;
  // Minimal hop distance between two nodes on the torus (with wraparound).
  int torus_distance(int a, int b) const;

 private:
  void build_flat();
  void build_fat_tree();
  void build_torus();
  int add_link(int from_switch, int to_switch);

  TopoConfig cfg_;
  int num_nodes_ = 0;
  int num_switches_ = 0;
  int num_links_ = 0;
  int num_leaves_ = 0;
  int num_spines_ = 0;
  int dims_[3] = {1, 1, 1};
  std::vector<int> link_from_;   // upstream switch per link
  std::vector<int> link_to_;     // downstream switch per link (-1 = node egress)
  std::vector<int> link_owner_;  // owning node (shard) per link
  std::vector<std::vector<Route>> paths_;  // [src * num_nodes + dst]
};

}  // namespace dcuda::net
