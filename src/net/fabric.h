#pragma once

// Cluster interconnect model (x EDR InfiniBand class).
//
// Every node owns a full-duplex NIC. Outgoing messages serialize on the
// sender's transmit lane at min(link bandwidth, per-message rate cap) and
// arrive in the destination's receive mailbox after wire latency plus
// per-message software overhead at both ends. Delivery between a fixed
// (src, dst) pair is FIFO — the non-overtaking property MPI matching relies
// on.
//
// The wire is perfectly reliable by default. Arming a net::FaultConfig
// (any nonzero fault probability) turns it lossy — packets may be dropped,
// duplicated, corrupted, delayed past the FIFO clamp, or eaten by a
// transient link outage — and simultaneously arms the NIC-level go-back-N
// recovery protocol that restores the exactly-once in-order delivery
// contract: per-(src, dst) connection sequence numbers, a bounded send
// window with sender-side retention, cumulative acks, timeout +
// exponential-backoff retransmission, and duplicate suppression at the
// receiver. Upper layers (MPI matching, the runtime's eager channel) see
// the same per-pair FIFO mailbox stream either way; only timing differs.
// With faults disabled the historical code path runs untouched — wire
// format and event schedule stay byte-identical (DESIGN.md §8).

#include <any>
#include <array>
#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "sim/config.h"
#include "sim/mailbox.h"
#include "sim/simulation.h"
#include "sim/trace.h"

namespace dcuda::net {

// Receive channels: every NIC demultiplexes arrivals into per-protocol
// mailboxes. Channel 0 is the MPI endpoint's (mpi::Endpoint::rx_loop);
// channel 1 carries the runtime's eager/aggregated put batches
// (rt::NodeRuntime::eager_loop). Both share the transmit lane and the
// per-(src, dst) FIFO delivery clamp, so the non-overtaking guarantee
// holds across channels.
inline constexpr int kMpiChannel = 0;
inline constexpr int kRuntimeChannel = 1;
inline constexpr int kNumChannels = 2;

struct Packet {
  int src = -1;
  int dst = -1;
  double bytes = 0.0;
  std::any payload;
  // Declared after payload so the many MPI-side {src, dst, bytes, payload}
  // aggregate initializations keep defaulting to the MPI channel.
  int channel = kMpiChannel;
  // Reliable-delivery sequence per (src, dst) connection, assigned by the
  // sending NIC while fault injection is armed; 0 on the reliable path.
  std::uint64_t seq = 0;
};

class Fabric {
 public:
  Fabric(sim::Simulation& s, int num_nodes, const sim::NetConfig& cfg,
         const FaultConfig& fault = {});

  int num_nodes() const { return static_cast<int>(nics_.size()); }

  // Fire-and-forget: the packet appears in node `dst`'s mailbox. rate_cap
  // narrows usable bandwidth for this packet (GPUDirect reads on Kepler run
  // well below link rate). Reliable regardless of the fault model: an armed
  // FaultConfig only changes *when* the packet lands, never whether.
  void send(Packet p,
            sim::Rate rate_cap = std::numeric_limits<sim::Rate>::infinity());

  sim::Mailbox<Packet>& rx(int node, int channel = kMpiChannel) {
    return nics_[static_cast<size_t>(node)]->rx[static_cast<size_t>(channel)];
  }

  // Observability: wire-serialization spans and cumulative wire-byte
  // counters on the sender's fabric lane (docs/OBSERVABILITY.md).
  void set_tracer(sim::Tracer* t) { tracer_ = t; }

  double bytes_sent(int node) const { return nics_[static_cast<size_t>(node)]->bytes; }
  std::uint64_t messages_sent(int node) const { return nics_[static_cast<size_t>(node)]->msgs; }
  const sim::NetConfig& config() const { return cfg_; }
  const FaultConfig& fault_config() const { return fault_; }

  // True when any fault probability is nonzero and the go-back-N recovery
  // protocol is running.
  bool faults_armed() const { return armed_; }

  // Aggregate fault-injection and recovery counters (docs/TESTING.md
  // "Loss battery"; the fault self-tests and ablation_faults read these).
  // Counters are kept per shard (sender-side events accrue on the source
  // node's shard, receiver-side on the destination's) and merged field-wise
  // on read, so they stay exact under multi-threaded windows.
  struct FaultStats {
    std::uint64_t originals = 0;       // first transmissions of a sequence
    std::uint64_t retransmits = 0;     // go-back-N re-transmissions
    std::uint64_t timeouts = 0;        // retransmit timer expiries
    std::uint64_t drops = 0;           // wire drops (drop_prob)
    std::uint64_t corrupts = 0;        // CRC-detected corruption discards
    std::uint64_t dups = 0;            // duplicate deliveries injected
    std::uint64_t delays = 0;          // delay spikes applied
    std::uint64_t link_downs = 0;      // outage windows opened
    std::uint64_t outage_losses = 0;   // packets lost inside an outage
    std::uint64_t acks_sent = 0;
    std::uint64_t acks_lost = 0;       // acks dropped or eaten by an outage
    std::uint64_t dup_suppressed = 0;  // receiver discarded already-seen seq
    std::uint64_t ooo_discarded = 0;   // receiver discarded past-gap seq
  };
  const FaultStats& fault_stats() const;

 private:
  // One retained outbound packet (go-back-N keeps everything unacked).
  struct Stored {
    Packet pkt;
    sim::Rate cap = std::numeric_limits<sim::Rate>::infinity();
  };

  // Sender-side reliable-connection state toward one destination.
  struct TxConn {
    std::uint64_t next_seq = 0;   // last assigned sequence
    std::uint64_t acked = 0;      // highest cumulative ack received
    std::deque<Stored> unacked;   // transmitted, not yet acked (seq order)
    std::deque<Stored> backlog;   // waiting for send-window space
    sim::EventToken timer;        // pending retransmit timeout
    sim::Dur timeout = 0.0;       // current backed-off timeout; 0 = base
    sim::Time down_until = 0.0;   // transient outage on this directed link
  };

  // Receiver-side state for one origin: last in-order accepted sequence.
  struct RxConn {
    std::uint64_t expected = 0;
  };

  struct Nic {
    Nic(sim::Simulation& s, int num_nodes)
        : rx{sim::Mailbox<Packet>(s), sim::Mailbox<Packet>(s)},
          pair_deliver(static_cast<size_t>(num_nodes), 0.0),
          pair_seq(static_cast<size_t>(num_nodes), 0) {}
    sim::Time tx_free = 0.0;
    double bytes = 0.0;
    std::uint64_t msgs = 0;
    std::array<sim::Mailbox<Packet>, kNumChannels> rx;
    // Per-destination FIFO state: last scheduled delivery time (the clamp
    // that keeps the non-overtaking guarantee under jitter) and a wire
    // sequence number reported to the invariant oracle at delivery.
    std::vector<sim::Time> pair_deliver;
    std::vector<std::uint64_t> pair_seq;
    // Reliable-connection state, allocated only while faults are armed.
    std::vector<TxConn> tx_conn;  // indexed by destination node
    std::vector<RxConn> rx_conn;  // indexed by origin node
  };

  // -- Lossy path (faults armed) ----------------------------------------
  void send_reliable(Packet p, sim::Rate rate_cap);
  void pump(int src, int dst);                 // drain backlog into window
  void transmit(int src, int dst, const Stored& s, bool is_retx);
  void deliver_reliable(Packet pkt);           // receiver: accept/suppress
  void send_ack(int from, int to, std::uint64_t acked_seq);
  void handle_ack(int src, int dst, std::uint64_t acked_seq);
  void arm_timer(int src, int dst);
  void on_timeout(int src, int dst);
  TxConn& tx_conn(int src, int dst) {
    return nics_[static_cast<size_t>(src)]->tx_conn[static_cast<size_t>(dst)];
  }

  // The executing shard's counter slice (shard 0 outside a run).
  FaultStats& stats() {
    const std::size_t k =
        static_cast<std::size_t>(sim::current_shard_index());
    return stats_shard_[k < stats_shard_.size() ? k : 0];
  }

  sim::Simulation& sim_;
  sim::NetConfig cfg_;
  FaultConfig fault_;
  bool armed_ = false;
  std::vector<FaultStats> stats_shard_;
  mutable FaultStats merged_stats_;
  sim::Tracer* tracer_ = nullptr;
  std::vector<std::unique_ptr<Nic>> nics_;
};

}  // namespace dcuda::net
